#include "sim/faults.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/chip.h"
#include "trace/stream_program.h"

namespace mcopt::sim {
namespace {

using trace::LockstepStreamProgram;
using trace::StreamDesc;

Workload read_streams(unsigned threads, std::size_t n_per_thread,
                      arch::Addr spacing,
                      arch::Addr base = arch::Addr{1} << 32) {
  Workload wl;
  for (unsigned t = 0; t < threads; ++t) {
    std::vector<StreamDesc> s{{base + t * spacing, false, 0}};
    wl.push_back(std::make_unique<LockstepStreamProgram>(
        s, sizeof(double), std::vector<sched::IterRange>{{0, n_per_thread}}, 1));
  }
  return wl;
}

TEST(FaultSpec, HealthyByDefault) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(spec.describe(), "healthy");
  EXPECT_TRUE(spec.check(arch::InterleaveSpec{}).ok());
  EXPECT_DOUBLE_EQ(spec.derate_of(0), 1.0);
  EXPECT_EQ(spec.bank_extra(0), 0u);
  EXPECT_EQ(spec.straggle_of(0), 0u);
}

TEST(FaultSpec, ParseRoundTrip) {
  const auto parsed =
      FaultSpec::parse("mc0:off, mc1:derate=0.5, bank3:slow=7, strand12:lag=9");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const FaultSpec& spec = parsed.value();
  EXPECT_TRUE(spec.any());
  EXPECT_TRUE(spec.is_offline(0));
  EXPECT_FALSE(spec.is_offline(1));
  EXPECT_DOUBLE_EQ(spec.derate_of(1), 0.5);
  EXPECT_EQ(spec.bank_extra(3), 7u);
  EXPECT_EQ(spec.straggle_of(12), 9u);
  // Shortest-round-trip formatting: the description re-parses losslessly.
  EXPECT_EQ(spec.describe(), "mc0:off mc1:derate=0.5 bank3:slow=7 strand12:lag=9");
}

TEST(FaultSpec, DescribeUsesShortestRoundTripDoubles) {
  FaultSpec spec;
  spec.derates.push_back({1, 0.375});
  spec.flips.push_back({2, 1e-9});
  EXPECT_EQ(spec.describe(), "mc1:derate=0.375 mc2:flip=1e-09");
  const auto reparsed = FaultSpec::parse("mc1:derate=0.375,mc2:flip=1e-09");
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_DOUBLE_EQ(reparsed.value().derate_of(1), 0.375);
  EXPECT_DOUBLE_EQ(reparsed.value().flip_rate_of(2), 1e-9);
}

TEST(FaultSpec, ParseFlip) {
  const auto parsed = FaultSpec::parse("mc2:flip=1e-9");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const FaultSpec& spec = parsed.value();
  EXPECT_TRUE(spec.any());
  EXPECT_DOUBLE_EQ(spec.flip_rate_of(2), 1e-9);
  EXPECT_DOUBLE_EQ(spec.flip_rate_of(0), 0.0);
  EXPECT_TRUE(spec.check(arch::InterleaveSpec{}).ok());
}

TEST(FaultSpec, ParseRejectsBadFlipRates) {
  EXPECT_FALSE(FaultSpec::parse("mc0:flip=-1e-9").has_value());
  EXPECT_FALSE(FaultSpec::parse("mc0:flip=1.5").has_value());
  EXPECT_FALSE(FaultSpec::parse("mc0:flip=nan").has_value());
  EXPECT_FALSE(FaultSpec::parse("mc0:flip=").has_value());
}

TEST(FaultSpec, FlipRatesCombineAsIndependentSources) {
  FaultSpec spec;
  spec.flips.push_back({0, 0.5});
  spec.flips.push_back({0, 0.5});
  // 1 - (1 - 0.5)(1 - 0.5): independent sources, not a sum (which would
  // exceed 1 for large rates).
  EXPECT_DOUBLE_EQ(spec.flip_rate_of(0), 0.75);
}

TEST(FaultSpec, CheckRejectsOfflineAndFlippingSameController) {
  FaultSpec spec;
  spec.offline_controllers = {1};
  spec.flips.push_back({1, 1e-6});
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("both offline and flipping"),
            std::string::npos);
}

TEST(FaultSpec, MergedDropsFlipsOnDeadControllers) {
  FaultSpec off;
  off.offline_controllers = {2};
  FaultSpec flip;
  flip.flips.push_back({2, 1e-6});
  flip.flips.push_back({3, 1e-6});
  const FaultSpec merged = FaultSpec::merged(off, flip);
  EXPECT_DOUBLE_EQ(merged.flip_rate_of(2), 0.0);
  EXPECT_DOUBLE_EQ(merged.flip_rate_of(3), 1e-6);
  EXPECT_TRUE(merged.check(arch::InterleaveSpec{}).ok());
}

TEST(FaultSpec, ParseEmptyIsHealthy) {
  const auto parsed = FaultSpec::parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed.value().any());
}

TEST(FaultSpec, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultSpec::parse("bogus").has_value());
  EXPECT_FALSE(FaultSpec::parse("mc0:explode").has_value());
  EXPECT_FALSE(FaultSpec::parse("mcX:off").has_value());
  EXPECT_FALSE(FaultSpec::parse("mc1:derate=abc").has_value());
  EXPECT_FALSE(FaultSpec::parse("bank0:slow=-3").has_value());
  EXPECT_FALSE(FaultSpec::parse("strand0:lag=").has_value());
  EXPECT_FALSE(FaultSpec::parse("disk0:dead").has_value());
  // Cycle counts beyond uint64 (or not numbers at all) must be rejected
  // before the double-to-Cycles cast, which would otherwise be UB.
  EXPECT_FALSE(FaultSpec::parse("bank0:slow=1e30").has_value());
  EXPECT_FALSE(FaultSpec::parse("strand0:lag=1e300").has_value());
  EXPECT_FALSE(FaultSpec::parse("strand0:lag=nan").has_value());
}

TEST(FaultSpec, CheckReportsEveryViolationAtOnce) {
  FaultSpec spec;
  spec.offline_controllers = {9};
  spec.derates.push_back({7, 0.0});
  spec.slow_banks.push_back({99, 5});
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  const std::string& msg = status.error().message;
  EXPECT_NE(msg.find("offline controller 9"), std::string::npos);
  EXPECT_NE(msg.find("derated controller 7"), std::string::npos);
  EXPECT_NE(msg.find("derate factor"), std::string::npos);
  EXPECT_NE(msg.find("slow bank 99"), std::string::npos);
}

TEST(FaultSpec, CheckRejectsDuplicateOfflineEntries) {
  FaultSpec spec;
  spec.offline_controllers = {1, 1};
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offlined more than once"),
            std::string::npos);
}

TEST(FaultSpec, CheckRejectsOfflineAndDeratedSameController) {
  FaultSpec spec;
  spec.offline_controllers = {2};
  spec.derates.push_back({2, 0.5});
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("both offline and derated"),
            std::string::npos);
}

TEST(FaultSpec, CheckRejectsZeroDerateFactor) {
  FaultSpec spec;
  spec.derates.push_back({0, 0.0});
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("must lie in (0, 1]"),
            std::string::npos);
}

TEST(FaultSpec, DegenerateViolationsAccumulateInOneStatus) {
  // A spec can be degenerate in several ways at once; every violation must
  // land in the single returned Status, not just the first one hit.
  FaultSpec spec;
  spec.offline_controllers = {1, 1};
  spec.derates.push_back({1, 0.0});
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  const std::string& msg = status.error().message;
  EXPECT_NE(msg.find("offlined more than once"), std::string::npos);
  EXPECT_NE(msg.find("must lie in (0, 1]"), std::string::npos);
  EXPECT_NE(msg.find("both offline and derated"), std::string::npos);
}

TEST(FaultSpec, CheckRejectsAllControllersOffline) {
  FaultSpec spec;
  spec.offline_controllers = {0, 1, 2, 3};
  const util::Status status = spec.check(arch::InterleaveSpec{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("at least one controller"),
            std::string::npos);
}

TEST(FaultSpec, SurvivorsAndRemap) {
  FaultSpec spec;
  spec.offline_controllers = {1, 3};
  const arch::InterleaveSpec il{};
  EXPECT_EQ(spec.surviving_controllers(il), (std::vector<unsigned>{0, 2}));
  // Dead controllers spread round-robin over survivors; healthy map to self.
  EXPECT_EQ(spec.controller_remap(il), (std::vector<unsigned>{0, 0, 2, 2}));
}

TEST(FaultSpec, RemapIsIdentityWhenHealthy) {
  const FaultSpec spec;
  EXPECT_EQ(spec.controller_remap(arch::InterleaveSpec{}),
            (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(FaultSpec, ParseSocketAndLinkClasses) {
  const auto parsed =
      FaultSpec::parse("sock0:off, sock1:derate=0.5, link0-1:off, link2-3:derate=0.25");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const FaultSpec& spec = parsed.value();
  EXPECT_TRUE(spec.any());
  EXPECT_TRUE(spec.is_socket_offline(0));
  EXPECT_FALSE(spec.is_socket_offline(1));
  EXPECT_DOUBLE_EQ(spec.socket_derate_of(1), 0.5);
  EXPECT_DOUBLE_EQ(spec.socket_derate_of(0), 1.0);
  // Links are undirected: both orientations answer identically.
  EXPECT_TRUE(spec.is_link_offline(0, 1));
  EXPECT_TRUE(spec.is_link_offline(1, 0));
  EXPECT_FALSE(spec.is_link_offline(0, 2));
  EXPECT_DOUBLE_EQ(spec.link_derate_of(2, 3), 0.25);
  EXPECT_DOUBLE_EQ(spec.link_derate_of(3, 2), 0.25);
  EXPECT_DOUBLE_EQ(spec.link_derate_of(0, 1), 1.0);
  EXPECT_EQ(spec.describe(),
            "sock0:off sock1:derate=0.5 link0-1:off link2-3:derate=0.25");
  // The description re-parses to an identical spec.
  const auto reparsed = FaultSpec::parse(
      "sock0:off,sock1:derate=0.5,link0-1:off,link2-3:derate=0.25");
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed.value().describe(), spec.describe());
}

TEST(FaultSpec, ParseRejectsSocketLinkGarbage) {
  EXPECT_FALSE(FaultSpec::parse("sockX:off").has_value());
  EXPECT_FALSE(FaultSpec::parse("sock0:derate=").has_value());
  EXPECT_FALSE(FaultSpec::parse("sock0:derate=abc").has_value());
  EXPECT_FALSE(FaultSpec::parse("sock0:lag=5").has_value());
  EXPECT_FALSE(FaultSpec::parse("link0:off").has_value());
  EXPECT_FALSE(FaultSpec::parse("link0-:off").has_value());
  EXPECT_FALSE(FaultSpec::parse("link-1:off").has_value());
  EXPECT_FALSE(FaultSpec::parse("link0-1:slow=5").has_value());
  // Out-of-range factors parse (grammar-checked only, like mc:derate) and
  // fail semantic validation instead.
  const auto zero = FaultSpec::parse("sock0:derate=0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_FALSE(zero.value().check(arch::InterleaveSpec{}, 2).ok());
  const auto nan_factor = FaultSpec::parse("link0-1:derate=nan");
  ASSERT_TRUE(nan_factor.has_value());
  EXPECT_FALSE(nan_factor.value().check(arch::InterleaveSpec{}, 2).ok());
}

TEST(FaultSpec, ParseLimitsRejectOutOfRangeIndices) {
  FaultLimits limits;
  limits.num_controllers = 4;
  limits.num_banks = 8;
  limits.num_threads = 64;
  limits.num_sockets = 2;
  // In-range indices pass with limits applied.
  const auto ok = FaultSpec::parse(
      "mc3:off,bank7:slow=2,strand63:lag=1,sock1:off,link0-1:derate=0.5",
      limits);
  ASSERT_TRUE(ok.has_value()) << ok.error().message;
  // Each class rejects its first out-of-range index at parse time.
  const auto mc = FaultSpec::parse("mc4:off", limits);
  ASSERT_FALSE(mc.has_value());
  EXPECT_NE(mc.error().message.find("mc4"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("bank8:slow=2", limits).has_value());
  EXPECT_FALSE(FaultSpec::parse("strand64:lag=1", limits).has_value());
  const auto sock = FaultSpec::parse("sock2:off", limits);
  ASSERT_FALSE(sock.has_value());
  EXPECT_NE(sock.error().message.find("sock2"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("link0-2:off", limits).has_value());
  EXPECT_FALSE(FaultSpec::parse("link2-0:off", limits).has_value());
  // A zero field leaves that class unchecked (historical behavior).
  FaultLimits loose;
  loose.num_controllers = 4;
  EXPECT_TRUE(FaultSpec::parse("sock7:off", loose).has_value());
  EXPECT_FALSE(FaultSpec::parse("mc7:off", loose).has_value());
}

TEST(FaultSpec, CheckRejectsSocketFaultsOnSingleSocketTopology) {
  // Default num_sockets = 1: a single-chip sim cannot honor socket faults,
  // and silently ignoring them would fake resilience.
  FaultSpec sock_off;
  sock_off.offline_sockets = {0};
  EXPECT_FALSE(sock_off.check(arch::InterleaveSpec{}).ok());
  FaultSpec link;
  link.link_faults.push_back({0, 1, 1.0, true});
  EXPECT_FALSE(link.check(arch::InterleaveSpec{}).ok());
  // The same specs are fine on a 2-socket node.
  EXPECT_TRUE(sock_off.check(arch::InterleaveSpec{}, 2).ok());
  EXPECT_TRUE(link.check(arch::InterleaveSpec{}, 2).ok());
}

TEST(FaultSpec, CheckSocketClassViolations) {
  {
    FaultSpec spec;  // all sockets dead
    spec.offline_sockets = {0, 1};
    const util::Status status = spec.check(arch::InterleaveSpec{}, 2);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message.find("at least one socket"),
              std::string::npos);
  }
  {
    FaultSpec spec;  // index out of range
    spec.offline_sockets = {4};
    EXPECT_FALSE(spec.check(arch::InterleaveSpec{}, 4).ok());
  }
  {
    FaultSpec spec;  // dead beats slow
    spec.offline_sockets = {1};
    spec.socket_derates.push_back({1, 0.5});
    const util::Status status = spec.check(arch::InterleaveSpec{}, 4);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message.find("both offline and derated"),
              std::string::npos);
  }
  {
    FaultSpec spec;  // self-loop link
    spec.link_faults.push_back({1, 1, 0.5, false});
    EXPECT_FALSE(spec.check(arch::InterleaveSpec{}, 4).ok());
  }
  {
    FaultSpec spec;  // link derate out of (0, 1]
    spec.link_faults.push_back({0, 1, 0.0, false});
    EXPECT_FALSE(spec.check(arch::InterleaveSpec{}, 4).ok());
  }
  {
    FaultSpec spec;  // dead link beats slow link
    spec.link_faults.push_back({0, 1, 1.0, true});
    spec.link_faults.push_back({1, 0, 0.5, false});
    const util::Status status = spec.check(arch::InterleaveSpec{}, 4);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message.find("both offline and derated"),
              std::string::npos);
  }
}

TEST(FaultSpec, SurvivingSocketsAndRemap) {
  FaultSpec spec;
  spec.offline_sockets = {0, 2};
  EXPECT_EQ(spec.surviving_sockets(4), (std::vector<unsigned>{1, 3}));
  // Dead domains spread round-robin over survivors; healthy map to self.
  EXPECT_EQ(spec.socket_remap(4), (std::vector<unsigned>{1, 1, 3, 3}));
  const FaultSpec healthy;
  EXPECT_EQ(healthy.socket_remap(2), (std::vector<unsigned>{0, 1}));
}

TEST(FaultSpec, MergedNormalizesSocketAndLinkFaults) {
  FaultSpec a;
  a.offline_sockets = {1};
  a.link_faults.push_back({0, 1, 1.0, true});
  FaultSpec b;
  b.offline_sockets = {1};                    // duplicate offline socket
  b.socket_derates.push_back({1, 0.5});       // derate on a dead socket
  b.socket_derates.push_back({0, 0.75});      // derate on a live socket
  b.link_faults.push_back({1, 0, 0.5, false});  // derate on a dead link
  b.link_faults.push_back({2, 3, 0.5, false});  // derate on a live link
  const FaultSpec merged = FaultSpec::merged(a, b);
  EXPECT_EQ(merged.offline_sockets, (std::vector<unsigned>{1}));
  EXPECT_DOUBLE_EQ(merged.socket_derate_of(1), 1.0);  // dead beats slow
  EXPECT_DOUBLE_EQ(merged.socket_derate_of(0), 0.75);
  EXPECT_TRUE(merged.is_link_offline(0, 1));
  EXPECT_DOUBLE_EQ(merged.link_derate_of(0, 1), 1.0);  // dead beats slow
  EXPECT_DOUBLE_EQ(merged.link_derate_of(2, 3), 0.5);
  EXPECT_TRUE(merged.check(arch::InterleaveSpec{}, 4).ok());
}

TEST(ChipFaults, HealthyRunIsNotDegraded) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  Workload wl = read_streams(4, 1024, arch::Addr{1} << 20);
  const SimResult res = chip.run(wl);
  EXPECT_FALSE(res.degraded);
  ASSERT_EQ(res.mc_utilization.size(), 4u);
  for (double u : res.mc_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ChipFaults, OfflineControllerServesNoTrafficAndSetsDegraded) {
  SimConfig cfg;
  cfg.faults.offline_controllers = {0};
  Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
  // Spacing 1 MiB: bases alias to controller 0, which is dead.
  Workload wl = read_streams(8, 2048, arch::Addr{1} << 20);
  const SimResult res = chip.run(wl);
  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.mc.size(), 4u);
  EXPECT_EQ(res.mc[0].line_transfers(), 0u);
  EXPECT_DOUBLE_EQ(res.mc_utilization[0], 0.0);
  // The traffic still flowed — through the survivors.
  std::uint64_t surviving_transfers = 0;
  for (std::size_t m = 1; m < res.mc.size(); ++m)
    surviving_transfers += res.mc[m].line_transfers();
  EXPECT_GT(surviving_transfers, 0u);
  EXPECT_EQ(res.accesses, 8u * 2048u);
}

TEST(ChipFaults, DerateSlowsTheRunDown) {
  auto run_with = [](double factor) {
    SimConfig cfg;
    if (factor < 1.0)
      for (unsigned c = 0; c < 4; ++c) cfg.faults.derates.push_back({c, factor});
    Chip chip(cfg, arch::equidistant_placement(16, cfg.topology));
    Workload wl = read_streams(16, 4096, arch::Addr{1} << 21);
    return chip.run(wl);
  };
  const SimResult healthy = run_with(1.0);
  const SimResult derated = run_with(0.5);
  EXPECT_TRUE(derated.degraded);
  EXPECT_FALSE(healthy.degraded);
  // Halving every controller's service rate must slow a bandwidth-bound run
  // substantially (not necessarily exactly 2x: latency terms are unscaled).
  EXPECT_GT(derated.total_cycles, healthy.total_cycles * 5 / 4);
}

TEST(ChipFaults, SlowBankCostsCycles) {
  auto run_with = [](arch::Cycles extra) {
    SimConfig cfg;
    if (extra > 0)
      for (unsigned b = 0; b < cfg.interleave.num_banks(); ++b)
        cfg.faults.slow_banks.push_back({b, extra});
    Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
    Workload wl = read_streams(8, 2048, arch::Addr{1} << 21);
    return chip.run(wl);
  };
  const SimResult healthy = run_with(0);
  const SimResult slowed = run_with(200);
  EXPECT_TRUE(slowed.degraded);
  EXPECT_GT(slowed.total_cycles, healthy.total_cycles);
}

TEST(ChipFaults, StragglerDelaysItsThread) {
  auto run_with = [](arch::Cycles lag) {
    SimConfig cfg;
    cfg.model_lockstep = false;  // let the straggler actually fall behind
    if (lag > 0) cfg.faults.stragglers.push_back({0, lag});
    Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
    Workload wl = read_streams(4, 1024, arch::Addr{1} << 21);
    return chip.run(wl);
  };
  const SimResult healthy = run_with(0);
  const SimResult lagged = run_with(50);
  EXPECT_TRUE(lagged.degraded);
  // The straggler pays its full per-access lag...
  const arch::Cycles delta0 = lagged.thread_finish[0] - healthy.thread_finish[0];
  EXPECT_GE(delta0, 1024u * 50u);
  // ...while other threads see only second-order contention shifts (the
  // straggler's requests land at different cycles on the shared buses).
  const arch::Cycles delta1 = lagged.thread_finish[1] > healthy.thread_finish[1]
                                  ? lagged.thread_finish[1] - healthy.thread_finish[1]
                                  : healthy.thread_finish[1] - lagged.thread_finish[1];
  EXPECT_LT(delta1, delta0 / 4);
}

TEST(ChipFaults, FlipRateOneCorruptsEveryMemoryRead) {
  SimConfig cfg;
  for (unsigned c = 0; c < 4; ++c) cfg.faults.flips.push_back({c, 1.0});
  Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  Workload wl = read_streams(4, 2048, arch::Addr{1} << 21);
  const SimResult res = chip.run(wl);
  EXPECT_TRUE(res.degraded);
  const std::uint64_t mem_reads =
      res.mem_read_bytes / cfg.interleave.line_size();
  EXPECT_GT(mem_reads, 0u);
  EXPECT_EQ(res.corrupted_reads, mem_reads);
  std::uint64_t per_mc = 0;
  ASSERT_EQ(res.mc_corrupted_reads.size(), 4u);
  for (std::uint64_t c : res.mc_corrupted_reads) per_mc += c;
  EXPECT_EQ(per_mc, res.corrupted_reads);
  EXPECT_EQ(res.corruption_log.size(), SimResult::kCorruptionLogCap);
}

TEST(ChipFaults, FlipRateZeroCorruptsNothing) {
  SimConfig cfg;
  cfg.faults.flips.push_back({0, 0.0});
  Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  Workload wl = read_streams(4, 1024, arch::Addr{1} << 21);
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.corrupted_reads, 0u);
  EXPECT_TRUE(res.corruption_log.empty());
}

TEST(ChipFaults, FlipsReplayExactlyForEqualSeeds) {
  auto run_with_seed = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.flip_seed = seed;
    for (unsigned c = 0; c < 4; ++c) cfg.faults.flips.push_back({c, 0.05});
    Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
    Workload wl = read_streams(8, 2048, arch::Addr{1} << 21);
    return chip.run(wl);
  };
  const SimResult a = run_with_seed(42);
  const SimResult b = run_with_seed(42);
  const SimResult c = run_with_seed(43);
  EXPECT_GT(a.corrupted_reads, 0u);
  EXPECT_EQ(a.corrupted_reads, b.corrupted_reads);
  ASSERT_EQ(a.corruption_log.size(), b.corruption_log.size());
  for (std::size_t i = 0; i < a.corruption_log.size(); ++i) {
    EXPECT_EQ(a.corruption_log[i].cycle, b.corruption_log[i].cycle);
    EXPECT_EQ(a.corruption_log[i].addr, b.corruption_log[i].addr);
    EXPECT_EQ(a.corruption_log[i].controller, b.corruption_log[i].controller);
  }
  // A different seed draws a different pattern (same expected count).
  EXPECT_NE(a.corrupted_reads, 0u);
  bool same_pattern = a.corrupted_reads == c.corrupted_reads;
  if (same_pattern && !a.corruption_log.empty() && !c.corruption_log.empty())
    same_pattern = a.corruption_log[0].cycle == c.corruption_log[0].cycle &&
                   a.corruption_log[0].addr == c.corruption_log[0].addr;
  EXPECT_FALSE(same_pattern);
}

TEST(ChipFaults, FlipCountTracksRate) {
  auto corrupted_at = [](double rate) {
    SimConfig cfg;
    for (unsigned c = 0; c < 4; ++c) cfg.faults.flips.push_back({c, rate});
    Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
    Workload wl = read_streams(8, 4096, arch::Addr{1} << 21);
    const SimResult res = chip.run(wl);
    return std::pair<std::uint64_t, std::uint64_t>{
        res.corrupted_reads, res.mem_read_bytes / cfg.interleave.line_size()};
  };
  const auto [hits_lo, reads_lo] = corrupted_at(0.01);
  const auto [hits_hi, reads_hi] = corrupted_at(0.25);
  EXPECT_EQ(reads_lo, reads_hi);  // the flip draw never alters timing/traffic
  // Binomial(reads, rate) concentrates tightly at these sizes; a factor-of-2
  // envelope around the mean will not flake.
  const double mean_lo = static_cast<double>(reads_lo) * 0.01;
  const double mean_hi = static_cast<double>(reads_hi) * 0.25;
  EXPECT_GT(static_cast<double>(hits_lo), mean_lo / 2);
  EXPECT_LT(static_cast<double>(hits_lo), mean_lo * 2);
  EXPECT_GT(static_cast<double>(hits_hi), mean_hi / 2);
  EXPECT_LT(static_cast<double>(hits_hi), mean_hi * 2);
  EXPECT_GT(hits_hi, hits_lo);
}

TEST(ChipFaults, FlipsDoNotAlterTiming) {
  auto run_with = [](bool flips) {
    SimConfig cfg;
    if (flips)
      for (unsigned c = 0; c < 4; ++c) cfg.faults.flips.push_back({c, 0.5});
    Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
    Workload wl = read_streams(8, 2048, arch::Addr{1} << 21);
    return chip.run(wl);
  };
  const SimResult clean = run_with(false);
  const SimResult flipped = run_with(true);
  // Corruption is a data fault, not a timing fault: cycle-exact equality.
  EXPECT_EQ(flipped.total_cycles, clean.total_cycles);
  EXPECT_EQ(flipped.mem_read_bytes, clean.mem_read_bytes);
  EXPECT_EQ(flipped.mem_write_bytes, clean.mem_write_bytes);
  EXPECT_GT(flipped.corrupted_reads, 0u);
}

TEST(ChipFaults, InvalidFaultSpecRejectedAtConstruction) {
  SimConfig cfg;
  cfg.faults.offline_controllers = {0, 1, 2, 3};
  EXPECT_THROW(Chip(cfg, arch::equidistant_placement(1, cfg.topology)),
               std::invalid_argument);
}

TEST(ChipFaults, WatchdogAbortsOverBudgetRun) {
  SimConfig cfg;
  cfg.cycle_budget = 100;  // far too little for 64k misses
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  Workload wl = read_streams(2, 1 << 16, arch::Addr{1} << 21);
  const auto result = chip.try_run(wl);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("watchdog"), std::string::npos);
  // The throwing API surfaces the same diagnostic.
  Workload wl2 = read_streams(2, 1 << 16, arch::Addr{1} << 21);
  EXPECT_THROW(chip.run(wl2), std::runtime_error);
}

TEST(ChipFaults, GenerousBudgetDoesNotTrip) {
  SimConfig cfg;
  cfg.cycle_budget = arch::Cycles{1} << 40;
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  Workload wl = read_streams(2, 512, arch::Addr{1} << 21);
  const auto result = chip.try_run(wl);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result.value().accesses, 1024u);
}

}  // namespace
}  // namespace mcopt::sim
