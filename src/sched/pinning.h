#pragma once
// Thread placement ("pinning"). The paper uses Solaris processor_bind() /
// SUNW_MP_PROCBIND; the Linux equivalent is sched_setaffinity. On T2-class
// machines pinning is mandatory for reproducible bandwidth numbers; we
// expose the same capability for the native kernels.

#include <string>
#include <vector>

namespace mcopt::sched {

/// Number of CPUs visible to this process.
[[nodiscard]] unsigned online_cpus();

/// Pins the calling thread to `cpu`. Returns false (and leaves affinity
/// unchanged) if the CPU does not exist or the call is not permitted.
bool pin_current_thread(unsigned cpu);

/// RAII affinity guard: pins on construction, restores the previous mask on
/// destruction. `ok()` reports whether pinning took effect.
class ScopedPin {
 public:
  explicit ScopedPin(unsigned cpu);
  ~ScopedPin();
  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  std::vector<unsigned char> saved_mask_;
  bool ok_ = false;
};

/// Pins OpenMP thread t to CPU (t * stride) % online_cpus(); call from
/// inside a parallel region via pin_omp_threads(). Equivalent in spirit to
/// SUNW_MP_PROCBIND's equidistant placement. Returns the number of threads
/// successfully pinned.
unsigned pin_omp_threads(unsigned stride = 1);

}  // namespace mcopt::sched
