// Tier-1 promotion of the fail-back contract (DESIGN.md §4k): after a
// scheduled socket outage expires, the supervised loop must rediscover the
// recovered domain through canary probes, readmit it through the staged
// derate ramp, rebalance shards back onto it, and converge onto the
// full-healthy analytic node model — where the recovery-disabled plateau
// (the pre-prober behavior: belief carries forward for good) sits on the
// survivor model forever. The flap pin holds the replan budget against a
// socket that oscillates dead/alive, and the split pin holds the
// shard-level rebalancing + CRC discipline on a wider node.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "runtime/numa_loop.h"
#include "sim/analytic.h"
#include "sim/fault_schedule.h"

namespace mcopt {
namespace {

/// Analytic node bandwidth of a shard placement under `faults`, pricing
/// exactly as the loop does (proportional strand share per shard).
double model_bw(const std::vector<runtime::NodeJob>& jobs, unsigned threads,
                std::size_t n, const runtime::NodeLoopConfig& cfg,
                const sim::FaultSpec& faults) {
  const arch::AddressMap map(cfg.node.sim.interleave);
  const unsigned sockets = cfg.node.node.num_sockets;
  std::vector<std::vector<sim::AnalyticStream>> streams(sockets);
  std::vector<unsigned> strands(sockets, 0);
  for (const runtime::NodeJob& job : jobs) {
    const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                      {job.bases[1], false},
                                                      {job.bases[2], false},
                                                      {job.bases[3], false}};
    const auto physical = sim::expand_rfo(logical);
    auto& dst = streams[job.compute_socket];
    dst.insert(dst.end(), physical.begin(), physical.end());
    const double frac =
        static_cast<double>(job.count) / static_cast<double>(n);
    strands[job.compute_socket] += std::max<unsigned>(
        1, static_cast<unsigned>(std::lround(threads * frac)));
  }
  return sim::estimate_node_bandwidth(streams, strands, cfg.node.sim.calibration,
                                      map, cfg.node.node,
                                      cfg.node.sim.topology.clock_ghz, faults)
      .bandwidth;
}

TEST(RecoveryRegression, OutageAndReturnConvergesToFullModel) {
  // socket 1's memory dies at 15% of the healthy horizon and returns at 40%.
  // Without the prober the supervisor would believe it dead forever (the
  // one-way evidence rule); with it the loop must probe, readmit, pull the
  // orphan back, and run the tail at the full-healthy model.
  constexpr std::size_t kN = 65536;
  runtime::NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 2;
  cfg.node.validate();
  cfg.threads = 31;  // saturating, de-resonated (32 would period-align)
  cfg.slices = 24;

  runtime::NodeLoopConfig warm = cfg;
  warm.supervise = false;
  const auto healthy = runtime::run_supervised_node_triad(kN, warm);
  const auto resolved = sim::FaultSchedule::parse("sock1:off@15%..40%")
                            .value()
                            .resolved(healthy.total_cycles);
  ASSERT_TRUE(resolved.check(cfg.node.sim.interleave, 2).ok());
  cfg.node.sim.fault_schedule = resolved;
  cfg.supervise = true;
  const auto sup = runtime::run_supervised_node_triad(kN, cfg);

  // Plateau baseline: identical run with the prober off.
  runtime::NodeLoopConfig plateau_cfg = cfg;
  plateau_cfg.detector.recovery.enabled = false;
  const auto plateau = runtime::run_supervised_node_triad(kN, plateau_cfg);

  // The probe channel fired and confirmed the recovery.
  EXPECT_GE(sup.probes, 1u);
  EXPECT_GE(sup.recoveries, 1u);
  EXPECT_GE(sup.readmissions, 1u);
  // The belief/DES divergence window opened (schedule cleared, belief stale)
  // and is what the probe closed.
  EXPECT_GE(sup.belief_stale_windows, 1u);
  // Failover out plus fail-back home.
  EXPECT_GE(sup.replans, 2u);
  EXPECT_EQ(plateau.probes, 0u);
  EXPECT_EQ(plateau.recoveries, 0u);

  // Fail-back landed: every shard back on its natural socket, whole.
  ASSERT_EQ(sup.final_jobs.size(), 2u);
  for (const runtime::NodeJob& job : sup.final_jobs) {
    EXPECT_EQ(job.compute_socket, job.job_id);
    EXPECT_EQ(job.home_socket, job.job_id);
    EXPECT_EQ(job.count, kN);
  }
  // The plateau never rediscovers socket 1.
  for (const runtime::NodeJob& job : plateau.final_jobs) {
    EXPECT_EQ(job.compute_socket, 0u);
    EXPECT_EQ(job.home_socket, 0u);
  }

  // Converged tail >= 0.95x the full-healthy analytic model of the restored
  // placement; the recovery-off plateau tail must sit strictly below it.
  const double ghz = cfg.node.sim.topology.clock_ghz;
  ASSERT_FALSE(sup.replan_log.empty());
  const double full_model =
      model_bw(sup.final_jobs, cfg.threads, kN, cfg, sim::FaultSpec{});
  ASSERT_GT(full_model, 0.0);
  const double tail = sup.tail_bandwidth(sup.replan_log.back().at, ghz);
  EXPECT_GE(tail, 0.95 * full_model)
      << "recovered tail " << tail / 1e9 << " GB/s vs full model "
      << full_model / 1e9 << " GB/s";
  ASSERT_FALSE(plateau.replan_log.empty());
  const double plateau_tail =
      plateau.tail_bandwidth(plateau.replan_log.back().at, ghz);
  EXPECT_GT(tail, plateau_tail)
      << "fail-back must beat the survivor-model plateau";
  // Overall makespan: the prober + fail-back migration are pure overhead on
  // this short horizon (the node chips don't saturate at two jobs, so the
  // packed plateau loses little), but that overhead must stay bounded — the
  // recovered run may not give back more than 15% of the plateau's rate. The
  // capacity win itself is pinned above via the tail comparison.
  EXPECT_GE(sup.bandwidth, 0.85 * plateau.bandwidth)
      << "healthy=" << healthy.bandwidth / 1e9 << " sup=" << sup.bandwidth / 1e9
      << " plateau=" << plateau.bandwidth / 1e9 << " tail=" << tail / 1e9
      << " plateau_tail=" << plateau_tail / 1e9
      << " sup_mig=" << sup.migration_cycles << " sup_probe=" << sup.probe_cycles
      << " sup_total=" << sup.total_cycles
      << " plateau_total=" << plateau.total_cycles;
}

TEST(RecoveryRegression, FlappingSocketKeepsReplanBudget) {
  // A socket that oscillates dead/alive must cost a bounded number of
  // replans: at most one per schedule event plus the readmission traffic,
  // never a thrash storm. The breaker's geometric escalation is what holds
  // the line — each relapse buys a longer quarantine.
  constexpr std::size_t kN = 32768;
  runtime::NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 2;
  cfg.node.validate();
  cfg.threads = 31;  // saturating, de-resonated
  // Windows must be fine relative to the flap period: the detector needs
  // stable_window consecutive diagnoses inside each half-period, so give it
  // ~6 windows per off phase.
  cfg.slices = 40;

  runtime::NodeLoopConfig warm = cfg;
  warm.supervise = false;
  const auto healthy = runtime::run_supervised_node_triad(kN, warm);
  const arch::Cycles horizon = healthy.total_cycles;
  const std::string spec =
      "sock1:flap=" + std::to_string(horizon / 3) + "@10%..70%";
  const auto parsed = sim::FaultSchedule::parse(spec);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const auto resolved = parsed.value().resolved(horizon);
  ASSERT_TRUE(resolved.check(cfg.node.sim.interleave, 2).ok());
  ASSERT_FALSE(resolved.has_flap());  // resolved() expanded the sugar
  ASSERT_GE(resolved.event_count(), 2u);
  cfg.node.sim.fault_schedule = resolved;
  cfg.supervise = true;

  const auto sup = runtime::run_supervised_node_triad(kN, cfg);
  EXPECT_GE(sup.probes, 1u);
  // Bounded replans: schedule events + completed readmission ramps + 1.
  EXPECT_LE(sup.replans, static_cast<unsigned>(resolved.event_count()) +
                             sup.readmissions + 1u)
      << "replan thrash under flap";
  // Every committed placement stayed inside its believed-healthy set.
  for (const runtime::NodeReplanRecord& replan : sup.replan_log)
    for (const runtime::NodeJob& job : replan.jobs) {
      EXPECT_NE(std::find(replan.healthy_sockets.begin(),
                          replan.healthy_sockets.end(), job.compute_socket),
                replan.healthy_sockets.end());
      EXPECT_NE(std::find(replan.healthy_sockets.begin(),
                          replan.healthy_sockets.end(), job.home_socket),
                replan.healthy_sockets.end());
    }
  EXPECT_GT(sup.bandwidth, 0.0);
}

TEST(RecoveryRegression, OrphanSplitsAcrossSurvivorsWithCrc) {
  // On a 4-socket node, one dead socket's job must split across the three
  // survivors (shard-level rebalancing) instead of piling whole onto one,
  // and every moved range must come through CRC-verified.
  constexpr std::size_t kN = 32768;
  runtime::NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 4;
  cfg.node.validate();
  cfg.threads = 14;
  cfg.slices = 12;

  runtime::NodeLoopConfig warm = cfg;
  warm.supervise = false;
  const auto healthy = runtime::run_supervised_node_triad(kN, warm);
  const auto resolved = sim::FaultSchedule::parse("sock3:off@20%")
                            .value()
                            .resolved(healthy.total_cycles);
  ASSERT_TRUE(resolved.check(cfg.node.sim.interleave, 4).ok());
  cfg.node.sim.fault_schedule = resolved;
  cfg.supervise = true;
  const auto sup = runtime::run_supervised_node_triad(kN, cfg);

  ASSERT_GE(sup.replans, 1u);
  // Job 3 ends split across the survivors: several shards, distinct healthy
  // sockets, ranges tiling [0, kN) exactly.
  std::vector<const runtime::NodeJob*> orphan;
  for (const runtime::NodeJob& job : sup.final_jobs)
    if (job.job_id == 3u) orphan.push_back(&job);
  ASSERT_GE(orphan.size(), 2u) << "orphan job was not split";
  std::size_t covered = 0;
  std::vector<unsigned> targets;
  for (const runtime::NodeJob* shard : orphan) {
    covered += shard->count;
    targets.push_back(shard->compute_socket);
    EXPECT_NE(shard->compute_socket, 3u);
    EXPECT_NE(shard->home_socket, 3u);
    EXPECT_EQ(shard->compute_socket, shard->home_socket);
  }
  EXPECT_EQ(covered, kN);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()), targets.end())
      << "split shards piled onto one survivor";
  // The healthy jobs stayed home.
  for (const runtime::NodeJob& job : sup.final_jobs)
    if (job.job_id != 3u) {
      EXPECT_EQ(job.compute_socket, job.job_id);
      EXPECT_EQ(job.count, kN);
    }
  // Integrity: every moved range CRC-verified, and the migration copied the
  // orphan's live arrays.
  EXPECT_GE(sup.crc_ranges_verified, static_cast<unsigned>(orphan.size()));
  ASSERT_FALSE(sup.replan_log.empty());
  EXPECT_GT(sup.replan_log.front().moved_bytes, 0u);
  EXPECT_EQ(sup.replan_log.front().crc_ranges_verified,
            sup.crc_ranges_verified);
}

TEST(RecoveryRegression, RecoveryLoopIsDeterministic) {
  // The probe/readmit/rebalance pipeline must replay bit-for-bit: equal
  // seeds give equal probe counts, placements and timelines.
  auto run_once = [] {
    constexpr std::size_t kN = 16384;
    runtime::NodeLoopConfig cfg;
    cfg.node.node.num_sockets = 2;
    cfg.node.validate();
    cfg.threads = 14;
    cfg.slices = 16;
    cfg.seed = 42;
    runtime::NodeLoopConfig warm = cfg;
    warm.supervise = false;
    const auto horizon =
        runtime::run_supervised_node_triad(kN, warm).total_cycles;
    cfg.node.sim.fault_schedule = sim::FaultSchedule::parse("sock1:off@15%..50%")
                                      .value()
                                      .resolved(horizon);
    cfg.supervise = true;
    return runtime::run_supervised_node_triad(kN, cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.probe_cycles, b.probe_cycles);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.readmissions, b.readmissions);
  EXPECT_EQ(a.belief_stale_windows, b.belief_stale_windows);
  ASSERT_EQ(a.final_jobs.size(), b.final_jobs.size());
  for (std::size_t i = 0; i < a.final_jobs.size(); ++i) {
    EXPECT_EQ(a.final_jobs[i].job_id, b.final_jobs[i].job_id);
    EXPECT_EQ(a.final_jobs[i].begin, b.final_jobs[i].begin);
    EXPECT_EQ(a.final_jobs[i].count, b.final_jobs[i].count);
    EXPECT_EQ(a.final_jobs[i].compute_socket, b.final_jobs[i].compute_socket);
    EXPECT_EQ(a.final_jobs[i].bases, b.final_jobs[i].bases);
  }
}

}  // namespace
}  // namespace mcopt
