// Fig. 7 reproduction: D3Q19 lattice-Boltzmann performance (MLUPs/s) versus
// cubic domain size for the IJKv and IvJK data layouts, with and without
// outer-loop coalescing, at 32 and 64 threads.
//
// Paper shape (Sect. 2.4): IvJK clearly beats IJKv (the 19-distribution
// index right after x skews the streams across controllers automatically);
// domain sizes where the padded x-row length hits a multiple of 64 elements
// thrash unless padded; the sawtooth "modulo effect" from nz not dividing
// by the thread count disappears when the outer z,y loops are coalesced.
//
// Fault parity with fig2/fig6: --fault injects a static hardware fault set
// (including mc<i>:flip= silent corruption) into every simulated cell, and
// --schedule runs each cell under a transient-fault schedule whose
// percent-relative bounds resolve against that cell's own healthy run
// length. --solve switches to a native checkpointable solve (see below).

#include <algorithm>

#include "common.h"
#include "kernels/lbm/solver.h"
#include "runtime/checkpoint.h"
#include "util/crc.h"
#include "util/timer.h"

namespace {

// --solve mode: native D3Q19 channel flow (walls on the z faces, body force
// along x) for --solve steps on an n^3 domain, with crash-consistent
// checkpointing every --checkpoint-every steps and --resume continuing to a
// bitwise-identical field (asserted on the printed FIELD_CRC line).
int run_solve_mode(const mcopt::util::Cli& cli) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto total = static_cast<std::uint64_t>(cli.get_int("solve"));
  const auto every = static_cast<std::uint64_t>(cli.get_int("checkpoint-every"));
  const std::string ck_path = cli.get_str("checkpoint");

  Solver::Params p;
  p.geometry = Geometry{n, n, n, 0, DataLayout::kIvJK};
  p.force = {1e-5, 0.0, 0.0};
  Solver solver(p);
  solver.make_channel_walls_z();
  solver.initialize(1.0);

  if (!cli.get_str("resume").empty()) {
    const auto status =
        runtime::load_lbm_checkpoint(cli.get_str("resume"), solver);
    if (!status.ok()) {
      std::fprintf(stderr, "fig7_lbm: %s\n", status.error().message.c_str());
      return 2;
    }
    std::printf("# resumed from %s at step %u\n", cli.get_str("resume").c_str(),
                solver.steps_taken());
  }

  double step_seconds = 0.0;
  util::Timer wall;
  while (solver.steps_taken() < total) {
    step_seconds += solver.step();
    if (every != 0 &&
        (solver.steps_taken() % every == 0 || solver.steps_taken() == total)) {
      const auto saved = runtime::save_lbm_checkpoint(ck_path, solver);
      if (!saved.ok()) {
        std::fprintf(stderr, "fig7_lbm: %s\n", saved.error().message.c_str());
        return 2;
      }
    }
  }

  const std::vector<double>& f = solver.distributions();
  const std::uint32_t crc =
      mcopt::util::crc32c(f.data(), f.size() * sizeof(double));
  std::printf("STEPS=%u FIELD_CRC=0x%08x mass=%.12e step_s=%.3f wall_s=%.3f\n",
              solver.steps_taken(), crc, solver.total_mass(), step_seconds,
              wall.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  util::Cli cli("Fig. 7: D3Q19 LBM MLUPs/s vs domain size and data layout");
  cli.flag("full", "N = 30..126 step 4 (default: a representative subset)")
      .option_str("fault", "",
                  "inject hardware faults into every simulated cell, e.g. "
                  "mc0:off,mc1:derate=0.5,mc2:flip=1e-9")
      .option_str("schedule", "",
                  "transient-fault schedule for every simulated cell (e.g. "
                  "mc1:off@25%..75%); percent bounds resolve per cell")
      .option_int("n", 30, "domain size for --solve mode")
      .option_int("solve", 0,
                  "native solve for this many steps on an n^3 channel "
                  "(checkpointable; prints FIELD_CRC)")
      .option_int("checkpoint-every", 0,
                  "write a crash-consistent checkpoint every N steps "
                  "(--solve mode)")
      .option_str("checkpoint", "fig7_lbm.ckpt",
                  "checkpoint file path (--solve mode)")
      .option_str("resume", "",
                  "resume a --solve run from this checkpoint file")
      .option_str("csv", "", "mirror results to this CSV file");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  if (cli.get_int("solve") > 0) return run_solve_mode(cli);

  sim::SimConfig cfg;
  cfg.faults = bench::parse_fault_knob(cli.get_str("fault"), cfg);
  if (cfg.faults.any())
    std::printf("# DEGRADED chip: %s\n", cfg.faults.describe().c_str());
  const auto schedule_text = cli.get_str("schedule");
  const bool scheduled = !schedule_text.empty();

  std::vector<std::size_t> sizes;
  if (cli.get_flag("full")) {
    for (std::size_t n = 30; n <= 126; n += 4) sizes.push_back(n);
    sizes.push_back(62);  // thrashing size (62+2 = 64-element rows)
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  } else {
    sizes = {30, 38, 46, 54, 62, 64, 70, 78, 94};
  }

  std::uint64_t corrupted_reads = 0;
  auto cell = [&](std::size_t n, DataLayout layout, LoopOrder order,
                  unsigned threads, std::size_t pad_x = 0) {
    sim::SimConfig run_cfg = cfg;
    if (scheduled) {
      // Percent-relative bounds refer to this cell's own run: probe the
      // healthy length first, then resolve the schedule against it.
      const auto probe =
          bench::lbm_sim_result(n, layout, order, threads, pad_x, cfg);
      run_cfg.fault_schedule = bench::parse_schedule_knob(
          schedule_text, run_cfg, probe.total_cycles);
    }
    const auto res =
        bench::lbm_sim_result(n, layout, order, threads, pad_x, run_cfg);
    corrupted_reads += res.corrupted_reads;
    const Geometry g{n, n, n, pad_x, layout};
    return bench::checked_rate(
        static_cast<double>(g.interior_cells()) / res.seconds() / 1e6,
        "LBM MLUPs");
  };

  std::printf(
      "# D3Q19 LBM, one time step, MLUPs/s (scaled domain; paper sweeps "
      "64..320)\n# IJKv = structure-of-arrays; IvJK = v interleaved after x; "
      "fused = z,y coalesced\n# pad = IJKv with x padded by 2 elements\n\n");

  const std::vector<std::string> header = {
      "N",          "64T IJKv", "64T IJKv pad", "64T IvJK",
      "64T IvJK fused", "32T IvJK fused"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t n : sizes) {
    rows.push_back(
        {std::to_string(n),
         util::fmt_fixed(cell(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64), 2),
         util::fmt_fixed(cell(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64, 2), 2),
         util::fmt_fixed(cell(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 64), 2),
         util::fmt_fixed(cell(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 64), 2),
         util::fmt_fixed(cell(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32), 2)});
    util::log_debug("N=" + std::to_string(n) + " done");
  }
  bench::emit(header, rows, cli.get_str("csv"));

  if (corrupted_reads != 0)
    std::printf("\n# integrity: %llu corrupted reads served by flipping "
                "controllers across the sweep\n",
                static_cast<unsigned long long>(corrupted_reads));

  const double ijkv = cell(62, DataLayout::kIJKv, LoopOrder::kOuterZ, 64);
  const double ivjk = cell(62, DataLayout::kIvJK, LoopOrder::kOuterZ, 64);
  const double outer33 = cell(33, DataLayout::kIvJK, LoopOrder::kOuterZ, 32);
  const double fused33 = cell(33, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32);
  std::printf(
      "\nshape check: at the thrashing size N=62, IvJK/IJKv = %.2fx (paper: "
      "~2x); at N=33/32T, coalescing recovers %.2fx over outer-z (modulo "
      "effect).\n",
      ivjk / ijkv, fused33 / outer33);
  return 0;
}
