#include "kernels/stream.h"

#include <gtest/gtest.h>

#include <vector>

namespace mcopt::kernels {
namespace {

TEST(StreamNative, KernelsComputeCorrectResults) {
  const std::size_t n = 1000;
  std::vector<double> a(n, 1.0), b(n, 0.0), c(n, 0.0);
  const double s = 3.0;

  stream_sweep_seconds(StreamOp::kCopy, a.data(), b.data(), c.data(), n, s);
  for (double v : c) ASSERT_DOUBLE_EQ(v, 1.0);  // c = a

  stream_sweep_seconds(StreamOp::kScale, a.data(), b.data(), c.data(), n, s);
  for (double v : b) ASSERT_DOUBLE_EQ(v, 3.0);  // b = s*c

  stream_sweep_seconds(StreamOp::kAdd, a.data(), b.data(), c.data(), n, s);
  for (double v : c) ASSERT_DOUBLE_EQ(v, 4.0);  // c = a+b

  stream_sweep_seconds(StreamOp::kTriad, a.data(), b.data(), c.data(), n, s);
  for (double v : a) ASSERT_DOUBLE_EQ(v, 15.0);  // a = b + s*c
}

TEST(StreamNative, SweepTimeIsPositive) {
  const std::size_t n = 1 << 16;
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
  EXPECT_GT(stream_sweep_seconds(StreamOp::kTriad, a.data(), b.data(), c.data(),
                                 n, 2.0),
            0.0);
}

TEST(StreamBytes, ReportedFollowsConvention) {
  EXPECT_EQ(stream_reported_bytes(StreamOp::kCopy, 100), 1600u);
  EXPECT_EQ(stream_reported_bytes(StreamOp::kScale, 100), 1600u);
  EXPECT_EQ(stream_reported_bytes(StreamOp::kAdd, 100), 2400u);
  EXPECT_EQ(stream_reported_bytes(StreamOp::kTriad, 100), 2400u);
}

TEST(StreamBytes, ActualAddsRfo) {
  // The paper: actual triad traffic is 4/3 of reported.
  EXPECT_EQ(stream_actual_bytes(StreamOp::kTriad, 300),
            stream_reported_bytes(StreamOp::kTriad, 300) * 4 / 3);
  // Copy: 3/2 of reported.
  EXPECT_EQ(stream_actual_bytes(StreamOp::kCopy, 300),
            stream_reported_bytes(StreamOp::kCopy, 300) * 3 / 2);
}

TEST(StreamDescs, RolesPerOp) {
  const StreamBases bases{100, 200, 300};
  const auto copy = stream_descs(StreamOp::kCopy, bases);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[0].base, 100u);  // read a
  EXPECT_FALSE(copy[0].write);
  EXPECT_EQ(copy[1].base, 300u);  // write c
  EXPECT_TRUE(copy[1].write);

  const auto triad = stream_descs(StreamOp::kTriad, bases);
  ASSERT_EQ(triad.size(), 3u);
  EXPECT_EQ(triad[0].base, 200u);  // read b
  EXPECT_EQ(triad[1].base, 300u);  // read c
  EXPECT_EQ(triad[2].base, 100u);  // write a
  EXPECT_TRUE(triad[2].write);
  EXPECT_EQ(triad[2].flops_before, 2);

  const auto add = stream_descs(StreamOp::kAdd, bases);
  ASSERT_EQ(add.size(), 3u);
  EXPECT_TRUE(add[2].write);
}

TEST(StreamWorkload, SizesAndTraffic) {
  const StreamBases bases{0, 1 << 20, 2 << 20};
  auto wl = make_stream_workload(StreamOp::kTriad, bases, 1000, 8,
                                 sched::Schedule::static_block(), 2);
  ASSERT_EQ(wl.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& p : wl) total += p->total_accesses();
  EXPECT_EQ(total, 1000u * 3 * 2);
}

TEST(CommonBlock, BasesFollowFortranLayout) {
  const StreamBases bases = common_block_bases(0x10000, 100, 28);
  EXPECT_EQ(bases.a, 0x10000u);
  EXPECT_EQ(bases.b, 0x10000u + 128 * 8);
  EXPECT_EQ(bases.c, 0x10000u + 2 * 128 * 8);
}

TEST(CommonBlock, ZeroOffsetBasesAliasWhenNIsPowerOfTwo) {
  const arch::AddressMap map;
  const StreamBases bases = common_block_bases(0, 1 << 20, 0);
  EXPECT_EQ(map.controller_of(bases.a), map.controller_of(bases.b));
  EXPECT_EQ(map.controller_of(bases.a), map.controller_of(bases.c));
}

TEST(CommonBlock, Offset32SeparatesB) {
  // The paper: at odd multiples of 32 DP words, bit 8 differs for array B.
  const arch::AddressMap map;
  const StreamBases bases = common_block_bases(0, 1 << 20, 32);
  EXPECT_NE(map.controller_of(bases.a), map.controller_of(bases.b));
  EXPECT_EQ(map.controller_of(bases.a), map.controller_of(bases.c));
}

TEST(StreamOpNames, ToString) {
  EXPECT_EQ(to_string(StreamOp::kCopy), "copy");
  EXPECT_EQ(to_string(StreamOp::kScale), "scale");
  EXPECT_EQ(to_string(StreamOp::kAdd), "add");
  EXPECT_EQ(to_string(StreamOp::kTriad), "triad");
}

}  // namespace
}  // namespace mcopt::kernels
