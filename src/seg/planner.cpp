#include "seg/planner.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "util/table.h"

namespace mcopt::seg {
namespace {

/// Shared validation of a surviving-controller subset against the map.
void require_valid_subset(std::span<const unsigned> surviving,
                          const arch::AddressMap& map, const char* who) {
  if (surviving.empty())
    throw std::invalid_argument(std::string(who) +
                                ": surviving controller set is empty");
  std::set<unsigned> seen;
  for (unsigned c : surviving) {
    if (c >= map.spec().num_controllers())
      throw std::invalid_argument(std::string(who) + ": controller " +
                                  std::to_string(c) + " out of range");
    if (!seen.insert(c).second)
      throw std::invalid_argument(std::string(who) + ": duplicate controller " +
                                  std::to_string(c));
  }
}

}  // namespace

LayoutSpec StreamPlan::spec_for(std::size_t k) const {
  LayoutSpec spec;
  spec.base_align = base_align;
  spec.segment_align = 0;
  spec.shift = 0;
  spec.offset = offsets.at(k);
  return spec;
}

StreamPlan plan_stream_offsets(std::size_t num_arrays,
                               const arch::AddressMap& map) {
  const std::size_t period = map.spec().period_bytes();
  const std::size_t stride = period / map.spec().num_controllers();
  StreamPlan plan;
  plan.base_align = std::max<std::size_t>(8192, period);
  plan.offsets.resize(num_arrays);
  for (std::size_t k = 0; k < num_arrays; ++k)
    plan.offsets[k] = k * stride % period;
  return plan;
}

StreamPlan plan_stream_offsets(std::size_t num_arrays,
                               const arch::AddressMap& map,
                               std::span<const unsigned> surviving) {
  require_valid_subset(surviving, map, "plan_stream_offsets");
  const std::size_t period = map.spec().period_bytes();
  const std::size_t stride = period / map.spec().num_controllers();
  StreamPlan plan;
  plan.base_align = std::max<std::size_t>(8192, period);
  plan.offsets.resize(num_arrays);
  // A page-aligned base sits on controller 0, so an offset of c*stride lands
  // the array on controller c; cycle through the healthy subset only.
  for (std::size_t k = 0; k < num_arrays; ++k)
    plan.offsets[k] = surviving[k % surviving.size()] * stride;
  return plan;
}

LayoutSpec RowPlan::spec() const {
  LayoutSpec spec;
  spec.base_align = base_align;
  spec.segment_align = segment_align;
  spec.shift = shift_cycle.empty() ? shift : 0;
  spec.shift_cycle = shift_cycle;
  spec.offset = 0;
  return spec;
}

RowPlan plan_row_layout(const arch::AddressMap& map) {
  RowPlan plan;
  plan.segment_align = map.spec().period_bytes();
  plan.shift = map.spec().period_bytes() / map.spec().num_controllers();
  plan.base_align = std::max<std::size_t>(8192, plan.segment_align);
  return plan;
}

RowPlan plan_row_layout(const arch::AddressMap& map,
                        std::span<const unsigned> surviving) {
  require_valid_subset(surviving, map, "plan_row_layout");
  RowPlan plan = plan_row_layout(map);
  const std::size_t stride =
      map.spec().period_bytes() / map.spec().num_controllers();
  // Row s lands on controller surviving[s % size]; with the paper's static,1
  // schedule, T <= surviving.size() concurrent rows stay on distinct healthy
  // controllers.
  plan.shift_cycle.reserve(surviving.size());
  for (unsigned c : surviving) plan.shift_cycle.push_back(c * stride);
  return plan;
}

namespace {

/// Validation of a socket subset against the node topology.
void require_valid_sockets(std::span<const unsigned> sockets,
                           const arch::NodeTopology& node, const char* what) {
  if (sockets.empty())
    throw std::invalid_argument(std::string("plan_node_stream_shards: ") +
                                what + " socket set is empty");
  std::set<unsigned> seen;
  for (unsigned s : sockets) {
    if (s >= node.num_sockets)
      throw std::invalid_argument(std::string("plan_node_stream_shards: ") +
                                  what + " socket " + std::to_string(s) +
                                  " out of range");
    if (!seen.insert(s).second)
      throw std::invalid_argument(std::string("plan_node_stream_shards: duplicate ") +
                                  what + " socket " + std::to_string(s));
  }
}

}  // namespace

NodeStreamPlan plan_node_stream_shards(std::size_t num_arrays,
                                       const arch::AddressMap& map,
                                       const arch::NodeTopology& node,
                                       std::span<const unsigned> compute_sockets,
                                       std::span<const unsigned> memory_sockets,
                                       std::vector<unsigned>& domain_load) {
  if (num_arrays == 0)
    throw std::invalid_argument("plan_node_stream_shards: num_arrays == 0");
  require_valid_sockets(compute_sockets, node, "compute");
  require_valid_sockets(memory_sockets, node, "memory");
  if (domain_load.size() != node.num_sockets)
    throw std::invalid_argument(
        "plan_node_stream_shards: domain_load size != num_sockets");

  const std::size_t period = map.spec().period_bytes();
  const std::size_t stride = period / map.spec().num_controllers();

  NodeStreamPlan plan;
  plan.shards.reserve(compute_sockets.size());
  unsigned remote = 0;
  for (const unsigned c : compute_sockets) {
    NodeStreamPlan::Shard shard;
    shard.compute_socket = c;
    // Priced placement: per-line link cycles first, then current domain load
    // (spread orphans over equidistant survivors), then index for
    // determinism. A surviving local domain always wins at price 0.
    unsigned best = memory_sockets.front();
    for (const unsigned m : memory_sockets) {
      const auto price = [&](unsigned d) {
        return std::tuple(node.link_cycles(c, d), domain_load[d], d);
      };
      if (price(m) < price(best)) best = m;
    }
    shard.home_socket = best;
    shard.link_cycles = node.link_cycles(c, best);
    if (shard.remote()) ++remote;

    // Co-homed shards rotate through the controller stride so their streams
    // land on different controllers of the shared domain.
    const unsigned rotation = domain_load[best];
    ++domain_load[best];
    shard.streams = plan_stream_offsets(num_arrays, map);
    for (std::size_t k = 0; k < num_arrays; ++k)
      shard.streams.offsets[k] = (shard.streams.offsets[k] +
                                  static_cast<std::size_t>(rotation) * stride) %
                                 period;
    shard.bases.reserve(num_arrays);
    for (std::size_t k = 0; k < num_arrays; ++k)
      shard.bases.push_back(node.socket_base(shard.home_socket) +
                            shard.streams.offsets[k]);
    plan.shards.push_back(std::move(shard));
  }
  plan.remote_fraction =
      static_cast<double>(remote) / static_cast<double>(plan.shards.size());
  plan.summary = "shards=" + std::to_string(plan.shards.size()) +
                 " remote=" + std::to_string(remote) + "/" +
                 std::to_string(plan.shards.size());
  return plan;
}

NodeStreamPlan plan_node_stream_shards(std::size_t num_arrays,
                                       const arch::AddressMap& map,
                                       const arch::NodeTopology& node,
                                       std::span<const unsigned> compute_sockets,
                                       std::span<const unsigned> memory_sockets) {
  std::vector<unsigned> domain_load(node.num_sockets, 0);
  return plan_node_stream_shards(num_arrays, map, node, compute_sockets,
                                 memory_sockets, domain_load);
}

NodeStreamPlan plan_node_stream_shards(std::size_t num_arrays,
                                       const arch::AddressMap& map,
                                       const arch::NodeTopology& node) {
  std::vector<unsigned> all(node.num_sockets);
  for (unsigned s = 0; s < node.num_sockets; ++s) all[s] = s;
  return plan_node_stream_shards(num_arrays, map, node, all, all);
}

std::vector<std::size_t> split_shard_counts(std::size_t total,
                                            std::size_t parts) {
  if (total == 0) throw std::invalid_argument("split_shard_counts: total == 0");
  if (parts == 0) throw std::invalid_argument("split_shard_counts: parts == 0");
  parts = std::min(parts, total);
  std::vector<std::size_t> counts(parts, total / parts);
  for (std::size_t i = 0; i < total % parts; ++i) ++counts[i];
  return counts;
}

AliasReport diagnose_streams(std::span<const arch::Addr> bases,
                             const arch::AddressMap& map) {
  AliasReport report;
  report.base_controller.reserve(bases.size());
  for (arch::Addr b : bases)
    report.base_controller.push_back(map.controller_of(b));
  // One full period of lock-stepped lines captures the repeating pattern.
  const auto lines =
      static_cast<std::uint64_t>(map.spec().period_bytes() / map.spec().line_size());
  report.balance = map.lockstep_balance(bases, lines);
  report.fully_aliased =
      !bases.empty() &&
      std::all_of(report.base_controller.begin(), report.base_controller.end(),
                  [&](unsigned c) { return c == report.base_controller.front(); });
  report.summary = "streams=" + std::to_string(bases.size()) +
                   " balance=" + util::fmt_fixed(report.balance, 3) +
                   (report.fully_aliased ? " FULLY-ALIASED" : "");
  return report;
}

}  // namespace mcopt::seg
