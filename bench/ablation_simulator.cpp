// Ablation of the simulator's mechanisms, as called out in DESIGN.md: which
// modeled effect is responsible for which part of the Fig. 2 shape?
//
//  * lockstep off  -> threads drift out of phase and the offset-0 dip
//                     largely washes out (the dip REQUIRES positional
//                     coherence across the worksharing threads);
//  * DRAM rows off -> congruent bases stop paying activate chains; dips
//                     become shallower;
//  * L2 hash off   -> power-of-two layouts additionally thrash L2 sets and
//                     everything at offset 0 collapses much further than the
//                     hardware does (the real T2 hashes its L2 index);
//  * L1 off        -> every access goes to L2; latency-bound levels shift;
//  * store buffer off -> stores block like loads; write-heavy mixes slow.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Simulator mechanism ablation on STREAM triad (64T)");
  cli.flag("full", "larger arrays")
      .option_int("n", 1 << 19, "array length in DP words")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;
  const auto n =
      static_cast<std::size_t>(cli.get_flag("full") ? (1 << 21) : cli.get_int("n"));

  struct Variant {
    const char* name;
    sim::SimConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline", {}});
  {
    sim::SimConfig c;
    c.model_lockstep = false;
    variants.push_back({"no lockstep", c});
  }
  {
    sim::SimConfig c;
    c.calibration.dram_row_miss_extra = 0;
    variants.push_back({"no DRAM rows", c});
  }
  {
    sim::SimConfig c;
    c.l2_index_hash = false;
    variants.push_back({"no L2 hash", c});
  }
  {
    sim::SimConfig c;
    c.model_l1 = false;
    variants.push_back({"no L1", c});
  }
  {
    sim::SimConfig c;
    c.model_store_buffer = false;
    variants.push_back({"no store buffer", c});
  }

  std::printf(
      "# STREAM triad reported GB/s at 64 threads, N=%zu\n"
      "# offsets: 0 = fully aliased, 32 = two controllers, 40 = skewed\n\n",
      n);

  const std::vector<std::string> header = {"variant", "off=0", "off=32",
                                           "off=40", "dip ratio"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& v : variants) {
    const double d0 =
        bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 0, 64, v.cfg);
    const double d32 =
        bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 32, 64, v.cfg);
    const double d40 =
        bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 40, 64, v.cfg);
    rows.push_back({v.name, util::fmt_fixed(d0, 2), util::fmt_fixed(d32, 2),
                    util::fmt_fixed(d40, 2), util::fmt_fixed(d40 / d0, 2)});
  }
  bench::emit(header, rows, cli.get_str("csv"));
  return 0;
}
