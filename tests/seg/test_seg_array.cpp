#include "seg/seg_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace mcopt::seg {
namespace {

LayoutSpec page_spec() {
  LayoutSpec spec;
  spec.base_align = 8192;
  return spec;
}

TEST(SegArray, ConstructionAndSizes) {
  seg_array<double> a({3, 0, 5}, page_spec());
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.num_segments(), 3u);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.segment(0).size(), 3u);
  EXPECT_TRUE(a.segment(1).empty());
  EXPECT_EQ(a.segment(2).size(), 5u);
}

TEST(SegArray, DefaultConstructedIsEmpty) {
  seg_array<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.num_segments(), 0u);
  EXPECT_TRUE(a.begin() == a.end());
}

TEST(SegArray, BaseAddressHonorsAlignment) {
  seg_array<double> a(100, page_spec());
  EXPECT_EQ(a.base_address() % 8192, 0u);
}

TEST(SegArray, OffsetDisplacesElements) {
  LayoutSpec spec = page_spec();
  spec.offset = 256;
  seg_array<double> a(16, spec);
  EXPECT_EQ(a.address_of(0, 0), a.base_address() + 256);
}

TEST(SegArray, ShiftAndAlignMatchFig3) {
  LayoutSpec spec = page_spec();
  spec.segment_align = 512;
  spec.shift = 128;
  seg_array<double> a({8, 8, 8, 8}, spec);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.segment_position(s), s * 512 + s * 128);
    EXPECT_EQ(a.address_of(s, 0), a.base_address() + s * 640);
  }
}

TEST(SegArray, RejectsMisalignedShiftOrOffset) {
  LayoutSpec spec = page_spec();
  spec.shift = 4;  // not a multiple of alignof(double)
  EXPECT_THROW(seg_array<double>(std::vector<std::size_t>{4}, spec),
               std::invalid_argument);
  spec.shift = 0;
  spec.offset = 7;
  EXPECT_THROW(seg_array<double>(std::vector<std::size_t>{4}, spec),
               std::invalid_argument);
}

TEST(SegArray, GlobalIndexingCrossesSegments) {
  seg_array<int> a({2, 3, 1}, page_spec());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int>(i * 10);
  EXPECT_EQ(a.segment(0)[0], 0);
  EXPECT_EQ(a.segment(0)[1], 10);
  EXPECT_EQ(a.segment(1)[0], 20);
  EXPECT_EQ(a.segment(1)[2], 40);
  EXPECT_EQ(a.segment(2)[0], 50);
  EXPECT_EQ(a.at(5), 50);
  EXPECT_THROW((void)a.at(6), std::out_of_range);
}

TEST(SegArray, EvenSplitMatchesPaperRule) {
  const auto a = seg_array<double>::even(10, 4, page_spec());
  EXPECT_EQ(a.segment(0).size(), 3u);
  EXPECT_EQ(a.segment(1).size(), 3u);
  EXPECT_EQ(a.segment(2).size(), 2u);
  EXPECT_EQ(a.segment(3).size(), 2u);
  EXPECT_EQ(a.size(), 10u);
}

TEST(SegArrayIterator, ForwardTraversalVisitsAll) {
  seg_array<int> a({2, 0, 3, 0, 0, 1}, page_spec());
  std::iota(a.begin(), a.end(), 100);
  std::vector<int> seen;
  for (int v : a) seen.push_back(v);
  EXPECT_EQ(seen, (std::vector<int>{100, 101, 102, 103, 104, 105}));
}

TEST(SegArrayIterator, BidirectionalLaws) {
  seg_array<int> a({2, 0, 3}, page_spec());
  std::iota(a.begin(), a.end(), 0);
  auto it = a.end();
  std::vector<int> reversed;
  while (it != a.begin()) {
    --it;
    reversed.push_back(*it);
  }
  EXPECT_EQ(reversed, (std::vector<int>{4, 3, 2, 1, 0}));

  // ++/-- round trip from a mid position.
  auto mid = a.begin();
  ++mid;
  ++mid;  // element 2 (first of segment 2)
  auto copy = mid;
  ++copy;
  --copy;
  EXPECT_TRUE(copy == mid);
  EXPECT_EQ(*copy, 2);
}

TEST(SegArrayIterator, PostfixForms) {
  seg_array<int> a({2}, page_spec());
  a[0] = 5;
  a[1] = 6;
  auto it = a.begin();
  EXPECT_EQ(*it++, 5);
  EXPECT_EQ(*it, 6);
  EXPECT_EQ(*it--, 6);
  EXPECT_EQ(*it, 5);
}

TEST(SegArrayIterator, EmptyContainerBeginIsEnd) {
  seg_array<int> a({0, 0, 0}, page_spec());
  EXPECT_TRUE(a.begin() == a.end());
}

TEST(SegArrayIterator, SegmentedProtocolAccessors) {
  seg_array<int> a({2, 3}, page_spec());
  auto it = a.begin();
  EXPECT_EQ(it.segment(), a.segments_begin());
  EXPECT_EQ(it.local(), a.segment(0).begin());
  ++it;
  ++it;  // into segment 1
  EXPECT_EQ(it.segment(), a.segments_begin() + 1);
  EXPECT_EQ(it.local(), a.segment(1).begin());
  EXPECT_EQ(a.end().local(), nullptr);
  EXPECT_EQ(a.end().segment(), a.segments_end());
}

TEST(SegArrayIterator, ConstConversionAndConstAccess) {
  seg_array<int> a({3}, page_spec());
  std::iota(a.begin(), a.end(), 1);
  const seg_array<int>& ca = a;
  seg_array<int>::const_iterator cit = a.begin();  // converting ctor
  EXPECT_EQ(*cit, 1);
  int sum = 0;
  for (int v : ca) sum += v;
  EXPECT_EQ(sum, 6);
  static_assert(std::is_same_v<decltype(*ca.begin()), const int&>);
}

TEST(SegArrayIterator, WorksWithStdAlgorithms) {
  seg_array<int> a({4, 4, 4}, page_spec());
  std::iota(a.begin(), a.end(), 0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::count_if(a.begin(), a.end(), [](int v) { return v % 2 == 0; }), 6);
  auto found = std::find(a.begin(), a.end(), 7);
  ASSERT_TRUE(found != a.end());
  EXPECT_EQ(*found, 7);
  std::reverse(a.begin(), a.end());
  EXPECT_EQ(a[0], 11);
  EXPECT_EQ(a[11], 0);
}

static_assert(std::bidirectional_iterator<seg_array<double>::iterator>);
static_assert(std::bidirectional_iterator<seg_array<double>::const_iterator>);

class SegmentCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SegmentCountTest, AddressesRespectSegmentAlignment) {
  LayoutSpec spec = page_spec();
  spec.segment_align = 512;
  const auto a = seg_array<double>::even(1000, GetParam(), spec);
  for (std::size_t s = 0; s < a.num_segments(); ++s) {
    if (a.segment(s).empty()) continue;
    EXPECT_EQ(a.address_of(s, 0) % 512, 0u) << "segment " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, SegmentCountTest, ::testing::Values(1, 2, 7, 64, 1000));

}  // namespace
}  // namespace mcopt::seg
