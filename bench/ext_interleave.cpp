// Extension: what if the chip designer had chosen a different address
// interleaving? The paper's conclusion blames the "simple mapping of memory
// controllers to physical addresses"; this bench quantifies the design
// space by rerunning the pathological zero-offset STREAM triad under
// hypothetical interleavings:
//
//  * T2 (bits 8:7)           — fine-grained, 512 B period: aliasing-prone
//                              but perfectly balanced for any single stream;
//  * coarse (bits 14:13)     — 8 KiB-page-grained: base offsets can't fix
//                              anything smaller than a page, but congruent
//                              bases no longer collapse onto one controller
//                              at every instant;
//  * wider chips             — 8 controllers (3 select bits).
//
// The planner adapts automatically (its stride = period / controllers), so
// the "planned" column shows that analytic layout fixes work for ANY
// low-bit interleaving.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Hypothetical controller-interleaving design space");
  cli.flag("full", "larger arrays")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;
  const std::size_t n = cli.get_flag("full") ? (1 << 21) : (1 << 19);

  struct Design {
    const char* name;
    arch::InterleaveSpec spec;
  };
  const std::vector<Design> designs = {
      {"T2: 4 MCs, bits 8:7", arch::InterleaveSpec{6, 1, 2}},
      {"coarse: 4 MCs, bits 14:13", arch::InterleaveSpec{6, 7, 2}},
      {"wide: 8 MCs, bits 9:7", arch::InterleaveSpec{6, 1, 3}},
  };

  std::printf(
      "# STREAM triad, 64 threads, N=%zu, reported GB/s\n"
      "# aliased = all arrays congruent mod the interleave period; planned = "
      "planner offsets for that design\n\n",
      n);

  const std::vector<std::string> header = {"design", "period", "aliased",
                                           "planned", "gain"};
  std::vector<std::vector<std::string>> rows;
  for (const Design& d : designs) {
    sim::SimConfig cfg;
    cfg.interleave = d.spec;
    const arch::AddressMap map(d.spec);

    // Aliased: the paper's zero-offset COMMON block.
    const double aliased = bench::stream_reported_gbs(
        kernels::StreamOp::kTriad, n, 0, 64, cfg);

    // Planned: each array displaced by the planner's stride for THIS design.
    const seg::StreamPlan plan = seg::plan_stream_offsets(3, map);
    trace::VirtualArena arena;
    kernels::StreamBases bases;
    bases.a = arena.allocate(n * 8 + plan.offsets[0], plan.base_align) + plan.offsets[0];
    bases.b = arena.allocate(n * 8 + plan.offsets[1], plan.base_align) + plan.offsets[1];
    bases.c = arena.allocate(n * 8 + plan.offsets[2], plan.base_align) + plan.offsets[2];
    auto wl = kernels::make_stream_workload(kernels::StreamOp::kTriad, bases, n,
                                            64, sched::Schedule::static_block());
    sim::Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
    const sim::SimResult res = chip.run(wl);
    const double planned =
        static_cast<double>(kernels::stream_reported_bytes(kernels::StreamOp::kTriad, n)) /
        res.seconds() / 1e9;

    rows.push_back({d.name, std::to_string(d.spec.period_bytes()) + " B",
                    util::fmt_fixed(aliased, 2), util::fmt_fixed(planned, 2),
                    util::fmt_fixed(planned / aliased, 2) + "x"});
  }
  mcopt::bench::emit(header, rows, cli.get_str("csv"));
  std::printf(
      "\nreading: fine-grained interleaving needs (and rewards) layout "
      "planning; coarse interleaving trades the aliasing cliff for weaker "
      "peak balance.\n");
  return 0;
}
