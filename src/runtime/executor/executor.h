#pragma once
// Overload-robust concurrent job runtime.
//
// The executor accepts kernel jobs (triad / Jacobi / LBM solves with an
// iteration count, a priority and a deadline), prices each job's bandwidth
// demand with the analytic model over its planned layout and the currently
// *believed* fault state, and admits, queues, sheds or rejects accordingly.
//
// ## The virtual bandwidth timeline
//
// The contended resource is the memory subsystem, modeled as one serialized
// bandwidth server on a virtual cycle clock:
//
//   arrival_clock_  — the largest arrival stamp submitted so far (an
//                     open-loop generator submits with increasing stamps);
//   service_tail_   — the virtual time the bandwidth channel is busy until.
//
// When a worker pops a job, the queue's reserve hook runs UNDER the queue
// lock and stamps the job's service window:
//
//   start  = max(service_tail_, job.arrival)
//   finish = start + quote.service_cycles ;  service_tail_ = finish
//
// unless start already passed the deadline, in which case the job is shed
// (kDeadlineExpiredInQueue) without consuming bandwidth. Because the
// reservation is part of the dequeue critical section, virtual start order
// equals pop order exactly, which yields the *shed-lag bound*: an accepted
// job that runs was dequeued with start < deadline, so its lateness is at
// most its own service quote — the executor never burns bandwidth on work
// that is already hopeless, and never lets an admitted job miss by more
// than one job's worth of service.
//
// Real threads do real kernel work (strictly serial bodies — see the TSan
// note below); all *accounting* lives on the virtual timeline, so admission
// and shed decisions are deterministic for a fixed submission order.
//
// ## Admission control
//
// Admission projects the serialized bandwidth server over the admitted jobs
// in submission order (an atomic admission tail, same recurrence as the
// reserve hook):
//
//   start_est  = max(admit_tail, arrival)
//   finish_est = start_est + own service quote ;  admit_tail = finish_est
//
// A job whose finish_est + margin exceeds its deadline is rejected up front
// (kWouldMissDeadline) — shedding at the door is cheaper than shedding in
// the queue. The projection is exact for the aggregate busy period and
// conservative per job up to priority overtake (a high-priority job
// admitted later serves first); admission_margin absorbs that slip and
// expiry-shedding at dequeue bounds whatever remains. A full lane rejects
// with kQueueFull (typed backpressure). Jobs that cannot be priced because
// no controller survives reject with kNoCapacity.
//
// ## Graceful degradation
//
// The executor owns the ground-truth fault timeline (config.truth, on the
// virtual clock). Workers synthesize per-controller utilization samples
// from the analytic model under the *truth* state at each job's finish and
// push them onto an ingestion queue; whichever worker gets the control
// mutex next drains the queue into the runtime::Supervisor (single-consumer
// by contract — this queue is what the supervisor's threading contract
// refers to). When the supervisor commits a replan, the believed fault
// state updates, every queued job is re-priced in place (committed counters
// adjusted, nothing dropped), and newly-offline controllers arm per-
// controller circuit breakers (util::Backoff): a controller whose breaker
// is still holding stays excluded from admission pricing even after the
// diagnosis clears, and flapping escalates the hold geometrically.
//
// ## ThreadSanitizer
//
// Everything on the executor's path is mutex/condvar/atomic by
// construction — no lock-free structures, no OpenMP. Job bodies for triad
// and Jacobi are strictly serial loops; the LBM body calls
// lbm::Solver::step(), which is OpenMP-parallel inside, so TSan builds
// exercise the executor with triad/Jacobi jobs (the soak's default mix).

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/executor/cancellation.h"
#include "runtime/executor/job.h"
#include "runtime/executor/mpmc_queue.h"
#include "runtime/executor/pricing.h"
#include "runtime/supervisor.h"
#include "sim/fault_schedule.h"
#include "util/backoff.h"

namespace mcopt::runtime::exec {

struct ExecutorConfig {
  PricingConfig pricing{};
  unsigned num_workers = 4;
  /// Per-lane queue bounds (high, normal, low).
  std::array<std::size_t, kNumLanes> lane_capacity = {16, 64, 64};
  /// Queue pop order. kStrictPriority is the PR-4 behavior; the service
  /// layer selects kWeightedFair so per-tenant flows (JobSpec::tenant /
  /// fair_weight, quote bytes as the cost) share dequeue bandwidth in
  /// weight proportion with bit-stable (lane, sequence) tie-breaking.
  QueuePolicy queue_policy = QueuePolicy::kStrictPriority;
  /// Admission slack subtracted from every deadline at the gate.
  arch::Cycles admission_margin = 0;
  /// Ground-truth fault timeline on the virtual clock (what the "hardware"
  /// actually does; must be resolved — no percent bounds).
  sim::FaultSchedule truth{};
  /// Supervisor detector thresholds and seed (equal seeds replay).
  DetectorConfig detector{};
  std::uint64_t seed = 0;
  /// Per-controller circuit-breaker backoff, in virtual cycles.
  util::BackoffConfig breaker{.initial = 50000, .multiplier = 2.0,
                              .cap = 3200000, .jitter = 0.1};
  /// When false, job bodies are skipped (pure virtual-time accounting) —
  /// for queue/admission micro-tests that don't care about kernel output.
  bool run_kernels = true;
};

/// Outcome of submit(): either accepted (queued) or rejected with a typed
/// reason. Rejected jobs still receive a JobReport — nothing is silent.
struct SubmitResult {
  std::uint64_t id = 0;
  bool accepted = false;
  ShedReason rejected = ShedReason::kNone;
};

struct ExecutorStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Indexed by ShedReason (kNone slot unused).
  std::array<std::uint64_t, kNumShedReasons> shed{};
  std::uint64_t goodput_bytes = 0;
  std::uint64_t replans = 0;
  std::uint64_t breaker_trips = 0;
};

class Executor {
 public:
  enum class Drain {
    kDrain,      ///< run everything still queued, then stop
    kShedQueued  ///< stop now; queued jobs report ShedReason::kShutdown
  };

  explicit Executor(ExecutorConfig cfg);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Prices and admits one job. Thread-safe. Advances the arrival clock to
  /// spec.arrival. Every call produces exactly one JobReport eventually
  /// (immediately on rejection, at service/shed time otherwise).
  SubmitResult submit(const JobSpec& spec);

  /// Requests cooperative cancellation of an accepted job. Returns false
  /// for unknown ids. A job cancelled mid-run stops at the next segment
  /// boundary with its field at the last completed generation.
  bool cancel(std::uint64_t id);

  /// Stops the pool. Idempotent; the destructor calls shutdown(kShedQueued)
  /// if nobody did. After shutdown, reports() holds exactly one entry per
  /// submitted job.
  void shutdown(Drain mode);

  /// Snapshot of all finalized job reports, sorted by id.
  [[nodiscard]] std::vector<JobReport> reports() const;

  /// Reports finalized at position >= `from`, in finalization order — an
  /// incremental drain: a caller that remembers how many it has consumed
  /// sees each report exactly once without copying the whole log.
  [[nodiscard]] std::vector<JobReport> reports_tail(std::size_t from) const;

  [[nodiscard]] ExecutorStats stats() const;

  /// Current virtual time: max(arrival clock, service tail).
  [[nodiscard]] arch::Cycles virtual_now() const noexcept;

  /// The three virtual-timeline clocks, for durable state snapshots. Only
  /// meaningful at a quiesced instant (queue empty, no job in flight) —
  /// that is when the clocks fully describe the timeline.
  struct VirtualClocks {
    arch::Cycles arrival = 0;
    arch::Cycles service_tail = 0;
    arch::Cycles admit_tail = 0;
  };
  [[nodiscard]] VirtualClocks virtual_clocks() const noexcept;

  /// Restores clocks captured by virtual_clocks() into a fresh executor,
  /// BEFORE any submission: a restarted process continues the virtual
  /// timeline where the snapshot left it, so admission projections and WFQ
  /// virtual time replay deterministically across the restart.
  void restore_virtual_clocks(const VirtualClocks& c) noexcept;

  /// The fault state admission currently prices against (supervisor
  /// diagnosis; healthy until a replan commits).
  [[nodiscard]] sim::FaultSpec believed_fault() const;

  /// Believed state merged with breaker-held exclusions at virtual `now` —
  /// what a submission at `now` is actually priced under.
  [[nodiscard]] sim::FaultSpec effective_fault(arch::Cycles now) const;

  /// Controllers excluded by a still-holding circuit breaker at `now`.
  [[nodiscard]] std::vector<unsigned> broken_controllers(arch::Cycles now) const;

  [[nodiscard]] const PricingModel& pricing() const noexcept { return pricing_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Gates worker dequeue (LaneQueue::hold/release): while held, accepted
  /// jobs accumulate in the queue unpopped, so a submitter can publish an
  /// arrival batch atomically with respect to reservation order — pops,
  /// and with them the virtual service windows, then depend only on the
  /// batch content, never on push/pop timing. Deterministic-replay hook
  /// for seeded soaks; shutdown overrides a hold.
  void hold_dequeue() { queue_.hold(); }
  void release_dequeue() { queue_.release(); }

 private:
  struct Pending {
    JobSpec spec;
    std::uint64_t id = 0;
    Quote quote;
    CancellationToken token;
    arch::Cycles start = 0;
    arch::Cycles finish = 0;
    bool expired = false;  ///< reserve hook verdict: shed, don't run
  };

  void worker_loop();
  void process(Pending&& job);
  void run_body(Pending& job, JobReport& report);
  void ingest_sample(const Pending& job);
  void control_step();
  void apply_diagnosis(const sim::FaultSpec& diagnosis, arch::Cycles now);
  void reprice_queued(arch::Cycles now);
  void finalize(JobReport report);
  [[nodiscard]] sim::FaultSpec effective_fault_locked(arch::Cycles now) const;
  void advance_arrival_clock(arch::Cycles to) noexcept;

  ExecutorConfig cfg_;
  PricingModel pricing_;
  LaneQueue<Pending> queue_;

  std::atomic<arch::Cycles> arrival_clock_{0};
  std::atomic<arch::Cycles> service_tail_{0};
  /// Admission-control projection of the serialized server over admitted
  /// jobs in submission order (see the header comment).
  std::atomic<arch::Cycles> admit_tail_{0};

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopped_{false};

  // Believed fault state + per-controller circuit breakers.
  mutable std::mutex believed_mu_;
  sim::FaultSpec believed_;
  std::vector<util::Backoff> breakers_;
  std::vector<bool> breaker_open_;  ///< controller currently diagnosed dead

  // Sample ingestion queue: workers push, the control step (one thread at a
  // time, via try-lock on control_mu_) drains into the supervisor.
  std::mutex ingest_mu_;
  std::deque<Sample> ingest_;
  std::mutex control_mu_;
  Supervisor supervisor_;

  mutable std::mutex reports_mu_;
  std::vector<JobReport> reports_;

  std::mutex cancel_mu_;
  std::unordered_map<std::uint64_t, CancellationSource> cancel_sources_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::array<std::atomic<std::uint64_t>, kNumShedReasons> shed_{};
  std::atomic<std::uint64_t> goodput_bytes_{0};
  std::atomic<std::uint64_t> replans_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mcopt::runtime::exec
