#pragma once
// Timing model of one dual-channel FB-DIMM memory controller with a banked
// DRAM backend.
//
// Structure: a single command/data bus (the FB-DIMM link) in front of
// `dram_banks` independent banks, each with one open-row buffer.
//
//  * The bus serializes line transfers in arrival order. A transfer costs a
//    fixed command overhead plus a direction-dependent data time (reads are
//    twice as fast as writes, matching the 42/21 GB/s nominal split of
//    Sect. 1), plus a turnaround penalty when the service direction flips —
//    the model's stand-in for the paper's conjectured "overhead for
//    bidirectional transfers".
//  * Each request targets one bank; if the bank's open row differs, the bank
//    pays an activate/precharge delay before the transfer can start. Bank
//    preparation overlaps with *other* banks' bus transfers but not with the
//    same bank's. This is what punishes base addresses that are congruent
//    modulo large powers of two: interleaved streams then walk the same bank
//    in different rows and every access becomes a row conflict (the deep
//    dips of Figs. 2 and 4).
//
// Bank/row decoding works on the controller-local line index: the sequence
// of lines this controller owns under the chip's interleave (the chip model
// passes global addresses plus the interleave spec).

#include <cstdint>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"

namespace mcopt::sim {

struct McStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t turnarounds = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_conflicts = 0;
  arch::Cycles busy_cycles = 0;
  /// Completion time of the last request (queue drain time).
  arch::Cycles last_completion = 0;

  [[nodiscard]] std::uint64_t line_transfers() const noexcept { return reads + writes; }
};

/// One memory controller. Not thread-safe; serialized by the chip model.
class MemoryController {
 public:
  /// `rate_factor` in (0, 1] derates the channel: every transfer's service
  /// time is divided by it (fault injection; 1.0 = healthy).
  MemoryController(const arch::Calibration& cal, const arch::InterleaveSpec& spec,
                   double rate_factor = 1.0);

  /// Enqueues a transfer of the line containing global address `addr`,
  /// arriving at `now`. Returns the cycle the data transfer completes; for
  /// reads the requester additionally experiences the DRAM latency
  /// (pipelined; the chip model applies max(completion, arrival+latency)).
  arch::Cycles request(arch::Cycles now, bool is_write, arch::Addr addr);

  /// Re-derates the channel mid-run (transient-fault schedules): affects
  /// every request enqueued from now on; in-flight service is not reshaped.
  /// Throws outside (0, 1].
  void set_rate_factor(double rate_factor);
  [[nodiscard]] double rate_factor() const noexcept { return rate_factor_; }

  [[nodiscard]] const McStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return stats_.line_transfers() * line_bytes_;
  }

  /// Bank index a global address maps to (exposed for tests/analytics).
  [[nodiscard]] unsigned bank_of(arch::Addr addr) const noexcept;
  /// Row index within the bank for a global address.
  [[nodiscard]] std::uint64_t row_of(arch::Addr addr) const noexcept;

  void reset_stats() { stats_ = McStats{}; }

 private:
  /// Controller-local line index: global line index with the interleave
  /// (controller-select) bits squeezed out.
  [[nodiscard]] std::uint64_t local_line(arch::Addr addr) const noexcept;

  arch::Calibration cal_;
  double rate_factor_ = 1.0;
  std::size_t line_bytes_;
  unsigned line_bits_;
  unsigned bank_select_bits_;   ///< controller bits within the line index
  unsigned bank_low_bit_;       ///< position of controller bits in line index
  unsigned row_line_bits_;      ///< log2(lines per row), local
  unsigned dram_bank_bits_;     ///< log2(dram_banks)

  arch::Cycles bus_free_ = 0;
  bool last_was_write_ = false;
  bool any_request_ = false;

  struct Bank {
    arch::Cycles ready = 0;
    std::uint64_t open_row = ~std::uint64_t{0};
  };
  std::vector<Bank> banks_;

  McStats stats_;
};

}  // namespace mcopt::sim
