#pragma once
// Per-tenant bandwidth attribution: the measured answer to "who spent which
// controller's bytes, and on what". The paper's argument is that bandwidth
// must be attributed to the right controller to be optimized; at service
// scale the same discipline applies to tenants — an SLO breach is only
// debuggable when every served, shed, scrub, probe, and migration byte has
// an owner. The ledger accumulates (tenant, socket, controller, charge,
// shed-reason) cells, exports them as JSON + CSV, and round-trips through
// the durable snapshot so a SIGKILL/restart run reconciles byte-exactly
// with the per-tenant service ledgers (DESIGN.md §4m).
//
// Charge sites are cold paths (job completion, shed verdicts, migration and
// scrub accounting — not per memory access), so a mutex-guarded map is the
// right tradeoff: exact, simple, and invisible next to the work being
// attributed.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::obs {

/// What a byte was spent on. kServed/kShed bytes belong to real tenants;
/// scrub/probe/migration are system work charged to tenant 0.
enum class Charge : std::uint8_t {
  kServed = 0,
  kShed = 1,
  kScrub = 2,
  kProbe = 3,
  kMigration = 4,
};

/// Stable lowercase label ("served", "shed", ...) for exports.
[[nodiscard]] const char* charge_name(Charge c) noexcept;

/// One attribution cell key. socket/controller are -1 when the charge site
/// has no placement (a door shed never reached pricing). `reason` is the
/// exec::ShedReason ordinal for kShed cells, 0 otherwise.
struct AttributionKey {
  std::uint32_t tenant = 0;
  std::int32_t socket = -1;
  std::int32_t controller = -1;
  Charge charge = Charge::kServed;
  std::uint32_t reason = 0;

  [[nodiscard]] bool operator<(const AttributionKey& o) const noexcept {
    if (tenant != o.tenant) return tenant < o.tenant;
    if (socket != o.socket) return socket < o.socket;
    if (controller != o.controller) return controller < o.controller;
    if (charge != o.charge) return charge < o.charge;
    return reason < o.reason;
  }
};

struct AttributionCell {
  AttributionKey key;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

/// Process-wide attribution ledger. All methods are thread-safe.
class Attribution {
 public:
  static Attribution& instance() noexcept;

  /// Sockets are derived from global controller indices
  /// (socket = controller / controllers_per_socket); 4 matches the
  /// UltraSPARC T2 chip and the sim::Node global numbering.
  void set_controllers_per_socket(unsigned n) noexcept;

  /// Charges `bytes` (and one event by default) to a single cell.
  void charge(std::uint32_t tenant, std::int32_t controller, Charge charge,
              std::uint32_t reason, std::uint64_t bytes,
              std::uint64_t count = 1);

  /// Spreads `bytes` across a plan set byte-exactly: every controller gets
  /// bytes/n and the first |bytes % n| controllers one extra byte, so the
  /// cell sum always equals `bytes`. An empty set charges controller -1.
  void charge_spread(std::uint32_t tenant,
                     const std::vector<unsigned>& controllers, Charge charge,
                     std::uint32_t reason, std::uint64_t bytes);

  /// charge_spread over a controller bitmask (bit i = controller i): the
  /// encoding the journal's completion records carry across restarts.
  void charge_mask(std::uint32_t tenant, std::uint32_t mask, Charge charge,
                   std::uint32_t reason, std::uint64_t bytes);

  [[nodiscard]] std::vector<AttributionCell> cells() const;

  /// Per-tenant totals for one charge kind (reconciliation surface).
  [[nodiscard]] std::uint64_t tenant_bytes(std::uint32_t tenant,
                                           Charge charge) const;
  [[nodiscard]] std::uint64_t tenant_count(std::uint32_t tenant,
                                           Charge charge) const;

  /// One-line JSON document: cells, per-tenant rollups, and grand totals.
  [[nodiscard]] std::string json() const;
  [[nodiscard]] util::Status write_json(const std::string& path) const;

  /// CSV export (schema-stamped like every mcopt CSV):
  /// tenant,socket,controller,charge,reason,bytes,count.
  [[nodiscard]] util::Status write_csv(const std::string& path) const;

  /// Snapshot encoding for the durable StateImage: versioned, fixed-width
  /// little-endian. restore() replaces the ledger's contents wholesale.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] util::Status restore(const std::vector<std::uint8_t>& bytes);

  /// Drops every cell (registrations in the metrics registry survive).
  void reset();

 private:
  Attribution() = default;

  [[nodiscard]] std::int32_t socket_of(std::int32_t controller) const noexcept;

  mutable std::mutex mu_;
  std::map<AttributionKey, AttributionCell> cells_;
  unsigned controllers_per_socket_ = 4;
};

}  // namespace mcopt::obs
