#include "kernels/lbm/trace_program.h"

#include <stdexcept>

namespace mcopt::kernels::lbm {

LbmProgram::LbmProgram(Geometry geometry, LbmAddresses addresses, LoopOrder order,
                       std::vector<sched::IterRange> chunks, unsigned steps,
                       FlopModel flops)
    : geo_(geometry),
      addr_(addresses),
      order_(order),
      chunks_(std::move(chunks)),
      steps_(steps),
      flops_(flops) {
  geo_.validate();
  reset();
}

void LbmProgram::reset() {
  step_ = 0;
  chunk_ = 0;
  iter_ = chunks_.empty() ? 0 : chunks_.front().begin;
  y_ = 1;
  x_ = 1;
  phase_ = 0;
}

std::uint64_t LbmProgram::total_accesses() const {
  std::uint64_t iters = 0;
  for (const auto& c : chunks_) iters += c.size();
  const std::uint64_t sites_per_iter =
      order_ == LoopOrder::kOuterZ ? geo_.ny * geo_.nx : geo_.nx;
  return iters * sites_per_iter * (1 + 2 * kQ) * steps_;
}

std::size_t LbmProgram::next_batch(std::span<sim::Access> out) {
  std::size_t produced = 0;
  const std::size_t elem = addr_.elem_bytes;
  while (produced < out.size()) {
    if (step_ >= steps_ || chunks_.empty()) break;
    const sched::IterRange& chunk = chunks_[chunk_];
    if (iter_ >= chunk.end) {
      if (++chunk_ >= chunks_.size()) {
        chunk_ = 0;
        if (++step_ >= steps_) break;
      }
      iter_ = chunks_[chunk_].begin;
      y_ = 1;
      x_ = 1;
      phase_ = 0;
      continue;
    }

    // Decode the parallel iteration into (z, y); both are interior
    // coordinates offset by the ghost layer.
    std::size_t z;
    std::size_t y;
    if (order_ == LoopOrder::kOuterZ) {
      z = iter_ + 1;
      y = y_;
    } else {
      z = iter_ / geo_.ny + 1;
      y = iter_ % geo_.ny + 1;
    }
    const std::size_t read_toggle = step_ % 2;
    const std::size_t write_toggle = 1 - read_toggle;

    sim::Access a;
    if (phase_ == 0) {
      // Lockstep iterations are sites: fine enough to keep the x positions
      // of concurrent threads aligned, which is what exposes the layout's
      // controller structure (Sect. 2.4).
      a = {addr_.mask_base + geo_.cell_index(x_, y, z), sim::Op::kLoad,
           /*begins_iteration=*/true, 0};
    } else if (phase_ <= kQ) {
      const std::size_t v = phase_ - 1;
      a = {addr_.f_base + geo_.f_index(x_, y, z, v, read_toggle) * elem,
           sim::Op::kLoad, false, 0};
    } else {
      const std::size_t v = phase_ - kQ - 1;
      const auto tx = static_cast<std::size_t>(static_cast<long>(x_) + kVelocity[v][0]);
      const auto ty = static_cast<std::size_t>(static_cast<long>(y) + kVelocity[v][1]);
      const auto tz = static_cast<std::size_t>(static_cast<long>(z) + kVelocity[v][2]);
      a = {addr_.f_base + geo_.f_index(tx, ty, tz, v, write_toggle) * elem,
           sim::Op::kStore, false,
           v == 0 ? flops_.first_store_slots() : flops_.per_store_slots()};
    }
    out[produced++] = a;

    if (++phase_ == 1 + 2 * kQ) {
      phase_ = 0;
      if (++x_ == geo_.nx + 1) {
        x_ = 1;
        bool iteration_done = true;
        if (order_ == LoopOrder::kOuterZ && ++y_ != geo_.ny + 1)
          iteration_done = false;
        if (iteration_done) {
          y_ = 1;
          ++iter_;
        }
      }
    }
  }
  return produced;
}

sim::Workload make_lbm_workload(const Geometry& geometry,
                                const LbmAddresses& addresses, LoopOrder order,
                                unsigned num_threads,
                                const sched::Schedule& schedule, unsigned steps) {
  const std::size_t iterations = order == LoopOrder::kOuterZ
                                     ? geometry.nz
                                     : geometry.nz * geometry.ny;
  sim::Workload workload;
  workload.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workload.push_back(std::make_unique<LbmProgram>(
        geometry, addresses, order,
        sched::chunks_for_thread(iterations, num_threads, t, schedule), steps));
  }
  return workload;
}

}  // namespace mcopt::kernels::lbm
