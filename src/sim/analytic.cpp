#include "sim/analytic.h"

#include <algorithm>
#include <stdexcept>

namespace mcopt::sim {

std::vector<AnalyticStream> expand_rfo(std::span<const AnalyticStream> logical) {
  std::vector<AnalyticStream> physical;
  physical.reserve(logical.size() * 2);
  for (const AnalyticStream& s : logical) {
    if (s.write) {
      physical.push_back({s.base, false});  // RFO read
      physical.push_back({s.base, true});   // write-back
    } else {
      physical.push_back(s);
    }
  }
  return physical;
}

AnalyticEstimate estimate_bandwidth(std::span<const AnalyticStream> streams,
                                    unsigned num_threads,
                                    const arch::Calibration& cal,
                                    const arch::AddressMap& map,
                                    double clock_ghz, const FaultSpec& faults) {
  if (streams.empty()) throw std::invalid_argument("estimate_bandwidth: no streams");
  if (num_threads == 0) throw std::invalid_argument("estimate_bandwidth: no threads");

  const auto& spec = map.spec();
  const std::vector<unsigned> alive = faults.surviving_controllers(spec);
  if (alive.empty())
    throw std::invalid_argument("estimate_bandwidth: no surviving controllers");
  // Mirror the chip model: offline controllers' lines go to their remap
  // survivor, and a derated controller's service is 1/factor slower.
  const std::vector<unsigned> remap = faults.controller_remap(spec);
  std::vector<double> cost_scale(spec.num_controllers());
  for (unsigned c = 0; c < spec.num_controllers(); ++c)
    cost_scale[c] = 1.0 / faults.derate_of(c);
  const std::uint64_t steps = spec.period_bytes() / spec.line_size();
  const double read_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_read_service);
  const double write_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_write_service);

  std::vector<std::uint64_t> reads(spec.num_controllers());
  std::vector<std::uint64_t> writes(spec.num_controllers());
  std::vector<double> mc_cycles(spec.num_controllers(), 0.0);
  double total_step_cycles = 0.0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  double ideal_step_cycles = 0.0;

  for (std::uint64_t k = 0; k < steps; ++k) {
    std::fill(reads.begin(), reads.end(), 0);
    std::fill(writes.begin(), writes.end(), 0);
    for (const AnalyticStream& s : streams) {
      const unsigned c = remap[map.controller_of(s.base + k * spec.line_size())];
      if (s.write)
        ++writes[c];
      else
        ++reads[c];
    }
    double step_cost = 0.0;
    double step_work = 0.0;
    for (unsigned c = 0; c < spec.num_controllers(); ++c) {
      double cost = static_cast<double>(reads[c]) * read_cost +
                    static_cast<double>(writes[c]) * write_cost;
      // Mixed-direction service on a controller costs one amortized
      // turnaround per step (controllers batch same-direction transfers).
      if (reads[c] != 0 && writes[c] != 0)
        cost += static_cast<double>(cal.mc_turnaround);
      cost *= cost_scale[c];
      mc_cycles[c] += cost;
      step_cost = std::max(step_cost, cost);
      step_work += cost;
      total_reads += reads[c];
      total_writes += writes[c];
    }
    total_step_cycles += step_cost;
    // A perfectly balanced placement would split the same work evenly
    // across the controllers that still serve traffic.
    ideal_step_cycles += step_work / static_cast<double>(alive.size());
  }

  const double line = static_cast<double>(spec.line_size());
  const double bytes_per_period =
      static_cast<double>(total_reads + total_writes) * line;
  const double hz = clock_ghz * 1e9;

  AnalyticEstimate est;
  est.service_bandwidth = bytes_per_period / total_step_cycles * hz;
  est.balance = ideal_step_cycles / total_step_cycles;
  // Busy fraction over the service critical path: the makespan of one
  // period is total_step_cycles, of which controller c was busy mc_cycles[c]
  // (offline controllers received no remapped lines, so they read 0).
  est.mc_utilization.resize(spec.num_controllers());
  for (unsigned c = 0; c < spec.num_controllers(); ++c)
    est.mc_utilization[c] = mc_cycles[c] / total_step_cycles;

  // Latency/concurrency bound: each strand sustains one outstanding read
  // miss; writes drain through store buffers without blocking, so total
  // traffic scales read-limited throughput by total/read bytes.
  const double read_fraction =
      static_cast<double>(total_reads) / static_cast<double>(total_reads + total_writes);
  const double read_bw_limit = static_cast<double>(num_threads) * line /
                               static_cast<double>(cal.mem_latency) * hz;
  est.latency_bandwidth =
      read_fraction > 0.0 ? read_bw_limit / read_fraction : read_bw_limit;

  est.bandwidth = std::min(est.service_bandwidth, est.latency_bandwidth);
  return est;
}

ScheduledEstimate estimate_bandwidth_scheduled(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon) {
  if (schedule.has_relative())
    throw std::invalid_argument(
        "estimate_bandwidth_scheduled: schedule has unresolved percent bounds");
  if (horizon == 0 || horizon == FaultSchedule::kNever)
    throw std::invalid_argument(
        "estimate_bandwidth_scheduled: horizon must be a finite run length");

  ScheduledEstimate out;
  double weighted_bw = 0.0;
  double weighted_service = 0.0;
  double weighted_latency = 0.0;
  double weighted_balance = 0.0;
  std::vector<double> weighted_util(map.spec().num_controllers(), 0.0);
  for (const FaultSchedule::Epoch& e : schedule.epochs(horizon, baseline)) {
    ScheduledEstimate::EpochEstimate epoch;
    epoch.begin = e.begin;
    epoch.end = e.end;
    epoch.faults = e.faults.describe();
    epoch.estimate =
        estimate_bandwidth(streams, num_threads, cal, map, clock_ghz, e.faults);
    const double weight = static_cast<double>(e.end - e.begin) /
                          static_cast<double>(horizon);
    weighted_bw += epoch.estimate.bandwidth * weight;
    weighted_service += epoch.estimate.service_bandwidth * weight;
    weighted_latency += epoch.estimate.latency_bandwidth * weight;
    weighted_balance += epoch.estimate.balance * weight;
    for (std::size_t c = 0; c < weighted_util.size(); ++c)
      weighted_util[c] += epoch.estimate.mc_utilization[c] * weight;
    out.epochs.push_back(std::move(epoch));
  }
  out.whole.bandwidth = weighted_bw;
  out.whole.service_bandwidth = weighted_service;
  out.whole.latency_bandwidth = weighted_latency;
  out.whole.balance = weighted_balance;
  out.whole.mc_utilization = std::move(weighted_util);
  return out;
}

}  // namespace mcopt::sim
