#pragma once
// Shared plumbing for the NUMA benches and the tier-1 NumaRegression test:
// the four STREAM placements of the cross-socket sweep (local / interleaved
// / remote / first-touch), their DES and analytic runners, and the seeded
// socket/link chaos schedule generator (kept here so the regression tier can
// replay chaos seeds bit-for-bit, exactly like overload_common.h).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/triad.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/supervisor.h"
#include "seg/planner.h"
#include "sim/analytic.h"
#include "sim/node.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/prng.h"

namespace mcopt::bench {

/// True when a static-block triad's per-strand contiguous chunk is an exact
/// multiple of the interleave period — the convoy-resonance pathology: every
/// strand starts on the same controller phase, the strands sweep the
/// controllers in lockstep, and the measured bandwidth collapses below the
/// analytic model that assumes phase-uniform arrivals.
[[nodiscard]] inline bool convoy_resonant(std::size_t n, unsigned threads,
                                          const arch::AddressMap& map) {
  if (threads == 0) return false;
  const std::size_t chunk_bytes =
      ((n + threads - 1) / threads) * sizeof(double);
  return chunk_bytes % map.spec().period_bytes() == 0;
}

/// Convoy-resonance guard for benches that compare a DES run against
/// estimate_node_bandwidth: warns (once per call) when the thread count is
/// period-aligned, so a model-vs-measured gap in the output table is read as
/// the known resonance artifact rather than a model regression. Returns the
/// verdict so harnesses can also record it in their row/JSON output.
inline bool warn_if_convoy_resonant(const char* bench, std::size_t n,
                                    unsigned threads,
                                    const arch::AddressMap& map) {
  if (!convoy_resonant(n, threads, map)) return false;
  util::log_warn(std::string(bench) +
                 ": convoy resonance — per-strand chunk is period-aligned "
                 "(n=" + std::to_string(n) + " threads=" +
                 std::to_string(threads) + " period=" +
                 std::to_string(map.spec().period_bytes()) +
                 " B); DES bandwidth will undershoot the analytic model. "
                 "Use an off-by-one thread count to de-resonate.");
  // The stderr line is for a human watching the bench; dashboards and trace
  // timelines need the structured form too (args: problem size, threads).
  obs::MetricsRegistry::instance()
      .counter("mcopt_convoy_resonance_warnings_total",
               "Bench configurations flagged as convoy-resonant "
               "(per-strand chunk period-aligned)")
      .inc();
  obs::trace_instant("bench.convoy_resonance", "bench", n, threads);
  return true;
}

/// Registers the fail-back tuning knobs shared by `recovery` and
/// `chaos_soak --flap`: the staged re-admission ramp and the canary-probe
/// backoff. Defaults mirror RecoveryConfig's, so omitting every flag
/// reproduces the calibrated behavior bit-for-bit.
inline util::Cli& add_recovery_options(util::Cli& cli) {
  runtime::RecoveryConfig defaults;
  return cli
      .option_double("ramp-initial", defaults.ramp_initial,
                     "capacity belief of a just-readmitted socket, in (0, 1]")
      .option_int("ramp-windows", defaults.ramp_windows,
                  "observation windows to ramp a readmitted socket to full "
                  "weight (>= 1)")
      .option_int("probe-backoff-initial",
                  static_cast<std::int64_t>(defaults.probe_backoff.initial),
                  "cycles between canary probes of a quarantined socket")
      .option_double("probe-backoff-multiplier",
                     defaults.probe_backoff.multiplier,
                     "probe-hold escalation factor on canary failure (>= 1)")
      .option_int("probe-backoff-cap",
                  static_cast<std::int64_t>(defaults.probe_backoff.cap),
                  "ceiling on the escalated probe hold, in cycles");
}

/// Applies the add_recovery_options() flags onto `rec` and validates the
/// result through RecoveryConfig::check() — degenerate values (ramp outside
/// (0, 1], multiplier < 1, cap below initial, ...) come back as a typed
/// refusal naming every violated bound, so the bench can print it and exit
/// nonzero instead of soaking a nonsense configuration.
[[nodiscard]] inline util::Status apply_recovery_options(
    const util::Cli& cli, runtime::RecoveryConfig& rec) {
  rec.ramp_initial = cli.get_double("ramp-initial");
  const std::int64_t windows = cli.get_int("ramp-windows");
  rec.ramp_windows = windows < 0 ? 0 : static_cast<unsigned>(windows);
  const std::int64_t initial = cli.get_int("probe-backoff-initial");
  rec.probe_backoff.initial =
      initial < 0 ? 0 : static_cast<std::uint64_t>(initial);
  rec.probe_backoff.multiplier = cli.get_double("probe-backoff-multiplier");
  const std::int64_t cap = cli.get_int("probe-backoff-cap");
  rec.probe_backoff.cap = cap < 0 ? 0 : static_cast<std::uint64_t>(cap);
  return rec.check();
}

/// The cross-socket STREAM placements, in the order the sweep reports them.
enum class NumaPlacement { kLocal, kInterleaved, kRemote, kFirstTouch };

inline const char* numa_placement_name(NumaPlacement p) {
  switch (p) {
    case NumaPlacement::kLocal: return "local";
    case NumaPlacement::kInterleaved: return "interleaved";
    case NumaPlacement::kRemote: return "remote";
    case NumaPlacement::kFirstTouch: return "first-touch";
  }
  return "?";
}

struct NumaSweepParams {
  unsigned sockets = 2;
  std::size_t n = 4096;       ///< triad elements per socket's job
  unsigned threads = 16;      ///< strands per socket
  unsigned sweeps = 4;
};

/// Per-socket triad array bases (A,B,C,D per socket) for one placement.
///
/// - local: socket s's arrays in its own domain (the planner's placement);
/// - interleaved: best-effort round-robin — socket s's k-th array homed in
///   domain (s+k) % S, the contiguous-domain analogue of page interleave;
/// - remote: socket s's arrays in domain (s+1) % S, every access one hop;
/// - first-touch: the serial-init pitfall — one thread touched every page
///   first, so ALL arrays land in domain 0 and socket 0's controllers serve
///   the whole node.
///
/// Co-homed arrays are rotated through the controller stride so placements
/// differ in distance, not in accidental controller aliasing.
inline std::vector<std::vector<arch::Addr>> numa_placement_bases(
    NumaPlacement placement, const NumaSweepParams& params,
    const arch::NodeTopology& node, const arch::AddressMap& map) {
  const seg::StreamPlan plan = seg::plan_stream_offsets(4, map);
  const std::size_t period = map.spec().period_bytes();
  const std::size_t stride = period / map.spec().num_controllers();
  std::vector<unsigned> homed(params.sockets, 0);  // arrays per domain
  std::vector<std::vector<arch::Addr>> bases(params.sockets);
  for (unsigned s = 0; s < params.sockets; ++s) {
    bases[s].resize(4);
    for (std::size_t k = 0; k < 4; ++k) {
      unsigned home = s;
      switch (placement) {
        case NumaPlacement::kLocal: home = s; break;
        case NumaPlacement::kInterleaved:
          home = (s + static_cast<unsigned>(k)) % params.sockets;
          break;
        case NumaPlacement::kRemote: home = (s + 1) % params.sockets; break;
        case NumaPlacement::kFirstTouch: home = 0; break;
      }
      const unsigned rotation = homed[home]++;
      const std::size_t off =
          (plan.offsets[k] + static_cast<std::size_t>(rotation) * stride) %
          period;
      const arch::Addr slot = node.socket_base(home) +
                              static_cast<arch::Addr>(rotation) *
                                  ((arch::Addr{1} << 24) + 8192);
      bases[s][k] = (slot + plan.base_align - 1) / plan.base_align *
                        plan.base_align + off;
    }
  }
  return bases;
}

/// One DES run of the placement: every socket sweeps its own triad job.
inline sim::NodeResult run_numa_placement(
    NumaPlacement placement, const NumaSweepParams& params,
    const sim::NodeConfig& cfg) {
  const arch::AddressMap map(cfg.sim.interleave);
  const auto bases = numa_placement_bases(placement, params, cfg.node, map);
  std::vector<sim::Workload> wls(params.sockets);
  for (unsigned s = 0; s < params.sockets; ++s)
    wls[s] = kernels::make_triad_workload(bases[s], params.n, params.threads,
                                          sched::Schedule::static_block(),
                                          params.sweeps);
  sim::Node node(cfg);
  return node.run(wls);
}

/// The analytic twin of run_numa_placement (same bases, same fault state).
inline sim::NodeEstimate estimate_numa_placement(
    NumaPlacement placement, const NumaSweepParams& params,
    const sim::NodeConfig& cfg, const sim::FaultSpec& faults = {}) {
  const arch::AddressMap map(cfg.sim.interleave);
  const auto bases = numa_placement_bases(placement, params, cfg.node, map);
  std::vector<std::vector<sim::AnalyticStream>> streams(params.sockets);
  std::vector<unsigned> threads(params.sockets, params.threads);
  for (unsigned s = 0; s < params.sockets; ++s) {
    const std::vector<sim::AnalyticStream> logical = {{bases[s][0], true},
                                                      {bases[s][1], false},
                                                      {bases[s][2], false},
                                                      {bases[s][3], false}};
    streams[s] = sim::expand_rfo(logical);
  }
  return sim::estimate_node_bandwidth(streams, threads, cfg.sim.calibration,
                                      map, cfg.node,
                                      cfg.sim.topology.clock_ghz, faults);
}

/// Parses the --distance knob: empty = topology defaults, a single integer
/// = uniform remote link cost (cycles per 64 B line), or S*S comma-
/// separated entries for the full row-major link-cycle matrix (diagonal
/// entries must be 0).
inline void apply_distance_knob(const std::string& text,
                                arch::NodeTopology& node) {
  if (text.empty()) return;
  std::vector<arch::Cycles> entries;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string cell =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    try {
      entries.push_back(static_cast<arch::Cycles>(std::stoull(cell)));
    } catch (const std::exception&) {
      throw std::invalid_argument("--distance: bad cell '" + cell + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (entries.size() == 1) {
    node.link_line_cycles = entries[0];
    return;
  }
  if (entries.size() !=
      static_cast<std::size_t>(node.num_sockets) * node.num_sockets)
    throw std::invalid_argument(
        "--distance: expected 1 or sockets^2 entries, got " +
        std::to_string(entries.size()));
  node.link_cycle_matrix = entries;
}

/// Seeded socket/link chaos schedule for the NUMA soak (and its tier-1
/// replays): 1-2 percent-relative intervals drawn from the socket-granular
/// fault classes. Derates and link faults are transient (begin in
/// [10%, 45%], clear by 85%); a sock:off persists to the end of the run —
/// a dead socket is a failed fault domain, not a glitch, and a supervisor
/// that migrated away from it must not be penalized against a baseline
/// whose outage conveniently heals. At most one sock:off OR one dead link
/// per schedule, so every socket keeps a route to surviving memory and the
/// node connectivity check always passes.
inline sim::FaultSchedule numa_chaos_schedule(util::Xoshiro256& rng,
                                              unsigned sockets) {
  sim::FaultSchedule sched;
  const unsigned intervals = 1 + static_cast<unsigned>(rng.below(2));
  bool socket_killed = false;
  bool link_killed = false;
  for (unsigned i = 0; i < intervals; ++i) {
    sim::FaultSchedule::Interval iv;
    iv.relative = true;
    iv.begin_frac = rng.uniform(0.10, 0.45);
    iv.end_frac = iv.begin_frac + rng.uniform(0.15, 0.85 - iv.begin_frac);
    const unsigned a = static_cast<unsigned>(rng.below(sockets));
    const unsigned b = (a + 1 + static_cast<unsigned>(rng.below(sockets - 1))) %
                       sockets;
    switch (rng.below(4)) {
      case 0:
        if (!socket_killed && !link_killed) {
          iv.fault.offline_sockets.push_back(a);
          iv.end_frac = 1.0;  // fault domains die for good
          socket_killed = true;
          break;
        }
        [[fallthrough]];
      case 1:
        iv.fault.socket_derates.push_back({a, rng.uniform(0.3, 0.75)});
        break;
      case 2:
        iv.fault.link_faults.push_back({a, b, rng.uniform(0.2, 0.6), false});
        break;
      default:
        // A dead link, only when no socket is also dead in this schedule
        // (two overlapping cuts could isolate a domain on small meshes).
        if (sockets > 2 && !socket_killed) {
          iv.fault.link_faults.push_back({a, b, 1.0, true});
          link_killed = true;
        } else {
          iv.fault.socket_derates.push_back({a, rng.uniform(0.3, 0.75)});
        }
        break;
    }
    sched.intervals.push_back(std::move(iv));
  }
  return sched;
}

/// Seeded recovery-chaos schedule for the fail-back soak: unlike
/// numa_chaos_schedule (where a dead socket stays dead so the survivor
/// baseline is honest), every outage here CLEARS mid-run — the whole point
/// is to exercise the probe/readmit/rebalance path. Draws either one
/// outage-and-return interval (off between [10%,35%] and [55%,80%] of the
/// horizon) or one flap (period in [1/6, 1/3] of the horizon, active
/// [10%, 75%]). Returns a RESOLVED schedule (absolute cycles): the flap
/// period is absolute, so the generator needs the run horizon up front.
inline sim::FaultSchedule numa_recovery_schedule(util::Xoshiro256& rng,
                                                 unsigned sockets,
                                                 arch::Cycles horizon) {
  sim::FaultSchedule sched;
  sim::FaultSchedule::Interval iv;
  iv.relative = true;
  const unsigned victim =
      1 + static_cast<unsigned>(rng.below(sockets > 1 ? sockets - 1 : 1));
  iv.fault.offline_sockets.push_back(victim % sockets);
  if (rng.below(2) == 0) {
    // Outage and return.
    iv.begin_frac = rng.uniform(0.10, 0.35);
    iv.end_frac = rng.uniform(0.55, 0.80);
  } else {
    // Flap: dead the first half of each period.
    iv.begin_frac = 0.10;
    iv.end_frac = 0.75;
    iv.flap_period = static_cast<arch::Cycles>(
        static_cast<double>(horizon) * rng.uniform(1.0 / 6.0, 1.0 / 3.0));
  }
  sched.intervals.push_back(std::move(iv));
  return sched.resolved(horizon);
}

}  // namespace mcopt::bench
