#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcopt::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "/mcopt_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.add_row({"1", "2"});
    w.add_row({"3", "4"});
    EXPECT_EQ(w.rows(), 2u);
  }
  EXPECT_EQ(slurp(path_), "# mcopt-csv v2, columns: x,y\nx,y\n1,2\n3,4\n");
}

TEST_F(CsvTest, StampsTheSchemaVersionFirst) {
  { CsvWriter w(path_, {"a", "b", "c"}); }
  const std::string body = slurp(path_);
  EXPECT_EQ(body.rfind("# mcopt-csv v2, columns: a,b,c\n", 0), 0u);
}

TEST_F(CsvTest, RejectsMismatchedRow) {
  CsvWriter w(path_, {"x", "y"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
}

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, CloseDeliversFinalVerdictAndIsIdempotent) {
  CsvWriter w(path_, {"x"});
  w.add_row({"1"});
  EXPECT_TRUE(w.close().ok());
  EXPECT_TRUE(w.close().ok());  // second close is a no-op
  EXPECT_EQ(slurp(path_), "# mcopt-csv v2, columns: x\nx\n1\n");
}

TEST_F(CsvTest, MidWriteFailureSurfacesThroughStatus) {
  CsvWriter w(path_, {"x"});
  EXPECT_TRUE(w.try_add_row({"1"}).ok());
  w.poison_for_test();
  const Status bad = w.try_add_row({"2"});
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("write failed"), std::string::npos);
  // Later rows are refused, not silently dropped: rows() stays at the last
  // confirmed row and the sticky status keeps reporting the failure.
  EXPECT_FALSE(w.try_add_row({"3"}).ok());
  EXPECT_EQ(w.rows(), 1u);
  EXPECT_FALSE(w.close().ok());
  EXPECT_THROW(w.flush(), std::invalid_argument);
}

TEST_F(CsvTest, ThrowingWrapperPropagatesStreamFailure) {
  CsvWriter w(path_, {"x"});
  w.poison_for_test();
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
}

TEST_F(CsvTest, AddRowAfterCloseIsRefused) {
  CsvWriter w(path_, {"x"});
  EXPECT_TRUE(w.close().ok());
  EXPECT_FALSE(w.try_add_row({"1"}).ok());
  EXPECT_EQ(w.rows(), 0u);
}

TEST_F(CsvTest, WidthMismatchStillThrowsEvenWhenPoisoned) {
  CsvWriter w(path_, {"x", "y"});
  w.poison_for_test();
  EXPECT_THROW((void)w.try_add_row({"1"}), std::invalid_argument);
}

TEST(CsvWriterErrors, UnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/f.csv", {"a"}), std::runtime_error);
}

TEST(CsvWriterErrors, EmptyHeader) {
  const std::string path = testing::TempDir() + "/mcopt_csv_hdr.csv";
  EXPECT_THROW(CsvWriter(path, {}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcopt::util
