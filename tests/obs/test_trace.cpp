#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.h"

namespace mcopt::obs {
namespace {

/// Every test starts from a clean recorder with its own ring capacity and
/// leaves it disabled (the recorder is process-global; later tests and other
/// suites in this binary must not see leftover events).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().reset();
  }
  void TearDown() override {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().reset();
  }

  static std::string temp_path(const char* stem) {
    return testing::TempDir() + stem;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  static std::size_t count_occurrences(const std::string& hay,
                                       const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
      ++n;
    return n;
  }
};

TEST_F(TraceTest, DisabledRecorderIsANoop) {
  ASSERT_FALSE(TraceRecorder::instance().enabled());
  TraceRecorder::instance().record(Phase::kInstant, "noop", "test", 1, 2);
  { TraceSpan span("noop.span", "test"); }
  trace_instant("noop.instant", "test");
  EXPECT_EQ(TraceRecorder::instance().recorded(), 0u);
  EXPECT_EQ(TraceRecorder::instance().threads_seen(), 0u);
  EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
}

TEST_F(TraceTest, EventsRoundTripThroughSnapshot) {
  TraceRecorder::instance().enable(64);
  trace_instant("alpha", "test", 7, 9);
  trace_counter("queue.depth", "test", 42);
  { TraceSpan span("beta", "test", 1, 2); }

  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "alpha");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].phase, Phase::kInstant);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);
  EXPECT_EQ(events[1].phase, Phase::kCounter);
  EXPECT_EQ(events[1].a, 42u);
  EXPECT_EQ(events[2].phase, Phase::kBegin);
  EXPECT_EQ(events[3].phase, Phase::kEnd);
  EXPECT_STREQ(events[3].name, "beta");
  // Snapshot is timestamp-sorted and per-thread timestamps are monotone.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDrops) {
  TraceRecorder::instance().enable(8);
  constexpr std::uint64_t kTotal = 50;
  for (std::uint64_t i = 0; i < kTotal; ++i)
    trace_instant("wrap", "test", i);

  EXPECT_EQ(TraceRecorder::instance().recorded(), kTotal);
  EXPECT_EQ(TraceRecorder::instance().dropped(), kTotal - 8);

  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Flight-recorder semantics: the survivors are exactly the newest events.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, kTotal - 8 + i);
}

TEST_F(TraceTest, ResetDiscardsEventsAndAppliesNewCapacity) {
  TraceRecorder::instance().enable(8);
  for (int i = 0; i < 20; ++i) trace_instant("before", "test");
  EXPECT_GT(TraceRecorder::instance().dropped(), 0u);

  TraceRecorder::instance().reset();
  EXPECT_EQ(TraceRecorder::instance().recorded(), 0u);
  EXPECT_EQ(TraceRecorder::instance().dropped(), 0u);
  EXPECT_EQ(TraceRecorder::instance().threads_seen(), 0u);

  TraceRecorder::instance().enable(64);
  for (int i = 0; i < 20; ++i) trace_instant("after", "test");
  EXPECT_EQ(TraceRecorder::instance().recorded(), 20u);
  EXPECT_EQ(TraceRecorder::instance().dropped(), 0u);
}

TEST_F(TraceTest, ConcurrentWritersLoseNothingWithinCapacity) {
  TraceRecorder::instance().enable(1 << 12);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const TraceSpan span("worker.op", "test", t, i);
        trace_instant("worker.tick", "test", t, i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent readers must never tear: snapshot while writers are live.
  for (int i = 0; i < 50; ++i) {
    const auto mid = TraceRecorder::instance().snapshot();
    for (const auto& ev : mid) EXPECT_NE(ev.name, nullptr);
  }
  for (auto& w : writers) w.join();

  // 3 events per iteration (B, i, E), plus possibly this thread's.
  const std::uint64_t expected = kThreads * kPerThread * 3;
  EXPECT_GE(TraceRecorder::instance().recorded(), expected);
  EXPECT_EQ(TraceRecorder::instance().dropped(), 0u);
  EXPECT_GE(TraceRecorder::instance().threads_seen(), kThreads);

  // Per-writer: every span is committed and well-nested.
  const auto events = TraceRecorder::instance().snapshot();
  std::map<std::uint32_t, std::uint64_t> begins, ends;
  for (const auto& ev : events) {
    if (std::string(ev.name) != "worker.op") continue;
    if (ev.phase == Phase::kBegin) ++begins[ev.tid];
    if (ev.phase == Phase::kEnd) ++ends[ev.tid];
  }
  std::uint64_t total_begins = 0;
  for (const auto& [tid, n] : begins) {
    EXPECT_EQ(n, ends[tid]) << "unbalanced spans on tid " << tid;
    total_begins += n;
  }
  EXPECT_EQ(total_begins, kThreads * kPerThread);
}

TEST_F(TraceTest, ChromeTraceExportIsBalancedAndWellFormed) {
  TraceRecorder::instance().enable(256);
  {
    const TraceSpan outer("outer", "test", 1);
    const TraceSpan inner("inner", "test", 2);
    trace_instant("tick", "test");
  }
  util::log_info("hello \"trace\"");  // mirror: exercises JSON escaping

  const std::string path = temp_path("trace_export.json");
  ASSERT_TRUE(TraceRecorder::instance().write_chrome_trace(path).ok());

  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(body.find("\\\"trace\\\""), std::string::npos);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"B\""),
            count_occurrences(body, "\"ph\":\"E\""));
  // Braces and brackets balance — the file parses as JSON.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST_F(TraceTest, OpenSpansGetSyntheticEnds) {
  TraceRecorder::instance().enable(256);
  // A span begun but not ended (snapshot taken mid-flight).
  TraceRecorder::instance().record(Phase::kBegin, "open.span", "test");
  trace_instant("later", "test");

  const std::string path = temp_path("trace_open.json");
  ASSERT_TRUE(TraceRecorder::instance().write_chrome_trace(path).ok());
  const std::string body = slurp(path);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"E\""), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, OrphanEndsAreDropped) {
  TraceRecorder::instance().enable(256);
  // An E whose B was overwritten at the ring edge must not poison the file.
  TraceRecorder::instance().record(Phase::kEnd, "orphan", "test");
  const std::string path = temp_path("trace_orphan.json");
  ASSERT_TRUE(TraceRecorder::instance().write_chrome_trace(path).ok());
  const std::string body = slurp(path);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"E\""), 0u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FlightDumpKeepsOnlyTheTailWindow) {
  TraceRecorder::instance().enable(1 << 10);
  for (int i = 0; i < 100; ++i) trace_instant("early", "test");
  for (int i = 0; i < 8; ++i) trace_instant("late", "test");

  const std::string path = temp_path("trace_flight.json");
  ASSERT_TRUE(TraceRecorder::instance().write_flight_dump(path, 8).ok());
  const std::string body = slurp(path);
  EXPECT_EQ(count_occurrences(body, "\"late\""), 8u);
  EXPECT_EQ(count_occurrences(body, "\"early\""), 0u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, LogLinesMirrorIntoTheTrace) {
  TraceRecorder::instance().enable(256);
  util::log_warn("controller wobble", {util::kv("mc", 2)});
  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "log.warn");
  EXPECT_STREQ(events[0].cat, "log");
  // Inline messages truncate to the slot budget but keep the prefix.
  EXPECT_EQ(events[0].msg.substr(0, 10), "controller");
  TraceRecorder::instance().disable();
  // After disable the mirror is torn down: logging no longer records.
  util::log_warn("not recorded");
  EXPECT_EQ(TraceRecorder::instance().snapshot().size(), 1u);
}

TEST_F(TraceTest, NextTraceIdIsNonzeroAndUnique) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10000; ++i) ids.push_back(next_trace_id());
  for (const std::uint64_t id : ids) ASSERT_NE(id, 0u);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "duplicate trace ids minted within one process";
}

TEST_F(TraceTest, FlowEventsExportAsChromeFlowPhases) {
  TraceRecorder::instance().enable(256);
  const std::uint64_t flow = next_trace_id();
  trace_flow_start("job.flow.submit", "causal", flow, 7);
  trace_flow_step("job.flow.admit", "causal", flow, 3);
  trace_flow_end("job.flow.complete", "causal", flow, 3);

  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, Phase::kFlowStart);
  EXPECT_EQ(events[0].a, flow);
  EXPECT_EQ(events[0].b, 7u);
  EXPECT_EQ(events[2].phase, Phase::kFlowEnd);

  const std::string path = temp_path("trace_flow.json");
  ASSERT_TRUE(TraceRecorder::instance().write_chrome_trace(path).ok());
  const std::string body = slurp(path);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"t\""), 1u);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"f\""), 1u);
  // The flow id binds the chain: hex "id" field on every flow event, and
  // the terminating 'f' carries bp:"e" so viewers draw the final arrow.
  char idbuf[32];
  std::snprintf(idbuf, sizeof idbuf, "\"id\":\"0x%llx\"",
                static_cast<unsigned long long>(flow));
  EXPECT_EQ(count_occurrences(body, idbuf), 3u) << body;
  EXPECT_EQ(count_occurrences(body, "\"bp\":\"e\""), 1u);
  // Args survive as full-precision decimals (obs_query parses them as u64).
  EXPECT_NE(body.find("\"b\":7"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, SeqlockRetriesAreCountedAndResetClearsThem) {
  TraceRecorder::instance().enable(64);
  // Single-threaded snapshots never observe a torn slot.
  trace_instant("quiet", "test");
  (void)TraceRecorder::instance().snapshot();
  EXPECT_EQ(TraceRecorder::instance().seqlock_retries(), 0u);

  // Hammer one ring from a writer while snapshotting: any retries the
  // reader takes must be visible in the counter (zero is also legal — the
  // counter only must never go backwards and must reset cleanly).
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire))
      trace_instant("hot", "test", i++);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    (void)TraceRecorder::instance().snapshot();
    const std::uint64_t now = TraceRecorder::instance().seqlock_retries();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  TraceRecorder::instance().reset();
  EXPECT_EQ(TraceRecorder::instance().seqlock_retries(), 0u);
}

TEST_F(TraceTest, DumpToFdIsWritableAndNonEmpty) {
  TraceRecorder::instance().enable(256);
  trace_instant("fd.event", "test", 123, 456);
  const std::string path = temp_path("trace_fd.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(TraceRecorder::instance().dump_to_fd(fileno(f)), 0);
  std::fclose(f);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("fd.event"), std::string::npos);
  EXPECT_NE(body.find("a=123"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcopt::obs
