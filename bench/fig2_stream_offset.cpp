// Fig. 2 reproduction: parallel STREAM triad bandwidth versus the COMMON-
// block array offset for 8/16/32/64 threads, plus STREAM copy at 64 threads.
//
// Paper shape (Sect. 2.1): a striking periodicity of 64 DP words (512 bytes)
// for >= 16 threads — deep dips at offsets 0 and 64 where all three array
// bases map to the same memory controller, a ~2x recovery at odd multiples
// of 32 (array B lands on a different controller via bit 8), and a high
// plateau at "skewed" offsets. 8 threads are latency-bound and barely
// offset-sensitive.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli(
      "Fig. 2: STREAM triad/copy bandwidth vs array offset on the simulated "
      "UltraSPARC T2");
  cli.flag("full", "paper-scale sweep: every offset 0..256, N = 2^22")
      .option_int("n", 1 << 19, "array length in DP words (paper: 2^25)")
      .option_int("max-offset", 256, "largest offset in DP words")
      .option_int("step", 8, "offset step (1 with --full)")
      .option_str("fault", "",
                  "inject hardware faults, e.g. mc0:off,mc1:derate=0.5 "
                  "(see sim::FaultSpec::parse)")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const bool full = cli.get_flag("full");
  const auto n = static_cast<std::size_t>(full ? (1 << 22) : cli.get_int("n"));
  const auto max_offset = static_cast<std::size_t>(cli.get_int("max-offset"));
  const auto step = static_cast<std::size_t>(full ? 1 : cli.get_int("step"));
  const std::vector<unsigned> thread_counts = {8, 16, 32, 64};

  sim::SimConfig cfg;
  cfg.faults = bench::parse_fault_knob(cli.get_str("fault"), cfg);
  if (cfg.faults.any())
    std::printf("# DEGRADED chip: %s\n", cfg.faults.describe().c_str());

  std::printf(
      "# STREAM triad A=B+s*C (reported GB/s, RFO not counted), N=%zu DP "
      "words\n# copy64 = STREAM copy at 64 threads; analytic = closed-form "
      "controller-balance model (triad, 64T)\n\n",
      n);

  const std::vector<std::string> header = {"offset", "8T",     "16T",
                                           "32T",    "64T",    "copy64",
                                           "analytic64"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t offset = 0; offset <= max_offset; offset += step) {
    std::vector<std::string> row{std::to_string(offset)};
    for (unsigned threads : thread_counts)
      row.push_back(util::fmt_fixed(
          bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, offset,
                                     threads, cfg),
          2));
    row.push_back(util::fmt_fixed(
        bench::stream_reported_gbs(kernels::StreamOp::kCopy, n, offset, 64, cfg),
        2));
    row.push_back(util::fmt_fixed(
        bench::stream_analytic_gbs(kernels::StreamOp::kTriad, n, offset, 64, cfg),
        2));
    rows.push_back(std::move(row));
    util::log_debug("offset " + std::to_string(offset) + " done");
  }
  bench::emit(header, rows, cli.get_str("csv"));

  // Headline numbers the paper quotes.
  const double dip =
      bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 0, 64, cfg);
  const double mid =
      bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 32, 64, cfg);
  std::printf(
      "\nshape check: 64T dip at offset 0 = %.2f GB/s (paper: 3.7), odd-32 "
      "level = %.2f GB/s (paper: ~7.4, a ~2x recovery)\n",
      dip, mid);
  return 0;
}
