#pragma once
// Persistent submission API over runtime::Service — the durable service
// runtime.
//
// A ServiceHandle owns a Service, a write-ahead journal and a periodic
// state snapshot, and stitches them into a process-lifetime-crossing
// contract:
//
//   submit(tenant, submission_id, spec)  -> journaled door verdict
//   flush()                              -> group commit: everything
//                                           submitted so far is ACKED —
//                                           a crash at any later instant
//                                           cannot lose it
//   pump()                               -> journal executor outcomes
//                                           (completions, typed sheds)
//   checkpoint()                         -> quiesced-instant state snapshot
//   drain()                              -> quiesce: stop admitting, drain
//                                           or (watchdog escalation) shed
//                                           the backlog, snapshot, seal
//
// ## Crash-consistent restart
//
// open() on a directory with history replays it idempotently:
//
//   1. the state snapshot (CRC-guarded; torn writes impossible by atomic
//      rename) restores the door, the executor's virtual clocks, the
//      per-tenant ledgers and (optionally) NodeSupervisor beliefs;
//   2. journal records covered by the snapshot are skipped; records after
//      it are REPLAYED: every submission is re-presented to the restored
//      door, which reproduces the original verdict bit-identically (all
//      door arithmetic is deterministic in state + order — a divergence is
//      a config mismatch and refuses the restart);
//   3. submissions whose completion is journaled are NOT re-executed —
//      their ledger credit comes from the record; journaled sheds are
//      final history; accepted submissions with no journaled outcome (in
//      flight at the crash) are re-forwarded to the executor and run;
//   4. a torn/corrupt journal tail is truncated and REPORTED in
//      RecoveryInfo (never silently accepted); a file that is not a
//      journal, or a corrupt snapshot, is a typed refusal.
//
// Duplicate submissions — a client retrying an id it never saw acked —
// dedupe by submission id: ids with in-memory outcomes return them; ids at
// or below the snapshot watermark are acknowledged history. Submission ids
// should be dense and monotonically increasing per instance (the natural
// shape for a resumable generator).
//
// ## Quiesce triggers
//
// install_quiesce_signal_handler() latches SIGTERM into a flag the serving
// loop polls (quiesce_requested()) before calling drain(). drain() itself
// carries the watchdog-escalation path: a backlog that does not empty
// within drain_budget_ms is shed (typed kShutdown records) rather than
// wedging the shutdown.
//
// ## Threading
//
// One logical caller (the serving loop) drives the handle; an internal
// mutex makes the API safe against incidental cross-thread use, but the
// intended shape is single-driver, mirroring the soak harnesses.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "runtime/durable/journal.h"
#include "runtime/durable/state.h"
#include "runtime/service/service.h"

namespace mcopt::runtime::durable {

struct DurableConfig {
  /// Directory holding journal + snapshot (created if missing).
  std::string dir;
  service::ServiceConfig service{};
  /// Tenants registered at open(), in order (ids 1..n). A restart must pass
  /// the same set — the door snapshot is positional.
  std::vector<service::TenantConfig> tenants;
  /// Instance word stamped into the journal header (e.g. the run seed).
  std::uint64_t instance = 0;
  /// drain(): wall-clock budget for the backlog to empty before the
  /// watchdog escalates to shedding it. 0 = wait indefinitely.
  unsigned drain_budget_ms = 0;
  /// SLO error-budget monitor thresholds (see obs/slo.h). Every journaled
  /// outcome — live or replayed — feeds the handle's monitor on the virtual
  /// service timeline, so burn rates reproduce across restarts.
  obs::SloBurnConfig slo{};

  [[nodiscard]] util::Status check() const;

  [[nodiscard]] std::string journal_path() const { return dir + "/journal.mjnl"; }
  [[nodiscard]] std::string state_path() const { return dir + "/state.mcpt"; }
};

/// Lifecycle of one submission id as the handle knows it.
enum class SubmissionState : unsigned {
  kUnknown = 0,        ///< never seen (and above the ack watermark)
  kPending,            ///< forwarded, outcome not yet journaled
  kCompleted,
  kShed,               ///< typed loss (door or executor)
  kAckedHistory,       ///< at/below the snapshot watermark: acknowledged,
                       ///< details compacted away
};

/// Result of submit().
struct SubmitAck {
  std::uint64_t submission_id = 0;
  bool accepted = false;   ///< door verdict (false for duplicates of sheds)
  bool duplicate = false;  ///< deduped — no door state was touched
  std::uint64_t exec_id = 0;
  exec::ShedReason rejected = exec::ShedReason::kNone;
};

struct PollResult {
  SubmissionState state = SubmissionState::kUnknown;
  bool acked = false;  ///< covered by a journal commit
  std::uint64_t served_bytes = 0;
  std::uint32_t field_crc = 0;
  exec::ShedReason reason = exec::ShedReason::kNone;
};

/// What open() found and did.
struct RecoveryInfo {
  bool restarted = false;        ///< a journal existed
  bool snapshot_loaded = false;
  bool was_sealed = false;       ///< previous life shut down cleanly
  std::uint64_t journal_records = 0;
  std::uint64_t replayed_submissions = 0;
  std::uint64_t resubmitted = 0;        ///< re-forwarded (in flight at crash)
  std::uint64_t completed_skipped = 0;  ///< journaled completions not re-run
  std::uint64_t sheds_replayed = 0;
  std::uint64_t dropped_bytes = 0;      ///< torn tail truncated
  std::string tail_note;                ///< why, when dropped_bytes > 0
};

/// Outcome of drain().
struct DrainReport {
  bool escalated = false;       ///< watchdog shed the backlog
  std::uint64_t shed_on_drain = 0;
};

class ServiceHandle {
 public:
  /// Opens (or creates) the durable service in cfg.dir. See the file
  /// comment for the restart semantics.
  [[nodiscard]] static util::Expected<std::unique_ptr<ServiceHandle>> open(
      DurableConfig cfg);

  /// Closes WITHOUT draining or committing — exiting without drain() is
  /// deliberately crash-equivalent.
  ~ServiceHandle();
  ServiceHandle(const ServiceHandle&) = delete;
  ServiceHandle& operator=(const ServiceHandle&) = delete;

  /// Journaled submission. NOT durable until the next flush(); the caller
  /// must not acknowledge the submission upstream before flush() returns.
  SubmitAck submit(service::TenantId tenant, std::uint64_t submission_id,
                   exec::JobSpec spec);

  /// Group commit: makes every journal record appended so far durable.
  /// The ack point.
  [[nodiscard]] util::Status flush();

  /// Journals executor outcomes (completions / typed sheds) that finalized
  /// since the last pump. Returns records appended (durable at next flush).
  std::size_t pump();

  /// Waits for the executor to quiesce (queue empty, every forwarded job's
  /// outcome journaled), then publishes a state snapshot: journal commit ->
  /// atomic snapshot write -> snapshot mark -> commit.
  [[nodiscard]] util::Status checkpoint();

  /// Quiesce/drain: stop admitting, let the backlog finish (or shed it
  /// after drain_budget_ms — the watchdog escalation), journal every
  /// outcome, snapshot, seal. The handle stops accepting submissions.
  [[nodiscard]] util::Status drain(DrainReport* report = nullptr);

  [[nodiscard]] PollResult poll(std::uint64_t submission_id) const;

  /// Attaches a NodeSupervisor whose quarantine-and-ramp beliefs ride in
  /// every subsequent snapshot; on open(), a snapshot carrying beliefs
  /// restores them into the attached supervisor (call before traffic).
  [[nodiscard]] util::Status attach_node_supervisor(NodeSupervisor* sup);

  [[nodiscard]] service::Service& service() noexcept { return *service_; }
  [[nodiscard]] const service::Service& service() const noexcept {
    return *service_;
  }
  [[nodiscard]] std::vector<TenantLedger> ledger() const;
  /// The handle's SLO burn monitor (fed by every journaled outcome); the
  /// serving loop drains typed alerts from it between batches.
  [[nodiscard]] obs::SloMonitor& slo_monitor() noexcept { return slo_; }
  [[nodiscard]] const obs::SloMonitor& slo_monitor() const noexcept {
    return slo_;
  }
  [[nodiscard]] const RecoveryInfo& recovery_info() const noexcept {
    return recovery_;
  }
  [[nodiscard]] bool draining() const noexcept { return draining_; }
  /// Largest submission id ever journaled (snapshot watermark included).
  [[nodiscard]] std::uint64_t max_submission_id() const;

  /// Latches SIGTERM into the quiesce flag (serving loops poll
  /// quiesce_requested() and call drain()).
  static void install_quiesce_signal_handler();
  [[nodiscard]] static bool quiesce_requested() noexcept;
  static void clear_quiesce_request() noexcept;

 private:
  /// In-memory view of one submission this incarnation knows in detail.
  struct Sub {
    SubmissionRecord rec;
    bool acked = false;
    bool outcome_known = false;
    bool completed = false;
    CompletionRecord comp;
    ShedRecord shed;
  };

  ServiceHandle(DurableConfig cfg, std::unique_ptr<service::Service> svc);

  [[nodiscard]] util::Status replay_locked(const JournalRecovery& rec,
                                           std::uint64_t covered_sequence);
  std::size_t pump_locked();
  void feed_slo_locked(std::uint32_t tenant, bool missed, std::uint64_t at);
  /// `compact` drops finished, acked entries below the new watermark — on
  /// for live checkpoints (bounded memory), off for drain (final outcomes
  /// stay pollable).
  [[nodiscard]] util::Status publish_snapshot_locked(bool compact);
  void wait_quiesced_locked();
  void apply_outcome_locked(Sub& sub, const exec::JobReport& report);

  DurableConfig cfg_;
  std::unique_ptr<service::Service> service_;
  NodeSupervisor* node_supervisor_ = nullptr;
  /// Beliefs recovered from the snapshot before a supervisor was attached;
  /// handed over (and cleared) by attach_node_supervisor().
  std::unique_ptr<NodeSupervisor::Snapshot> pending_supervisor_;

  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> writer_;
  std::map<std::uint64_t, Sub> subs_;
  std::map<std::uint64_t, std::uint64_t> exec_to_sub_;
  std::vector<std::uint64_t> unacked_;
  std::vector<TenantLedger> ledger_;
  std::size_t reports_seen_ = 0;  ///< executor reports consumed by pump()
  std::uint64_t acked_watermark_ = 0;   ///< snapshot's max_submission_id
  std::uint64_t max_submission_id_ = 0;
  std::uint64_t snapshot_id_ = 0;
  bool draining_ = false;
  RecoveryInfo recovery_;
  obs::SloMonitor slo_;
};

}  // namespace mcopt::runtime::durable
