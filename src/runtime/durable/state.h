#pragma once
// Durable state snapshot of the service runtime.
//
// The journal (runtime/durable/journal.h) is the history; this is the
// periodic compaction of that history into a restorable image, so a restart
// replays only the records after the snapshot instead of the whole life of
// the service. The image carries everything a fresh process cannot
// re-derive from code + config:
//
//   * the service door's state — tenant counters, token-bucket levels,
//     circuit-breaker holds, the door clock — so replayed submissions get
//     bit-identical verdicts;
//   * the executor's virtual-timeline clocks (arrival / service tail /
//     admit tail), so admission projections and WFQ virtual time continue
//     where they stopped;
//   * per-tenant served-byte ledgers (the reconciliation ground truth);
//   * optionally, a NodeSupervisor's quarantine-and-ramp beliefs, so a
//     restarted node does not relearn socket health from scratch.
//
// On disk the image is a runtime::Checkpoint (kind kDurableStateCheckpoint):
// versioned header, CRC32C-guarded sections, whole-file CRC, written via
// write-to-temp + fsync + atomic rename. Any corruption is a typed refusal
// at load — a service must never restart from a half-trusted snapshot.
//
// Snapshots are only taken at QUIESCED instants (executor queue empty,
// every forwarded job's outcome journaled): that is when the clocks and
// ledgers fully describe the timeline, and it cleanly partitions the
// journal into "covered by the snapshot" and "replay after restore".

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/executor/executor.h"
#include "runtime/service/service.h"
#include "runtime/supervisor.h"
#include "util/expected.h"

namespace mcopt::runtime::durable {

/// Wire-format version of the state image (inside the checkpoint container,
/// which has its own). v2 turned the container's user[1] word from a
/// has-node-supervisor boolean into a section-flags bitmask and added the
/// optional attribution section; v1 images still load (no attribution — the
/// ledger replays rebuild per-tenant totals from the journal).
inline constexpr std::uint32_t kStateImageVersion = 2;
inline constexpr std::uint32_t kStateImageMinVersion = 1;

/// Section-flag bits carried in the checkpoint container's user[1] word
/// (v2 images; a v1 image's user[1] is the has-node-supervisor boolean).
inline constexpr std::uint64_t kStateFlagNodeSupervisor = 1u << 0;
inline constexpr std::uint64_t kStateFlagAttribution = 1u << 1;

/// Per-tenant durable accounting, accumulated from journaled completions.
struct TenantLedger {
  std::uint64_t completed = 0;
  std::uint64_t served_bytes = 0;  ///< sum of completed jobs' quote bytes
  std::uint64_t sheds = 0;         ///< typed losses (door + executor)
};

/// The restorable image. `ledger` is indexed like the door's tenants
/// (tenant id - 1) and must have the same length.
struct StateImage {
  std::uint64_t snapshot_id = 0;
  /// Journal records with sequence <= this are captured by the image and
  /// must not be replayed.
  std::uint64_t covered_sequence = 0;
  /// Largest submission id ever journaled at capture time: the dedup
  /// watermark (ids at or below it are acknowledged history).
  std::uint64_t max_submission_id = 0;
  service::DoorSnapshot door;
  exec::Executor::VirtualClocks clocks;
  std::vector<TenantLedger> ledger;
  bool has_node_supervisor = false;
  NodeSupervisor::Snapshot node_supervisor;
  /// Opaque obs::Attribution::encode() blob (v2 images). Carried so the
  /// bandwidth-attribution ledger reconciles byte-exactly across restarts:
  /// the snapshot holds the covered prefix, journal replay re-charges the
  /// rest.
  bool has_attribution = false;
  std::vector<std::uint8_t> attribution;
};

/// Writes the image crash-consistently (temp + fsync + rename), mirroring
/// runtime::save_checkpoint — a reader sees the previous image or the
/// complete new one, never a tear.
[[nodiscard]] util::Status save_state(const std::string& path,
                                      const StateImage& image);

/// Loads and fully validates an image; any damage (container CRCs, section
/// shapes, field counts) is a typed refusal naming the first problem.
[[nodiscard]] util::Expected<StateImage> load_state(const std::string& path);

}  // namespace mcopt::runtime::durable
