#pragma once
// seg_array<T>: the paper's segmented array (Sect. 2.2, Fig. 3).
//
// A seg_array owns one aligned allocation and presents it as an ordered
// sequence of segments whose byte positions follow a LayoutSpec (base
// alignment, per-segment alignment padding, cumulative shift, global
// offset). It exposes three iterator kinds, mirroring the paper's interface:
//
//   * segment_iterator — random access over segments; *it is a segment_view
//     with begin()/end() returning raw pointers ("local iterators");
//   * local_iterator   — plain T* within one segment; this is what the
//     performance-critical serial kernels receive;
//   * iterator         — a flat bidirectional iterator over all elements
//     implementing the *segmented iterator* protocol of Austern (nested
//     segment_iterator/local_iterator types plus segment()/local()), so the
//     hierarchical algorithms in seg/algorithms.h can run at raw-loop speed.
//
// The container is the core abstraction of the reproduced paper: choosing
// LayoutSpec values via seg::planner removes memory-controller aliasing on
// multi-controller chips.

#include <cstddef>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "arch/address_map.h"
#include "seg/aligned_buffer.h"
#include "seg/layout.h"

namespace mcopt::seg {

template <typename T>
class seg_array {
  static_assert(std::is_trivially_copyable_v<T>,
                "seg_array requires trivially copyable elements");

 public:
  using value_type = T;
  using size_type = std::size_t;

  /// One contiguous segment: a sized view into the owning buffer.
  class segment_view {
   public:
    using local_iterator = T*;
    using const_local_iterator = const T*;

    segment_view() noexcept = default;
    segment_view(T* data, size_type count) noexcept : data_(data), size_(count) {}

    [[nodiscard]] T* begin() noexcept { return data_; }
    [[nodiscard]] T* end() noexcept { return data_ + size_; }
    [[nodiscard]] const T* begin() const noexcept { return data_; }
    [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
    [[nodiscard]] size_type size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] T& operator[](size_type i) noexcept { return data_[i]; }
    [[nodiscard]] const T& operator[](size_type i) const noexcept { return data_[i]; }

   private:
    T* data_ = nullptr;
    size_type size_ = 0;
  };

  using segment_iterator = segment_view*;
  using const_segment_iterator = const segment_view*;

  /// Flat element iterator implementing the segmented-iterator protocol.
  template <bool Const>
  class flat_iterator {
   public:
    using segment_iterator =
        std::conditional_t<Const, const segment_view*, segment_view*>;
    using local_iterator = std::conditional_t<Const, const T*, T*>;
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using reference = std::conditional_t<Const, const T&, T&>;

    flat_iterator() noexcept = default;

    flat_iterator(segment_iterator seg, segment_iterator seg_end,
                  local_iterator local) noexcept
        : seg_(seg), seg_end_(seg_end), local_(local) {
      normalize();
    }

    /// iterator -> const_iterator conversion.
    template <bool WasConst = Const, typename = std::enable_if_t<WasConst>>
    flat_iterator(const flat_iterator<false>& other) noexcept
        : seg_(other.segment()), seg_end_(other.segment_end()), local_(other.local()) {}

    [[nodiscard]] reference operator*() const noexcept { return *local_; }
    [[nodiscard]] pointer operator->() const noexcept { return local_; }

    flat_iterator& operator++() noexcept {
      ++local_;
      if (local_ == seg_->end()) {
        ++seg_;
        normalize();
      }
      return *this;
    }
    flat_iterator operator++(int) noexcept {
      flat_iterator tmp = *this;
      ++*this;
      return tmp;
    }

    flat_iterator& operator--() noexcept {
      if (seg_ == seg_end_ || local_ == seg_->begin()) {
        do {
          --seg_;
        } while (seg_->empty());
        local_ = seg_->end();
      }
      --local_;
      return *this;
    }
    flat_iterator operator--(int) noexcept {
      flat_iterator tmp = *this;
      --*this;
      return tmp;
    }

    [[nodiscard]] friend bool operator==(const flat_iterator& a,
                                         const flat_iterator& b) noexcept {
      return a.seg_ == b.seg_ && a.local_ == b.local_;
    }

    /// Segmented-iterator protocol accessors.
    [[nodiscard]] segment_iterator segment() const noexcept { return seg_; }
    [[nodiscard]] segment_iterator segment_end() const noexcept { return seg_end_; }
    [[nodiscard]] local_iterator local() const noexcept { return local_; }

   private:
    /// Skip empty segments; collapse to the canonical end representation
    /// (seg_ == seg_end_, local_ == nullptr) when exhausted.
    void normalize() noexcept {
      while (seg_ != seg_end_ && seg_->empty()) ++seg_;
      local_ = seg_ == seg_end_ ? nullptr : seg_->begin();
    }
    // normalize() resets local_; keep the explicit position when mid-segment.
    friend class seg_array;
    static flat_iterator at(segment_iterator seg, segment_iterator seg_end,
                            local_iterator local) noexcept {
      flat_iterator it;
      it.seg_ = seg;
      it.seg_end_ = seg_end;
      it.local_ = local;
      return it;
    }

    segment_iterator seg_ = nullptr;
    segment_iterator seg_end_ = nullptr;
    local_iterator local_ = nullptr;
  };

  using iterator = flat_iterator<false>;
  using const_iterator = flat_iterator<true>;
  using local_iterator = T*;
  using const_local_iterator = const T*;

  seg_array() noexcept = default;

  /// Builds a seg_array with the given per-segment element counts and layout.
  /// The shift and offset of `spec` must be multiples of alignof(T) so every
  /// element stays naturally aligned.
  seg_array(std::vector<size_type> segment_sizes, const LayoutSpec& spec)
      : spec_(spec) {
    spec_.validate();
    if (spec_.shift % alignof(T) != 0 || spec_.offset % alignof(T) != 0)
      throw std::invalid_argument(
          "seg_array: shift/offset must be multiples of alignof(T)");
    std::vector<size_type> bytes(segment_sizes.size());
    for (size_type s = 0; s < segment_sizes.size(); ++s)
      bytes[s] = segment_sizes[s] * sizeof(T);
    const LayoutResult layout = compute_layout(bytes, spec_);
    buffer_ = AlignedBuffer(layout.total_bytes, spec_.base_align);
    segments_.reserve(segment_sizes.size());
    cumulative_.clear();
    cumulative_.reserve(segment_sizes.size() + 1);
    cumulative_.push_back(0);
    for (size_type s = 0; s < segment_sizes.size(); ++s) {
      T* base = segment_sizes[s] == 0
                    ? nullptr
                    : reinterpret_cast<T*>(buffer_.data() + layout.segment_pos[s]);
      segments_.emplace_back(base, segment_sizes[s]);
      cumulative_.push_back(cumulative_.back() + segment_sizes[s]);
      positions_.push_back(layout.segment_pos[s]);
    }
  }

  /// Single-segment convenience constructor (a plain aligned array).
  seg_array(size_type n, const LayoutSpec& spec)
      : seg_array(std::vector<size_type>{n}, spec) {}

  /// The paper's even split: n elements over `parts` segments, the first
  /// n%parts segments one element longer (Sect. 2.2).
  [[nodiscard]] static seg_array even(size_type n, size_type parts,
                                      const LayoutSpec& spec) {
    return seg_array(split_even(n, parts), spec);
  }

  // --- capacity -----------------------------------------------------------
  [[nodiscard]] size_type size() const noexcept { return cumulative_.back(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] size_type num_segments() const noexcept { return segments_.size(); }
  [[nodiscard]] const LayoutSpec& layout() const noexcept { return spec_; }
  /// Bytes actually allocated, including all padding.
  [[nodiscard]] size_type allocated_bytes() const noexcept { return buffer_.size(); }

  // --- segment access -------------------------------------------------------
  [[nodiscard]] segment_iterator segments_begin() noexcept { return segments_.data(); }
  [[nodiscard]] segment_iterator segments_end() noexcept {
    return segments_.data() + segments_.size();
  }
  [[nodiscard]] const_segment_iterator segments_begin() const noexcept {
    return segments_.data();
  }
  [[nodiscard]] const_segment_iterator segments_end() const noexcept {
    return segments_.data() + segments_.size();
  }
  [[nodiscard]] segment_view& segment(size_type s) { return segments_.at(s); }
  [[nodiscard]] const segment_view& segment(size_type s) const {
    return segments_.at(s);
  }

  // --- flat element access ---------------------------------------------------
  [[nodiscard]] iterator begin() noexcept {
    return iterator(segments_begin(), segments_end(),
                    segments_.empty() ? nullptr : segments_.front().begin());
  }
  [[nodiscard]] iterator end() noexcept {
    return iterator::at(segments_end(), segments_end(), nullptr);
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(segments_begin(), segments_end(),
                          segments_.empty() ? nullptr : segments_.front().begin());
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator::at(segments_end(), segments_end(), nullptr);
  }
  [[nodiscard]] const_iterator cbegin() const noexcept { return begin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return end(); }

  /// Element by global index; O(log num_segments).
  [[nodiscard]] T& operator[](size_type i) noexcept {
    const size_type s = segment_of_index(i);
    return segments_[s][i - cumulative_[s]];
  }
  [[nodiscard]] const T& operator[](size_type i) const noexcept {
    const size_type s = segment_of_index(i);
    return segments_[s][i - cumulative_[s]];
  }
  [[nodiscard]] T& at(size_type i) {
    if (i >= size()) throw std::out_of_range("seg_array::at");
    return (*this)[i];
  }
  [[nodiscard]] const T& at(size_type i) const {
    if (i >= size()) throw std::out_of_range("seg_array::at");
    return (*this)[i];
  }

  // --- address introspection (for the planner, the simulator and tests) ----
  /// Virtual address of element `i` of segment `s`.
  [[nodiscard]] arch::Addr address_of(size_type s, size_type i) const {
    return reinterpret_cast<arch::Addr>(&segments_.at(s)[i]);
  }
  /// Address of the allocation base (aligned to layout().base_align).
  [[nodiscard]] arch::Addr base_address() const noexcept {
    return reinterpret_cast<arch::Addr>(buffer_.data());
  }
  /// Byte position of segment `s` relative to the allocation base.
  [[nodiscard]] size_type segment_position(size_type s) const {
    return positions_.at(s);
  }

 private:
  [[nodiscard]] size_type segment_of_index(size_type i) const noexcept {
    // Upper-bound binary search on cumulative_ (first entry > i), minus one.
    size_type lo = 0;
    size_type hi = segments_.size();
    while (lo + 1 < hi) {
      const size_type mid = (lo + hi) / 2;
      if (cumulative_[mid] <= i)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }

  LayoutSpec spec_{};
  AlignedBuffer buffer_;
  std::vector<segment_view> segments_;
  std::vector<size_type> cumulative_{0};
  std::vector<size_type> positions_;
};

}  // namespace mcopt::seg
