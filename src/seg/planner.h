#pragma once
// Analytic layout planner — the paper's "no trial and error is required"
// claim (Sect. 2.3): given the address-to-controller map and the access
// properties of a kernel, derive alignment, offsets and shifts that spread
// concurrent streams across all memory controllers.
//
// Recipes implemented here, straight from the paper:
//   * multi-stream kernels (STREAM, vector triad): give stream k a base
//     offset of k * (period / num_controllers) bytes — 128, 256, 384 B for
//     the triad's B, C, D on T2 (Sect. 2.2, Fig. 4);
//   * row-segmented stencils (Jacobi): align each row to the full period
//     (512 B) and shift successive rows by period / num_controllers = 128 B
//     so concurrently processed rows hit different controllers (Sect. 2.3).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/numa.h"
#include "seg/layout.h"

namespace mcopt::seg {

/// A planned layout for a family of arrays used together in one kernel.
struct StreamPlan {
  /// Base alignment for every array (a page, so offsets are exact).
  std::size_t base_align = 8192;
  /// Per-array global offsets in bytes (entry k for array k).
  std::vector<std::size_t> offsets;

  /// LayoutSpec for array k with no internal segmentation.
  [[nodiscard]] LayoutSpec spec_for(std::size_t k) const;
};

/// Plans base offsets for `num_arrays` arrays traversed in lock-step.
/// Array k receives offset k * period / num_controllers (mod period).
[[nodiscard]] StreamPlan plan_stream_offsets(std::size_t num_arrays,
                                             const arch::AddressMap& map);

/// Graceful-degradation overload: plans offsets over an explicit surviving
/// controller subset (cf. sim::FaultSpec::surviving_controllers). Array k's
/// base lands on controller surviving[k % surviving.size()], so concurrent
/// streams never alias onto one *healthy* controller as long as
/// num_arrays <= surviving.size(). Throws std::invalid_argument when the set
/// is empty, out of range or contains duplicates.
[[nodiscard]] StreamPlan plan_stream_offsets(std::size_t num_arrays,
                                             const arch::AddressMap& map,
                                             std::span<const unsigned> surviving);

/// A planned layout for a row-segmented (stencil) array.
struct RowPlan {
  std::size_t base_align = 8192;
  /// Each row starts on a full-period boundary...
  std::size_t segment_align = 512;
  /// ...displaced by row_index * shift bytes.
  std::size_t shift = 128;
  /// Degraded-chip replanning: when non-empty, row s is displaced by
  /// shift_cycle[s % size] instead of s*shift, cycling rows through the
  /// surviving controllers only (LayoutSpec::shift_cycle semantics).
  std::vector<std::size_t> shift_cycle;

  [[nodiscard]] LayoutSpec spec() const;
};

/// Plans row alignment+shift for stencil kernels: rows aligned to the full
/// controller period, successive rows shifted by one controller stride.
[[nodiscard]] RowPlan plan_row_layout(const arch::AddressMap& map);

/// Graceful-degradation overload of the Jacobi row-shift recipe: row s is
/// displaced onto controller surviving[s % surviving.size()], so a static,1
/// schedule keeps concurrently processed rows on distinct healthy
/// controllers. Same argument validation as the stream overload.
[[nodiscard]] RowPlan plan_row_layout(const arch::AddressMap& map,
                                      std::span<const unsigned> surviving);

// ---------------------------------------------------------------------------
// NUMA sharding: the stream-offset recipe lifted to an N-socket node. Each
// surviving compute socket gets its own shard of arrays, homed in a surviving
// memory domain — its own when alive, else the cheapest reachable survivor by
// interconnect distance ("priced remote placement": per-line link cycles are
// the price; load ties break toward the emptier domain so orphaned sockets
// spread instead of piling onto one survivor). Within a domain, shards are
// rotated through the controller stride so co-homed shards do not alias onto
// the same controllers.

/// A node-wide stream layout: one shard per surviving compute socket.
struct NodeStreamPlan {
  struct Shard {
    unsigned compute_socket = 0;
    /// Memory domain serving this shard's arrays (== compute_socket when the
    /// placement is local).
    unsigned home_socket = 0;
    /// Per-line interconnect price of the chosen placement (0 = local).
    arch::Cycles link_cycles = 0;
    /// Controller-offset plan within the home domain.
    StreamPlan streams;
    /// Absolute planned base of each array: socket_base(home) + offset.
    std::vector<arch::Addr> bases;

    [[nodiscard]] bool remote() const noexcept {
      return home_socket != compute_socket;
    }
  };
  std::vector<Shard> shards;
  /// Fraction of shards placed remotely.
  double remote_fraction = 0.0;
  /// Human-readable one-line summary for logs.
  std::string summary;
};

/// Plans per-socket shards of `num_arrays` lock-step arrays each over the
/// surviving topology. `compute_sockets` are the sockets that will run work;
/// `memory_sockets` the domains still serving memory (both non-empty,
/// in-range, duplicate-free subsets of node.num_sockets — derive them from
/// sim::FaultSpec::surviving_sockets and link reachability). Throws
/// std::invalid_argument on bad subsets or num_arrays == 0.
[[nodiscard]] NodeStreamPlan plan_node_stream_shards(
    std::size_t num_arrays, const arch::AddressMap& map,
    const arch::NodeTopology& node, std::span<const unsigned> compute_sockets,
    std::span<const unsigned> memory_sockets);

/// Composable overload for shard-level rebalancing: `domain_load` (size
/// node.num_sockets) carries the number of shard families already homed in
/// each domain and is updated in place. The fail-back rebalancer plans one
/// logical job at a time — an orphaned job split across several survivors,
/// or a recovered job pulled back whole — and successive calls must rotate
/// against the node-wide allocation state, not re-alias each job
/// independently onto the same controllers. Throws on a wrong-sized load
/// vector.
[[nodiscard]] NodeStreamPlan plan_node_stream_shards(
    std::size_t num_arrays, const arch::AddressMap& map,
    const arch::NodeTopology& node, std::span<const unsigned> compute_sockets,
    std::span<const unsigned> memory_sockets,
    std::vector<unsigned>& domain_load);

/// Healthy-node convenience overload: every socket computes, every domain
/// serves, so each shard is local.
[[nodiscard]] NodeStreamPlan plan_node_stream_shards(
    std::size_t num_arrays, const arch::AddressMap& map,
    const arch::NodeTopology& node);

/// Even element partition of one orphaned job across `parts` survivors:
/// entry i is shard i's element count, total/parts with the remainder spread
/// over the leading shards. Never returns zero-element shards (parts is
/// clamped to total). Throws on total == 0 or parts == 0.
[[nodiscard]] std::vector<std::size_t> split_shard_counts(std::size_t total,
                                                          std::size_t parts);

/// Diagnosis of a set of concurrently traversed stream base addresses.
struct AliasReport {
  /// lockstep balance factor in (0,1]; 1/num_controllers is worst case.
  double balance = 0.0;
  /// Controller index of each stream base.
  std::vector<unsigned> base_controller;
  /// True if every base maps to the same controller (the Fig. 2 zero-offset
  /// catastrophe).
  bool fully_aliased = false;
  /// Human-readable one-line summary for logs.
  std::string summary;
};

/// Diagnoses aliasing among stream bases advancing in lock-step.
[[nodiscard]] AliasReport diagnose_streams(std::span<const arch::Addr> bases,
                                           const arch::AddressMap& map);

}  // namespace mcopt::seg
