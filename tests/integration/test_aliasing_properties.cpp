// Integration tests asserting the paper's central claims as executable
// properties of the simulator. These use reduced problem sizes; the bench
// harnesses sweep the full parameter ranges.

#include <gtest/gtest.h>

#include "kernels/stream.h"
#include "kernels/triad.h"
#include "sim/analytic.h"
#include "sim/chip.h"
#include "trace/virtual_arena.h"

namespace mcopt {
namespace {

double stream_triad_reported_gbs(std::size_t offset_dp, unsigned threads,
                                 sim::SimConfig cfg = {},
                                 std::size_t n = 1u << 19) {
  trace::VirtualArena arena;
  const arch::Addr block = arena.allocate(3 * (n + offset_dp) * 8, 8192);
  const auto bases = kernels::common_block_bases(block, n, offset_dp);
  auto wl = kernels::make_stream_workload(kernels::StreamOp::kTriad, bases, n,
                                          threads, sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return static_cast<double>(
             kernels::stream_reported_bytes(kernels::StreamOp::kTriad, n)) /
         res.seconds() / 1e9;
}

// Paper, Sect. 2.1/Fig. 2: zero offset serializes all streams onto a single
// controller; a skewed offset engages all four. The dip must be deep.
TEST(AliasingProperty, ZeroOffsetDipsVsSkewed) {
  const double dip = stream_triad_reported_gbs(0, 64);
  const double skew = stream_triad_reported_gbs(40, 64);
  EXPECT_GT(skew, 1.7 * dip);
  // Absolute levels in the paper's ballpark (3.7 and ~8-11 GB/s).
  EXPECT_NEAR(dip, 3.7, 1.2);
  EXPECT_GT(skew, 6.0);
}

// Paper: "at odd multiples of 32, ... two controllers are addressed, leading
// to an expected performance improvement of 100%".
TEST(AliasingProperty, OddMultipleOf32DoublesDip) {
  const double dip = stream_triad_reported_gbs(0, 64);
  const double mid = stream_triad_reported_gbs(32, 64);
  EXPECT_GT(mid, 1.5 * dip);
  EXPECT_LT(mid, 3.5 * dip);
}

// Paper: the periodicity of the effect is 64 DP words (512 bytes).
TEST(AliasingProperty, PeriodicityIs64Words) {
  const double at0 = stream_triad_reported_gbs(0, 64);
  const double at64 = stream_triad_reported_gbs(64, 64);
  const double at40 = stream_triad_reported_gbs(40, 64);
  // Offset 64 must be dip-like (far below the skewed plateau), like offset 0.
  EXPECT_LT(at64, 0.75 * at40);
  EXPECT_LT(at0, 0.75 * at40);
}

// Paper, Fig. 5 precondition: the lockstep execution model is what exposes
// the aliasing; with free-running threads the dip washes out.
TEST(AliasingProperty, LockstepAblation) {
  sim::SimConfig free_running;
  free_running.model_lockstep = false;
  const double dip_locked = stream_triad_reported_gbs(0, 64);
  const double dip_free = stream_triad_reported_gbs(0, 64, free_running);
  EXPECT_GT(dip_free, 1.5 * dip_locked);
}

// Paper, Fig. 4: planner offsets remove the breakdowns of page-aligned
// allocation for the vector triad.
TEST(AliasingProperty, PlannedTriadOffsetsBeatAligned8k) {
  const arch::AddressMap map;
  const std::size_t n = 1u << 18;
  auto run = [&](kernels::TriadLayout layout) {
    trace::VirtualArena arena;
    const auto bases = kernels::triad_layout_bases(arena, layout, n, map);
    auto wl = kernels::make_triad_workload(bases, n, 64,
                                           sched::Schedule::static_block());
    sim::SimConfig cfg;
    sim::Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
    const sim::SimResult res = chip.run(wl);
    return static_cast<double>(kernels::triad_actual_bytes(n)) / res.seconds();
  };
  const double pessimal = run(kernels::TriadLayout::kAligned8k);
  const double planned = run(kernels::TriadLayout::kPlannedOffsets);
  EXPECT_GT(planned, 1.7 * pessimal);
}

// The analytic model must agree with the DES on the *ordering* of layouts
// and produce balance factors matching the address-map prediction.
TEST(AliasingProperty, AnalyticModelTracksDesOrdering) {
  const arch::AddressMap map;
  const arch::Calibration cal;
  auto analytic = [&](std::size_t offset_dp) {
    const auto bases = kernels::common_block_bases(arch::Addr{1} << 32,
                                                   1u << 19, offset_dp);
    const auto descs = kernels::stream_descs(kernels::StreamOp::kTriad, bases);
    std::vector<sim::AnalyticStream> streams;
    for (const auto& d : descs) streams.push_back({d.base, d.write});
    return sim::estimate_bandwidth(sim::expand_rfo(streams), 64, cal, map, 1.2)
        .bandwidth;
  };
  const double a0 = analytic(0);
  const double a32 = analytic(32);
  const double a40 = analytic(40);
  EXPECT_LT(a0, a32);
  EXPECT_LT(a32, a40 * 1.2);  // 32 is at most slightly above the plateau
  const double d0 = stream_triad_reported_gbs(0, 64);
  const double d40 = stream_triad_reported_gbs(40, 64);
  EXPECT_LT(d0, d40);
}

// Fewer threads cannot saturate memory: 8 threads sit well below 64, and the
// 8-thread curve is far less offset-sensitive (Fig. 2, lower curves).
TEST(AliasingProperty, ThreadScalingAndSensitivity) {
  const double t8_dip = stream_triad_reported_gbs(0, 8);
  const double t8_skew = stream_triad_reported_gbs(40, 8);
  const double t64_skew = stream_triad_reported_gbs(40, 64);
  EXPECT_LT(t8_skew, t64_skew);
  const double sensitivity8 = t8_skew / t8_dip;
  const double sensitivity64 =
      t64_skew / stream_triad_reported_gbs(0, 64);
  EXPECT_LT(sensitivity8, sensitivity64);
}

}  // namespace
}  // namespace mcopt
