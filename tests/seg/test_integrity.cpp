#include "seg/integrity.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "seg/seg_array.h"
#include "util/prng.h"

namespace mcopt::seg {
namespace {

seg_array<double> make_array(std::size_t segments = 8, std::size_t per = 64) {
  seg_array<double> a = seg_array<double>::even(segments * per, segments,
                                                LayoutSpec{});
  double v = 0.0;
  for (double& x : a) x = v += 0.5;
  return a;
}

TEST(SegmentGuard, FreshGuardVerifiesClean) {
  auto a = make_array();
  SegmentGuard<double> guard(a);
  EXPECT_EQ(guard.num_segments(), a.num_segments());
  EXPECT_TRUE(guard.verify().ok());
  EXPECT_TRUE(guard.status().ok());
  EXPECT_TRUE(guard.corrupted().empty());
}

TEST(SegmentGuard, DetectsSingleBitFlipAnywhere) {
  auto a = make_array(4, 32);
  SegmentGuard<double> guard(a);
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t s = rng.below(a.num_segments());
    auto& view = a.segment(s);
    const std::size_t elem = rng.below(view.size());
    const unsigned bit = static_cast<unsigned>(rng.below(64));
    std::uint64_t raw;
    std::memcpy(&raw, &view[elem], sizeof raw);
    raw ^= std::uint64_t{1} << bit;
    std::memcpy(&view[elem], &raw, sizeof raw);

    EXPECT_FALSE(guard.segment_clean(s)) << "trial " << trial;
    const auto bad = guard.corrupted();
    ASSERT_EQ(bad.size(), 1u) << "trial " << trial;
    EXPECT_EQ(bad[0], s);
    const util::Status status = guard.verify();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message.find("segment " + std::to_string(s)),
              std::string::npos);

    // Undo and re-verify clean: detection has no false positives.
    raw ^= std::uint64_t{1} << bit;
    std::memcpy(&view[elem], &raw, sizeof raw);
    EXPECT_TRUE(guard.verify().ok()) << "trial " << trial;
  }
}

TEST(SegmentGuard, SealAfterLegitimateWriteKeepsClean) {
  auto a = make_array();
  SegmentGuard<double> guard(a);
  for (double& x : a.segment(3)) x *= 2.0;
  EXPECT_FALSE(guard.segment_clean(3));  // unsealed write looks like corruption
  guard.seal(3);
  EXPECT_TRUE(guard.verify().ok());
}

TEST(SegmentGuard, ScrubRebuildsCorruptedSegments) {
  auto a = make_array(6, 16);
  // Keep a golden copy for the rebuilder.
  std::vector<std::vector<double>> golden;
  for (std::size_t s = 0; s < a.num_segments(); ++s)
    golden.emplace_back(a.segment(s).begin(), a.segment(s).end());

  SegmentGuard<double> guard(a);
  a.segment(1)[4] = -1e300;
  a.segment(5)[0] = 42.0;

  const ScrubReport report = guard.scrub([&](std::size_t s) {
    std::memcpy(a.segment(s).begin(), golden[s].data(),
                golden[s].size() * sizeof(double));
    return true;
  });
  EXPECT_EQ(report.rebuilt, (std::vector<std::size_t>{1, 5}));
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(report.fully_recovered());
  EXPECT_EQ(report.clean, 4u);
  EXPECT_TRUE(guard.verify().ok());
  // The rebuild restored the exact original data.
  for (std::size_t s = 0; s < a.num_segments(); ++s)
    for (std::size_t i = 0; i < a.segment(s).size(); ++i)
      EXPECT_EQ(a.segment(s)[i], golden[s][i]);
}

TEST(SegmentGuard, UnrebuildableSegmentsAreQuarantined) {
  auto a = make_array(4, 16);
  SegmentGuard<double> guard(a);
  a.segment(2)[7] = 123.0;

  const ScrubReport report = guard.scrub([](std::size_t) { return false; });
  EXPECT_TRUE(report.rebuilt.empty());
  EXPECT_EQ(report.quarantined, (std::vector<std::size_t>{2}));
  EXPECT_FALSE(report.fully_recovered());
  EXPECT_TRUE(guard.is_quarantined(2));

  // Quarantine is sticky and typed: status() and verify() both refuse.
  const util::Status status = guard.status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("quarantined"), std::string::npos);
  ASSERT_FALSE(guard.verify().ok());

  // Even restoring the original bytes does not lift quarantine — the guard
  // cannot distinguish luck from repair. Only an explicit seal/rebuild does.
  a.segment(2)[7] = 0.0;
  guard.seal(2);  // legitimate rebuild + reseal
  EXPECT_FALSE(guard.is_quarantined(2));
  EXPECT_TRUE(guard.status().ok());
}

TEST(SegmentGuard, QuarantinedSegmentRebuildableOnLaterScrub) {
  auto a = make_array(4, 16);
  std::vector<double> golden(a.segment(0).begin(), a.segment(0).end());
  SegmentGuard<double> guard(a);
  a.segment(0)[3] = 7.0;
  guard.scrub([](std::size_t) { return false; });
  ASSERT_TRUE(guard.is_quarantined(0));

  // A later scrub (e.g. after a checkpoint became available) can rebuild.
  const ScrubReport second = guard.scrub([&](std::size_t s) {
    if (s != 0) return false;
    std::memcpy(a.segment(0).begin(), golden.data(),
                golden.size() * sizeof(double));
    return true;
  });
  EXPECT_EQ(second.rebuilt, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(guard.verify().ok());
  EXPECT_TRUE(guard.status().ok());
}

TEST(SegmentGuard, MultipleCorruptionsAllReported) {
  auto a = make_array(8, 8);
  SegmentGuard<double> guard(a);
  for (std::size_t s = 0; s < a.num_segments(); s += 2) a.segment(s)[0] += 1.0;
  const auto bad = guard.corrupted();
  EXPECT_EQ(bad, (std::vector<std::size_t>{0, 2, 4, 6}));
  const util::Status status = guard.verify();
  ASSERT_FALSE(status.ok());
  for (std::size_t s : bad)
    EXPECT_NE(status.error().message.find("segment " + std::to_string(s)),
              std::string::npos);
}

TEST(SegmentGuard, WorksWithPlannerStyleLayouts) {
  // Shifted/padded layouts (the paper's Fig. 3 parameters) must checksum
  // exactly the data bytes, never the padding.
  LayoutSpec spec;
  spec.base_align = 512;
  spec.segment_align = 512;
  spec.shift = 128;
  auto a = seg_array<double>::even(1024, 8, spec);
  double v = 0.0;
  for (double& x : a) x = v += 1.0;
  SegmentGuard<double> guard(a);
  EXPECT_TRUE(guard.verify().ok());
  a.segment(7)[63] = -5.0;
  EXPECT_EQ(guard.corrupted(), (std::vector<std::size_t>{7}));
}

}  // namespace
}  // namespace mcopt::seg
