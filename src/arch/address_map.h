#pragma once
// Physical-address-to-resource mapping of the UltraSPARC T2 memory subsystem.
//
// Per the OpenSPARC T2 specification (and Sect. 1 of the paper): bits 8:7 of
// the physical address select one of four memory controllers (MCUs), bit 6
// selects which of the controller's two L2 banks serves the line, and bits
// 5:0 address bytes within the 64-byte L2 cache line. Consecutive cache lines
// are therefore served round-robin by consecutive banks/controllers with a
// 512-byte super-period. The mapping is exposed with configurable bit
// positions so tests and ablations can model hypothetical interleavings.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mcopt::arch {

/// Physical (or, equivalently for >=4 KiB pages, virtual) byte address.
using Addr = std::uint64_t;

/// Describes an address-interleaving scheme: contiguous bit fields selecting
/// the memory controller and the L2 bank within the controller pair.
struct InterleaveSpec {
  unsigned line_bits = 6;      ///< log2(cache line size); T2: 64 B lines.
  unsigned bank_bits = 1;      ///< log2(banks per controller); T2: 2 banks/MC.
  unsigned controller_bits = 2;///< log2(controller count); T2: 4 MCs.

  [[nodiscard]] constexpr std::size_t line_size() const noexcept {
    return std::size_t{1} << line_bits;
  }
  [[nodiscard]] constexpr unsigned num_controllers() const noexcept {
    return 1u << controller_bits;
  }
  [[nodiscard]] constexpr unsigned banks_per_controller() const noexcept {
    return 1u << bank_bits;
  }
  [[nodiscard]] constexpr unsigned num_banks() const noexcept {
    return num_controllers() * banks_per_controller();
  }
  /// Bytes after which the controller pattern repeats (T2: 512 B).
  [[nodiscard]] constexpr std::size_t period_bytes() const noexcept {
    return std::size_t{1} << (line_bits + bank_bits + controller_bits);
  }
};

/// The T2 production mapping: 64 B lines, bit 6 -> bank, bits 8:7 -> MC.
inline constexpr InterleaveSpec kT2Interleave{};

/// Maps addresses to controllers, banks and lines under an InterleaveSpec.
class AddressMap {
 public:
  constexpr explicit AddressMap(InterleaveSpec spec = kT2Interleave) noexcept
      : spec_(spec) {}

  [[nodiscard]] constexpr const InterleaveSpec& spec() const noexcept { return spec_; }

  /// Cache-line index (address / line size).
  [[nodiscard]] constexpr std::uint64_t line_of(Addr a) const noexcept {
    return a >> spec_.line_bits;
  }

  /// Base address of the line containing `a`.
  [[nodiscard]] constexpr Addr line_base(Addr a) const noexcept {
    return a & ~static_cast<Addr>(spec_.line_size() - 1);
  }

  /// Memory-controller index in [0, num_controllers). T2: bits 8:7.
  [[nodiscard]] constexpr unsigned controller_of(Addr a) const noexcept {
    return static_cast<unsigned>(
        (a >> (spec_.line_bits + spec_.bank_bits)) &
        (spec_.num_controllers() - 1));
  }

  /// Bank index within the owning controller in [0, banks_per_controller).
  /// T2: bit 6.
  [[nodiscard]] constexpr unsigned bank_within_controller(Addr a) const noexcept {
    return static_cast<unsigned>((a >> spec_.line_bits) &
                                 (spec_.banks_per_controller() - 1));
  }

  /// Global L2 bank index in [0, num_banks). Consecutive lines map to
  /// consecutive global banks.
  [[nodiscard]] constexpr unsigned global_bank_of(Addr a) const noexcept {
    return static_cast<unsigned>((a >> spec_.line_bits) &
                                 (spec_.num_banks() - 1));
  }

  /// True if both addresses alias to the same controller.
  [[nodiscard]] constexpr bool same_controller(Addr a, Addr b) const noexcept {
    return controller_of(a) == controller_of(b);
  }

  /// Per-controller line counts for a contiguous [base, base+bytes) region.
  [[nodiscard]] std::vector<std::uint64_t> controller_histogram(
      Addr base, std::size_t bytes) const;

  /// Per-controller line counts for a set of stream base addresses, counting
  /// one line per stream per "step" as all streams advance in lock-step for
  /// `lines_per_stream` lines. This mirrors how a load/store loop touches its
  /// operand streams and is the quantity the balance model needs.
  [[nodiscard]] std::vector<std::uint64_t> lockstep_histogram(
      std::span<const Addr> stream_bases, std::uint64_t lines_per_stream) const;

  /// Uniformity of a histogram in (0, 1]: total / (num_bins * max_bin).
  /// 1.0 = perfectly uniform; 1/num_bins = everything in one bin.
  [[nodiscard]] static double histogram_uniformity(
      std::span<const std::uint64_t> histogram);

  /// Instantaneous controller-concurrency balance of a set of lock-stepped
  /// streams, the quantity behind the paper's Fig. 2/4 aliasing dips.
  ///
  /// Model: at step k every stream issues the line at base_i + k*line_size.
  /// The step costs max_c(#lines mapped to controller c) service slots, since
  /// lines on the same controller serialize while distinct controllers work
  /// concurrently. Returns total_lines / (num_controllers * sum_k cost_k):
  /// 1.0 when every step spreads across all controllers, 1/num_controllers
  /// when every step lands on a single controller (all bases congruent mod
  /// period_bytes()). Requires at least one stream and lines_per_stream >= 1;
  /// the pattern repeats with period_bytes(), so small counts suffice.
  [[nodiscard]] double lockstep_balance(std::span<const Addr> stream_bases,
                                        std::uint64_t lines_per_stream) const;

 private:
  InterleaveSpec spec_;
};

}  // namespace mcopt::arch
