#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mcopt::util {
namespace {

/// Initial threshold: MCOPT_LOG_LEVEL when set and parseable, else kInfo.
/// Runs once at static-init time, before main.
LogLevel initial_level() {
  const char* env = std::getenv("MCOPT_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  if (const auto parsed = parse_log_level(env)) return *parsed;
  std::fprintf(stderr,
               "[WARN ] MCOPT_LOG_LEVEL='%s' is not a log level "
               "(want debug|info|warn|error or 0-3); using info\n",
               env);
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  for (char ch : text)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace mcopt::util
