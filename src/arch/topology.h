#pragma once
// Static topology of the modeled chip: cores, hardware threads, thread
// groups, pipes, cache geometry. Defaults describe the Sun UltraSPARC T2 as
// used in the paper (Sect. 1); everything is configurable for ablations.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mcopt::arch {

/// Geometry of one cache level.
struct CacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 0;
  std::size_t associativity = 0;

  [[nodiscard]] constexpr std::size_t num_lines() const noexcept {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] constexpr std::size_t num_sets() const noexcept {
    return num_lines() / associativity;
  }
  /// Validates power-of-two geometry invariants; throws on violation.
  void validate() const;
};

/// Whole-chip topology. Defaults: UltraSPARC T2 at 1.2 GHz (T5120 system).
struct ChipTopology {
  unsigned num_cores = 8;
  unsigned threads_per_core = 8;
  unsigned thread_groups_per_core = 2;  ///< each group shares one integer pipe
  unsigned ls_pipes_per_core = 2;       ///< load/store pipes
  unsigned fp_pipes_per_core = 1;       ///< single shared FPU (MUL or ADD)
  double clock_ghz = 1.2;

  /// L1 data cache per core: 8 KiB, 4-way, 16 B lines, write-through,
  /// no-allocate on store miss (OpenSPARC T2 spec).
  CacheGeometry l1d{8 * 1024, 16, 4};
  /// Shared L2: 4 MiB, 16-way, 64 B lines, 8 banks, write-back.
  CacheGeometry l2{4 * 1024 * 1024, 64, 16};

  [[nodiscard]] constexpr unsigned max_threads() const noexcept {
    return num_cores * threads_per_core;
  }
  [[nodiscard]] constexpr unsigned threads_per_group() const noexcept {
    return threads_per_core / thread_groups_per_core;
  }
  [[nodiscard]] constexpr double cycle_ns() const noexcept {
    return 1.0 / clock_ghz;
  }

  void validate() const;
};

/// Placement of software threads onto hardware strands.
///
/// The paper stresses that pinning is mandatory on T2 ("thread placement
/// must be implemented"). `equidistant` reproduces the paper's layout
/// ("threads were distributed equidistantly across cores"): software thread
/// t of T lands on core (t*C/T) when T <= C, else round-robin across cores
/// filling strands in order.
struct Placement {
  /// hw_strand[t] = global hardware strand index (core * threads_per_core +
  /// strand-within-core) running software thread t.
  std::vector<unsigned> hw_strand;

  [[nodiscard]] unsigned core_of(unsigned sw_thread,
                                 const ChipTopology& topo) const {
    return hw_strand.at(sw_thread) / topo.threads_per_core;
  }
  [[nodiscard]] unsigned strand_within_core(unsigned sw_thread,
                                            const ChipTopology& topo) const {
    return hw_strand.at(sw_thread) % topo.threads_per_core;
  }
  [[nodiscard]] unsigned group_of(unsigned sw_thread,
                                  const ChipTopology& topo) const {
    return strand_within_core(sw_thread, topo) / topo.threads_per_group();
  }
};

/// Equidistant placement across cores (paper's measurement setup).
[[nodiscard]] Placement equidistant_placement(unsigned num_threads,
                                              const ChipTopology& topo);

/// Pack threads onto as few cores as possible (ablation baseline).
[[nodiscard]] Placement packed_placement(unsigned num_threads,
                                         const ChipTopology& topo);

}  // namespace mcopt::arch
