#include "arch/numa.h"

#include <cstdlib>

namespace mcopt::arch {

namespace {

bool is_pow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

Cycles matrix_at(const std::vector<Cycles>& m, unsigned n, unsigned i,
                 unsigned j, Cycles uniform) {
  if (i == j) return 0;
  if (m.empty()) return uniform;
  return m[static_cast<std::size_t>(i) * n + j];
}

}  // namespace

Cycles NodeTopology::latency(unsigned i, unsigned j) const {
  return matrix_at(latency_matrix, num_sockets, i, j, remote_latency);
}

Cycles NodeTopology::link_cycles(unsigned i, unsigned j) const {
  return matrix_at(link_cycle_matrix, num_sockets, i, j, link_line_cycles);
}

util::Status NodeTopology::check() const {
  util::Status status;
  if (!is_pow2(num_sockets) || num_sockets > kMaxSockets)
    status.note("NodeTopology: num_sockets " + std::to_string(num_sockets) +
                " must be a power of two in [1, " +
                std::to_string(kMaxSockets) + "]");
  try {
    chip.validate();
  } catch (const std::exception& e) {
    status.note(std::string("NodeTopology: ") + e.what());
  }
  if (home_shift < 12 || home_shift > 40)
    status.note("NodeTopology: home_shift " + std::to_string(home_shift) +
                " outside [12, 40] (page scale to 1 TiB domains)");
  if (num_sockets > 1 && link_line_cycles == 0)
    status.note("NodeTopology: link_line_cycles must be >= 1 (an infinite-"
                "bandwidth link hides every NUMA effect this model exists "
                "to expose)");
  const auto check_matrix = [&](const std::vector<Cycles>& m, const char* who) {
    if (m.empty()) return;
    const std::size_t want =
        static_cast<std::size_t>(num_sockets) * num_sockets;
    if (m.size() != want) {
      status.note(std::string("NodeTopology: ") + who + " has " +
                  std::to_string(m.size()) + " entries, want " +
                  std::to_string(want));
      return;
    }
    for (unsigned i = 0; i < num_sockets; ++i)
      if (m[static_cast<std::size_t>(i) * num_sockets + i] != 0)
        status.note(std::string("NodeTopology: ") + who + " diagonal entry " +
                    std::to_string(i) + " must be 0 (local is not remote)");
  };
  check_matrix(latency_matrix, "latency_matrix");
  check_matrix(link_cycle_matrix, "link_cycle_matrix");
  if (!link_cycle_matrix.empty() &&
      link_cycle_matrix.size() ==
          static_cast<std::size_t>(num_sockets) * num_sockets) {
    for (unsigned i = 0; i < num_sockets; ++i)
      for (unsigned j = 0; j < num_sockets; ++j)
        if (i != j &&
            link_cycle_matrix[static_cast<std::size_t>(i) * num_sockets + j] ==
                0)
          status.note("NodeTopology: link_cycle_matrix[" + std::to_string(i) +
                      "," + std::to_string(j) + "] must be >= 1");
  }
  return status;
}

void NodeTopology::validate() const { check().throw_if_failed(); }

util::Expected<NodeTopology> parse_distance(const std::string& text,
                                            NodeTopology base) {
  using Result = util::Expected<NodeTopology>;
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos)
    return Result::failure("--distance: expected <latency>:<line_cycles>, got '" +
                           text + "'");
  const auto parse_cycles = [&](const std::string& part,
                                const char* who) -> util::Expected<Cycles> {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    constexpr double kMax = 9007199254740992.0;  // 2^53: exact double range
    if (part.empty() || end == nullptr || *end != '\0' ||
        !(v >= 0.0 && v <= kMax))
      return util::Expected<Cycles>::failure(
          std::string("--distance: malformed ") + who + " in '" + text + "'");
    return static_cast<Cycles>(v);
  };
  const auto lat = parse_cycles(text.substr(0, colon), "latency");
  if (!lat) return Result::failure(lat.error().message);
  const auto line = parse_cycles(text.substr(colon + 1), "line_cycles");
  if (!line) return Result::failure(line.error().message);
  base.remote_latency = lat.value();
  base.link_line_cycles = line.value();
  base.latency_matrix.clear();
  base.link_cycle_matrix.clear();
  return base;
}

}  // namespace mcopt::arch
