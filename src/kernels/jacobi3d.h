#pragma once
// 3D Jacobi seven-point relaxation — the extension the paper sketches in
// Sect. 2.3 ("In a 3D formulation, two additional arguments (rows) to
// relax_line() would be required").
//
// The N^3 grid is a seg_array with one x-line per segment (N^2 segments of
// N elements, row id = z*N + y), so the same Fig. 3 layout machinery and
// planner recipe apply. The parallel loop runs over interior rows — a
// naturally coalesced (z,y) loop, which also sidesteps the modulo effect.

#include <cstddef>
#include <vector>

#include "seg/planner.h"
#include "seg/seg_array.h"
#include "sched/schedule.h"
#include "sim/program.h"
#include "trace/virtual_arena.h"

namespace mcopt::kernels {

/// The serial row kernel: six neighbour loads and one store per site.
/// dl = destination row; sym/syp = y-1/y+1 rows; szm/szp = z-1/z+1 rows;
/// sl = the centre row (x neighbours come from it).
void relax_line3d(double* dl, const double* sym, const double* syp,
                  const double* szm, const double* szp, const double* sl,
                  std::size_t n) noexcept;

/// Builds an n^3 grid with one x-line per segment under `spec`.
[[nodiscard]] seg::seg_array<double> make_jacobi3d_grid(std::size_t n,
                                                        const seg::LayoutSpec& spec);

/// Dirichlet setup: boundary = 1, interior = 0.
void init_jacobi3d(seg::seg_array<double>& grid, std::size_t n);

/// One OpenMP sweep src -> dst over interior rows; returns wall seconds.
double jacobi3d_sweep_seconds(const seg::seg_array<double>& src,
                              seg::seg_array<double>& dst, std::size_t n,
                              const sched::Schedule& schedule);

/// Reference dense sweep for correctness tests (z-major n^3 vector).
void jacobi3d_reference_sweep(const std::vector<double>& src,
                              std::vector<double>& dst, std::size_t n);

/// Interior site updates per sweep: (n-2)^3.
[[nodiscard]] std::uint64_t jacobi3d_updates_per_sweep(std::size_t n);

/// Owning virtual toggle grids for simulator runs.
struct VirtualJacobi3d {
  trace::VirtualSegArray source;
  trace::VirtualSegArray dest;
  std::size_t n = 0;
};

[[nodiscard]] VirtualJacobi3d make_virtual_jacobi3d(trace::VirtualArena& arena,
                                                    std::size_t n,
                                                    const seg::LayoutSpec& spec);

/// One thread's share of a simulated 3D sweep. Chunks partition the
/// interior-row space [0, (n-2)^2); row k maps to (z, y) = (k/(n-2)+1,
/// k%(n-2)+1). Emits 6 loads + 1 store (6 flops) per interior site.
class Jacobi3dProgram final : public sim::AccessProgram {
 public:
  Jacobi3dProgram(const VirtualJacobi3d& grids,
                  std::vector<sched::IterRange> row_chunks, unsigned sweeps = 1);

  std::size_t next_batch(std::span<sim::Access> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t total_accesses() const override;

 private:
  [[nodiscard]] const trace::VirtualSegArray& src() const {
    return sweep_ % 2 == 0 ? *source_ : *dest_;
  }
  [[nodiscard]] const trace::VirtualSegArray& dst() const {
    return sweep_ % 2 == 0 ? *dest_ : *source_;
  }
  [[nodiscard]] std::size_t row_id(std::size_t z, std::size_t y) const {
    return z * n_ + y;
  }

  const trace::VirtualSegArray* source_;
  const trace::VirtualSegArray* dest_;
  std::size_t n_;
  std::vector<sched::IterRange> chunks_;
  unsigned sweeps_;

  unsigned sweep_ = 0;
  std::size_t chunk_ = 0;
  std::size_t iter_ = 0;
  std::size_t col_ = 1;
  unsigned phase_ = 0;  ///< 0..5 loads, 6 store
};

/// Whole-chip 3D Jacobi workload under `schedule` over interior rows.
[[nodiscard]] sim::Workload make_jacobi3d_workload(const VirtualJacobi3d& grids,
                                                   unsigned num_threads,
                                                   const sched::Schedule& schedule,
                                                   unsigned sweeps = 1);

}  // namespace mcopt::kernels
