// Fig. 2 reproduction: parallel STREAM triad bandwidth versus the COMMON-
// block array offset for 8/16/32/64 threads, plus STREAM copy at 64 threads.
//
// Paper shape (Sect. 2.1): a striking periodicity of 64 DP words (512 bytes)
// for >= 16 threads — deep dips at offsets 0 and 64 where all three array
// bases map to the same memory controller, a ~2x recovery at odd multiples
// of 32 (array B lands on a different controller via bit 8), and a high
// plateau at "skewed" offsets. 8 threads are latency-bound and barely
// offset-sensitive.
//
// Doubles as the tracer's overhead yardstick: --trace-overhead N runs a
// fixed 64-thread triad point N times with the recorder alternately off and
// on, prints the median slowdown as TRACE_OVERHEAD_PCT=<x>, and exits
// nonzero when it exceeds --overhead-budget (CI keys off both).

#include <algorithm>

#include "common.h"

namespace {

/// One interleaved off/on overhead measurement pass. Alternation (rather
/// than all-off-then-all-on) cancels frequency/cache drift; the median of
/// per-pair slowdowns shrugs off a single noisy rep. With `causal`, the
/// "on" half also pays the full observability-v2 per-job tax — flow-event
/// emission plus an attribution charge_spread — at the same cadence the
/// durable service pays it (once per job), so the gate covers causal
/// tracing + attribution, not just the bare recorder.
int run_overhead_mode(std::size_t n, const mcopt::sim::SimConfig& cfg,
                      std::int64_t reps, double budget_pct,
                      std::size_t ring_capacity, bool causal) {
  using namespace mcopt;
  const std::vector<unsigned> plan = {0, 1, 2, 3, 4, 5, 6, 7};
  auto timed_run = [&]() {
    const std::uint64_t t0 = util::monotonic_ns();
    if (causal && obs::TraceRecorder::instance().enabled()) {
      const std::uint64_t trace_id = obs::next_trace_id();
      obs::trace_flow_start("job.flow.submit", "causal", trace_id, 1);
      obs::trace_flow_step("job.flow.admit", "causal", trace_id, 1);
      (void)bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 32, 64,
                                       cfg);
      obs::Attribution::instance().charge_spread(
          1, plan, obs::Charge::kServed, 0,
          kernels::stream_reported_bytes(kernels::StreamOp::kTriad, n));
      obs::trace_flow_end("job.flow.complete", "causal", trace_id, 1);
    } else {
      (void)bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 32, 64,
                                       cfg);
    }
    return static_cast<double>(util::monotonic_ns() - t0);
  };
  // Warm both paths (allocator, code, and the recorder's thread buffers).
  (void)timed_run();
  obs::TraceRecorder::instance().enable(ring_capacity);
  (void)timed_run();
  obs::TraceRecorder::instance().disable();

  std::vector<double> pcts;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    const double off_ns = timed_run();
    obs::TraceRecorder::instance().enable(ring_capacity);
    const double on_ns = timed_run();
    obs::TraceRecorder::instance().disable();
    pcts.push_back((on_ns - off_ns) / off_ns * 100.0);
  }
  std::sort(pcts.begin(), pcts.end());
  const double median = pcts[pcts.size() / 2];
  std::printf("TRACE_OVERHEAD_PCT=%.3f\n", median);
  if (median > budget_pct) {
    std::fprintf(stderr,
                 "FAIL: tracer overhead %.3f%% exceeds budget %.3f%%\n",
                 median, budget_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli(
      "Fig. 2: STREAM triad/copy bandwidth vs array offset on the simulated "
      "UltraSPARC T2");
  cli.flag("full", "paper-scale sweep: every offset 0..256, N = 2^22")
      .option_int("n", 1 << 19, "array length in DP words (paper: 2^25)")
      .option_int("max-offset", 256, "largest offset in DP words")
      .option_int("step", 8, "offset step (1 with --full)")
      .option_str("fault", "",
                  "inject hardware faults, e.g. mc0:off,mc1:derate=0.5 "
                  "(see sim::FaultSpec::parse)")
      .option_str("csv", "", "mirror results to this CSV file")
      .option_int("trace-overhead", 0,
                  "measure tracer overhead with N interleaved off/on reps, "
                  "print TRACE_OVERHEAD_PCT, exit")
      .option_double("overhead-budget", 2.0,
                     "overhead mode fails when the median pct exceeds this")
      .flag("causal",
            "overhead mode: also emit per-job causal flow events and an "
            "attribution charge (the observability-v2 gate)");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const bool full = cli.get_flag("full");
  const auto n = static_cast<std::size_t>(full ? (1 << 22) : cli.get_int("n"));
  const auto max_offset = static_cast<std::size_t>(cli.get_int("max-offset"));
  const auto step = static_cast<std::size_t>(full ? 1 : cli.get_int("step"));
  const std::vector<unsigned> thread_counts = {8, 16, 32, 64};

  sim::SimConfig cfg;
  cfg.faults = bench::parse_fault_knob(cli.get_str("fault"), cfg);
  if (cfg.faults.any())
    std::printf("# DEGRADED chip: %s\n", cfg.faults.describe().c_str());

  if (const std::int64_t reps = cli.get_int("trace-overhead"); reps > 0)
    return run_overhead_mode(
        n, cfg, reps, cli.get_double("overhead-budget"),
        static_cast<std::size_t>(
            std::max<std::int64_t>(8, cli.get_int("trace-capacity"))),
        cli.get_flag("causal"));

  bench::ObsGuard obs(cli);
  // Timeline sampling only on the 64-thread triad runs: that is the series
  // fig. 2 is about, and sampling every cell would 6x the CSV for no story.
  sim::SimConfig sampled = cfg;
  obs.apply(sampled);

  std::printf(
      "# STREAM triad A=B+s*C (reported GB/s, RFO not counted), N=%zu DP "
      "words\n# copy64 = STREAM copy at 64 threads; analytic = closed-form "
      "controller-balance model (triad, 64T)\n\n",
      n);

  const std::vector<std::string> header = {"offset", "8T",     "16T",
                                           "32T",    "64T",    "copy64",
                                           "analytic64"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t offset = 0; offset <= max_offset; offset += step) {
    const obs::TraceSpan offset_span("fig2.offset", "bench", offset, n);
    std::vector<std::string> row{std::to_string(offset)};
    for (unsigned threads : thread_counts) {
      double gbs;
      if (threads == 64 && obs.timeline_requested()) {
        sim::SimResult res = bench::stream_sim_result(
            kernels::StreamOp::kTriad, n, offset, threads, sampled);
        gbs = bench::checked_rate(
            static_cast<double>(
                kernels::stream_reported_bytes(kernels::StreamOp::kTriad, n)) /
                res.seconds() / 1e9,
            "STREAM GB/s");
        obs.add_timeline("offset=" + std::to_string(offset),
                         std::move(res.mc_timeline));
      } else {
        gbs = bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, offset,
                                         threads, cfg);
      }
      row.push_back(util::fmt_fixed(gbs, 2));
    }
    row.push_back(util::fmt_fixed(
        bench::stream_reported_gbs(kernels::StreamOp::kCopy, n, offset, 64, cfg),
        2));
    row.push_back(util::fmt_fixed(
        bench::stream_analytic_gbs(kernels::StreamOp::kTriad, n, offset, 64, cfg),
        2));
    rows.push_back(std::move(row));
    util::log_debug("offset " + std::to_string(offset) + " done");
  }
  bench::emit(header, rows, cli.get_str("csv"));

  // Headline numbers the paper quotes.
  const double dip =
      bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 0, 64, cfg);
  const double mid =
      bench::stream_reported_gbs(kernels::StreamOp::kTriad, n, 32, 64, cfg);
  std::printf(
      "\nshape check: 64T dip at offset 0 = %.2f GB/s (paper: 3.7), odd-32 "
      "level = %.2f GB/s (paper: ~7.4, a ~2x recovery)\n",
      dip, mid);
  return 0;
}
