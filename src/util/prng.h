#pragma once
// Deterministic pseudo-random number generation for workloads and tests.
//
// We use xoshiro256** (Blackman & Vigna) seeded through splitmix64. The
// generator is deterministic across platforms, which keeps simulator runs and
// property tests reproducible; std::mt19937 would also work but its seeding
// idioms invite accidental nondeterminism.

#include <array>
#include <cstdint>
#include <limits>

namespace mcopt::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x8c5fb1a6d7e0453bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for our bounds (<< 2^32) and simplicity wins here.
    return (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Raw generator state, for durable snapshots: a restored generator
  /// continues the exact sequence the saved one would have produced.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcopt::util
