#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>

#include "util/csv.h"

namespace mcopt::obs {

util::Status write_mc_timeline_csv(const std::string& path,
                                   const std::vector<McTimelineSeries>& series) {
  std::size_t controllers = 0;
  for (const McTimelineSeries& s : series)
    for (const McSample& row : s.samples)
      controllers = std::max(controllers, row.utilization.size());

  std::vector<std::string> header = {"label", "sample", "begin_cycle",
                                     "end_cycle"};
  for (std::size_t m = 0; m < controllers; ++m)
    header.push_back("mc" + std::to_string(m));

  try {
    util::CsvWriter csv(path, header);
    char buf[32];
    for (const McTimelineSeries& s : series) {
      for (std::size_t i = 0; i < s.samples.size(); ++i) {
        const McSample& row = s.samples[i];
        std::vector<std::string> cells = {s.label, std::to_string(i),
                                          std::to_string(row.begin),
                                          std::to_string(row.end)};
        for (std::size_t m = 0; m < controllers; ++m) {
          if (m < row.utilization.size()) {
            std::snprintf(buf, sizeof buf, "%.6f", row.utilization[m]);
            cells.emplace_back(buf);
          } else {
            cells.emplace_back("");
          }
        }
        csv.add_row(cells);
      }
    }
    return csv.close();
  } catch (const std::exception& e) {
    return util::Status::failure(std::string("mc timeline: ") + e.what());
  }
}

}  // namespace mcopt::obs
