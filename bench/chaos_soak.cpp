// Chaos soak: seeded fuzzing of transient-fault schedules against the
// self-healing supervisor's invariants.
//
// Every seed deterministically generates a random FaultSchedule (1-3 timed
// intervals drawn from all four fault classes), runs the supervised vector
// triad against it, and checks four invariants:
//
//   I1  supervision never loses: supervised bandwidth >= unsupervised
//       bandwidth * (1 - eps) under the same schedule and starting layout;
//   I2  replans are sound: after every committed migration the stream bases
//       land on planned-set controllers, spread as evenly as the pigeonhole
//       principle allows (pairwise distinct when streams <= survivors);
//   I3  the DES and the analytic model agree per epoch (fixed planned
//       layout, no supervision) within a bounded ratio;
//   I4  runs end un-degraded: schedules clear by 85% of the horizon, so the
//       final diagnosis must be healthy and the replan count bounded by the
//       schedule's transition count (+2 for the initial layout heal and one
//       backoff retry).
//
// The seed of every run is printed; any failure is replayable with --seed N
// (and appended to --fail-log for CI artifact upload). --reference runs the
// fixed reference schedule (mc1:off@25%..75%) and writes the supervised vs
// unsupervised triad comparison to BENCH_supervisor.json.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "runtime/supervised_loop.h"
#include "seg/planner.h"
#include "util/backoff.h"
#include "util/prng.h"

namespace {

using namespace mcopt;

struct SoakParams {
  std::size_t n = 8192;
  unsigned threads = 32;
  unsigned slices = 10;
};

/// Draws a 1-3 interval schedule over percent-relative bounds. Intervals
/// begin in [10%, 50%] of the run and always clear by 85%, so every run has
/// a healthy tail (invariant I4's precondition).
sim::FaultSchedule random_schedule(util::Xoshiro256& rng,
                                   const SoakParams& params,
                                   const arch::InterleaveSpec& spec) {
  sim::FaultSchedule sched;
  const unsigned intervals = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < intervals; ++i) {
    sim::FaultSchedule::Interval iv;
    iv.relative = true;
    iv.begin_frac = rng.uniform(0.10, 0.50);
    iv.end_frac = iv.begin_frac + rng.uniform(0.10, 0.85 - iv.begin_frac);
    switch (rng.below(4)) {
      case 0:
        iv.fault.offline_controllers.push_back(
            static_cast<unsigned>(rng.below(spec.num_controllers())));
        break;
      case 1:
        iv.fault.derates.push_back(
            {static_cast<unsigned>(rng.below(spec.num_controllers())),
             rng.uniform(0.25, 0.75)});
        break;
      case 2:
        iv.fault.slow_banks.push_back(
            {static_cast<unsigned>(rng.below(spec.num_banks())),
             8 + rng.below(33)});
        break;
      default:
        iv.fault.stragglers.push_back(
            {static_cast<unsigned>(rng.below(params.threads)),
             4 + rng.below(29)});
        break;
    }
    sched.intervals.push_back(std::move(iv));
  }
  return sched;
}

/// Horizon estimate for resolving percent bounds: one unsupervised planned
/// sweep, scaled to the slice count.
arch::Cycles estimate_horizon(const SoakParams& params,
                              const runtime::LoopConfig& base) {
  trace::VirtualArena arena;
  const arch::AddressMap map(base.sim.interleave);
  const auto planned = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  runtime::LoopConfig probe = base;
  probe.slices = 1;
  probe.supervise = false;
  probe.sim.fault_schedule = {};
  const auto one = runtime::run_supervised_triad(arena, planned, params.n, probe);
  return one.total_cycles * base.slices;
}

struct SeedOutcome {
  bool pass = true;
  std::vector<std::string> failures;

  void fail(const std::string& what) {
    pass = false;
    failures.push_back(what);
  }
};

/// I2: committed migrations place the four stream bases on planned-set
/// controllers, as spread out as the pigeonhole principle allows.
void check_replan_soundness(const runtime::LoopResult& sup,
                            const arch::AddressMap& map, SeedOutcome& out) {
  for (const auto& replan : sup.replan_log) {
    std::vector<unsigned> count(map.spec().num_controllers(), 0);
    for (const arch::Addr base : replan.bases) {
      const unsigned c = map.controller_of(base);
      bool in_set = false;
      for (const unsigned s : replan.plan_set) in_set |= (s == c);
      if (!in_set)
        out.fail("I2: stream base on controller " + std::to_string(c) +
                 " outside planned set");
      ++count[c];
    }
    const auto streams = static_cast<unsigned>(replan.bases.size());
    const auto survivors = static_cast<unsigned>(replan.plan_set.size());
    const unsigned limit =
        survivors == 0 ? 0 : (streams + survivors - 1) / survivors;
    for (unsigned c = 0; c < count.size(); ++c)
      if (count[c] > limit)
        out.fail("I2: controller " + std::to_string(c) + " carries " +
                 std::to_string(count[c]) + " streams (pigeonhole limit " +
                 std::to_string(limit) + ")");
  }
}

/// I3: per-epoch DES bandwidth vs the analytic model, fixed planned layout.
void check_epoch_model(const SoakParams& params,
                       const runtime::LoopConfig& base,
                       const sim::FaultSchedule& resolved, SeedOutcome& out) {
  trace::VirtualArena arena;
  const arch::AddressMap map(base.sim.interleave);
  const auto bases = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  sim::SimConfig cfg = base.sim;
  cfg.fault_schedule = resolved;
  auto wl = kernels::make_triad_workload(bases, params.n, params.threads,
                                         sched::Schedule::static_block(),
                                         base.slices);
  sim::Chip chip(cfg, arch::equidistant_placement(params.threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);

  const std::vector<sim::AnalyticStream> logical = {
      {bases[0], true}, {bases[1], false}, {bases[2], false}, {bases[3], false}};
  const auto physical = sim::expand_rfo(logical);
  const auto est = sim::estimate_bandwidth_scheduled(
      physical, params.threads, cfg.calibration, map, cfg.topology.clock_ghz,
      cfg.faults, resolved, res.total_cycles);

  for (std::size_t k = 0; k < res.epochs.size() && k < est.epochs.size(); ++k) {
    const auto& epoch = res.epochs[k];
    if (epoch.length() < res.total_cycles / 20) continue;  // too short to judge
    const double model = est.epochs[k].estimate.bandwidth;
    if (model <= 0.0 || epoch.bandwidth <= 0.0) continue;
    const double ratio = epoch.bandwidth / model;
    if (ratio < 1.0 / 3.0 || ratio > 3.0)
      out.fail("I3: epoch " + std::to_string(k) + " (" + epoch.faults +
               ") DES/analytic ratio " + std::to_string(ratio) +
               " outside [1/3, 3]");
  }
}

SeedOutcome run_seed(std::uint64_t seed, const SoakParams& params) {
  SeedOutcome out;
  util::Xoshiro256 rng(seed);
  runtime::LoopConfig base;
  base.threads = params.threads;
  base.slices = params.slices;
  base.seed = seed;

  const sim::FaultSchedule raw =
      random_schedule(rng, params, base.sim.interleave);
  const arch::Cycles horizon = estimate_horizon(params, base);
  const sim::FaultSchedule resolved = raw.resolved(horizon);
  const auto status = resolved.check(base.sim.interleave);
  if (!status.ok()) {
    // The generator never offlines every controller (<=3 intervals, 4
    // controllers), so a reject here is a generator bug, not a skip.
    out.fail("generator produced invalid schedule: " + status.error().message);
    return out;
  }
  std::printf("seed %" PRIu64 ": schedule %s\n", seed,
              resolved.describe().c_str());

  const arch::AddressMap map(base.sim.interleave);
  base.sim.fault_schedule = resolved;

  // Both contenders start from the pathological aliased layout; the
  // supervised one must detect and heal it, faults or not.
  trace::VirtualArena sup_arena;
  const auto sup_bases = kernels::triad_layout_bases(
      sup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig sup_cfg = base;
  sup_cfg.supervise = true;
  const auto sup =
      runtime::run_supervised_triad(sup_arena, sup_bases, params.n, sup_cfg);

  trace::VirtualArena unsup_arena;
  const auto unsup_bases = kernels::triad_layout_bases(
      unsup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig unsup_cfg = base;
  unsup_cfg.supervise = false;
  const auto unsup = runtime::run_supervised_triad(unsup_arena, unsup_bases,
                                                   params.n, unsup_cfg);

  // I1: supervision never loses.
  if (sup.bandwidth < unsup.bandwidth * 0.98)
    out.fail("I1: supervised " + std::to_string(sup.bandwidth / 1e9) +
             " GB/s < unsupervised " + std::to_string(unsup.bandwidth / 1e9) +
             " GB/s");

  check_replan_soundness(sup, map, out);
  check_epoch_model(params, base, resolved, out);

  // I4: the schedule cleared by 85% of the horizon, so the run must end
  // believed-healthy with a bounded replan count (no thrash).
  if (sup.final_diagnosis.any())
    out.fail("I4: final diagnosis not healthy: " +
             sup.final_diagnosis.describe());
  const unsigned replan_budget =
      static_cast<unsigned>(resolved.event_count()) + 2;
  if (sup.replans > replan_budget)
    out.fail("I4: " + std::to_string(sup.replans) + " replans exceed budget " +
             std::to_string(replan_budget) + " (thrash)");

  std::printf("  supervised %.2f GB/s (replans=%u suppressed=%u declined=%u) "
              "unsupervised %.2f GB/s -> %s\n",
              sup.bandwidth / 1e9, sup.replans, sup.suppressed, sup.declined,
              unsup.bandwidth / 1e9, out.pass ? "PASS" : "FAIL");
  for (const auto& f : out.failures) std::printf("    %s\n", f.c_str());
  return out;
}

int run_reference(const SoakParams& params, const std::string& json_path) {
  runtime::LoopConfig base;
  base.threads = params.threads;
  base.slices = params.slices;

  const arch::Cycles horizon = estimate_horizon(params, base);
  base.sim.fault_schedule = bench::parse_schedule_knob(
      "mc1:off@25%..75%", base.sim, horizon);
  const arch::AddressMap map(base.sim.interleave);

  trace::VirtualArena sup_arena;
  const auto sup_bases = kernels::triad_layout_bases(
      sup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig sup_cfg = base;
  sup_cfg.supervise = true;
  const auto sup =
      runtime::run_supervised_triad(sup_arena, sup_bases, params.n, sup_cfg);

  trace::VirtualArena aliased_arena;
  const auto aliased_bases = kernels::triad_layout_bases(
      aliased_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig unsup_cfg = base;
  unsup_cfg.supervise = false;
  const auto aliased = runtime::run_supervised_triad(
      aliased_arena, aliased_bases, params.n, unsup_cfg);

  trace::VirtualArena planned_arena;
  const auto planned_bases = kernels::triad_layout_bases(
      planned_arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  const auto planned = runtime::run_supervised_triad(
      planned_arena, planned_bases, params.n, unsup_cfg);

  const double recovery = bench::checked_rate(
      sup.bandwidth / aliased.bandwidth, "recovery ratio");
  std::printf(
      "# reference schedule mc1:off@25%%..75%%, triad n=%zu, %u threads, "
      "%u sweeps\n"
      "supervised (aliased start)    %.3f GB/s (replans=%u suppressed=%u "
      "declined=%u)\n"
      "unsupervised aliased          %.3f GB/s\n"
      "unsupervised planned          %.3f GB/s\n"
      "recovery ratio                %.3fx (acceptance: >= 1.3x)\n",
      params.n, params.threads, params.slices, sup.bandwidth / 1e9,
      sup.replans, sup.suppressed, sup.declined, aliased.bandwidth / 1e9,
      planned.bandwidth / 1e9, recovery);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("chaos_soak: cannot write " + json_path);
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"supervised_triad_reference\",\n"
        "  \"schedule\": \"mc1:off@25%%..75%%\",\n"
        "  \"n\": %zu,\n"
        "  \"threads\": %u,\n"
        "  \"sweeps\": %u,\n"
        "  \"supervised_gbs\": %.4f,\n"
        "  \"unsupervised_aliased_gbs\": %.4f,\n"
        "  \"unsupervised_planned_gbs\": %.4f,\n"
        "  \"recovery_ratio\": %.4f,\n"
        "  \"replans\": %u,\n"
        "  \"suppressed\": %u,\n"
        "  \"declined\": %u,\n"
        "  \"migration_cycle_share\": %.6f\n"
        "}\n",
        params.n, params.threads, params.slices, sup.bandwidth / 1e9,
        aliased.bandwidth / 1e9, planned.bandwidth / 1e9, recovery,
        sup.replans, sup.suppressed, sup.declined,
        static_cast<double>(sup.migration_cycles) /
            static_cast<double>(sup.total_cycles));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return recovery >= 1.3 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Chaos soak: fuzz transient-fault schedules against the "
                "supervisor's invariants (replay any failure with --seed)");
  cli.option_int("seeds", 32, "number of seeds to soak (1..seeds)")
      .option_int("seed", 0, "run exactly this seed (0 = soak 1..seeds)")
      .option_int("n", 8192, "triad array elements")
      .option_int("threads", 32, "software threads")
      .option_int("sweeps", 10, "triad sweeps (= supervision slices)")
      .option_str("fail-log", "", "append failing seeds + schedules here")
      .flag("reference", "run the fixed reference schedule and write JSON")
      .option_str("json", "BENCH_supervisor.json",
                  "reference-mode output path");
  if (!cli.parse(argc, argv)) return 0;

  SoakParams params;
  params.n = static_cast<std::size_t>(cli.get_int("n"));
  params.threads = static_cast<unsigned>(cli.get_int("threads"));
  params.slices = static_cast<unsigned>(cli.get_int("sweeps"));

  if (cli.get_flag("reference")) {
    params.threads = 64;
    return run_reference(params, cli.get_str("json"));
  }

  const auto single = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::vector<std::uint64_t> seeds;
  if (single != 0) {
    seeds.push_back(single);
  } else {
    const auto count = static_cast<std::uint64_t>(cli.get_int("seeds"));
    for (std::uint64_t s = 1; s <= count; ++s) seeds.push_back(s);
  }

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  const std::string fail_path = cli.get_str("fail-log");
  for (const std::uint64_t seed : seeds) {
    const SeedOutcome outcome = run_seed(seed, params);
    if (!outcome.pass) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr) {
        std::fprintf(fail_log, "seed %" PRIu64 "\n", seed);
        for (const auto& f : outcome.failures)
          std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);

  std::printf("\nchaos soak: %zu seeds, %u failing\n", seeds.size(), failures);
  if (failures != 0)
    std::printf("replay any failure with: chaos_soak --seed <N>\n");
  return failures == 0 ? 0 : 1;
}
