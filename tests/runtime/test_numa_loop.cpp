// Socket-domain supervision: the NodeSupervisor detector (dead-socket
// signature, evidence rule, link-derate from per-line cost, debounce and
// backoff) and the supervised node loop (healthy no-op, socket-outage
// failover with convergence to the survivor, declined end-of-run migration).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/numa_loop.h"
#include "runtime/supervisor.h"
#include "sim/fault_schedule.h"
#include "sim/faults.h"

namespace mcopt::runtime {
namespace {

arch::NodeTopology two_sockets() { return arch::NodeTopology{}; }

/// A sample where socket `dead` shows the dead-memory signature: collapsed
/// controller utilization while its outbound link toward `serving` is
/// saturated carrying the remapped traffic.
NodeSample dead_socket_sample(unsigned dead, unsigned serving,
                              double link_cost = 16.0) {
  NodeSample s;
  s.begin = 0;
  s.end = 1000000;
  s.socket_utilization = {0.6, 0.6};
  s.socket_utilization[dead] = 0.01;
  s.link_utilization.assign(2, std::vector<double>(2, 0.0));
  s.link_line_cost.assign(2, std::vector<double>(2, 0.0));
  s.link_utilization[dead][serving] = 0.8;
  s.link_line_cost[dead][serving] = link_cost;
  return s;
}

NodeSample healthy_sample() {
  NodeSample s;
  s.begin = 0;
  s.end = 1000000;
  s.socket_utilization = {0.6, 0.6};
  s.link_utilization.assign(2, std::vector<double>(2, 0.0));
  s.link_line_cost.assign(2, std::vector<double>(2, 0.0));
  return s;
}

TEST(NodeSupervisorDetector, DeadSocketNeedsBothCollapseAndLinkTraffic) {
  NodeSupervisor sup(NodeDetectorConfig{}, two_sockets());
  const sim::FaultSpec healthy;

  const sim::FaultSpec dead =
      sup.diagnose(dead_socket_sample(1, 0), healthy);
  EXPECT_TRUE(dead.is_socket_offline(1));
  EXPECT_FALSE(dead.is_socket_offline(0));

  // Collapsed utilization alone (no link traffic) is an idle socket, not a
  // dead one.
  NodeSample idle = healthy_sample();
  idle.socket_utilization[1] = 0.01;
  EXPECT_FALSE(sup.diagnose(idle, healthy).is_socket_offline(1));
}

TEST(NodeSupervisorDetector, EvidenceFreeSocketCarriesPriorForward) {
  NodeSupervisor sup(NodeDetectorConfig{}, two_sockets());
  const sim::FaultSpec prior = sim::FaultSpec::parse("sock1:off").value();

  // After migration the dead socket goes fully quiet: no utilization, no
  // link traffic. That is absence of evidence, not recovery — the belief
  // must not flap back to healthy.
  NodeSample quiet = healthy_sample();
  quiet.socket_utilization = {0.6, 0.0};
  EXPECT_TRUE(sup.diagnose(quiet, prior).is_socket_offline(1));

  // Fresh utilization on the socket's own controllers IS recovery evidence.
  NodeSample recovered = healthy_sample();
  EXPECT_FALSE(sup.diagnose(recovered, prior).is_socket_offline(1));
}

TEST(NodeSupervisorDetector, LinkDerateReadFromPerLineCost) {
  NodeSupervisor sup(NodeDetectorConfig{}, two_sockets());
  // Healthy cost is 16 cycles/line; 64 observed means the link runs at 1/4
  // speed.
  NodeSample s = healthy_sample();
  s.link_utilization[0][1] = 0.4;
  s.link_line_cost[0][1] = 64.0;
  const sim::FaultSpec d = sup.diagnose(s, sim::FaultSpec{});
  EXPECT_NEAR(d.link_derate_of(0, 1), 0.25, 0.05);
  // Below the detection threshold nothing is reported.
  s.link_line_cost[0][1] = 18.0;
  EXPECT_DOUBLE_EQ(sup.diagnose(s, sim::FaultSpec{}).link_derate_of(0, 1),
                   1.0);
}

TEST(NodeSupervisorDetector, DebounceThenReplanThenBackoffSuppression) {
  NodeDetectorConfig cfg;
  cfg.stable_window = 2;
  NodeSupervisor sup(cfg, two_sockets(), 7);

  // First sighting: debounced.
  NodeDecision d1 = sup.observe(dead_socket_sample(1, 0));
  EXPECT_EQ(d1.action, Action::kKeep);
  // Second consecutive identical diagnosis: act.
  NodeDecision d2 = sup.observe(dead_socket_sample(1, 0));
  ASSERT_EQ(d2.action, Action::kReplan);
  EXPECT_TRUE(d2.diagnosis.is_socket_offline(1));
  EXPECT_EQ(d2.healthy_sockets, (std::vector<unsigned>{0}));

  sup.commit(2000000);
  EXPECT_EQ(sup.replans(), 1u);
  EXPECT_TRUE(sup.planned_against().is_socket_offline(1));

  // A new fault inside the backoff window is suppressed, not acted on.
  NodeSample worse = dead_socket_sample(1, 0);
  worse.begin = 2000000;
  worse.end = 2000100;
  (void)sup.observe(worse, 1.0);
  NodeSample both = healthy_sample();
  both.begin = 2000100;
  both.end = 2000200;
  both.link_utilization[0][1] = 0.4;
  both.link_line_cost[0][1] = 64.0;
  (void)sup.observe(both, 1.0);
  NodeDecision d3 = sup.observe(both, 1.0);
  EXPECT_EQ(d3.action, Action::kSuppressed);
  EXPECT_GE(sup.suppressed(), 1u);
}

// ---------------------------------------------------------------------------
// Fail-back: the probe channel, staged re-admission and breaker escalation
// at socket granularity (DESIGN.md §4k).

/// Post-failover silence: the believed-dead socket is fully quiet (no
/// utilization, no link traffic) — absence of evidence, not recovery.
NodeSample quiet_sample(arch::Cycles begin, arch::Cycles end) {
  NodeSample s = healthy_sample();
  s.begin = begin;
  s.end = end;
  s.socket_utilization = {0.6, 0.0};
  return s;
}

/// Drives detection of a dead socket 1 and commits the failover, leaving
/// the supervisor quarantining the socket. Returns the commit time.
arch::Cycles quarantine_socket1(NodeSupervisor& sup) {
  (void)sup.observe(dead_socket_sample(1, 0));
  const NodeDecision d = sup.observe(dead_socket_sample(1, 0));
  EXPECT_EQ(d.action, Action::kReplan);
  sup.commit(2000000);
  EXPECT_TRUE(sup.planned_against().is_socket_offline(1));
  return 2000000;
}

/// Feeds quiet windows of `step` cycles until the supervisor orders a probe
/// (or `limit` windows pass). Returns the number of windows consumed, or 0
/// if no probe was ordered.
unsigned windows_until_probe(NodeSupervisor& sup, arch::Cycles& now,
                             arch::Cycles step, unsigned limit) {
  for (unsigned i = 1; i <= limit; ++i) {
    const NodeDecision d = sup.observe(quiet_sample(now, now + step));
    now += step;
    EXPECT_NE(d.action, Action::kReplan) << "quiet window triggered a replan";
    if (d.action == Action::kProbe) {
      EXPECT_EQ(d.probe_socket, 1u);
      return i;
    }
  }
  return 0;
}

TEST(NodeSupervisorRecovery, ProbeConfirmationStartsRampThenReadmits) {
  NodeDetectorConfig cfg;
  cfg.stable_window = 2;
  NodeSupervisor sup(cfg, two_sockets(), 7);
  arch::Cycles now = quarantine_socket1(sup);

  // The breaker holds, then admits exactly one canary.
  ASSERT_GT(windows_until_probe(sup, now, 100000, 30), 0u);
  EXPECT_EQ(sup.probes(), 1u);

  // The canary found the domain serving again (a recovered domain reads a
  // few percent; a dead one reads exactly 0 after remap).
  NodeSample canary = healthy_sample();
  canary.socket_utilization = {0.0, 0.05};
  ASSERT_TRUE(sup.report_probe(1, canary, now));
  EXPECT_EQ(sup.recoveries(), 1u);
  EXPECT_FALSE(sup.planned_against().is_socket_offline(1));

  // Staged re-admission: the belief readmits the socket at reduced weight
  // and steps it to full over ramp_windows healthy observations.
  const sim::FaultSpec ramped = sup.belief();
  ASSERT_EQ(ramped.socket_derates.size(), 1u);
  EXPECT_EQ(ramped.socket_derates[0].socket, 1u);
  EXPECT_DOUBLE_EQ(ramped.socket_derates[0].factor,
                   cfg.recovery.ramp_initial);
  for (unsigned i = 0; i < cfg.recovery.ramp_windows; ++i) {
    (void)sup.observe(healthy_sample());
    EXPECT_EQ(sup.probes(), 1u);  // no probes while nothing is quarantined
  }
  EXPECT_EQ(sup.readmissions(), 1u);
  EXPECT_FALSE(sup.belief().any());
}

TEST(NodeSupervisorRecovery, FailedProbeReopensWithLongerHold) {
  NodeDetectorConfig cfg;
  cfg.stable_window = 2;
  NodeSupervisor sup(cfg, two_sockets(), 7);
  arch::Cycles now = quarantine_socket1(sup);

  const unsigned first = windows_until_probe(sup, now, 100000, 40);
  ASSERT_GT(first, 0u);
  // Dead canary: every line was remapped, the probed controllers read 0.
  NodeSample dead = healthy_sample();
  dead.socket_utilization = {0.0, 0.0};
  EXPECT_FALSE(sup.report_probe(1, dead, now));
  EXPECT_EQ(sup.probe_failures(), 1u);
  EXPECT_TRUE(sup.planned_against().is_socket_offline(1));

  // Geometric escalation: the second hold is roughly twice the first
  // (jitter is ±10%, window quantization ±1 — a strict > is safe).
  const unsigned second = windows_until_probe(sup, now, 100000, 40);
  ASSERT_GT(second, 0u);
  EXPECT_GT(second, first) << "reopened hold did not escalate";
  EXPECT_EQ(sup.probes(), 2u);
  EXPECT_EQ(sup.probe_gate(1).reopens(), 2u);
}

TEST(NodeSupervisorRecovery, DisabledRecoveryNeverProbes) {
  NodeDetectorConfig cfg;
  cfg.stable_window = 2;
  cfg.recovery.enabled = false;
  NodeSupervisor sup(cfg, two_sockets(), 7);
  arch::Cycles now = quarantine_socket1(sup);
  EXPECT_EQ(windows_until_probe(sup, now, 200000, 50), 0u);
  EXPECT_EQ(sup.probes(), 0u);
  // The pre-prober plateau: belief carries the outage forward for good.
  EXPECT_TRUE(sup.planned_against().is_socket_offline(1));
}

TEST(NodeLoop, ConfigCheckRejectsDegenerateSetups) {
  NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 1;
  EXPECT_FALSE(cfg.check().ok());

  cfg = NodeLoopConfig{};
  cfg.node.node.num_sockets = 2;
  cfg.threads = 40;  // 40 * 2 > 64 strands on one chip
  EXPECT_FALSE(cfg.check().ok());

  cfg = NodeLoopConfig{};
  cfg.node.node.num_sockets = 2;
  cfg.slices = 0;
  EXPECT_FALSE(cfg.check().ok());
}

NodeLoopConfig loop_config(unsigned slices = 6, bool supervise = true) {
  NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 2;
  cfg.threads = 16;
  cfg.slices = slices;
  cfg.supervise = supervise;
  return cfg;
}

constexpr std::size_t kN = 4096;

TEST(NodeLoop, HealthyRunStaysLocalAndNeverMigrates) {
  const NodeLoopResult res = run_supervised_node_triad(kN, loop_config());
  EXPECT_EQ(res.replans, 0u);
  EXPECT_EQ(res.declined, 0u);
  EXPECT_EQ(res.migration_cycles, 0u);
  EXPECT_EQ(res.remote_bytes, 0u);
  EXPECT_EQ(res.final_diagnosis.describe(), "healthy");
  ASSERT_EQ(res.final_jobs.size(), 2u);
  for (unsigned s = 0; s < 2; ++s) {
    EXPECT_EQ(res.final_jobs[s].compute_socket, s);
    EXPECT_EQ(res.final_jobs[s].home_socket, s);
  }
  EXPECT_GT(res.bandwidth, 0.0);
}

TEST(NodeLoop, SocketOutageMigratesOnceAndKillsLinkTraffic) {
  // Probe the healthy run length, then kill socket 1's memory early — the
  // remaining sweeps must leave enough savings to clear the break-even gate.
  const NodeLoopResult probe =
      run_supervised_node_triad(kN, loop_config(12, false));
  const arch::Cycles stamp = probe.total_cycles / 6;
  const std::string schedule = "sock1:off@" + std::to_string(stamp);

  NodeLoopConfig cfg = loop_config(12, true);
  cfg.node.sim.fault_schedule = sim::FaultSchedule::parse(schedule).value();
  const NodeLoopResult sup = run_supervised_node_triad(kN, cfg);

  NodeLoopConfig base = loop_config(12, false);
  base.node.sim.fault_schedule = sim::FaultSchedule::parse(schedule).value();
  const NodeLoopResult unsup = run_supervised_node_triad(kN, base);

  // Exactly one migration — no thrash — and everything rehomed to socket 0.
  EXPECT_EQ(sup.replans, 1u);
  ASSERT_EQ(sup.replan_log.size(), 1u);
  EXPECT_EQ(sup.replan_log[0].healthy_sockets, (std::vector<unsigned>{0}));
  for (const NodeJob& job : sup.final_jobs) {
    EXPECT_EQ(job.compute_socket, 0u);
    EXPECT_EQ(job.home_socket, 0u);
  }
  EXPECT_TRUE(sup.final_diagnosis.is_socket_offline(1));
  EXPECT_GT(sup.migration_cycles, 0u);

  // The unsupervised baseline keeps hammering the link; the migrated run
  // stops paying for remote service and moves less data across the socket
  // boundary overall.
  EXPECT_LT(sup.remote_bytes, unsup.remote_bytes);
  EXPECT_GT(sup.bandwidth, unsup.bandwidth);
}

TEST(NodeLoop, GateDeclinesWhenSavingsCannotCoverTheCopy) {
  // migration_safety = 0 demands the copy be free: any real move is refused,
  // the decision is aborted, and the loop keeps running remote instead of
  // thrashing on a migration it cannot pay for.
  const NodeLoopResult probe =
      run_supervised_node_triad(kN, loop_config(6, false));
  const arch::Cycles stamp = probe.total_cycles / 3;

  NodeLoopConfig cfg = loop_config(6, true);
  cfg.migration_safety = 0.0;
  cfg.node.sim.fault_schedule =
      sim::FaultSchedule::parse("sock1:off@" + std::to_string(stamp)).value();
  const NodeLoopResult res = run_supervised_node_triad(kN, cfg);
  EXPECT_EQ(res.replans, 0u);
  EXPECT_GE(res.declined, 1u);
  EXPECT_EQ(res.migration_cycles, 0u);
  // Untouched jobs still sit where they started.
  for (unsigned s = 0; s < 2; ++s)
    EXPECT_EQ(res.final_jobs[s].compute_socket, s);
}

TEST(NodeLoop, TimelinesCoverTheWholeRunWhenSampled) {
  NodeLoopConfig cfg = loop_config(3);
  cfg.node.sim.mc_sample_cadence = 50000;
  const NodeLoopResult res = run_supervised_node_triad(kN, cfg);
  ASSERT_EQ(res.socket_timelines.size(), 2u);
  for (const obs::McTimeline& tl : res.socket_timelines) {
    ASSERT_FALSE(tl.empty());
    // Rows are stitched onto the global timeline: monotone, last row near
    // the end of the run.
    for (std::size_t i = 1; i < tl.size(); ++i)
      EXPECT_GE(tl[i].begin, tl[i - 1].begin);
    EXPECT_GT(tl.back().end, res.total_cycles / 2);
  }
}

}  // namespace
}  // namespace mcopt::runtime
