// Transient-fault schedules: grammar, epoch algebra, chip application and
// the epoch-composed analytic model.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/triad.h"
#include "sim/analytic.h"
#include "sim/chip.h"
#include "sim/fault_schedule.h"
#include "trace/virtual_arena.h"

namespace mcopt {
namespace {

using sim::FaultSchedule;
using sim::FaultSpec;

TEST(FaultScheduleParse, EmptyStringIsEmptySchedule) {
  const auto sched = FaultSchedule::parse("");
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(sched.value().empty());
  EXPECT_EQ(sched.value().describe(), "empty");
}

TEST(FaultScheduleParse, CycleRangeGrammar) {
  const auto sched = FaultSchedule::parse("mc1:off@1e6..5e6,mc2:derate=0.5@2e6");
  ASSERT_TRUE(sched.has_value());
  const auto& ivs = sched.value().intervals;
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].begin, 1000000u);
  EXPECT_EQ(ivs[0].end, 5000000u);
  EXPECT_TRUE(ivs[0].fault.is_offline(1));
  EXPECT_EQ(ivs[1].begin, 2000000u);
  EXPECT_EQ(ivs[1].end, FaultSchedule::kNever);
  EXPECT_DOUBLE_EQ(ivs[1].fault.derate_of(2), 0.5);
}

TEST(FaultScheduleParse, UnstampedItemCoversWholeRun) {
  const auto sched = FaultSchedule::parse("strand7:lag=8");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched.value().intervals.size(), 1u);
  EXPECT_EQ(sched.value().intervals[0].begin, 0u);
  EXPECT_EQ(sched.value().intervals[0].end, FaultSchedule::kNever);
  EXPECT_EQ(sched.value().intervals[0].fault.straggle_of(7), 8u);
}

TEST(FaultScheduleParse, PercentBoundsAreRelative) {
  const auto sched = FaultSchedule::parse("mc1:off@25%..75%");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched.value().intervals.size(), 1u);
  const auto& iv = sched.value().intervals[0];
  EXPECT_TRUE(iv.relative);
  EXPECT_DOUBLE_EQ(iv.begin_frac, 0.25);
  EXPECT_DOUBLE_EQ(iv.end_frac, 0.75);
  EXPECT_TRUE(sched.value().has_relative());

  const FaultSchedule resolved = sched.value().resolved(4000);
  EXPECT_FALSE(resolved.has_relative());
  EXPECT_EQ(resolved.intervals[0].begin, 1000u);
  EXPECT_EQ(resolved.intervals[0].end, 3000u);
}

TEST(FaultScheduleParse, RejectsMalformedStamps) {
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@"));
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@abc"));
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@10..20%"));   // mixed kinds
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@150%..200%"));  // out of range
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@1e60"));        // > 2^53
  EXPECT_FALSE(FaultSchedule::parse("bogus@100"));           // bad fault item
}

TEST(FaultScheduleParse, DescribeRoundTripsThroughParse) {
  const auto sched =
      FaultSchedule::parse("mc1:off@1000..5000,bank3:slow=20,strand0:lag=4@10");
  ASSERT_TRUE(sched.has_value());
  const auto reparsed = FaultSchedule::parse(sched.value().describe());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed.value().describe(), sched.value().describe());
}

TEST(FaultSchedule, ActiveAtMergesOverlappingIntervalsOntoBaseline) {
  const auto sched =
      FaultSchedule::parse("mc1:off@100..300,mc2:derate=0.5@200..400").value();
  FaultSpec baseline;
  baseline.slow_banks.push_back({0, 7});

  const FaultSpec at0 = sched.active_at(0, baseline);
  EXPECT_FALSE(at0.is_offline(1));
  EXPECT_EQ(at0.bank_extra(0), 7u);

  const FaultSpec at250 = sched.active_at(250, baseline);
  EXPECT_TRUE(at250.is_offline(1));
  EXPECT_DOUBLE_EQ(at250.derate_of(2), 0.5);
  EXPECT_EQ(at250.bank_extra(0), 7u);

  const FaultSpec at350 = sched.active_at(350, baseline);
  EXPECT_FALSE(at350.is_offline(1));
  EXPECT_DOUBLE_EQ(at350.derate_of(2), 0.5);
}

TEST(FaultSchedule, EpochsSplitAtTransitions) {
  const auto sched = FaultSchedule::parse("mc0:off@100..300").value();
  const auto epochs = sched.epochs(1000);
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].begin, 0u);
  EXPECT_EQ(epochs[0].end, 100u);
  EXPECT_FALSE(epochs[0].faults.any());
  EXPECT_EQ(epochs[1].begin, 100u);
  EXPECT_EQ(epochs[1].end, 300u);
  EXPECT_TRUE(epochs[1].faults.is_offline(0));
  EXPECT_EQ(epochs[2].begin, 300u);
  EXPECT_EQ(epochs[2].end, 1000u);
  EXPECT_FALSE(epochs[2].faults.any());
  EXPECT_EQ(sched.event_count(), 2u);
}

TEST(FaultSchedule, ShiftedDropsClearedAndClampsBounds) {
  const auto sched =
      FaultSchedule::parse("mc0:off@100..300,mc1:off@500..700").value();
  const FaultSchedule mid = sched.shifted(400);
  ASSERT_EQ(mid.intervals.size(), 1u);  // first interval already cleared
  EXPECT_EQ(mid.intervals[0].begin, 100u);
  EXPECT_EQ(mid.intervals[0].end, 300u);

  const FaultSchedule inside = sched.shifted(600);
  ASSERT_EQ(inside.intervals.size(), 1u);
  EXPECT_EQ(inside.intervals[0].begin, 0u);  // clamped: already active
  EXPECT_EQ(inside.intervals[0].end, 100u);
}

TEST(FaultScheduleCheck, RejectsOverlappingTotalOutage) {
  const arch::InterleaveSpec spec;  // 4 controllers
  const auto ok = FaultSchedule::parse(
      "mc0:off@0..100,mc1:off@0..100,mc2:off@0..100").value();
  EXPECT_TRUE(ok.check(spec).ok());
  const auto dead = FaultSchedule::parse(
      "mc0:off@0..100,mc1:off@0..100,mc2:off@0..100,mc3:off@50..80").value();
  const auto status = dead.check(spec);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offline every controller"),
            std::string::npos);
}

TEST(FaultScheduleCheck, RejectsInvertedBoundsAndBadSpecs) {
  const arch::InterleaveSpec spec;
  auto sched = FaultSchedule::parse("mc0:off@500..100").value();
  EXPECT_FALSE(sched.check(spec).ok());
  auto bad_mc = FaultSchedule::parse("mc9:off@0..10").value();
  EXPECT_FALSE(bad_mc.check(spec).ok());
}

TEST(FaultSchedule, ConstantWrapsEveryFaultClass) {
  FaultSpec spec;
  spec.offline_controllers = {1};
  spec.derates.push_back({2, 0.5});
  spec.slow_banks.push_back({3, 10});
  spec.stragglers.push_back({4, 6});
  const FaultSchedule sched = FaultSchedule::constant(spec);
  ASSERT_EQ(sched.intervals.size(), 4u);
  EXPECT_EQ(sched.event_count(), 0u);  // all intervals start at 0, never clear
  const FaultSpec active = sched.active_at(123);
  EXPECT_TRUE(active.is_offline(1));
  EXPECT_DOUBLE_EQ(active.derate_of(2), 0.5);
  EXPECT_EQ(active.bank_extra(3), 10u);
  EXPECT_EQ(active.straggle_of(4), 6u);
}

// ---------------------------------------------------------------------------
// Chip-level behavior.

sim::SimResult run_triad(const sim::SimConfig& cfg, std::size_t n,
                         unsigned threads, unsigned sweeps = 1) {
  trace::VirtualArena arena;
  const arch::AddressMap map(cfg.interleave);
  const auto bases = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, n, map, 128);
  auto wl = kernels::make_triad_workload(bases, n, threads,
                                         sched::Schedule::static_block(), sweeps);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  return chip.run(wl);
}

TEST(ChipSchedule, MidRunOutageProducesEpochBreakdown) {
  constexpr std::size_t kN = 8192;
  constexpr unsigned kThreads = 64;  // enough concurrency to be service-bound

  sim::SimConfig healthy;
  const sim::SimResult base = run_triad(healthy, kN, kThreads);
  ASSERT_TRUE(base.epochs.empty());  // no schedule -> no breakdown
  const arch::Cycles third = base.total_cycles / 3;

  sim::SimConfig cfg;
  cfg.fault_schedule = sim::FaultSchedule::parse(
      "mc1:off@" + std::to_string(third) + ".." + std::to_string(2 * third))
      .value();
  ASSERT_TRUE(cfg.check().ok());
  const sim::SimResult res = run_triad(cfg, kN, kThreads);

  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.epochs.size(), 3u);
  EXPECT_EQ(res.epochs[0].begin, 0u);
  EXPECT_EQ(res.epochs[0].end, third);
  EXPECT_EQ(res.epochs[1].faults, "mc1:off");
  EXPECT_EQ(res.epochs[2].end, res.total_cycles);

  // The dead controller serves (nearly) nothing during its outage epoch but
  // works on both sides of it.
  EXPECT_GT(res.epochs[0].mc_utilization[1], 0.1);
  EXPECT_LT(res.epochs[1].mc_utilization[1],
            0.25 * res.epochs[0].mc_utilization[1]);
  EXPECT_GT(res.epochs[2].mc_utilization[1], 0.1);

  // Outage epoch moves traffic strictly slower than the healthy first epoch.
  EXPECT_LT(res.epochs[1].bandwidth, res.epochs[0].bandwidth);

  // Epoch traffic sums to the whole run's traffic.
  std::uint64_t bytes = 0;
  for (const auto& e : res.epochs) bytes += e.mem_read_bytes + e.mem_write_bytes;
  EXPECT_EQ(bytes, res.mem_read_bytes + res.mem_write_bytes);

  // A transient outage costs time, but less than a permanent one.
  sim::SimConfig always;
  always.faults.offline_controllers = {1};
  const sim::SimResult forever = run_triad(always, kN, kThreads);
  EXPECT_GT(res.total_cycles, base.total_cycles);
  EXPECT_LT(res.total_cycles, forever.total_cycles);
}

TEST(ChipSchedule, ScheduledRunsAreDeterministic) {
  sim::SimConfig cfg;
  cfg.fault_schedule =
      sim::FaultSchedule::parse("mc2:derate=0.25@5000..40000").value();
  const sim::SimResult a = run_triad(cfg, 4096, 8);
  const sim::SimResult b = run_triad(cfg, 4096, 8);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t k = 0; k < a.epochs.size(); ++k)
    EXPECT_EQ(a.epochs[k].mem_read_bytes, b.epochs[k].mem_read_bytes);
}

TEST(ChipSchedule, ConfigRejectsUnresolvedPercentSchedule) {
  sim::SimConfig cfg;
  cfg.fault_schedule = sim::FaultSchedule::parse("mc1:off@25%..75%").value();
  const auto status = cfg.check();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("unresolved percent"),
            std::string::npos);
}

TEST(ChipSchedule, ConfigRejectsBaselinePlusScheduleTotalOutage) {
  sim::SimConfig cfg;
  cfg.faults.offline_controllers = {0, 1, 2};
  cfg.fault_schedule = sim::FaultSchedule::parse("mc3:off@100..200").value();
  const auto status = cfg.check();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offline every controller"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Analytic composition.

TEST(ScheduledAnalytic, ConstantScheduleMatchesPlainEstimate) {
  const arch::AddressMap map;
  const arch::Calibration cal;
  std::vector<sim::AnalyticStream> logical = {
      {0, true}, {128, false}, {256, false}, {384, false}};
  const auto physical = sim::expand_rfo(logical);

  FaultSpec faults;
  faults.offline_controllers = {1};
  const auto plain =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2, faults);
  const auto composed = sim::estimate_bandwidth_scheduled(
      physical, 32, cal, map, 1.2, faults, FaultSchedule{}, 100000);
  ASSERT_EQ(composed.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(composed.whole.bandwidth, plain.bandwidth);
  EXPECT_DOUBLE_EQ(composed.whole.balance, plain.balance);
}

TEST(ScheduledAnalytic, CompositionIsEpochLengthWeighted) {
  const arch::AddressMap map;
  const arch::Calibration cal;
  std::vector<sim::AnalyticStream> logical = {
      {0, true}, {128, false}, {256, false}, {384, false}};
  const auto physical = sim::expand_rfo(logical);

  const double healthy =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2).bandwidth;
  FaultSpec off1;
  off1.offline_controllers = {1};
  const double degraded =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2, off1).bandwidth;
  ASSERT_LT(degraded, healthy);

  // Outage covering the middle half of the run: expect 1/2 healthy + 1/2
  // degraded exactly (the model is linear in the weights).
  const auto sched = FaultSchedule::parse("mc1:off@25%..75%").value();
  const auto composed = sim::estimate_bandwidth_scheduled(
      physical, 32, cal, map, 1.2, {}, sched.resolved(100000), 100000);
  ASSERT_EQ(composed.epochs.size(), 3u);
  EXPECT_NEAR(composed.whole.bandwidth, 0.5 * healthy + 0.5 * degraded,
              1e-6 * healthy);
  EXPECT_LT(composed.whole.bandwidth, healthy);
  EXPECT_GT(composed.whole.bandwidth, degraded);
}

}  // namespace
}  // namespace mcopt
