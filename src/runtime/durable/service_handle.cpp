#include "runtime/durable/service_handle.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace mcopt::runtime::durable {
namespace {

struct DurableMetrics {
  obs::Counter& restarts;
  obs::Counter& replayed;
  obs::Counter& resubmitted;
  obs::Counter& completed_skipped;
  obs::Counter& deduped;
  obs::Counter& snapshots;
  obs::Counter& drains;
  obs::Counter& drain_escalations;

  static DurableMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static DurableMetrics m{
        reg.counter("mcopt_durable_restarts_total",
                    "ServiceHandle opens that found prior history"),
        reg.counter("mcopt_durable_replayed_submissions_total",
                    "Journaled submissions re-presented to the door"),
        reg.counter("mcopt_durable_resubmitted_total",
                    "Replayed submissions re-forwarded to the executor "
                    "(in flight at the crash)"),
        reg.counter("mcopt_durable_completed_skipped_total",
                    "Replayed submissions NOT re-run (completion journaled)"),
        reg.counter("mcopt_durable_deduped_total",
                    "Duplicate submissions resolved by id"),
        reg.counter("mcopt_durable_snapshots_total",
                    "Durable state snapshots published"),
        reg.counter("mcopt_durable_drains_total", "Quiesce/drain sequences"),
        reg.counter("mcopt_durable_drain_escalations_total",
                    "Drains where the watchdog shed the backlog")};
    return m;
  }
};

std::atomic<bool> g_quiesce{false};

void on_quiesce_signal(int) { g_quiesce.store(true, std::memory_order_relaxed); }

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

constexpr std::uint32_t kDoorVerdict =
    static_cast<std::uint32_t>(exec::ShedReason::kTenantThrottled);

}  // namespace

util::Status DurableConfig::check() const {
  util::Status s;
  if (dir.empty()) s.note("DurableConfig: dir must be set");
  if (tenants.empty()) s.note("DurableConfig: at least one tenant required");
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name.empty())
      s.note("DurableConfig: tenant " + std::to_string(i + 1) +
             " has an empty name");
    if (!(tenants[i].weight > 0.0))
      s.note("DurableConfig: tenant " + std::to_string(i + 1) +
             " weight must be > 0");
  }
  s.merge(slo.check());
  return s;
}

ServiceHandle::ServiceHandle(DurableConfig cfg,
                             std::unique_ptr<service::Service> svc)
    : cfg_(std::move(cfg)), service_(std::move(svc)), slo_(cfg_.slo) {}

void ServiceHandle::feed_slo_locked(std::uint32_t tenant, bool missed,
                                    std::uint64_t at) {
  slo_.record(tenant,
              static_cast<std::uint32_t>(cfg_.tenants[tenant - 1].slo), missed,
              at);
}

ServiceHandle::~ServiceHandle() = default;

util::Expected<std::unique_ptr<ServiceHandle>> ServiceHandle::open(
    DurableConfig cfg) {
  using Result = util::Expected<std::unique_ptr<ServiceHandle>>;
  if (const util::Status s = cfg.check(); !s.ok())
    return Result::failure(s.error().message);
#ifndef _WIN32
  (void)::mkdir(cfg.dir.c_str(), 0755);  // EEXIST is the common case
#endif

  auto svc = std::make_unique<service::Service>(cfg.service);
  for (const service::TenantConfig& tc : cfg.tenants)
    (void)svc->register_tenant(tc);

  const std::string journal_path = cfg.journal_path();
  const std::string state_path = cfg.state_path();
  const bool had_journal = file_exists(journal_path);

  std::unique_ptr<ServiceHandle> handle(
      new ServiceHandle(std::move(cfg), std::move(svc)));
  handle->ledger_.assign(handle->cfg_.tenants.size(), TenantLedger{});

  if (!had_journal) {
    // Fresh instance. A lingering snapshot without a journal would mean a
    // deleted/lost journal — starting "fresh" over it would silently fork
    // history, so refuse.
    if (file_exists(state_path))
      return Result::failure(
          "durable: '" + state_path +
          "' exists but the journal is missing — refusing to start a fresh "
          "instance over prior state");
    auto writer =
        JournalWriter::create(journal_path, handle->cfg_.instance);
    if (!writer) return Result::failure(writer.error().message);
    handle->writer_ = std::move(writer.value());
    return Result(std::move(handle));
  }

  // Restart path.
  DurableMetrics::get().restarts.inc();
  const obs::TraceSpan span("journal.replay", "journal");
  auto recovered = recover_journal(journal_path);
  if (!recovered) return Result::failure(recovered.error().message);
  JournalRecovery& rec = recovered.value();

  RecoveryInfo& info = handle->recovery_;
  info.restarted = true;
  info.was_sealed = rec.sealed;
  info.journal_records = rec.records.size();
  info.dropped_bytes = rec.dropped_bytes;
  info.tail_note = rec.tail_note;
  if (rec.dropped_bytes > 0)
    util::log_warn("durable: journal tail damaged — " + rec.tail_note);

  std::uint64_t covered = 0;
  if (file_exists(state_path)) {
    // Present but unloadable is a protocol failure (typed refusal), exactly
    // like the checkpoint chaos contract: the snapshot is written atomically,
    // so damage here is disk corruption, not a crash artifact.
    auto image = load_state(state_path);
    if (!image) return Result::failure(image.error().message);
    StateImage& im = image.value();
    if (const util::Status s = handle->service_->restore_door(im.door);
        !s.ok())
      return Result::failure(s.error().message);
    handle->service_->executor().restore_virtual_clocks(im.clocks);
    if (im.ledger.size() != handle->ledger_.size())
      return Result::failure("durable: snapshot ledger covers " +
                             std::to_string(im.ledger.size()) +
                             " tenants, config has " +
                             std::to_string(handle->ledger_.size()));
    handle->ledger_ = im.ledger;
    handle->acked_watermark_ = im.max_submission_id;
    handle->max_submission_id_ = im.max_submission_id;
    handle->snapshot_id_ = im.snapshot_id;
    covered = im.covered_sequence;
    info.snapshot_loaded = true;
    if (im.has_attribution) {
      if (const util::Status s =
              obs::Attribution::instance().restore(im.attribution);
          !s.ok())
        return Result::failure(s.error().message);
    }
    if (im.has_node_supervisor) {
      if (handle->node_supervisor_ == nullptr) {
        // The beliefs survive in the file; the caller may attach later via
        // attach_node_supervisor() before traffic.
        handle->pending_supervisor_ = std::make_unique<NodeSupervisor::Snapshot>(
            std::move(im.node_supervisor));
      }
    }
  }

  if (const util::Status s = handle->replay_locked(rec, covered); !s.ok())
    return Result::failure(s.error().message);

  auto writer =
      JournalWriter::reopen(journal_path, rec.valid_bytes, rec.next_sequence);
  if (!writer) return Result::failure(writer.error().message);
  handle->writer_ = std::move(writer.value());
  return Result(std::move(handle));
}

util::Status ServiceHandle::replay_locked(const JournalRecovery& rec,
                                          std::uint64_t covered_sequence) {
  DurableMetrics& m = DurableMetrics::get();
  RecoveryInfo& info = recovery_;

  // Pass 1: index post-snapshot outcomes by submission id.
  std::map<std::uint64_t, CompletionRecord> completions;
  std::map<std::uint64_t, ShedRecord> sheds;
  for (const Record& r : rec.records) {
    if (r.sequence <= covered_sequence) continue;
    if (r.type == RecordType::kCompletion) {
      auto c = CompletionRecord::decode(r.payload);
      if (!c) return util::Status::failure(c.error().message);
      completions.emplace(c.value().submission_id, c.value());
    } else if (r.type == RecordType::kShed) {
      auto s = ShedRecord::decode(r.payload);
      if (!s) return util::Status::failure(s.error().message);
      sheds.emplace(s.value().submission_id, s.value());
    }
  }

  // Pass 2: re-present submissions to the restored door, in journal order.
  // Re-forwarded jobs go in under a dequeue hold so the replay batch's
  // reservation order is atomic, like the original lockstep submission.
  service_->executor().hold_dequeue();
  util::Status failure;
  for (const Record& r : rec.records) {
    if (r.sequence <= covered_sequence) continue;
    if (r.type != RecordType::kSubmission) continue;
    auto decoded = SubmissionRecord::decode(r.payload);
    if (!decoded) {
      failure = util::Status::failure(decoded.error().message);
      break;
    }
    const SubmissionRecord& sr = decoded.value();
    if (sr.tenant == 0 || sr.tenant > cfg_.tenants.size()) {
      failure = util::Status::failure(
          "durable: journal submission " + std::to_string(sr.submission_id) +
          " names tenant " + std::to_string(sr.tenant) + " but only " +
          std::to_string(cfg_.tenants.size()) +
          " tenants are configured — journal belongs to a different service");
      break;
    }
    max_submission_id_ = std::max(max_submission_id_, sr.submission_id);
    ++info.replayed_submissions;
    m.replayed.inc();

    exec::JobSpec spec;
    spec.kind = static_cast<exec::JobKind>(sr.kind);
    spec.n = static_cast<std::size_t>(sr.n);
    spec.iterations = static_cast<unsigned>(sr.iterations);
    spec.priority = static_cast<exec::Priority>(sr.priority);
    spec.deadline = sr.deadline;
    spec.arrival = sr.arrival;
    // The journaled trace context is what stitches the chain across the
    // kill: post-restart events carry the SAME flow id the pre-kill submit
    // span started (v1 journals carry 0 — no flow, no harm).
    spec.trace_id = sr.trace_id;
    spec.parent_span = sr.parent_span;
    if (sr.trace_id != 0)
      obs::trace_flow_step("job.flow.replay", "causal", sr.trace_id,
                           sr.submission_id);

    const auto comp = completions.find(sr.submission_id);
    const auto shed = sheds.find(sr.submission_id);
    const bool has_outcome = comp != completions.end() || shed != sheds.end();
    const bool forward = sr.verdict == 0 && !has_outcome;

    const exec::SubmitResult res =
        service_->submit_replay(sr.tenant, spec, forward);
    const bool door_accepted =
        res.accepted || res.rejected != exec::ShedReason::kTenantThrottled;
    if (door_accepted != (sr.verdict == 0)) {
      failure = util::Status::failure(
          "durable: replay diverged at submission " +
          std::to_string(sr.submission_id) + " (journal verdict " +
          std::to_string(sr.verdict) + ", door " +
          (door_accepted ? "accepted" : "rejected") +
          ") — tenant configuration does not match the journal's writer");
      break;
    }

    Sub sub;
    sub.rec = sr;
    sub.acked = true;  // it is in the recovered journal — durable by definition
    TenantLedger& led = ledger_[sr.tenant - 1];
    if (sr.verdict != 0) {
      // Door rejection: final history.
      sub.outcome_known = true;
      if (shed != sheds.end()) sub.shed = shed->second;
      ++led.sheds;
      feed_slo_locked(sr.tenant, /*missed=*/true, sr.arrival);
      ++info.sheds_replayed;
    } else if (comp != completions.end()) {
      // Completed before the crash: credit the ledger, do NOT re-run. The
      // attribution re-charge uses the journaled plan mask, so the bytes
      // land on the same controllers the live run charged (a v1 journal's
      // zero mask charges the unknown-controller cell — totals stay exact).
      sub.outcome_known = true;
      sub.completed = true;
      sub.comp = comp->second;
      service_->credit_replayed_accept(sr.tenant);
      ++led.completed;
      led.served_bytes += sub.comp.served_bytes;
      obs::Attribution::instance().charge_mask(sr.tenant, sub.comp.plan_mask,
                                               obs::Charge::kServed, 0,
                                               sub.comp.served_bytes);
      feed_slo_locked(sr.tenant,
                      sr.deadline != exec::kNoDeadline &&
                          sub.comp.finish > sr.deadline,
                      sub.comp.finish);
      if (sr.trace_id != 0)
        obs::trace_flow_end("job.flow.replayed-complete", "causal",
                            sr.trace_id, sr.submission_id);
      ++info.completed_skipped;
      m.completed_skipped.inc();
    } else if (shed != sheds.end()) {
      // Shed before the crash: final history, do NOT retry.
      sub.outcome_known = true;
      sub.shed = shed->second;
      if (sub.shed.origin ==
          static_cast<std::uint32_t>(ShedOrigin::kExecutorShed))
        service_->credit_replayed_accept(sr.tenant);
      ++led.sheds;
      obs::Attribution::instance().charge(sr.tenant, -1, obs::Charge::kShed,
                                          sub.shed.reason, 0);
      feed_slo_locked(sr.tenant, /*missed=*/true, sub.shed.at);
      if (sr.trace_id != 0)
        obs::trace_flow_end("job.flow.replayed-shed", "causal", sr.trace_id,
                            sr.submission_id);
      ++info.sheds_replayed;
    } else {
      // Accepted, in flight at the crash: re-forwarded just now.
      if (res.accepted) {
        sub.rec.exec_job_id = res.id;  // this incarnation's id, not the old one
        exec_to_sub_[res.id] = sr.submission_id;
        ++info.resubmitted;
        m.resubmitted.inc();
      } else {
        // The executor refused it on replay (e.g. shutdown race). Typed,
        // never silent: journaled as a shed once the writer reopens — here
        // we only record it in memory; pump() paths won't see a report for
        // an id we never mapped.
        sub.outcome_known = true;
        sub.shed.submission_id = sr.submission_id;
        sub.shed.reason = static_cast<std::uint32_t>(res.rejected);
        sub.shed.origin =
            static_cast<std::uint32_t>(ShedOrigin::kExecutorReject);
        ++led.sheds;
        obs::Attribution::instance().charge(
            sr.tenant, -1, obs::Charge::kShed,
            static_cast<std::uint32_t>(res.rejected), 0);
        feed_slo_locked(sr.tenant, /*missed=*/true, sr.arrival);
        ++info.sheds_replayed;
      }
    }
    subs_.emplace(sr.submission_id, std::move(sub));
  }
  service_->executor().release_dequeue();
  return failure;
}

SubmitAck ServiceHandle::submit(service::TenantId tenant,
                                std::uint64_t submission_id,
                                exec::JobSpec spec) {
  const std::lock_guard<std::mutex> guard(mu_);
  SubmitAck ack;
  ack.submission_id = submission_id;

  // Dedup by submission id: an unacknowledged retry must not double-run.
  const auto it = subs_.find(submission_id);
  if (it != subs_.end()) {
    const Sub& sub = it->second;
    ack.duplicate = true;
    ack.accepted = sub.rec.verdict == 0;
    ack.exec_id = sub.rec.exec_job_id;
    if (sub.rec.verdict != 0)
      ack.rejected = static_cast<exec::ShedReason>(sub.rec.verdict);
    DurableMetrics::get().deduped.inc();
    obs::trace_instant("durable.dedup", "journal", submission_id, 0);
    return ack;
  }
  if (submission_id <= acked_watermark_) {
    // Acknowledged history compacted into the snapshot: the detailed
    // verdict is gone, but the ack stands.
    ack.duplicate = true;
    ack.accepted = true;
    DurableMetrics::get().deduped.inc();
    obs::trace_instant("durable.dedup", "journal", submission_id, 1);
    return ack;
  }

  if (draining_) {
    ack.accepted = false;
    ack.rejected = exec::ShedReason::kShutdown;
    return ack;
  }

  // Allocate the causal trace context HERE, before the door sees the spec:
  // Service::submit takes the spec by value, so an id minted inside the door
  // would be invisible to the journal record below.
  if (spec.trace_id == 0) spec.trace_id = obs::next_trace_id();

  const exec::SubmitResult res = service_->submit(tenant, spec);

  Sub sub;
  sub.rec.submission_id = submission_id;
  sub.rec.exec_job_id = res.accepted ? res.id : 0;
  sub.rec.tenant = tenant;
  // verdict is the DOOR's decision: kTenantThrottled for door rejections,
  // 0 otherwise. Executor-side rejections keep verdict 0 and carry the
  // executor reason in a shed record instead — replay must advance the door
  // as an accept and then treat the shed as final history.
  sub.rec.verdict =
      (!res.accepted && res.rejected == exec::ShedReason::kTenantThrottled)
          ? kDoorVerdict
          : 0;
  sub.rec.kind = static_cast<std::uint32_t>(spec.kind);
  sub.rec.priority = static_cast<std::uint32_t>(spec.priority);
  sub.rec.n = spec.n;
  sub.rec.iterations = spec.iterations;
  sub.rec.deadline = spec.deadline;
  sub.rec.arrival = spec.arrival;
  sub.rec.trace_id = spec.trace_id;
  sub.rec.parent_span = spec.parent_span;

  (void)writer_->append(RecordType::kSubmission, sub.rec.encode());
  // Bind the flow id to the submission id in the trace itself: offline
  // tooling (obs_query --explain-job) resolves a submission to its causal
  // chain from a pre-kill trace alone via this step.
  obs::trace_flow_step("job.flow.journal", "causal", spec.trace_id,
                       submission_id);
  max_submission_id_ = std::max(max_submission_id_, submission_id);
  TenantLedger& led = ledger_[tenant - 1];

  if (!res.accepted) {
    sub.outcome_known = true;
    sub.shed.submission_id = submission_id;
    sub.shed.reason = static_cast<std::uint32_t>(res.rejected);
    sub.shed.origin = static_cast<std::uint32_t>(
        res.rejected == exec::ShedReason::kTenantThrottled
            ? ShedOrigin::kDoor
            : ShedOrigin::kExecutorReject);
    sub.shed.at = spec.arrival;
    (void)writer_->append(RecordType::kShed, sub.shed.encode());
    ++led.sheds;
    // Door rejections were charged inside the door; executor-side rejects
    // are charged here so every ledger shed has exactly one attribution
    // event (the reconciliation invariant).
    if (res.rejected != exec::ShedReason::kTenantThrottled)
      obs::Attribution::instance().charge(
          tenant, -1, obs::Charge::kShed,
          static_cast<std::uint32_t>(res.rejected),
          exec::PricingModel::traffic_bytes(spec));
    feed_slo_locked(tenant, /*missed=*/true, spec.arrival);
    if (res.id != 0) exec_to_sub_[res.id] = submission_id;  // report exists
  } else {
    exec_to_sub_[res.id] = submission_id;
  }
  unacked_.push_back(submission_id);
  subs_.emplace(submission_id, std::move(sub));

  ack.accepted = res.accepted;
  ack.exec_id = res.id;
  ack.rejected = res.rejected;
  return ack;
}

util::Status ServiceHandle::flush() {
  const std::lock_guard<std::mutex> guard(mu_);
  if (const util::Status s = writer_->commit(); !s.ok()) return s;
  for (const std::uint64_t id : unacked_) {
    const auto it = subs_.find(id);
    if (it != subs_.end()) it->second.acked = true;
  }
  unacked_.clear();
  return util::Status{};
}

void ServiceHandle::apply_outcome_locked(Sub& sub,
                                         const exec::JobReport& report) {
  TenantLedger& led = ledger_[sub.rec.tenant - 1];
  if (report.completed) {
    sub.completed = true;
    sub.comp.submission_id = sub.rec.submission_id;
    sub.comp.served_bytes = report.quote.bytes;
    sub.comp.finish = report.finish;
    sub.comp.field_crc = report.field_crc;
    std::uint32_t mask = 0;
    for (const unsigned c : report.quote.plan_set)
      if (c < 32) mask |= 1u << c;
    sub.comp.plan_mask = mask;
    (void)writer_->append(RecordType::kCompletion, sub.comp.encode());
    ++led.completed;
    led.served_bytes += sub.comp.served_bytes;
    // Charged at the exact ledger mutation: attribution's per-tenant served
    // bytes equal the ledger's by construction, not by reconciliation.
    obs::Attribution::instance().charge_spread(
        sub.rec.tenant, report.quote.plan_set, obs::Charge::kServed, 0,
        report.quote.bytes);
    feed_slo_locked(sub.rec.tenant, report.missed_deadline(), report.finish);
  } else {
    sub.shed.submission_id = sub.rec.submission_id;
    sub.shed.reason = static_cast<std::uint32_t>(report.shed);
    sub.shed.origin = static_cast<std::uint32_t>(ShedOrigin::kExecutorShed);
    sub.shed.at = report.finish;
    (void)writer_->append(RecordType::kShed, sub.shed.encode());
    ++led.sheds;
    obs::Attribution::instance().charge_spread(
        sub.rec.tenant, report.quote.plan_set, obs::Charge::kShed,
        static_cast<std::uint32_t>(report.shed), report.quote.bytes);
    feed_slo_locked(sub.rec.tenant, /*missed=*/true, report.finish);
  }
  sub.outcome_known = true;
}

std::size_t ServiceHandle::pump() {
  const std::lock_guard<std::mutex> guard(mu_);
  return pump_locked();
}

std::size_t ServiceHandle::pump_locked() {
  std::size_t appended = 0;
  const std::vector<exec::JobReport> tail =
      service_->executor().reports_tail(reports_seen_);
  reports_seen_ += tail.size();
  for (const exec::JobReport& r : tail) {
    const auto mapping = exec_to_sub_.find(r.id);
    if (mapping == exec_to_sub_.end()) continue;
    const auto it = subs_.find(mapping->second);
    if (it == subs_.end() || it->second.outcome_known) continue;
    apply_outcome_locked(it->second, r);
    ++appended;
  }
  return appended;
}

void ServiceHandle::wait_quiesced_locked() {
  // Quiesced = queue empty AND every forwarded job's outcome journaled.
  // Job bodies run on worker threads; completion reports land shortly after
  // the queue empties, so this is a short bounded-yield wait in practice.
  for (;;) {
    (void)pump_locked();
    bool pending = false;
    for (const auto& [id, sub] : subs_) {
      (void)id;
      if (!sub.outcome_known) {
        pending = true;
        break;
      }
    }
    if (!pending && service_->executor().queued() == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

util::Status ServiceHandle::publish_snapshot_locked(bool compact) {
  // Ordering is the crash-consistency argument:
  //   1. commit the journal — every record the snapshot will cover is
  //      durable FIRST (a snapshot must never cover records a crash could
  //      lose, or replay sequence numbers would collide);
  //   2. write + fsync + rename the snapshot (atomic publish);
  //   3. append the snapshot mark and commit (observability only — restart
  //      reads covered_sequence from the snapshot itself).
  if (const util::Status s = writer_->commit(); !s.ok()) return s;
  for (const std::uint64_t id : unacked_) {
    const auto it = subs_.find(id);
    if (it != subs_.end()) it->second.acked = true;
  }
  unacked_.clear();

  StateImage im;
  im.snapshot_id = ++snapshot_id_;
  im.covered_sequence = writer_->next_sequence() - 1;
  im.max_submission_id = max_submission_id_;
  im.door = service_->snapshot_door();
  im.clocks = service_->executor().virtual_clocks();
  im.ledger = ledger_;
  if (node_supervisor_ != nullptr) {
    im.has_node_supervisor = true;
    im.node_supervisor = node_supervisor_->snapshot();
  }
  // The attribution ledger rides in every snapshot: restart restores it and
  // replay re-charges only post-snapshot records, so per-tenant byte totals
  // reconcile exactly across a SIGKILL.
  im.has_attribution = true;
  im.attribution = obs::Attribution::instance().encode();
  if (const util::Status s = save_state(cfg_.state_path(), im); !s.ok())
    return s;

  SnapshotMarkRecord mark;
  mark.snapshot_id = im.snapshot_id;
  mark.covered_sequence = im.covered_sequence;
  (void)writer_->append(RecordType::kSnapshotMark, mark.encode());
  if (const util::Status s = writer_->commit(); !s.ok()) return s;

  // Everything detailed below the watermark is now compacted history; a
  // live checkpoint drops the in-memory entries so a long-lived service
  // does not grow without bound (dedup for them is answered by the
  // watermark). drain() keeps them: the serving loop reports final typed
  // outcomes to its clients after the backlog settles.
  acked_watermark_ = im.max_submission_id;
  if (compact) {
    for (auto it = subs_.begin(); it != subs_.end();) {
      if (it->second.outcome_known && it->second.acked) {
        exec_to_sub_.erase(it->second.rec.exec_job_id);
        it = subs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  DurableMetrics::get().snapshots.inc();
  obs::trace_instant("state.publish", "journal", im.snapshot_id,
                     im.covered_sequence);
  return util::Status{};
}

util::Status ServiceHandle::checkpoint() {
  const obs::TraceSpan span("durable.checkpoint", "journal");
  const std::lock_guard<std::mutex> guard(mu_);
  wait_quiesced_locked();
  return publish_snapshot_locked(/*compact=*/true);
}

util::Status ServiceHandle::drain(DrainReport* report) {
  const obs::TraceSpan span("durable.drain", "journal");
  DurableMetrics::get().drains.inc();
  DrainReport local;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    draining_ = true;
    // Ack everything admitted so far before we stop the world.
    if (const util::Status s = writer_->commit(); !s.ok()) return s;
    for (const std::uint64_t id : unacked_) {
      const auto it = subs_.find(id);
      if (it != subs_.end()) it->second.acked = true;
    }
    unacked_.clear();
  }

  // Let the backlog finish — or escalate. The watchdog path is what keeps a
  // SIGTERM from wedging behind a pathological backlog: past the budget the
  // queue is shed (every queued job reports kShutdown, typed) and only
  // in-flight bodies finish.
  bool escalate = false;
  if (cfg_.drain_budget_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(cfg_.drain_budget_ms);
    while (service_->executor().queued() > 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        escalate = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (escalate) {
    util::log_warn("durable: drain budget exceeded with " +
                   std::to_string(service_->executor().queued()) +
                   " jobs queued — escalating to shed");
    DurableMetrics::get().drain_escalations.inc();
    obs::trace_instant("durable.drain.escalate", "journal",
                       service_->executor().queued(), 0);
  }
  service_->shutdown(escalate ? exec::Executor::Drain::kShedQueued
                              : exec::Executor::Drain::kDrain);

  const std::lock_guard<std::mutex> guard(mu_);
  local.escalated = escalate;
  const std::size_t before = [&] {
    std::size_t sheds = 0;
    for (const TenantLedger& l : ledger_) sheds += l.sheds;
    return sheds;
  }();
  // Workers are joined: every outcome is final. Journal them all.
  (void)pump_locked();
  const std::size_t after = [&] {
    std::size_t sheds = 0;
    for (const TenantLedger& l : ledger_) sheds += l.sheds;
    return sheds;
  }();
  local.shed_on_drain = after - before;

  if (const util::Status s = publish_snapshot_locked(/*compact=*/false);
      !s.ok())
    return s;
  if (const util::Status s = writer_->seal(); !s.ok()) return s;
  if (report != nullptr) *report = local;
  return util::Status{};
}

PollResult ServiceHandle::poll(std::uint64_t submission_id) const {
  const std::lock_guard<std::mutex> guard(mu_);
  PollResult out;
  const auto it = subs_.find(submission_id);
  if (it == subs_.end()) {
    if (submission_id <= acked_watermark_) {
      out.state = SubmissionState::kAckedHistory;
      out.acked = true;
    }
    return out;
  }
  const Sub& sub = it->second;
  out.acked = sub.acked;
  if (!sub.outcome_known) {
    out.state = SubmissionState::kPending;
  } else if (sub.completed) {
    out.state = SubmissionState::kCompleted;
    out.served_bytes = sub.comp.served_bytes;
    out.field_crc = sub.comp.field_crc;
  } else {
    out.state = SubmissionState::kShed;
    out.reason = static_cast<exec::ShedReason>(sub.shed.reason);
  }
  return out;
}

util::Status ServiceHandle::attach_node_supervisor(NodeSupervisor* sup) {
  const std::lock_guard<std::mutex> guard(mu_);
  node_supervisor_ = sup;
  if (sup != nullptr && pending_supervisor_ != nullptr) {
    const util::Status s = sup->restore(*pending_supervisor_);
    if (!s.ok()) return s;
    pending_supervisor_.reset();
  }
  return util::Status{};
}

std::vector<TenantLedger> ServiceHandle::ledger() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return ledger_;
}

std::uint64_t ServiceHandle::max_submission_id() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return max_submission_id_;
}

void ServiceHandle::install_quiesce_signal_handler() {
#ifndef _WIN32
  (void)std::signal(SIGTERM, on_quiesce_signal);
#endif
}

bool ServiceHandle::quiesce_requested() noexcept {
  return g_quiesce.load(std::memory_order_relaxed);
}

void ServiceHandle::clear_quiesce_request() noexcept {
  g_quiesce.store(false, std::memory_order_relaxed);
}

}  // namespace mcopt::runtime::durable
