#include "util/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/log.h"

namespace mcopt::util {

namespace {

/// Plain Levenshtein distance, one rolling row.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({up + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

Cli& Cli::flag(const std::string& name, const std::string& help) {
  Opt o;
  o.kind = Kind::kFlag;
  o.help = help;
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Cli& Cli::option_int(const std::string& name, std::int64_t def, const std::string& help) {
  Opt o;
  o.kind = Kind::kInt;
  o.help = help;
  o.int_value = def;
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Cli& Cli::option_double(const std::string& name, double def, const std::string& help) {
  Opt o;
  o.kind = Kind::kDouble;
  o.help = help;
  o.double_value = def;
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Cli& Cli::option_str(const std::string& name, std::string def, const std::string& help) {
  Opt o;
  o.kind = Kind::kString;
  o.help = help;
  o.str_value = std::move(def);
  opts_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

std::string Cli::nearest(const std::string& name) const {
  std::string best;
  std::size_t best_dist = 3;  // only suggest within edit distance 2
  for (const auto& candidate : order_) {
    const std::size_t dist = edit_distance(name, candidate);
    if (dist < best_dist) {
      best_dist = dist;
      best = candidate;
    }
  }
  return best;
}

bool Cli::parse(int argc, const char* const* argv) {
  // Environment validation happens here rather than at static-init so CLI
  // front-ends reject a junk MCOPT_LOG_LEVEL with a typed error instead of
  // silently running at the default verbosity (the static initializer only
  // warns — a library consumer must not abort before main).
  if (const char* env = std::getenv("MCOPT_LOG_LEVEL");
      env != nullptr && *env != '\0') {
    const auto level = log_level_from_env(env);
    if (!level) throw std::invalid_argument(level.error().message);
    set_log_level(level.value());
  }
  std::vector<std::string> unknown;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + arg);

    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = opts_.find(name);
    if (it == opts_.end()) {
      // Keep scanning so one message reports every typo, not just the first;
      // swallow a following non-option token as the presumed value.
      std::string entry = "--" + name;
      if (const std::string near = nearest(name); !near.empty())
        entry += " (did you mean --" + near + "?)";
      unknown.push_back(std::move(entry));
      if (!inline_value && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0)
        ++i;
      continue;
    }
    Opt& opt = it->second;

    if (opt.kind == Kind::kFlag) {
      if (inline_value)
        throw std::invalid_argument("flag --" + name + " does not take a value");
      opt.flag_value = true;
      continue;
    }

    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + name + " requires a value");
      value = argv[++i];
    }
    try {
      switch (opt.kind) {
        case Kind::kInt:
          opt.int_value = std::stoll(value);
          break;
        case Kind::kDouble:
          opt.double_value = std::stod(value);
          break;
        case Kind::kString:
          opt.str_value = value;
          break;
        case Kind::kFlag:
          break;  // handled above
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed value for --" + name + ": " + value);
    }
  }
  if (!unknown.empty()) {
    std::string msg =
        unknown.size() == 1 ? "unknown option: " : "unknown options: ";
    for (std::size_t j = 0; j < unknown.size(); ++j) {
      if (j) msg += ", ";
      msg += unknown[j];
    }
    throw std::invalid_argument(msg);
  }
  return true;
}

Cli::Opt& Cli::require(const std::string& name, Kind kind) const {
  const auto it = opts_.find(name);
  if (it == opts_.end() || it->second.kind != kind)
    throw std::logic_error("option not registered with this type: --" + name);
  return it->second;
}

bool Cli::get_flag(const std::string& name) const {
  return require(name, Kind::kFlag).flag_value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}

double Cli::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}

const std::string& Cli::get_str(const std::string& name) const {
  return require(name, Kind::kString).str_value;
}

void Cli::print_usage(const std::string& argv0) const {
  std::printf("%s\n\nUsage: %s [options]\n\nOptions:\n", description_.c_str(),
              argv0.c_str());
  for (const auto& name : order_) {
    const Opt& opt = opts_.at(name);
    std::string left = "  --" + name;
    switch (opt.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInt:
        left += " <int=" + std::to_string(opt.int_value) + ">";
        break;
      case Kind::kDouble:
        left += " <float>";
        break;
      case Kind::kString:
        left += " <str=" + opt.str_value + ">";
        break;
    }
    std::printf("%-42s %s\n", left.c_str(), opt.help.c_str());
  }
  std::printf("%-42s %s\n", "  --help", "show this message");
}

}  // namespace mcopt::util
