#pragma once
// Hierarchical ("segmented") algorithms after Austern [6] and the paper's
// Sect. 2.2: generic STL-style algorithms that dispatch on whether an
// iterator is segmented. For segmented iterators the algorithm recurses into
// each segment and runs a tight loop over raw local iterators, so the
// abstraction costs nothing in the inner loop — the property Fig. 5 measures.

#include <concepts>
#include <cstddef>
#include <iterator>
#include <numeric>
#include <stdexcept>
#include <type_traits>

namespace mcopt::seg {

/// An iterator following the segmented-iterator protocol: it exposes its
/// segment range and a local (contiguous) iterator within the segment.
template <typename It>
concept SegmentedIterator = requires(const It it) {
  typename It::segment_iterator;
  typename It::local_iterator;
  { it.segment() } -> std::convertible_to<typename It::segment_iterator>;
  { it.local() } -> std::convertible_to<typename It::local_iterator>;
};

/// Applies `f(seg_begin, seg_end)` to every maximal contiguous local range in
/// [first, last). This is the single traversal primitive all segmented
/// algorithms below are built on.
template <SegmentedIterator It, typename RangeFn>
void for_each_local_range(It first, It last, RangeFn f) {
  auto seg = first.segment();
  const auto last_seg = last.segment();
  if (seg == last_seg) {
    if (first.local() != last.local()) f(first.local(), last.local());
    return;
  }
  f(first.local(), seg->end());
  for (++seg; seg != last_seg; ++seg)
    if (!seg->empty()) f(seg->begin(), seg->end());
  // last.local() is null when `last` is the container's end().
  if (last.local() != nullptr && last.local() != last_seg->begin())
    f(last_seg->begin(), last.local());
}

// --- for_each ---------------------------------------------------------------

template <SegmentedIterator It, typename F>
F for_each(It first, It last, F f) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo) f(*lo);
  });
  return f;
}

template <std::input_iterator It, typename F>
  requires(!SegmentedIterator<It>)
F for_each(It first, It last, F f) {
  for (; first != last; ++first) f(*first);
  return f;
}

// --- fill --------------------------------------------------------------------

template <SegmentedIterator It, typename T>
void fill(It first, It last, const T& value) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo) *lo = value;
  });
}

template <std::forward_iterator It, typename T>
  requires(!SegmentedIterator<It>)
void fill(It first, It last, const T& value) {
  for (; first != last; ++first) *first = value;
}

// --- copy (segmented source, any output) -------------------------------------

template <SegmentedIterator It, typename Out>
Out copy(It first, It last, Out out) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo, ++out) *out = *lo;
  });
  return out;
}

template <std::input_iterator It, typename Out>
  requires(!SegmentedIterator<It>)
Out copy(It first, It last, Out out) {
  for (; first != last; ++first, ++out) *out = *first;
  return out;
}

// --- transform ----------------------------------------------------------------

template <SegmentedIterator It, typename Out, typename UnaryOp>
Out transform(It first, It last, Out out, UnaryOp op) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo, ++out) *out = op(*lo);
  });
  return out;
}

template <std::input_iterator It, typename Out, typename UnaryOp>
  requires(!SegmentedIterator<It>)
Out transform(It first, It last, Out out, UnaryOp op) {
  for (; first != last; ++first, ++out) *out = op(*first);
  return out;
}

template <SegmentedIterator It, typename It2, typename Out, typename BinaryOp>
Out transform(It first, It last, It2 first2, Out out, BinaryOp op) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo, ++first2, ++out) *out = op(*lo, *first2);
  });
  return out;
}

// --- accumulate ------------------------------------------------------------------

template <SegmentedIterator It, typename T, typename BinaryOp = std::plus<>>
T accumulate(It first, It last, T init, BinaryOp op = {}) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo) init = op(std::move(init), *lo);
  });
  return init;
}

template <std::input_iterator It, typename T, typename BinaryOp = std::plus<>>
  requires(!SegmentedIterator<It>)
T accumulate(It first, It last, T init, BinaryOp op = {}) {
  return std::accumulate(first, last, std::move(init), op);
}

// --- inner_product ------------------------------------------------------------------

template <SegmentedIterator It, typename It2, typename T>
T inner_product(It first, It last, It2 first2, T init) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo, ++first2) init = init + *lo * *first2;
  });
  return init;
}

// --- equal ------------------------------------------------------------------------

template <SegmentedIterator It, typename It2>
bool equal(It first, It last, It2 first2) {
  bool same = true;
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; same && lo != hi; ++lo, ++first2) same = (*lo == *first2);
  });
  return same;
}

// --- count_if ----------------------------------------------------------------------

template <SegmentedIterator It, typename Pred>
std::size_t count_if(It first, It last, Pred pred) {
  std::size_t n = 0;
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo)
      if (pred(*lo)) ++n;
  });
  return n;
}

template <SegmentedIterator It, typename T>
std::size_t count(It first, It last, const T& value) {
  return seg::count_if(first, last, [&](const auto& v) { return v == value; });
}

// --- min/max ------------------------------------------------------------------------

/// Largest element value in a non-empty range.
template <SegmentedIterator It>
auto max_value(It first, It last) {
  using V = typename It::value_type;
  bool seen = false;
  V best{};
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo)
      if (!seen || best < *lo) {
        best = *lo;
        seen = true;
      }
  });
  if (!seen) throw std::invalid_argument("max_value: empty range");
  return best;
}

/// Smallest element value in a non-empty range.
template <SegmentedIterator It>
auto min_value(It first, It last) {
  using V = typename It::value_type;
  bool seen = false;
  V best{};
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo)
      if (!seen || *lo < best) {
        best = *lo;
        seen = true;
      }
  });
  if (!seen) throw std::invalid_argument("min_value: empty range");
  return best;
}

// --- transform_reduce ----------------------------------------------------------------

/// init + sum of op(x) over the range (generalized map-reduce).
template <SegmentedIterator It, typename T, typename UnaryOp>
T transform_reduce(It first, It last, T init, UnaryOp op) {
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; lo != hi; ++lo) init = init + op(*lo);
  });
  return init;
}

// --- any_of / all_of ----------------------------------------------------------------

template <SegmentedIterator It, typename Pred>
bool any_of(It first, It last, Pred pred) {
  bool found = false;
  for_each_local_range(first, last, [&](auto lo, auto hi) {
    for (; !found && lo != hi; ++lo) found = pred(*lo);
  });
  return found;
}

template <SegmentedIterator It, typename Pred>
bool all_of(It first, It last, Pred pred) {
  return !seg::any_of(first, last, [&](const auto& v) { return !pred(v); });
}

}  // namespace mcopt::seg
