// Native STREAM on the HOST machine with the paper's COMMON-block offset
// parameter — a negative control for the whole study: on a machine without
// the T2's low-bit controller interleaving (any modern x86), the offset
// sweep should be FLAT. Run this next to fig2_stream_offset (simulated T2)
// to see the contrast.

#include <algorithm>

#include "common.h"
#include "seg/aligned_buffer.h"
#include "sched/pinning.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Native STREAM vs offset on the host (negative control)");
  cli.flag("full", "larger arrays / more reps")
      .option_int("n", 1 << 22, "array length in DP words")
      .option_int("reps", 5, "repetitions (best-of)")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const auto n =
      static_cast<std::size_t>(cli.get_flag("full") ? (1 << 24) : cli.get_int("n"));
  const unsigned reps = static_cast<unsigned>(cli.get_int("reps"));
  std::printf("# Host STREAM triad, %u CPU(s), N=%zu, best of %u (reported GB/s)\n\n",
              sched::online_cpus(), n, reps);

  const std::vector<std::string> header = {"offset", "triad GB/s", "copy GB/s"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t offset = 0; offset <= 128; offset += 16) {
    const std::size_t ndim = n + offset;
    // One block, arrays back to back — the paper's COMMON layout.
    seg::AlignedBuffer block(3 * ndim * sizeof(double), 8192);
    auto* a = reinterpret_cast<double*>(block.data());
    double* b = a + ndim;
    double* c = b + ndim;
    std::fill(a, a + ndim, 1.0);
    std::fill(b, b + ndim, 2.0);
    std::fill(c, c + ndim, 3.0);

    double triad_best = 1e99;
    double copy_best = 1e99;
    for (unsigned r = 0; r < reps; ++r) {
      triad_best = std::min(
          triad_best,
          kernels::stream_sweep_seconds(kernels::StreamOp::kTriad, a, b, c, n, 3.0));
      copy_best = std::min(
          copy_best,
          kernels::stream_sweep_seconds(kernels::StreamOp::kCopy, a, b, c, n, 3.0));
    }
    const auto triad_bytes = static_cast<double>(
        kernels::stream_reported_bytes(kernels::StreamOp::kTriad, n));
    const auto copy_bytes = static_cast<double>(
        kernels::stream_reported_bytes(kernels::StreamOp::kCopy, n));
    rows.push_back({std::to_string(offset),
                    util::fmt_fixed(triad_bytes / triad_best / 1e9, 2),
                    util::fmt_fixed(copy_bytes / copy_best / 1e9, 2)});
  }
  mcopt::bench::emit(header, rows, cli.get_str("csv"));
  std::printf(
      "\nexpected: flat across offsets on hosts without low-bit controller "
      "interleaving — contrast with fig2_stream_offset.\n");
  return 0;
}
