#include "util/log.h"

#include <gtest/gtest.h>

namespace mcopt::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Suppressed messages must not crash or allocate surprisingly.
  log_debug("suppressed");
  log_info("suppressed");
  log_warn("suppressed");
  log_error("shown on stderr");
}

}  // namespace
}  // namespace mcopt::util
