#pragma once
// Human-readable rendering of SimResult: per-controller utilization, cache
// behaviour, bandwidth and imbalance summaries. Used by benches and
// examples; pure formatting, no simulation logic.

#include <iosfwd>
#include <string>

#include "sim/chip.h"

namespace mcopt::sim {

/// Compact aggregates derived from a SimResult.
struct UtilizationSummary {
  double seconds = 0.0;
  double bandwidth_gbs = 0.0;        ///< total memory traffic (both ways)
  double read_fraction = 0.0;        ///< reads / (reads + writes), by bytes
  double l1_miss_ratio = 0.0;
  double l2_miss_ratio = 0.0;
  double mc_busy_min = 0.0;          ///< min/max controller busy fraction
  double mc_busy_max = 0.0;
  double row_conflict_ratio = 0.0;   ///< DRAM row conflicts / accesses
  double thread_imbalance = 0.0;     ///< (max-min)/max of thread finish times
  double gflops = 0.0;
};

[[nodiscard]] UtilizationSummary summarize(const SimResult& result);

/// Multi-line report (one line per controller plus totals).
void print_report(std::ostream& os, const SimResult& result);

/// One-line summary for logs.
[[nodiscard]] std::string brief(const SimResult& result);

}  // namespace mcopt::sim
