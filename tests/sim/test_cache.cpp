#include "sim/cache.h"

#include <gtest/gtest.h>

namespace mcopt::sim {
namespace {

arch::CacheGeometry tiny_geometry() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return arch::CacheGeometry{512, 64, 2};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  EXPECT_FALSE(c.load(0x1000).hit);
  EXPECT_TRUE(c.load(0x1000).hit);
  EXPECT_TRUE(c.load(0x103F).hit);   // same line
  EXPECT_FALSE(c.load(0x1040).hit);  // next line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, ProbeDoesNotTouch) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  EXPECT_FALSE(c.probe(0x0));
  c.load(0x0);
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_EQ(c.stats().accesses(), 1u);  // probe not counted
}

TEST(Cache, LruEvictionOrder) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  // Set 0 holds lines with line_index % 4 == 0: addresses k * 256.
  c.load(0 * 256);
  c.load(1 * 256);
  c.load(0 * 256);    // refresh line 0: line 1 is now LRU
  c.load(2 * 256);    // evicts line 1
  EXPECT_TRUE(c.probe(0 * 256));
  EXPECT_FALSE(c.probe(1 * 256));
  EXPECT_TRUE(c.probe(2 * 256));
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().writebacks, 0u);  // clean evictions
}

TEST(Cache, DirtyEvictionReportsWritebackLine) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  c.store(0 * 256);  // allocate + dirty
  c.load(1 * 256);
  const CacheOutcome out = c.load(2 * 256);  // evicts dirty line 0
  EXPECT_EQ(out.writeback_line, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughDoesNotAllocate) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteThrough);
  EXPECT_FALSE(c.store(0x40).hit);
  EXPECT_FALSE(c.probe(0x40));  // no allocation
  c.load(0x40);
  EXPECT_TRUE(c.store(0x40).hit);  // update-on-hit
  // Write-through lines are never dirty: evictions carry no writeback.
  c.load(1 * 256 + 0x40);
  const CacheOutcome out = c.load(2 * 256 + 0x40);
  EXPECT_EQ(out.writeback_line, CacheOutcome::kNoEviction);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteBackStoreMissAllocatesDirty) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  EXPECT_FALSE(c.store(0x0).hit);
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_TRUE(c.store(0x0).hit);
}

TEST(Cache, PowerOfTwoStrideThrashesWithoutHash) {
  // Classic thrashing: stride = way span touches one set only.
  Cache c(arch::CacheGeometry{4096, 64, 2}, Cache::WritePolicy::kWriteBack);
  const std::size_t way_span = 4096 / 2;
  for (int round = 0; round < 3; ++round)
    for (arch::Addr k = 0; k < 4; ++k) c.load(k * way_span);
  // 4 lines cycling through a 2-way set: every access misses after warmup.
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 12u);
}

TEST(Cache, IndexHashDefusesPowerOfTwoStride) {
  Cache c(arch::CacheGeometry{4096, 64, 2}, Cache::WritePolicy::kWriteBack,
          /*index_hash=*/true);
  const std::size_t way_span = 4096 / 2;
  for (int round = 0; round < 3; ++round)
    for (arch::Addr k = 0; k < 4; ++k) c.load(k * way_span);
  // Hashed indices spread the four lines over several sets: most re-accesses
  // hit after the first round.
  EXPECT_GE(c.stats().hits, 6u);
}

TEST(Cache, IndexHashIsStillAValidCache) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack, true);
  EXPECT_FALSE(c.load(0x1234).hit);
  EXPECT_TRUE(c.load(0x1234).hit);
  c.store(0x1234);
  EXPECT_TRUE(c.probe(0x1234));
}

TEST(Cache, IndexHashWritebackAddressIsExact) {
  // With full-line tags the reconstructed write-back address must equal the
  // originally stored line even though the set is hashed.
  Cache c(arch::CacheGeometry{256, 64, 1}, Cache::WritePolicy::kWriteBack, true);
  const arch::Addr victim = 0x40;
  c.store(victim);
  // Find another address hashing to the same set and evict.
  for (arch::Addr a = 0x80; a < 0x40000; a += 0x40) {
    if (c.probe(victim) && !c.probe(a)) {
      const CacheOutcome out = c.load(a);
      if (out.writeback_line != CacheOutcome::kNoEviction) {
        EXPECT_EQ(out.writeback_line, victim);
        return;
      }
    }
  }
  FAIL() << "no conflicting address found";
}

TEST(Cache, ClearResetsContentsAndStats) {
  Cache c(tiny_geometry(), Cache::WritePolicy::kWriteBack);
  c.load(0x0);
  c.clear();
  EXPECT_FALSE(c.probe(0x0));
  EXPECT_EQ(c.stats().accesses(), 0u);
  c.load(0x0);
  c.clear(/*clear_stats=*/false);
  EXPECT_EQ(c.stats().misses, 1u);  // stats survive, contents do not
  EXPECT_FALSE(c.probe(0x0));
}

TEST(CacheStats, MissRatio) {
  CacheStats s;
  EXPECT_DOUBLE_EQ(s.miss_ratio(), 0.0);
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.miss_ratio(), 0.25);
}

class StrideSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StrideSweep, SequentialStreamMissesOncePerLine) {
  Cache c(arch::CacheGeometry{8192, 64, 4}, Cache::WritePolicy::kWriteBack);
  const std::size_t elem = GetParam();
  const std::size_t n = 4096 / elem;
  for (std::size_t i = 0; i < n; ++i) c.load(arch::Addr(i * elem));
  EXPECT_EQ(c.stats().misses, 4096u / 64);
  EXPECT_EQ(c.stats().hits, n - 4096 / 64);
}

INSTANTIATE_TEST_SUITE_P(ElementSizes, StrideSweep, ::testing::Values(4, 8, 16, 32, 64));

}  // namespace
}  // namespace mcopt::sim
