#include "trace/virtual_arena.h"

#include <stdexcept>

namespace mcopt::trace {

arch::Addr VirtualArena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("VirtualArena: alignment must be a power of two");
  const arch::Addr start = (next_ + align - 1) / align * align;
  next_ = start + bytes;
  return start;
}

arch::Addr VirtualArena::malloc_like(std::size_t bytes) {
  // glibc: 8-byte header before a 16-byte-aligned block; usable sizes round
  // to 16. The net effect for back-to-back large mallocs: bases separated by
  // round16(bytes) + 16.
  const arch::Addr start = allocate(bytes + 16, 16) + 16;
  next_ = start + (bytes + 15) / 16 * 16;
  return start;
}

VirtualSegArray::VirtualSegArray(VirtualArena& arena,
                                 std::vector<std::size_t> segment_elems,
                                 std::size_t elem_bytes,
                                 const seg::LayoutSpec& spec)
    : elem_bytes_(elem_bytes), sizes_(std::move(segment_elems)) {
  if (elem_bytes_ == 0) throw std::invalid_argument("VirtualSegArray: zero elem size");
  std::vector<std::size_t> bytes(sizes_.size());
  for (std::size_t s = 0; s < sizes_.size(); ++s) bytes[s] = sizes_[s] * elem_bytes_;
  const seg::LayoutResult layout = seg::compute_layout(bytes, spec);
  base_ = arena.allocate(layout.total_bytes, spec.base_align);
  positions_ = layout.segment_pos;
  for (std::size_t n : sizes_) total_ += n;
}

VirtualSegArray VirtualSegArray::even(VirtualArena& arena, std::size_t n,
                                      std::size_t parts, std::size_t elem_bytes,
                                      const seg::LayoutSpec& spec) {
  return VirtualSegArray(arena, seg::split_even(n, parts), elem_bytes, spec);
}

}  // namespace mcopt::trace
