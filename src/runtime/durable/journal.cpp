#include "runtime/durable/journal.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc.h"

namespace mcopt::runtime::durable {
namespace {

struct JournalMetrics {
  obs::Counter& records;
  obs::Counter& commits;
  obs::Counter& fsyncs;
  obs::Counter& bytes;
  obs::Counter& recoveries;
  obs::Counter& replayed;
  obs::Counter& truncated_tails;
  obs::Counter& truncated_bytes;

  static JournalMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static JournalMetrics m{
        reg.counter("mcopt_journal_records_total",
                    "Records appended to the write-ahead job journal"),
        reg.counter("mcopt_journal_commits_total",
                    "Journal group commits (the submission ack points)"),
        reg.counter("mcopt_journal_fsyncs_total",
                    "fsync calls issued by the journal writer"),
        reg.counter("mcopt_journal_bytes_total",
                    "Bytes appended to the journal"),
        reg.counter("mcopt_journal_recoveries_total",
                    "Journal recovery scans performed"),
        reg.counter("mcopt_journal_replayed_records_total",
                    "Intact records returned by journal recovery"),
        reg.counter("mcopt_journal_truncated_tails_total",
                    "Recoveries that found and reported a torn/corrupt tail"),
        reg.counter("mcopt_journal_truncated_bytes_total",
                    "Torn/corrupt tail bytes dropped by recovery")};
    return m;
  }
};

util::Status errno_failure(const std::string& what, const std::string& path) {
  return util::Status::failure("journal: " + what + " '" + path +
                               "': " + std::strerror(errno));
}

std::vector<std::uint8_t> encode_header(std::uint64_t user) {
  std::vector<std::uint8_t> out;
  out.reserve(kJournalHeaderBytes);
  wire::put_u32(out, kJournalMagic);
  wire::put_u32(out, kJournalVersion);
  wire::put_u64(out, user);
  wire::put_u32(out, util::crc32c(out.data(), out.size()));
  return out;
}

util::Status flush_and_sync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return errno_failure("cannot flush", path);
#ifndef _WIN32
  if (fsync(fileno(f)) != 0) return errno_failure("cannot fsync", path);
#endif
  JournalMetrics::get().fsyncs.inc();
  return util::Status{};
}

}  // namespace

namespace wire {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace wire

// --- typed payloads --------------------------------------------------------

std::vector<std::uint8_t> SubmissionRecord::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(80);
  wire::put_u64(out, submission_id);
  wire::put_u64(out, exec_job_id);
  wire::put_u32(out, tenant);
  wire::put_u32(out, verdict);
  wire::put_u32(out, kind);
  wire::put_u32(out, priority);
  wire::put_u64(out, n);
  wire::put_u64(out, iterations);
  wire::put_u64(out, deadline);
  wire::put_u64(out, arrival);
  wire::put_u64(out, trace_id);
  wire::put_u64(out, parent_span);
  return out;
}

util::Expected<SubmissionRecord> SubmissionRecord::decode(
    const std::vector<std::uint8_t>& p) {
  using Result = util::Expected<SubmissionRecord>;
  // 64 bytes = journal v1 (no trace context); 80 = v2. Anything else is
  // damage, refused before a field is read.
  if (p.size() != 64 && p.size() != 80)
    return Result::failure("journal: submission record has " +
                           std::to_string(p.size()) +
                           " bytes, expected 64 (v1) or 80 (v2)");
  SubmissionRecord r;
  r.submission_id = wire::get_u64(p.data());
  r.exec_job_id = wire::get_u64(p.data() + 8);
  r.tenant = wire::get_u32(p.data() + 16);
  r.verdict = wire::get_u32(p.data() + 20);
  r.kind = wire::get_u32(p.data() + 24);
  r.priority = wire::get_u32(p.data() + 28);
  r.n = wire::get_u64(p.data() + 32);
  r.iterations = wire::get_u64(p.data() + 40);
  r.deadline = wire::get_u64(p.data() + 48);
  r.arrival = wire::get_u64(p.data() + 56);
  if (p.size() == 80) {
    r.trace_id = wire::get_u64(p.data() + 64);
    r.parent_span = wire::get_u64(p.data() + 72);
  }
  return r;
}

std::vector<std::uint8_t> CompletionRecord::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(32);
  wire::put_u64(out, submission_id);
  wire::put_u64(out, served_bytes);
  wire::put_u64(out, finish);
  wire::put_u32(out, field_crc);
  wire::put_u32(out, plan_mask);
  return out;
}

util::Expected<CompletionRecord> CompletionRecord::decode(
    const std::vector<std::uint8_t>& p) {
  using Result = util::Expected<CompletionRecord>;
  if (p.size() != 32)
    return Result::failure("journal: completion record has " +
                           std::to_string(p.size()) + " bytes, expected 32");
  CompletionRecord r;
  r.submission_id = wire::get_u64(p.data());
  r.served_bytes = wire::get_u64(p.data() + 8);
  r.finish = wire::get_u64(p.data() + 16);
  r.field_crc = wire::get_u32(p.data() + 24);
  r.plan_mask = wire::get_u32(p.data() + 28);
  return r;
}

std::vector<std::uint8_t> ShedRecord::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(24);
  wire::put_u64(out, submission_id);
  wire::put_u32(out, reason);
  wire::put_u32(out, origin);
  wire::put_u64(out, at);
  return out;
}

util::Expected<ShedRecord> ShedRecord::decode(
    const std::vector<std::uint8_t>& p) {
  using Result = util::Expected<ShedRecord>;
  if (p.size() != 24)
    return Result::failure("journal: shed record has " +
                           std::to_string(p.size()) + " bytes, expected 24");
  ShedRecord r;
  r.submission_id = wire::get_u64(p.data());
  r.reason = wire::get_u32(p.data() + 8);
  r.origin = wire::get_u32(p.data() + 12);
  r.at = wire::get_u64(p.data() + 16);
  return r;
}

std::vector<std::uint8_t> SnapshotMarkRecord::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  wire::put_u64(out, snapshot_id);
  wire::put_u64(out, covered_sequence);
  return out;
}

util::Expected<SnapshotMarkRecord> SnapshotMarkRecord::decode(
    const std::vector<std::uint8_t>& p) {
  using Result = util::Expected<SnapshotMarkRecord>;
  if (p.size() != 16)
    return Result::failure("journal: snapshot-mark record has " +
                           std::to_string(p.size()) + " bytes, expected 16");
  SnapshotMarkRecord r;
  r.snapshot_id = wire::get_u64(p.data());
  r.covered_sequence = wire::get_u64(p.data() + 8);
  return r;
}

// --- writer ----------------------------------------------------------------

JournalWriter::JournalWriter(std::string path, std::FILE* f,
                             std::uint64_t next_sequence)
    : path_(std::move(path)), f_(f), next_sequence_(next_sequence) {}

JournalWriter::~JournalWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

util::Expected<std::unique_ptr<JournalWriter>> JournalWriter::create(
    const std::string& path, std::uint64_t user) {
  using Result = util::Expected<std::unique_ptr<JournalWriter>>;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    const util::Status s = errno_failure("cannot create", path);
    return Result::failure(s.error().message);
  }
  const std::vector<std::uint8_t> header = encode_header(user);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    std::remove(path.c_str());
    const util::Status s = errno_failure("short header write to", path);
    return Result::failure(s.error().message);
  }
  // The header is durable before the journal exists for callers: a crash
  // after create() must recover to "empty journal", never "not a journal".
  if (const util::Status s = flush_and_sync(f, path); !s.ok()) {
    std::fclose(f);
    std::remove(path.c_str());
    return Result::failure(s.error().message);
  }
  JournalMetrics::get().bytes.inc(header.size());
  return std::unique_ptr<JournalWriter>(new JournalWriter(path, f, 1));
}

util::Expected<std::unique_ptr<JournalWriter>> JournalWriter::reopen(
    const std::string& path, std::uint64_t valid_bytes,
    std::uint64_t next_sequence) {
  using Result = util::Expected<std::unique_ptr<JournalWriter>>;
  if (valid_bytes < kJournalHeaderBytes)
    return Result::failure(
        "journal: reopen needs a recovered header (valid_bytes " +
        std::to_string(valid_bytes) + " < " +
        std::to_string(kJournalHeaderBytes) + ")");
  if (const util::Status s = truncate_journal(path, valid_bytes); !s.ok())
    return Result::failure(s.error().message);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    const util::Status s = errno_failure("cannot reopen", path);
    return Result::failure(s.error().message);
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, f, next_sequence));
}

std::uint64_t JournalWriter::append(RecordType type,
                                    const std::vector<std::uint8_t>& payload) {
  const std::uint64_t seq = next_sequence_++;
  std::vector<std::uint8_t> frame;
  frame.reserve(kRecordPrefixBytes + payload.size() + kRecordCrcBytes);
  wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(frame, static_cast<std::uint32_t>(type));
  wire::put_u64(frame, seq);
  frame.insert(frame.end(), payload.begin(), payload.end());
  wire::put_u32(frame, util::crc32c(frame.data(), frame.size()));
  // Short writes surface at commit() via fflush/ferror; append stays
  // infallible so group commit has one failure point.
  (void)std::fwrite(frame.data(), 1, frame.size(), f_);
  ++uncommitted_;
  JournalMetrics& m = JournalMetrics::get();
  m.records.inc();
  m.bytes.inc(frame.size());
  return seq;
}

util::Status JournalWriter::commit() {
  const obs::TraceSpan span("journal.commit", "journal", uncommitted_, 0);
  if (std::ferror(f_) != 0)
    return util::Status::failure("journal: buffered write failed on '" +
                                 path_ + "'");
  if (const util::Status s = flush_and_sync(f_, path_); !s.ok()) return s;
  uncommitted_ = 0;
  JournalMetrics::get().commits.inc();
  return util::Status{};
}

util::Status JournalWriter::seal() {
  if (sealed_) return util::Status{};
  (void)append(RecordType::kSeal, {});
  const util::Status s = commit();
  if (s.ok()) {
    sealed_ = true;
    obs::trace_instant("journal.seal", "journal", next_sequence_ - 1, 0);
  }
  return s;
}

// --- recovery --------------------------------------------------------------

util::Expected<JournalRecovery> recover_journal(const std::string& path) {
  using Result = util::Expected<JournalRecovery>;
  const obs::TraceSpan span("journal.recover", "journal");
  JournalMetrics& m = JournalMetrics::get();
  m.recoveries.inc();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Result::failure("journal: cannot open '" + path +
                           "': " + std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    return Result::failure("journal: read error on '" + path + "'");

  // Header: any damage here is a refusal, not a truncation — there is no
  // intact prefix to fall back to.
  if (bytes.size() < kJournalHeaderBytes)
    return Result::failure("journal: '" + path + "' is truncated (" +
                           std::to_string(bytes.size()) +
                           " bytes; the header alone is " +
                           std::to_string(kJournalHeaderBytes) + ")");
  const std::uint8_t* p = bytes.data();
  if (wire::get_u32(p) != kJournalMagic)
    return Result::failure("journal: '" + path +
                           "' is not a journal (bad magic)");
  const std::uint32_t version = wire::get_u32(p + 4);
  if (version < kJournalMinVersion || version > kJournalVersion)
    return Result::failure("journal: '" + path + "' has version " +
                           std::to_string(version) + "; this build reads " +
                           std::to_string(kJournalMinVersion) + ".." +
                           std::to_string(kJournalVersion));
  const std::uint32_t stored_crc = wire::get_u32(p + kJournalHeaderBytes - 4);
  const std::uint32_t header_crc = util::crc32c(p, kJournalHeaderBytes - 4);
  if (stored_crc != header_crc)
    return Result::failure("journal: '" + path +
                           "' header CRC mismatch (stored " +
                           std::to_string(stored_crc) + ", computed " +
                           std::to_string(header_crc) + ")");

  JournalRecovery out;
  out.user = wire::get_u64(p + 8);
  out.version = version;

  std::size_t at = kJournalHeaderBytes;
  std::uint64_t expected_seq = 1;
  const auto stop = [&](const std::string& why) {
    out.valid_bytes = at;
    out.dropped_bytes = bytes.size() - at;
    out.tail_note = why + " at byte " + std::to_string(at) + " (" +
                    std::to_string(out.dropped_bytes) + " tail bytes dropped)";
  };

  while (at < bytes.size()) {
    const std::size_t remaining = bytes.size() - at;
    if (remaining < kRecordPrefixBytes + kRecordCrcBytes) {
      stop("incomplete record frame");
      break;
    }
    const std::uint32_t payload_bytes = wire::get_u32(p + at);
    if (payload_bytes > kMaxPayloadBytes) {
      stop("implausible payload length " + std::to_string(payload_bytes));
      break;
    }
    const std::size_t frame =
        kRecordPrefixBytes + payload_bytes + kRecordCrcBytes;
    if (remaining < frame) {
      stop("record extends past end of file");
      break;
    }
    const std::uint32_t stored = wire::get_u32(p + at + frame - 4);
    const std::uint32_t crc = util::crc32c(p + at, frame - 4);
    if (stored != crc) {
      stop("record CRC mismatch (stored " + std::to_string(stored) +
           ", computed " + std::to_string(crc) + ")");
      break;
    }
    const std::uint32_t type = wire::get_u32(p + at + 4);
    if (type < static_cast<std::uint32_t>(RecordType::kSubmission) ||
        type > static_cast<std::uint32_t>(RecordType::kSeal)) {
      // CRC-valid but unknown: a newer writer's record. Refusing the whole
      // file would lose the intact prefix; stop here and report instead.
      stop("unknown record type " + std::to_string(type));
      break;
    }
    const std::uint64_t seq = wire::get_u64(p + at + 8);
    if (seq != expected_seq) {
      stop("sequence gap (record claims " + std::to_string(seq) +
           ", expected " + std::to_string(expected_seq) + ")");
      break;
    }
    Record rec;
    rec.type = static_cast<RecordType>(type);
    rec.sequence = seq;
    rec.payload.assign(p + at + kRecordPrefixBytes,
                       p + at + kRecordPrefixBytes + payload_bytes);
    out.records.push_back(std::move(rec));
    ++expected_seq;
    at += frame;
  }
  if (out.tail_note.empty()) out.valid_bytes = bytes.size();
  out.next_sequence = expected_seq;
  out.sealed =
      !out.records.empty() && out.records.back().type == RecordType::kSeal;

  m.replayed.inc(out.records.size());
  if (out.dropped_bytes > 0) {
    m.truncated_tails.inc();
    m.truncated_bytes.inc(out.dropped_bytes);
    obs::trace_instant("journal.truncate", "journal", out.valid_bytes,
                       out.dropped_bytes);
  }
  return out;
}

util::Status truncate_journal(const std::string& path,
                              std::uint64_t valid_bytes) {
#ifndef _WIN32
  if (truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
    return errno_failure("cannot truncate", path);
  return util::Status{};
#else
  (void)path;
  (void)valid_bytes;
  return util::Status::failure("journal: truncate unsupported on this platform");
#endif
}

}  // namespace mcopt::runtime::durable
