#include "arch/numa.h"

#include <gtest/gtest.h>

namespace mcopt::arch {
namespace {

TEST(NodeTopology, DefaultsAreValidTwoSocketNode) {
  const NodeTopology node;
  EXPECT_TRUE(node.check().ok()) << node.check().error().message;
  EXPECT_EQ(node.num_sockets, 2u);
  EXPECT_FALSE(node.single_socket());
  EXPECT_NO_THROW(node.validate());
}

TEST(NodeTopology, SingleSocketDegeneratesToPlainChip) {
  NodeTopology node;
  node.num_sockets = 1;
  EXPECT_TRUE(node.single_socket());
  EXPECT_TRUE(node.check().ok());
  // Every address is home to the only socket.
  EXPECT_EQ(node.home_socket_of(0), 0u);
  EXPECT_EQ(node.home_socket_of(Addr{123} << 32), 0u);
}

TEST(NodeTopology, HomeDecodeCarvesContiguousDomains) {
  NodeTopology node;
  node.num_sockets = 4;
  node.home_shift = 32;
  EXPECT_EQ(node.domain_bytes(), std::uint64_t{1} << 32);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(node.home_socket_of(node.socket_base(s)), s);
    EXPECT_EQ(node.home_socket_of(node.socket_base(s) + node.domain_bytes() - 1),
              s);
  }
  // The pattern repeats above the top domain (field wraps).
  EXPECT_EQ(node.home_socket_of(node.socket_base(4)), 0u);
}

TEST(NodeTopology, PageScaleHomeShiftInterleavesArrays) {
  NodeTopology node;
  node.num_sockets = 2;
  node.home_shift = 12;  // 4 KiB pages round-robin across sockets
  EXPECT_EQ(node.home_socket_of(0), 0u);
  EXPECT_EQ(node.home_socket_of(Addr{1} << 12), 1u);
  EXPECT_EQ(node.home_socket_of(Addr{2} << 12), 0u);
  EXPECT_TRUE(node.check().ok());
}

TEST(NodeTopology, UniformDistanceDefaults) {
  const NodeTopology node;
  EXPECT_EQ(node.latency(0, 0), 0u);
  EXPECT_EQ(node.latency(0, 1), node.remote_latency);
  EXPECT_EQ(node.latency(1, 0), node.remote_latency);
  EXPECT_EQ(node.link_cycles(0, 0), 0u);
  EXPECT_EQ(node.link_cycles(0, 1), node.link_line_cycles);
}

TEST(NodeTopology, MatrixOverridesWinOverUniformCosts) {
  NodeTopology node;
  node.num_sockets = 2;
  node.latency_matrix = {0, 200, 80, 0};
  node.link_cycle_matrix = {0, 32, 8, 0};
  EXPECT_TRUE(node.check().ok()) << node.check().error().message;
  EXPECT_EQ(node.latency(0, 1), 200u);
  EXPECT_EQ(node.latency(1, 0), 80u);
  EXPECT_EQ(node.link_cycles(0, 1), 32u);
  EXPECT_EQ(node.link_cycles(1, 0), 8u);
  EXPECT_EQ(node.latency(0, 0), 0u);
}

TEST(NodeTopology, CheckRejectsBadShapes) {
  {
    NodeTopology node;  // not a power of two
    node.num_sockets = 3;
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // beyond kMaxSockets
    node.num_sockets = 16;
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // home_shift out of range
    node.home_shift = 8;
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // infinite-bandwidth link
    node.link_line_cycles = 0;
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // wrong matrix size
    node.latency_matrix = {0, 1, 2};
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // nonzero diagonal
    node.latency_matrix = {5, 100, 100, 0};
    EXPECT_FALSE(node.check().ok());
  }
  {
    NodeTopology node;  // zero off-diagonal link cycles
    node.link_cycle_matrix = {0, 0, 16, 0};
    EXPECT_FALSE(node.check().ok());
  }
  NodeTopology bad;
  bad.num_sockets = 5;
  EXPECT_THROW(bad.validate(), std::exception);
}

TEST(NodeTopology, ParseDistanceSetsUniformCosts) {
  NodeTopology base;
  base.latency_matrix = {0, 1, 1, 0};  // overrides must be cleared
  base.link_cycle_matrix = {0, 2, 2, 0};
  const auto parsed = parse_distance("200:32", base);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed.value().remote_latency, 200u);
  EXPECT_EQ(parsed.value().link_line_cycles, 32u);
  EXPECT_TRUE(parsed.value().latency_matrix.empty());
  EXPECT_TRUE(parsed.value().link_cycle_matrix.empty());
  EXPECT_EQ(parsed.value().latency(0, 1), 200u);
  EXPECT_EQ(parsed.value().link_cycles(0, 1), 32u);
}

TEST(NodeTopology, ParseDistanceRejectsGarbage) {
  const NodeTopology base;
  EXPECT_FALSE(parse_distance("", base).has_value());
  EXPECT_FALSE(parse_distance("120", base).has_value());
  EXPECT_FALSE(parse_distance("abc:16", base).has_value());
  EXPECT_FALSE(parse_distance("120:xyz", base).has_value());
  EXPECT_FALSE(parse_distance("-5:16", base).has_value());
  EXPECT_FALSE(parse_distance("120:1e300", base).has_value());
}

}  // namespace
}  // namespace mcopt::arch
