#pragma once
// Deterministic model of OpenMP loop scheduling.
//
// The paper's results hinge on the schedule: STREAM uses "static" (one
// contiguous chunk per thread, which is what makes all chunk base addresses
// congruent), the Jacobi solver needs "static,1" (round-robin rows, Sect.
// 2.3), and the LBM "modulo effect" comes from N not dividing evenly by the
// thread count unless outer loops are coalesced. The simulator replays
// exactly these partitions; the native kernels use real OpenMP with the
// matching schedule clause.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::sched {

/// Half-open iteration range [begin, end).
struct IterRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
  friend bool operator==(const IterRange&, const IterRange&) = default;
};

enum class ScheduleKind {
  kStatic,       ///< one contiguous chunk per thread (OpenMP default static)
  kStaticChunk,  ///< round-robin chunks of fixed size ("static,c")
  kDynamic,      ///< modeled as round-robin chunks (deterministic stand-in)
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::kStatic;
  std::size_t chunk = 1;  ///< used by kStaticChunk / kDynamic

  [[nodiscard]] static Schedule static_block() { return {ScheduleKind::kStatic, 0}; }
  [[nodiscard]] static Schedule static_chunk(std::size_t c) {
    return {ScheduleKind::kStaticChunk, c};
  }
  [[nodiscard]] std::string describe() const;

  /// Non-throwing validation: chunked kinds need an explicit chunk >= 1 and
  /// a sane bound (a chunk of 0 used to be silently coerced to 1).
  [[nodiscard]] util::Status check() const;
  /// Throwing wrapper around check().
  void validate() const;
};

/// Chunks executed by thread `t` of `num_threads` over `n` iterations,
/// in execution order. Matches libgomp semantics for the static schedules.
[[nodiscard]] std::vector<IterRange> chunks_for_thread(std::size_t n,
                                                       unsigned num_threads,
                                                       unsigned t,
                                                       const Schedule& schedule);

/// All threads' chunks: result[t] = chunks_for_thread(..., t, ...).
[[nodiscard]] std::vector<std::vector<IterRange>> partition(std::size_t n,
                                                            unsigned num_threads,
                                                            const Schedule& schedule);

/// Index mapping for two coalesced ("collapsed") loop levels: flattening
/// (i in [0,n_outer)) x (j in [0,n_inner)) into one parallel loop of
/// n_outer*n_inner iterations, the paper's fix for the LBM modulo effect.
struct Collapse2 {
  std::size_t n_outer = 0;
  std::size_t n_inner = 0;

  [[nodiscard]] std::size_t size() const noexcept { return n_outer * n_inner; }
  [[nodiscard]] std::size_t outer(std::size_t flat) const noexcept {
    return flat / n_inner;
  }
  [[nodiscard]] std::size_t inner(std::size_t flat) const noexcept {
    return flat % n_inner;
  }
  [[nodiscard]] std::size_t flatten(std::size_t i, std::size_t j) const noexcept {
    return i * n_inner + j;
  }
};

}  // namespace mcopt::sched
