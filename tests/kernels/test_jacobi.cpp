#include "kernels/jacobi.h"

#include <gtest/gtest.h>

#include <vector>

namespace mcopt::kernels {
namespace {

TEST(JacobiGrid, ShapeAndLayout) {
  const arch::AddressMap map;
  auto grid = make_jacobi_grid(16, jacobi_optimal_spec(map));
  EXPECT_EQ(grid.num_segments(), 16u);
  EXPECT_EQ(grid.size(), 256u);
  // Optimal layout: rows aligned to 512 with cumulative 128-byte shift.
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_EQ(grid.address_of(r, 0) % 512, r * 128 % 512) << "row " << r;
  EXPECT_THROW(make_jacobi_grid(2, jacobi_plain_spec()), std::invalid_argument);
}

TEST(JacobiInit, DirichletBoundary) {
  auto grid = make_jacobi_grid(8, jacobi_plain_spec());
  init_jacobi(grid);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      const bool edge = i == 0 || i == 7 || j == 0 || j == 7;
      EXPECT_DOUBLE_EQ(grid.segment(i)[j], edge ? 1.0 : 0.0);
    }
}

TEST(JacobiSweep, MatchesReferenceImplementation) {
  const std::size_t n = 24;
  auto src = make_jacobi_grid(n, jacobi_optimal_spec(arch::AddressMap{}));
  auto dst = make_jacobi_grid(n, jacobi_optimal_spec(arch::AddressMap{}));
  init_jacobi(src);
  init_jacobi(dst);

  std::vector<double> ref_src(n * n), ref_dst(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ref_dst[i * n + j] = ref_src[i * n + j] = src.segment(i)[j];

  for (int sweep = 0; sweep < 5; ++sweep) {
    jacobi_sweep_seconds(src, dst, sched::Schedule::static_chunk(1));
    jacobi_reference_sweep(ref_src, ref_dst, n);
    std::swap(src, dst);
    std::swap(ref_src, ref_dst);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_NEAR(src.segment(i)[j], ref_src[i * n + j], 1e-14)
          << "(" << i << "," << j << ")";
}

TEST(JacobiSweep, ScheduleDoesNotChangeResult) {
  const std::size_t n = 20;
  auto run = [&](const sched::Schedule& schedule) {
    auto src = make_jacobi_grid(n, jacobi_plain_spec());
    auto dst = make_jacobi_grid(n, jacobi_plain_spec());
    init_jacobi(src);
    init_jacobi(dst);
    for (int sweep = 0; sweep < 4; ++sweep) {
      jacobi_sweep_seconds(src, dst, schedule);
      std::swap(src, dst);
    }
    return src;
  };
  const auto a = run(sched::Schedule::static_block());
  const auto b = run(sched::Schedule::static_chunk(1));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_DOUBLE_EQ(a.segment(i)[j], b.segment(i)[j]);
}

TEST(JacobiSweep, ConvergesTowardHarmonicSolution) {
  // With all-1 boundary and 0 interior, the solution is identically 1.
  const std::size_t n = 12;
  auto src = make_jacobi_grid(n, jacobi_plain_spec());
  auto dst = make_jacobi_grid(n, jacobi_plain_spec());
  init_jacobi(src);
  init_jacobi(dst);
  double delta = 1.0;
  for (int sweep = 0; sweep < 500 && delta > 1e-10; ++sweep) {
    jacobi_sweep_seconds(src, dst, sched::Schedule::static_block());
    delta = jacobi_max_delta(src, dst);
    std::swap(src, dst);
  }
  EXPECT_LE(delta, 1e-10);
  for (std::size_t i = 1; i + 1 < n; ++i)
    for (std::size_t j = 1; j + 1 < n; ++j)
      EXPECT_NEAR(src.segment(i)[j], 1.0, 1e-7);
}

TEST(JacobiMaxDelta, DetectsDifference) {
  auto a = make_jacobi_grid(5, jacobi_plain_spec());
  auto b = make_jacobi_grid(5, jacobi_plain_spec());
  init_jacobi(a);
  init_jacobi(b);
  EXPECT_DOUBLE_EQ(jacobi_max_delta(a, b), 0.0);
  b.segment(2)[2] = 0.5;
  EXPECT_DOUBLE_EQ(jacobi_max_delta(a, b), 0.5);
}

TEST(JacobiReference, RejectsBadSizes) {
  std::vector<double> a(9), b(16);
  EXPECT_THROW(jacobi_reference_sweep(a, b, 4), std::invalid_argument);
}

TEST(VirtualJacobi, LayoutMatchesNativeGrid) {
  const arch::AddressMap map;
  const auto spec = jacobi_optimal_spec(map);
  trace::VirtualArena arena;
  const auto virt = make_virtual_jacobi(arena, 10, spec);
  const auto native = make_jacobi_grid(10, spec);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(virt.source.segment_base(r) - virt.source.base(),
              native.segment_position(r));
  }
  EXPECT_EQ(virt.grids().n, 10u);
  EXPECT_THROW(make_virtual_jacobi(arena, 2, spec), std::invalid_argument);
}

TEST(JacobiSpecs, PlainVsOptimalBalance) {
  // The planner's row layout spreads consecutive rows over all controllers;
  // the plain layout with a power-of-two row length does not.
  const arch::AddressMap map;
  trace::VirtualArena arena;
  const std::size_t n = 64;  // row = 512 bytes: worst case for plain
  const auto plain = make_virtual_jacobi(arena, n, jacobi_plain_spec());
  const auto opt = make_virtual_jacobi(arena, n, jacobi_optimal_spec(map));
  std::vector<arch::Addr> plain_rows, opt_rows;
  for (std::size_t r = 1; r <= 4; ++r) {
    plain_rows.push_back(plain.source.segment_base(r));
    opt_rows.push_back(opt.source.segment_base(r));
  }
  EXPECT_LE(map.lockstep_balance(plain_rows, 8), 0.26);
  EXPECT_GE(map.lockstep_balance(opt_rows, 8), 0.99);
}

TEST(JacobiRebuild, RowRebuildIsBitwiseExact) {
  const std::size_t n = 32;
  auto src = make_jacobi_grid(n, jacobi_plain_spec());
  auto dst = make_jacobi_grid(n, jacobi_plain_spec());
  init_jacobi(src);
  init_jacobi(dst);
  // A few sweeps so the field has non-trivial values.
  for (int sweep = 0; sweep < 5; ++sweep) {
    jacobi_sweep_seconds(src, dst, sched::Schedule::static_block());
    std::swap(src, dst);
  }
  // After the swap, `src` is the current field, `dst` the previous one.
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> expected(src.segment(s).begin(), src.segment(s).end());
    // Corrupt the row, then rebuild it from the previous field.
    for (std::size_t j = 0; j < n; ++j) src.segment(s)[j] = -1e308;
    jacobi_rebuild_row(src, dst, s);
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(src.segment(s)[j], expected[j]) << "row " << s << " col " << j;
  }
}

TEST(JacobiRebuild, RejectsMismatchedAndOutOfRange) {
  auto a = make_jacobi_grid(16, jacobi_plain_spec());
  auto b = make_jacobi_grid(16, jacobi_plain_spec());
  auto small = make_jacobi_grid(8, jacobi_plain_spec());
  EXPECT_THROW(jacobi_rebuild_row(a, small, 1), std::invalid_argument);
  EXPECT_THROW(jacobi_rebuild_row(a, b, 16), std::out_of_range);
}

}  // namespace
}  // namespace mcopt::kernels
