#include "obs/attribution.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/csv.h"

namespace mcopt::obs {
namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

struct Reader {
  const std::uint8_t* p;
  std::size_t left;

  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }
};

/// Registry counters mirroring the grand totals, so attribution shows up in
/// the Prometheus/JSON exports without a separate scrape of the ledger.
struct AttrMetrics {
  Counter& served_bytes;
  Counter& shed_events;
  Counter& scrub_bytes;
  Counter& probe_bytes;
  Counter& migration_bytes;

  static AttrMetrics& instance() {
    static AttrMetrics m{
        MetricsRegistry::instance().counter(
            "mcopt_attr_served_bytes_total",
            "bytes served, attributed to (tenant, socket, controller)"),
        MetricsRegistry::instance().counter(
            "mcopt_attr_shed_events_total",
            "shed verdicts attributed to (tenant, shed reason)"),
        MetricsRegistry::instance().counter(
            "mcopt_attr_scrub_bytes_total", "bytes re-verified by scrubs"),
        MetricsRegistry::instance().counter(
            "mcopt_attr_probe_bytes_total", "bytes moved by canary probes"),
        MetricsRegistry::instance().counter(
            "mcopt_attr_migration_bytes_total",
            "bytes copied by shard migrations"),
    };
    return m;
  }
};

void mirror_to_registry(Charge charge, std::uint64_t bytes,
                        std::uint64_t count) {
  AttrMetrics& m = AttrMetrics::instance();
  switch (charge) {
    case Charge::kServed: m.served_bytes.inc(bytes); break;
    case Charge::kShed: m.shed_events.inc(count); break;
    case Charge::kScrub: m.scrub_bytes.inc(bytes); break;
    case Charge::kProbe: m.probe_bytes.inc(bytes); break;
    case Charge::kMigration: m.migration_bytes.inc(bytes); break;
  }
}

}  // namespace

const char* charge_name(Charge c) noexcept {
  switch (c) {
    case Charge::kServed: return "served";
    case Charge::kShed: return "shed";
    case Charge::kScrub: return "scrub";
    case Charge::kProbe: return "probe";
    case Charge::kMigration: return "migration";
  }
  return "?";
}

Attribution& Attribution::instance() noexcept {
  static Attribution ledger;
  return ledger;
}

void Attribution::set_controllers_per_socket(unsigned n) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  if (n > 0) controllers_per_socket_ = n;
}

std::int32_t Attribution::socket_of(std::int32_t controller) const noexcept {
  if (controller < 0) return -1;
  return controller / static_cast<std::int32_t>(controllers_per_socket_);
}

void Attribution::charge(std::uint32_t tenant, std::int32_t controller,
                         Charge charge, std::uint32_t reason,
                         std::uint64_t bytes, std::uint64_t count) {
  mirror_to_registry(charge, bytes, count);
  const std::lock_guard<std::mutex> lock(mu_);
  AttributionKey key{tenant, socket_of(controller), controller, charge,
                     reason};
  AttributionCell& cell = cells_[key];
  cell.key = key;
  cell.bytes += bytes;
  cell.count += count;
}

void Attribution::charge_spread(std::uint32_t tenant,
                                const std::vector<unsigned>& controllers,
                                Charge kind, std::uint32_t reason,
                                std::uint64_t bytes) {
  if (controllers.empty()) {
    charge(tenant, -1, kind, reason, bytes);
    return;
  }
  const std::uint64_t n = controllers.size();
  const std::uint64_t base = bytes / n;
  const std::uint64_t extra = bytes % n;
  for (std::uint64_t i = 0; i < n; ++i)
    charge(tenant, static_cast<std::int32_t>(controllers[i]), kind, reason,
           base + (i < extra ? 1 : 0), i == 0 ? 1 : 0);
}

void Attribution::charge_mask(std::uint32_t tenant, std::uint32_t mask,
                              Charge kind, std::uint32_t reason,
                              std::uint64_t bytes) {
  std::vector<unsigned> controllers;
  for (unsigned i = 0; i < 32; ++i)
    if ((mask >> i) & 1u) controllers.push_back(i);
  charge_spread(tenant, controllers, kind, reason, bytes);
}

std::vector<AttributionCell> Attribution::cells() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<AttributionCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.push_back(cell);
  return out;
}

std::uint64_t Attribution::tenant_bytes(std::uint32_t tenant,
                                        Charge charge) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, cell] : cells_)
    if (key.tenant == tenant && key.charge == charge) total += cell.bytes;
  return total;
}

std::uint64_t Attribution::tenant_count(std::uint32_t tenant,
                                        Charge charge) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, cell] : cells_)
    if (key.tenant == tenant && key.charge == charge) total += cell.count;
  return total;
}

std::string Attribution::json() const {
  const std::vector<AttributionCell> all = cells();
  // Per-tenant rollups and grand totals, computed from the cells so the
  // document is internally consistent by construction.
  std::map<std::uint32_t, std::array<std::uint64_t, 2>> tenants;  // b, n
  std::map<Charge, std::array<std::uint64_t, 2>> totals;
  for (const AttributionCell& c : all) {
    totals[c.key.charge][0] += c.bytes;
    totals[c.key.charge][1] += c.count;
    if (c.key.charge == Charge::kServed) {
      tenants[c.key.tenant][0] += c.bytes;
    } else if (c.key.charge == Charge::kShed) {
      tenants[c.key.tenant][1] += c.count;
    }
  }
  std::string out = "{\"cells\":[";
  char buf[192];
  bool first = true;
  for (const AttributionCell& c : all) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"tenant\":%u,\"socket\":%d,\"controller\":%d,"
                  "\"charge\":\"%s\",\"reason\":%u,\"bytes\":%llu,"
                  "\"count\":%llu}",
                  first ? "" : ",", c.key.tenant, c.key.socket,
                  c.key.controller, charge_name(c.key.charge), c.key.reason,
                  static_cast<unsigned long long>(c.bytes),
                  static_cast<unsigned long long>(c.count));
    out += buf;
    first = false;
  }
  out += "],\"tenants\":[";
  first = true;
  for (const auto& [tenant, bn] : tenants) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"tenant\":%u,\"served_bytes\":%llu,\"sheds\":%llu}",
                  first ? "" : ",", tenant,
                  static_cast<unsigned long long>(bn[0]),
                  static_cast<unsigned long long>(bn[1]));
    out += buf;
    first = false;
  }
  out += "],\"totals\":{";
  first = true;
  for (const auto& [charge, bn] : totals) {
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\":{\"bytes\":%llu,\"count\":%llu}",
                  first ? "" : ",", charge_name(charge),
                  static_cast<unsigned long long>(bn[0]),
                  static_cast<unsigned long long>(bn[1]));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

util::Status Attribution::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status::failure("attribution: cannot write '" + path + "'");
  const std::string doc = json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || !ok)
    return util::Status::failure("attribution: write failed for '" + path +
                                 "'");
  return util::Status{};
}

util::Status Attribution::write_csv(const std::string& path) const {
  try {
    util::CsvWriter csv(path, {"tenant", "socket", "controller", "charge",
                               "reason", "bytes", "count"});
    for (const AttributionCell& c : cells()) {
      csv.add_row({std::to_string(c.key.tenant), std::to_string(c.key.socket),
                   std::to_string(c.key.controller),
                   charge_name(c.key.charge), std::to_string(c.key.reason),
                   std::to_string(c.bytes), std::to_string(c.count)});
    }
    return csv.close();
  } catch (const std::exception& e) {
    return util::Status::failure(std::string("attribution csv: ") + e.what());
  }
}

std::vector<std::uint8_t> Attribution::encode() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint8_t> out;
  put_u32(out, kSnapshotVersion);
  put_u32(out, controllers_per_socket_);
  put_u64(out, cells_.size());
  for (const auto& [key, cell] : cells_) {
    put_u32(out, key.tenant);
    put_u32(out, static_cast<std::uint32_t>(key.socket));
    put_u32(out, static_cast<std::uint32_t>(key.controller));
    put_u32(out, static_cast<std::uint32_t>(key.charge));
    put_u32(out, key.reason);
    put_u64(out, cell.bytes);
    put_u64(out, cell.count);
  }
  return out;
}

util::Status Attribution::restore(const std::vector<std::uint8_t>& bytes) {
  Reader r{bytes.data(), bytes.size()};
  std::uint32_t version = 0;
  std::uint32_t per_socket = 0;
  std::uint64_t n = 0;
  if (!r.u32(version) || !r.u32(per_socket) || !r.u64(n))
    return util::Status::failure("attribution snapshot: truncated header");
  if (version != kSnapshotVersion)
    return util::Status::failure("attribution snapshot: version " +
                                 std::to_string(version) + " unsupported");
  if (per_socket == 0)
    return util::Status::failure(
        "attribution snapshot: zero controllers per socket");
  std::map<AttributionKey, AttributionCell> cells;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t tenant = 0, socket = 0, controller = 0, charge = 0,
                  reason = 0;
    std::uint64_t b = 0, c = 0;
    if (!r.u32(tenant) || !r.u32(socket) || !r.u32(controller) ||
        !r.u32(charge) || !r.u32(reason) || !r.u64(b) || !r.u64(c))
      return util::Status::failure("attribution snapshot: truncated cell " +
                                   std::to_string(i));
    if (charge > static_cast<std::uint32_t>(Charge::kMigration))
      return util::Status::failure("attribution snapshot: bad charge kind " +
                                   std::to_string(charge));
    AttributionKey key{tenant, static_cast<std::int32_t>(socket),
                       static_cast<std::int32_t>(controller),
                       static_cast<Charge>(charge), reason};
    cells[key] = AttributionCell{key, b, c};
  }
  if (r.left != 0)
    return util::Status::failure("attribution snapshot: trailing bytes");
  const std::lock_guard<std::mutex> lock(mu_);
  controllers_per_socket_ = per_socket;
  cells_ = std::move(cells);
  return util::Status{};
}

void Attribution::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

}  // namespace mcopt::obs
