#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcopt::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "/mcopt_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.add_row({"1", "2"});
    w.add_row({"3", "4"});
    EXPECT_EQ(w.rows(), 2u);
  }
  EXPECT_EQ(slurp(path_), "x,y\n1,2\n3,4\n");
}

TEST_F(CsvTest, RejectsMismatchedRow) {
  CsvWriter w(path_, {"x", "y"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
}

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterErrors, UnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/f.csv", {"a"}), std::runtime_error);
}

TEST(CsvWriterErrors, EmptyHeader) {
  const std::string path = testing::TempDir() + "/mcopt_csv_hdr.csv";
  EXPECT_THROW(CsvWriter(path, {}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcopt::util
