#include "kernels/lbm/geometry.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "kernels/lbm/lattice.h"

namespace mcopt::kernels::lbm {
namespace {

TEST(Lattice, VelocitySetIsD3Q19) {
  EXPECT_EQ(kQ, 19u);
  int rest = 0, axis = 0, diag = 0;
  for (const auto& c : kVelocity) {
    const int norm2 = c[0] * c[0] + c[1] * c[1] + c[2] * c[2];
    if (norm2 == 0) ++rest;
    if (norm2 == 1) ++axis;
    if (norm2 == 2) ++diag;
  }
  EXPECT_EQ(rest, 1);
  EXPECT_EQ(axis, 6);
  EXPECT_EQ(diag, 12);
}

TEST(Lattice, WeightsSumToOne) {
  double sum = 0.0;
  for (double w : kWeight) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

TEST(Lattice, VelocityFirstMomentVanishes) {
  for (int d = 0; d < 3; ++d) {
    double m = 0.0;
    for (std::size_t v = 0; v < kQ; ++v) m += kWeight[v] * kVelocity[v][d];
    EXPECT_NEAR(m, 0.0, 1e-15);
  }
}

TEST(Lattice, SecondMomentIsIsotropicThird) {
  // sum_v w_v c_va c_vb = (1/3) delta_ab for D3Q19.
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      double m = 0.0;
      for (std::size_t v = 0; v < kQ; ++v)
        m += kWeight[v] * kVelocity[v][a] * kVelocity[v][b];
      EXPECT_NEAR(m, a == b ? 1.0 / 3.0 : 0.0, 1e-15);
    }
}

TEST(Lattice, OppositeIsInvolutionAndNegates) {
  for (std::size_t v = 0; v < kQ; ++v) {
    EXPECT_EQ(kOpposite[kOpposite[v]], v);
    for (int d = 0; d < 3; ++d)
      EXPECT_EQ(kVelocity[kOpposite[v]][d], -kVelocity[v][d]);
  }
}

TEST(Lattice, EquilibriumMomentsMatch) {
  const double rho = 1.1;
  const double ux = 0.03, uy = -0.02, uz = 0.01;
  double sum = 0.0, mx = 0.0, my = 0.0, mz = 0.0;
  for (std::size_t v = 0; v < kQ; ++v) {
    const double f = equilibrium(v, rho, ux, uy, uz);
    sum += f;
    mx += f * kVelocity[v][0];
    my += f * kVelocity[v][1];
    mz += f * kVelocity[v][2];
  }
  EXPECT_NEAR(sum, rho, 1e-12);
  EXPECT_NEAR(mx, rho * ux, 1e-12);
  EXPECT_NEAR(my, rho * uy, 1e-12);
  EXPECT_NEAR(mz, rho * uz, 1e-12);
}

TEST(Lattice, Viscosity) {
  EXPECT_NEAR(viscosity(0.5), 0.0, 1e-15);
  EXPECT_NEAR(viscosity(0.8), 0.1, 1e-15);
}

TEST(Geometry, ExtentsIncludeGhostsAndPadding) {
  Geometry g{10, 12, 14, 6, DataLayout::kIJKv};
  EXPECT_EQ(g.ex(), 18u);
  EXPECT_EQ(g.ey(), 14u);
  EXPECT_EQ(g.ez(), 16u);
  EXPECT_EQ(g.interior_cells(), 10u * 12 * 14);
  EXPECT_EQ(g.f_elems(), 2u * 19 * 18 * 14 * 16);
  EXPECT_NO_THROW(g.validate());
  g.nx = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Geometry, RejectsWrappingExtents) {
  // nx so large that ex() = nx + 2 wraps size_t to a tiny value: a naive
  // product-budget check would see a small element count and pass.
  Geometry g{std::numeric_limits<std::size_t>::max() - 1, 1, 1, 0,
             DataLayout::kIJKv};
  EXPECT_FALSE(g.check().ok());
  // Same trick through pad_x.
  Geometry padded{8, 8, 8, std::numeric_limits<std::size_t>::max() - 8,
                  DataLayout::kIJKv};
  EXPECT_FALSE(padded.check().ok());
}

class IndexBijection : public ::testing::TestWithParam<DataLayout> {};

TEST_P(IndexBijection, FIndexIsInjectiveAndInBounds) {
  Geometry g{4, 3, 2, 1, GetParam()};
  std::set<std::size_t> seen;
  for (std::size_t t = 0; t < 2; ++t)
    for (std::size_t z = 0; z < g.ez(); ++z)
      for (std::size_t y = 0; y < g.ey(); ++y)
        for (std::size_t v = 0; v < kQ; ++v)
          for (std::size_t x = 0; x < g.ex(); ++x) {
            const std::size_t idx = g.f_index(x, y, z, v, t);
            ASSERT_LT(idx, g.f_elems());
            ASSERT_TRUE(seen.insert(idx).second)
                << "collision at " << x << "," << y << "," << z << "," << v;
          }
  EXPECT_EQ(seen.size(), g.f_elems());
}

INSTANTIATE_TEST_SUITE_P(Layouts, IndexBijection,
                         ::testing::Values(DataLayout::kIJKv, DataLayout::kIvJK));

TEST(Geometry, IJKvStridesAreSoA) {
  Geometry g{8, 8, 8, 0, DataLayout::kIJKv};
  // x is fastest; v stride = whole spatial array.
  EXPECT_EQ(g.f_index(2, 0, 0, 0, 0) - g.f_index(1, 0, 0, 0, 0), 1u);
  EXPECT_EQ(g.f_index(0, 0, 0, 1, 0) - g.f_index(0, 0, 0, 0, 0),
            g.ex() * g.ey() * g.ez());
}

TEST(Geometry, IvJKStridesInterleaveV) {
  Geometry g{8, 8, 8, 0, DataLayout::kIvJK};
  // x fastest, v stride = one x-row.
  EXPECT_EQ(g.f_index(2, 0, 0, 0, 0) - g.f_index(1, 0, 0, 0, 0), 1u);
  EXPECT_EQ(g.f_index(0, 0, 0, 1, 0) - g.f_index(0, 0, 0, 0, 0), g.ex());
}

TEST(Geometry, PaddingChangesRowStride) {
  Geometry plain{62, 62, 62, 0, DataLayout::kIJKv};
  Geometry padded{62, 62, 62, 2, DataLayout::kIJKv};
  // 62+2 = 64 elements = 512 bytes: a power-of-two row. Padding breaks it.
  EXPECT_EQ(plain.f_index(0, 1, 0, 0, 0) - plain.f_index(0, 0, 0, 0, 0), 64u);
  EXPECT_EQ(padded.f_index(0, 1, 0, 0, 0) - padded.f_index(0, 0, 0, 0, 0), 66u);
}

TEST(Geometry, CellIndexCoversMask) {
  Geometry g{3, 4, 5, 0, DataLayout::kIJKv};
  std::set<std::size_t> seen;
  for (std::size_t z = 0; z < g.ez(); ++z)
    for (std::size_t y = 0; y < g.ey(); ++y)
      for (std::size_t x = 0; x < g.ex(); ++x)
        ASSERT_TRUE(seen.insert(g.cell_index(x, y, z)).second);
  EXPECT_EQ(seen.size(), g.cells());
}

TEST(Geometry, LayoutNames) {
  EXPECT_STREQ(to_string(DataLayout::kIJKv), "IJKv");
  EXPECT_STREQ(to_string(DataLayout::kIvJK), "IvJK");
}

}  // namespace
}  // namespace mcopt::kernels::lbm
