#pragma once
// Transient-fault timeline for the simulated memory subsystem.
//
// FaultSpec (faults.h) models a chip that is *born* degraded: faults are
// fixed for the whole run. Real machines degrade mid-run — a DIMM drops a
// speed bin during hour 3, firmware offlines a channel, a throttled strand
// recovers. A FaultSchedule is a deterministic timeline of such events: each
// interval activates one FaultSpec fault class over a cycle range, the chip
// applies/retires the events during its event loop, and SimResult gains a
// per-epoch breakdown (epoch boundaries = fault transitions). Everything is
// integer cycles, so scheduled-fault runs stay exactly reproducible.
//
// Grammar (the bench `--schedule` knob) extends the --fault grammar with an
// optional "@" time stamp per item:
//
//   mc1:off@1e6..5e6        controller 1 offline during cycles [1e6, 5e6)
//   mc2:derate=0.5@2e6      controller 2 at half rate from cycle 2e6 onward
//   bank3:slow=20@10%..60%  bank 3 slowed during 10%..60% of the run
//   strand7:lag=8           no stamp: active for the whole run
//   sock1:flap=4e5@20%..80% socket 1 oscillates dead/alive with a 4e5-cycle
//                           period (dead the first half of each period)
//
// Percent bounds are relative to a run horizon and must be resolved with
// resolved(horizon) before the schedule reaches the chip. A flap interval is
// syntactic sugar: resolved() expands it into the alternating sock:off
// intervals it denotes (so the chip, epochs() and event_count() all see the
// real transition timeline), which is why flap intervals must carry a
// bounded end stamp.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "sim/faults.h"
#include "util/expected.h"

namespace mcopt::sim {

/// Deterministic timeline of transient faults. Default: empty (healthy).
struct FaultSchedule {
  /// Sentinel for "never clears".
  static constexpr arch::Cycles kNever = ~arch::Cycles{0};

  /// One timed fault: `fault` active during [begin, end) simulated cycles.
  struct Interval {
    FaultSpec fault;
    arch::Cycles begin = 0;
    arch::Cycles end = kNever;
    /// Percent-relative bounds ("@25%..75%"): begin/end above are not
    /// meaningful until resolved() maps the fractions onto a horizon.
    bool relative = false;
    double begin_frac = 0.0;
    double end_frac = -1.0;  ///< < 0 = never clears
    /// Flap period in cycles (sock<i>:flap=<period>); 0 = plain interval.
    /// The fault (one offline socket) is active during the first half of
    /// each period. Expanded by resolved(); requires a bounded end.
    arch::Cycles flap_period = 0;
  };
  std::vector<Interval> intervals;

  [[nodiscard]] bool empty() const noexcept { return intervals.empty(); }
  /// True if any interval still carries unresolved percent bounds.
  [[nodiscard]] bool has_relative() const noexcept;
  /// True if any interval is an unexpanded flap (resolved() expands them).
  [[nodiscard]] bool has_flap() const noexcept;

  /// Copy with percent bounds mapped onto [0, horizon] cycles (absolute
  /// intervals pass through unchanged) and flap intervals expanded into
  /// their alternating off intervals.
  [[nodiscard]] FaultSchedule resolved(arch::Cycles horizon) const;

  /// Copy with every bound moved `offset` cycles earlier: bounds clamp at 0
  /// and intervals that end at or before the new origin are dropped. Sliced
  /// supervision replays slice k against shifted(global_start_of_slice_k).
  /// Requires a resolved schedule.
  [[nodiscard]] FaultSchedule shifted(arch::Cycles offset) const;

  /// Merged fault set active at `cycle`: `baseline` unioned with every
  /// interval covering the cycle (FaultSpec::merged semantics).
  [[nodiscard]] FaultSpec active_at(arch::Cycles cycle,
                                    const FaultSpec& baseline = {}) const;

  /// Sorted, deduplicated transition cycles (every interval begin and every
  /// bounded end), excluding 0. Requires a resolved schedule.
  [[nodiscard]] std::vector<arch::Cycles> transitions() const;

  /// Number of arrive/clear events (bounded ends count, kNever does not).
  /// This is the budget the chaos harness holds replan counts against.
  [[nodiscard]] std::size_t event_count() const noexcept;

  /// One run split at fault transitions: contiguous [begin, end) epochs
  /// covering [0, horizon) (the final epoch ends at `horizon`, or kNever when
  /// horizon == kNever), each carrying the merged active spec.
  struct Epoch {
    arch::Cycles begin = 0;
    arch::Cycles end = kNever;
    FaultSpec faults;
  };
  [[nodiscard]] std::vector<Epoch> epochs(arch::Cycles horizon,
                                          const FaultSpec& baseline = {}) const;

  /// Semantic validation: every interval's fault spec must be check()-clean
  /// against the interleave, begin < end, and the *merged* active set of any
  /// epoch must keep at least one controller serving traffic (overlapping
  /// intervals may not offline the whole chip). Percent bounds must lie in
  /// [0, 100] with begin < end. Reports every violation at once.
  /// `num_sockets` bounds sock/link classes exactly as FaultSpec::check —
  /// including "at least one socket's memory survives every epoch".
  [[nodiscard]] util::Status check(const arch::InterleaveSpec& spec,
                                   unsigned num_sockets = 1) const;

  /// Human-readable one-liner ("mc1:off@1000..5000 ...", "empty").
  [[nodiscard]] std::string describe() const;

  /// Parses the extended grammar above. An empty string parses to the empty
  /// schedule. Grammar-checked only; call check() afterwards. The
  /// FaultLimits overload rejects out-of-range indices at parse time
  /// (FaultSpec::parse semantics).
  [[nodiscard]] static util::Expected<FaultSchedule> parse(const std::string& text);
  [[nodiscard]] static util::Expected<FaultSchedule> parse(
      const std::string& text, const FaultLimits& limits);

  /// Wraps a plain FaultSpec as a whole-run schedule (one unbounded interval
  /// per fault; an empty spec gives an empty schedule).
  [[nodiscard]] static FaultSchedule constant(const FaultSpec& spec);
};

}  // namespace mcopt::sim
