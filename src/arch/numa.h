#pragma once
// Multi-socket (NUMA) node topology: N identical chips joined by a modeled
// coherent interconnect with per-socket memory domains.
//
// The paper studies one UltraSPARC T2; at production scale a "machine" is
// many such chips, and the dominant degradation unit becomes a whole socket
// or an inter-socket link rather than a single memory controller. Bergstrom's
// "Measuring NUMA effects with the STREAM benchmark" (PAPERS.md) grounds the
// model: local accesses see the chip's own controllers at full service rate,
// remote accesses additionally pay a per-hop latency penalty and serialize on
// the link's per-line transfer cost (the bandwidth cap), and placement policy
// (local / first-touch / page-interleaved / forced-remote) decides which of
// the two regimes each page lives in.
//
// The address space is carved into per-socket home domains by a contiguous
// bit field, mirroring how InterleaveSpec carves controller/bank fields:
//
//   home_socket_of(a) = (a >> home_shift) & (num_sockets - 1)
//
// With the default home_shift = 32 each socket owns contiguous 4 GiB
// domains ("local"/"first-touch" placement: allocate inside your own
// domain). Dropping home_shift to the page scale (e.g. 12) makes contiguous
// arrays page-interleave across all sockets — the OS "interleave" policy —
// without touching the allocator.
//
// Distance is a full (num_sockets x num_sockets) matrix of (extra fill
// latency, cycles per 64 B line) pairs; the uniform one-hop defaults cover
// the symmetric glueless case and tests/benches can override per pair.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "arch/topology.h"
#include "util/expected.h"

namespace mcopt::arch {

/// Static topology of an N-socket node. Default: two T2 sockets with a
/// symmetric one-hop interconnect calibrated so remote STREAM bandwidth
/// lands near half of local (Bergstrom's measured asymmetry).
struct NodeTopology {
  /// Socket count; power of two in [1, kMaxSockets].
  unsigned num_sockets = 2;
  static constexpr unsigned kMaxSockets = 8;

  /// Per-socket chip (sockets are identical).
  ChipTopology chip{};

  /// Bit position of the home-socket field: socket s owns addresses with
  /// (a >> home_shift) & (num_sockets - 1) == s. 32 = contiguous 4 GiB
  /// domains; page-scale values model OS interleaved placement.
  unsigned home_shift = 32;

  /// Extra fill latency (cycles) of a one-hop remote access, added on top of
  /// the serving side's DRAM latency (~100 ns of interconnect round trip).
  Cycles remote_latency = 120;

  /// Per-line transfer cost (cycles per 64 B line) of one hop: the link's
  /// bandwidth cap. 16 cycles at 1.2 GHz = 4.8 GB/s per direction, ~0.3 of
  /// one socket's local STREAM envelope — the asymmetry the cross-socket
  /// sweep bench must reproduce.
  Cycles link_line_cycles = 16;

  /// Optional per-pair overrides, row-major num_sockets^2 entries (entry
  /// i*num_sockets+j = cost i -> j). Empty = uniform one-hop costs above.
  /// Diagonal entries must be 0.
  std::vector<Cycles> latency_matrix;
  std::vector<Cycles> link_cycle_matrix;

  /// Home socket of an address.
  [[nodiscard]] constexpr unsigned home_socket_of(Addr a) const noexcept {
    return static_cast<unsigned>((a >> home_shift) & (num_sockets - 1));
  }

  /// First address of socket s's home domain (contiguous-domain layouts only;
  /// meaningless for page-interleaved home_shift values).
  [[nodiscard]] constexpr Addr socket_base(unsigned s) const noexcept {
    return static_cast<Addr>(s) << home_shift;
  }

  /// Bytes per contiguous home domain (before the pattern repeats).
  [[nodiscard]] constexpr std::uint64_t domain_bytes() const noexcept {
    return std::uint64_t{1} << home_shift;
  }

  /// Extra latency of a direct i -> j access (0 on the diagonal).
  [[nodiscard]] Cycles latency(unsigned i, unsigned j) const;

  /// Per-line transfer cycles of the direct i -> j link (0 on the diagonal).
  [[nodiscard]] Cycles link_cycles(unsigned i, unsigned j) const;

  /// True when the topology is a single socket (the degenerate chip case all
  /// pre-NUMA code paths run under).
  [[nodiscard]] constexpr bool single_socket() const noexcept {
    return num_sockets == 1;
  }

  /// Non-throwing validation; reports every violation at once.
  [[nodiscard]] util::Status check() const;
  /// Throwing wrapper around check().
  void validate() const;
};

/// Parses the bench `--distance` knob: "<latency>:<line_cycles>", e.g.
/// "120:16". Both values are uniform one-hop costs in cycles.
[[nodiscard]] util::Expected<NodeTopology> parse_distance(
    const std::string& text, NodeTopology base);

}  // namespace mcopt::arch
