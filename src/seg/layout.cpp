#include "seg/layout.h"

#include <stdexcept>

namespace mcopt::seg {
namespace {

constexpr bool is_pow2(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// Sanity ceiling for layout arithmetic: positions past this indicate a
/// size/alignment combination that would wrap std::size_t downstream.
constexpr std::size_t kMaxLayoutBytes = std::size_t{1} << 62;

}  // namespace

util::Status LayoutSpec::check() const {
  util::Status status;
  if (!is_pow2(base_align))
    status.note("LayoutSpec: base_align must be a power of two");
  if (segment_align > 1 && !is_pow2(segment_align))
    status.note("LayoutSpec: segment_align must be 0, 1 or a power of two");
  if (!shift_cycle.empty() && shift != 0)
    status.note("LayoutSpec: shift and shift_cycle are mutually exclusive");
  // An unbounded cycle entry would silently defeat the segment alignment.
  for (std::size_t displacement : shift_cycle)
    if (segment_align > 1 && displacement >= segment_align)
      status.note("LayoutSpec: shift_cycle entry " +
                  std::to_string(displacement) +
                  " must be smaller than segment_align");
  return status;
}

void LayoutSpec::validate() const { check().throw_if_failed(); }

LayoutResult compute_layout(const std::vector<std::size_t>& segment_bytes,
                            const LayoutSpec& spec) {
  spec.validate();
  LayoutResult result;
  result.segment_pos.resize(segment_bytes.size());
  if (segment_bytes.empty()) {
    result.total_bytes = spec.offset;
    return result;
  }

  if (!spec.shift_cycle.empty()) {
    // Degraded-chip replanning path. Unlike the arithmetic s*shift (which
    // only ever grows), a cycle displacement can step backwards between
    // segments, so segments are placed sequentially: each one takes the
    // first alignment boundary whose displaced position clears the previous
    // segment's end. This preserves the residue modulo segment_align (what
    // the controller mapping sees) while guaranteeing disjointness.
    std::size_t end = 0;
    for (std::size_t s = 0; s < segment_bytes.size(); ++s) {
      const std::size_t displacement =
          spec.shift_cycle[s % spec.shift_cycle.size()];
      std::size_t boundary = 0;
      if (s != 0 && end > displacement)
        boundary = align_up(end - displacement, spec.segment_align);
      const std::size_t pos = boundary + displacement;
      if (segment_bytes[s] > kMaxLayoutBytes - pos ||
          spec.offset > kMaxLayoutBytes - pos)
        throw std::overflow_error("compute_layout: layout exceeds addressable size");
      result.segment_pos[s] = pos + spec.offset;
      end = pos + segment_bytes[s];
    }
    result.total_bytes = end + spec.offset;
    return result;
  }

  // Pass 1: aligned (pre-shift) positions.
  std::size_t pos = 0;
  for (std::size_t s = 0; s < segment_bytes.size(); ++s) {
    if (s != 0) pos = align_up(pos, spec.segment_align);
    result.segment_pos[s] = pos;
    if (segment_bytes[s] > kMaxLayoutBytes - pos)
      throw std::overflow_error("compute_layout: layout exceeds addressable size");
    pos += segment_bytes[s];
  }

  // Pass 2: displace segment s by s*shift and the whole block by offset.
  std::size_t end = 0;
  for (std::size_t s = 0; s < segment_bytes.size(); ++s) {
    result.segment_pos[s] += s * spec.shift + spec.offset;
    if (result.segment_pos[s] > kMaxLayoutBytes - segment_bytes[s])
      throw std::overflow_error("compute_layout: layout exceeds addressable size");
    end = result.segment_pos[s] + segment_bytes[s];
  }
  result.total_bytes = end;
  return result;
}

std::vector<std::size_t> split_even(std::size_t n, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("split_even: zero parts");
  std::vector<std::size_t> sizes(parts, n / parts);
  const std::size_t remainder = n % parts;
  for (std::size_t s = 0; s < remainder; ++s) ++sizes[s];
  return sizes;
}

}  // namespace mcopt::seg
