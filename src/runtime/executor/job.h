#pragma once
// Job model of the concurrent kernel runtime.
//
// A job is one kernel solve — a Schönauer triad, a 2D Jacobi relaxation or a
// D3Q19 LBM channel — with an iteration count, a priority lane and a
// deadline. Deadlines and arrivals live on the executor's *virtual* cycle
// timeline (see executor.h): the memory subsystem is the contended resource,
// so virtual time advances with bandwidth-work served, which keeps every
// admission/shed decision deterministic and replayable while real worker
// threads race over the bookkeeping.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/calibration.h"

namespace mcopt::runtime::exec {

enum class JobKind { kTriad, kJacobi, kLbm };

/// Priority lanes, highest first. Lane order is also pop order: a queued
/// high-priority job always dequeues before any normal one.
enum class Priority : unsigned { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr unsigned kNumLanes = 3;

[[nodiscard]] constexpr const char* to_string(JobKind k) noexcept {
  switch (k) {
    case JobKind::kTriad: return "triad";
    case JobKind::kJacobi: return "jacobi";
    case JobKind::kLbm: return "lbm";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

/// No-deadline sentinel (a batch job: runs whenever capacity allows).
inline constexpr arch::Cycles kNoDeadline = ~arch::Cycles{0};

/// One job submission.
struct JobSpec {
  JobKind kind = JobKind::kTriad;
  /// Problem size: triad vector elements, Jacobi grid edge, LBM box edge.
  std::size_t n = 4096;
  /// Kernel iterations (sweeps / steps).
  unsigned iterations = 1;
  Priority priority = Priority::kNormal;
  /// Absolute virtual-cycle deadline (kNoDeadline = none). The admission
  /// gate rejects jobs whose priced completion estimate already misses it.
  arch::Cycles deadline = kNoDeadline;
  /// Arrival stamp on the virtual timeline. The executor's clock advances
  /// monotonically to the largest arrival seen (an open-loop generator
  /// submits with increasing stamps); 0 = "now".
  arch::Cycles arrival = 0;
  /// Owning tenant (WFQ flow id). 0 is the anonymous default tenant; the
  /// service layer (runtime/service) assigns real ids and weights.
  std::uint32_t tenant = 0;
  /// WFQ weight of this job's flow under QueuePolicy::kWeightedFair
  /// (ignored under strict priority). All jobs of one flow should carry the
  /// flow's weight; must be > 0.
  double fair_weight = 1.0;
  /// Causal trace context. trace_id names this job's end-to-end causal
  /// chain in the Chrome-trace flow-event namespace; 0 = "allocate one at
  /// submit". parent_span links a respawned job (replay, migration) to the
  /// span that caused it. Both are journaled, so the chain survives a
  /// kill-restart.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  /// Observability hook: called from the worker thread after every
  /// completed generation with the number of iterations done so far. Used
  /// by tests to cancel at an exact generation; keep it cheap.
  std::function<void(unsigned)> on_generation;
};

/// Why a job did not complete. Every non-completed job carries exactly one
/// of these — overload sheds work, it never loses it silently.
enum class ShedReason : unsigned {
  kNone = 0,             ///< completed
  kQueueFull,            ///< backpressure: priority lane at capacity
  kWouldMissDeadline,    ///< admission: priced completion past the deadline
  kNoCapacity,           ///< admission: no surviving controller to price on
  kDeadlineExpiredInQueue,  ///< shed at dequeue: expired before service
  kCancelled,            ///< cooperative cancellation observed
  kShutdown,             ///< executor shut down without draining the queue
  kTenantThrottled       ///< service door: tenant over quota or breaker open
};

/// Number of ShedReason values (sizes the per-reason stat arrays).
inline constexpr std::size_t kNumShedReasons = 8;

[[nodiscard]] constexpr const char* to_string(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kWouldMissDeadline: return "would-miss-deadline";
    case ShedReason::kNoCapacity: return "no-capacity";
    case ShedReason::kDeadlineExpiredInQueue: return "expired-in-queue";
    case ShedReason::kCancelled: return "cancelled";
    case ShedReason::kShutdown: return "shutdown";
    case ShedReason::kTenantThrottled: return "tenant-throttled";
  }
  return "?";
}

/// The admission price of a job: its layout-planned analytic bandwidth and
/// the virtual service cycles that bandwidth converts its traffic into.
struct Quote {
  /// Analytic bandwidth (bytes/s) of the job's planned layout under the
  /// fault state it was priced against.
  double bandwidth = 0.0;
  /// Total memory traffic of the job (both directions, RFO included).
  std::uint64_t bytes = 0;
  /// bytes at `bandwidth`, in virtual cycles.
  arch::Cycles service_cycles = 0;
  /// Controllers the layout was planned over (the priced surviving set).
  std::vector<unsigned> plan_set;
};

/// Final accounting for one submitted job (rejected, shed or completed).
struct JobReport {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kTriad;
  Priority priority = Priority::kNormal;
  std::uint32_t tenant = 0;
  bool completed = false;
  ShedReason shed = ShedReason::kNone;
  arch::Cycles arrival = 0;
  arch::Cycles deadline = kNoDeadline;
  /// Virtual service window [start, finish); 0/0 for jobs never served.
  arch::Cycles start = 0;
  arch::Cycles finish = 0;
  Quote quote;
  /// Iterations completed before finish/cancellation.
  unsigned iterations_done = 0;
  /// CRC32C of the job's field at its last completed generation (the
  /// cancellation bit-identity witness); 0 for jobs never started.
  std::uint32_t field_crc = 0;
  /// Causal trace id carried from the JobSpec (0 if tracing was off at
  /// submit); lets report consumers emit flow events for the same chain.
  std::uint64_t trace_id = 0;

  /// Completed after its deadline passed (bounded by the shed-lag bound).
  [[nodiscard]] bool missed_deadline() const noexcept {
    return completed && deadline != kNoDeadline && finish > deadline;
  }
};

}  // namespace mcopt::runtime::exec
