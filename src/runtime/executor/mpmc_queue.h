#pragma once
// Bounded multi-producer / multi-consumer queue with priority lanes and an
// optional weighted-fair (WFQ) pop policy.
//
// The executor's admission gate pushes priced jobs into one of kNumLanes
// lanes (high / normal / low). Each lane is individually bounded — a full
// lane is typed backpressure (the caller sheds with ShedReason::kQueueFull),
// never a blocking producer.
//
// ## Pop policies
//
// kStrictPriority (default): worker threads pop the front of the highest
// non-empty lane, FIFO within a lane — the PR-4 executor semantics.
//
// kWeightedFair: every push names a *flow* (the service layer uses the
// tenant id), a weight, and a cost (the service layer uses the pricing
// quote's bytes, so fairness is measured in bytes of bandwidth, not job
// counts). The queue runs start-time fair queuing on one virtual-service
// clock: a pushed item is stamped
//
//   vstart  = max(queue virtual time, flow's last virtual finish)
//   vfinish = vstart + cost/weight          (fixed-point, kWfqCostScale)
//
// and pop always removes the item with the smallest vstart; the queue's
// virtual time advances to each popped item's vstart. Backlogged flows
// therefore share dequeue bandwidth in proportion to their weights,
// regardless of how bursty any one flow's arrivals are.
//
// Ties on vstart are broken by (lane, sequence): the lane index first (a
// high-priority item beats a normal one stamped at the same virtual
// instant), then the queue-global push sequence number. The tie-break is
// total — two runs that push the same items in the same order pop them in
// the same order, bit-stably, which is what makes seeded service soaks
// replayable. (Without the sequence tie-break, equal-vstart heads would pop
// in map-iteration order of whichever flows happened to be resident —
// nondeterministic across runs.)
//
// Concurrency is deliberately boring: one mutex, one condition variable.
// Pop passes a `reserve` hook that runs UNDER the queue lock after the item
// is chosen but before it is released to the caller. The executor uses this
// to stamp the job's virtual service window against the bandwidth-server
// tail (executor.h): because reservation and removal are one critical
// section, the virtual start order equals the dequeue order exactly, which
// is what makes the shed-lag bound provable. Mutex + condvar also makes the
// queue ThreadSanitizer-clean by construction — there is no lock-free
// cleverness to annotate or suppress.

#include <array>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/executor/job.h"

namespace mcopt::runtime::exec {

enum class QueuePolicy {
  kStrictPriority,  ///< highest non-empty lane first, FIFO within a lane
  kWeightedFair     ///< min virtual start across flows; lanes break ties
};

/// Fixed-point scale of the WFQ virtual clock: one cost unit of a weight-1
/// flow advances the flow's virtual finish by kWfqCostScale ticks, so
/// fractional weights keep resolution without floating-point drift in the
/// comparisons themselves.
inline constexpr std::uint64_t kWfqCostScale = 256;

template <typename T>
class LaneQueue {
 public:
  /// `capacity[lane]` bounds each lane; every lane must hold at least one
  /// item or the queue could never accept work on that lane.
  explicit LaneQueue(std::array<std::size_t, kNumLanes> capacity,
                     QueuePolicy policy = QueuePolicy::kStrictPriority)
      : capacity_(capacity), policy_(policy) {
    for (const std::size_t cap : capacity_)
      if (cap == 0)
        throw std::invalid_argument("LaneQueue: lane capacity must be >= 1");
  }

  LaneQueue(const LaneQueue&) = delete;
  LaneQueue& operator=(const LaneQueue&) = delete;

  /// Enqueues onto `lane` for the default flow (flow 0, weight 1, cost 1).
  /// Under kStrictPriority flows never matter; under kWeightedFair this is
  /// a plain unweighted flow.
  [[nodiscard]] bool try_push(Priority lane, T item) {
    return try_push(lane, /*flow=*/0, /*weight=*/1.0, /*cost=*/1,
                    std::move(item));
  }

  /// Enqueues onto `lane` as flow `flow` with the given WFQ weight and
  /// cost (ignored under kStrictPriority). Returns false (typed
  /// backpressure) when the lane is at capacity or the queue is closed; the
  /// item is untouched then. Throws on weight <= 0.
  [[nodiscard]] bool try_push(Priority lane, std::uint64_t flow, double weight,
                              std::uint64_t cost, T item) {
    if (!(weight > 0.0))
      throw std::invalid_argument("LaneQueue: flow weight must be > 0");
    const auto l = static_cast<std::size_t>(lane);
    {
      const std::lock_guard<std::mutex> guard(mu_);
      if (closed_ || lane_sizes_[l] >= capacity_[l]) return false;
      Entry e;
      e.item = std::move(item);
      e.seq = next_seq_++;
      if (policy_ == QueuePolicy::kWeightedFair) {
        std::uint64_t& tail = flow_tails_[flow];
        e.primary = std::max(vtime_, tail);
        tail = e.primary + cost_ticks(cost, weight);
      } else {
        e.primary = 0;  // strict: order is (lane, seq) alone
      }
      std::deque<Entry>& fq = lanes_[l][flow];
      const bool was_empty = fq.empty();
      fq.push_back(std::move(e));
      ++lane_sizes_[l];
      ++total_;
      if (was_empty)
        heads_.insert({fq.front().primary, static_cast<unsigned>(l),
                       fq.front().seq, flow});
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Pops the item with the smallest ordering key — (lane, sequence) under
  /// kStrictPriority, (virtual start, lane, sequence) under kWeightedFair.
  /// `reserve` runs under the queue lock with a mutable reference to the
  /// chosen item — keep it short (it is the serialization point for
  /// virtual-time reservations). Returns nullopt only when closed and empty.
  template <typename Reserve>
  [[nodiscard]] std::optional<T> pop(Reserve&& reserve) {
    std::unique_lock<std::mutex> guard(mu_);
    cv_.wait(guard, [this] { return closed_ || (!held_ && total_ != 0); });
    if (total_ == 0) return std::nullopt;  // closed and drained
    const HeadKey key = *heads_.begin();
    heads_.erase(heads_.begin());
    std::deque<Entry>& fq = lanes_[key.lane][key.flow];
    if (policy_ == QueuePolicy::kWeightedFair)
      vtime_ = std::max(vtime_, key.primary);
    reserve(fq.front().item);
    T item = std::move(fq.front().item);
    fq.pop_front();
    --lane_sizes_[key.lane];
    --total_;
    if (fq.empty())
      lanes_[key.lane].erase(key.flow);
    else
      heads_.insert({fq.front().primary, key.lane, fq.front().seq, key.flow});
    return item;
  }

  /// Visits every queued item under the lock: lanes highest first, flows in
  /// ascending flow id, FIFO within a flow. (With only default-flow pushes
  /// this is exactly "highest lane first, FIFO within a lane".) The
  /// executor uses this to re-price queued jobs after a fault diagnosis;
  /// `fn` must not call back into the queue.
  template <typename Fn>
  void for_each(Fn&& fn) {
    const std::lock_guard<std::mutex> guard(mu_);
    for (auto& lane : lanes_)
      for (auto& [flow, fq] : lane)
        for (Entry& e : fq) fn(e.item);
  }

  /// Removes and returns everything still queued (lanes highest first,
  /// flows in ascending flow id, FIFO within a flow). Used by non-draining
  /// shutdown so every job is accounted for.
  [[nodiscard]] std::vector<T> shed_all() {
    std::vector<T> out;
    const std::lock_guard<std::mutex> guard(mu_);
    for (auto& lane : lanes_) {
      for (auto& [flow, fq] : lane)
        for (Entry& e : fq) out.push_back(std::move(e.item));
      lane.clear();
    }
    heads_.clear();
    lane_sizes_.fill(0);
    total_ = 0;
    return out;
  }

  /// Holds dequeue: pops block (pushes are unaffected) until release().
  /// A producer can publish a whole batch atomically with respect to pop
  /// order — the pick sequence then depends only on the batch content,
  /// never on the push/pop interleaving, which is what lets a seeded soak
  /// make every WFQ reservation a pure function of its job stream.
  /// close() overrides a hold, so a draining shutdown can never wedge.
  void hold() {
    const std::lock_guard<std::mutex> guard(mu_);
    held_ = true;
  }

  void release() {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      held_ = false;
    }
    cv_.notify_all();
  }

  /// Closes the queue: pushes start failing, pops drain what remains and
  /// then return nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return total_;
  }

  [[nodiscard]] std::size_t lane_size(Priority lane) const {
    const std::lock_guard<std::mutex> guard(mu_);
    return lane_sizes_[static_cast<std::size_t>(lane)];
  }

  [[nodiscard]] QueuePolicy policy() const noexcept { return policy_; }

  /// Current WFQ virtual time (always 0 under kStrictPriority). Test hook.
  [[nodiscard]] std::uint64_t virtual_time() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return vtime_;
  }

 private:
  struct Entry {
    T item;
    std::uint64_t primary = 0;  ///< WFQ virtual start (0 under strict)
    std::uint64_t seq = 0;      ///< queue-global push sequence
  };

  /// Total order over the per-flow head items. primary is the WFQ virtual
  /// start (0 under strict priority, making the order (lane, seq) — the
  /// legacy strict semantics); ties break by (lane, seq), which is what
  /// keeps seeded soak replays bit-stable.
  struct HeadKey {
    std::uint64_t primary;
    unsigned lane;
    std::uint64_t seq;
    std::uint64_t flow;
    bool operator<(const HeadKey& o) const noexcept {
      if (primary != o.primary) return primary < o.primary;
      if (lane != o.lane) return lane < o.lane;
      return seq < o.seq;  // seq is unique: flow never needs comparing
    }
  };

  [[nodiscard]] static std::uint64_t cost_ticks(std::uint64_t cost,
                                                double weight) {
    const double ticks = static_cast<double>(cost) *
                         static_cast<double>(kWfqCostScale) / weight;
    if (ticks >= 9.2e18)
      throw std::overflow_error("LaneQueue: WFQ cost/weight overflows");
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ticks));
  }

  const std::array<std::size_t, kNumLanes> capacity_;
  const QueuePolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Per-lane, per-flow FIFO sub-queues (std::map: deterministic order).
  std::array<std::map<std::uint64_t, std::deque<Entry>>, kNumLanes> lanes_;
  /// Heads of every non-empty (lane, flow) sub-queue, pop order.
  std::set<HeadKey> heads_;
  /// Last virtual finish per flow. Kept across idle periods — the max()
  /// against vtime_ in push re-syncs a returning flow, so an idle flow
  /// banks no credit and owes no debt.
  std::map<std::uint64_t, std::uint64_t> flow_tails_;
  std::uint64_t vtime_ = 0;
  std::uint64_t next_seq_ = 0;
  std::array<std::size_t, kNumLanes> lane_sizes_{};
  std::size_t total_ = 0;
  bool closed_ = false;
  bool held_ = false;  ///< dequeue gate (hold/release); close() overrides
};

}  // namespace mcopt::runtime::exec
