#pragma once
// Domain geometry and data-layout arithmetic for the D3Q19 kernel.
//
// The paper contrasts two layouts of the distribution array
// f(0:N+1, 0:N+1, 0:N+1, 0:18, 0:1) (Fortran order, leftmost fastest):
//  * IJKv — "structure of arrays": v is the slowest spatial index, so the 19
//    read and 19 write streams are full-array strides apart (power-of-two
//    aliasing when N+2 is a power-of-two multiple);
//  * IvJK — v sits right after x, so the 19 streams of one row are spread
//    (N+2)*8 bytes apart, giving an automatic skew across controllers.
// Optional x padding removes the cache thrashing at (N+2) % 64 == 0.

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "kernels/lbm/lattice.h"
#include "util/expected.h"

namespace mcopt::kernels::lbm {

enum class DataLayout { kIJKv, kIvJK };

[[nodiscard]] constexpr const char* to_string(DataLayout layout) noexcept {
  return layout == DataLayout::kIJKv ? "IJKv" : "IvJK";
}

/// Cubic-capable domain geometry: interior nx*ny*nz plus one ghost layer per
/// face; `pad_x` extra (never touched) elements appended to the x extent.
struct Geometry {
  std::size_t nx = 0, ny = 0, nz = 0;
  std::size_t pad_x = 0;
  DataLayout layout = DataLayout::kIJKv;

  [[nodiscard]] constexpr std::size_t ex() const noexcept { return nx + 2 + pad_x; }
  [[nodiscard]] constexpr std::size_t ey() const noexcept { return ny + 2; }
  [[nodiscard]] constexpr std::size_t ez() const noexcept { return nz + 2; }

  /// Distribution-array element index of (x, y, z, v, toggle);
  /// x/y/z include ghosts (0 .. e?-1), v in [0,19), toggle in {0,1}.
  [[nodiscard]] constexpr std::size_t f_index(std::size_t x, std::size_t y,
                                              std::size_t z, std::size_t v,
                                              std::size_t toggle) const noexcept {
    switch (layout) {
      case DataLayout::kIJKv:
        // f(x, y, z, v, t): x fastest, then y, z, v, t.
        return (((toggle * kQ + v) * ez() + z) * ey() + y) * ex() + x;
      case DataLayout::kIvJK:
        // f(x, v, y, z, t): x fastest, then v, y, z, t.
        return (((toggle * ez() + z) * ey() + y) * kQ + v) * ex() + x;
    }
    return 0;
  }

  /// Obstacle-mask element index (one byte per cell, ghosts included).
  [[nodiscard]] constexpr std::size_t cell_index(std::size_t x, std::size_t y,
                                                 std::size_t z) const noexcept {
    return (z * ey() + y) * ex() + x;
  }

  /// Total distribution elements (both toggles).
  [[nodiscard]] constexpr std::size_t f_elems() const noexcept {
    return 2 * kQ * ex() * ey() * ez();
  }
  [[nodiscard]] constexpr std::size_t cells() const noexcept {
    return ex() * ey() * ez();
  }
  [[nodiscard]] constexpr std::size_t interior_cells() const noexcept {
    return nx * ny * nz;
  }

  /// Non-throwing validation: non-zero extents and no element-count overflow
  /// (f_elems() multiplies five extents; a huge domain would wrap size_t and
  /// silently truncate the address space).
  [[nodiscard]] util::Status check() const {
    util::Status status;
    if (nx == 0 || ny == 0 || nz == 0) status.note("Geometry: zero extent");
    // ex*ey*ez must fit in kMax/(2*kQ); sequential division avoids computing
    // any intermediate product that could itself wrap. Bound the raw inputs
    // first so that ex() = nx + 2 + pad_x cannot itself wrap size_t and
    // sneak a small wrapped product past the budget check.
    constexpr std::size_t kBudget =
        std::numeric_limits<std::size_t>::max() / (2 * kQ);
    if (nx >= kBudget || ny >= kBudget || nz >= kBudget || pad_x >= kBudget) {
      status.note("Geometry: extent " + std::to_string(nx) + "x" +
                  std::to_string(ny) + "x" + std::to_string(nz) + " (pad_x " +
                  std::to_string(pad_x) + ") exceeds the element budget");
    } else if (ex() > kBudget / ey() / ez()) {
      status.note("Geometry: extents " + std::to_string(ex()) + "x" +
                  std::to_string(ey()) + "x" + std::to_string(ez()) +
                  " overflow the element count");
    }
    return status;
  }

  void validate() const { check().throw_if_failed(); }
};

}  // namespace mcopt::kernels::lbm
