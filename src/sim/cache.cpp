#include "sim/cache.h"

#include <bit>
#include <stdexcept>

namespace mcopt::sim {

Cache::Cache(const arch::CacheGeometry& geometry, WritePolicy policy,
             bool index_hash)
    : geo_(geometry), policy_(policy), index_hash_(index_hash) {
  geo_.validate();
  line_bits_ = static_cast<unsigned>(std::countr_zero(geo_.line_bytes));
  set_bits_ = static_cast<unsigned>(std::countr_zero(geo_.num_sets()));
  set_mask_ = geo_.num_sets() - 1;
  ways_.resize(geo_.num_sets() * geo_.associativity);
}

Cache::Way* Cache::find(std::size_t set, std::uint64_t tag) {
  Way* base = &ways_[set * geo_.associativity];
  for (std::size_t w = 0; w < geo_.associativity; ++w)
    if (base[w].tag == tag) return &base[w];
  return nullptr;
}

Cache::Way& Cache::victim(std::size_t set) {
  Way* base = &ways_[set * geo_.associativity];
  Way* best = base;
  for (std::size_t w = 1; w < geo_.associativity; ++w) {
    // Invalid ways are preferred victims; otherwise lowest LRU stamp.
    if (base[w].tag == Way::kInvalid) return base[w];
    if (best->tag != Way::kInvalid && base[w].lru < best->lru) best = &base[w];
  }
  return *best;
}

void Cache::touch(Way& way) { way.lru = ++lru_clock_; }

CacheOutcome Cache::load(arch::Addr addr) {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  CacheOutcome outcome;
  if (Way* way = find(set, tag)) {
    outcome.hit = true;
    touch(*way);
    ++stats_.hits;
    return outcome;
  }
  ++stats_.misses;
  Way& v = victim(set);
  if (v.tag != Way::kInvalid) {
    ++stats_.evictions;
    if (v.dirty) {
      ++stats_.writebacks;
      outcome.writeback_line = line_addr(set, v.tag);
    }
  }
  v.tag = tag;
  v.dirty = false;
  touch(v);
  return outcome;
}

CacheOutcome Cache::store(arch::Addr addr) {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  CacheOutcome outcome;
  if (Way* way = find(set, tag)) {
    outcome.hit = true;
    touch(*way);
    if (policy_ == WritePolicy::kWriteBack) way->dirty = true;
    ++stats_.hits;
    return outcome;
  }
  ++stats_.misses;
  if (policy_ == WritePolicy::kWriteThrough) return outcome;  // no allocate
  Way& v = victim(set);
  if (v.tag != Way::kInvalid) {
    ++stats_.evictions;
    if (v.dirty) {
      ++stats_.writebacks;
      outcome.writeback_line = line_addr(set, v.tag);
    }
  }
  v.tag = tag;
  v.dirty = true;
  touch(v);
  return outcome;
}

bool Cache::probe(arch::Addr addr) const {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Way* base = &ways_[set * geo_.associativity];
  for (std::size_t w = 0; w < geo_.associativity; ++w)
    if (base[w].tag == tag) return true;
  return false;
}

void Cache::clear(bool clear_stats) {
  for (auto& way : ways_) way = Way{};
  lru_clock_ = 0;
  if (clear_stats) stats_ = CacheStats{};
}

}  // namespace mcopt::sim
