#pragma once
// D3Q19 lattice constants and the BGK equilibrium (Sect. 2.4).

#include <array>
#include <cstddef>

namespace mcopt::kernels::lbm {

inline constexpr std::size_t kQ = 19;

/// Discrete velocity set: rest, 6 axis-aligned, 12 face-diagonal directions.
inline constexpr std::array<std::array<int, 3>, kQ> kVelocity = {{
    {0, 0, 0},                                                    // 0 rest
    {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},              // 1-4 axes xy
    {0, 0, 1},  {0, 0, -1},                                       // 5-6 axis z
    {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},              // 7-10 xy diag
    {1, 0, 1},  {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},              // 11-14 xz diag
    {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},              // 15-18 yz diag
}};

/// Quadrature weights: 1/3 rest, 1/18 axis, 1/36 diagonal.
inline constexpr std::array<double, kQ> kWeight = {
    1.0 / 3,  1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

/// Index of the opposite direction (for bounce-back boundaries).
inline constexpr std::array<std::size_t, kQ> kOpposite = {
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17};

/// Second-order BGK equilibrium distribution for direction v.
[[nodiscard]] constexpr double equilibrium(std::size_t v, double rho, double ux,
                                           double uy, double uz) noexcept {
  const double cu = 3.0 * (kVelocity[v][0] * ux + kVelocity[v][1] * uy +
                           kVelocity[v][2] * uz);
  const double usq = 1.5 * (ux * ux + uy * uy + uz * uz);
  return kWeight[v] * rho * (1.0 + cu + 0.5 * cu * cu - usq);
}

/// Kinematic viscosity of the BGK model at relaxation time tau.
[[nodiscard]] constexpr double viscosity(double tau) noexcept {
  return (tau - 0.5) / 3.0;
}

}  // namespace mcopt::kernels::lbm
