#include "obs/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#ifdef _WIN32
#include <process.h>
#else
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/log.h"

namespace mcopt::obs {
namespace {

/// One ring slot: 11 atomic words. Every field is a std::atomic written
/// with relaxed stores between the seqlock's odd/even sequence stores, so a
/// concurrent reader can never tear a value or race (TSan-clean by
/// construction). Slot k of event index i carries seq == 2*i + 2 when
/// committed; an odd seq marks an in-flight write.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> name{0};
  std::atomic<std::uint64_t> cat{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  /// phase in bits 0..7, inline-message length in bits 8..15.
  std::atomic<std::uint64_t> meta{0};
  std::array<std::atomic<std::uint64_t>, kEventMsgBytes / 8> msg{};
};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t pack_words(const char* src, std::size_t len, std::size_t word) {
  std::uint64_t out = 0;
  const std::size_t lo = word * 8;
  for (std::size_t i = 0; i < 8 && lo + i < len; ++i)
    out |= static_cast<std::uint64_t>(static_cast<unsigned char>(src[lo + i]))
           << (8 * i);
  return out;
}

/// Protects buffer allocation/registration; never taken on the hot path.
std::mutex& alloc_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), mask(capacity - 1), slots(capacity) {}

  const std::uint32_t tid;
  const std::size_t mask;  ///< capacity - 1 (capacity is a power of two)
  std::atomic<std::uint64_t> head{0};  ///< events ever written to this ring
  std::vector<Slot> slots;
};

namespace {

/// Ownership of every buffer ever allocated, retired ones included.
/// Deliberately leaked (reachable via this static forever): the fatal-signal
/// handler and late-exiting threads may still be reading them at process
/// teardown, so they are never freed.
std::vector<std::unique_ptr<TraceRecorder::ThreadBuffer>>& owned_buffers() {
  static auto* owned =
      new std::vector<std::unique_ptr<TraceRecorder::ThreadBuffer>>();
  return *owned;
}

struct CachedBuffer {
  TraceRecorder::ThreadBuffer* buf = nullptr;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local CachedBuffer t_cached;

void log_mirror(util::LogLevel level, std::uint64_t /*ts_ns*/,
                const char* text, std::size_t len) {
  const char* name = "log.info";
  switch (level) {
    case util::LogLevel::kDebug: name = "log.debug"; break;
    case util::LogLevel::kInfo: name = "log.info"; break;
    case util::LogLevel::kWarn: name = "log.warn"; break;
    case util::LogLevel::kError: name = "log.error"; break;
  }
  TraceRecorder::instance().record(Phase::kInstant, name, "log",
                                   static_cast<std::uint64_t>(level), 0, text,
                                   len);
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  // High bits: a per-process salt folded from the trace epoch, so ids minted
  // before and after a kill-restart never collide (replayed jobs keep their
  // journaled pre-kill ids; fresh jobs draw from a new namespace). Low bits:
  // a plain counter. splitmix64 finalizer spreads the salt.
  static const std::uint64_t salt = [] {
    std::uint64_t z = trace_now_ns() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return (z ^ (z >> 31)) << 20;
  }();
  static std::atomic<std::uint64_t> counter{0};
  // The pid is folded in per call, NOT into the static: a fork()ed serving
  // child (the durability bench's kill harness) inherits both salt and
  // counter, and without the pid its ids would collide with ids the parent
  // mints after the fork — poisoning merged-trace queries.
#ifdef _WIN32
  const auto pid = static_cast<std::uint64_t>(_getpid());
#else
  const auto pid = static_cast<std::uint64_t>(::getpid());
#endif
  const std::uint64_t id = (salt ^ (pid * 0xff51afd7ed558ccdULL)) +
                           counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return id == 0 ? 1 : id;
}

char phase_char(Phase p) noexcept {
  switch (p) {
    case Phase::kBegin: return 'B';
    case Phase::kEnd: return 'E';
    case Phase::kInstant: return 'i';
    case Phase::kCounter: return 'C';
    case Phase::kFlowStart: return 's';
    case Phase::kFlowStep: return 't';
    case Phase::kFlowEnd: return 'f';
  }
  return '?';
}

namespace {

bool is_flow_phase(Phase p) noexcept {
  return p == Phase::kFlowStart || p == Phase::kFlowStep ||
         p == Phase::kFlowEnd;
}

}  // namespace

std::uint64_t trace_now_ns() noexcept { return util::monotonic_ns(); }

TraceRecorder& TraceRecorder::instance() noexcept {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t capacity_per_thread) {
  capacity_.store(round_up_pow2(capacity_per_thread),
                  std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  util::set_log_mirror(&log_mirror);
}

void TraceRecorder::disable() {
  util::set_log_mirror(nullptr);
  enabled_.store(false, std::memory_order_release);
}

TraceRecorder::ThreadBuffer* TraceRecorder::buffer_for_this_thread() noexcept {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_cached.buf != nullptr && t_cached.generation == gen)
    return t_cached.buf;
  try {
    const std::lock_guard<std::mutex> lock(alloc_mutex());
    const std::uint64_t cur_gen = generation_.load(std::memory_order_relaxed);
    const std::uint32_t i = registered_.load(std::memory_order_relaxed);
    if (i >= kMaxThreads) return nullptr;
    auto buf = std::make_unique<ThreadBuffer>(
        i, capacity_.load(std::memory_order_relaxed));
    registry_[i].store(buf.get(), std::memory_order_release);
    registered_.store(i + 1, std::memory_order_release);
    t_cached = {buf.get(), cur_gen};
    owned_buffers().push_back(std::move(buf));
    return t_cached.buf;
  } catch (...) {
    return nullptr;
  }
}

void TraceRecorder::record(Phase phase, const char* name, const char* cat,
                           std::uint64_t a, std::uint64_t b, const char* msg,
                           std::size_t msg_len) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadBuffer* buf = buffer_for_this_thread();
  if (buf == nullptr) {
    unregistered_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t idx = buf->head.load(std::memory_order_relaxed);
  Slot& s = buf->slots[idx & buf->mask];
  // Seqlock write protocol: mark in-flight (odd), fence so the mark is
  // ordered before the payload, write the payload relaxed, publish (even,
  // release). A reader that validates the same even sequence before and
  // after its payload loads can never observe a torn event.
  s.seq.store(2 * idx + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts.store(trace_now_ns(), std::memory_order_relaxed);
  s.name.store(reinterpret_cast<std::uintptr_t>(name),
               std::memory_order_relaxed);
  s.cat.store(reinterpret_cast<std::uintptr_t>(cat), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  const std::size_t len =
      msg == nullptr ? 0 : std::min(msg_len, kEventMsgBytes);
  s.meta.store(static_cast<std::uint64_t>(phase) |
                   (static_cast<std::uint64_t>(len) << 8),
               std::memory_order_relaxed);
  for (std::size_t w = 0; w < s.msg.size(); ++w)
    s.msg[w].store(len == 0 ? 0 : pack_words(msg, len, w),
                   std::memory_order_relaxed);
  s.seq.store(2 * idx + 2, std::memory_order_release);
  buf->head.store(idx + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  for (std::uint32_t t = 0; t < n; ++t) {
    const ThreadBuffer* buf = registry_[t].load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = buf->mask + 1;
    const std::uint64_t lo = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      const Slot& s = buf->slots[i & buf->mask];
      const std::uint64_t want = 2 * i + 2;
      if (s.seq.load(std::memory_order_acquire) != want) {
        seqlock_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      TraceEvent ev;
      ev.ts_ns = s.ts.load(std::memory_order_relaxed);
      ev.name = reinterpret_cast<const char*>(
          s.name.load(std::memory_order_relaxed));
      ev.cat =
          reinterpret_cast<const char*>(s.cat.load(std::memory_order_relaxed));
      ev.a = s.a.load(std::memory_order_relaxed);
      ev.b = s.b.load(std::memory_order_relaxed);
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      std::array<std::uint64_t, kEventMsgBytes / 8> words{};
      for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = s.msg[w].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != want) {
        seqlock_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ev.phase = static_cast<Phase>(meta & 0xFF);
      const std::size_t len = static_cast<std::size_t>((meta >> 8) & 0xFF);
      ev.msg.reserve(len);
      for (std::size_t c = 0; c < len; ++c)
        ev.msg.push_back(
            static_cast<char>((words[c / 8] >> (8 * (c % 8))) & 0xFF));
      ev.tid = buf->tid;
      ev.seq = i;
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.seq < y.seq;
            });
  return out;
}

namespace {

void json_escape(std::string& out, const char* s, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Balances B/E pairs per thread so the exported JSON always validates:
/// an E whose B was overwritten at the ring edge is dropped, and a B whose
/// E has not happened yet (snapshot taken mid-span) gets a synthetic E at
/// the thread's last seen timestamp.
std::vector<TraceEvent> balance_spans(std::vector<TraceEvent> events) {
  std::vector<char> drop(events.size(), 0);
  std::vector<TraceEvent> synth;
  std::map<std::uint32_t, std::vector<std::size_t>> open_by_tid;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    last_ts[ev.tid] = std::max(last_ts[ev.tid], ev.ts_ns);
    if (ev.phase == Phase::kBegin) {
      open_by_tid[ev.tid].push_back(i);
    } else if (ev.phase == Phase::kEnd) {
      auto& stack = open_by_tid[ev.tid];
      if (stack.empty())
        drop[i] = 1;  // begin lost to ring wrap-around
      else
        stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open_by_tid) {
    for (const std::size_t i : stack) {
      TraceEvent end = events[i];
      end.phase = Phase::kEnd;
      end.ts_ns = last_ts[tid];
      synth.push_back(std::move(end));
    }
  }
  std::vector<TraceEvent> out;
  out.reserve(events.size() + synth.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    if (!drop[i]) out.push_back(std::move(events[i]));
  for (TraceEvent& ev : synth) out.push_back(std::move(ev));
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.seq < y.seq;
            });
  return out;
}

util::Status export_chrome_json(const std::string& path,
                                const std::vector<TraceEvent>& events,
                                std::uint64_t recorded, std::uint64_t dropped,
                                std::uint32_t threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status::failure("trace: cannot write '" + path + "'");
  std::fprintf(f, "{\n\"traceEvents\": [\n");
  std::string line;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    line.clear();
    line += "{\"name\":\"";
    json_escape(line, ev.name, std::strlen(ev.name));
    line += "\",\"cat\":\"";
    json_escape(line, ev.cat, std::strlen(ev.cat));
    line += "\",\"ph\":\"";
    line += phase_char(ev.phase);
    line += "\"";
    if (ev.phase == Phase::kInstant) line += ",\"s\":\"t\"";
    char num[96];
    if (is_flow_phase(ev.phase)) {
      // The flow id is the 64-bit trace context; "bp":"e" binds the
      // terminating arrow to the enclosing slice like Chrome expects.
      std::snprintf(num, sizeof num, ",\"id\":\"0x%llx\"",
                    static_cast<unsigned long long>(ev.a));
      line += num;
      if (ev.phase == Phase::kFlowEnd) line += ",\"bp\":\"e\"";
    }
    // Chrome trace ts is in microseconds; keep nanosecond precision.
    std::snprintf(num, sizeof num, ",\"ts\":%llu.%03llu,\"pid\":1,\"tid\":%u",
                  static_cast<unsigned long long>(ev.ts_ns / 1000),
                  static_cast<unsigned long long>(ev.ts_ns % 1000), ev.tid);
    line += num;
    if (ev.phase == Phase::kCounter) {
      std::snprintf(num, sizeof num, ",\"args\":{\"value\":%llu}",
                    static_cast<unsigned long long>(ev.a));
      line += num;
    } else {
      std::snprintf(num, sizeof num, ",\"args\":{\"a\":%llu,\"b\":%llu",
                    static_cast<unsigned long long>(ev.a),
                    static_cast<unsigned long long>(ev.b));
      line += num;
      if (!ev.msg.empty()) {
        line += ",\"msg\":\"";
        json_escape(line, ev.msg.data(), ev.msg.size());
        line += "\"";
      }
      line += "}";
    }
    line += "}";
    if (i + 1 < events.size()) line += ",";
    line += "\n";
    std::fputs(line.c_str(), f);
  }
  std::fprintf(f,
               "],\n\"displayTimeUnit\": \"ms\",\n"
               "\"otherData\": {\"recorded\": %llu, \"dropped\": %llu, "
               "\"threads\": %u}\n}\n",
               static_cast<unsigned long long>(recorded),
               static_cast<unsigned long long>(dropped), threads);
  if (std::fclose(f) != 0)
    return util::Status::failure("trace: cannot close '" + path + "'");
  return util::Status{};
}

}  // namespace

util::Status TraceRecorder::write_chrome_trace(const std::string& path) const {
  return export_chrome_json(path, balance_spans(snapshot()), recorded(),
                            dropped(), threads_seen());
}

util::Status TraceRecorder::write_flight_dump(const std::string& path,
                                              std::size_t last_n) const {
  std::vector<TraceEvent> events = snapshot();
  // Keep only the trailing last_n events per thread (the post-mortem
  // window); snapshot() order is globally ts-sorted, so count from the back.
  std::map<std::uint32_t, std::size_t> kept;
  std::vector<TraceEvent> tail;
  for (auto it = events.rbegin(); it != events.rend(); ++it)
    if (kept[it->tid]++ < last_n) tail.push_back(std::move(*it));
  std::reverse(tail.begin(), tail.end());
  return export_chrome_json(path, balance_spans(std::move(tail)), recorded(),
                            dropped(), threads_seen());
}

namespace {

#ifndef _WIN32

void append_raw(char* buf, std::size_t& pos, std::size_t cap, const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
}

void append_u64(char* buf, std::size_t& pos, std::size_t cap,
                std::uint64_t v) {
  char digits[24];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n != 0 && pos + 1 < cap) buf[pos++] = digits[--n];
}

int write_all(int fd, const char* buf, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    off += static_cast<std::size_t>(n);
  }
  return 0;
}

#endif  // !_WIN32

}  // namespace

int TraceRecorder::dump_to_fd(int fd) const noexcept {
#ifdef _WIN32
  (void)fd;
  return -1;
#else
  // Async-signal-constrained: fixed stack buffers, atomic loads, write(2)
  // only. Torn or overwritten slots are skipped exactly like in snapshot().
  char line[512];
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  for (std::uint32_t t = 0; t < n; ++t) {
    const ThreadBuffer* buf = registry_[t].load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t window =
        std::min<std::uint64_t>(buf->mask + 1, kFlightWindow);
    const std::uint64_t lo = head > window ? head - window : 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      const Slot& s = buf->slots[i & buf->mask];
      const std::uint64_t want = 2 * i + 2;
      if (s.seq.load(std::memory_order_acquire) != want) {
        seqlock_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t ts = s.ts.load(std::memory_order_relaxed);
      const char* name =
          reinterpret_cast<const char*>(s.name.load(std::memory_order_relaxed));
      const char* cat =
          reinterpret_cast<const char*>(s.cat.load(std::memory_order_relaxed));
      const std::uint64_t a = s.a.load(std::memory_order_relaxed);
      const std::uint64_t b = s.b.load(std::memory_order_relaxed);
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != want) {
        seqlock_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::size_t pos = 0;
      append_raw(line, pos, sizeof line, "tid=");
      append_u64(line, pos, sizeof line, buf->tid);
      append_raw(line, pos, sizeof line, " seq=");
      append_u64(line, pos, sizeof line, i);
      append_raw(line, pos, sizeof line, " ts_ns=");
      append_u64(line, pos, sizeof line, ts);
      append_raw(line, pos, sizeof line, " ph=");
      const char ph[2] = {phase_char(static_cast<Phase>(meta & 0xFF)), '\0'};
      append_raw(line, pos, sizeof line, ph);
      append_raw(line, pos, sizeof line, " name=");
      append_raw(line, pos, sizeof line, name == nullptr ? "?" : name);
      append_raw(line, pos, sizeof line, " cat=");
      append_raw(line, pos, sizeof line, cat == nullptr ? "?" : cat);
      append_raw(line, pos, sizeof line, " a=");
      append_u64(line, pos, sizeof line, a);
      append_raw(line, pos, sizeof line, " b=");
      append_u64(line, pos, sizeof line, b);
      if (pos + 1 < sizeof line) line[pos++] = '\n';
      if (write_all(fd, line, pos) != 0) return -1;
    }
  }
  return 0;
#endif
}

std::uint64_t TraceRecorder::recorded() const noexcept {
  std::uint64_t total = 0;
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  for (std::uint32_t t = 0; t < n; ++t) {
    const ThreadBuffer* buf = registry_[t].load(std::memory_order_acquire);
    if (buf != nullptr) total += buf->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  std::uint64_t total = unregistered_drops_.load(std::memory_order_relaxed);
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  for (std::uint32_t t = 0; t < n; ++t) {
    const ThreadBuffer* buf = registry_[t].load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    const std::uint64_t head = buf->head.load(std::memory_order_relaxed);
    const std::uint64_t capacity = buf->mask + 1;
    if (head > capacity) total += head - capacity;
  }
  return total;
}

std::uint32_t TraceRecorder::threads_seen() const noexcept {
  return registered_.load(std::memory_order_acquire);
}

std::uint64_t TraceRecorder::seqlock_retries() const noexcept {
  return seqlock_retries_.load(std::memory_order_relaxed);
}

void TraceRecorder::reset() {
  const std::lock_guard<std::mutex> lock(alloc_mutex());
  registered_.store(0, std::memory_order_release);
  unregistered_drops_.store(0, std::memory_order_relaxed);
  seqlock_retries_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

#ifndef _WIN32
namespace {

char g_flight_path[1024] = {0};

void flight_signal_handler(int sig) {
  const int fd =
      ::open(g_flight_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    (void)TraceRecorder::instance().dump_to_fd(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition; re-raise to die with the
  // original signal (so CI still sees the crash).
  ::raise(sig);
}

}  // namespace

util::Status install_flight_recorder(const std::string& path) {
  if (path.empty())
    return util::Status::failure("flight recorder: empty dump path");
  if (path.size() + 1 > sizeof g_flight_path)
    return util::Status::failure("flight recorder: dump path too long");
  std::memcpy(g_flight_path, path.c_str(), path.size() + 1);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &flight_signal_handler;
  sa.sa_flags = static_cast<int>(SA_RESETHAND);
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    if (::sigaction(sig, &sa, nullptr) != 0)
      return util::Status::failure(
          "flight recorder: sigaction failed for signal " +
          std::to_string(sig));
  return util::Status{};
}
#else
util::Status install_flight_recorder(const std::string&) {
  return util::Status::failure(
      "flight recorder: not supported on this platform");
}
#endif

}  // namespace mcopt::obs
