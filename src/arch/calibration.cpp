#include "arch/calibration.h"

namespace mcopt::arch {

Calibration t2_calibration() noexcept { return Calibration{}; }

double cycles_to_seconds(Cycles c, double clock_ghz) noexcept {
  return static_cast<double>(c) / (clock_ghz * 1e9);
}

double bandwidth_bytes_per_s(std::uint64_t bytes, Cycles c,
                             double clock_ghz) noexcept {
  if (c == 0) return 0.0;
  return static_cast<double>(bytes) / cycles_to_seconds(c, clock_ghz);
}

}  // namespace mcopt::arch
