#include "seg/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mcopt::seg {
namespace {

TEST(StreamPlan, OffsetsAreControllerStrides) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  // The paper's optimum for the vector triad: 0, 128, 256, 384 bytes.
  EXPECT_EQ(plan.offsets, (std::vector<std::size_t>{0, 128, 256, 384}));
}

TEST(StreamPlan, OffsetsWrapModuloPeriod) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(6, map);
  EXPECT_EQ(plan.offsets[4], 0u);
  EXPECT_EQ(plan.offsets[5], 128u);
}

TEST(StreamPlan, PlannedBasesCoverDistinctControllers) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  std::set<unsigned> controllers;
  for (std::size_t k = 0; k < 4; ++k) {
    // Any page-aligned base plus the planned offset.
    const arch::Addr base = 0x10000 * 8192 + plan.offsets[k];
    controllers.insert(map.controller_of(base));
  }
  EXPECT_EQ(controllers.size(), 4u);
}

TEST(StreamPlan, SpecForCarriesOffset) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(3, map);
  const LayoutSpec spec = plan.spec_for(2);
  EXPECT_EQ(spec.offset, 256u);
  EXPECT_GE(spec.base_align, 8192u);
  EXPECT_EQ(spec.shift, 0u);
}

TEST(StreamPlan, PlannedLayoutIsPerfectlyBalanced) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  std::vector<arch::Addr> bases;
  for (std::size_t k = 0; k < 4; ++k)
    bases.push_back(arch::Addr{8192} * (k + 1) * 1000 + plan.offsets[k]);
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 1.0);
}

TEST(RowPlan, MatchesPaperParameters) {
  const arch::AddressMap map;
  const RowPlan plan = plan_row_layout(map);
  // Sect. 2.3: rows aligned to 512 bytes, shift = 128 bytes.
  EXPECT_EQ(plan.segment_align, 512u);
  EXPECT_EQ(plan.shift, 128u);
  const LayoutSpec spec = plan.spec();
  EXPECT_EQ(spec.segment_align, 512u);
  EXPECT_EQ(spec.shift, 128u);
  EXPECT_EQ(spec.offset, 0u);
}

TEST(RowPlan, SuccessiveRowsHitSuccessiveControllers) {
  const arch::AddressMap map;
  const RowPlan plan = plan_row_layout(map);
  // Row s starts at s*(512 + ...) hmm: aligned to 512 then shifted s*128;
  // relative controller of row s's start = s mod 4.
  for (unsigned s = 0; s < 8; ++s) {
    const arch::Addr start = arch::Addr{s} * plan.segment_align + s * plan.shift;
    EXPECT_EQ(map.controller_of(start), s % 4) << "row " << s;
  }
}

TEST(Diagnose, FullyAliasedStreams) {
  const arch::AddressMap map;
  const std::vector<arch::Addr> bases = {0, 512, 1024};
  const AliasReport report = diagnose_streams(bases, map);
  EXPECT_TRUE(report.fully_aliased);
  EXPECT_DOUBLE_EQ(report.balance, 0.25);
  EXPECT_EQ(report.base_controller, (std::vector<unsigned>{0, 0, 0}));
  EXPECT_NE(report.summary.find("FULLY-ALIASED"), std::string::npos);
}

TEST(Diagnose, BalancedStreams) {
  const arch::AddressMap map;
  const std::vector<arch::Addr> bases = {0, 128, 256, 384};
  const AliasReport report = diagnose_streams(bases, map);
  EXPECT_FALSE(report.fully_aliased);
  EXPECT_DOUBLE_EQ(report.balance, 1.0);
  EXPECT_EQ(report.base_controller, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Diagnose, EmptyInputIsNotAliased) {
  const arch::AddressMap map;
  EXPECT_THROW(diagnose_streams({}, map), std::invalid_argument);
}

TEST(StreamPlanDegraded, OffsetsLandOnTheGivenSurvivors) {
  const arch::AddressMap map;
  const std::vector<unsigned> surviving = {1, 3};
  const StreamPlan plan = plan_stream_offsets(4, map, surviving);
  // Stream k lands on surviving[k % 2].
  EXPECT_EQ(plan.offsets, (std::vector<std::size_t>{128, 384, 128, 384}));
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(map.controller_of(plan.offsets[k]), surviving[k % 2]);
}

TEST(StreamPlanDegraded, RejectsBadSurvivorSets) {
  const arch::AddressMap map;
  EXPECT_THROW(plan_stream_offsets(2, map, std::vector<unsigned>{}),
               std::invalid_argument);
  EXPECT_THROW(plan_stream_offsets(2, map, std::vector<unsigned>{0, 9}),
               std::invalid_argument);
  EXPECT_THROW(plan_stream_offsets(2, map, std::vector<unsigned>{1, 1}),
               std::invalid_argument);
}

// Property: for EVERY non-empty subset of surviving controllers and every
// stream count <= |subset|, the planned bases map to pairwise-distinct
// surviving controllers — no two concurrent streams may collide on a
// healthy controller.
TEST(StreamPlanDegraded, ConcurrentStreamsNeverShareASurvivor) {
  const arch::AddressMap map;
  for (unsigned mask = 1; mask < 16; ++mask) {
    std::vector<unsigned> surviving;
    for (unsigned c = 0; c < 4; ++c)
      if (mask & (1u << c)) surviving.push_back(c);
    for (std::size_t streams = 1; streams <= surviving.size(); ++streams) {
      const StreamPlan plan = plan_stream_offsets(streams, map, surviving);
      std::set<unsigned> used;
      for (std::size_t k = 0; k < streams; ++k) {
        const arch::Addr base = arch::Addr{8192} * (k + 5) + plan.offsets[k];
        const unsigned mc = map.controller_of(base);
        EXPECT_TRUE(used.insert(mc).second)
            << "mask " << mask << ": streams " << streams
            << " collide on controller " << mc;
        EXPECT_NE(std::find(surviving.begin(), surviving.end(), mc),
                  surviving.end())
            << "mask " << mask << ": stream " << k << " on dead controller";
      }
    }
  }
}

TEST(StreamPlanDegraded, PropertyHoldsOnCustomInterleave) {
  // 8 controllers, 64 B lines: same invariant on a non-T2 map.
  const arch::InterleaveSpec il{6, 1, 3};
  const arch::AddressMap map(il);
  const std::vector<unsigned> surviving = {0, 2, 5, 7};
  const StreamPlan plan =
      plan_stream_offsets(surviving.size(), map, surviving);
  std::set<unsigned> used;
  for (std::size_t k = 0; k < surviving.size(); ++k)
    used.insert(map.controller_of(plan.offsets[k]));
  EXPECT_EQ(used, std::set<unsigned>(surviving.begin(), surviving.end()));
}

TEST(RowPlanDegraded, ShiftCycleWalksTheSurvivors) {
  const arch::AddressMap map;
  const std::vector<unsigned> surviving = {0, 2, 3};
  const RowPlan plan = plan_row_layout(map, surviving);
  EXPECT_EQ(plan.shift_cycle, (std::vector<std::size_t>{0, 256, 384}));
  const LayoutSpec spec = plan.spec();
  EXPECT_EQ(spec.shift, 0u);
  EXPECT_EQ(spec.shift_cycle, plan.shift_cycle);
  // Row s (512-aligned + cycle displacement) lands on surviving[s % 3].
  for (unsigned s = 0; s < 9; ++s) {
    const arch::Addr start =
        arch::Addr{s} * 8192 + plan.shift_cycle[s % surviving.size()];
    EXPECT_EQ(map.controller_of(start), surviving[s % surviving.size()])
        << "row " << s;
  }
}

TEST(RowPlanDegraded, FullComplementMatchesHealthyRecipe) {
  // With all controllers alive the cycle is {0,128,256,384} — the same orbit
  // the healthy s*128 shift produces modulo the 512 B period.
  const arch::AddressMap map;
  const RowPlan plan = plan_row_layout(map, std::vector<unsigned>{0, 1, 2, 3});
  EXPECT_EQ(plan.shift_cycle, (std::vector<std::size_t>{0, 128, 256, 384}));
}

TEST(Planner, CustomInterleave) {
  // 2 controllers, 128 B lines: stride = period/2 = 512 B.
  const arch::InterleaveSpec spec{7, 2, 1};
  const arch::AddressMap map(spec);
  const StreamPlan plan = plan_stream_offsets(2, map);
  EXPECT_EQ(plan.offsets, (std::vector<std::size_t>{0, 512}));
  const RowPlan rows = plan_row_layout(map);
  EXPECT_EQ(rows.segment_align, 1024u);
  EXPECT_EQ(rows.shift, 512u);
}

}  // namespace
}  // namespace mcopt::seg
