// Tier-1 promotion of one hard chaos-soak schedule: overlapping outages on
// two controllers plus a straggler strand, thrown at a supervised triad that
// starts fully aliased. The nightly soak fuzzes random schedules; this test
// pins a known-hard one so the supervisor's invariants cannot silently decay
// between nightlies.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kernels/triad.h"
#include "runtime/supervised_loop.h"
#include "sim/fault_schedule.h"
#include "trace/virtual_arena.h"

namespace mcopt {
namespace {

constexpr std::size_t kN = 8192;
constexpr unsigned kThreads = 32;
constexpr unsigned kSlices = 10;

// The promoted schedule (percent stamps resolve against the probed horizon,
// so the scenario survives calibration changes): mc0 dies early, mc3 dies
// while mc0 is still down — two survivors for a stretch — and a strand lags
// through most of the run. Everything clears before the end.
constexpr const char* kHardSchedule =
    "mc0:off@15%..55%,mc3:off@35%..70%,strand5:lag=20@10%..80%";

TEST(ChaosRegression, HardScheduleKeepsSupervisorInvariants) {
  trace::VirtualArena arena;
  const arch::AddressMap map{arch::InterleaveSpec{}};
  const auto aliased =
      kernels::triad_layout_bases(arena, kernels::TriadLayout::kAligned8k, kN, map);

  runtime::LoopConfig cfg;
  cfg.threads = kThreads;
  cfg.slices = kSlices;

  // One unsupervised probe slice sizes the horizon for the percent stamps.
  runtime::LoopConfig probe = cfg;
  probe.slices = 1;
  probe.supervise = false;
  const auto one = runtime::run_supervised_triad(arena, aliased, kN, probe);
  const auto resolved = sim::FaultSchedule::parse(kHardSchedule)
                            .value()
                            .resolved(one.total_cycles * kSlices);
  ASSERT_TRUE(resolved.check(map.spec()).ok());
  cfg.sim.fault_schedule = resolved;

  cfg.supervise = true;
  const auto sup = runtime::run_supervised_triad(arena, aliased, kN, cfg);
  cfg.supervise = false;
  const auto unsup = runtime::run_supervised_triad(arena, aliased, kN, cfg);

  // I1: supervision never loses to its unsupervised twin. (This schedule is
  // hard precisely because healing does NOT pay: the diagnosis keeps
  // shifting under the overlapping epochs, and once a stable window opens
  // too few slices remain to amortize the copy — the break-even gate must
  // decline every replan rather than thrash.)
  EXPECT_GE(sup.bandwidth, 0.98 * unsup.bandwidth);

  // I2: every committed plan only targets its surviving set and spreads the
  // streams no denser than ceil(streams / survivors).
  for (const auto& replan : sup.replan_log) {
    ASSERT_FALSE(replan.plan_set.empty());
    std::vector<unsigned> count(map.spec().num_controllers(), 0);
    for (const arch::Addr base : replan.bases) {
      const unsigned c = map.controller_of(base);
      EXPECT_NE(std::find(replan.plan_set.begin(), replan.plan_set.end(), c),
                replan.plan_set.end())
          << "stream base on controller " << c << " outside planned set";
      ++count[c];
    }
    const auto streams = static_cast<unsigned>(replan.bases.size());
    const auto survivors = static_cast<unsigned>(replan.plan_set.size());
    const unsigned limit = (streams + survivors - 1) / survivors;
    for (unsigned c = 0; c < count.size(); ++c)
      EXPECT_LE(count[c], limit) << "controller " << c << " over-packed";
  }

  // I4: the schedule drains by 80% of the horizon — the run must converge
  // to a healthy belief with a bounded replan count (no thrash).
  EXPECT_FALSE(sup.final_diagnosis.any())
      << "final diagnosis: " << sup.final_diagnosis.describe();
  EXPECT_LE(sup.replans, static_cast<unsigned>(resolved.event_count()) + 2);
}

TEST(ChaosRegression, EarlyOutageStillHealsAliasedStart) {
  // Second promoted schedule: the outage clears early, leaving a healthy
  // window long enough that the layout-gain replan must fire and pay off.
  constexpr const char* kSchedule =
      "mc0:off@10%..30%,strand5:lag=20@5%..45%";

  trace::VirtualArena arena;
  const arch::AddressMap map{arch::InterleaveSpec{}};
  const auto aliased =
      kernels::triad_layout_bases(arena, kernels::TriadLayout::kAligned8k, kN, map);

  runtime::LoopConfig cfg;
  cfg.threads = kThreads;
  cfg.slices = kSlices;
  runtime::LoopConfig probe = cfg;
  probe.slices = 1;
  probe.supervise = false;
  const auto one = runtime::run_supervised_triad(arena, aliased, kN, probe);
  const auto resolved = sim::FaultSchedule::parse(kSchedule).value().resolved(
      one.total_cycles * kSlices);
  cfg.sim.fault_schedule = resolved;

  cfg.supervise = true;
  const auto sup = runtime::run_supervised_triad(arena, aliased, kN, cfg);
  cfg.supervise = false;
  const auto unsup = runtime::run_supervised_triad(arena, aliased, kN, cfg);

  EXPECT_GE(sup.replans, 1u);
  EXPECT_GT(sup.migration_cycles, 0u);
  EXPECT_GT(sup.bandwidth, unsup.bandwidth);
  EXPECT_FALSE(sup.final_diagnosis.any())
      << "final diagnosis: " << sup.final_diagnosis.describe();
  EXPECT_LE(sup.replans, static_cast<unsigned>(resolved.event_count()) + 2);
}

TEST(ChaosRegression, HardScheduleIsDeterministic) {
  // Replayability is what makes the soak debuggable: the same schedule and
  // seed must reproduce the same cycle count exactly.
  auto run_once = [] {
    trace::VirtualArena arena;
    const arch::AddressMap map{arch::InterleaveSpec{}};
    const auto aliased = kernels::triad_layout_bases(
        arena, kernels::TriadLayout::kAligned8k, kN, map);
    runtime::LoopConfig cfg;
    cfg.threads = kThreads;
    cfg.slices = kSlices;
    runtime::LoopConfig probe = cfg;
    probe.slices = 1;
    probe.supervise = false;
    const auto one = runtime::run_supervised_triad(arena, aliased, kN, probe);
    cfg.sim.fault_schedule = sim::FaultSchedule::parse(kHardSchedule)
                                 .value()
                                 .resolved(one.total_cycles * kSlices);
    return runtime::run_supervised_triad(arena, aliased, kN, cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.final_bases, b.final_bases);
}

}  // namespace
}  // namespace mcopt
