#include "kernels/triad.h"

#include <stdexcept>

#include "util/timer.h"

namespace mcopt::kernels {

void triad_local(double* a, const double* b, const double* c, const double* d,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + c[i] * d[i];
}

double triad_plain_sweep_seconds(double* a, const double* b, const double* c,
                                 const double* d, std::size_t n) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  util::Timer timer;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sn; ++i) a[i] = b[i] + c[i] * d[i];
  return timer.seconds();
}

double triad_segmented_sweep_seconds(seg::seg_array<double>& a,
                                     const seg::seg_array<double>& b,
                                     const seg::seg_array<double>& c,
                                     const seg::seg_array<double>& d) {
  const auto segments = static_cast<std::ptrdiff_t>(a.num_segments());
  if (b.num_segments() != a.num_segments() ||
      c.num_segments() != a.num_segments() ||
      d.num_segments() != a.num_segments())
    throw std::invalid_argument("triad_segmented: segment count mismatch");
  util::Timer timer;
  // The paper's structure: OpenMP over segments, serial kernel per segment.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t s = 0; s < segments; ++s) {
    const auto us = static_cast<std::size_t>(s);
    auto& seg_a = a.segment(us);
    triad_local(seg_a.begin(), b.segment(us).begin(), c.segment(us).begin(),
                d.segment(us).begin(), seg_a.size());
  }
  return timer.seconds();
}

std::uint64_t triad_actual_bytes(std::size_t n) {
  return 5ull * sizeof(double) * static_cast<std::uint64_t>(n);
}

std::vector<arch::Addr> triad_layout_bases(trace::VirtualArena& arena,
                                           TriadLayout layout, std::size_t n,
                                           const arch::AddressMap& map,
                                           std::size_t offset_scale_bytes) {
  const std::size_t bytes = n * sizeof(double);
  std::vector<arch::Addr> bases(4);
  switch (layout) {
    case TriadLayout::kPlain:
      for (auto& base : bases) base = arena.malloc_like(bytes);
      break;
    case TriadLayout::kAligned8k:
      for (auto& base : bases) base = arena.allocate(bytes, 8192);
      break;
    case TriadLayout::kPlannedOffsets: {
      // Planner recipe: array k displaced by k * (period/4); with the
      // default 128 B scale that is the paper's optimal 0/128/256/384 B.
      const std::size_t period = map.spec().period_bytes();
      for (std::size_t k = 0; k < bases.size(); ++k) {
        const std::size_t offset = k * offset_scale_bytes % period;
        bases[k] = arena.allocate(bytes + offset, 8192) + offset;
      }
      break;
    }
  }
  return bases;
}

sim::Workload make_triad_workload(const std::vector<arch::Addr>& bases,
                                  std::size_t n, unsigned num_threads,
                                  const sched::Schedule& schedule,
                                  unsigned sweeps) {
  if (bases.size() != 4)
    throw std::invalid_argument("make_triad_workload: need bases A,B,C,D");
  // Loads B, C, D then the store to A carrying the mul+add.
  const std::vector<trace::StreamDesc> streams = {
      {bases[1], false, 0},
      {bases[2], false, 0},
      {bases[3], false, 0},
      {bases[0], true, 2},
  };
  return trace::make_lockstep_workload(streams, sizeof(double), n, num_threads,
                                       schedule, sweeps);
}

}  // namespace mcopt::kernels
