#include "arch/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace mcopt::arch {
namespace {

TEST(CacheGeometry, T2DefaultsValidate) {
  const ChipTopology topo;
  EXPECT_NO_THROW(topo.validate());
  EXPECT_EQ(topo.l1d.num_sets(), 128u);
  EXPECT_EQ(topo.l2.num_sets(), 4096u);
  EXPECT_EQ(topo.l2.num_lines(), 65536u);
}

TEST(CacheGeometry, RejectsNonPowerOfTwo) {
  CacheGeometry g{3000, 64, 4};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {4096, 48, 4};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {4096, 64, 3};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {0, 64, 4};
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(ChipTopology, T2Shape) {
  const ChipTopology topo;
  EXPECT_EQ(topo.max_threads(), 64u);
  EXPECT_EQ(topo.threads_per_group(), 4u);
  EXPECT_NEAR(topo.cycle_ns(), 1.0 / 1.2, 1e-12);
}

TEST(ChipTopology, RejectsBadShapes) {
  ChipTopology topo;
  topo.thread_groups_per_core = 3;  // does not divide 8
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = ChipTopology{};
  topo.clock_ghz = 0.0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = ChipTopology{};
  topo.ls_pipes_per_core = 0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

class PlacementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlacementTest, EquidistantUsesDistinctStrands) {
  const ChipTopology topo;
  const unsigned n = GetParam();
  const Placement p = equidistant_placement(n, topo);
  ASSERT_EQ(p.hw_strand.size(), n);
  std::set<unsigned> strands(p.hw_strand.begin(), p.hw_strand.end());
  EXPECT_EQ(strands.size(), n);  // no double-booked strand
  for (unsigned s : strands) EXPECT_LT(s, topo.max_threads());
}

TEST_P(PlacementTest, EquidistantBalancesCores) {
  const ChipTopology topo;
  const unsigned n = GetParam();
  const Placement p = equidistant_placement(n, topo);
  std::vector<unsigned> per_core(topo.num_cores, 0);
  for (unsigned t = 0; t < n; ++t) ++per_core[p.core_of(t, topo)];
  const auto [lo, hi] = std::minmax_element(per_core.begin(), per_core.end());
  EXPECT_LE(*hi - *lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PlacementTest,
                         ::testing::Values(1, 7, 8, 9, 16, 32, 63, 64));

TEST(Placement, EquidistantEightUsesOnePerCore) {
  const ChipTopology topo;
  const Placement p = equidistant_placement(8, topo);
  for (unsigned t = 0; t < 8; ++t) {
    EXPECT_EQ(p.core_of(t, topo), t);
    EXPECT_EQ(p.strand_within_core(t, topo), 0u);
  }
}

TEST(Placement, PackedFillsCoreZeroFirst) {
  const ChipTopology topo;
  const Placement p = packed_placement(9, topo);
  for (unsigned t = 0; t < 8; ++t) EXPECT_EQ(p.core_of(t, topo), 0u);
  EXPECT_EQ(p.core_of(8, topo), 1u);
}

TEST(Placement, GroupOfMatchesStrand) {
  const ChipTopology topo;
  const Placement p = packed_placement(8, topo);
  // Strands 0-3 are group 0, strands 4-7 group 1.
  for (unsigned t = 0; t < 4; ++t) EXPECT_EQ(p.group_of(t, topo), 0u);
  for (unsigned t = 4; t < 8; ++t) EXPECT_EQ(p.group_of(t, topo), 1u);
}

TEST(Placement, RejectsBadCounts) {
  const ChipTopology topo;
  EXPECT_THROW(equidistant_placement(0, topo), std::invalid_argument);
  EXPECT_THROW(equidistant_placement(65, topo), std::invalid_argument);
  EXPECT_THROW(packed_placement(0, topo), std::invalid_argument);
  EXPECT_THROW(packed_placement(100, topo), std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::arch
