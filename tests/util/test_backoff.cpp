#include <gtest/gtest.h>

#include "util/backoff.h"

namespace mcopt::util {
namespace {

TEST(Backoff, EscalatesGeometricallyWithinJitterBounds) {
  Backoff b({.initial = 100, .multiplier = 2.0, .cap = 100000, .jitter = 0.1},
            42);
  double expected = 100.0;
  for (int i = 0; i < 8; ++i) {
    const auto delay = static_cast<double>(b.next());
    EXPECT_GE(delay, expected * 0.9 - 1.0);
    EXPECT_LE(delay, expected * 1.1 + 1.0);
    expected *= 2.0;
  }
  EXPECT_EQ(b.retries(), 8u);
}

TEST(Backoff, CapsAtConfiguredMaximum) {
  Backoff b({.initial = 10, .multiplier = 4.0, .cap = 100, .jitter = 0.0}, 1);
  EXPECT_EQ(b.next(), 10u);
  EXPECT_EQ(b.next(), 40u);
  EXPECT_EQ(b.next(), 100u);  // 160 capped
  EXPECT_EQ(b.next(), 100u);  // stays capped
}

TEST(Backoff, ResetReturnsToInitial) {
  Backoff b({.initial = 10, .multiplier = 2.0, .cap = 1000, .jitter = 0.0}, 1);
  b.next();
  b.next();
  EXPECT_EQ(b.retries(), 2u);
  b.reset();
  EXPECT_EQ(b.retries(), 0u);
  EXPECT_EQ(b.next(), 10u);
}

TEST(Backoff, EqualSeedsReplayExactly) {
  const BackoffConfig cfg{.initial = 1000, .multiplier = 2.0, .cap = 64000,
                          .jitter = 0.25};
  Backoff a(cfg, 7);
  Backoff b(cfg, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Backoff, NeverReturnsZero) {
  Backoff b({.initial = 1, .multiplier = 1.0, .cap = 1, .jitter = 0.9}, 3);
  for (int i = 0; i < 50; ++i) EXPECT_GE(b.next(), 1u);
}

TEST(Backoff, RejectsDegenerateConfigs) {
  EXPECT_THROW(Backoff({.initial = 0}), std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 1, .multiplier = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 100, .multiplier = 2.0, .cap = 10}),
               std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 1, .multiplier = 2.0, .cap = 10,
                        .jitter = 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::util
