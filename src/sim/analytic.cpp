#include "sim/analytic.h"

#include <algorithm>
#include <stdexcept>

#include "sim/numa.h"

namespace mcopt::sim {

std::vector<AnalyticStream> expand_rfo(std::span<const AnalyticStream> logical) {
  std::vector<AnalyticStream> physical;
  physical.reserve(logical.size() * 2);
  for (const AnalyticStream& s : logical) {
    if (s.write) {
      physical.push_back({s.base, false});  // RFO read
      physical.push_back({s.base, true});   // write-back
    } else {
      physical.push_back(s);
    }
  }
  return physical;
}

AnalyticEstimate estimate_bandwidth(std::span<const AnalyticStream> streams,
                                    unsigned num_threads,
                                    const arch::Calibration& cal,
                                    const arch::AddressMap& map,
                                    double clock_ghz, const FaultSpec& faults) {
  if (streams.empty()) throw std::invalid_argument("estimate_bandwidth: no streams");
  if (num_threads == 0) throw std::invalid_argument("estimate_bandwidth: no threads");

  const auto& spec = map.spec();
  const std::vector<unsigned> alive = faults.surviving_controllers(spec);
  if (alive.empty())
    throw std::invalid_argument("estimate_bandwidth: no surviving controllers");
  // Mirror the chip model: offline controllers' lines go to their remap
  // survivor, and a derated controller's service is 1/factor slower.
  const std::vector<unsigned> remap = faults.controller_remap(spec);
  std::vector<double> cost_scale(spec.num_controllers());
  for (unsigned c = 0; c < spec.num_controllers(); ++c)
    cost_scale[c] = 1.0 / faults.derate_of(c);
  const std::uint64_t steps = spec.period_bytes() / spec.line_size();
  const double read_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_read_service);
  const double write_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_write_service);

  std::vector<std::uint64_t> reads(spec.num_controllers());
  std::vector<std::uint64_t> writes(spec.num_controllers());
  std::vector<double> mc_cycles(spec.num_controllers(), 0.0);
  double total_step_cycles = 0.0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  double ideal_step_cycles = 0.0;

  for (std::uint64_t k = 0; k < steps; ++k) {
    std::fill(reads.begin(), reads.end(), 0);
    std::fill(writes.begin(), writes.end(), 0);
    for (const AnalyticStream& s : streams) {
      const unsigned c = remap[map.controller_of(s.base + k * spec.line_size())];
      if (s.write)
        ++writes[c];
      else
        ++reads[c];
    }
    double step_cost = 0.0;
    double step_work = 0.0;
    for (unsigned c = 0; c < spec.num_controllers(); ++c) {
      double cost = static_cast<double>(reads[c]) * read_cost +
                    static_cast<double>(writes[c]) * write_cost;
      // Mixed-direction service on a controller costs one amortized
      // turnaround per step (controllers batch same-direction transfers).
      if (reads[c] != 0 && writes[c] != 0)
        cost += static_cast<double>(cal.mc_turnaround);
      cost *= cost_scale[c];
      mc_cycles[c] += cost;
      step_cost = std::max(step_cost, cost);
      step_work += cost;
      total_reads += reads[c];
      total_writes += writes[c];
    }
    total_step_cycles += step_cost;
    // A perfectly balanced placement would split the same work evenly
    // across the controllers that still serve traffic.
    ideal_step_cycles += step_work / static_cast<double>(alive.size());
  }

  const double line = static_cast<double>(spec.line_size());
  const double bytes_per_period =
      static_cast<double>(total_reads + total_writes) * line;
  const double hz = clock_ghz * 1e9;

  AnalyticEstimate est;
  est.service_bandwidth = bytes_per_period / total_step_cycles * hz;
  est.balance = ideal_step_cycles / total_step_cycles;
  // Busy fraction over the service critical path: the makespan of one
  // period is total_step_cycles, of which controller c was busy mc_cycles[c]
  // (offline controllers received no remapped lines, so they read 0).
  est.mc_utilization.resize(spec.num_controllers());
  for (unsigned c = 0; c < spec.num_controllers(); ++c)
    est.mc_utilization[c] = mc_cycles[c] / total_step_cycles;

  // Latency/concurrency bound: each strand sustains one outstanding read
  // miss; writes drain through store buffers without blocking, so total
  // traffic scales read-limited throughput by total/read bytes.
  const double read_fraction =
      static_cast<double>(total_reads) / static_cast<double>(total_reads + total_writes);
  const double read_bw_limit = static_cast<double>(num_threads) * line /
                               static_cast<double>(cal.mem_latency) * hz;
  est.latency_bandwidth =
      read_fraction > 0.0 ? read_bw_limit / read_fraction : read_bw_limit;

  est.bandwidth = std::min(est.service_bandwidth, est.latency_bandwidth);
  return est;
}

ScheduledEstimate estimate_bandwidth_scheduled(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon) {
  if (schedule.has_relative())
    throw std::invalid_argument(
        "estimate_bandwidth_scheduled: schedule has unresolved percent bounds");
  if (horizon == 0 || horizon == FaultSchedule::kNever)
    throw std::invalid_argument(
        "estimate_bandwidth_scheduled: horizon must be a finite run length");

  ScheduledEstimate out;
  double weighted_bw = 0.0;
  double weighted_service = 0.0;
  double weighted_latency = 0.0;
  double weighted_balance = 0.0;
  std::vector<double> weighted_util(map.spec().num_controllers(), 0.0);
  for (const FaultSchedule::Epoch& e : schedule.epochs(horizon, baseline)) {
    ScheduledEstimate::EpochEstimate epoch;
    epoch.begin = e.begin;
    epoch.end = e.end;
    epoch.faults = e.faults.describe();
    epoch.estimate =
        estimate_bandwidth(streams, num_threads, cal, map, clock_ghz, e.faults);
    const double weight = static_cast<double>(e.end - e.begin) /
                          static_cast<double>(horizon);
    weighted_bw += epoch.estimate.bandwidth * weight;
    weighted_service += epoch.estimate.service_bandwidth * weight;
    weighted_latency += epoch.estimate.latency_bandwidth * weight;
    weighted_balance += epoch.estimate.balance * weight;
    for (std::size_t c = 0; c < weighted_util.size(); ++c)
      weighted_util[c] += epoch.estimate.mc_utilization[c] * weight;
    out.epochs.push_back(std::move(epoch));
  }
  out.whole.bandwidth = weighted_bw;
  out.whole.service_bandwidth = weighted_service;
  out.whole.latency_bandwidth = weighted_latency;
  out.whole.balance = weighted_balance;
  out.whole.mc_utilization = std::move(weighted_util);
  return out;
}

// ---------------------------------------------------------------------------
// NUMA node model.

NodeEstimate estimate_node_bandwidth(
    std::span<const std::vector<AnalyticStream>> socket_streams,
    std::span<const unsigned> socket_threads, const arch::Calibration& cal,
    const arch::AddressMap& map, const arch::NodeTopology& node,
    double clock_ghz, const FaultSpec& faults) {
  const unsigned n = node.num_sockets;
  if (socket_streams.size() != n || socket_threads.size() != n)
    throw std::invalid_argument(
        "estimate_node_bandwidth: need one stream set and thread count per "
        "socket");

  const auto& spec = map.spec();
  const std::uint64_t steps = spec.period_bytes() / spec.line_size();
  const double line = static_cast<double>(spec.line_size());
  const double hz = clock_ghz * 1e9;
  const double read_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_read_service);
  const double write_cost =
      static_cast<double>(cal.mc_request_overhead + cal.mc_write_service);
  const std::vector<unsigned> remap = faults.controller_remap(spec);

  NodeEstimate out;
  out.sockets.resize(n);
  double total_bytes = 0.0;
  double remote_bytes = 0.0;
  double makespan_cycles = 0.0;  // slowest socket's cycles per period

  for (unsigned s = 0; s < n; ++s) {
    NodeSocketEstimate& sock = out.sockets[s];
    sock.link_utilization.assign(n, 0.0);
    const std::vector<AnalyticStream>& streams = socket_streams[s];
    if (streams.empty()) continue;
    if (socket_threads[s] == 0)
      throw std::invalid_argument(
          "estimate_node_bandwidth: socket with streams but no threads");

    const NumaRoutes routes = resolve_numa_routes(node, faults, s);
    // A derated socket slows its own controllers too (Chip::apply_faults).
    const double socket_factor = faults.socket_derate_of(s);
    std::vector<double> cost_scale(spec.num_controllers());
    for (unsigned c = 0; c < spec.num_controllers(); ++c)
      cost_scale[c] = 1.0 / (faults.derate_of(c) * socket_factor);

    std::vector<std::uint64_t> reads(spec.num_controllers());
    std::vector<std::uint64_t> writes(spec.num_controllers());
    std::vector<double> mc_cycles(spec.num_controllers(), 0.0);
    std::vector<double> link_cycles(n, 0.0);
    std::vector<std::uint64_t> link_lines(n, 0);
    double total_step_cycles = 0.0;
    double ideal_step_cycles = 0.0;
    std::uint64_t local_reads = 0;
    std::uint64_t local_writes = 0;
    std::uint64_t remote_lines = 0;
    std::uint64_t remote_reads = 0;
    double read_latency_sum = 0.0;
    const std::vector<unsigned> alive = faults.surviving_controllers(spec);

    for (std::uint64_t k = 0; k < steps; ++k) {
      std::fill(reads.begin(), reads.end(), 0);
      std::fill(writes.begin(), writes.end(), 0);
      std::vector<double> step_link(n, 0.0);
      for (const AnalyticStream& st : streams) {
        const arch::Addr a = st.base + k * spec.line_size();
        const unsigned serving = routes.home_serving[node.home_socket_of(a)];
        if (serving == s) {
          const unsigned c = remap[map.controller_of(a)];
          if (st.write)
            ++writes[c];
          else {
            ++reads[c];
            read_latency_sum += static_cast<double>(cal.mem_latency);
          }
        } else {
          const double cyc = static_cast<double>(routes.line_cycles[serving]);
          step_link[serving] += cyc;
          link_cycles[serving] += cyc;
          ++link_lines[serving];
          ++remote_lines;
          if (!st.write) {
            ++remote_reads;
            read_latency_sum += static_cast<double>(cal.mem_latency +
                                                    routes.latency[serving]);
          }
        }
      }
      double step_cost = 0.0;
      double step_work = 0.0;
      for (unsigned c = 0; c < spec.num_controllers(); ++c) {
        double cost = static_cast<double>(reads[c]) * read_cost +
                      static_cast<double>(writes[c]) * write_cost;
        if (reads[c] != 0 && writes[c] != 0)
          cost += static_cast<double>(cal.mc_turnaround);
        cost *= cost_scale[c];
        mc_cycles[c] += cost;
        step_cost = std::max(step_cost, cost);
        step_work += cost;
        local_reads += reads[c];
        local_writes += writes[c];
      }
      for (unsigned t = 0; t < n; ++t)
        step_cost = std::max(step_cost, step_link[t]);
      total_step_cycles += step_cost;
      ideal_step_cycles +=
          step_work / static_cast<double>(std::max<std::size_t>(
                          alive.size(), 1));
    }

    const std::uint64_t lines_per_period =
        static_cast<std::uint64_t>(streams.size()) * steps;
    const std::uint64_t total_reads_s =
        local_reads + remote_reads;
    sock.bytes_per_period = static_cast<double>(lines_per_period) * line;
    sock.remote_fraction = static_cast<double>(remote_lines) /
                           static_cast<double>(lines_per_period);

    AnalyticEstimate& est = sock.chip;
    est.service_bandwidth = sock.bytes_per_period / total_step_cycles * hz;
    est.balance =
        total_step_cycles > 0.0 ? ideal_step_cycles / total_step_cycles : 0.0;
    est.mc_utilization.resize(spec.num_controllers());
    for (unsigned c = 0; c < spec.num_controllers(); ++c)
      est.mc_utilization[c] = mc_cycles[c] / total_step_cycles;
    for (unsigned t = 0; t < n; ++t)
      sock.link_utilization[t] = link_cycles[t] / total_step_cycles;

    // Concurrency bound: each strand sustains one outstanding read miss
    // whose round trip is DRAM latency plus, for remote reads, the path's
    // extra fill latency — averaged over the socket's read lines.
    const double avg_read_latency =
        total_reads_s != 0
            ? read_latency_sum / static_cast<double>(total_reads_s)
            : static_cast<double>(cal.mem_latency);
    const double read_fraction =
        static_cast<double>(total_reads_s) /
        static_cast<double>(lines_per_period);
    const double read_bw_limit =
        static_cast<double>(socket_threads[s]) * line / avg_read_latency * hz;
    est.latency_bandwidth =
        read_fraction > 0.0 ? read_bw_limit / read_fraction : read_bw_limit;
    est.bandwidth = std::min(est.service_bandwidth, est.latency_bandwidth);

    total_bytes += sock.bytes_per_period;
    remote_bytes += static_cast<double>(remote_lines) * line;
    // Cycles this socket needs per period at its own bandwidth.
    makespan_cycles =
        std::max(makespan_cycles, sock.bytes_per_period / est.bandwidth * hz);
  }

  if (makespan_cycles > 0.0)
    out.bandwidth = total_bytes / makespan_cycles * hz;
  out.remote_fraction =
      total_bytes > 0.0 ? remote_bytes / total_bytes : 0.0;
  return out;
}

ScheduledNodeEstimate estimate_node_bandwidth_scheduled(
    std::span<const std::vector<AnalyticStream>> socket_streams,
    std::span<const unsigned> socket_threads, const arch::Calibration& cal,
    const arch::AddressMap& map, const arch::NodeTopology& node,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon) {
  if (schedule.has_relative())
    throw std::invalid_argument(
        "estimate_node_bandwidth_scheduled: schedule has unresolved percent "
        "bounds");
  if (horizon == 0 || horizon == FaultSchedule::kNever)
    throw std::invalid_argument(
        "estimate_node_bandwidth_scheduled: horizon must be a finite run "
        "length");

  ScheduledNodeEstimate out;
  out.whole.sockets.resize(node.num_sockets);
  for (auto& sock : out.whole.sockets)
    sock.link_utilization.assign(node.num_sockets, 0.0);
  for (const FaultSchedule::Epoch& e : schedule.epochs(horizon, baseline)) {
    ScheduledNodeEstimate::EpochEstimate epoch;
    epoch.begin = e.begin;
    epoch.end = e.end;
    epoch.faults = e.faults.describe();
    epoch.estimate = estimate_node_bandwidth(
        socket_streams, socket_threads, cal, map, node, clock_ghz, e.faults);
    const double weight = static_cast<double>(e.end - e.begin) /
                          static_cast<double>(horizon);
    out.whole.bandwidth += epoch.estimate.bandwidth * weight;
    out.whole.remote_fraction += epoch.estimate.remote_fraction * weight;
    for (unsigned s = 0; s < node.num_sockets; ++s) {
      const NodeSocketEstimate& from = epoch.estimate.sockets[s];
      NodeSocketEstimate& into = out.whole.sockets[s];
      into.chip.bandwidth += from.chip.bandwidth * weight;
      into.chip.service_bandwidth += from.chip.service_bandwidth * weight;
      into.chip.latency_bandwidth += from.chip.latency_bandwidth * weight;
      into.chip.balance += from.chip.balance * weight;
      into.remote_fraction += from.remote_fraction * weight;
      into.bytes_per_period += from.bytes_per_period * weight;
      if (into.chip.mc_utilization.size() < from.chip.mc_utilization.size())
        into.chip.mc_utilization.resize(from.chip.mc_utilization.size(), 0.0);
      for (std::size_t c = 0; c < from.chip.mc_utilization.size(); ++c)
        into.chip.mc_utilization[c] += from.chip.mc_utilization[c] * weight;
      for (std::size_t t = 0; t < from.link_utilization.size(); ++t)
        into.link_utilization[t] += from.link_utilization[t] * weight;
    }
    out.epochs.push_back(std::move(epoch));
  }
  return out;
}

}  // namespace mcopt::sim
