#include "trace/virtual_arena.h"

#include <gtest/gtest.h>

#include "seg/seg_array.h"

namespace mcopt::trace {
namespace {

TEST(VirtualArena, AllocatesAligned) {
  VirtualArena arena;
  const arch::Addr a = arena.allocate(100, 8192);
  EXPECT_EQ(a % 8192, 0u);
  const arch::Addr b = arena.allocate(100, 8192);
  EXPECT_EQ(b % 8192, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(VirtualArena, StartsAtConfiguredBase) {
  VirtualArena arena(0x1000);
  EXPECT_EQ(arena.allocate(8, 8), 0x1000u);
}

TEST(VirtualArena, RejectsBadAlignment) {
  VirtualArena arena;
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
}

TEST(VirtualArena, RejectsSizeOverflow) {
  VirtualArena arena;  // base = 1 << 32
  EXPECT_THROW(arena.allocate(~std::uint64_t{0}, 8), std::overflow_error);
  // A size that fits only below the base must also be rejected.
  EXPECT_THROW(arena.allocate(~std::uint64_t{0} - (arch::Addr{1} << 31), 8),
               std::overflow_error);
}

TEST(VirtualArena, RejectsAlignmentRoundUpOverflow) {
  // next_ so close to the top that rounding up to the alignment wraps.
  VirtualArena arena(~arch::Addr{0} - 100);
  EXPECT_THROW(arena.allocate(8, 8192), std::overflow_error);
}

TEST(VirtualArena, AllocatesRightUpToTheTop) {
  VirtualArena arena(~arch::Addr{0} - 127);  // 128 bytes of headroom
  const arch::Addr a = arena.allocate(64, 1);
  EXPECT_EQ(a, ~arch::Addr{0} - 127);
  EXPECT_THROW(arena.allocate(128, 1), std::overflow_error);
  EXPECT_NO_THROW(arena.allocate(63, 1));  // last addressable byte
}

TEST(VirtualArena, StateUnchangedAfterRejectedAllocation) {
  VirtualArena arena;
  const arch::Addr before = arena.next();
  EXPECT_THROW(arena.allocate(~std::uint64_t{0}, 8), std::overflow_error);
  EXPECT_EQ(arena.next(), before);
}

TEST(VirtualArena, MallocLikeRejectsOverflow) {
  VirtualArena arena;
  EXPECT_THROW(arena.malloc_like(~std::uint64_t{0} - 8), std::overflow_error);
}

TEST(VirtualArena, MallocLikeKeepsBlocksContiguousModuloHeader) {
  VirtualArena arena;
  const std::size_t bytes = 1 << 20;
  const arch::Addr a = arena.malloc_like(bytes);
  const arch::Addr b = arena.malloc_like(bytes);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  // Consecutive large mallocs: 16-byte header between blocks.
  EXPECT_EQ(b - a, bytes + 16);
}

TEST(VirtualArena, MallocLikeOddSizesRoundUp) {
  VirtualArena arena;
  const arch::Addr a = arena.malloc_like(100);
  const arch::Addr b = arena.malloc_like(100);
  // Usable size rounds up to 112, plus the 16-byte header of block b.
  EXPECT_EQ(b - a, 112u + 16u);
}

TEST(VirtualSegArray, PositionsFollowLayout) {
  VirtualArena arena;
  seg::LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  spec.shift = 128;
  const VirtualSegArray a(arena, {64, 64, 64}, sizeof(double), spec);
  EXPECT_EQ(a.base() % 8192, 0u);
  EXPECT_EQ(a.num_segments(), 3u);
  EXPECT_EQ(a.size(), 192u);
  EXPECT_EQ(a.segment_base(0), a.base());
  EXPECT_EQ(a.segment_base(1), a.base() + 512 + 128);
  EXPECT_EQ(a.segment_base(2), a.base() + 1024 + 256);
  EXPECT_EQ(a.address_of(1, 3), a.segment_base(1) + 24);
}

TEST(VirtualSegArray, EvenSplitMatchesPaperRule) {
  VirtualArena arena;
  seg::LayoutSpec spec;
  const auto a = VirtualSegArray::even(arena, 10, 4, 8, spec);
  EXPECT_EQ(a.segment_size(0), 3u);
  EXPECT_EQ(a.segment_size(3), 2u);
}

TEST(VirtualSegArray, MatchesRealSegArrayPositions) {
  // The virtual and real containers must compute identical layouts.
  seg::LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  spec.shift = 256;
  spec.offset = 128;
  const std::vector<std::size_t> sizes = {100, 37, 0, 450};
  VirtualArena arena;
  const VirtualSegArray v(arena, sizes, sizeof(double), spec);
  const seg::seg_array<double> r(sizes, spec);
  for (std::size_t s = 0; s < sizes.size(); ++s)
    EXPECT_EQ(v.segment_base(s) - v.base(), r.segment_position(s)) << s;
}

TEST(VirtualSegArray, RejectsZeroElementSize) {
  VirtualArena arena;
  EXPECT_THROW(VirtualSegArray(arena, {1}, 0, seg::LayoutSpec{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::trace
