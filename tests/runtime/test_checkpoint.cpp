#include "runtime/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kernels/jacobi.h"
#include "util/prng.h"

namespace mcopt::runtime {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcopt_ckpt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.kind = 77;
  ckpt.iteration = 123456789;
  ckpt.user = {1, 2, 3, 4};
  ckpt.sections.push_back({0x00, 0xFF, 0x10, 0x20});
  ckpt.sections.push_back({});  // empty sections are legal
  std::vector<std::uint8_t> big(1000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 31);
  ckpt.sections.push_back(std::move(big));
  return ckpt;
}

std::vector<std::uint8_t> read_file(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST_F(CheckpointTest, RoundTripPreservesEverything) {
  const Checkpoint ckpt = sample_checkpoint();
  const std::string p = path("ck");
  ASSERT_TRUE(save_checkpoint(p, ckpt).ok());
  EXPECT_FALSE(fs::exists(p + ".tmp")) << "temp file must be renamed away";
  auto loaded = load_checkpoint(p);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_EQ(loaded.value().kind, ckpt.kind);
  EXPECT_EQ(loaded.value().iteration, ckpt.iteration);
  EXPECT_EQ(loaded.value().user, ckpt.user);
  EXPECT_EQ(loaded.value().sections, ckpt.sections);
}

TEST_F(CheckpointTest, SaveOverwritesAtomically) {
  const std::string p = path("ck");
  Checkpoint first = sample_checkpoint();
  ASSERT_TRUE(save_checkpoint(p, first).ok());
  Checkpoint second = sample_checkpoint();
  second.iteration = 42;
  ASSERT_TRUE(save_checkpoint(p, second).ok());
  auto loaded = load_checkpoint(p);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_EQ(loaded.value().iteration, 42u);
}

TEST_F(CheckpointTest, MissingFileIsTypedFailure) {
  auto loaded = load_checkpoint(path("nope"));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().message.find("cannot open"), std::string::npos);
}

TEST_F(CheckpointTest, ForeignFileIsRejected) {
  const std::string p = path("notes.txt");
  write_file(p, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd', '!',
                 ' ', 't', 'h', 'i', 's', ' ', 'i', 's', ' ', 'n', 'o', 't',
                 ' ', 'a', ' ', 'c', 'h', 'e', 'c', 'k', 'p', 'o', 'i', 'n',
                 't', ' ', 'f', 'i', 'l', 'e', ' ', 'a', 't', ' ', 'a', 'l',
                 'l', ',', ' ', 's', 'o', 'r', 'r', 'y', '.', '.', '.', '.',
                 '.', '.', '.', '.'});
  auto loaded = load_checkpoint(p);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().message.find("bad magic"), std::string::npos);
}

// The torn-write guarantee: truncating the file at ANY byte offset must
// produce a typed refusal, never a crash or a successful load.
TEST_F(CheckpointTest, TruncationAtEveryOffsetIsDetected) {
  const std::string p = path("ck");
  ASSERT_TRUE(save_checkpoint(p, sample_checkpoint()).ok());
  const std::vector<std::uint8_t> good = read_file(p);
  ASSERT_GT(good.size(), 100u);
  const std::string torn = path("torn");
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    write_file(torn, {good.begin(), good.begin() + cut});
    auto loaded = load_checkpoint(torn);
    ASSERT_FALSE(loaded.has_value()) << "load succeeded at cut=" << cut;
    ASSERT_FALSE(loaded.error().message.empty());
  }
}

// ... and so must a single flipped bit anywhere in the file (fuzz over a
// seeded sample of offsets plus every byte of header and section table).
TEST_F(CheckpointTest, BitFlipAtAnyOffsetIsDetected) {
  const std::string p = path("ck");
  ASSERT_TRUE(save_checkpoint(p, sample_checkpoint()).ok());
  const std::vector<std::uint8_t> good = read_file(p);
  auto roundtrips = load_checkpoint(p);
  ASSERT_TRUE(roundtrips.has_value()) << roundtrips.error().message;

  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 108 && i < good.size(); ++i)
    offsets.push_back(i);  // header + table, exhaustively
  util::Xoshiro256 rng(2026);
  for (int i = 0; i < 200; ++i)
    offsets.push_back(rng.below(good.size()));

  const std::string flipped = path("flipped");
  for (const std::size_t at : offsets) {
    std::vector<std::uint8_t> bad = good;
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    write_file(flipped, bad);
    auto loaded = load_checkpoint(flipped);
    ASSERT_FALSE(loaded.has_value()) << "flip at byte " << at << " undetected";
    ASSERT_FALSE(loaded.error().message.empty());
  }
}

TEST_F(CheckpointTest, SectionLengthLiesAreRejectedNotTrusted) {
  // Even if an attacker-style edit fixes no CRCs, a section length pointing
  // past EOF must fail with a range diagnostic, not an out-of-bounds read.
  const std::string p = path("ck");
  ASSERT_TRUE(save_checkpoint(p, sample_checkpoint()).ok());
  std::vector<std::uint8_t> bad = read_file(p);
  bad[60] = 0xFF;  // low byte of section 0's u64 length
  bad[61] = 0xFF;
  bad[62] = 0xFF;
  write_file(p, bad);
  auto loaded = load_checkpoint(p);
  ASSERT_FALSE(loaded.has_value());
}

TEST_F(CheckpointTest, JacobiRoundTripIsBitwiseExact) {
  const std::size_t n = 16;
  auto src = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  auto dst = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  kernels::init_jacobi(src);
  kernels::init_jacobi(dst);
  for (int sweep = 0; sweep < 9; ++sweep) {
    kernels::jacobi_sweep_seconds(src, dst, sched::Schedule::static_block());
    std::swap(src, dst);
  }
  const std::string p = path("jacobi");
  ASSERT_TRUE(save_jacobi_checkpoint(p, src, 9).ok());

  auto state = load_jacobi_checkpoint(p);
  ASSERT_TRUE(state.has_value()) << state.error().message;
  EXPECT_EQ(state.value().n, n);
  EXPECT_EQ(state.value().sweeps, 9u);

  auto restored = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  kernels::init_jacobi(restored);
  ASSERT_TRUE(apply_jacobi_state(state.value(), restored).ok());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(restored.segment(i)[j], src.segment(i)[j]);

  auto wrong_size = kernels::make_jacobi_grid(8, kernels::jacobi_plain_spec());
  EXPECT_FALSE(apply_jacobi_state(state.value(), wrong_size).ok());
}

kernels::lbm::Solver::Params lbm_params(std::size_t n) {
  kernels::lbm::Solver::Params p;
  p.geometry = kernels::lbm::Geometry{n, n, n, 0,
                                      kernels::lbm::DataLayout::kIJKv};
  p.force = {1e-5, 0.0, 0.0};
  return p;
}

TEST_F(CheckpointTest, LbmResumeContinuesBitwiseIdentically) {
  const auto params = lbm_params(6);
  kernels::lbm::Solver a(params);
  a.make_channel_walls_z();
  a.initialize(1.0);
  for (int step = 0; step < 6; ++step) a.step();

  const std::string p = path("lbm");
  ASSERT_TRUE(save_lbm_checkpoint(p, a).ok());
  for (int step = 0; step < 4; ++step) a.step();

  kernels::lbm::Solver b(params);
  b.make_channel_walls_z();
  const auto status = load_lbm_checkpoint(p, b);
  ASSERT_TRUE(status.ok()) << status.error().message;
  EXPECT_EQ(b.steps_taken(), 6u);
  for (int step = 0; step < 4; ++step) b.step();
  EXPECT_EQ(a.distributions(), b.distributions());
}

TEST_F(CheckpointTest, LbmRefusesMismatchedGeometryAndKind) {
  kernels::lbm::Solver small(lbm_params(4));
  small.initialize(1.0);
  small.step();
  const std::string p = path("lbm4");
  ASSERT_TRUE(save_lbm_checkpoint(p, small).ok());

  kernels::lbm::Solver big(lbm_params(6));
  const auto mismatch = load_lbm_checkpoint(p, big);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.error().message.find("4x4x4"), std::string::npos);

  auto layout = lbm_params(4);
  layout.geometry.layout = kernels::lbm::DataLayout::kIvJK;
  kernels::lbm::Solver other_layout(layout);
  EXPECT_FALSE(load_lbm_checkpoint(p, other_layout).ok());

  // A Jacobi checkpoint must be refused by the LBM loader and vice versa.
  auto grid = kernels::make_jacobi_grid(8, kernels::jacobi_plain_spec());
  kernels::init_jacobi(grid);
  const std::string jp = path("jacobi");
  ASSERT_TRUE(save_jacobi_checkpoint(jp, grid, 1).ok());
  kernels::lbm::Solver s(lbm_params(4));
  EXPECT_FALSE(load_lbm_checkpoint(jp, s).ok());
  auto cross = load_jacobi_checkpoint(p);
  EXPECT_FALSE(cross.has_value());
}

TEST_F(CheckpointTest, UnwritableDirectoryIsTypedFailure) {
  const auto status =
      save_checkpoint((dir_ / "no" / "such" / "dir" / "ck").string(),
                      sample_checkpoint());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("cannot create"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::runtime
