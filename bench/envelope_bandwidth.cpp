// Sect. 1/2.1 headline numbers: the attainable bandwidth envelope.
//
// The paper reports that only about ONE THIRD of the nominal 42 GB/s read
// bandwidth is attainable, that load-only kernels reach somewhat more than
// mixed ones (citing Williams et al.), and that STREAM copy tops out around
// 18 GB/s of actual traffic (12 GB/s reported). This bench measures the
// whole envelope on the simulator: pure loads, copy, triad, and the vector
// triad, each at its best (planner-skewed) layout, 64 threads.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Bandwidth envelope: pure-load / copy / triad vs nominal");
  cli.flag("full", "larger arrays")
      .option_int("n", 1 << 19, "array length in DP words")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;
  const auto n =
      static_cast<std::size_t>(cli.get_flag("full") ? (1 << 22) : cli.get_int("n"));

  std::printf(
      "# Attainable memory traffic at 64 threads, best layout per kernel\n"
      "# nominal: 42 GB/s read + 21 GB/s write aggregate (Sect. 1)\n\n");

  std::vector<std::vector<std::string>> rows;

  // Pure loads: four read streams, planner offsets, no stores at all.
  {
    trace::VirtualArena arena;
    std::vector<trace::StreamDesc> streams;
    for (std::size_t k = 0; k < 4; ++k)
      streams.push_back({arena.allocate(n * 8 + 512, 8192) + k * 128, false, 0});
    auto wl = trace::make_lockstep_workload(streams, 8, n, 64,
                                            sched::Schedule::static_block());
    sim::SimConfig cfg;
    sim::Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
    const auto res = chip.run(wl);
    rows.push_back({"pure loads (4 streams)",
                    util::fmt_fixed(res.memory_bandwidth() / 1e9, 2), "42.00",
                    util::fmt_fixed(res.memory_bandwidth() / 42e9 * 100, 1) + "%"});
  }

  auto stream_row = [&](kernels::StreamOp op, const char* name) {
    // Best case: a skewed offset (40 DP words).
    const double reported = bench::stream_reported_gbs(op, n, 40, 64);
    const double actual = reported *
                          static_cast<double>(kernels::stream_actual_bytes(op, n)) /
                          static_cast<double>(kernels::stream_reported_bytes(op, n));
    rows.push_back({name, util::fmt_fixed(actual, 2), "63.00",
                    util::fmt_fixed(actual / 63e9 * 100 * 1e9, 1) + "%"});
    return reported;
  };
  const double copy_rep = stream_row(kernels::StreamOp::kCopy, "STREAM copy (actual)");
  const double triad_rep = stream_row(kernels::StreamOp::kTriad, "STREAM triad (actual)");

  // Vector triad at planner offsets.
  {
    const arch::AddressMap map;
    trace::VirtualArena arena;
    const auto bases =
        kernels::triad_layout_bases(arena, kernels::TriadLayout::kPlannedOffsets, n, map);
    const double actual = bench::triad_actual_gbs(bases, n, 64);
    rows.push_back({"vector triad (actual)", util::fmt_fixed(actual, 2), "63.00",
                    util::fmt_fixed(actual / 63e9 * 100 * 1e9, 1) + "%"});
  }

  bench::emit({"kernel", "GB/s", "nominal GB/s", "fraction"}, rows,
              cli.get_str("csv"));

  std::printf(
      "\nshape check: STREAM reported copy %.2f / triad %.2f GB/s; the paper "
      "measures ~12 / ~11 and notes only ~1/3 of nominal is attainable.\n",
      copy_rep, triad_rep);
  return 0;
}
