#include "trace/stream_program.h"

#include <gtest/gtest.h>

namespace mcopt::trace {
namespace {

std::vector<sim::Access> drain(sim::AccessProgram& p, std::size_t batch = 7) {
  std::vector<sim::Access> all;
  std::vector<sim::Access> buf(batch);
  while (true) {
    const std::size_t got = p.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(), buf.begin() + got);
  }
  return all;
}

TEST(LockstepStreamProgram, EmitsStreamsInOrderPerIteration) {
  const std::vector<StreamDesc> streams = {
      {1000, false, 0}, {2000, false, 0}, {3000, true, 2}};
  LockstepStreamProgram p(streams, 8, {{0, 3}}, 1);
  const auto all = drain(p);
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(p.total_accesses(), 9u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(all[3 * i + 0].addr, 1000 + 8 * i);
    EXPECT_EQ(all[3 * i + 1].addr, 2000 + 8 * i);
    EXPECT_EQ(all[3 * i + 2].addr, 3000 + 8 * i);
    EXPECT_EQ(all[3 * i + 0].op, sim::Op::kLoad);
    EXPECT_EQ(all[3 * i + 2].op, sim::Op::kStore);
    EXPECT_EQ(all[3 * i + 2].flops_before, 2);
    EXPECT_TRUE(all[3 * i + 0].begins_iteration);
    EXPECT_FALSE(all[3 * i + 1].begins_iteration);
    EXPECT_FALSE(all[3 * i + 2].begins_iteration);
  }
}

TEST(LockstepStreamProgram, MultipleChunksAndSweeps) {
  const std::vector<StreamDesc> streams = {{0, false, 0}};
  LockstepStreamProgram p(streams, 8, {{0, 2}, {10, 12}}, 3);
  const auto all = drain(p, 3);
  ASSERT_EQ(all.size(), 12u);
  EXPECT_EQ(p.total_accesses(), 12u);
  // One sweep visits 0,1,10,11 in element units.
  for (unsigned sweep = 0; sweep < 3; ++sweep) {
    EXPECT_EQ(all[4 * sweep + 0].addr, 0u);
    EXPECT_EQ(all[4 * sweep + 1].addr, 8u);
    EXPECT_EQ(all[4 * sweep + 2].addr, 80u);
    EXPECT_EQ(all[4 * sweep + 3].addr, 88u);
  }
}

TEST(LockstepStreamProgram, ResetReplays) {
  const std::vector<StreamDesc> streams = {{0, false, 0}, {64, true, 1}};
  LockstepStreamProgram p(streams, 8, {{0, 5}}, 1);
  const auto first = drain(p);
  p.reset();
  const auto second = drain(p);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].addr, second[i].addr);
    EXPECT_EQ(first[i].op, second[i].op);
  }
}

TEST(LockstepStreamProgram, EmptyChunksYieldNothing) {
  const std::vector<StreamDesc> streams = {{0, false, 0}};
  LockstepStreamProgram p(streams, 8, {}, 2);
  EXPECT_EQ(p.total_accesses(), 0u);
  std::vector<sim::Access> buf(4);
  EXPECT_EQ(p.next_batch(buf), 0u);
  LockstepStreamProgram q(streams, 8, {{5, 5}}, 2);
  EXPECT_EQ(drain(q).size(), 0u);
}

TEST(LockstepStreamProgram, RejectsDegenerate) {
  EXPECT_THROW(LockstepStreamProgram({}, 8, {{0, 1}}, 1), std::invalid_argument);
  EXPECT_THROW(LockstepStreamProgram({{0, false, 0}}, 0, {{0, 1}}, 1),
               std::invalid_argument);
}

TEST(MakeLockstepWorkload, PartitionCoversAllIterations) {
  const std::vector<StreamDesc> streams = {{0, false, 0}, {1 << 20, true, 0}};
  const std::size_t n = 1001;
  auto wl = make_lockstep_workload(streams, 8, n, 7,
                                   sched::Schedule::static_block(), 2);
  ASSERT_EQ(wl.size(), 7u);
  std::uint64_t total = 0;
  for (const auto& p : wl) total += p->total_accesses();
  EXPECT_EQ(total, n * streams.size() * 2);
}

}  // namespace
}  // namespace mcopt::trace
