// Closed-form NUMA model tests: the node estimate must reproduce the DES's
// placement ordering (local > interleaved > remote), pin forced-remote
// traffic at the link cap, track fault-driven routing, and compose over a
// fault schedule with epoch-length weights.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/analytic.h"
#include "sim/node.h"
#include "trace/stream_program.h"

namespace mcopt::sim {
namespace {

const arch::AddressMap kMap;
const arch::Calibration kCal;
constexpr double kGhz = 1.2;

FaultSpec spec(const std::string& text) {
  auto parsed = FaultSpec::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.value_or(FaultSpec{});
}

// Four read streams spread over all controllers, homed per `bases`.
std::vector<AnalyticStream> spread(std::initializer_list<arch::Addr> bases) {
  std::vector<AnalyticStream> s;
  for (const arch::Addr b : bases) s.push_back({b, false});
  return s;
}

struct NodeInput {
  std::vector<std::vector<AnalyticStream>> streams;
  std::vector<unsigned> threads;
};

NodeInput two_sockets(const arch::NodeTopology& node, bool remote) {
  NodeInput in;
  for (unsigned s = 0; s < 2; ++s) {
    const arch::Addr base = node.socket_base(remote ? 1 - s : s);
    in.streams.push_back(spread({base, base + 128, base + 256, base + 384}));
    in.threads.push_back(64);
  }
  return in;
}

TEST(NodeAnalytic, SingleSocketReducesToChipModel) {
  arch::NodeTopology node;
  node.num_sockets = 1;
  const auto streams = spread({0, 128, 256, 384});
  const std::vector<std::vector<AnalyticStream>> ss = {streams};
  const std::vector<unsigned> threads = {64};
  const NodeEstimate est =
      estimate_node_bandwidth(ss, threads, kCal, kMap, node, kGhz);
  const AnalyticEstimate chip =
      estimate_bandwidth(streams, 64, kCal, kMap, kGhz);
  EXPECT_NEAR(est.bandwidth, chip.bandwidth, 0.01 * chip.bandwidth);
  EXPECT_DOUBLE_EQ(est.remote_fraction, 0.0);
}

TEST(NodeAnalytic, LocalBeatsInterleavedBeatsRemote) {
  const arch::NodeTopology node;
  const NodeInput local = two_sockets(node, /*remote=*/false);
  const NodeInput remote = two_sockets(node, /*remote=*/true);
  NodeInput inter;
  for (unsigned s = 0; s < 2; ++s) {
    // Half of each socket's streams homed on the peer: the analytic stand-in
    // for page-interleaved placement.
    const arch::Addr own = node.socket_base(s);
    const arch::Addr peer = node.socket_base(1 - s);
    inter.streams.push_back(
        spread({own, peer + 128, own + 256, peer + 384}));
    inter.threads.push_back(64);
  }

  const NodeEstimate l = estimate_node_bandwidth(local.streams, local.threads,
                                                 kCal, kMap, node, kGhz);
  const NodeEstimate i = estimate_node_bandwidth(inter.streams, inter.threads,
                                                 kCal, kMap, node, kGhz);
  const NodeEstimate r = estimate_node_bandwidth(remote.streams, remote.threads,
                                                 kCal, kMap, node, kGhz);

  EXPECT_GT(l.bandwidth, 1.1 * i.bandwidth);
  EXPECT_GT(i.bandwidth, 1.1 * r.bandwidth);
  EXPECT_DOUBLE_EQ(l.remote_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.remote_fraction, 1.0);
  EXPECT_NEAR(i.remote_fraction, 0.5, 0.05);

  // Forced-remote pins at the two link ports' aggregate cap.
  const double link_bw =
      64.0 / static_cast<double>(node.link_line_cycles) * kGhz * 1e9;
  EXPECT_NEAR(r.bandwidth, 2.0 * link_bw, 0.05 * 2.0 * link_bw);
  EXPECT_GT(r.sockets[0].link_utilization[1], 0.9);
  EXPECT_DOUBLE_EQ(l.sockets[0].link_utilization[1], 0.0);
}

TEST(NodeAnalytic, DeadPeerDomainFailsOverToLocalService) {
  const arch::NodeTopology node;
  // Socket 0 works on data homed in socket 1's (dead) domain; the remap
  // serves it from socket 0's own memory so nothing crosses a link.
  const arch::Addr peer = node.socket_base(1);
  const std::vector<std::vector<AnalyticStream>> ss = {
      spread({peer, peer + 128, peer + 256, peer + 384}), {}};
  const std::vector<unsigned> threads = {64, 0};
  const NodeEstimate dead = estimate_node_bandwidth(ss, threads, kCal, kMap,
                                                    node, kGhz, spec("sock1:off"));
  const NodeEstimate healthy =
      estimate_node_bandwidth(ss, threads, kCal, kMap, node, kGhz);
  EXPECT_DOUBLE_EQ(dead.remote_fraction, 0.0);
  EXPECT_GT(dead.bandwidth, 1.5 * healthy.bandwidth);  // local beats the link
  EXPECT_DOUBLE_EQ(dead.sockets[1].bytes_per_period, 0.0);
}

TEST(NodeAnalytic, SocketDerateSlowsRemoteService) {
  const arch::NodeTopology node;
  const NodeInput remote = two_sockets(node, /*remote=*/true);
  const NodeEstimate healthy = estimate_node_bandwidth(
      remote.streams, remote.threads, kCal, kMap, node, kGhz);
  const NodeEstimate derated =
      estimate_node_bandwidth(remote.streams, remote.threads, kCal, kMap, node,
                              kGhz, spec("sock1:derate=0.5"));
  // Socket 0's fills are served by the half-speed socket 1 at twice the
  // per-line cost; the node as a whole slows down.
  EXPECT_LT(derated.bandwidth, 0.8 * healthy.bandwidth);
}

TEST(NodeAnalytic, ScheduledComposeWithEpochWeights) {
  const arch::NodeTopology node;
  const NodeInput remote = two_sockets(node, /*remote=*/true);
  constexpr arch::Cycles kHorizon = 1'000'000;
  const FaultSchedule schedule =
      FaultSchedule::parse("link0-1:derate=0.5@500000").value();
  const ScheduledNodeEstimate est = estimate_node_bandwidth_scheduled(
      remote.streams, remote.threads, kCal, kMap, node, kGhz, FaultSpec{},
      schedule, kHorizon);
  ASSERT_EQ(est.epochs.size(), 2u);
  EXPECT_EQ(est.epochs[0].begin, 0u);
  EXPECT_EQ(est.epochs[0].end, 500'000u);
  EXPECT_EQ(est.epochs[1].end, kHorizon);
  EXPECT_EQ(est.epochs[0].faults, "healthy");
  EXPECT_NE(est.epochs[1].faults.find("link0-1:derate"), std::string::npos);
  // The derated epoch halves the link cap; the whole-run figure is the
  // epoch-length-weighted mean, strictly between the two.
  EXPECT_LT(est.epochs[1].estimate.bandwidth, est.epochs[0].estimate.bandwidth);
  EXPECT_GT(est.whole.bandwidth, est.epochs[1].estimate.bandwidth);
  EXPECT_LT(est.whole.bandwidth, est.epochs[0].estimate.bandwidth);
  EXPECT_NEAR(est.whole.bandwidth,
              (est.epochs[0].estimate.bandwidth +
               est.epochs[1].estimate.bandwidth) /
                  2.0,
              0.01 * est.whole.bandwidth);
}

// The analytic node model must track the Node DES where the link is the
// binding constraint: forced-remote STREAM pins at the port cap in both.
TEST(NodeAnalytic, TracksDesOnForcedRemote) {
  using trace::LockstepStreamProgram;
  using trace::StreamDesc;
  constexpr unsigned kThreads = 32;
  constexpr std::size_t kN = 8192;

  NodeConfig cfg;
  Node des(cfg);
  std::vector<Workload> wls;
  std::vector<std::vector<AnalyticStream>> ss(2);
  std::vector<unsigned> threads(2, kThreads);
  for (unsigned s = 0; s < 2; ++s) {
    Workload wl;
    for (unsigned t = 0; t < kThreads; ++t) {
      const arch::Addr base = cfg.node.socket_base(1 - s) +
                              t * ((arch::Addr{1} << 20) + 128);
      std::vector<StreamDesc> sd{{base, false, 0}};
      wl.push_back(std::make_unique<LockstepStreamProgram>(
          sd, sizeof(double), std::vector<sched::IterRange>{{0, kN}}, 1));
      ss[s].push_back({base, false});
    }
    wls.push_back(std::move(wl));
  }
  const NodeResult res = des.run(wls);
  const NodeEstimate est =
      estimate_node_bandwidth(ss, threads, kCal, kMap, cfg.node, kGhz);
  EXPECT_NEAR(est.bandwidth, res.memory_bandwidth(),
              0.15 * res.memory_bandwidth());
  EXPECT_NEAR(est.remote_fraction, res.remote_fraction(), 0.01);
}

}  // namespace
}  // namespace mcopt::sim
