#include "kernels/stream.h"

#include <stdexcept>

#include "util/timer.h"

namespace mcopt::kernels {

std::string to_string(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy: return "copy";
    case StreamOp::kScale: return "scale";
    case StreamOp::kAdd: return "add";
    case StreamOp::kTriad: return "triad";
  }
  return "?";
}

double stream_sweep_seconds(StreamOp op, double* a, double* b, double* c,
                            std::size_t n, double s) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  util::Timer timer;
  switch (op) {
    case StreamOp::kCopy:
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < sn; ++i) c[i] = a[i];
      break;
    case StreamOp::kScale:
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < sn; ++i) b[i] = s * c[i];
      break;
    case StreamOp::kAdd:
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < sn; ++i) c[i] = a[i] + b[i];
      break;
    case StreamOp::kTriad:
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < sn; ++i) a[i] = b[i] + s * c[i];
      break;
  }
  return timer.seconds();
}

std::uint64_t stream_reported_bytes(StreamOp op, std::size_t n) {
  const std::uint64_t word = 8;
  const auto un = static_cast<std::uint64_t>(n);
  switch (op) {
    case StreamOp::kCopy:
    case StreamOp::kScale:
      return 2 * word * un;
    case StreamOp::kAdd:
    case StreamOp::kTriad:
      return 3 * word * un;
  }
  return 0;
}

std::uint64_t stream_actual_bytes(StreamOp op, std::size_t n) {
  // Write-allocate adds one read (RFO) per stored word.
  return stream_reported_bytes(op, n) + 8 * static_cast<std::uint64_t>(n);
}

std::vector<trace::StreamDesc> stream_descs(StreamOp op, const StreamBases& bases) {
  switch (op) {
    case StreamOp::kCopy:
      return {{bases.a, false, 0}, {bases.c, true, 0}};
    case StreamOp::kScale:
      return {{bases.c, false, 0}, {bases.b, true, 1}};
    case StreamOp::kAdd:
      return {{bases.a, false, 0}, {bases.b, false, 0}, {bases.c, true, 1}};
    case StreamOp::kTriad:
      return {{bases.b, false, 0}, {bases.c, false, 0}, {bases.a, true, 2}};
  }
  throw std::invalid_argument("stream_descs: bad op");
}

sim::Workload make_stream_workload(StreamOp op, const StreamBases& bases,
                                   std::size_t n, unsigned num_threads,
                                   const sched::Schedule& schedule,
                                   unsigned sweeps) {
  return trace::make_lockstep_workload(stream_descs(op, bases), sizeof(double), n,
                                       num_threads, schedule, sweeps);
}

StreamBases common_block_bases(arch::Addr block_base, std::size_t n,
                               std::size_t offset_dp_words) {
  const arch::Addr ndim_bytes =
      static_cast<arch::Addr>(n + offset_dp_words) * sizeof(double);
  return StreamBases{block_base, block_base + ndim_bytes,
                     block_base + 2 * ndim_bytes};
}

}  // namespace mcopt::kernels
