#pragma once
// 2D Jacobi five-point relaxation solver (Sect. 2.3).
//
// The grid is a seg_array with one row per segment, so the row layout is
// governed by the Fig. 3 parameters; the paper's optimal configuration
// (512 B row alignment, 128 B cumulative shift, OpenMP "static,1") comes
// from seg::plan_row_layout. Native OpenMP execution for correctness and
// host measurements; trace::make_jacobi_workload replays the same loop on
// the simulator for Fig. 6.

#include <cstddef>
#include <vector>

#include "seg/planner.h"
#include "seg/seg_array.h"
#include "sched/schedule.h"
#include "trace/jacobi_program.h"
#include "trace/virtual_arena.h"

namespace mcopt::kernels {

/// The paper's serial row kernel: dl[j] = 0.25*(sa[j]+sb[j]+sl[j-1]+sl[j+1])
/// for j in [1, n-1). sa/sb are the rows above/below, sl the current row.
void relax_line(double* dl, const double* sa, const double* sb,
                const double* sl, std::size_t n) noexcept;

/// Builds an n x n grid with one row per segment under `spec`.
[[nodiscard]] seg::seg_array<double> make_jacobi_grid(std::size_t n,
                                                      const seg::LayoutSpec& spec);

/// Dirichlet setup: boundary = 1, interior = 0.
void init_jacobi(seg::seg_array<double>& grid);

/// One OpenMP sweep src -> dst over interior rows; `schedule` maps to the
/// matching OpenMP runtime schedule. Returns wall seconds.
double jacobi_sweep_seconds(const seg::seg_array<double>& src,
                            seg::seg_array<double>& dst,
                            const sched::Schedule& schedule);

/// Max-norm of the difference between two grids (convergence monitor).
[[nodiscard]] double jacobi_max_delta(const seg::seg_array<double>& a,
                                      const seg::seg_array<double>& b);

/// Bitwise-exact rebuild of row `s` of `field`, where `field` is the result
/// of one sweep over `prev`: boundary rows/columns are the Dirichlet
/// condition (1.0) and interior values re-run relax_line on prev's rows
/// s-1, s, s+1. This is the integrity layer's Jacobi rebuild recipe — a
/// corrupted row of the current grid is recoverable from the previous one
/// without recomputing the sweep.
void jacobi_rebuild_row(seg::seg_array<double>& field,
                        const seg::seg_array<double>& prev, std::size_t s);

/// Reference dense sweep for correctness tests (row-major n*n vectors).
void jacobi_reference_sweep(const std::vector<double>& src,
                            std::vector<double>& dst, std::size_t n);

/// Owning bundle of the two virtual toggle grids for simulator runs.
struct VirtualJacobi {
  trace::VirtualSegArray source;
  trace::VirtualSegArray dest;
  std::size_t n = 0;

  [[nodiscard]] trace::JacobiGrids grids() const {
    return trace::JacobiGrids{&source, &dest, n};
  }
};

/// Builds virtual toggle grids (one row per segment) under `spec`.
[[nodiscard]] VirtualJacobi make_virtual_jacobi(trace::VirtualArena& arena,
                                                std::size_t n,
                                                const seg::LayoutSpec& spec);

/// The two Fig. 6 layout presets: plain (dense rows, no alignment) and the
/// planner's optimal row layout.
[[nodiscard]] seg::LayoutSpec jacobi_plain_spec();
[[nodiscard]] seg::LayoutSpec jacobi_optimal_spec(const arch::AddressMap& map);

}  // namespace mcopt::kernels
