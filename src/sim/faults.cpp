#include "sim/faults.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mcopt::sim {

bool FaultSpec::is_offline(unsigned controller) const noexcept {
  return std::find(offline_controllers.begin(), offline_controllers.end(),
                   controller) != offline_controllers.end();
}

double FaultSpec::derate_of(unsigned controller) const noexcept {
  double factor = 1.0;
  for (const Derate& d : derates)
    if (d.controller == controller) factor *= d.factor;
  return factor;
}

arch::Cycles FaultSpec::bank_extra(unsigned bank) const noexcept {
  arch::Cycles extra = 0;
  for (const SlowBank& b : slow_banks)
    if (b.bank == bank) extra += b.extra_busy;
  return extra;
}

arch::Cycles FaultSpec::straggle_of(unsigned thread) const noexcept {
  arch::Cycles extra = 0;
  for (const Straggler& s : stragglers)
    if (s.thread == thread) extra += s.extra_cycles;
  return extra;
}

double FaultSpec::flip_rate_of(unsigned controller) const noexcept {
  // Independent sources combine by inclusion-exclusion (p + r - p*r), which
  // — unlike 1 - prod(1 - r) — is exact for the common single-entry case
  // even at rates near machine epsilon.
  double p = 0.0;
  for (const BitFlip& f : flips)
    if (f.controller == controller) p += f.rate - p * f.rate;
  return p;
}

bool FaultSpec::is_socket_offline(unsigned socket) const noexcept {
  return std::find(offline_sockets.begin(), offline_sockets.end(), socket) !=
         offline_sockets.end();
}

double FaultSpec::socket_derate_of(unsigned socket) const noexcept {
  double factor = 1.0;
  for (const SocketDerate& d : socket_derates)
    if (d.socket == socket) factor *= d.factor;
  return factor;
}

bool FaultSpec::is_link_offline(unsigned i, unsigned j) const noexcept {
  for (const LinkFault& l : link_faults)
    if (l.offline && ((l.a == i && l.b == j) || (l.a == j && l.b == i)))
      return true;
  return false;
}

double FaultSpec::link_derate_of(unsigned i, unsigned j) const noexcept {
  double factor = 1.0;
  for (const LinkFault& l : link_faults)
    if (!l.offline && ((l.a == i && l.b == j) || (l.a == j && l.b == i)))
      factor *= l.factor;
  return factor;
}

std::vector<unsigned> FaultSpec::surviving_sockets(unsigned num_sockets) const {
  std::vector<unsigned> alive;
  for (unsigned s = 0; s < num_sockets; ++s)
    if (!is_socket_offline(s)) alive.push_back(s);
  return alive;
}

std::vector<unsigned> FaultSpec::socket_remap(unsigned num_sockets) const {
  const std::vector<unsigned> alive = surviving_sockets(num_sockets);
  std::vector<unsigned> remap(num_sockets);
  std::size_t next_survivor = 0;  // spread dead domains' load round-robin
  for (unsigned s = 0; s < num_sockets; ++s) {
    if (!is_socket_offline(s)) {
      remap[s] = s;
    } else {
      remap[s] = alive.at(next_survivor % alive.size());
      ++next_survivor;
    }
  }
  return remap;
}

std::vector<unsigned> FaultSpec::surviving_controllers(
    const arch::InterleaveSpec& spec) const {
  std::vector<unsigned> alive;
  for (unsigned c = 0; c < spec.num_controllers(); ++c)
    if (!is_offline(c)) alive.push_back(c);
  return alive;
}

std::vector<unsigned> FaultSpec::controller_remap(
    const arch::InterleaveSpec& spec) const {
  const std::vector<unsigned> alive = surviving_controllers(spec);
  std::vector<unsigned> remap(spec.num_controllers());
  std::size_t next_survivor = 0;  // spread dead controllers' load round-robin
  for (unsigned c = 0; c < spec.num_controllers(); ++c) {
    if (!is_offline(c)) {
      remap[c] = c;
    } else {
      remap[c] = alive.at(next_survivor % alive.size());
      ++next_survivor;
    }
  }
  return remap;
}

util::Status FaultSpec::check(const arch::InterleaveSpec& spec,
                              unsigned num_sockets) const {
  util::Status status;
  std::vector<unsigned> seen_off;
  for (unsigned c : offline_controllers) {
    if (c >= spec.num_controllers())
      status.note("FaultSpec: offline controller " + std::to_string(c) +
                  " out of range (chip has " +
                  std::to_string(spec.num_controllers()) + ")");
    if (std::find(seen_off.begin(), seen_off.end(), c) != seen_off.end())
      status.note("FaultSpec: controller " + std::to_string(c) +
                  " offlined more than once");
    else
      seen_off.push_back(c);
  }
  if (surviving_controllers(spec).empty())
    status.note("FaultSpec: at least one controller must survive");
  for (const Derate& d : derates) {
    if (d.controller >= spec.num_controllers())
      status.note("FaultSpec: derated controller " +
                  std::to_string(d.controller) + " out of range");
    if (!(d.factor > 0.0) || d.factor > 1.0)
      status.note("FaultSpec: derate factor " + std::to_string(d.factor) +
                  " must lie in (0, 1]");
    if (is_offline(d.controller))
      status.note("FaultSpec: controller " + std::to_string(d.controller) +
                  " is both offline and derated (dead beats slow; pick one)");
  }
  for (const SlowBank& b : slow_banks)
    if (b.bank >= spec.num_banks())
      status.note("FaultSpec: slow bank " + std::to_string(b.bank) +
                  " out of range (chip has " + std::to_string(spec.num_banks()) +
                  ")");
  for (const BitFlip& f : flips) {
    if (f.controller >= spec.num_controllers())
      status.note("FaultSpec: flipping controller " +
                  std::to_string(f.controller) + " out of range");
    if (!(f.rate >= 0.0) || f.rate > 1.0)
      status.note("FaultSpec: flip rate " + std::to_string(f.rate) +
                  " must lie in [0, 1]");
    if (is_offline(f.controller))
      status.note("FaultSpec: controller " + std::to_string(f.controller) +
                  " is both offline and flipping (a dead channel moves no "
                  "bits to corrupt; pick one)");
  }

  // Socket/link classes. With the default num_sockets == 1 any such fault is
  // invalid: a single-chip run cannot honor them and must say so rather than
  // silently simulating a healthy machine.
  const bool numa = num_sockets > 1;
  std::vector<unsigned> seen_sock_off;
  for (unsigned s : offline_sockets) {
    if (!numa)
      status.note("FaultSpec: sock" + std::to_string(s) +
                  ":off requires a multi-socket topology");
    else if (s >= num_sockets)
      status.note("FaultSpec: offline socket " + std::to_string(s) +
                  " out of range (node has " + std::to_string(num_sockets) +
                  ")");
    if (std::find(seen_sock_off.begin(), seen_sock_off.end(), s) !=
        seen_sock_off.end())
      status.note("FaultSpec: socket " + std::to_string(s) +
                  " offlined more than once");
    else
      seen_sock_off.push_back(s);
  }
  if (numa && surviving_sockets(num_sockets).empty())
    status.note("FaultSpec: at least one socket's memory must survive");
  for (const SocketDerate& d : socket_derates) {
    if (!numa)
      status.note("FaultSpec: sock" + std::to_string(d.socket) +
                  ":derate requires a multi-socket topology");
    else if (d.socket >= num_sockets)
      status.note("FaultSpec: derated socket " + std::to_string(d.socket) +
                  " out of range");
    if (!(d.factor > 0.0) || d.factor > 1.0)
      status.note("FaultSpec: socket derate factor " +
                  std::to_string(d.factor) + " must lie in (0, 1]");
    if (is_socket_offline(d.socket))
      status.note("FaultSpec: socket " + std::to_string(d.socket) +
                  " is both offline and derated (dead beats slow; pick one)");
  }
  for (const LinkFault& l : link_faults) {
    const std::string name =
        "link" + std::to_string(l.a) + "-" + std::to_string(l.b);
    if (!numa)
      status.note("FaultSpec: " + name +
                  " requires a multi-socket topology");
    else if (l.a >= num_sockets || l.b >= num_sockets)
      status.note("FaultSpec: " + name + " endpoint out of range (node has " +
                  std::to_string(num_sockets) + " sockets)");
    if (l.a == l.b)
      status.note("FaultSpec: " + name +
                  " connects a socket to itself (no such link)");
    if (!l.offline && (!(l.factor > 0.0) || l.factor > 1.0))
      status.note("FaultSpec: " + name + " derate factor " +
                  std::to_string(l.factor) + " must lie in (0, 1]");
    if (!l.offline && is_link_offline(l.a, l.b))
      status.note("FaultSpec: " + name +
                  " is both offline and derated (dead beats slow; pick one)");
  }
  return status;
}

FaultSpec FaultSpec::merged(const FaultSpec& a, const FaultSpec& b) {
  FaultSpec out;
  for (const FaultSpec* part : {&a, &b})
    for (unsigned c : part->offline_controllers)
      if (!out.is_offline(c)) out.offline_controllers.push_back(c);
  std::sort(out.offline_controllers.begin(), out.offline_controllers.end());
  for (const FaultSpec* part : {&a, &b}) {
    for (const Derate& d : part->derates)
      if (!out.is_offline(d.controller)) out.derates.push_back(d);
    for (const BitFlip& f : part->flips)
      if (!out.is_offline(f.controller)) out.flips.push_back(f);
    out.slow_banks.insert(out.slow_banks.end(), part->slow_banks.begin(),
                          part->slow_banks.end());
    out.stragglers.insert(out.stragglers.end(), part->stragglers.begin(),
                          part->stragglers.end());
  }
  // Socket classes mirror the controller rules one level up: offline sets
  // dedupe, dead beats slow.
  for (const FaultSpec* part : {&a, &b})
    for (unsigned s : part->offline_sockets)
      if (!out.is_socket_offline(s)) out.offline_sockets.push_back(s);
  std::sort(out.offline_sockets.begin(), out.offline_sockets.end());
  for (const FaultSpec* part : {&a, &b})
    for (const SocketDerate& d : part->socket_derates)
      if (!out.is_socket_offline(d.socket)) out.socket_derates.push_back(d);
  // Links: offline entries dedupe (unordered pair), derates on a dead link
  // are dropped, remaining derates concatenate (link_derate_of multiplies).
  for (const FaultSpec* part : {&a, &b})
    for (const LinkFault& l : part->link_faults)
      if (l.offline && !out.is_link_offline(l.a, l.b))
        out.link_faults.push_back(l);
  for (const FaultSpec* part : {&a, &b})
    for (const LinkFault& l : part->link_faults)
      if (!l.offline && !out.is_link_offline(l.a, l.b))
        out.link_faults.push_back(l);
  return out;
}

namespace {

/// Shortest decimal string that strtod's back to exactly `value`, so
/// describe() → parse() is lossless (the round-trip fuzz test leans on this;
/// a fixed "%.2f" silently truncated derates like 0.375).
std::string format_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace

std::string FaultSpec::describe() const {
  if (!any()) return "healthy";
  std::string out;
  const auto append = [&out](const std::string& item) {
    if (!out.empty()) out += ' ';
    out += item;
  };
  for (unsigned c : offline_controllers) append("mc" + std::to_string(c) + ":off");
  for (const Derate& d : derates)
    append("mc" + std::to_string(d.controller) +
           ":derate=" + format_double(d.factor));
  for (const BitFlip& f : flips)
    append("mc" + std::to_string(f.controller) +
           ":flip=" + format_double(f.rate));
  for (const SlowBank& b : slow_banks)
    append("bank" + std::to_string(b.bank) +
           ":slow=" + std::to_string(b.extra_busy));
  for (const Straggler& s : stragglers)
    append("strand" + std::to_string(s.thread) +
           ":lag=" + std::to_string(s.extra_cycles));
  for (unsigned s : offline_sockets)
    append("sock" + std::to_string(s) + ":off");
  for (const SocketDerate& d : socket_derates)
    append("sock" + std::to_string(d.socket) +
           ":derate=" + format_double(d.factor));
  for (const LinkFault& l : link_faults)
    append("link" + std::to_string(l.a) + "-" + std::to_string(l.b) +
           (l.offline ? std::string(":off")
                      : ":derate=" + format_double(l.factor)));
  return out;
}

namespace {

/// Splits "a,b,c" into trimmed non-empty items.
std::vector<std::string> split_items(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(start, comma - start);
    const auto lo = item.find_first_not_of(" \t");
    const auto hi = item.find_last_not_of(" \t");
    if (lo != std::string::npos) items.push_back(item.substr(lo, hi - lo + 1));
    start = comma + 1;
  }
  return items;
}

/// Parses the digits after a known prefix; false on junk.
bool parse_index(const std::string& text, const char* prefix, unsigned& index,
                 std::size_t& consumed) {
  const std::string p(prefix);
  if (text.rfind(p, 0) != 0) return false;
  std::size_t pos = p.size();
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
    return false;
  unsigned long value = 0;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<unsigned long>(text[pos] - '0');
    if (value > 1u << 20) return false;  // absurd index: reject early
    ++pos;
  }
  index = static_cast<unsigned>(value);
  consumed = pos;
  return true;
}

}  // namespace

util::Expected<FaultSpec> FaultSpec::parse(const std::string& text) {
  return parse(text, FaultLimits{});
}

util::Expected<FaultSpec> FaultSpec::parse(const std::string& text,
                                           const FaultLimits& limits) {
  using Result = util::Expected<FaultSpec>;
  FaultSpec spec;
  // Parse-time index validation (a limit of 0 = unchecked): failing here
  // names the offending item, which apply-time check() cannot do.
  const auto check_limit = [](unsigned index, unsigned limit, const char* kind,
                              const std::string& item) -> util::Status {
    util::Status status;
    if (limit != 0 && index >= limit)
      status.note("FaultSpec: " + std::string(kind) + " " +
                  std::to_string(index) + " in '" + item +
                  "' out of range (topology has " + std::to_string(limit) +
                  ")");
    return status;
  };
  for (const std::string& item : split_items(text)) {
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos)
      return Result::failure("FaultSpec: '" + item +
                             "' is missing ':' (expected e.g. mc0:off)");
    const std::string target = item.substr(0, colon);
    const std::string action = item.substr(colon + 1);

    unsigned index = 0;
    std::size_t consumed = 0;
    const auto numeric_arg = [&](const std::string& key) -> util::Expected<double> {
      const std::string prefix = key + "=";
      if (action.rfind(prefix, 0) != 0)
        return util::Expected<double>::failure(
            "FaultSpec: '" + item + "' expects " + key + "=<value>");
      const std::string value = action.substr(prefix.size());
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0')
        return util::Expected<double>::failure("FaultSpec: malformed value in '" +
                                               item + "'");
      return parsed;
    };

    // Cycle counts ride through strtod; bound them before the uint64 cast
    // (a 1e30 or NaN straight into static_cast<Cycles> is UB). 2^53 keeps
    // the double exactly representable and comfortably inside uint64.
    const auto cycle_arg = [&](const std::string& key) -> util::Expected<arch::Cycles> {
      const auto parsed = numeric_arg(key);
      if (!parsed) return util::Expected<arch::Cycles>::failure(parsed.error().message);
      constexpr double kMaxCycles = 9007199254740992.0;  // 2^53
      if (!(parsed.value() >= 0.0 && parsed.value() <= kMaxCycles))
        return util::Expected<arch::Cycles>::failure(
            "FaultSpec: " + key + " cycles in '" + item +
            "' must lie in [0, 2^53]");
      return static_cast<arch::Cycles>(parsed.value());
    };

    if (parse_index(target, "mc", index, consumed) && consumed == target.size()) {
      const util::Status in_range =
          check_limit(index, limits.num_controllers, "controller", item);
      if (!in_range.ok()) return Result::failure(in_range.error().message);
      if (action == "off") {
        spec.offline_controllers.push_back(index);
      } else if (action.rfind("derate=", 0) == 0) {
        const auto factor = numeric_arg("derate");
        if (!factor) return Result::failure(factor.error().message);
        spec.derates.push_back({index, factor.value()});
      } else if (action.rfind("flip=", 0) == 0) {
        const auto rate = numeric_arg("flip");
        if (!rate) return Result::failure(rate.error().message);
        if (!(rate.value() >= 0.0 && rate.value() <= 1.0))
          return Result::failure("FaultSpec: flip rate in '" + item +
                                 "' must lie in [0, 1]");
        spec.flips.push_back({index, rate.value()});
      } else {
        return Result::failure("FaultSpec: unknown controller action in '" +
                               item + "' (use off, derate=<f> or flip=<r>)");
      }
    } else if (parse_index(target, "bank", index, consumed) &&
               consumed == target.size()) {
      const util::Status in_range =
          check_limit(index, limits.num_banks, "bank", item);
      if (!in_range.ok()) return Result::failure(in_range.error().message);
      const auto cycles = cycle_arg("slow");
      if (!cycles) return Result::failure(cycles.error().message);
      spec.slow_banks.push_back({index, cycles.value()});
    } else if (parse_index(target, "strand", index, consumed) &&
               consumed == target.size()) {
      const util::Status in_range =
          check_limit(index, limits.num_threads, "strand", item);
      if (!in_range.ok()) return Result::failure(in_range.error().message);
      const auto cycles = cycle_arg("lag");
      if (!cycles) return Result::failure(cycles.error().message);
      spec.stragglers.push_back({index, cycles.value()});
    } else if (parse_index(target, "sock", index, consumed) &&
               consumed == target.size()) {
      const util::Status in_range =
          check_limit(index, limits.num_sockets, "socket", item);
      if (!in_range.ok()) return Result::failure(in_range.error().message);
      if (action == "off") {
        spec.offline_sockets.push_back(index);
      } else if (action.rfind("derate=", 0) == 0) {
        const auto factor = numeric_arg("derate");
        if (!factor) return Result::failure(factor.error().message);
        spec.socket_derates.push_back({index, factor.value()});
      } else {
        return Result::failure("FaultSpec: unknown socket action in '" + item +
                               "' (use off or derate=<f>)");
      }
    } else if (parse_index(target, "link", index, consumed) &&
               consumed < target.size() && target[consumed] == '-') {
      unsigned other = 0;
      std::size_t tail = 0;
      const std::string rest = target.substr(consumed + 1);
      // Reuse the digit parser on the second endpoint ("" prefix).
      if (!parse_index(rest, "", other, tail) || tail != rest.size())
        return Result::failure("FaultSpec: malformed link pair in '" + item +
                               "' (use link<i>-<j>)");
      for (unsigned endpoint : {index, other}) {
        const util::Status in_range =
            check_limit(endpoint, limits.num_sockets, "link endpoint", item);
        if (!in_range.ok()) return Result::failure(in_range.error().message);
      }
      if (action == "off") {
        spec.link_faults.push_back({index, other, 1.0, /*offline=*/true});
      } else if (action.rfind("derate=", 0) == 0) {
        const auto factor = numeric_arg("derate");
        if (!factor) return Result::failure(factor.error().message);
        spec.link_faults.push_back({index, other, factor.value(),
                                    /*offline=*/false});
      } else {
        return Result::failure("FaultSpec: unknown link action in '" + item +
                               "' (use off or derate=<f>)");
      }
    } else {
      return Result::failure(
          "FaultSpec: unknown target in '" + item +
          "' (use mc<i>, bank<i>, strand<t>, sock<i> or link<i>-<j>)");
    }
  }
  return spec;
}

}  // namespace mcopt::sim
