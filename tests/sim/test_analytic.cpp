#include "sim/analytic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace mcopt::sim {
namespace {

const arch::AddressMap kMap;
const arch::Calibration kCal;

TEST(ExpandRfo, ReadsPassThrough) {
  const std::vector<AnalyticStream> in = {{0x100, false}};
  const auto out = expand_rfo(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].base, 0x100u);
  EXPECT_FALSE(out[0].write);
}

TEST(ExpandRfo, WritesBecomeReadPlusWrite) {
  const std::vector<AnalyticStream> in = {{0x200, true}};
  const auto out = expand_rfo(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].write);  // RFO read
  EXPECT_TRUE(out[1].write);   // write-back
  EXPECT_EQ(out[0].base, out[1].base);
}

TEST(Analytic, BalancedBeatsAliased) {
  const std::vector<AnalyticStream> aliased = {
      {0, false}, {512, false}, {1024, false}, {1536, true}};
  const std::vector<AnalyticStream> balanced = {
      {0, false}, {128, false}, {256, false}, {384, true}};
  const auto a = estimate_bandwidth(expand_rfo(aliased), 64, kCal, kMap, 1.2);
  const auto b = estimate_bandwidth(expand_rfo(balanced), 64, kCal, kMap, 1.2);
  EXPECT_GT(b.bandwidth, 1.5 * a.bandwidth);
  EXPECT_DOUBLE_EQ(a.balance, 0.25);
  // Five physical streams (3 reads + RFO + WB) over four controllers: one
  // controller does double duty, so perfect balance is unattainable.
  EXPECT_GT(b.balance, 0.4);
}

TEST(Analytic, PureReadsAliasedIsQuarter) {
  const std::vector<AnalyticStream> aliased = {
      {0, false}, {512, false}, {1024, false}, {1536, false}};
  const auto est = estimate_bandwidth(aliased, 64, kCal, kMap, 1.2);
  EXPECT_DOUBLE_EQ(est.balance, 0.25);
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  const auto est2 = estimate_bandwidth(spread, 64, kCal, kMap, 1.2);
  EXPECT_NEAR(est.service_bandwidth * 4.0, est2.service_bandwidth, 1e-3);
}

TEST(Analytic, LatencyBoundScalesWithThreads) {
  const std::vector<AnalyticStream> streams = {{0, false}, {128, false}};
  const auto few = estimate_bandwidth(streams, 4, kCal, kMap, 1.2);
  const auto many = estimate_bandwidth(streams, 64, kCal, kMap, 1.2);
  EXPECT_NEAR(many.latency_bandwidth / few.latency_bandwidth, 16.0, 1e-9);
  // At 4 threads the latency bound binds.
  EXPECT_DOUBLE_EQ(few.bandwidth,
                   std::min(few.service_bandwidth, few.latency_bandwidth));
}

TEST(Analytic, WriteHeavyMixIsSlowerThanReadOnly) {
  const std::vector<AnalyticStream> reads = {{0, false}, {128, false}};
  const std::vector<AnalyticStream> writes = {{0, true}, {128, true}};
  const auto r = estimate_bandwidth(expand_rfo(reads), 64, kCal, kMap, 1.2);
  const auto w = estimate_bandwidth(expand_rfo(writes), 64, kCal, kMap, 1.2);
  EXPECT_LT(w.service_bandwidth, r.service_bandwidth);
}

TEST(Analytic, RejectsDegenerateInput) {
  const std::vector<AnalyticStream> streams = {{0, false}};
  EXPECT_THROW((void)estimate_bandwidth({}, 4, kCal, kMap, 1.2), std::invalid_argument);
  EXPECT_THROW((void)estimate_bandwidth(streams, 0, kCal, kMap, 1.2),
               std::invalid_argument);
}

TEST(Analytic, OfflineControllerReroutesToSurvivor) {
  // Perfectly spread reads, then mc0 dies: its stream remaps onto a
  // survivor, which now serves two lines per step — service halves.
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  FaultSpec faults;
  faults.offline_controllers = {0};
  const auto healthy = estimate_bandwidth(spread, 64, kCal, kMap, 1.2);
  const auto degraded = estimate_bandwidth(spread, 64, kCal, kMap, 1.2, faults);
  EXPECT_NEAR(degraded.service_bandwidth, healthy.service_bandwidth * 0.5, 1e-3);
}

TEST(Analytic, DeratedControllerScalesServiceCost) {
  // A half-rate controller serving one of four spread streams becomes the
  // per-step bottleneck at exactly twice the cost.
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  FaultSpec faults;
  faults.derates.push_back({1, 0.5});
  const auto healthy = estimate_bandwidth(spread, 64, kCal, kMap, 1.2);
  const auto degraded = estimate_bandwidth(spread, 64, kCal, kMap, 1.2, faults);
  EXPECT_NEAR(degraded.service_bandwidth, healthy.service_bandwidth * 0.5, 1e-3);
}

TEST(Analytic, AllControllersOfflineRejected) {
  const std::vector<AnalyticStream> streams = {{0, false}};
  FaultSpec faults;
  faults.offline_controllers = {0, 1, 2, 3};
  EXPECT_THROW((void)estimate_bandwidth(streams, 4, kCal, kMap, 1.2, faults),
               std::invalid_argument);
}

TEST(Analytic, UtilizationBalancedPutsEveryControllerOnTheCriticalPath) {
  // One read per controller per step: every controller IS the critical path,
  // so all four busy fractions read 1.
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  const auto est = estimate_bandwidth(spread, 64, kCal, kMap, 1.2);
  ASSERT_EQ(est.mc_utilization.size(), 4u);
  for (const double u : est.mc_utilization) EXPECT_NEAR(u, 1.0, 1e-9);
}

TEST(Analytic, UtilizationCannotSeeAliasing) {
  // All four bases congruent mod the period: the streams hit exactly one
  // controller per step, but WHICH controller rotates with the step index,
  // so over a period each one is busy for 1/4 of the (4x-stretched)
  // makespan. The utilization vector is flat — aliasing is invisible to it.
  // This is the supervisor's documented "aliasing blind spot", the reason
  // its layout_gain channel exists; the blind spot is asserted here so a
  // future change to the utilization convention re-opens the discussion.
  const std::vector<AnalyticStream> aliased = {
      {0, false}, {512, false}, {1024, false}, {1536, false}};
  const auto est = estimate_bandwidth(aliased, 64, kCal, kMap, 1.2);
  ASSERT_EQ(est.mc_utilization.size(), 4u);
  for (const double u : est.mc_utilization) EXPECT_NEAR(u, 0.25, 1e-9);
}

TEST(Analytic, UtilizationOfflineControllerReadsZero) {
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  FaultSpec faults;
  faults.offline_controllers = {2};
  const auto est = estimate_bandwidth(spread, 64, kCal, kMap, 1.2, faults);
  ASSERT_EQ(est.mc_utilization.size(), 4u);
  EXPECT_EQ(est.mc_utilization[2], 0.0);
  // Its remap survivor serves double traffic, so it defines the makespan.
  EXPECT_NEAR(*std::max_element(est.mc_utilization.begin(),
                                est.mc_utilization.end()),
              1.0, 1e-9);
}

TEST(Analytic, UtilizationDeratedControllerSaturatesAboveItsPeers) {
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  FaultSpec faults;
  faults.derates.push_back({1, 0.5});
  const auto est = estimate_bandwidth(spread, 64, kCal, kMap, 1.2, faults);
  ASSERT_EQ(est.mc_utilization.size(), 4u);
  EXPECT_NEAR(est.mc_utilization[1], 1.0, 1e-9);  // the doubled-cost bottleneck
  for (const unsigned c : {0u, 2u, 3u})
    EXPECT_NEAR(est.mc_utilization[c], 0.5, 1e-9);
}

TEST(Analytic, ScheduledWholeUtilizationIsEpochWeighted) {
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  FaultSchedule sched;
  FaultSchedule::Interval iv;
  iv.fault.offline_controllers = {1};
  iv.begin = 0;
  iv.end = 500000;
  sched.intervals.push_back(iv);
  const auto est = estimate_bandwidth_scheduled(spread, 64, kCal, kMap, 1.2,
                                                {}, sched, 1000000);
  ASSERT_EQ(est.whole.mc_utilization.size(), 4u);
  // mc1: dead (0) for half the run, fully busy (1) for the other half.
  EXPECT_NEAR(est.whole.mc_utilization[1], 0.5, 1e-9);
}

TEST(Analytic, ServiceBandwidthSaneMagnitude) {
  // Fully balanced pure-read service: 4 controllers x 64 B / 12 cycles at
  // 1.2 GHz = 25.6 GB/s.
  const std::vector<AnalyticStream> spread = {
      {0, false}, {128, false}, {256, false}, {384, false}};
  const auto est = estimate_bandwidth(spread, 64, kCal, kMap, 1.2);
  EXPECT_NEAR(est.service_bandwidth, 25.6e9, 0.5e9);
}

}  // namespace
}  // namespace mcopt::sim
