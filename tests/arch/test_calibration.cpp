#include "arch/calibration.h"

#include <gtest/gtest.h>

namespace mcopt::arch {
namespace {

TEST(Calibration, NominalServiceRatesMatchFbdimmSplit) {
  const Calibration cal = t2_calibration();
  // Nominal per-controller rates from Sect. 1: 42/4 GB/s read, 21/4 write.
  // 64 B / 10.5 GB/s at 1.2 GHz is ~7.3 cycles; our integer service times
  // must sit within one cycle of the nominal values.
  const double read_cycles = 64.0 / 10.5e9 * 1.2e9;
  const double write_cycles = 64.0 / 5.25e9 * 1.2e9;
  EXPECT_NEAR(static_cast<double>(cal.mc_read_service), read_cycles, 1.0);
  EXPECT_NEAR(static_cast<double>(cal.mc_write_service), write_cycles, 1.0);
  EXPECT_EQ(cal.mc_write_service, 2 * cal.mc_read_service - 1);
}

TEST(Calibration, LatencyInDocumentedBand) {
  const Calibration cal = t2_calibration();
  // ~125-185 ns at 1.2 GHz.
  EXPECT_GE(cal.mem_latency, 125u * 12 / 10);
  EXPECT_LE(cal.mem_latency, 185u * 12 / 10);
}

TEST(Calibration, DramGeometryIsPowerOfTwo) {
  const Calibration cal = t2_calibration();
  EXPECT_NE(cal.dram_banks, 0u);
  EXPECT_EQ(cal.dram_banks & (cal.dram_banks - 1), 0u);
  EXPECT_EQ(cal.dram_row_bytes % 64, 0u);
}

TEST(CyclesToSeconds, Converts) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1'200'000'000, 1.2), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(0, 1.2), 0.0);
}

TEST(Bandwidth, Computes) {
  // 64 bytes in 8 cycles at 1.2 GHz = 9.6 GB/s.
  EXPECT_NEAR(bandwidth_bytes_per_s(64, 8, 1.2), 9.6e9, 1e3);
  EXPECT_DOUBLE_EQ(bandwidth_bytes_per_s(64, 0, 1.2), 0.0);
}

}  // namespace
}  // namespace mcopt::arch
