#pragma once
// Bounded multi-producer / multi-consumer queue with priority lanes.
//
// The executor's admission gate pushes priced jobs into one of kNumLanes
// lanes (high / normal / low); worker threads pop the front of the highest
// non-empty lane. Each lane is individually bounded — a full lane is typed
// backpressure (the caller sheds with ShedReason::kQueueFull), never a
// blocking producer.
//
// Concurrency is deliberately boring: one mutex, one condition variable.
// Pop passes a `reserve` hook that runs UNDER the queue lock after the item
// is chosen but before it is released to the caller. The executor uses this
// to stamp the job's virtual service window against the bandwidth-server
// tail (executor.h): because reservation and removal are one critical
// section, the virtual start order equals the dequeue order exactly, which
// is what makes the shed-lag bound provable. Mutex + condvar also makes the
// queue ThreadSanitizer-clean by construction — there is no lock-free
// cleverness to annotate or suppress.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/executor/job.h"

namespace mcopt::runtime::exec {

template <typename T>
class LaneQueue {
 public:
  /// `capacity[lane]` bounds each lane; every lane must hold at least one
  /// item or the queue could never accept work on that lane.
  explicit LaneQueue(std::array<std::size_t, kNumLanes> capacity)
      : capacity_(capacity) {
    for (const std::size_t cap : capacity_)
      if (cap == 0)
        throw std::invalid_argument("LaneQueue: lane capacity must be >= 1");
  }

  LaneQueue(const LaneQueue&) = delete;
  LaneQueue& operator=(const LaneQueue&) = delete;

  /// Enqueues onto `lane`. Returns false (typed backpressure) when the lane
  /// is at capacity or the queue is closed; the item is untouched then.
  [[nodiscard]] bool try_push(Priority lane, T item) {
    const auto l = static_cast<std::size_t>(lane);
    {
      const std::lock_guard<std::mutex> guard(mu_);
      if (closed_ || lanes_[l].size() >= capacity_[l]) return false;
      lanes_[l].push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Pops the front of the highest-priority non-empty lane. `reserve` runs
  /// under the queue lock with a mutable reference to the chosen item —
  /// keep it short (it is the serialization point for virtual-time
  /// reservations). Returns nullopt only when closed and empty.
  template <typename Reserve>
  [[nodiscard]] std::optional<T> pop(Reserve&& reserve) {
    std::unique_lock<std::mutex> guard(mu_);
    cv_.wait(guard, [this] { return closed_ || !empty_locked(); });
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      reserve(lane.front());
      T item = std::move(lane.front());
      lane.pop_front();
      return item;
    }
    return std::nullopt;  // closed and drained
  }

  /// Visits every queued item (highest lane first, FIFO within a lane)
  /// under the lock. The executor uses this to re-price queued jobs after
  /// a fault diagnosis; `fn` must not call back into the queue.
  template <typename Fn>
  void for_each(Fn&& fn) {
    const std::lock_guard<std::mutex> guard(mu_);
    for (auto& lane : lanes_)
      for (T& item : lane) fn(item);
  }

  /// Removes and returns everything still queued (highest lane first).
  /// Used by non-draining shutdown so every job is accounted for.
  [[nodiscard]] std::vector<T> shed_all() {
    std::vector<T> out;
    const std::lock_guard<std::mutex> guard(mu_);
    for (auto& lane : lanes_) {
      for (T& item : lane) out.push_back(std::move(item));
      lane.clear();
    }
    return out;
  }

  /// Closes the queue: pushes start failing, pops drain what remains and
  /// then return nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> guard(mu_);
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.size();
    return n;
  }

  [[nodiscard]] std::size_t lane_size(Priority lane) const {
    const std::lock_guard<std::mutex> guard(mu_);
    return lanes_[static_cast<std::size_t>(lane)].size();
  }

 private:
  [[nodiscard]] bool empty_locked() const {
    for (const auto& lane : lanes_)
      if (!lane.empty()) return false;
    return true;
  }

  const std::array<std::size_t, kNumLanes> capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<T>, kNumLanes> lanes_;
  bool closed_ = false;
};

}  // namespace mcopt::runtime::exec
