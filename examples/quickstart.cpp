// Quickstart: the mcopt library in five minutes.
//
//  1. Ask the planner for controller-spreading offsets.
//  2. Build seg_arrays with those layouts.
//  3. Run a real (native) segmented vector triad through the hierarchical
//     algorithms — zero abstraction cost.
//  4. Diagnose a bad layout with the alias doctor.
//  5. Replay both layouts on the simulated UltraSPARC T2 and watch the
//     bandwidth difference the paper measured.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "kernels/triad.h"
#include "seg/algorithms.h"
#include "seg/planner.h"
#include "seg/seg_array.h"
#include "sim/chip.h"
#include "sim/report.h"
#include "trace/virtual_arena.h"

int main() {
  using namespace mcopt;
  const arch::AddressMap map;  // the T2 mapping: bits 8:7 -> controller

  // --- 1. plan offsets for four lock-stepped streams (A = B + C*D) --------
  const seg::StreamPlan plan = seg::plan_stream_offsets(4, map);
  std::printf("planned offsets:");
  for (std::size_t k = 0; k < 4; ++k)
    std::printf(" %zuB", plan.offsets[k]);
  std::printf("  (one controller stride apart)\n");

  // --- 2. build the arrays --------------------------------------------------
  const std::size_t n = 100'000;
  auto make = [&](std::size_t k) {
    return seg::seg_array<double>::even(n, 8, plan.spec_for(k));
  };
  auto a = make(0);
  auto b = make(1);
  auto c = make(2);
  auto d = make(3);
  seg::fill(b.begin(), b.end(), 1.0);
  seg::fill(c.begin(), c.end(), 2.0);
  seg::fill(d.begin(), d.end(), 3.0);

  // --- 3. native segmented triad -------------------------------------------
  const double secs = kernels::triad_segmented_sweep_seconds(a, b, c, d);
  const double sum = seg::accumulate(a.begin(), a.end(), 0.0);
  std::printf("native segmented triad: %.3f ms, checksum %.1f (expect %.1f)\n",
              secs * 1e3, sum, 7.0 * static_cast<double>(n));

  // --- 4. diagnose layouts ---------------------------------------------------
  const std::vector<arch::Addr> good = {a.address_of(0, 0), b.address_of(0, 0),
                                        c.address_of(0, 0), d.address_of(0, 0)};
  std::printf("planned layout : %s\n", seg::diagnose_streams(good, map).summary.c_str());
  const std::vector<arch::Addr> bad = {0, 8192, 16384, 24576};  // page-aligned
  std::printf("page-aligned   : %s\n", seg::diagnose_streams(bad, map).summary.c_str());

  // --- 5. replay on the simulated T2 ---------------------------------------
  auto simulate = [&](kernels::TriadLayout layout) {
    trace::VirtualArena arena;
    const auto bases = kernels::triad_layout_bases(arena, layout, 1 << 18, map);
    auto wl = kernels::make_triad_workload(bases, 1 << 18, 64,
                                           sched::Schedule::static_block());
    sim::SimConfig cfg;
    sim::Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
    return chip.run(wl);
  };
  const sim::SimResult pessimal = simulate(kernels::TriadLayout::kAligned8k);
  const sim::SimResult planned = simulate(kernels::TriadLayout::kPlannedOffsets);
  std::printf(
      "simulated T2, 64 threads: page-aligned %.2f GB/s -> planner offsets "
      "%.2f GB/s (%.1fx)\n",
      pessimal.memory_bandwidth() / 1e9, planned.memory_bandwidth() / 1e9,
      planned.memory_bandwidth() / pessimal.memory_bandwidth());
  std::printf("  page-aligned: %s\n", sim::brief(pessimal).c_str());
  std::printf("  planned     : %s\n", sim::brief(planned).c_str());
  return 0;
}
