#include "runtime/supervisor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace mcopt::runtime {

namespace {

std::string set_to_string(const std::vector<unsigned>& set) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (i != 0) out << ',';
    out << set[i];
  }
  out << ']';
  return out.str();
}

/// Supervisor metrics, registered once. Relaxed-atomic updates only on the
/// observe path.
struct SupMetrics {
  obs::Counter& observations;
  obs::Counter& replans;
  obs::Counter& suppressed;
  obs::Counter& scrubs;
  obs::Counter& probes;
  obs::Counter& recoveries;

  static SupMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static SupMetrics m{
        reg.counter("mcopt_supervisor_observations_total",
                    "Samples fed through Supervisor::observe"),
        reg.counter("mcopt_supervisor_replan_decisions_total",
                    "Observe decisions with action=replan"),
        reg.counter("mcopt_supervisor_suppressed_total",
                    "Replans suppressed by the backoff window"),
        reg.counter("mcopt_supervisor_scrub_orders_total",
                    "Scrub orders issued on corrupted reads"),
        reg.counter("mcopt_supervisor_probes_total",
                    "Canary probes launched against quarantined sockets"),
        reg.counter("mcopt_supervisor_recoveries_total",
                    "Probe-confirmed socket recoveries (readmissions begun)")};
    return m;
  }
};

}  // namespace

const char* action_event_name(Action a) noexcept {
  switch (a) {
    case Action::kKeep: return "supervisor.action.keep";
    case Action::kReplan: return "supervisor.action.replan";
    case Action::kSuppressed: return "supervisor.action.suppressed";
    case Action::kScrub: return "supervisor.action.scrub";
    case Action::kProbe: return "supervisor.action.probe";
  }
  return "supervisor.action";
}

Supervisor::ScopedEntry::ScopedEntry(std::atomic_flag& flag) : flag_(flag) {
  if (flag_.test_and_set(std::memory_order_acquire))
    throw std::logic_error(
        "Supervisor: concurrent observe/commit/abort — the supervisor is "
        "single-consumer; feed samples through the executor's ingestion "
        "queue");
}

Supervisor::ScopedEntry::~ScopedEntry() {
  flag_.clear(std::memory_order_release);
}

util::Status DetectorConfig::check() const {
  util::Status status;
  if (stable_window == 0)
    status.note("DetectorConfig: stable_window must be >= 1");
  if (!(offline_threshold > 0.0) || offline_threshold >= 1.0)
    status.note("DetectorConfig: offline_threshold outside (0, 1)");
  if (derate_threshold <= 1.0)
    status.note("DetectorConfig: derate_threshold must exceed 1");
  if (min_signal < 0.0 || min_signal >= 1.0)
    status.note("DetectorConfig: min_signal outside [0, 1)");
  if (replan_gain <= 1.0)
    status.note("DetectorConfig: replan_gain must exceed 1");
  if (backoff.initial == 0) status.note("DetectorConfig: backoff.initial == 0");
  if (backoff.multiplier < 1.0)
    status.note("DetectorConfig: backoff.multiplier < 1");
  if (backoff.cap < backoff.initial)
    status.note("DetectorConfig: backoff.cap < backoff.initial");
  if (backoff.jitter < 0.0 || backoff.jitter >= 1.0)
    status.note("DetectorConfig: backoff.jitter outside [0, 1)");
  if (quiet_reset == 0) status.note("DetectorConfig: quiet_reset must be >= 1");
  return status;
}

Supervisor::Supervisor(DetectorConfig cfg, const arch::InterleaveSpec& interleave,
                       std::uint64_t seed)
    : cfg_(cfg),
      num_controllers_(interleave.num_controllers()),
      backoff_(cfg.backoff, seed) {
  cfg_.check().throw_if_failed();
  if (num_controllers_ == 0)
    throw std::invalid_argument("Supervisor: interleave has no controllers");
}

sim::FaultSpec Supervisor::diagnose(
    const std::vector<double>& mc_utilization) const {
  if (mc_utilization.size() != num_controllers_)
    throw std::invalid_argument("Supervisor::diagnose: utilization size " +
                                std::to_string(mc_utilization.size()) +
                                " != controllers " +
                                std::to_string(num_controllers_));
  sim::FaultSpec diag;
  const double peak =
      *std::max_element(mc_utilization.begin(), mc_utilization.end());
  if (peak < cfg_.min_signal) return diag;  // idle: no signal, assume healthy

  for (unsigned c = 0; c < num_controllers_; ++c)
    if (mc_utilization[c] < cfg_.offline_threshold * peak)
      diag.offline_controllers.push_back(c);
  // Never diagnose the whole chip dead: with all utilizations ~equal the
  // peak scaling above cannot flag anyone, so this only guards degenerate
  // threshold settings.
  if (diag.offline_controllers.size() == num_controllers_)
    diag.offline_controllers.clear();

  // Derate detection against the median of the non-dead controllers: a slow
  // DIMM saturates while its peers wait on it.
  std::vector<double> alive;
  for (unsigned c = 0; c < num_controllers_; ++c)
    if (!diag.is_offline(c)) alive.push_back(mc_utilization[c]);
  std::sort(alive.begin(), alive.end());
  const double median = alive[alive.size() / 2];
  if (median > 0.0) {
    for (unsigned c = 0; c < num_controllers_; ++c) {
      if (diag.is_offline(c)) continue;
      if (mc_utilization[c] > cfg_.derate_threshold * median) {
        // Busy-fraction ratio approximates the service slowdown.
        const double factor =
            std::clamp(median / mc_utilization[c], 0.05, 1.0);
        diag.derates.push_back({c, factor});
      }
    }
  }
  return diag;
}

std::vector<unsigned> Supervisor::non_dead(const sim::FaultSpec& d) const {
  std::vector<unsigned> set;
  for (unsigned c = 0; c < num_controllers_; ++c)
    if (!d.is_offline(c)) set.push_back(c);
  return set;
}

Decision Supervisor::observe(const Sample& sample, double layout_gain) {
  const ScopedEntry entry(entered_);
  // Span wraps the whole decision so the action instant below always has an
  // enclosing supervisor.observe parent in the exported trace.
  obs::TraceSpan span("supervisor.observe", "supervisor", sample.end,
                      sample.corrupted_reads);
  SupMetrics& m = SupMetrics::get();
  m.observations.inc();
  Decision dec = observe_impl(sample, layout_gain);
  obs::trace_instant(action_event_name(dec.action), "supervisor",
                     static_cast<std::uint64_t>(dec.action), dec.at);
  switch (dec.action) {
    case Action::kReplan: m.replans.inc(); break;
    case Action::kSuppressed: m.suppressed.inc(); break;
    case Action::kScrub: m.scrubs.inc(); break;
    case Action::kKeep: break;
  }
  return dec;
}

Decision Supervisor::observe_impl(const Sample& sample, double layout_gain) {
  if (!(layout_gain > 0.0) || !std::isfinite(layout_gain))
    throw std::invalid_argument("Supervisor::observe: bad layout_gain");

  Decision dec;
  dec.at = sample.end;
  dec.diagnosis = planned_against_;
  dec.plan_set = non_dead(planned_against_);

  // Integrity outranks everything: corrupted payloads must be scrubbed
  // before any performance reasoning, and are never debounced or backed off.
  if (sample.corrupted_reads > 0) {
    ++scrubs_;
    dec.action = Action::kScrub;
    dec.reason = "integrity: " + std::to_string(sample.corrupted_reads) +
                 " corrupted reads in [" + std::to_string(sample.begin) + ", " +
                 std::to_string(sample.end) + ")";
    util::log_info("supervisor: action=scrub at=" + std::to_string(sample.end) +
                   " corrupted_reads=" + std::to_string(sample.corrupted_reads));
    return dec;
  }

  const double peak = sample.mc_utilization.empty()
                          ? 0.0
                          : *std::max_element(sample.mc_utilization.begin(),
                                              sample.mc_utilization.end());
  if (sample.mc_utilization.size() != num_controllers_ ||
      peak < cfg_.min_signal) {
    dec.reason = "idle";
    return dec;
  }

  // Debounce: the diagnosis must repeat stable_window times in a row.
  const sim::FaultSpec diag = diagnose(sample.mc_utilization);
  const std::string descr = diag.describe();
  if (descr == pending_descr_) {
    ++pending_count_;
  } else {
    pending_descr_ = descr;
    pending_diag_ = diag;
    pending_count_ = 1;
  }
  if (pending_count_ < cfg_.stable_window) {
    dec.reason = "unstable diagnosis (" + descr + ", " +
                 std::to_string(pending_count_) + "/" +
                 std::to_string(cfg_.stable_window) + ")";
    return dec;
  }

  const bool fault_changed = descr != planned_against_.describe();
  const bool layout_deficit = layout_gain >= cfg_.replan_gain;
  if (!fault_changed && !layout_deficit) {
    dec.reason = "planned state current";
    if (++quiet_count_ >= cfg_.quiet_reset && backoff_.retries() != 0) {
      backoff_.reset();
      util::log_info("supervisor: backoff reset after quiet stretch at=" +
                     std::to_string(sample.end));
    }
    return dec;
  }
  quiet_count_ = 0;

  dec.diagnosis = diag;
  dec.plan_set = non_dead(diag);
  const std::string why = fault_changed
                              ? "fault state " + planned_against_.describe() +
                                    " -> " + descr
                              : "layout gain " + std::to_string(layout_gain);
  if (backoff_.ready_in(sample.end) > 0) {
    ++suppressed_;
    dec.action = Action::kSuppressed;
    dec.reason = why + "; suppressed by backoff until " +
                 std::to_string(backoff_.ready_at());
    util::log_info("supervisor: action=suppressed at=" +
                   std::to_string(sample.end) + " set=" +
                   set_to_string(dec.plan_set) + " reason=" + dec.reason);
    return dec;
  }

  dec.action = Action::kReplan;
  dec.reason = why;
  util::log_info("supervisor: action=replan at=" + std::to_string(sample.end) +
                 " set=" + set_to_string(dec.plan_set) + " reason=" + why);
  return dec;
}

void Supervisor::commit(arch::Cycles now) {
  const ScopedEntry entry(entered_);
  obs::trace_instant("supervisor.commit", "supervisor", now, replans_ + 1u);
  planned_against_ = pending_diag_;
  backoff_.arm(now);
  ++replans_;
  util::log_info("supervisor: replan committed at=" + std::to_string(now) +
                 " planned_against=" + planned_against_.describe() +
                 " next_allowed=" + std::to_string(backoff_.ready_at()));
}

void Supervisor::abort(arch::Cycles now) {
  const ScopedEntry entry(entered_);
  obs::trace_instant("supervisor.abort", "supervisor", now, 0);
  backoff_.arm(now);
  util::log_info("supervisor: replan declined at=" + std::to_string(now) +
                 " next_allowed=" + std::to_string(backoff_.ready_at()));
}

// ---------------------------------------------------------------------------
// NodeSupervisor

util::Status RecoveryConfig::check() const {
  util::Status status;
  if (probe_backoff.initial == 0)
    status.note("RecoveryConfig: probe_backoff.initial == 0");
  if (probe_backoff.multiplier < 1.0)
    status.note("RecoveryConfig: probe_backoff.multiplier < 1");
  if (probe_backoff.cap < probe_backoff.initial)
    status.note("RecoveryConfig: probe_backoff.cap < initial");
  if (probe_backoff.jitter < 0.0 || probe_backoff.jitter >= 1.0)
    status.note("RecoveryConfig: probe_backoff.jitter outside [0, 1)");
  if (ramp_windows == 0)
    status.note("RecoveryConfig: ramp_windows must be >= 1");
  if (!(ramp_initial > 0.0) || ramp_initial > 1.0)
    status.note("RecoveryConfig: ramp_initial outside (0, 1]");
  if (probe_elements == 0)
    status.note("RecoveryConfig: probe_elements must be >= 1");
  if (probe_threads == 0)
    status.note("RecoveryConfig: probe_threads must be >= 1");
  if (!(probe_util_threshold > 0.0) || probe_util_threshold >= 1.0)
    status.note("RecoveryConfig: probe_util_threshold outside (0, 1)");
  return status;
}

util::Status NodeDetectorConfig::check() const {
  util::Status status;
  status.merge(recovery.check());
  if (stable_window == 0)
    status.note("NodeDetectorConfig: stable_window must be >= 1");
  if (!(offline_threshold > 0.0) || offline_threshold >= 1.0)
    status.note("NodeDetectorConfig: offline_threshold outside (0, 1)");
  if (!(link_saturation > 0.0) || link_saturation >= 1.0)
    status.note("NodeDetectorConfig: link_saturation outside (0, 1)");
  if (derate_threshold <= 1.0)
    status.note("NodeDetectorConfig: derate_threshold must exceed 1");
  if (min_signal < 0.0 || min_signal >= 1.0)
    status.note("NodeDetectorConfig: min_signal outside [0, 1)");
  if (replan_gain <= 1.0)
    status.note("NodeDetectorConfig: replan_gain must exceed 1");
  if (backoff.initial == 0)
    status.note("NodeDetectorConfig: backoff.initial == 0");
  if (backoff.multiplier < 1.0)
    status.note("NodeDetectorConfig: backoff.multiplier < 1");
  if (backoff.cap < backoff.initial)
    status.note("NodeDetectorConfig: backoff.cap < backoff.initial");
  if (backoff.jitter < 0.0 || backoff.jitter >= 1.0)
    status.note("NodeDetectorConfig: backoff.jitter outside [0, 1)");
  if (quiet_reset == 0)
    status.note("NodeDetectorConfig: quiet_reset must be >= 1");
  return status;
}

NodeSupervisor::NodeSupervisor(NodeDetectorConfig cfg,
                               const arch::NodeTopology& node,
                               std::uint64_t seed)
    : cfg_(cfg), node_(node), backoff_(cfg.backoff, seed) {
  cfg_.check().throw_if_failed();
  node_.validate();
  if (node_.single_socket())
    throw std::invalid_argument(
        "NodeSupervisor: single-socket topology has no socket fault domains");
  gates_.reserve(node_.num_sockets);
  for (unsigned s = 0; s < node_.num_sockets; ++s)
    gates_.emplace_back(cfg_.recovery.probe_backoff, /*trip_threshold=*/1,
                        seed ^ ((s + 1) * 0x9e3779b97f4a7c15ULL));
  ramp_left_.assign(node_.num_sockets, 0);
  ramp_factor_.assign(node_.num_sockets, 1.0);
}

sim::FaultSpec NodeSupervisor::diagnose(const NodeSample& sample,
                                        const sim::FaultSpec& prior) const {
  const unsigned n = node_.num_sockets;
  if (sample.socket_utilization.size() != n)
    throw std::invalid_argument(
        "NodeSupervisor::diagnose: socket utilization size " +
        std::to_string(sample.socket_utilization.size()) + " != sockets " +
        std::to_string(n));
  const auto link_util = [&](unsigned s, unsigned t) {
    return s < sample.link_utilization.size() &&
                   t < sample.link_utilization[s].size()
               ? sample.link_utilization[s][t]
               : 0.0;
  };
  const auto link_cost = [&](unsigned s, unsigned t) {
    return s < sample.link_line_cost.size() &&
                   t < sample.link_line_cost[s].size()
               ? sample.link_line_cost[s][t]
               : 0.0;
  };

  sim::FaultSpec diag;
  const double peak = *std::max_element(sample.socket_utilization.begin(),
                                        sample.socket_utilization.end());
  for (unsigned s = 0; s < n; ++s) {
    const double util = sample.socket_utilization[s];
    double outbound = 0.0;
    for (unsigned t = 0; t < n; ++t)
      outbound = std::max(outbound, link_util(s, t));
    if (util < cfg_.offline_threshold * peak &&
        outbound > cfg_.link_saturation) {
      // The dead-memory signature: local controllers idle while the socket
      // limps over the interconnect.
      diag.offline_sockets.push_back(s);
    } else if (util < cfg_.min_signal && outbound < cfg_.min_signal) {
      // No evidence either way: carry the prior belief forward (a migrated-
      // away socket goes silent and must not flap back to healthy).
      if (prior.is_socket_offline(s)) diag.offline_sockets.push_back(s);
    }
  }
  if (diag.offline_sockets.size() == n) diag.offline_sockets.clear();

  // Link derates read off observed per-line cost inflation. Serving-socket
  // derates and multi-hop reroutes inflate the same observable; the factor
  // is attributed to the direct link, which is what the placement gate
  // prices anyway.
  for (unsigned s = 0; s < n; ++s) {
    for (unsigned t = s + 1; t < n; ++t) {
      const double healthy = static_cast<double>(node_.link_cycles(s, t));
      const double observed = std::max(link_cost(s, t), link_cost(t, s));
      if (healthy <= 0.0 || observed <= 0.0) continue;
      if (diag.is_socket_offline(s) || diag.is_socket_offline(t)) continue;
      if (observed > cfg_.derate_threshold * healthy) {
        const double factor = std::clamp(healthy / observed, 0.05, 1.0);
        diag.link_faults.push_back({s, t, factor, false});
      }
    }
  }
  return diag;
}

std::vector<unsigned> NodeSupervisor::non_dead(const sim::FaultSpec& d) const {
  std::vector<unsigned> set;
  for (unsigned s = 0; s < node_.num_sockets; ++s)
    if (!d.is_socket_offline(s)) set.push_back(s);
  return set;
}

NodeDecision NodeSupervisor::observe(const NodeSample& sample,
                                     double layout_gain) {
  if (!(layout_gain > 0.0) || !std::isfinite(layout_gain))
    throw std::invalid_argument("NodeSupervisor::observe: bad layout_gain");
  obs::TraceSpan span("nodesup.observe", "supervisor", sample.end, 0);

  NodeDecision dec;
  dec.at = sample.end;
  dec.diagnosis = planned_against_;
  dec.healthy_sockets = non_dead(planned_against_);

  // Probe channel: a kKeep window is an opportunity to canary a quarantined
  // socket whose breaker hold has expired. Probes ride the otherwise-idle
  // decision slots so they never preempt a replan.
  const auto finish_keep = [&](NodeDecision d) -> NodeDecision {
    if (!cfg_.recovery.enabled || d.action != Action::kKeep) return d;
    for (const unsigned s : planned_against_.offline_sockets) {
      if (!gates_[s].allow(sample.end)) continue;
      ++probes_;
      SupMetrics::get().probes.inc();
      d.action = Action::kProbe;
      d.probe_socket = s;
      d.reason = "probe quarantined socket " + std::to_string(s);
      obs::trace_instant("supervisor.probe.launch", "supervisor", sample.end,
                         s);
      util::log_info("nodesup: action=probe at=" + std::to_string(sample.end) +
                     " socket=" + std::to_string(s) +
                     " attempt=" + std::to_string(probes_));
      break;  // one canary in flight at a time
    }
    return d;
  };

  const double peak = sample.socket_utilization.empty()
                          ? 0.0
                          : *std::max_element(sample.socket_utilization.begin(),
                                              sample.socket_utilization.end());
  double busiest_link = 0.0;
  for (const auto& row : sample.link_utilization)
    for (const double u : row) busiest_link = std::max(busiest_link, u);
  if (sample.socket_utilization.size() != node_.num_sockets ||
      (peak < cfg_.min_signal && busiest_link < cfg_.min_signal)) {
    dec.reason = "idle";
    advance_ramps(planned_against_, sample.end);
    return finish_keep(dec);
  }

  const sim::FaultSpec diag = diagnose(sample, planned_against_);
  advance_ramps(diag, sample.end);
  const std::string descr = diag.describe();
  if (descr == pending_descr_) {
    ++pending_count_;
  } else {
    pending_descr_ = descr;
    pending_diag_ = diag;
    pending_count_ = 1;
  }
  if (pending_count_ < cfg_.stable_window) {
    dec.reason = "unstable diagnosis (" + descr + ", " +
                 std::to_string(pending_count_) + "/" +
                 std::to_string(cfg_.stable_window) + ")";
    return finish_keep(dec);
  }

  const bool fault_changed = descr != planned_against_.describe();
  const bool layout_deficit = layout_gain >= cfg_.replan_gain;
  if (!fault_changed && !layout_deficit) {
    dec.reason = "planned state current";
    if (++quiet_count_ >= cfg_.quiet_reset && backoff_.retries() != 0) {
      backoff_.reset();
      util::log_info("nodesup: backoff reset after quiet stretch at=" +
                     std::to_string(sample.end));
    }
    return finish_keep(dec);
  }
  quiet_count_ = 0;

  // sock.*/link.* instants mark newly suspected fault domains on the trace
  // timeline, replan or not.
  for (const unsigned s : diag.offline_sockets)
    if (!planned_against_.is_socket_offline(s))
      obs::trace_instant("sock.offline.suspect", "numa", sample.end, s);
  for (const auto& lf : diag.link_faults)
    if (planned_against_.link_derate_of(lf.a, lf.b) == 1.0)
      obs::trace_instant("link.degraded.suspect", "numa", sample.end,
                         lf.a * arch::NodeTopology::kMaxSockets + lf.b);

  dec.diagnosis = diag;
  dec.healthy_sockets = non_dead(diag);
  const std::string why = fault_changed
                              ? "fault state " + planned_against_.describe() +
                                    " -> " + descr
                              : "placement gain " + std::to_string(layout_gain);
  if (backoff_.ready_in(sample.end) > 0) {
    ++suppressed_;
    dec.action = Action::kSuppressed;
    dec.reason = why + "; suppressed by backoff until " +
                 std::to_string(backoff_.ready_at());
    util::log_info("nodesup: action=suppressed at=" +
                   std::to_string(sample.end) + " set=" +
                   set_to_string(dec.healthy_sockets) + " reason=" + dec.reason);
    return dec;
  }

  dec.action = Action::kReplan;
  dec.reason = why;
  util::log_info("nodesup: action=replan at=" + std::to_string(sample.end) +
                 " set=" + set_to_string(dec.healthy_sockets) +
                 " reason=" + why);
  return dec;
}

void NodeSupervisor::commit(arch::Cycles now) {
  obs::trace_instant("nodesup.commit", "supervisor", now, replans_ + 1u);
  const sim::FaultSpec prior = planned_against_;
  planned_against_ = pending_diag_;
  backoff_.arm(now);
  ++replans_;
  // Trip the probe breaker of every newly quarantined socket; a socket that
  // relapsed mid-ramp reopens with the escalated hold (its breaker was
  // closed without forgiveness at probe time).
  for (const unsigned s : planned_against_.offline_sockets) {
    if (prior.is_socket_offline(s)) continue;
    if (ramp_left_[s] != 0) {
      ramp_left_[s] = 0;
      ramp_factor_[s] = 1.0;
      obs::trace_instant("supervisor.readmit.abort", "supervisor", now, s);
      util::log_info("nodesup: readmit aborted socket=" + std::to_string(s) +
                     " at=" + std::to_string(now) + " (relapse during ramp)");
    }
    gates_[s].record_failure(now);
  }
  util::log_info("nodesup: replan committed at=" + std::to_string(now) +
                 " planned_against=" + planned_against_.describe() +
                 " next_allowed=" + std::to_string(backoff_.ready_at()));
}

void NodeSupervisor::abort(arch::Cycles now) {
  obs::trace_instant("nodesup.abort", "supervisor", now, 0);
  backoff_.arm(now);
  util::log_info("nodesup: replan declined at=" + std::to_string(now) +
                 " next_allowed=" + std::to_string(backoff_.ready_at()));
}

bool NodeSupervisor::report_probe(unsigned socket, const NodeSample& probe,
                                  arch::Cycles now) {
  if (socket >= node_.num_sockets)
    throw std::invalid_argument("NodeSupervisor::report_probe: socket " +
                                std::to_string(socket) + " out of range");
  const double util = socket < probe.socket_utilization.size()
                          ? probe.socket_utilization[socket]
                          : 0.0;
  const bool alive = util > cfg_.recovery.probe_util_threshold;
  if (!alive) {
    ++probe_failures_;
    gates_[socket].record_failure(now);  // half-open -> reopen, escalated
    obs::trace_instant("supervisor.probe.fail", "supervisor", now, socket);
    util::log_info(
        "nodesup: probe failed socket=" + std::to_string(socket) + " at=" +
        std::to_string(now) + " util=" + std::to_string(util) +
        " reopens=" + std::to_string(gates_[socket].reopens()) +
        " next_probe_in=" + std::to_string(gates_[socket].ready_in(now)));
    return false;
  }

  // Confirmed recovery: readmit through the ramp. The breaker closes but
  // keeps its escalation — only a completed ramp forgives it, so a flapper
  // pays ever-longer quarantines.
  ++recoveries_;
  SupMetrics::get().recoveries.inc();
  gates_[socket].record_success(/*forgive=*/false);
  auto& off = planned_against_.offline_sockets;
  off.erase(std::remove(off.begin(), off.end(), socket), off.end());
  ramp_left_[socket] = cfg_.recovery.ramp_windows;
  ramp_factor_[socket] = cfg_.recovery.ramp_initial;
  // Drop the stale debounce state: a pending dead diagnosis predating the
  // probe must not be committed over the fresh evidence.
  pending_descr_.clear();
  pending_diag_ = planned_against_;
  pending_count_ = 0;
  obs::trace_instant("supervisor.probe.success", "supervisor", now, socket);
  obs::trace_instant("supervisor.readmit.begin", "supervisor", now, socket);
  util::log_info("nodesup: probe confirmed recovery socket=" +
                 std::to_string(socket) + " at=" + std::to_string(now) +
                 " util=" + std::to_string(util) + " ramp_windows=" +
                 std::to_string(cfg_.recovery.ramp_windows) + " ramp_start=" +
                 std::to_string(cfg_.recovery.ramp_initial));
  return true;
}

sim::FaultSpec NodeSupervisor::belief() const {
  sim::FaultSpec b = planned_against_;
  for (unsigned s = 0; s < node_.num_sockets; ++s)
    if (ramp_left_[s] != 0) b.socket_derates.push_back({s, ramp_factor_[s]});
  return b;
}

void NodeSupervisor::advance_ramps(const sim::FaultSpec& diag,
                                   arch::Cycles now) {
  for (unsigned s = 0; s < node_.num_sockets; ++s) {
    if (ramp_left_[s] == 0) continue;
    if (diag.is_socket_offline(s)) continue;  // relapse pending; commit aborts
    const double step = (1.0 - cfg_.recovery.ramp_initial) /
                        static_cast<double>(cfg_.recovery.ramp_windows);
    ramp_factor_[s] = std::min(1.0, ramp_factor_[s] + step);
    if (--ramp_left_[s] != 0) continue;
    ramp_factor_[s] = 1.0;
    ++readmissions_;
    gates_[s].record_success();  // ramp completed: forgive the escalation
    obs::trace_instant("supervisor.readmit.complete", "supervisor", now, s);
    util::log_info("nodesup: readmit complete socket=" + std::to_string(s) +
                   " at=" + std::to_string(now));
  }
}

NodeSupervisor::Snapshot NodeSupervisor::snapshot() const {
  Snapshot s;
  s.planned_against = planned_against_;
  s.pending_diag = pending_diag_;
  s.pending_descr = pending_descr_;
  s.pending_count = pending_count_;
  s.quiet_count = quiet_count_;
  s.replans = replans_;
  s.suppressed = suppressed_;
  s.backoff = backoff_.snapshot();
  s.gates.reserve(gates_.size());
  for (const util::CircuitBreaker& g : gates_) s.gates.push_back(g.snapshot());
  s.ramp_left = ramp_left_;
  s.ramp_factor = ramp_factor_;
  s.probes = probes_;
  s.probe_failures = probe_failures_;
  s.recoveries = recoveries_;
  s.readmissions = readmissions_;
  return s;
}

util::Status NodeSupervisor::restore(const Snapshot& snap) {
  if (snap.gates.size() != gates_.size() ||
      snap.ramp_left.size() != ramp_left_.size() ||
      snap.ramp_factor.size() != ramp_factor_.size())
    return util::Status::failure(
        "NodeSupervisor: snapshot covers " +
        std::to_string(snap.gates.size()) + " sockets, topology has " +
        std::to_string(gates_.size()));
  planned_against_ = snap.planned_against;
  pending_diag_ = snap.pending_diag;
  pending_descr_ = snap.pending_descr;
  pending_count_ = snap.pending_count;
  quiet_count_ = snap.quiet_count;
  replans_ = snap.replans;
  suppressed_ = snap.suppressed;
  backoff_.restore(snap.backoff);
  for (std::size_t i = 0; i < gates_.size(); ++i)
    gates_[i].restore(snap.gates[i]);
  ramp_left_ = snap.ramp_left;
  ramp_factor_ = snap.ramp_factor;
  probes_ = snap.probes;
  probe_failures_ = snap.probe_failures;
  recoveries_ = snap.recoveries;
  readmissions_ = snap.readmissions;
  return util::Status{};
}

}  // namespace mcopt::runtime
