#include "kernels/jacobi3d.h"

#include <gtest/gtest.h>

#include <vector>

#include "kernels/jacobi.h"

namespace mcopt::kernels {
namespace {

TEST(Jacobi3dGrid, ShapeAndInit) {
  auto grid = make_jacobi3d_grid(6, jacobi_plain_spec());
  EXPECT_EQ(grid.num_segments(), 36u);
  EXPECT_EQ(grid.size(), 216u);
  init_jacobi3d(grid, 6);
  // Corners and faces are 1, interior 0.
  EXPECT_DOUBLE_EQ(grid.segment(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(grid.segment(2 * 6 + 2)[2], 0.0);
  EXPECT_DOUBLE_EQ(grid.segment(2 * 6 + 2)[0], 1.0);  // x boundary
  EXPECT_THROW(make_jacobi3d_grid(2, jacobi_plain_spec()), std::invalid_argument);
}

seg::LayoutSpec jacobi_plain() { return jacobi_plain_spec(); }

TEST(Jacobi3dSweep, MatchesReference) {
  const std::size_t n = 10;
  auto src = make_jacobi3d_grid(n, jacobi_plain());
  auto dst = make_jacobi3d_grid(n, jacobi_plain());
  init_jacobi3d(src, n);
  init_jacobi3d(dst, n);

  std::vector<double> ref_src(n * n * n), ref_dst(n * n * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        ref_dst[(z * n + y) * n + x] = ref_src[(z * n + y) * n + x] =
            src.segment(z * n + y)[x];

  for (int sweep = 0; sweep < 4; ++sweep) {
    jacobi3d_sweep_seconds(src, dst, n, sched::Schedule::static_chunk(1));
    jacobi3d_reference_sweep(ref_src, ref_dst, n);
    std::swap(src, dst);
    std::swap(ref_src, ref_dst);
  }
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        ASSERT_NEAR(src.segment(z * n + y)[x], ref_src[(z * n + y) * n + x], 1e-14);
}

TEST(Jacobi3dSweep, ConvergesToHarmonicSolution) {
  const std::size_t n = 8;
  auto src = make_jacobi3d_grid(n, jacobi_plain());
  auto dst = make_jacobi3d_grid(n, jacobi_plain());
  init_jacobi3d(src, n);
  init_jacobi3d(dst, n);
  for (int sweep = 0; sweep < 400; ++sweep) {
    jacobi3d_sweep_seconds(src, dst, n, sched::Schedule::static_block());
    std::swap(src, dst);
  }
  // All-1 boundary: the harmonic interior converges to 1.
  EXPECT_NEAR(src.segment((n / 2) * n + n / 2)[n / 2], 1.0, 1e-6);
}

TEST(Jacobi3dUpdates, Formula) {
  EXPECT_EQ(jacobi3d_updates_per_sweep(3), 1u);
  EXPECT_EQ(jacobi3d_updates_per_sweep(10), 512u);
}

TEST(Jacobi3dProgram, AccessCountMatchesFormula) {
  trace::VirtualArena arena;
  const auto grids = make_virtual_jacobi3d(arena, 7, jacobi_plain());
  Jacobi3dProgram p(grids, {{0, 25}}, 1);  // all (7-2)^2 rows
  EXPECT_EQ(p.total_accesses(), 25u * 5 * 7);
  std::vector<sim::Access> buf(64);
  std::uint64_t seen = 0;
  while (true) {
    const std::size_t got = p.next_batch(buf);
    if (got == 0) break;
    seen += got;
  }
  EXPECT_EQ(seen, p.total_accesses());
}

TEST(Jacobi3dProgram, SevenPointPattern) {
  trace::VirtualArena arena;
  const auto grids = make_virtual_jacobi3d(arena, 5, jacobi_plain());
  Jacobi3dProgram p(grids, {{0, 1}}, 1);  // row (z=1, y=1)
  std::vector<sim::Access> buf(7);
  ASSERT_EQ(p.next_batch(buf), 7u);
  const std::size_t n = 5;
  const auto& src = grids.source;
  const auto& dst = grids.dest;
  EXPECT_EQ(buf[0].addr, src.address_of(1 * n + 0, 1));  // y-1
  EXPECT_EQ(buf[1].addr, src.address_of(1 * n + 2, 1));  // y+1
  EXPECT_EQ(buf[2].addr, src.address_of(0 * n + 1, 1));  // z-1
  EXPECT_EQ(buf[3].addr, src.address_of(2 * n + 1, 1));  // z+1
  EXPECT_EQ(buf[4].addr, src.address_of(1 * n + 1, 0));  // x-1
  EXPECT_EQ(buf[5].addr, src.address_of(1 * n + 1, 2));  // x+1
  EXPECT_EQ(buf[6].addr, dst.address_of(1 * n + 1, 1));  // store
  EXPECT_EQ(buf[6].op, sim::Op::kStore);
  EXPECT_EQ(buf[6].flops_before, 6);
  EXPECT_TRUE(buf[0].begins_iteration);
}

TEST(Jacobi3dWorkload, CoversInterior) {
  trace::VirtualArena arena;
  const auto grids = make_virtual_jacobi3d(arena, 12, jacobi_plain());
  auto wl = make_jacobi3d_workload(grids, 7, sched::Schedule::static_chunk(1), 2);
  ASSERT_EQ(wl.size(), 7u);
  std::uint64_t total = 0;
  for (const auto& p : wl) total += p->total_accesses();
  EXPECT_EQ(total, jacobi3d_updates_per_sweep(12) * 7 * 2);
}

}  // namespace
}  // namespace mcopt::kernels
