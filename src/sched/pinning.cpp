#include "sched/pinning.h"

#include <sched.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mcopt::sched {

unsigned online_cpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

bool pin_current_thread(unsigned cpu) {
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

ScopedPin::ScopedPin(unsigned cpu) {
  cpu_set_t old_set;
  CPU_ZERO(&old_set);
  if (sched_getaffinity(0, sizeof(old_set), &old_set) == 0) {
    saved_mask_.resize(sizeof(old_set));
    std::memcpy(saved_mask_.data(), &old_set, sizeof(old_set));
  }
  ok_ = pin_current_thread(cpu);
}

ScopedPin::~ScopedPin() {
  if (!saved_mask_.empty()) {
    cpu_set_t old_set;
    std::memcpy(&old_set, saved_mask_.data(), sizeof(old_set));
    sched_setaffinity(0, sizeof(old_set), &old_set);
  }
}

unsigned pin_omp_threads(unsigned stride) {
  if (stride == 0) stride = 1;
  const unsigned cpus = online_cpus();
  std::atomic<unsigned> pinned{0};
#ifdef _OPENMP
#pragma omp parallel
  {
    const auto t = static_cast<unsigned>(omp_get_thread_num());
    if (pin_current_thread(t * stride % cpus))
      pinned.fetch_add(1, std::memory_order_relaxed);
  }
#else
  if (pin_current_thread(0)) pinned.fetch_add(1, std::memory_order_relaxed);
#endif
  return pinned.load();
}

}  // namespace mcopt::sched
