#include "kernels/lbm/trace_program.h"

#include <gtest/gtest.h>

#include <set>

namespace mcopt::kernels::lbm {
namespace {

std::vector<sim::Access> drain(sim::AccessProgram& p) {
  std::vector<sim::Access> all;
  std::vector<sim::Access> buf(17);
  while (true) {
    const std::size_t got = p.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(), buf.begin() + got);
  }
  return all;
}

Geometry small_geo(DataLayout layout = DataLayout::kIJKv) {
  return Geometry{4, 3, 5, 0, layout};
}

LbmAddresses addrs(const Geometry& g) {
  LbmAddresses a;
  a.f_base = arch::Addr{1} << 32;
  a.mask_base = a.f_base + g.f_elems() * 8;
  return a;
}

TEST(LbmProgram, AccessCountFormula) {
  const Geometry g = small_geo();
  LbmProgram p(g, addrs(g), LoopOrder::kOuterZ, {{0, g.nz}}, 1);
  EXPECT_EQ(p.total_accesses(), g.interior_cells() * 39);
  EXPECT_EQ(drain(p).size(), g.interior_cells() * 39);
}

TEST(LbmProgram, PerSitePattern) {
  const Geometry g = small_geo();
  const LbmAddresses a = addrs(g);
  LbmProgram p(g, a, LoopOrder::kOuterZ, {{0, 1}}, 1);
  const auto all = drain(p);
  // First site (1,1,1): mask load, 19 local loads, 19 neighbour stores.
  EXPECT_EQ(all[0].addr, a.mask_base + g.cell_index(1, 1, 1));
  EXPECT_EQ(all[0].op, sim::Op::kLoad);
  EXPECT_TRUE(all[0].begins_iteration);
  for (std::size_t v = 0; v < kQ; ++v) {
    EXPECT_EQ(all[1 + v].addr, a.f_base + g.f_index(1, 1, 1, v, 0) * 8);
    EXPECT_EQ(all[1 + v].op, sim::Op::kLoad);
  }
  for (std::size_t v = 0; v < kQ; ++v) {
    const auto& store = all[20 + v];
    EXPECT_EQ(store.op, sim::Op::kStore);
    const auto tx = static_cast<std::size_t>(1 + kVelocity[v][0]);
    const auto ty = static_cast<std::size_t>(1 + kVelocity[v][1]);
    const auto tz = static_cast<std::size_t>(1 + kVelocity[v][2]);
    EXPECT_EQ(store.addr, a.f_base + g.f_index(tx, ty, tz, v, 1) * 8);
  }
  const FlopModel fm;
  EXPECT_EQ(all[20].flops_before, fm.first_store_slots());
  EXPECT_EQ(all[21].flops_before, fm.per_store_slots());
}

TEST(LbmProgram, FlopBalanceNearPaper) {
  // ~186 flops at 456 bytes/site gives the paper's ~2.5 bytes/flop balance.
  const FlopModel fm;
  const unsigned flops = fm.before_first_store + 18 * fm.per_store;
  EXPECT_NEAR(456.0 / flops, 2.5, 0.2);
  // FPU-slot conversion: in-order bubbles make a flop cost > 1 slot.
  EXPECT_GT(fm.first_store_slots(), fm.before_first_store);
  const unsigned slots = fm.first_store_slots() + 18u * fm.per_store_slots();
  // Chip FPU bound 9.6 GFslots/s over ~335 slots/site: ~29 MLUPs, just above
  // the paper's measured ~25 MLUPs plateau.
  EXPECT_NEAR(9.6e9 / slots / 1e6, 28.0, 4.0);
}

TEST(LbmProgram, TogglesFlipEachStep) {
  const Geometry g = small_geo();
  const LbmAddresses a = addrs(g);
  LbmProgram p(g, a, LoopOrder::kOuterZ, {{0, g.nz}}, 2);
  const auto all = drain(p);
  const std::size_t per_step = g.interior_cells() * 39;
  ASSERT_EQ(all.size(), 2 * per_step);
  // Step 0 reads toggle 0; step 1 reads toggle 1.
  EXPECT_EQ(all[1].addr, a.f_base + g.f_index(1, 1, 1, 0, 0) * 8);
  EXPECT_EQ(all[per_step + 1].addr, a.f_base + g.f_index(1, 1, 1, 0, 1) * 8);
}

TEST(LbmProgram, CoalescedOrderCoversSameSites) {
  const Geometry g = small_geo();
  const LbmAddresses a = addrs(g);
  LbmProgram outer(g, a, LoopOrder::kOuterZ, {{0, g.nz}}, 1);
  LbmProgram fused(g, a, LoopOrder::kCoalescedZY, {{0, g.nz * g.ny}}, 1);
  auto key = [](const sim::Access& acc) {
    return std::pair<arch::Addr, bool>(acc.addr, acc.op == sim::Op::kStore);
  };
  std::multiset<std::pair<arch::Addr, bool>> s1, s2;
  for (const auto& acc : drain(outer)) s1.insert(key(acc));
  for (const auto& acc : drain(fused)) s2.insert(key(acc));
  EXPECT_EQ(s1, s2);
}

TEST(LbmProgram, IterationMarkersPerSite) {
  const Geometry g = small_geo();
  LbmProgram p(g, addrs(g), LoopOrder::kOuterZ, {{0, g.nz}}, 1);
  std::size_t markers = 0;
  for (const auto& acc : drain(p))
    if (acc.begins_iteration) ++markers;
  EXPECT_EQ(markers, g.interior_cells());  // one per site
}

TEST(LbmWorkload, PartitionsCoverDomain) {
  const Geometry g{6, 6, 10, 0, DataLayout::kIvJK};
  for (LoopOrder order : {LoopOrder::kOuterZ, LoopOrder::kCoalescedZY}) {
    auto wl = make_lbm_workload(g, addrs(g), order, 4,
                                sched::Schedule::static_block(), 1);
    ASSERT_EQ(wl.size(), 4u);
    std::uint64_t total = 0;
    for (const auto& p : wl) total += p->total_accesses();
    EXPECT_EQ(total, g.interior_cells() * 39);
  }
}

TEST(LbmWorkload, ModuloImbalanceVisibleInOuterZ) {
  // nz = 10 over 4 threads: thread 0 gets 3 planes, thread 3 gets 2.
  const Geometry g{6, 6, 10, 0, DataLayout::kIJKv};
  auto wl = make_lbm_workload(g, addrs(g), LoopOrder::kOuterZ, 4,
                              sched::Schedule::static_block(), 1);
  EXPECT_GT(wl[0]->total_accesses(), wl[3]->total_accesses());
  // Coalescing z and y (60 iterations over 4 threads) evens it out.
  auto wl2 = make_lbm_workload(g, addrs(g), LoopOrder::kCoalescedZY, 4,
                               sched::Schedule::static_block(), 1);
  EXPECT_EQ(wl2[0]->total_accesses(), wl2[3]->total_accesses());
}

}  // namespace
}  // namespace mcopt::kernels::lbm
