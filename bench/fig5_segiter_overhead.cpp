// Fig. 5 reproduction: performance overhead of segmented iterators versus
// plain loops for the vector triad, measured NATIVELY on the host (this is
// the one figure that is a property of generated code, not of the T2 memory
// system, so it reproduces on any machine).
//
// Paper shape (Sect. 2.2): the segmented-triad curve is indistinguishable
// from the plain-OpenMP curve over four decades of N — the hierarchical-
// algorithm design recurses into raw local loops, so the abstraction is
// free in the inner loop.

#include <algorithm>
#include <cmath>
#include <functional>

#include "common.h"
#include "sched/pinning.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace mcopt;

double best_of(unsigned reps, const std::function<double()>& run_once) {
  double best = 1e99;
  for (unsigned r = 0; r < reps; ++r) best = std::min(best, run_once());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Fig. 5: segmented-iterator overhead vs plain loops (native)");
  cli.flag("full", "denser N grid and more repetitions")
      .option_int("min-n", 1000, "smallest N")
      .option_int("max-n", 10'000'000, "largest N")
      .option_int("reps", 7, "repetitions (best-of)")
      .option_str("csv", "", "mirror results to this CSV file");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  const bool full = cli.get_flag("full");
  const auto min_n = static_cast<std::size_t>(cli.get_int("min-n"));
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n"));
  const unsigned reps = full ? 15 : static_cast<unsigned>(cli.get_int("reps"));
  const double steps_per_decade = full ? 12.0 : 6.0;

  const unsigned threads = sched::online_cpus();
  std::printf(
      "# Native vector triad, %u OpenMP thread(s), actual traffic GB/s "
      "(5 words/update)\n# segmented = seg_array with one segment per "
      "thread + segmented triad(); plain = raw arrays\n\n",
      threads);

  seg::LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;

  const std::vector<std::string> header = {"N", "plain GB/s", "segmented GB/s",
                                           "ratio"};
  std::vector<std::vector<std::string>> rows;
  for (double nd = static_cast<double>(min_n); nd <= static_cast<double>(max_n);
       nd *= std::pow(10.0, 1.0 / steps_per_decade)) {
    const auto n = static_cast<std::size_t>(nd);

    std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0), d(n, 3.0);
    const double plain_s = best_of(reps, [&] {
      return kernels::triad_plain_sweep_seconds(a.data(), b.data(), c.data(),
                                                d.data(), n);
    });

    auto sa = seg::seg_array<double>::even(n, threads, spec);
    auto sb = seg::seg_array<double>::even(n, threads, spec);
    auto sc = seg::seg_array<double>::even(n, threads, spec);
    auto sd = seg::seg_array<double>::even(n, threads, spec);
    seg::fill(sb.begin(), sb.end(), 1.0);
    seg::fill(sc.begin(), sc.end(), 2.0);
    seg::fill(sd.begin(), sd.end(), 3.0);
    const double seg_s = best_of(
        reps, [&] { return kernels::triad_segmented_sweep_seconds(sa, sb, sc, sd); });

    const double bytes = static_cast<double>(kernels::triad_actual_bytes(n));
    rows.push_back({std::to_string(n), util::fmt_fixed(bytes / plain_s / 1e9, 2),
                    util::fmt_fixed(bytes / seg_s / 1e9, 2),
                    util::fmt_fixed(plain_s / seg_s, 3)});
  }
  bench::emit(header, rows, cli.get_str("csv"));
  std::printf(
      "\nshape check: ratio (plain/segmented time) should hover near 1.0 at "
      "every N — the segmented abstraction is free (paper Fig. 5).\n");
  return 0;
}
