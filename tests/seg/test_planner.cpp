#include "seg/planner.h"

#include <gtest/gtest.h>

#include <set>

namespace mcopt::seg {
namespace {

TEST(StreamPlan, OffsetsAreControllerStrides) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  // The paper's optimum for the vector triad: 0, 128, 256, 384 bytes.
  EXPECT_EQ(plan.offsets, (std::vector<std::size_t>{0, 128, 256, 384}));
}

TEST(StreamPlan, OffsetsWrapModuloPeriod) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(6, map);
  EXPECT_EQ(plan.offsets[4], 0u);
  EXPECT_EQ(plan.offsets[5], 128u);
}

TEST(StreamPlan, PlannedBasesCoverDistinctControllers) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  std::set<unsigned> controllers;
  for (std::size_t k = 0; k < 4; ++k) {
    // Any page-aligned base plus the planned offset.
    const arch::Addr base = 0x10000 * 8192 + plan.offsets[k];
    controllers.insert(map.controller_of(base));
  }
  EXPECT_EQ(controllers.size(), 4u);
}

TEST(StreamPlan, SpecForCarriesOffset) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(3, map);
  const LayoutSpec spec = plan.spec_for(2);
  EXPECT_EQ(spec.offset, 256u);
  EXPECT_GE(spec.base_align, 8192u);
  EXPECT_EQ(spec.shift, 0u);
}

TEST(StreamPlan, PlannedLayoutIsPerfectlyBalanced) {
  const arch::AddressMap map;
  const StreamPlan plan = plan_stream_offsets(4, map);
  std::vector<arch::Addr> bases;
  for (std::size_t k = 0; k < 4; ++k)
    bases.push_back(arch::Addr{8192} * (k + 1) * 1000 + plan.offsets[k]);
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 1.0);
}

TEST(RowPlan, MatchesPaperParameters) {
  const arch::AddressMap map;
  const RowPlan plan = plan_row_layout(map);
  // Sect. 2.3: rows aligned to 512 bytes, shift = 128 bytes.
  EXPECT_EQ(plan.segment_align, 512u);
  EXPECT_EQ(plan.shift, 128u);
  const LayoutSpec spec = plan.spec();
  EXPECT_EQ(spec.segment_align, 512u);
  EXPECT_EQ(spec.shift, 128u);
  EXPECT_EQ(spec.offset, 0u);
}

TEST(RowPlan, SuccessiveRowsHitSuccessiveControllers) {
  const arch::AddressMap map;
  const RowPlan plan = plan_row_layout(map);
  // Row s starts at s*(512 + ...) hmm: aligned to 512 then shifted s*128;
  // relative controller of row s's start = s mod 4.
  for (unsigned s = 0; s < 8; ++s) {
    const arch::Addr start = arch::Addr{s} * plan.segment_align + s * plan.shift;
    EXPECT_EQ(map.controller_of(start), s % 4) << "row " << s;
  }
}

TEST(Diagnose, FullyAliasedStreams) {
  const arch::AddressMap map;
  const std::vector<arch::Addr> bases = {0, 512, 1024};
  const AliasReport report = diagnose_streams(bases, map);
  EXPECT_TRUE(report.fully_aliased);
  EXPECT_DOUBLE_EQ(report.balance, 0.25);
  EXPECT_EQ(report.base_controller, (std::vector<unsigned>{0, 0, 0}));
  EXPECT_NE(report.summary.find("FULLY-ALIASED"), std::string::npos);
}

TEST(Diagnose, BalancedStreams) {
  const arch::AddressMap map;
  const std::vector<arch::Addr> bases = {0, 128, 256, 384};
  const AliasReport report = diagnose_streams(bases, map);
  EXPECT_FALSE(report.fully_aliased);
  EXPECT_DOUBLE_EQ(report.balance, 1.0);
  EXPECT_EQ(report.base_controller, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Diagnose, EmptyInputIsNotAliased) {
  const arch::AddressMap map;
  EXPECT_THROW(diagnose_streams({}, map), std::invalid_argument);
}

TEST(Planner, CustomInterleave) {
  // 2 controllers, 128 B lines: stride = period/2 = 512 B.
  const arch::InterleaveSpec spec{7, 2, 1};
  const arch::AddressMap map(spec);
  const StreamPlan plan = plan_stream_offsets(2, map);
  EXPECT_EQ(plan.offsets, (std::vector<std::size_t>{0, 512}));
  const RowPlan rows = plan_row_layout(map);
  EXPECT_EQ(rows.segment_align, 1024u);
  EXPECT_EQ(rows.shift, 512u);
}

}  // namespace
}  // namespace mcopt::seg
