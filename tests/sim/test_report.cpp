#include "sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/stream_program.h"

namespace mcopt::sim {
namespace {

SimResult run_small() {
  SimConfig cfg;
  Workload wl;
  for (unsigned t = 0; t < 4; ++t) {
    std::vector<trace::StreamDesc> s{
        {(arch::Addr{1} << 32) + t * (arch::Addr{1} << 22), false, 2},
        {(arch::Addr{1} << 33) + t * (arch::Addr{1} << 22), true, 0}};
    wl.push_back(std::make_unique<trace::LockstepStreamProgram>(
        s, sizeof(double), std::vector<sched::IterRange>{{0, 4096}}, 1));
  }
  Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  return chip.run(wl);
}

TEST(Report, SummaryFieldsConsistent) {
  const SimResult res = run_small();
  const UtilizationSummary s = summarize(res);
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.bandwidth_gbs, 0.0);
  EXPECT_GT(s.read_fraction, 0.0);
  EXPECT_LE(s.read_fraction, 1.0);
  EXPECT_GE(s.mc_busy_max, s.mc_busy_min);
  EXPECT_LE(s.mc_busy_max, 1.0);
  EXPECT_GE(s.l1_miss_ratio, 0.0);
  EXPECT_LE(s.l1_miss_ratio, 1.0);
  EXPECT_GE(s.thread_imbalance, 0.0);
  EXPECT_LT(s.thread_imbalance, 1.0);
  EXPECT_GT(s.gflops, 0.0);
}

TEST(Report, EmptyResultIsAllZero) {
  const UtilizationSummary s = summarize(SimResult{});
  EXPECT_EQ(s.seconds, 0.0);
  EXPECT_EQ(s.bandwidth_gbs, 0.0);
  EXPECT_EQ(s.mc_busy_max, 0.0);
  EXPECT_EQ(s.thread_imbalance, 0.0);
}

TEST(Report, PrintContainsSections) {
  const SimResult res = run_small();
  std::ostringstream os;
  print_report(os, res);
  const std::string out = os.str();
  EXPECT_NE(out.find("GB/s memory traffic"), std::string::npos);
  EXPECT_NE(out.find("L1 miss"), std::string::npos);
  EXPECT_NE(out.find("MC"), std::string::npos);
  // One row per controller.
  EXPECT_NE(out.find("\n0  "), std::string::npos);
  EXPECT_NE(out.find("\n3  "), std::string::npos);
}

TEST(Report, BriefIsOneLine) {
  const SimResult res = run_small();
  const std::string line = brief(res);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("GB/s"), std::string::npos);
  EXPECT_NE(line.find("imbalance"), std::string::npos);
}

TEST(Report, ImbalanceReflectsUnevenWork) {
  SimConfig cfg;
  Workload wl;
  // Thread 0 does 4x the iterations of thread 1.
  for (unsigned t = 0; t < 2; ++t) {
    std::vector<trace::StreamDesc> s{
        {(arch::Addr{1} << 32) + t * (arch::Addr{1} << 24), false, 0}};
    wl.push_back(std::make_unique<trace::LockstepStreamProgram>(
        s, sizeof(double),
        std::vector<sched::IterRange>{{0, t == 0 ? 8192u : 2048u}}, 1));
  }
  cfg.model_lockstep = false;  // let them run free
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  const SimResult res = chip.run(wl);
  EXPECT_GT(summarize(res).thread_imbalance, 0.4);
}

}  // namespace
}  // namespace mcopt::sim
