#pragma once
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// integrity checksum guarding seg_array segments and checkpoint files.
//
// CRC32C is chosen over plain CRC32 because commodity x86 cores since
// Nehalem execute it in hardware (SSE4.2 `crc32` instruction). The hardware
// path runs three interleaved crc32 dependency chains over 4 KiB lanes and
// recombines the lane remainders through precomputed zero-byte shift
// operators, hiding the instruction's 3-cycle latency — this keeps the
// healthy-path overhead of per-segment sidecars in the low single digits
// even against memory-bound kernels. The software fallback is a slice-by-8
// table implementation, selected once at startup via cpuid; both paths
// produce identical values (locked by test), so checkpoints written on one
// machine verify on any other.
//
// Convention: standard CRC32C with initial value 0xFFFFFFFF and final
// inversion — crc32c("") == 0, crc32c("123456789") == 0xE3069283.

#include <cstddef>
#include <cstdint>

namespace mcopt::util {

/// One-shot CRC32C of `bytes` bytes at `data`. `seed` chains calls:
/// crc32c(ab) == crc32c(b, crc32c(a)).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t bytes,
                                   std::uint32_t seed = 0) noexcept;

/// True when the SSE4.2 hardware path is in use (informational; both paths
/// compute the same function).
[[nodiscard]] bool crc32c_hw_available() noexcept;

/// Software path, exposed so tests can pin hw == sw on machines that have
/// the instruction. Same convention as crc32c().
[[nodiscard]] std::uint32_t crc32c_sw(const void* data, std::size_t bytes,
                                      std::uint32_t seed = 0) noexcept;

/// Incremental CRC32C: update() over any chunking yields the same value()
/// as one crc32c() call over the concatenation.
class Crc32c {
 public:
  void update(const void* data, std::size_t bytes) noexcept;
  /// Finalized checksum of everything fed so far (update() may continue).
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;  ///< pre-inversion running remainder
};

}  // namespace mcopt::util
