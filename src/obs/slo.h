#pragma once
// SLO error-budget monitor: per-(tenant, SLO-class) rolling-window burn
// rates over the served-within-deadline objective, with a multi-window
// alert rule (fast AND slow window both burning) so a single straggler
// never pages but a sustained breach does. Windows are keyed on the
// *virtual service timeline* (the executor's cycle clock carried in every
// JobReport), not wall time: feeding the monitor from a batched poll or a
// post-restart replay lands each outcome in the bucket where the job
// actually finished, which is what makes burn rates reproducible across
// runs and restarts.
//
// Burn rate 1.0 = spending exactly the error budget (1 - target) over the
// window; >1 is over-spend. The multi-window rule follows the standard
// practice: alert when the fast window burns hot (caught quickly) AND the
// slow window confirms it (not a blip).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::obs {

struct SloBurnConfig {
  /// Served-within-deadline objective (0.999 = 0.1% error budget).
  double target = 0.999;
  /// Rolling windows, in service-timeline cycles.
  std::uint64_t fast_window = 2'000'000;
  std::uint64_t slow_window = 20'000'000;
  /// Ring granularity: each window is split into this many buckets.
  std::uint32_t buckets = 16;
  /// Multi-window alert thresholds (burn-rate multiples of budget).
  double fast_alert = 10.0;
  double slow_alert = 2.0;

  [[nodiscard]] util::Status check() const;
};

/// Typed alert — the supervisor-facing input the adaptive-hysteresis
/// controller (ROADMAP) consumes. Drained via SloMonitor::drain_alerts().
struct SloAlert {
  std::uint32_t tenant = 0;
  std::uint32_t slo_class = 0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t at = 0;  ///< service-timeline cycle of the triggering job
};

/// Point-in-time burn reading for one (tenant, class) pair.
struct SloBurn {
  std::uint32_t tenant = 0;
  std::uint32_t slo_class = 0;
  std::uint64_t total = 0;   ///< outcomes ever recorded
  std::uint64_t missed = 0;  ///< deadline misses ever recorded
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t alerts = 0;
};

/// Thread-safe monitor. record() is a mutex + two ring updates — a
/// per-completion cold path next to the simulated work being judged.
class SloMonitor {
 public:
  explicit SloMonitor(SloBurnConfig cfg = {});

  /// Feeds one job outcome: tenant/class, whether the deadline was missed,
  /// and the job's finish position on the service timeline. Emits
  /// slo.burn.* gauges, a "slo.burn.alert" trace instant, and queues a
  /// typed SloAlert when the multi-window rule fires.
  void record(std::uint32_t tenant, std::uint32_t slo_class, bool missed,
              std::uint64_t at_cycles);

  /// Current burn readings, one per observed (tenant, class).
  [[nodiscard]] std::vector<SloBurn> burns() const;

  /// Alerts queued since the last drain (the typed supervisor input).
  [[nodiscard]] std::vector<SloAlert> drain_alerts();

  /// Total alerts fired since construction/reset.
  [[nodiscard]] std::uint64_t alerts_fired() const;

  /// One-line JSON: config + per-(tenant, class) burn table, the document
  /// `obs_query --burn-report` and check_obs_outputs.py --burn-json read.
  [[nodiscard]] std::string json() const;
  [[nodiscard]] util::Status write_json(const std::string& path) const;

  [[nodiscard]] const SloBurnConfig& config() const noexcept { return cfg_; }

  void reset();

 private:
  /// One rolling window: a ring of {total, missed} buckets over the cycle
  /// timeline. Advancing past a bucket zeroes it (its interval left the
  /// window).
  struct Window {
    std::uint64_t bucket_cycles = 1;
    std::uint64_t head = 0;  ///< index of the newest bucket interval
    std::vector<std::uint64_t> total;
    std::vector<std::uint64_t> missed;

    void init(std::uint64_t window_cycles, std::uint32_t buckets);
    void add(std::uint64_t at, bool miss);
    [[nodiscard]] double miss_fraction() const;
  };

  struct Entry {
    Window fast;
    Window slow;
    std::uint64_t total = 0;
    std::uint64_t missed = 0;
    std::uint64_t alerts = 0;
  };

  [[nodiscard]] double burn_of(double miss_fraction) const;

  SloBurnConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Entry> entries_;
  std::vector<SloAlert> pending_;
  std::uint64_t alerts_fired_ = 0;
};

}  // namespace mcopt::obs
