#pragma once
// Access-program generator for the 2D five-point Jacobi relaxation solver
// (Sect. 2.3). Rows are segments of a VirtualSegArray; the parallel loop
// runs over interior rows under a configurable OpenMP schedule; each row
// update streams four loads and one store per interior point with four
// flops, exactly like the paper's relax_line() kernel.

#include <cstdint>
#include <vector>

#include "sched/schedule.h"
#include "sim/program.h"
#include "trace/virtual_arena.h"

namespace mcopt::trace {

/// Addresses of the two NxN toggle grids, one row per segment.
struct JacobiGrids {
  const VirtualSegArray* source = nullptr;
  const VirtualSegArray* dest = nullptr;
  std::size_t n = 0;  ///< domain edge length (rows and row length)
};

/// One thread's share of one Jacobi sweep.
class JacobiProgram final : public sim::AccessProgram {
 public:
  /// `row_chunks` hold interior-row indices i in [1, n-1) as iteration
  /// values shifted by -1 (i.e. iteration k updates row k+1), matching
  /// chunks_for_thread(n-2, ...). `sweeps` alternates source/dest.
  JacobiProgram(JacobiGrids grids, std::vector<sched::IterRange> row_chunks,
                unsigned sweeps = 1);

  std::size_t next_batch(std::span<sim::Access> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t total_accesses() const override;

 private:
  /// Grid roles for the current sweep (toggle arrays swap every sweep).
  [[nodiscard]] const VirtualSegArray& src() const {
    return sweep_ % 2 == 0 ? *grids_.source : *grids_.dest;
  }
  [[nodiscard]] const VirtualSegArray& dst() const {
    return sweep_ % 2 == 0 ? *grids_.dest : *grids_.source;
  }

  JacobiGrids grids_;
  std::vector<sched::IterRange> chunks_;
  unsigned sweeps_;

  unsigned sweep_ = 0;
  std::size_t chunk_ = 0;
  std::size_t iter_ = 0;   ///< iteration within chunk (row = iter + 1)
  std::size_t col_ = 1;    ///< interior column j in [1, n-1)
  unsigned phase_ = 0;     ///< 0..4: loads up, down, left, right; store
};

/// Whole-chip Jacobi workload under `schedule` over the interior rows.
[[nodiscard]] sim::Workload make_jacobi_workload(const JacobiGrids& grids,
                                                 unsigned num_threads,
                                                 const sched::Schedule& schedule,
                                                 unsigned sweeps = 1);

/// Lattice-site updates one sweep performs ((n-2)^2), for MLUPs/s reporting.
[[nodiscard]] std::uint64_t jacobi_updates_per_sweep(std::size_t n);

}  // namespace mcopt::trace
