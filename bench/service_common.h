#pragma once
// Multi-tenant service soak harness: a seeded tenant population (weights,
// quotas, SLO classes) with a configurable share of *adversarial* tenants,
// driven open-loop against runtime::service::Service, plus the isolation
// invariants the service soak and the regression tier assert:
//
//   S1  conservation, twice over: at the door, every tenant's offered bytes
//       split exactly into door-shed + forwarded; past the door, every
//       forwarded job yields exactly one executor report and forwarded
//       bytes split exactly into goodput + typed executor-shed bytes;
//   S2  starvation-freedom: every well-behaved tenant — sized at its
//       weight-proportional share of capacity — completes >= 90% of its
//       offered bytes no matter what the attackers do;
//   S3  isolation: a well-behaved tenant's completed-job p99 sojourn in the
//       full adversarial mix stays within 1.25x of its p99 in the *solo
//       baseline* — the identical run with every attacker muted (per-tenant
//       RNG streams and a fixed virtual horizon make the victims' job
//       streams bit-identical across the two runs);
//   S4  containment: an attacker sustaining attacker_overdrive x its quota
//       gets at most quota-rate x time (+ one bucket depth) past the door —
//       abuse is throttled at the door, never amortized over victims.
//
// All accounting lives on virtual cycle clocks (the door clock for quota
// and breakers, the bandwidth-server clock for service), so the invariants
// are timing-independent and every failure replays from its seed.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "overload_common.h"
#include "runtime/service/service.h"

namespace mcopt::bench {

/// How a tenant misbehaves. Everything except kWellBehaved is adversarial.
enum class TenantBehavior : unsigned {
  kWellBehaved = 0,
  kBurstFlood,       ///< on/off bursts averaging attacker_overdrive x quota
  kDeadlineAbuser,   ///< in-quota rate, but every deadline is impossible
  kQuotaOscillator,  ///< long idle, then a dense over-quota volley
  kMidRunFaulter     ///< cancels ~30% of its accepted jobs mid-flight
};
inline constexpr unsigned kNumTenantBehaviors = 5;

[[nodiscard]] constexpr const char* to_string(TenantBehavior b) noexcept {
  switch (b) {
    case TenantBehavior::kWellBehaved: return "well-behaved";
    case TenantBehavior::kBurstFlood: return "burst-flood";
    case TenantBehavior::kDeadlineAbuser: return "deadline-abuser";
    case TenantBehavior::kQuotaOscillator: return "quota-oscillator";
    case TenantBehavior::kMidRunFaulter: return "mid-run-faulter";
  }
  return "?";
}

struct ServiceSoakParams {
  unsigned tenants = 1000;
  /// Expected total submissions of the full (unmuted) mix; the virtual
  /// horizon is derived from this and the population's offered rates.
  unsigned target_jobs = 1'000'000;
  std::uint64_t seed = 1;
  unsigned num_workers = 4;
  /// Sum of well-behaved offered load, as a fraction of the mix capacity.
  double well_behaved_load = 0.70;
  /// Share of tenants drawn adversarial (uniform over the attacker kinds).
  double attacker_fraction = 0.02;
  /// Attacker offered rate as a multiple of its own quota.
  double attacker_overdrive = 4.0;
  /// Tenant quota as a multiple of its weight-proportional fair rate.
  double quota_headroom = 1.5;
  /// Ground-truth controller-fault timeline (virtual cycles; resolved).
  sim::FaultSchedule truth{};
  bool run_kernels = false;  ///< accounting mode by default at this scale
  /// Solo baseline: attacker submissions skipped (tenant registry and every
  /// well-behaved job stream are bit-identical to the unmuted run).
  bool mute_attackers = false;
  /// Real ns per virtual cycle for open-loop pacing; 0 = unpaced. Unpaced
  /// is sound here because every invariant lives on virtual time and the
  /// lanes are sized to hold the whole mix (no physical-depth artifacts).
  double pace_ns_per_cycle = 0.0;
};

/// The job shapes tenants draw from, with healthy quotes priced once.
struct JobShape {
  runtime::exec::JobKind kind = runtime::exec::JobKind::kTriad;
  std::size_t n = 1024;
  unsigned iterations = 1;
  std::uint64_t bytes = 0;
  arch::Cycles healthy_cycles = 0;
};

inline std::vector<JobShape> service_job_shapes(
    const runtime::exec::PricingModel& pricing) {
  using runtime::exec::JobKind;
  std::vector<JobShape> shapes;
  for (const std::size_t n : {1024, 2048, 4096})
    for (const unsigned it : {1u, 2u})
      shapes.push_back({JobKind::kTriad, n, it, 0, 0});
  for (const std::size_t n : {32, 48, 64})
    for (const unsigned it : {1u, 2u})
      shapes.push_back({JobKind::kJacobi, n, it, 0, 0});
  for (JobShape& s : shapes) {
    runtime::exec::JobSpec spec;
    spec.kind = s.kind;
    spec.n = s.n;
    spec.iterations = s.iterations;
    const auto quote = pricing.price(spec, {});
    s.bytes = quote.value().bytes;
    s.healthy_cycles = quote.value().service_cycles;
  }
  return shapes;
}

/// One tenant's plan: service config + behavior + offered rate.
struct TenantPlan {
  runtime::service::TenantConfig config;
  TenantBehavior behavior = TenantBehavior::kWellBehaved;
  double offered_bytes_per_cycle = 0.0;
  std::uint64_t rng_seed = 0;
};

/// Draws the tenant population. Deterministic in params.seed; independent
/// of mute_attackers (the baseline must see the identical registry).
inline std::vector<TenantPlan> plan_tenants(const ServiceSoakParams& params,
                                            const std::vector<JobShape>& shapes,
                                            double clock_hz) {
  util::Xoshiro256 rng(params.seed * 0x9e3779b97f4a7c15ULL + 17);
  std::vector<TenantPlan> plans(params.tenants);

  double mean_bytes = 0.0, mean_cycles = 0.0;
  std::uint64_t max_bytes = 0;
  for (const JobShape& s : shapes) {
    mean_bytes += static_cast<double>(s.bytes);
    mean_cycles += static_cast<double>(s.healthy_cycles);
    max_bytes = std::max(max_bytes, s.bytes);
  }
  mean_bytes /= static_cast<double>(shapes.size());
  mean_cycles /= static_cast<double>(shapes.size());
  // The serialized bandwidth server's byte rate on the uniform shape mix.
  const double capacity_bytes_per_cycle = mean_bytes / mean_cycles;

  double total_weight = 0.0;
  for (TenantPlan& p : plans) {
    p.config.weight = static_cast<double>(std::uint64_t{1} << rng.below(4));
    total_weight += p.config.weight;
    p.behavior = rng.uniform() < params.attacker_fraction
                     ? static_cast<TenantBehavior>(1 + rng.below(4))
                     : TenantBehavior::kWellBehaved;
    const double slo_draw = rng.uniform();
    using runtime::service::SloClass;
    p.config.slo = slo_draw < 0.3   ? SloClass::kInteractive
                   : slo_draw < 0.8 ? SloClass::kStandard
                                    : SloClass::kBatch;
  }
  for (unsigned i = 0; i < params.tenants; ++i) {
    TenantPlan& p = plans[i];
    p.config.name =
        std::string(to_string(p.behavior)) + "-" + std::to_string(i + 1);
    const double fair_rate = params.well_behaved_load *
                             capacity_bytes_per_cycle * p.config.weight /
                             total_weight;
    p.config.quota_bytes_per_s = params.quota_headroom * fair_rate * clock_hz;
    // Bucket depth must hold a few of the largest jobs, or a small-weight
    // tenant could never submit one at all — quota caps the *rate*, not the
    // job size. (S4's allowance includes the depth, so this stays honest.)
    p.config.burst_seconds =
        p.config.quota_bytes_per_s > 0.0
            ? std::max(0.25, 4.0 * static_cast<double>(max_bytes) /
                                 p.config.quota_bytes_per_s)
            : 0.25;
    p.config.breaker_trip_threshold = 16;
    p.config.breaker = {.initial = 2'000'000,
                        .multiplier = 2.0,
                        .cap = 128'000'000,
                        .jitter = 0.1};
    const bool floods = p.behavior == TenantBehavior::kBurstFlood ||
                        p.behavior == TenantBehavior::kQuotaOscillator;
    p.offered_bytes_per_cycle =
        floods ? params.attacker_overdrive * params.quota_headroom * fair_rate
               : fair_rate;
    // Per-tenant stream RNG: muting one tenant cannot shift another's draws.
    p.rng_seed = params.seed * 1000003ULL + i + 1;
  }
  return plans;
}

/// Virtual horizon of the soak: the submission window that makes the full
/// mix's expected job count hit target_jobs. Deterministic for fixed params
/// (used to resolve percent-relative fault schedules before running).
inline arch::Cycles service_soak_horizon(const ServiceSoakParams& params) {
  const runtime::exec::PricingModel pricing{{}};
  const auto shapes = service_job_shapes(pricing);
  const auto plans = plan_tenants(params, shapes, pricing.clock_hz());
  double mean_bytes = 0.0;
  for (const JobShape& s : shapes) mean_bytes += static_cast<double>(s.bytes);
  mean_bytes /= static_cast<double>(shapes.size());
  double jobs_per_cycle = 0.0;
  for (const TenantPlan& p : plans)
    jobs_per_cycle += p.offered_bytes_per_cycle / mean_bytes;
  if (jobs_per_cycle <= 0.0) return 1;
  return static_cast<arch::Cycles>(
      std::ceil(static_cast<double>(params.target_jobs) / jobs_per_cycle));
}

/// One generated submission.
struct SoakJob {
  arch::Cycles arrival = 0;
  std::uint32_t tenant = 0;  ///< plan index + 1 (== registration order)
  std::uint16_t shape = 0;
  bool abusive_deadline = false;  ///< explicit impossible deadline
  bool cancel_after_submit = false;
};

/// Generates one tenant's stream over [0, horizon). Behavior shapes the
/// arrival process: floods draw exponential gaps at an elevated in-burst
/// rate and skip the off phase entirely, so the long-run average stays at
/// the plan's offered rate while the instantaneous rate spikes well above
/// quota.
inline void generate_tenant_stream(const TenantPlan& plan, unsigned tenant_id,
                                   const std::vector<JobShape>& shapes,
                                   arch::Cycles horizon,
                                   std::vector<SoakJob>& out) {
  util::Xoshiro256 rng(plan.rng_seed);
  double mean_bytes = 0.0;
  for (const JobShape& s : shapes) mean_bytes += static_cast<double>(s.bytes);
  mean_bytes /= static_cast<double>(shapes.size());

  double duty = 1.0;  // fraction of each period the tenant submits in
  arch::Cycles period = horizon;
  switch (plan.behavior) {
    case TenantBehavior::kBurstFlood:
      duty = 0.25;
      period = std::max<arch::Cycles>(1, horizon / 32);
      break;
    case TenantBehavior::kQuotaOscillator:
      duty = 0.125;
      period = std::max<arch::Cycles>(1, horizon / 8);
      break;
    default:
      break;
  }
  const double on_rate = plan.offered_bytes_per_cycle / duty;  // bytes/cycle
  const double mean_gap = mean_bytes / on_rate;                // cycles/job
  const auto on_span =
      static_cast<arch::Cycles>(duty * static_cast<double>(period));

  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform()) * mean_gap;
    auto arrival = static_cast<arch::Cycles>(std::ceil(t));
    if (duty < 1.0 && arrival % period >= on_span) {
      // Fell in the off phase: skip to the next period's on window. Off
      // time produces no draws, so the in-window rate stays on_rate and the
      // long-run average stays duty * on_rate = the plan's offered rate.
      t += static_cast<double>(period - arrival % period);
      arrival = static_cast<arch::Cycles>(std::ceil(t));
    }
    if (arrival >= horizon) break;
    SoakJob j;
    j.arrival = arrival;
    j.tenant = tenant_id;
    j.shape = static_cast<std::uint16_t>(rng.below(shapes.size()));
    j.abusive_deadline = plan.behavior == TenantBehavior::kDeadlineAbuser;
    j.cancel_after_submit = plan.behavior == TenantBehavior::kMidRunFaulter &&
                            rng.uniform() < 0.30;
    out.push_back(j);
  }
}

/// Harness-side per-tenant latency/goodput detail joined from the raw
/// executor reports (TenantSummary carries the service's own view).
struct TenantLatency {
  double mean_ms = 0.0;  ///< mean completed-job sojourn
  /// Bytes completed by window_end — the starvation-freedom currency. Under
  /// drain-to-completion *total* goodput is blind to starvation (a starved
  /// tenant still finishes eventually); bytes served within the offered
  /// window are not.
  std::uint64_t in_window_bytes = 0;
};

struct ServiceSoakResult {
  std::vector<runtime::service::TenantSummary> tenants;
  std::vector<TenantBehavior> behaviors;  ///< indexed like tenants
  std::vector<TenantLatency> latency;     ///< indexed like tenants
  /// Pooled completed-job sojourn percentiles over every well-behaved
  /// tenant: the victim population's latency, stable at any tenant count.
  double victim_pool_p50_ms = 0.0;
  double victim_pool_p99_ms = 0.0;
  arch::Cycles window_end = 0;  ///< horizon + drain allowance
  runtime::exec::ExecutorStats exec_stats;
  arch::Cycles horizon = 0;       ///< submission window (virtual cycles)
  arch::Cycles drained_at = 0;    ///< virtual_now() after drain
  std::uint64_t submissions = 0;  ///< jobs presented at the door
  std::uint64_t door_shed = 0;    ///< throttled + breaker-rejected
  std::uint64_t breaker_opens = 0;
  std::uint64_t cancelled_requests = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t goodput_bytes = 0;
  double clock_hz = 0.0;
  double goodput_gbs = 0.0;
  double capacity_gbs = 0.0;  ///< shape-mix byte rate of the healthy server
  /// Jain's index over well-behaved tenants' goodput/weight ratios.
  double jain_weighted = 1.0;
};

inline ServiceSoakResult run_service_soak(const ServiceSoakParams& params) {
  using runtime::service::Service;
  using runtime::service::ServiceConfig;
  using runtime::service::SloPolicy;

  ServiceConfig scfg;
  scfg.executor.num_workers = params.num_workers;
  // Lanes sized to hold the entire mix: physical queue depth is a real-vs-
  // virtual-speed artifact and must not shed anything in an unpaced
  // accounting soak.
  scfg.executor.lane_capacity = {std::size_t{1} << 21, std::size_t{1} << 21,
                                 std::size_t{1} << 21};
  scfg.executor.truth = params.truth;
  scfg.executor.seed = params.seed;
  scfg.executor.run_kernels = params.run_kernels;

  const runtime::exec::PricingModel pricing(scfg.executor.pricing);
  const auto shapes = service_job_shapes(pricing);
  const auto plans = plan_tenants(params, shapes, pricing.clock_hz());
  const arch::Cycles horizon = service_soak_horizon(params);

  arch::Cycles max_service = 0;
  for (const JobShape& s : shapes)
    max_service = std::max(max_service, s.healthy_cycles);
  // Overtake insurance at admission plus a queueing-latency floor on SLO
  // deadlines — same rationale as the overload generator's latency floor.
  scfg.executor.admission_margin = 2 * max_service;
  // The soak's SLO classes keep their distinct priority lanes but no
  // implicit deadlines. Under WFQ a flow queueing behind its own earlier
  // jobs legitimately waits ~burst_bytes x (total weight / own weight) —
  // orders of magnitude beyond any deadline sized in units of one job's
  // service time — so class-wide deadlines would only make the SLO itself
  // shed well-behaved small-weight tenants and drown the fairness signal.
  // Starvation-freedom is gated on in-window completion instead (S2), and
  // the deadline/admission machinery is exercised by the deadline-abuser's
  // explicit hopeless deadlines here plus the dedicated overload sweep.
  scfg.slo = {SloPolicy{runtime::exec::Priority::kHigh, 0.0, 0},
              SloPolicy{runtime::exec::Priority::kNormal, 0.0, 0},
              SloPolicy{runtime::exec::Priority::kLow, 0.0, 0}};

  Service svc(scfg);
  for (const TenantPlan& p : plans) (void)svc.register_tenant(p.config);

  // Generate every tenant's stream, then merge into one arrival-ordered
  // submission sequence. Ties break by tenant id and generation order, so a
  // seed replays the identical submission order — bit-stable end to end.
  std::vector<SoakJob> jobs;
  jobs.reserve(params.target_jobs + params.target_jobs / 8);
  for (unsigned i = 0; i < plans.size(); ++i) {
    if (params.mute_attackers &&
        plans[i].behavior != TenantBehavior::kWellBehaved)
      continue;
    generate_tenant_stream(plans[i], i + 1, shapes, horizon, jobs);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SoakJob& a, const SoakJob& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.tenant < b.tenant;
                   });

  ServiceSoakResult out;
  out.horizon = horizon;
  out.clock_hz = pricing.clock_hz();
  out.submissions = jobs.size();

  const auto submit_one = [&](const SoakJob& j) {
    const JobShape& shape = shapes[j.shape];
    runtime::exec::JobSpec spec;
    spec.kind = shape.kind;
    spec.n = shape.n;
    spec.iterations = shape.iterations;
    spec.arrival = j.arrival;
    if (j.abusive_deadline) spec.deadline = j.arrival + 1;  // hopeless
    const runtime::exec::SubmitResult res = svc.submit(j.tenant, spec);
    if (j.cancel_after_submit && res.accepted) {
      (void)svc.cancel(res.id);
      ++out.cancelled_requests;
    }
  };

  if (params.pace_ns_per_cycle > 0.0) {
    // Wall-paced replay: arrivals land in real time, workers free-run.
    // Reservation order then depends on physical timing — useful for
    // watching the service live, not for the seeded invariant gates.
    const auto t0 = std::chrono::steady_clock::now();
    for (const SoakJob& j : jobs) {
      const double due_ns =
          static_cast<double>(j.arrival) * params.pace_ns_per_cycle;
      while (static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count()) < due_ns)
        std::this_thread::yield();
      submit_one(j);
    }
  } else {
    // Lockstep batched submission: every WFQ reservation — and with it
    // every virtual service window and sojourn — must be a pure function
    // of the job stream, not of real thread timing. Free-running workers
    // race the submitter: which jobs are physically queued at each pop
    // instant decides the WFQ pick, and an A/A rerun drifts per-tenant
    // mean sojourns by up to ~1.4x — more than the isolation gates allow.
    // So arrivals are published in deterministic batches: hold dequeue,
    // push every job arriving within `lead` of the batch head, release,
    // and wait for the queue to empty. Each pop then acts on a fully
    // determined set (the reserve hook runs under the same queue lock),
    // the soak replays bit-identically from its seed, and the muted solo
    // baseline is a true A/B against the adversarial mix. `lead` is the
    // WFQ mixing window: jobs arriving within it contend for order.
    const arch::Cycles lead = 16 * max_service;
    std::size_t i = 0;
    while (i < jobs.size()) {
      const arch::Cycles frontier =
          std::max(svc.executor().virtual_now(), jobs[i].arrival) + lead;
      svc.executor().hold_dequeue();
      while (i < jobs.size() && jobs[i].arrival <= frontier)
        submit_one(jobs[i++]);
      svc.executor().release_dequeue();
      while (svc.executor().queued() > 0) std::this_thread::yield();
    }
  }
  svc.shutdown(runtime::exec::Executor::Drain::kDrain);

  out.exec_stats = svc.executor().stats();
  out.drained_at = svc.executor().virtual_now();
  out.tenants = svc.summarize();
  out.behaviors.reserve(plans.size());
  for (const TenantPlan& p : plans) out.behaviors.push_back(p.behavior);

  out.window_end = horizon + 64 * max_service;
  out.latency.resize(plans.size());
  std::vector<std::uint64_t> completed_per(plans.size(), 0);
  std::vector<double> victim_pool;
  for (const runtime::exec::JobReport& r : svc.executor().reports()) {
    if (!r.completed || r.tenant == 0 || r.tenant > plans.size()) continue;
    const std::size_t i = r.tenant - 1;
    const double soj_ms =
        static_cast<double>(r.finish - r.arrival) / out.clock_hz * 1e3;
    out.latency[i].mean_ms += soj_ms;
    ++completed_per[i];
    if (r.finish <= out.window_end)
      out.latency[i].in_window_bytes += r.quote.bytes;
    if (out.behaviors[i] == TenantBehavior::kWellBehaved)
      victim_pool.push_back(soj_ms);
  }
  for (std::size_t i = 0; i < out.latency.size(); ++i)
    if (completed_per[i] > 0)
      out.latency[i].mean_ms /= static_cast<double>(completed_per[i]);
  if (!victim_pool.empty()) {
    std::sort(victim_pool.begin(), victim_pool.end());
    const auto at = [&](double p) {
      return victim_pool[static_cast<std::size_t>(
          p * static_cast<double>(victim_pool.size() - 1))];
    };
    out.victim_pool_p50_ms = at(0.50);
    out.victim_pool_p99_ms = at(0.99);
  }

  std::vector<double> fair_shares;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    const auto& t = out.tenants[i];
    out.offered_bytes += t.counters.offered_bytes;
    out.goodput_bytes += t.goodput_bytes;
    out.door_shed += t.counters.throttled + t.counters.breaker_rejected;
    out.breaker_opens += t.counters.breaker_opens;
    if (out.behaviors[i] == TenantBehavior::kWellBehaved &&
        t.counters.submitted > 0)
      fair_shares.push_back(static_cast<double>(t.goodput_bytes) / t.weight);
  }
  out.jain_weighted = Service::jain_index(fair_shares);

  const double horizon_s =
      static_cast<double>(std::max<arch::Cycles>(out.drained_at, 1)) /
      out.clock_hz;
  out.goodput_gbs = static_cast<double>(out.goodput_bytes) / horizon_s / 1e9;
  double mean_bytes = 0.0, mean_cycles = 0.0;
  for (const JobShape& s : shapes) {
    mean_bytes += static_cast<double>(s.bytes);
    mean_cycles += static_cast<double>(s.healthy_cycles);
  }
  out.capacity_gbs = mean_bytes / mean_cycles * out.clock_hz / 1e9;
  return out;
}

/// Seeds a ServiceSoakParams for one chaos seed: tenant population, every
/// per-tenant stream, and the controller-fault schedule all derive from
/// `seed`, so a failing seed replays bit-for-bit in the regression tier.
inline ServiceSoakParams service_chaos_params(std::uint64_t seed,
                                              unsigned tenants, unsigned jobs,
                                              unsigned workers) {
  ServiceSoakParams params;
  params.tenants = tenants;
  params.target_jobs = jobs;
  params.seed = seed;
  params.num_workers = workers;
  params.attacker_fraction = 0.05;  // denser chaos than the reference mix
  util::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 3);
  const arch::InterleaveSpec ispec{};
  const arch::Cycles horizon = service_soak_horizon(params);
  params.truth = random_overload_schedule(rng, ispec.num_controllers())
                     .resolved(horizon + horizon / 4);
  return params;
}

/// Checks S1-S4 on a mixed run, with `baseline` the attacker-muted twin.
/// `degraded` (a mid-run controller fault was injected) waives the
/// starvation floor and the p99 ratio — conservation and containment hold
/// regardless.
inline std::vector<std::string> check_service_invariants(
    const ServiceSoakParams& params, const ServiceSoakResult& mixed,
    const ServiceSoakResult& baseline, bool degraded = false) {
  using runtime::service::TenantSummary;
  std::vector<std::string> failures;
  const auto fail = [&](const std::string& what) { failures.push_back(what); };

  if (mixed.tenants.size() != params.tenants ||
      baseline.tenants.size() != params.tenants) {
    fail("S1: tenant registry size mismatch");
    return failures;
  }

  // Global: every forwarded job has exactly one executor report.
  std::uint64_t forwarded = 0;
  for (const TenantSummary& t : mixed.tenants)
    forwarded += t.counters.forwarded;
  if (mixed.exec_stats.submitted != forwarded)
    fail("S1: executor saw " + std::to_string(mixed.exec_stats.submitted) +
         " submissions for " + std::to_string(forwarded) + " forwarded jobs");

  // S4's quota allowance re-derives the plan (deterministic in params).
  const runtime::exec::PricingModel pricing{{}};
  const auto shapes = service_job_shapes(pricing);
  const auto plans = plan_tenants(params, shapes, pricing.clock_hz());
  std::uint64_t max_bytes = 0;
  for (const JobShape& s : shapes) max_bytes = std::max(max_bytes, s.bytes);

  for (std::size_t i = 0; i < mixed.tenants.size(); ++i) {
    const TenantSummary& t = mixed.tenants[i];
    const std::string who =
        "tenant " + std::to_string(t.id) + " (" + t.name + ")";

    // S1 per tenant, both layers.
    if (t.counters.offered_bytes !=
        t.counters.door_shed_bytes + t.counters.forwarded_bytes)
      fail("S1: " + who + " offered " +
           std::to_string(t.counters.offered_bytes) + " B != door-shed " +
           std::to_string(t.counters.door_shed_bytes) + " + forwarded " +
           std::to_string(t.counters.forwarded_bytes));
    if (t.counters.forwarded_bytes != t.goodput_bytes + t.exec_shed_bytes)
      fail("S1: " + who + " forwarded " +
           std::to_string(t.counters.forwarded_bytes) + " B != goodput " +
           std::to_string(t.goodput_bytes) + " + executor-shed " +
           std::to_string(t.exec_shed_bytes));

    // S4 containment: past-the-door traffic is capped by the quota over the
    // submission window plus one bucket depth (the burst allowance) plus
    // one job of refill slop.
    const double quota_per_cycle =
        plans[i].config.quota_bytes_per_s / mixed.clock_hz;
    if (quota_per_cycle > 0.0) {
      const double allowance =
          quota_per_cycle * static_cast<double>(mixed.horizon) +
          plans[i].config.quota_bytes_per_s * plans[i].config.burst_seconds +
          static_cast<double>(max_bytes);
      if (static_cast<double>(t.counters.forwarded_bytes) > allowance)
        fail("S4: " + who + " pushed " +
             std::to_string(t.counters.forwarded_bytes) +
             " B past the door > quota allowance " +
             std::to_string(static_cast<std::uint64_t>(allowance)) + " B");
    }
  }

  for (std::size_t i = 0; i < mixed.tenants.size(); ++i) {
    if (mixed.behaviors[i] != TenantBehavior::kWellBehaved) continue;
    const TenantSummary& t = mixed.tenants[i];
    const TenantSummary& b = baseline.tenants[i];
    const std::string who =
        "tenant " + std::to_string(t.id) + " (" + t.name + ")";

    // The muting construction: a victim's stream is identical in both runs.
    if (t.counters.submitted != b.counters.submitted)
      fail("S3: " + who + " submitted " +
           std::to_string(t.counters.submitted) + " jobs mixed vs " +
           std::to_string(b.counters.submitted) +
           " solo — baseline construction broken");

    if (degraded || t.counters.submitted == 0) continue;

    // S2 starvation-freedom: >= 90% of offered bytes complete *within the
    // offered window* (total goodput is blind to starvation under drain).
    const double ratio = static_cast<double>(mixed.latency[i].in_window_bytes) /
                         static_cast<double>(t.counters.offered_bytes);
    if (ratio < 0.90)
      fail("S2: " + who + " completed only " + std::to_string(ratio * 100.0) +
           "% of its offered bytes in-window under attack");

    // S3 isolation, per tenant. The mean sojourn is stable at any sample
    // count; the per-tenant p99 is a single sparse order statistic, so it
    // is gated only once both runs have enough completions to pin it down.
    const double eps_ms = 0.05;
    if (t.completed >= 100 && b.completed >= 100 &&
        mixed.latency[i].mean_ms >
            baseline.latency[i].mean_ms * 1.25 + eps_ms)
      fail("S3: " + who + " mean sojourn " +
           std::to_string(mixed.latency[i].mean_ms) +
           " ms under attack > 1.25x solo mean " +
           std::to_string(baseline.latency[i].mean_ms) + " ms");
    if (t.completed >= 1000 && b.completed >= 1000 &&
        t.p99_ms > b.p99_ms * 1.25 + eps_ms)
      fail("S3: " + who + " p99 " + std::to_string(t.p99_ms) +
           " ms under attack > 1.25x solo p99 " + std::to_string(b.p99_ms) +
           " ms");
  }

  // S3, population level: the pooled p99 over every well-behaved tenant's
  // completed jobs — the headline isolation number, statistically stable
  // even when single tenants see too few jobs for a per-tenant p99.
  if (!degraded && baseline.victim_pool_p99_ms > 0.0 &&
      mixed.victim_pool_p99_ms >
          baseline.victim_pool_p99_ms * 1.25 + 0.05)
    fail("S3: pooled well-behaved p99 " +
         std::to_string(mixed.victim_pool_p99_ms) +
         " ms under attack > 1.25x solo pooled p99 " +
         std::to_string(baseline.victim_pool_p99_ms) + " ms");
  return failures;
}

}  // namespace mcopt::bench
