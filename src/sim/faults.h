#pragma once
// Fault-injection model for the simulated memory subsystem.
//
// Real multi-controller machines degrade asymmetrically: a DIMM drops to a
// lower speed bin, firmware offlines a failing channel, a core runs hot and
// throttles one strand. The paper's aliasing analysis assumes a healthy,
// symmetric chip; this layer lets every bench and test ask "what happens to
// the layout recipes when the chip is NOT healthy" (cf. the NUMA-asymmetry
// effects Bergstrom measures with STREAM). A FaultSpec attaches to SimConfig;
// the chip model honors it during reservation:
//
//  * offline controller  — the channel serves no traffic; its lines are
//    remapped round-robin onto the surviving controllers (the firmware
//    re-interleave stand-in). The survivors absorb the load.
//  * derated controller  — service rate multiplied by `factor` in (0,1]
//    (a slow DIMM: every transfer takes 1/factor as long).
//  * slow L2 bank        — extra busy cycles per access on one global bank.
//  * straggler strand    — extra cycles added to every access of one
//    software thread (thermal throttling / interrupt noise stand-in).
//
// Multi-socket (NUMA) fault classes mirror the controller classes one level
// up the hierarchy (arch::NodeTopology):
//
//  * offline socket      — the socket's memory domain serves no traffic; its
//    home addresses are remapped round-robin onto surviving sockets (the
//    firmware memory-mirroring failover stand-in). Cores keep running.
//  * derated socket      — the socket's controllers serve at `factor` rate
//    (a whole-DIMM-bank thermal throttle), and remote fills *from* it slow
//    by the same factor.
//  * offline link        — the i<->j interconnect link carries no traffic;
//    remote accesses reroute over surviving links (summed per-hop costs).
//  * derated link        — the i<->j link's per-line transfer slows to
//    `factor` of nominal in both directions.
//
// All faults are deterministic, so degraded runs stay exactly reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "util/expected.h"

namespace mcopt::sim {

/// Parse-time index bounds for FaultSpec/FaultSchedule::parse: a knob value
/// naming a controller/bank/strand/socket the configured topology does not
/// have fails at parse time with a targeted message instead of surfacing
/// later from check() at apply time. A field of 0 leaves that class
/// grammar-checked only (the historical behavior).
struct FaultLimits {
  unsigned num_controllers = 0;
  unsigned num_banks = 0;
  unsigned num_threads = 0;
  unsigned num_sockets = 0;
};

/// Declarative fault set for one simulation. Default: healthy chip.
struct FaultSpec {
  /// Controllers serving no traffic (remapped to survivors).
  std::vector<unsigned> offline_controllers;

  /// Service-rate derating of one controller: transfers take 1/factor longer.
  struct Derate {
    unsigned controller = 0;
    double factor = 1.0;  ///< in (0, 1]; 1.0 = healthy
  };
  std::vector<Derate> derates;

  /// Extra busy cycles per access on one global L2 bank.
  struct SlowBank {
    unsigned bank = 0;
    arch::Cycles extra_busy = 0;
  };
  std::vector<SlowBank> slow_banks;

  /// Extra cycles per access for one software thread.
  struct Straggler {
    unsigned thread = 0;
    arch::Cycles extra_cycles = 0;
  };
  std::vector<Straggler> stragglers;

  /// Silent-data-corruption rate of one controller: each memory read served
  /// by it flips one payload bit with probability `rate` (an FB-DIMM channel
  /// going marginal). The sim moves no real payloads, so the chip *counts*
  /// corrupted reads deterministically (seeded per-read Bernoulli draw) and
  /// reports them in SimResult; the native integrity layer (seg/integrity.h)
  /// is what detects and repairs real flipped bits.
  struct BitFlip {
    unsigned controller = 0;
    double rate = 0.0;  ///< per-read probability in [0, 1]
  };
  std::vector<BitFlip> flips;

  /// Sockets whose memory domain serves no traffic (home addresses remapped
  /// round-robin onto surviving sockets). Cores keep running; only the
  /// memory side dies (the asymmetric case the planner's priced remote
  /// placement exists for).
  std::vector<unsigned> offline_sockets;

  /// Service-rate derating of a whole socket's memory side.
  struct SocketDerate {
    unsigned socket = 0;
    double factor = 1.0;  ///< in (0, 1]; 1.0 = healthy
  };
  std::vector<SocketDerate> socket_derates;

  /// One inter-socket link fault; the pair is undirected (a physical link
  /// carries both directions).
  struct LinkFault {
    unsigned a = 0;
    unsigned b = 0;
    /// Per-line transfer rate factor in (0, 1]; 0 entries never appear —
    /// a fully dead link lives in `offline` instead.
    double factor = 1.0;
    bool offline = false;
  };
  std::vector<LinkFault> link_faults;

  /// True if any fault is configured (the SimResult::degraded flag).
  [[nodiscard]] bool any() const noexcept {
    return !offline_controllers.empty() || !derates.empty() ||
           !slow_banks.empty() || !stragglers.empty() || !flips.empty() ||
           !offline_sockets.empty() || !socket_derates.empty() ||
           !link_faults.empty();
  }

  [[nodiscard]] bool is_offline(unsigned controller) const noexcept;
  /// Derate factor of `controller` (product over duplicate entries; 1.0 when
  /// healthy).
  [[nodiscard]] double derate_of(unsigned controller) const noexcept;
  /// Extra busy cycles of global L2 bank `bank` (sum over entries).
  [[nodiscard]] arch::Cycles bank_extra(unsigned bank) const noexcept;
  /// Per-access straggle cycles of software thread `thread`.
  [[nodiscard]] arch::Cycles straggle_of(unsigned thread) const noexcept;
  /// Per-read bit-flip probability of `controller` (independent sources
  /// combine as 1 - prod(1 - rate); 0.0 when healthy).
  [[nodiscard]] double flip_rate_of(unsigned controller) const noexcept;

  [[nodiscard]] bool is_socket_offline(unsigned socket) const noexcept;
  /// Memory-side derate factor of `socket` (product over entries).
  [[nodiscard]] double socket_derate_of(unsigned socket) const noexcept;
  /// True when the undirected i<->j link is offline.
  [[nodiscard]] bool is_link_offline(unsigned i, unsigned j) const noexcept;
  /// Per-line rate factor of the undirected i<->j link (product over
  /// entries; 1.0 when healthy, irrespective of offline status).
  [[nodiscard]] double link_derate_of(unsigned i, unsigned j) const noexcept;

  /// Sockets whose memory domain still serves traffic, ascending.
  [[nodiscard]] std::vector<unsigned> surviving_sockets(
      unsigned num_sockets) const;

  /// Home-socket remap table (mirrors controller_remap one level up): entry
  /// s is the socket that actually serves home domain s — identity for
  /// healthy sockets, a survivor chosen round-robin for offline ones.
  [[nodiscard]] std::vector<unsigned> socket_remap(unsigned num_sockets) const;

  /// Controllers still serving traffic under `spec`, ascending.
  [[nodiscard]] std::vector<unsigned> surviving_controllers(
      const arch::InterleaveSpec& spec) const;

  /// Remap table: entry c is the controller that actually serves lines the
  /// address map assigns to c (identity for healthy controllers, a survivor
  /// chosen round-robin for offline ones).
  [[nodiscard]] std::vector<unsigned> controller_remap(
      const arch::InterleaveSpec& spec) const;

  /// Semantic validation against a chip's interleave: indices in range,
  /// factors in (0,1], at least one controller must survive, no duplicate
  /// mc<i> entries (off+off, or off+derate on the same controller — a
  /// controller cannot be both dead and merely slow). Reports every
  /// violation at once.
  ///
  /// `num_sockets` bounds the sock/link classes: indices in range, at least
  /// one socket's memory must survive, link endpoints distinct, dead beats
  /// slow per socket/link. The default of 1 makes any socket/link fault
  /// invalid — a single-chip simulation cannot honor them, and silently
  /// ignoring a requested fault would fake resilience.
  [[nodiscard]] util::Status check(const arch::InterleaveSpec& spec,
                                   unsigned num_sockets = 1) const;

  /// Normalizing union of two fault sets (used when timed fault intervals
  /// overlap): offline sets are deduplicated, derates on a controller that
  /// ends up offline are dropped (dead beats slow), remaining derates
  /// concatenate (derate_of multiplies them), bank/straggler extras
  /// concatenate (their accessors sum). The result of merging two
  /// check()-clean specs is check()-clean as long as a controller survives.
  [[nodiscard]] static FaultSpec merged(const FaultSpec& a, const FaultSpec& b);

  /// Human-readable one-liner ("mc0:off mc1:derate=0.5 ...", "healthy").
  /// Doubles print with shortest-round-trip precision, so the output
  /// re-parses to an identical spec.
  [[nodiscard]] std::string describe() const;

  /// Parses the bench `--fault` grammar: comma-separated items of
  ///   mc<i>:off            offline controller i
  ///   mc<i>:derate=<f>     derate controller i to rate factor f
  ///   mc<i>:flip=<r>       flip one bit per read on controller i w.p. r
  ///   bank<i>:slow=<c>     add c busy cycles to global L2 bank i
  ///   strand<t>:lag=<c>    add c cycles to every access of thread t
  ///   sock<i>:off          offline socket i's memory domain
  ///   sock<i>:derate=<f>   derate socket i's memory side to factor f
  ///   link<i>-<j>:off      offline the i<->j inter-socket link
  ///   link<i>-<j>:derate=<f>  derate the i<->j link to factor f
  /// An empty string parses to the healthy spec. The result is grammar-
  /// checked only; call check() against the chip's interleave afterwards.
  /// The FaultLimits overload additionally rejects indices at or beyond the
  /// configured topology at parse time.
  [[nodiscard]] static util::Expected<FaultSpec> parse(const std::string& text);
  [[nodiscard]] static util::Expected<FaultSpec> parse(const std::string& text,
                                                       const FaultLimits& limits);
};

}  // namespace mcopt::sim
