#pragma once
// Cooperative cancellation for executor jobs.
//
// A CancellationSource owns the flag; CancellationTokens are cheap copies
// that kernel bodies poll at segment-loop granularity (between rows of a
// Jacobi sweep, between triad chunks, between LBM steps). Cancellation is
// strictly cooperative: a body observes the token at a generation boundary
// and returns with its state at the last *completed* generation intact —
// this is what makes the "cancelled mid-sweep leaves the field bit-identical
// to its last completed generation" invariant testable (the in-progress
// destination grid is simply abandoned; the source grid was never written).
//
// The flag is a relaxed-read / release-write atomic: a poll is one load on
// the kernel's hot path, and the thread that observes the flag then
// synchronizes with the canceller through the executor's queues, not
// through the flag itself.

#include <atomic>
#include <memory>

namespace mcopt::runtime::exec {

class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the source requested cancellation. Safe to poll from any
  /// thread; a default-constructed token is never cancelled.
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag) noexcept
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; idempotent, callable from any thread.
  void cancel() noexcept { flag_->store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] CancellationToken token() const noexcept {
    return CancellationToken(flag_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace mcopt::runtime::exec
