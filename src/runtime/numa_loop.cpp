#include "runtime/numa_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "kernels/triad.h"
#include "obs/trace.h"
#include "seg/planner.h"
#include "sim/analytic.h"
#include "sim/numa.h"
#include "util/log.h"

namespace mcopt::runtime {

namespace {

/// Bump allocator over the contiguous home domains: hands out array storage
/// inside a chosen socket's domain at a planner-chosen period offset.
class DomainArena {
 public:
  explicit DomainArena(const arch::NodeTopology& node) : node_(node) {
    next_.reserve(node.num_sockets);
    for (unsigned d = 0; d < node.num_sockets; ++d)
      next_.push_back(node.socket_base(d));
  }

  arch::Addr allocate(unsigned domain, std::size_t bytes, std::size_t align,
                      std::size_t offset) {
    const arch::Addr aligned =
        (next_.at(domain) + align - 1) / align * align + offset;
    next_[domain] = aligned + bytes;
    if (next_[domain] > node_.socket_base(domain) + node_.domain_bytes())
      throw std::invalid_argument(
          "run_supervised_node_triad: home domain " + std::to_string(domain) +
          " overflows (shrink n or raise home_shift)");
    return aligned;
  }

 private:
  arch::NodeTopology node_;
  std::vector<arch::Addr> next_;
};

arch::Cycles seconds_to_cycles(double seconds, double clock_ghz) {
  return static_cast<arch::Cycles>(std::ceil(seconds * clock_ghz * 1e9));
}

/// Analytic node bandwidth of a job placement under a fault belief.
double placement_bw(const std::vector<NodeJob>& jobs, unsigned threads,
                    const sim::NodeConfig& nc, const arch::AddressMap& map,
                    const sim::FaultSpec& belief) {
  const unsigned n = nc.node.num_sockets;
  std::vector<std::vector<sim::AnalyticStream>> streams(n);
  std::vector<unsigned> strands(n, 0);
  for (const NodeJob& job : jobs) {
    const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                      {job.bases[1], false},
                                                      {job.bases[2], false},
                                                      {job.bases[3], false}};
    const auto physical = sim::expand_rfo(logical);
    auto& dst = streams[job.compute_socket];
    dst.insert(dst.end(), physical.begin(), physical.end());
    strands[job.compute_socket] += threads;
  }
  return sim::estimate_node_bandwidth(streams, strands, nc.sim.calibration, map,
                                      nc.node, nc.sim.topology.clock_ghz,
                                      belief)
      .bandwidth;
}

/// Failover placement: jobs whose home survives and is local stay put; every
/// other job moves, compute and data together, to the least-loaded healthy
/// socket. `materialize` allocates real storage; probe placements reuse a
/// scratch offset inside the target domain (only home + period offset matter
/// to the analytic gate).
std::vector<NodeJob> plan_failover(const std::vector<NodeJob>& jobs,
                                   const std::vector<unsigned>& healthy,
                                   const arch::AddressMap& map,
                                   const arch::NodeTopology& node,
                                   DomainArena* materialize, std::size_t n) {
  const std::size_t period = map.spec().period_bytes();
  const std::size_t stride = period / map.spec().num_controllers();
  const auto is_healthy = [&](unsigned s) {
    return std::find(healthy.begin(), healthy.end(), s) != healthy.end();
  };
  std::vector<unsigned> load(node.num_sockets, 0);
  std::vector<NodeJob> out = jobs;
  for (const NodeJob& job : out)
    if (is_healthy(job.home_socket) && job.home_socket == job.compute_socket)
      ++load[job.home_socket];
  for (NodeJob& job : out) {
    if (is_healthy(job.home_socket) && job.home_socket == job.compute_socket)
      continue;
    unsigned target = healthy.front();
    for (const unsigned h : healthy)
      if (load[h] < load[target]) target = h;
    const unsigned rotation = load[target];
    ++load[target];
    job.compute_socket = target;
    job.home_socket = target;
    const seg::StreamPlan plan = seg::plan_stream_offsets(4, map);
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t off =
          (plan.offsets[k] + static_cast<std::size_t>(rotation) * stride) %
          period;
      job.bases[k] =
          materialize != nullptr
              ? materialize->allocate(target, n * sizeof(double) + off,
                                      plan.base_align, off)
              : node.socket_base(target) + (arch::Addr{1} << 30) + off;
    }
  }
  return out;
}

bool same_placement(const std::vector<NodeJob>& a,
                    const std::vector<NodeJob>& b) {
  for (std::size_t j = 0; j < a.size(); ++j)
    if (a[j].compute_socket != b[j].compute_socket ||
        a[j].home_socket != b[j].home_socket)
      return false;
  return true;
}

}  // namespace

util::Status NodeLoopConfig::check() const {
  util::Status status;
  status.merge(node.check());
  status.merge(detector.check());
  if (node.node.single_socket())
    status.note("NodeLoopConfig: node loop needs >= 2 sockets");
  if (threads == 0) status.note("NodeLoopConfig: threads must be >= 1");
  if (slices == 0) status.note("NodeLoopConfig: slices must be >= 1");
  if (!(migration_safety >= 0.0) || !std::isfinite(migration_safety))
    status.note("NodeLoopConfig: migration_safety must be finite and >= 0");
  if (node.sim.fault_schedule.has_relative())
    status.note("NodeLoopConfig: fault schedule has unresolved percent bounds");
  // Worst-case failover packs every job onto one surviving chip.
  if (threads * node.node.num_sockets > node.sim.topology.max_threads())
    status.note("NodeLoopConfig: threads*sockets exceeds one chip's strands (" +
                std::to_string(node.sim.topology.max_threads()) +
                "); failover could not pack jobs onto one survivor");
  return status;
}

NodeLoopResult run_supervised_node_triad(std::size_t n,
                                         const NodeLoopConfig& cfg) {
  cfg.check().throw_if_failed();
  const unsigned sockets = cfg.node.node.num_sockets;
  const arch::AddressMap map(cfg.node.sim.interleave);
  const double ghz = cfg.node.sim.topology.clock_ghz;
  NodeSupervisor sup(cfg.detector, cfg.node.node, cfg.seed);
  DomainArena arena(cfg.node.node);

  // One job per socket, arrays local at planner offsets.
  std::vector<NodeJob> jobs(sockets);
  const seg::StreamPlan plan = seg::plan_stream_offsets(4, map);
  for (unsigned s = 0; s < sockets; ++s) {
    jobs[s].compute_socket = s;
    jobs[s].home_socket = s;
    jobs[s].bases.resize(4);
    for (std::size_t k = 0; k < 4; ++k)
      jobs[s].bases[k] = arena.allocate(s, n * sizeof(double) + plan.offsets[k],
                                        plan.base_align, plan.offsets[k]);
  }

  NodeLoopResult out;
  out.socket_timelines.resize(sockets);
  arch::Cycles global = 0;
  NodeSample last_sample;

  for (unsigned slice = 0; slice < cfg.slices; ++slice) {
    const obs::TraceSpan slice_span("nodeloop.slice", "loop", slice, global);
    sim::NodeConfig nc = cfg.node;
    nc.sim.fault_schedule = cfg.node.sim.fault_schedule.shifted(global);
    std::vector<sim::Workload> wls(sockets);
    for (const NodeJob& job : jobs) {
      auto wl = kernels::make_triad_workload(job.bases, n, cfg.threads,
                                             sched::Schedule::static_block(), 1);
      auto& dst = wls[job.compute_socket];
      for (auto& program : wl) dst.push_back(std::move(program));
    }
    sim::Node node(nc);
    sim::NodeResult res = node.run(wls);

    const arch::Cycles slice_begin = global;
    global += res.total_cycles;
    out.total_cycles += res.total_cycles;
    out.bytes += res.mem_read_bytes + res.mem_write_bytes;
    out.remote_bytes += res.remote_read_bytes + res.remote_write_bytes;
    out.slice_log.push_back({slice_begin, global,
                             res.mem_read_bytes + res.mem_write_bytes,
                             res.remote_read_bytes + res.remote_write_bytes});
    for (unsigned s = 0; s < sockets; ++s) {
      for (const obs::McSample& row : res.sockets[s].mc_timeline) {
        obs::McSample shifted = row;
        shifted.begin += slice_begin;
        shifted.end += slice_begin;
        out.socket_timelines[s].push_back(std::move(shifted));
      }
    }

    last_sample = NodeSample{};
    last_sample.begin = slice_begin;
    last_sample.end = global;
    last_sample.socket_utilization = res.socket_utilization;
    last_sample.link_utilization.assign(sockets, {});
    last_sample.link_line_cost.assign(sockets, {});
    for (unsigned s = 0; s < sockets; ++s) {
      last_sample.link_utilization[s].assign(sockets, 0.0);
      last_sample.link_line_cost[s].assign(sockets, 0.0);
      const auto& links = res.sockets[s].links;
      for (unsigned t = 0; t < links.size(); ++t) {
        if (res.total_cycles != 0)
          last_sample.link_utilization[s][t] =
              static_cast<double>(links[t].busy_cycles) /
              static_cast<double>(res.total_cycles);
        if (links[t].line_transfers() != 0)
          last_sample.link_line_cost[s][t] =
              static_cast<double>(links[t].busy_cycles) /
              static_cast<double>(links[t].line_transfers());
      }
    }
    if (!cfg.supervise) continue;

    // Placement channel: candidate failover layout under the current belief
    // vs what is running now.
    const sim::FaultSpec& belief = sup.planned_against();
    const auto believed_healthy = belief.surviving_sockets(sockets);
    const std::vector<NodeJob> believed_cand = plan_failover(
        jobs, believed_healthy, map, cfg.node.node, nullptr, n);
    const double cur_bw = placement_bw(jobs, cfg.threads, cfg.node, map, belief);
    const double cand_bw = same_placement(jobs, believed_cand)
                               ? cur_bw
                               : placement_bw(believed_cand, cfg.threads,
                                              cfg.node, map, belief);
    const double gain = cur_bw > 0.0 ? cand_bw / cur_bw : 1.0;

    const NodeDecision dec = sup.observe(last_sample, gain);
    if (dec.action != Action::kReplan) continue;

    const std::vector<NodeJob> candidate = plan_failover(
        jobs, dec.healthy_sockets, map, cfg.node.node, nullptr, n);
    if (same_placement(jobs, candidate)) {
      // Nothing to move (e.g. a link derate with every job already local):
      // record the new belief without paying a migration.
      sup.commit(global);
      ++out.replans;
      continue;
    }

    const double bw_now =
        placement_bw(jobs, cfg.threads, cfg.node, map, dec.diagnosis);
    const double bw_new =
        placement_bw(candidate, cfg.threads, cfg.node, map, dec.diagnosis);
    const unsigned remaining = cfg.slices - slice - 1;
    bool migrate = false;
    double mig_seconds = 0.0;
    if (remaining > 0 && bw_now > 0.0 && bw_new > bw_now) {
      const double rem_bytes =
          static_cast<double>(remaining) * static_cast<double>(jobs.size()) *
          static_cast<double>(kernels::triad_actual_bytes(n));
      const double saved = rem_bytes / bw_now - rem_bytes / bw_new;
      // Price each moved job: B, C, D read once from wherever the old home
      // is served under the diagnosis (link bandwidth when remote), then
      // first-touch written into the new home at the post-migration rate.
      const double copy_bytes = 3.0 * static_cast<double>(n) * 8.0;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (jobs[j].compute_socket == candidate[j].compute_socket &&
            jobs[j].home_socket == candidate[j].home_socket)
          continue;
        const sim::NumaRoutes routes = sim::resolve_numa_routes(
            cfg.node.node, dec.diagnosis, candidate[j].compute_socket);
        const unsigned serving = routes.home_serving[jobs[j].home_socket];
        double read_bw = bw_new;
        if (serving != candidate[j].compute_socket &&
            routes.line_cycles[serving] > 0)
          read_bw = std::min(
              read_bw, 64.0 / static_cast<double>(routes.line_cycles[serving]) *
                           ghz * 1e9);
        mig_seconds += copy_bytes / read_bw + copy_bytes / bw_new;
      }
      migrate = saved * cfg.migration_safety >= mig_seconds;
    }
    if (!migrate) {
      ++out.declined;
      obs::trace_instant("sock.decline", "numa", global, 0);
      sup.abort(global);
      util::log_info("node_triad: migration declined at=" +
                     std::to_string(global) + " bw_now=" +
                     std::to_string(bw_now) + " bw_new=" +
                     std::to_string(bw_new) + " mig_s=" +
                     std::to_string(mig_seconds));
      continue;
    }

    jobs = plan_failover(jobs, dec.healthy_sockets, map, cfg.node.node, &arena,
                         n);
    const arch::Cycles mig_cycles = seconds_to_cycles(mig_seconds, ghz);
    obs::trace_instant("sock.migrate", "numa", global, mig_cycles);
    global += mig_cycles;
    out.total_cycles += mig_cycles;
    out.migration_cycles += mig_cycles;
    sup.commit(global);
    ++out.replans;
    out.replan_log.push_back({global, dec.healthy_sockets, jobs, mig_cycles});
    util::log_info("node_triad: migrated at=" + std::to_string(global) +
                   " cost=" + std::to_string(mig_cycles) + " cycles");
  }

  out.suppressed = sup.suppressed();
  out.final_diagnosis =
      cfg.supervise && !last_sample.socket_utilization.empty()
          ? sup.diagnose(last_sample, sup.planned_against())
          : sim::FaultSpec{};
  out.final_socket_utilization = last_sample.socket_utilization;
  out.final_jobs = jobs;
  out.seconds = arch::cycles_to_seconds(out.total_cycles, ghz);
  out.bandwidth =
      out.seconds > 0.0 ? static_cast<double>(out.bytes) / out.seconds : 0.0;
  out.remote_fraction =
      out.bytes != 0
          ? static_cast<double>(out.remote_bytes) / static_cast<double>(out.bytes)
          : 0.0;
  return out;
}

}  // namespace mcopt::runtime
