// Tier-1 promotion of one hard overload-chaos seed: the nightly
// `chaos_soak --overload` fuzzes random fault schedules under 2x offered
// load; this test pins a known-hard seed so the executor's overload
// invariants cannot silently decay between nightlies.
//
// Seed 12 draws two OVERLAPPING derate intervals (mc1 ~0.54 then mc0 ~0.53
// while mc1 is still degraded), which makes the supervisor's diagnosis flap
// — the soak observed 6 replans chasing the compound fault. Flapping is the
// hostile case for admission control: every replan re-prices the queued
// jobs, and the breakers must not wedge the pool while the believed state
// churns.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/overload_common.h"

namespace mcopt {
namespace {

constexpr std::uint64_t kHardSeed = 12;
constexpr unsigned kJobs = 240;
constexpr unsigned kWorkers = 4;
constexpr double kOfferedRatio = 2.0;

TEST(OverloadRegression, HardSeedKeepsDegradedInvariants) {
  const bench::OverloadParams params =
      bench::overload_chaos_params(kHardSeed, kJobs, kWorkers, kOfferedRatio);

  // The schedule draw is deterministic: replaying the seed must reproduce
  // the compound-derate storm, not some other scenario. If the generator
  // changes, re-run the soak and promote a new hard seed here.
  ASSERT_EQ(params.truth.intervals.size(), 2u);
  for (const auto& iv : params.truth.intervals) {
    EXPECT_TRUE(iv.fault.offline_controllers.empty());
    ASSERT_EQ(iv.fault.derates.size(), 1u);
  }
  // Two distinct controllers degrade (draw order is not time order).
  const unsigned mc_a = params.truth.intervals[0].fault.derates[0].controller;
  const unsigned mc_b = params.truth.intervals[1].fault.derates[0].controller;
  EXPECT_NE(mc_a, mc_b);
  // Overlap is what makes the seed hard: one derate lands while the other
  // is still active, so the compound fault state keeps shifting.
  EXPECT_LT(std::max(params.truth.intervals[0].begin,
                     params.truth.intervals[1].begin),
            std::min(params.truth.intervals[0].end,
                     params.truth.intervals[1].end));

  const bench::OverloadResult res = bench::run_overload(params);

  // Degraded-mode invariants: conservation, typed sheds, the per-job
  // shed-lag bound, and goodput capped at the completed jobs' analytic
  // rate. Goodput may sag under the storm; nothing may go missing.
  const auto failures =
      bench::check_overload_invariants(params, res, /*healthy=*/false);
  for (const auto& f : failures) ADD_FAILURE() << f;

  // The storm must actually be noticed and survived: the supervisor
  // replans at least once per fault transition, work keeps completing
  // under 2x overload, and the drain loses nothing (reports == submitted
  // is part of the invariant check above).
  EXPECT_GE(res.stats.replans, 2u);
  EXPECT_GT(res.stats.completed, 0u);
  EXPECT_GT(res.goodput_gbs, 0.0);
}

}  // namespace
}  // namespace mcopt
