#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcopt::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0 + i;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101), std::invalid_argument);
}

TEST(Means, ArithmeticHarmonicGeometric) {
  const std::vector<double> xs = {1.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / 1.5, 1e-12);
  EXPECT_NEAR(geometric_mean(xs), std::cbrt(16.0), 1e-12);
}

TEST(Means, RejectNonPositive) {
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW((void)harmonic_mean(bad), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean(bad), std::invalid_argument);
  EXPECT_THROW((void)harmonic_mean({}), std::invalid_argument);
}

TEST(Summarize, FiveNumbers) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
}

}  // namespace
}  // namespace mcopt::util
