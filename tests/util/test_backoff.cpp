#include <gtest/gtest.h>

#include "util/backoff.h"

namespace mcopt::util {
namespace {

TEST(Backoff, EscalatesGeometricallyWithinJitterBounds) {
  Backoff b({.initial = 100, .multiplier = 2.0, .cap = 100000, .jitter = 0.1},
            42);
  double expected = 100.0;
  for (int i = 0; i < 8; ++i) {
    const auto delay = static_cast<double>(b.next());
    EXPECT_GE(delay, expected * 0.9 - 1.0);
    EXPECT_LE(delay, expected * 1.1 + 1.0);
    expected *= 2.0;
  }
  EXPECT_EQ(b.retries(), 8u);
}

TEST(Backoff, CapsAtConfiguredMaximum) {
  Backoff b({.initial = 10, .multiplier = 4.0, .cap = 100, .jitter = 0.0}, 1);
  EXPECT_EQ(b.next(), 10u);
  EXPECT_EQ(b.next(), 40u);
  EXPECT_EQ(b.next(), 100u);  // 160 capped
  EXPECT_EQ(b.next(), 100u);  // stays capped
}

TEST(Backoff, ResetReturnsToInitial) {
  Backoff b({.initial = 10, .multiplier = 2.0, .cap = 1000, .jitter = 0.0}, 1);
  b.next();
  b.next();
  EXPECT_EQ(b.retries(), 2u);
  b.reset();
  EXPECT_EQ(b.retries(), 0u);
  EXPECT_EQ(b.next(), 10u);
}

TEST(Backoff, EqualSeedsReplayExactly) {
  const BackoffConfig cfg{.initial = 1000, .multiplier = 2.0, .cap = 64000,
                          .jitter = 0.25};
  Backoff a(cfg, 7);
  Backoff b(cfg, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Backoff, NeverReturnsZero) {
  Backoff b({.initial = 1, .multiplier = 1.0, .cap = 1, .jitter = 0.9}, 3);
  for (int i = 0; i < 50; ++i) EXPECT_GE(b.next(), 1u);
}

TEST(Backoff, EveryDelayStaysWithinTheJitterEnvelope) {
  // Across many attempts and seeds, no delay ever escapes the global
  // envelope [initial*(1-j), cap*(1+j)] — the cap bounds the pre-jitter
  // delay, so the jittered value can exceed `cap` by at most the jitter
  // fraction and never falls below the jittered initial.
  const BackoffConfig cfg{.initial = 50, .multiplier = 3.0, .cap = 5000,
                          .jitter = 0.2};
  const double lo = static_cast<double>(cfg.initial) * (1.0 - cfg.jitter);
  const double hi = static_cast<double>(cfg.cap) * (1.0 + cfg.jitter);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Backoff b(cfg, seed);
    for (int i = 0; i < 200; ++i) {
      const auto delay = static_cast<double>(b.next());
      EXPECT_GE(delay, lo - 1.0) << "seed " << seed << " attempt " << i;
      EXPECT_LE(delay, hi + 1.0) << "seed " << seed << " attempt " << i;
    }
  }
}

TEST(Backoff, DifferentSeedsDiverge) {
  // Reproducibility cuts both ways: equal seeds replay (covered above),
  // and distinct seeds must actually decorrelate the jitter, or
  // co-scheduled supervisors would still synchronize.
  const BackoffConfig cfg{.initial = 100000, .multiplier = 2.0,
                          .cap = 100000000, .jitter = 0.25};
  Backoff a(cfg, 1);
  Backoff b(cfg, 2);
  int differing = 0;
  for (int i = 0; i < 20; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 10);
}

TEST(Backoff, ResetRestartsEscalationInsideTheInitialEnvelope) {
  // reset() rewinds the escalation, not the jitter stream (replaying the
  // RNG would re-synchronize supervisors that reset together). So after a
  // reset the next delay must sit in the *initial* jitter envelope again,
  // even when the pre-reset delay had escalated to the cap.
  const BackoffConfig cfg{.initial = 1000, .multiplier = 4.0, .cap = 64000,
                          .jitter = 0.1};
  Backoff b(cfg, 9);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) b.next();  // escalate well past the cap
    EXPECT_EQ(b.retries(), 10u);
    b.reset();
    EXPECT_EQ(b.retries(), 0u);
    const auto first = static_cast<double>(b.next());
    EXPECT_GE(first, static_cast<double>(cfg.initial) * 0.9 - 1.0);
    EXPECT_LE(first, static_cast<double>(cfg.initial) * 1.1 + 1.0);
    b.reset();
  }
}

TEST(Backoff, ReadyInBeforeFirstArmIsAlwaysZero) {
  const Backoff b({.initial = 100, .multiplier = 2.0, .cap = 800});
  EXPECT_EQ(b.ready_at(), 0u);
  EXPECT_EQ(b.ready_in(0), 0u);
  EXPECT_EQ(b.ready_in(123456), 0u);
}

TEST(Backoff, ArmRecordsDeadlineAndReadyInCountsDown) {
  Backoff b({.initial = 1000, .multiplier = 2.0, .cap = 64000, .jitter = 0.0},
            7);
  const std::uint64_t delay = b.arm(5000);
  EXPECT_EQ(delay, 1000u);  // jitter 0: the exact initial delay
  EXPECT_EQ(b.ready_at(), 6000u);
  EXPECT_EQ(b.ready_in(5000), 1000u);
  EXPECT_EQ(b.ready_in(5999), 1u);
  EXPECT_EQ(b.ready_in(6000), 0u);   // exactly at the deadline: allowed
  EXPECT_EQ(b.ready_in(90000), 0u);  // long past it
}

TEST(Backoff, ArmEscalatesLikeNext) {
  // arm() must consume the same delay sequence as next(): two equally
  // seeded instances, one driven by next() and one by arm(), stay in
  // lock-step. This is what keeps the supervisor's replay determinism
  // intact after its migration from hand-rolled deadline tracking.
  const BackoffConfig cfg{.initial = 500, .multiplier = 3.0, .cap = 40000,
                          .jitter = 0.2};
  Backoff by_next(cfg, 11);
  Backoff by_arm(cfg, 11);
  std::uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t expect = by_next.next();
    const std::uint64_t got = by_arm.arm(now);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(by_arm.ready_at(), now + expect);
    now += expect + 17;
  }
  EXPECT_EQ(by_arm.retries(), by_next.retries());
}

TEST(Backoff, ResetKeepsTheArmedDeadlineInForce) {
  // A quiet-stretch reset forgives the escalation, not the hold currently
  // being served: ready_at()/ready_in() still report the armed deadline.
  Backoff b({.initial = 1000, .multiplier = 2.0, .cap = 64000, .jitter = 0.0});
  b.arm(0);
  b.arm(0);  // escalated: deadline at 2000
  EXPECT_EQ(b.ready_at(), 2000u);
  b.reset();
  EXPECT_EQ(b.retries(), 0u);
  EXPECT_EQ(b.ready_at(), 2000u);
  EXPECT_EQ(b.ready_in(500), 1500u);
  // ...but the next arm() starts from the initial delay again.
  EXPECT_EQ(b.arm(2000), 1000u);
}

TEST(Backoff, ReadyInSortsBrokenResourcesWithoutPolling) {
  // The executor's use case: several circuit-broken controllers, pick the
  // one that re-opens first without calling next() (which would escalate).
  const BackoffConfig cfg{.initial = 100, .multiplier = 2.0, .cap = 6400,
                          .jitter = 0.0};
  Backoff b0(cfg), b1(cfg), b2(cfg);
  b0.arm(0);          // ready at 100
  b1.arm(0);
  b1.arm(100);        // escalated: ready at 300
  b2.arm(0);
  b2.arm(100);
  b2.arm(300);        // ready at 700
  const std::uint64_t now = 50;
  EXPECT_LT(b0.ready_in(now), b1.ready_in(now));
  EXPECT_LT(b1.ready_in(now), b2.ready_in(now));
  // Querying ready_in never escalates the delay.
  EXPECT_EQ(b0.retries(), 1u);
  EXPECT_EQ(b2.retries(), 3u);
}

TEST(CircuitBreaker, ClosedUntilFailureStreakReachesThreshold) {
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    /*trip_threshold=*/3);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.record_failure(0);
  cb.record_failure(1);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.allow(2));
  cb.record_failure(2);  // third consecutive: trips
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.allow(2));
}

TEST(CircuitBreaker, SuccessForgivesAClosedFailureStreak) {
  // Failures must be *consecutive* to trip: a success in between rewinds
  // the streak, so sporadic throttles never open the gate.
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    3);
  cb.record_failure(0);
  cb.record_failure(1);
  cb.record_success();
  EXPECT_EQ(cb.consecutive_failures(), 0u);
  cb.record_failure(2);
  cb.record_failure(3);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, OpenHoldsThenAdmitsExactlyOneHalfOpenProbe) {
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    1);
  cb.record_failure(1000);  // threshold 1: opens, hold ends at 1100
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.allow(1050));
  EXPECT_EQ(cb.ready_in(1050), 50u);
  // First allow() at/past the deadline IS the probe...
  EXPECT_TRUE(cb.allow(1100));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  // ...and the gate stays shut while the probe is outstanding.
  EXPECT_FALSE(cb.allow(1100));
  EXPECT_FALSE(cb.allow(99999));
  EXPECT_EQ(cb.ready_in(1100), 0u);  // half-open is not time-held
}

TEST(CircuitBreaker, ProbeSuccessClosesAndForgivesTheEscalation) {
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    1);
  cb.record_failure(0);
  ASSERT_TRUE(cb.allow(100));  // probe
  cb.record_success();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.allow(100));
  // Forgiven escalation: the next trip serves the initial hold again.
  cb.record_failure(200);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.ready_in(200), 100u);
}

TEST(CircuitBreaker, ProbeFailureReopensWithGeometricallyLongerHold) {
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    1);
  std::uint64_t now = 0;
  cb.record_failure(now);  // open #1: hold 100
  std::uint64_t expected_hold = 100;
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(cb.ready_in(now), expected_hold);
    now += expected_hold;
    ASSERT_TRUE(cb.allow(now));  // probe
    cb.record_failure(now);      // probe fails: reopen, escalated
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
    expected_hold = std::min<std::uint64_t>(2 * expected_hold, 800);
  }
  EXPECT_EQ(cb.reopens(), 5u);  // the initial open + four failed probes
}

TEST(CircuitBreaker, FailuresWhileOpenDoNotEscalateTheHold) {
  // While open nothing flows, so reported failures carry no new
  // information and must not push the reopen deadline further out.
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    1);
  cb.record_failure(0);
  const std::uint64_t hold = cb.ready_in(0);
  cb.record_failure(10);
  cb.record_failure(20);
  EXPECT_EQ(cb.ready_in(0), hold);
  EXPECT_EQ(cb.reopens(), 1u);
}

TEST(CircuitBreaker, UnforgivingSuccessClosesButKeepsTheEscalation) {
  // Staged re-admission (the socket-recovery prober): a confirmed probe
  // closes the breaker with record_success(forgive = false) so traffic can
  // ramp, but a relapse before the ramp completes must reopen with the NEXT
  // geometric hold — only a completed ramp (a plain record_success()) resets
  // the schedule. This is what makes a flapping socket pay ever-longer
  // quarantines instead of thrashing the replan loop.
  CircuitBreaker cb({.initial = 100, .multiplier = 2.0, .cap = 800,
                     .jitter = 0.0},
                    1);
  cb.record_failure(0);        // open #1: hold 100
  ASSERT_TRUE(cb.allow(100));  // probe
  cb.record_failure(100);      // fails: reopen, hold 200
  ASSERT_TRUE(cb.allow(300));  // probe
  cb.record_success(/*forgive=*/false);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.allow(300));
  // Relapse during the ramp: the hold continues the geometric schedule
  // (400), not the initial 100.
  cb.record_failure(1000);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.ready_in(1000), 400u);
  // A completed ramp forgives: the next trip serves the initial hold again.
  ASSERT_TRUE(cb.allow(1400));
  cb.record_success();
  cb.record_failure(2000);
  EXPECT_EQ(cb.ready_in(2000), 100u);
}

TEST(CircuitBreaker, ReadyInIsMonotoneNonIncreasingWhileOpen) {
  // The node loop sorts quarantined sockets by ready_in() without polling;
  // that only works if the countdown never moves backward as time advances.
  CircuitBreaker cb({.initial = 500, .multiplier = 2.0, .cap = 4000,
                     .jitter = 0.0},
                    1);
  cb.record_failure(0);
  std::uint64_t prev = cb.ready_in(0);
  for (std::uint64_t now = 0; now <= 600; now += 50) {
    const std::uint64_t cur = cb.ready_in(now);
    EXPECT_LE(cur, prev) << "ready_in moved backward at now=" << now;
    prev = cur;
  }
  EXPECT_EQ(cb.ready_in(500), 0u);  // expired: the next allow() is the probe
}

TEST(CircuitBreaker, RejectsZeroTripThreshold) {
  EXPECT_THROW(CircuitBreaker({.initial = 1}, 0), std::invalid_argument);
}

TEST(Backoff, RejectsDegenerateConfigs) {
  EXPECT_THROW(Backoff({.initial = 0}), std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 1, .multiplier = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 100, .multiplier = 2.0, .cap = 10}),
               std::invalid_argument);
  EXPECT_THROW(Backoff({.initial = 1, .multiplier = 2.0, .cap = 10,
                        .jitter = 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::util
