// Example: an interactive "layout doctor" — give it the byte offsets of the
// arrays your kernel streams through, and it reports which memory
// controllers they hit, the lock-step balance factor, the analytic
// bandwidth estimate, and what the planner would recommend instead.
//
// Usage: layout_explorer [--offsets 0,8192,16384] [--writes 1]
//                        [--threads 64] [--base-align 8192]
//
// --offsets: comma-separated byte offsets of each stream's base address
//            relative to a --base-align boundary.
// --writes:  how many of the trailing streams are store streams.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "seg/planner.h"
#include "sim/analytic.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Memory-controller layout doctor");
  cli.option_str("offsets", "0,0,0,0", "comma-separated stream base offsets (bytes)")
      .option_int("writes", 1, "number of trailing streams that are stores")
      .option_int("threads", 64, "thread count for the bandwidth estimate")
      .option_int("base-align", 8192, "alignment the offsets are relative to");
  if (!cli.parse(argc, argv)) return 0;

  std::vector<std::size_t> offsets;
  {
    std::stringstream ss(cli.get_str("offsets"));
    for (std::string item; std::getline(ss, item, ',');)
      offsets.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  if (offsets.empty()) {
    std::fprintf(stderr, "no offsets given\n");
    return 1;
  }
  const auto writes = static_cast<std::size_t>(cli.get_int("writes"));
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto base_align = static_cast<std::size_t>(cli.get_int("base-align"));

  const arch::AddressMap map;
  std::vector<arch::Addr> bases;
  std::vector<sim::AnalyticStream> streams;
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    // Place each array in its own 16 MiB region (a multiple of any sane
    // base alignment), displaced by its offset.
    const arch::Addr region = (arch::Addr{1} << 32) + k * (arch::Addr{16} << 20);
    const arch::Addr base = region / base_align * base_align + offsets[k];
    bases.push_back(base);
    streams.push_back({base, k >= offsets.size() - writes});
  }

  util::Table table({"stream", "offset", "controller", "L2 bank", "role"});
  for (std::size_t k = 0; k < bases.size(); ++k) {
    table.add_row({std::to_string(k), std::to_string(offsets[k]),
                   std::to_string(map.controller_of(bases[k])),
                   std::to_string(map.global_bank_of(bases[k])),
                   streams[k].write ? "store" : "load"});
  }
  table.print(std::cout);

  const seg::AliasReport report = seg::diagnose_streams(bases, map);
  std::printf("\ndiagnosis: %s\n", report.summary.c_str());

  const arch::Calibration cal;
  const auto est = sim::estimate_bandwidth(sim::expand_rfo(streams), threads, cal,
                                           map, 1.2);
  std::printf("analytic estimate at %u threads: %.2f GB/s "
              "(service limit %.2f, latency limit %.2f)\n",
              threads, est.bandwidth / 1e9, est.service_bandwidth / 1e9,
              est.latency_bandwidth / 1e9);

  const seg::StreamPlan plan = seg::plan_stream_offsets(offsets.size(), map);
  std::printf("\nplanner recommendation (offsets from a %zu-byte boundary):",
              plan.base_align);
  for (std::size_t k = 0; k < offsets.size(); ++k)
    std::printf(" %zu", plan.offsets[k]);
  std::vector<arch::Addr> planned;
  for (std::size_t k = 0; k < offsets.size(); ++k)
    planned.push_back((arch::Addr{1} << 32) + k * (arch::Addr{16} << 20) +
                      plan.offsets[k]);
  std::printf("\nplanned balance: %.3f (yours: %.3f)\n",
              seg::diagnose_streams(planned, map).balance, report.balance);
  return 0;
}
