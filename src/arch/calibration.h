#pragma once
// Timing calibration of the simulator, in core clock cycles at 1.2 GHz.
//
// Provenance of the defaults:
//  * Cache/memory latencies follow the OpenSPARC T2 microarchitecture
//    specification (L1 load-use ~3 cycles, L2 hit ~26 cycles, memory
//    ~130-185 ns) within the tolerance that matters for this study.
//  * Memory-controller service rates start from the nominal FB-DIMM numbers
//    in Sect. 1 of the paper (42 GB/s read, 21 GB/s write aggregate over four
//    controllers => ~7.3 / ~14.6 cycles per 64 B line) and add per-request
//    command overhead plus a read/write turnaround penalty. These two knobs
//    are calibrated so the *measured envelope* of the paper emerges: only
//    about one third of nominal bandwidth is attainable, best-case vector
//    triad traffic ~16 GB/s, STREAM copy ~18 GB/s with write-allocate (RFO)
//    traffic counted (Sect. 2.1-2.2).
//  * The single-outstanding-miss restriction per thread is a hard
//    microarchitectural fact (Sect. 1) and lives in the chip model, not here.
//
// Everything is a plain struct so ablation benches can vary one knob at a
// time (see bench/ablation_simulator).

#include <cstdint>

namespace mcopt::arch {

/// Cycle counts use the core clock (1.2 GHz => 1 cycle = 0.833 ns).
using Cycles = std::uint64_t;

struct Calibration {
  // --- core pipeline ----------------------------------------------------
  /// L1D hit load-use latency.
  Cycles l1_hit_latency = 3;
  /// Issue cost of any instruction through the thread-group integer pipe.
  Cycles issue_cost = 1;

  // --- L2 ----------------------------------------------------------------
  /// L2 hit latency (bank access, crossbar both ways included).
  Cycles l2_hit_latency = 26;
  /// A bank accepts a new request at most every l2_bank_busy cycles
  /// (arbitration + tag + data for one 16 B beat). Congruent streams that
  /// collapse onto one bank via address bit 6 serialize at this rate.
  Cycles l2_bank_busy = 4;

  // --- memory controllers -------------------------------------------------
  /// DRAM access latency (first word back), excluding queueing.
  Cycles mem_latency = 155;  // ~130 ns
  /// Pure data-transfer time of one 64 B line read (10.5 GB/s per MC).
  Cycles mc_read_service = 8;
  /// Pure data-transfer time of one 64 B line write (5.25 GB/s per MC).
  Cycles mc_write_service = 15;
  /// Fixed FB-DIMM command/protocol overhead added to every line transfer.
  Cycles mc_request_overhead = 4;
  /// Extra cycles when a controller switches between read and write service
  /// (the paper's conjectured "overhead for bidirectional transfers").
  Cycles mc_turnaround = 16;

  // --- DRAM geometry behind each controller ---------------------------------
  /// Independent DRAM banks per controller (channels x ranks x banks folded
  /// into one effective pool). Power of two.
  unsigned dram_banks = 64;
  /// Bytes of controller-local address space covered by one open row
  /// (8 KiB row => 64 KiB of global span at 4-way 512 B interleaving).
  std::size_t dram_row_bytes = 8192;
  /// Activate+precharge cost paid on the bank when a request hits a bank
  /// whose open row differs ("row conflict"). Overlaps with other banks'
  /// data transfers, but not with the same bank.
  Cycles dram_row_miss_extra = 20;

  // --- stores --------------------------------------------------------------
  /// Per-thread coalescing store buffer depth (line-granular entries).
  unsigned store_buffer_entries = 8;

  // --- floating point -------------------------------------------------------
  /// One FPU per core, one MUL or ADD per cycle.
  Cycles fp_op_cost = 1;
};

/// Default calibration for the 1.2 GHz T5120 of the paper.
[[nodiscard]] Calibration t2_calibration() noexcept;

/// Convert a cycle count at `clock_ghz` into seconds.
[[nodiscard]] double cycles_to_seconds(Cycles c, double clock_ghz) noexcept;

/// Bandwidth in bytes/second for `bytes` moved in `c` cycles.
[[nodiscard]] double bandwidth_bytes_per_s(std::uint64_t bytes, Cycles c,
                                           double clock_ghz) noexcept;

}  // namespace mcopt::arch
