#include "runtime/executor/mpmc_queue.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace mcopt::runtime::exec {
namespace {

struct Item {
  int id = 0;
  std::uint64_t tag = 0;
};

constexpr auto kNoReserve = [](Item&) {};

TEST(MpmcQueue, PopsHighestLaneFirstThenFifoWithinLane) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kLow, {1}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {2}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {3}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {4}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {5}));
  q.close();
  std::vector<int> order;
  while (auto item = q.pop(kNoReserve)) order.push_back(item->id);
  EXPECT_EQ(order, (std::vector<int>{3, 4, 2, 5, 1}));
}

TEST(MpmcQueue, FullLaneIsTypedBackpressureNotBlocking) {
  LaneQueue<Item> q({1, 2, 1});
  EXPECT_TRUE(q.try_push(Priority::kNormal, {1}));
  EXPECT_TRUE(q.try_push(Priority::kNormal, {2}));
  EXPECT_FALSE(q.try_push(Priority::kNormal, {3}));  // lane full
  // Other lanes are bounded independently.
  EXPECT_TRUE(q.try_push(Priority::kHigh, {4}));
  EXPECT_FALSE(q.try_push(Priority::kHigh, {5}));
  EXPECT_EQ(q.lane_size(Priority::kNormal), 2u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(MpmcQueue, RejectsZeroCapacityLanes) {
  EXPECT_THROW(LaneQueue<Item>({0, 1, 1}), std::invalid_argument);
}

TEST(MpmcQueue, CloseDrainsRemainingItemsThenReturnsNullopt) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {2}));
  q.close();
  EXPECT_FALSE(q.try_push(Priority::kNormal, {3}));  // closed: no new work
  EXPECT_TRUE(q.pop(kNoReserve).has_value());
  EXPECT_TRUE(q.pop(kNoReserve).has_value());
  EXPECT_FALSE(q.pop(kNoReserve).has_value());  // drained
}

TEST(MpmcQueue, ShedAllRemovesEverythingHighestLaneFirst) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kLow, {1}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {2}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {3}));
  const auto shed = q.shed_all();
  ASSERT_EQ(shed.size(), 3u);
  EXPECT_EQ(shed[0].id, 2);
  EXPECT_EQ(shed[1].id, 3);
  EXPECT_EQ(shed[2].id, 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, ForEachMutatesQueuedItemsInPlace) {
  // The executor's repricing path: visit every queued item under the lock.
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1, 10}));
  ASSERT_TRUE(q.try_push(Priority::kLow, {2, 20}));
  q.for_each([](Item& item) { item.tag *= 7; });
  q.close();
  std::vector<std::uint64_t> tags;
  while (auto item = q.pop(kNoReserve)) tags.push_back(item->tag);
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{70, 140}));
}

TEST(MpmcQueue, ReserveHookSerializesInExactPopOrder) {
  // The hook runs inside the dequeue critical section, so appending to a
  // plain vector from four racing consumers is safe and must observe the
  // exact FIFO order — this is the property the executor's virtual-time
  // reservation depends on (and what TSan checks here).
  constexpr int kItems = 200;
  LaneQueue<Item> q({8, static_cast<std::size_t>(kItems), 8});
  std::vector<int> reserved_order;  // guarded by the queue lock only
  std::vector<std::thread> consumers;
  std::atomic<int> popped{0};
  for (int t = 0; t < 4; ++t)
    consumers.emplace_back([&] {
      while (q.pop([&reserved_order](Item& item) {
        reserved_order.push_back(item.id);
      }))
        popped.fetch_add(1, std::memory_order_relaxed);
    });
  for (int i = 0; i < kItems; ++i)
    while (!q.try_push(Priority::kNormal, {i})) std::this_thread::yield();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  std::vector<int> expected(kItems);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(reserved_order, expected);
}

TEST(MpmcQueue, ConcurrentProducersAndConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  LaneQueue<Item> q({8, 8, 8});  // small bounds: backpressure exercised
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> consumers;
  for (int t = 0; t < 3; ++t)
    consumers.emplace_back([&] {
      while (auto item = q.pop([](Item&) {})) {
        popped_sum.fetch_add(item->tag, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const Item item{t * kPerProducer + i,
                        static_cast<std::uint64_t>(t * kPerProducer + i)};
        const auto lane = static_cast<Priority>(i % 3);
        while (!q.try_push(lane, item)) std::this_thread::yield();
        pushed_sum.fetch_add(item.tag, std::memory_order_relaxed);
      }
    });

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

TEST(MpmcQueueWfq, BackloggedFlowsShareDequeueServiceByWeight) {
  // Three flows, weights 1:2:4, equal item cost, all backlogged from the
  // start: at every prefix of the pop order the popped counts must track
  // the weights (within one item per flow — SFQ's per-step granularity).
  LaneQueue<Item> q({8, 256, 8}, QueuePolicy::kWeightedFair);
  constexpr int kPerFlow = 40;
  const double weight[3] = {1.0, 2.0, 4.0};
  for (int i = 0; i < kPerFlow; ++i)
    for (std::uint64_t f = 0; f < 3; ++f)
      ASSERT_TRUE(q.try_push(Priority::kNormal, f + 1, weight[f], 700,
                             {static_cast<int>(f)}));
  q.close();
  int popped[3] = {0, 0, 0};
  int total = 0;
  while (auto item = q.pop(kNoReserve)) {
    ++popped[item->id];
    ++total;
    // While every flow is still backlogged, flow f's share of the pops
    // stays within one item of weight-proportional.
    if (popped[0] < kPerFlow && popped[1] < kPerFlow && popped[2] < kPerFlow)
      for (int f = 0; f < 3; ++f)
        EXPECT_NEAR(static_cast<double>(popped[f]),
                    static_cast<double>(total) * weight[f] / 7.0, 1.5)
            << "after " << total << " pops";
  }
  EXPECT_EQ(total, 3 * kPerFlow);
}

TEST(MpmcQueueWfq, StarvationFreedomHoldsForSeededRandomCostsAndWeights) {
  // Property test (start-time fair queuing): for any two flows that are
  // both still backlogged, the difference in *normalized* service (ticks =
  // cost/weight) is bounded by one maximum item of each — no flow can fall
  // further behind its weight-proportional share than the lumpiness of
  // single jobs forces, i.e. nobody starves.
  util::Xoshiro256 rng(2024);
  constexpr std::uint64_t kFlows = 6;
  constexpr int kPerFlow = 150;
  const double weights[kFlows] = {0.5, 1.0, 1.0, 2.0, 4.0, 8.0};
  LaneQueue<Item> q({8, kFlows * kPerFlow, 8}, QueuePolicy::kWeightedFair);

  std::map<std::uint64_t, double> max_norm_cost;  // per flow, in ticks
  std::vector<int> remaining(kFlows, kPerFlow);
  for (int i = 0; i < kPerFlow; ++i)
    for (std::uint64_t f = 0; f < kFlows; ++f) {
      const auto cost = 1000 + rng.below(100000);
      max_norm_cost[f] = std::max(
          max_norm_cost[f], static_cast<double>(cost) * 256.0 / weights[f]);
      ASSERT_TRUE(q.try_push(Priority::kNormal, f + 1, weights[f], cost,
                             {static_cast<int>(f), cost}));
    }
  q.close();

  std::vector<double> served_ticks(kFlows, 0.0);
  while (auto item = q.pop(kNoReserve)) {
    const auto f = static_cast<std::uint64_t>(item->id);
    served_ticks[f] += static_cast<double>(item->tag) * 256.0 / weights[f];
    --remaining[f];
    for (std::uint64_t a = 0; a < kFlows; ++a)
      for (std::uint64_t b = a + 1; b < kFlows; ++b) {
        if (remaining[a] == 0 || remaining[b] == 0) continue;
        EXPECT_LE(std::abs(served_ticks[a] - served_ticks[b]),
                  max_norm_cost[a] + max_norm_cost[b])
            << "flows " << a << " vs " << b;
      }
  }
}

TEST(MpmcQueueWfq, TiesOnVirtualStartBreakByLaneThenSequence) {
  // Three flows' first items all stamp vstart 0 (fresh flows at vtime 0):
  // the high lane wins regardless of push order, then lower sequence.
  LaneQueue<Item> q({4, 4, 4}, QueuePolicy::kWeightedFair);
  ASSERT_TRUE(q.try_push(Priority::kLow, 1, 1.0, 100, {1}));     // seq 0
  ASSERT_TRUE(q.try_push(Priority::kHigh, 2, 1.0, 100, {2}));    // seq 1
  ASSERT_TRUE(q.try_push(Priority::kNormal, 3, 1.0, 100, {3}));  // seq 2
  ASSERT_TRUE(q.try_push(Priority::kNormal, 4, 1.0, 100, {4}));  // seq 3
  q.close();
  std::vector<int> order;
  while (auto item = q.pop(kNoReserve)) order.push_back(item->id);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 1}));
}

TEST(MpmcQueueWfq, IdenticalPushSequencesReplayTheIdenticalPopOrder) {
  // Bit-stable replay is what seeded service soaks stand on: same pushes,
  // same pops, no dependence on map iteration order or anything resident.
  const auto run = [] {
    util::Xoshiro256 rng(77);
    LaneQueue<Item> q({512, 512, 512}, QueuePolicy::kWeightedFair);
    for (int i = 0; i < 400; ++i) {
      const auto flow = rng.below(12);
      const auto lane = static_cast<Priority>(rng.below(3));
      const double weight = static_cast<double>(1 + rng.below(8));
      EXPECT_TRUE(
          q.try_push(lane, flow, weight, 1 + rng.below(5000), {i}));
    }
    q.close();
    std::vector<int> order;
    while (auto item = q.pop(kNoReserve)) order.push_back(item->id);
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(MpmcQueue, HoldGatesDequeueUntilRelease) {
  // The deterministic-soak hook: while held, pushes land but pops block,
  // so a submitter can publish a whole batch atomically with respect to
  // pop order.
  LaneQueue<Item> q({4, 4, 4});
  q.hold();
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1}));  // pushes unaffected
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto item = q.pop(kNoReserve);
    ASSERT_TRUE(item.has_value());
    popped.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load(std::memory_order_acquire));
  q.release();
  consumer.join();
  EXPECT_TRUE(popped.load(std::memory_order_acquire));
}

TEST(MpmcQueue, CloseOverridesAHoldSoDrainingNeverWedges) {
  LaneQueue<Item> q({4, 4, 4});
  q.hold();
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1}));
  q.close();
  EXPECT_TRUE(q.pop(kNoReserve).has_value());  // drains despite the hold
  EXPECT_FALSE(q.pop(kNoReserve).has_value());
}

}  // namespace
}  // namespace mcopt::runtime::exec
