#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/chip.h"
#include "trace/stream_program.h"

namespace mcopt::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(McTimelineCsv, WritesLabelledRows) {
  McTimelineSeries s;
  s.label = "offset=64";
  s.samples.push_back({0, 100, {0.5, 0.25}});
  s.samples.push_back({100, 150, {1.0, 0.0}});
  const std::string path = testing::TempDir() + "timeline_golden.csv";
  ASSERT_TRUE(write_mc_timeline_csv(path, {s}).ok());
  EXPECT_EQ(slurp(path),
            "# mcopt-csv v2, columns: label,sample,begin_cycle,end_cycle,"
            "mc0,mc1\n"
            "label,sample,begin_cycle,end_cycle,mc0,mc1\n"
            "offset=64,0,0,100,0.500000,0.250000\n"
            "offset=64,1,100,150,1.000000,0.000000\n");
  std::remove(path.c_str());
}

TEST(McTimelineCsv, PadsNarrowRowsToWidestController) {
  McTimelineSeries a{"a", {{0, 10, {0.1}}}};
  McTimelineSeries b{"b", {{0, 10, {0.2, 0.3, 0.4}}}};
  const std::string path = testing::TempDir() + "timeline_pad.csv";
  ASSERT_TRUE(write_mc_timeline_csv(path, {a, b}).ok());
  const std::string body = slurp(path);
  EXPECT_NE(body.find("label,sample,begin_cycle,end_cycle,mc0,mc1,mc2\n"),
            std::string::npos);
  EXPECT_NE(body.find("a,0,0,10,0.100000,,\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(McTimelineCsv, FailsTypedOnUnwritablePath) {
  const auto status =
      write_mc_timeline_csv("/nonexistent-dir/timeline.csv", {});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("timeline.csv"), std::string::npos);
}

sim::Workload read_streams(unsigned threads, std::size_t n_per_thread) {
  sim::Workload wl;
  for (unsigned t = 0; t < threads; ++t) {
    std::vector<trace::StreamDesc> s{
        {(arch::Addr{1} << 32) + t * (arch::Addr{1} << 22), false, 0}};
    wl.push_back(std::make_unique<trace::LockstepStreamProgram>(
        s, sizeof(double), std::vector<sched::IterRange>{{0, n_per_thread}},
        1));
  }
  return wl;
}

TEST(ChipTimeline, DisabledByDefault) {
  sim::SimConfig cfg;
  sim::Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  auto wl = read_streams(2, 4096);
  const sim::SimResult res = chip.run(wl);
  EXPECT_TRUE(res.mc_timeline.empty());
  EXPECT_FALSE(res.mc_timeline_truncated);
}

TEST(ChipTimeline, RowsTileTheRunAndConserveBusyCycles) {
  sim::SimConfig cfg;
  cfg.mc_sample_cadence = 2000;
  sim::Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  auto wl = read_streams(4, 8192);
  const sim::SimResult res = chip.run(wl);

  ASSERT_FALSE(res.mc_timeline.empty());
  EXPECT_FALSE(res.mc_timeline_truncated);

  // Rows are contiguous from 0 to total_cycles; whole rows span one
  // cadence, the final row is the partial remainder.
  EXPECT_EQ(res.mc_timeline.front().begin, 0u);
  for (std::size_t i = 0; i < res.mc_timeline.size(); ++i) {
    const auto& row = res.mc_timeline[i];
    ASSERT_EQ(row.utilization.size(), res.mc.size());
    EXPECT_GT(row.end, row.begin);
    // A boundary that cuts mid-burst must carry the excess forward, never
    // report a physically impossible > 1.0 utilization.
    for (const double util : row.utilization) {
      EXPECT_GE(util, 0.0);
      EXPECT_LE(util, 1.0);
    }
    if (i != 0) EXPECT_EQ(row.begin, res.mc_timeline[i - 1].end);
    if (i + 1 < res.mc_timeline.size())
      EXPECT_EQ(row.length(), cfg.mc_sample_cadence);
  }
  EXPECT_EQ(res.mc_timeline.back().end, res.total_cycles);

  // Busy attribution telescopes: the per-row deltas sum to each
  // controller's end-of-run busy counter, exactly.
  for (std::size_t m = 0; m < res.mc.size(); ++m) {
    double busy = 0.0;
    for (const auto& row : res.mc_timeline)
      busy += row.utilization[m] * static_cast<double>(row.length());
    EXPECT_NEAR(busy, static_cast<double>(res.mc[m].busy_cycles),
                1e-6 * static_cast<double>(res.total_cycles) + 1.0)
        << "controller " << m;
  }
}

TEST(ChipTimeline, SocketRowsAggregateControllerBusyExactly) {
  // The timeline is controller-granular; socket-level views (chaos/NUMA
  // dashboards, obs_query) derive socket = controller / 4 and sum busy
  // cycles. That aggregation must conserve busy time exactly: per-socket
  // sums recomputed from the rows equal the per-socket sums of the
  // end-of-run controller counters.
  sim::SimConfig cfg;
  cfg.mc_sample_cadence = 2000;
  sim::Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
  auto wl = read_streams(8, 8192);
  const sim::SimResult res = chip.run(wl);
  ASSERT_FALSE(res.mc_timeline.empty());

  constexpr std::size_t kPerSocket = 4;
  const std::size_t sockets = (res.mc.size() + kPerSocket - 1) / kPerSocket;
  std::vector<double> from_rows(sockets, 0.0);
  std::vector<double> from_counters(sockets, 0.0);
  for (const auto& row : res.mc_timeline)
    for (std::size_t m = 0; m < row.utilization.size(); ++m)
      from_rows[m / kPerSocket] +=
          row.utilization[m] * static_cast<double>(row.length());
  for (std::size_t m = 0; m < res.mc.size(); ++m)
    from_counters[m / kPerSocket] +=
        static_cast<double>(res.mc[m].busy_cycles);
  for (std::size_t s = 0; s < sockets; ++s)
    EXPECT_NEAR(from_rows[s], from_counters[s],
                1e-6 * static_cast<double>(res.total_cycles) + 1.0)
        << "socket " << s;
}

#ifdef MCOPT_CHECK_OBS_SCRIPT
TEST(McTimelineCsv, RoundTripsThroughTheSchemaChecker) {
  // The writer's CSV and scripts/check_obs_outputs.py --timeline are two
  // halves of one schema contract; exercise the real checker on real output
  // so a drift in either side fails here, not in CI.
  if (std::system("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";
  McTimelineSeries s;
  s.label = "offset=0";
  s.samples.push_back({0, 2000, {0.5, 0.25, 0.0, 1.0}});
  s.samples.push_back({2000, 4000, {0.1, 0.2, 0.3, 0.4}});
  McTimelineSeries narrow{"narrow", {{0, 500, {0.9}}}};
  const std::string path = testing::TempDir() + "timeline_checker.csv";
  ASSERT_TRUE(write_mc_timeline_csv(path, {s, narrow}).ok());
  const std::string cmd = std::string("python3 \"") + MCOPT_CHECK_OBS_SCRIPT +
                          "\" --timeline \"" + path + "\" > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::remove(path.c_str());
}
#endif

TEST(ChipTimeline, SecondRunStartsAFreshTimeline) {
  sim::SimConfig cfg;
  cfg.mc_sample_cadence = 2000;
  sim::Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  auto wl1 = read_streams(2, 4096);
  const sim::SimResult r1 = chip.run(wl1);
  auto wl2 = read_streams(2, 4096);
  const sim::SimResult r2 = chip.run(wl2);
  // Same workload, same chip: the second timeline restarts at cycle 0 with
  // the same number of rows, not a continuation of the first.
  ASSERT_FALSE(r2.mc_timeline.empty());
  EXPECT_EQ(r2.mc_timeline.front().begin, 0u);
  EXPECT_EQ(r1.mc_timeline.size(), r2.mc_timeline.size());
}

TEST(ChipTimeline, CadenceValidation) {
  sim::SimConfig cfg;
  cfg.mc_sample_cadence = 0;  // off is always valid
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace mcopt::obs
