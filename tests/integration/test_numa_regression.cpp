// Tier-1 promotion of the NUMA scale-out invariants: the cross-socket
// placement ordering of the paper's STREAM experiment, a pinned socket-
// outage failover that must converge onto the surviving socket's analytic
// bandwidth, and the hardest seed from the NUMA chaos soak. The nightly
// soak fuzzes random socket/link schedules; these pins keep the failover
// path from silently decaying between nightlies.
//
// Thread counts are deliberately non-period-aligned (14 and 31 strands):
// a static-block chunk that is a whole number of interleave periods
// convoys every strand through the same controller sequence, a DES effect
// the analytic model deliberately does not capture. The soak applies the
// same de-resonance rule.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/numa_common.h"
#include "runtime/numa_loop.h"
#include "sim/analytic.h"
#include "sim/fault_schedule.h"
#include "util/prng.h"

namespace mcopt {
namespace {

TEST(NumaRegression, CrossSocketPlacementOrderingReproduces) {
  // One cold sweep per socket: n large enough that the arrays are not L2
  // resident, so the DES measures memory placement rather than cache hits.
  bench::NumaSweepParams params;
  params.sockets = 2;
  params.n = 65536;
  params.threads = 14;
  params.sweeps = 1;
  sim::NodeConfig cfg;
  cfg.node.num_sockets = params.sockets;
  cfg.validate();

  const auto bw = [&](bench::NumaPlacement p) {
    return bench::run_numa_placement(p, params, cfg).memory_bandwidth();
  };
  const double local = bw(bench::NumaPlacement::kLocal);
  const double interleaved = bw(bench::NumaPlacement::kInterleaved);
  const double remote = bw(bench::NumaPlacement::kRemote);
  const double first_touch = bw(bench::NumaPlacement::kFirstTouch);

  // The paper's ordering at NUMA scale: every hop costs bandwidth.
  EXPECT_GT(local, interleaved);
  EXPECT_GT(interleaved, remote);
  // Serial-init first-touch bottlenecks on domain 0's controllers; it must
  // never beat the balanced local placement.
  EXPECT_LT(first_touch, local);

  // The analytic model must agree on the ordering (weakly: interleave and
  // remote can both pin at the link roofline).
  const auto model = [&](bench::NumaPlacement p) {
    return bench::estimate_numa_placement(p, params, cfg).bandwidth;
  };
  EXPECT_GT(model(bench::NumaPlacement::kLocal),
            model(bench::NumaPlacement::kInterleaved));
  EXPECT_GE(model(bench::NumaPlacement::kInterleaved),
            model(bench::NumaPlacement::kRemote));
}

TEST(NumaRegression, SocketOutageFailoverConvergesToSurvivorModel) {
  // The promoted outage: socket 1's memory dies for good at 20% of the run.
  // The supervisor must migrate exactly once (no replan thrash), land every
  // job on the survivor, beat the unsupervised baseline, and deliver a
  // post-migration tail within 90% of the survivor placement's analytic
  // bandwidth — the planner's promise must be one the DES can keep.
  constexpr std::size_t kN = 131072;
  runtime::NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 2;
  cfg.node.validate();
  cfg.threads = 14;
  cfg.slices = 12;

  runtime::NodeLoopConfig probe = cfg;
  probe.supervise = false;
  const auto healthy = runtime::run_supervised_node_triad(kN, probe);
  const auto resolved = sim::FaultSchedule::parse("sock1:off@20%")
                            .value()
                            .resolved(healthy.total_cycles);
  ASSERT_TRUE(resolved.check(cfg.node.sim.interleave, 2).ok());
  cfg.node.sim.fault_schedule = resolved;

  cfg.supervise = true;
  const auto sup = runtime::run_supervised_node_triad(kN, cfg);
  cfg.supervise = false;
  const auto unsup = runtime::run_supervised_node_triad(kN, cfg);

  ASSERT_EQ(sup.replans, 1u);
  ASSERT_FALSE(sup.replan_log.empty());
  const runtime::NodeReplanRecord& last = sup.replan_log.back();
  EXPECT_EQ(last.healthy_sockets, std::vector<unsigned>{0u});
  for (const runtime::NodeJob& job : sup.final_jobs) {
    EXPECT_EQ(job.compute_socket, 0u);
    EXPECT_EQ(job.home_socket, 0u);
  }
  EXPECT_GT(sup.bandwidth, unsup.bandwidth);

  // Survivor model: the committed placement priced under the supervisor's
  // final belief, exactly as the planner projected it.
  std::vector<std::vector<sim::AnalyticStream>> streams(2);
  std::vector<unsigned> threads(2, 0);
  for (const runtime::NodeJob& job : last.jobs) {
    const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                      {job.bases[1], false},
                                                      {job.bases[2], false},
                                                      {job.bases[3], false}};
    const auto physical = sim::expand_rfo(logical);
    auto& dst = streams[job.compute_socket];
    dst.insert(dst.end(), physical.begin(), physical.end());
    threads[job.compute_socket] += cfg.threads;
  }
  const arch::AddressMap map(cfg.node.sim.interleave);
  const double survivor_model =
      sim::estimate_node_bandwidth(streams, threads,
                                   cfg.node.sim.calibration, map,
                                   cfg.node.node,
                                   cfg.node.sim.topology.clock_ghz,
                                   sup.final_diagnosis)
          .bandwidth;
  ASSERT_GT(survivor_model, 0.0);
  const double tail =
      sup.tail_bandwidth(last.at, cfg.node.sim.topology.clock_ghz);
  EXPECT_GE(tail, 0.9 * survivor_model)
      << "post-migration tail " << tail / 1e9 << " GB/s vs survivor model "
      << survivor_model / 1e9 << " GB/s";
}

TEST(NumaRegression, HardChaosSeedKeepsFailoverInvariants) {
  // Seed 9 of the 2-socket NUMA soak is the knife's edge: a permanent
  // sock0:off early in the run, where the packed survivor placement and the
  // unsupervised remote route land within a few percent of each other. The
  // gate must still commit a move that does not lose (N1), keep every
  // migrated job inside the healthy set (N2), and not thrash (N3).
  constexpr std::uint64_t kSeed = 9;
  constexpr std::size_t kN = 8192;
  runtime::NodeLoopConfig cfg;
  cfg.node.node.num_sockets = 2;
  cfg.node.validate();
  cfg.threads = 31;  // de-resonated: 32 would period-align the chunks
  cfg.slices = 10;
  cfg.seed = kSeed;

  runtime::NodeLoopConfig probe = cfg;
  probe.supervise = false;
  const auto horizon = runtime::run_supervised_node_triad(kN, probe).total_cycles;
  util::Xoshiro256 rng(kSeed);
  const auto resolved = bench::numa_chaos_schedule(rng, 2).resolved(horizon);
  ASSERT_TRUE(resolved.check(cfg.node.sim.interleave, 2).ok());
  cfg.node.sim.fault_schedule = resolved;

  cfg.supervise = true;
  const auto sup = runtime::run_supervised_node_triad(kN, cfg);
  cfg.supervise = false;
  const auto unsup = runtime::run_supervised_node_triad(kN, cfg);

  EXPECT_GE(sup.bandwidth, 0.98 * unsup.bandwidth);
  for (const runtime::NodeReplanRecord& replan : sup.replan_log)
    for (const runtime::NodeJob& job : replan.jobs) {
      EXPECT_NE(std::find(replan.healthy_sockets.begin(),
                          replan.healthy_sockets.end(), job.compute_socket),
                replan.healthy_sockets.end());
      EXPECT_NE(std::find(replan.healthy_sockets.begin(),
                          replan.healthy_sockets.end(), job.home_socket),
                replan.healthy_sockets.end());
    }
  EXPECT_LE(sup.replans, static_cast<unsigned>(resolved.event_count()) + 1);
}

TEST(NumaRegression, SupervisedNodeLoopIsDeterministic) {
  // Bit-for-bit replayability is what makes the soak debuggable.
  auto run_once = [] {
    runtime::NodeLoopConfig cfg;
    cfg.node.node.num_sockets = 2;
    cfg.node.validate();
    cfg.threads = 14;
    cfg.slices = 8;
    runtime::NodeLoopConfig probe = cfg;
    probe.supervise = false;
    const auto horizon =
        runtime::run_supervised_node_triad(8192, probe).total_cycles;
    cfg.node.sim.fault_schedule =
        sim::FaultSchedule::parse("sock1:off@20%").value().resolved(horizon);
    cfg.supervise = true;
    return runtime::run_supervised_node_triad(8192, cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.replans, b.replans);
  ASSERT_EQ(a.final_jobs.size(), b.final_jobs.size());
  for (std::size_t i = 0; i < a.final_jobs.size(); ++i) {
    EXPECT_EQ(a.final_jobs[i].compute_socket, b.final_jobs[i].compute_socket);
    EXPECT_EQ(a.final_jobs[i].bases, b.final_jobs[i].bases);
  }
}

}  // namespace
}  // namespace mcopt
