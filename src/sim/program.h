#pragma once
// Interface between workload generators (src/trace) and the simulator: a
// per-thread lazy access sequence. Batching amortizes the virtual call.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "sim/access.h"

namespace mcopt::sim {

/// Lazy generator of one software thread's memory-access sequence.
class AccessProgram {
 public:
  virtual ~AccessProgram() = default;

  /// Writes up to out.size() accesses in program order; returns how many
  /// were produced. Returning 0 means the program is exhausted.
  virtual std::size_t next_batch(std::span<Access> out) = 0;

  /// Rewinds to the beginning (programs are replayable).
  virtual void reset() = 0;

  /// Total accesses this program will emit (for progress/validation).
  [[nodiscard]] virtual std::uint64_t total_accesses() const = 0;
};

/// A workload: one program per software thread.
using Workload = std::vector<std::unique_ptr<AccessProgram>>;

}  // namespace mcopt::sim
