#include "sim/numa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace mcopt::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// All-pairs surviving-path costs: line cycles (derate-scaled, the metric)
/// with latency carried along the chosen path as tie-breaker.
struct PathCosts {
  std::vector<double> cycles;        // n*n, kInf = unreachable
  std::vector<arch::Cycles> latency; // n*n, valid where cycles finite
};

PathCosts all_pairs(const arch::NodeTopology& node, const FaultSpec& active) {
  const unsigned n = node.num_sockets;
  PathCosts c;
  c.cycles.assign(static_cast<std::size_t>(n) * n, kInf);
  c.latency.assign(static_cast<std::size_t>(n) * n, 0);
  const auto at = [n](unsigned i, unsigned j) {
    return static_cast<std::size_t>(i) * n + j;
  };
  for (unsigned i = 0; i < n; ++i) {
    c.cycles[at(i, i)] = 0.0;
    for (unsigned j = 0; j < n; ++j) {
      if (i == j || active.is_link_offline(i, j)) continue;
      c.cycles[at(i, j)] = static_cast<double>(node.link_cycles(i, j)) /
                           active.link_derate_of(i, j);
      c.latency[at(i, j)] = node.latency(i, j);
    }
  }
  for (unsigned k = 0; k < n; ++k)
    for (unsigned i = 0; i < n; ++i)
      for (unsigned j = 0; j < n; ++j) {
        const double via = c.cycles[at(i, k)] + c.cycles[at(k, j)];
        if (via == kInf) continue;
        const arch::Cycles via_lat = c.latency[at(i, k)] + c.latency[at(k, j)];
        if (via < c.cycles[at(i, j)] ||
            (via == c.cycles[at(i, j)] && via_lat < c.latency[at(i, j)])) {
          c.cycles[at(i, j)] = via;
          c.latency[at(i, j)] = via_lat;
        }
      }
  return c;
}

arch::Cycles ceil_cycles(double v) {
  return v <= 0.0 ? 0 : static_cast<arch::Cycles>(std::ceil(v));
}

}  // namespace

NumaRoutes resolve_numa_routes(const arch::NodeTopology& node,
                               const FaultSpec& active, unsigned self) {
  const unsigned n = node.num_sockets;
  const PathCosts costs = all_pairs(node, active);
  const auto at = [n](unsigned i, unsigned j) {
    return static_cast<std::size_t>(i) * n + j;
  };

  NumaRoutes routes;
  routes.latency.assign(n, 0);
  routes.line_cycles.assign(n, 0);
  routes.reachable.assign(n, false);
  for (unsigned t = 0; t < n; ++t) {
    const double raw = costs.cycles[at(self, t)];
    routes.reachable[t] = raw != kInf;
    if (!routes.reachable[t]) continue;
    routes.latency[t] = costs.latency[at(self, t)];
    // A derated serving socket slows remote fills from it by the same factor
    // as its own controllers (the memory side is the bottleneck, not the
    // wire). Local fills (t == self) pay it through the MC rate factor
    // instead, so the path cost stays 0.
    const double serve = t == self ? raw : raw / active.socket_derate_of(t);
    routes.line_cycles[t] = ceil_cycles(serve);
  }

  routes.home_serving = active.socket_remap(n);
  for (unsigned h = 0; h < n; ++h) {
    unsigned t = routes.home_serving[h];
    if (routes.reachable[t]) continue;
    // The round-robin survivor is partitioned away from `self`: re-home to
    // the nearest reachable survivor (cheapest line cost, then latency, then
    // index — deterministic). check_numa_connectivity guarantees one exists
    // for any config that passed SimConfig::check; the self fallback below
    // only keeps a violated precondition deterministic.
    unsigned best = self;
    double best_cycles = kInf;
    arch::Cycles best_latency = 0;
    for (unsigned s = 0; s < n; ++s) {
      if (!routes.reachable[s] || active.is_socket_offline(s)) continue;
      const double cyc = static_cast<double>(routes.line_cycles[s]);
      if (cyc < best_cycles ||
          (cyc == best_cycles && routes.latency[s] < best_latency)) {
        best = s;
        best_cycles = cyc;
        best_latency = routes.latency[s];
      }
    }
    routes.home_serving[h] = best;
  }
  return routes;
}

util::Status check_numa_connectivity(const arch::NodeTopology& node,
                                     const FaultSpec& active) {
  util::Status status;
  const unsigned n = node.num_sockets;
  if (n <= 1) return status;
  const PathCosts costs = all_pairs(node, active);
  for (unsigned s = 0; s < n; ++s) {
    bool any_memory = false;
    for (unsigned t = 0; t < n; ++t)
      if (!active.is_socket_offline(t) &&
          costs.cycles[static_cast<std::size_t>(s) * n + t] != kInf) {
        any_memory = true;
        break;
      }
    if (!any_memory)
      status.note("numa: socket " + std::to_string(s) +
                  " cannot reach any surviving memory domain (link faults "
                  "partition it from every live socket)");
  }
  return status;
}

}  // namespace mcopt::sim
