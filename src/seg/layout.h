#pragma once
// Byte-level layout arithmetic for segmented arrays — the four parameters of
// Fig. 3 in the paper: base alignment, per-segment alignment ("padding"),
// cumulative per-segment "shift", and a global "offset" of the whole block.
//
// Semantics (matching Sect. 2.2):
//   1. The block is allocated at an address aligned to `base_align`.
//   2. Segment 0 starts at the block base; every following segment is padded
//      so it would start on a `segment_align` boundary.
//   3. A constant `shift` is inserted before each segment after the first,
//      displacing segment s by s*shift bytes from its alignment boundary —
//      "shift a segment that would be assigned to thread t by t*128 bytes".
//   4. Finally the whole block is displaced by `offset` bytes.
//
// All arithmetic is in bytes and independent of the element type; seg_array
// layers element-size checks on top.

#include <cstddef>
#include <vector>

#include "util/expected.h"

namespace mcopt::seg {

/// The Fig. 3 parameter set.
struct LayoutSpec {
  /// Alignment of the allocation base (e.g. 8192 to pin to a page boundary).
  std::size_t base_align = 64;
  /// Boundary each segment (except displacement by shift/offset) starts on;
  /// 0 or 1 means segments are packed densely with no padding.
  std::size_t segment_align = 0;
  /// Cumulative displacement: segment s starts s*shift bytes past its
  /// alignment boundary.
  std::size_t shift = 0;
  /// Global displacement of the whole block from the aligned base.
  std::size_t offset = 0;
  /// Degraded-chip replanning: when non-empty, segment s is displaced by
  /// shift_cycle[s % shift_cycle.size()] bytes past its alignment boundary
  /// instead of the arithmetic s*shift progression. This lets the planner
  /// cycle rows through an arbitrary (e.g. surviving-controller) offset set
  /// that no constant shift can express.
  std::vector<std::size_t> shift_cycle;

  /// Non-throwing validation; reports every violation at once (power-of-two
  /// alignments, shift/shift_cycle exclusivity, cycle entries bounded by the
  /// alignment period).
  [[nodiscard]] util::Status check() const;
  /// Throws std::invalid_argument on the first rule check() would report.
  void validate() const;
};

/// Resolved placement: byte positions of each segment inside the block.
struct LayoutResult {
  /// Byte position of each segment start, relative to the aligned base.
  std::vector<std::size_t> segment_pos;
  /// Total bytes the block needs (position + size of the last segment).
  std::size_t total_bytes = 0;
};

/// Computes segment placements for the given per-segment byte sizes.
/// Zero-size segments are allowed (they occupy no bytes but get positions).
[[nodiscard]] LayoutResult compute_layout(const std::vector<std::size_t>& segment_bytes,
                                          const LayoutSpec& spec);

/// Rounds `pos` up to the next multiple of `align` (align 0/1 = identity).
[[nodiscard]] constexpr std::size_t align_up(std::size_t pos, std::size_t align) noexcept {
  if (align <= 1) return pos;
  return (pos + align - 1) / align * align;
}

/// Splits n elements into `parts` segments using the paper's rule:
/// the first (n % parts) segments get floor(n/parts)+1 elements, the rest
/// floor(n/parts) (Sect. 2.2). parts must be >= 1.
[[nodiscard]] std::vector<std::size_t> split_even(std::size_t n, std::size_t parts);

}  // namespace mcopt::seg
