#pragma once
// Write-ahead job journal — the durability spine of the service runtime.
//
// The journal is an append-only file of CRC32C-framed records describing
// everything that crossed the service door: submissions (with the door's
// verdict), completions, typed sheds, snapshot marks and a seal. The
// contract is write -> fsync -> ack: JournalWriter::append() buffers, and
// only commit() (fflush + fsync) makes the records durable — a caller must
// not acknowledge a submission to its client before commit() returns, and
// then a crash at ANY instant loses no acknowledged submission. Batching
// many append()s under one commit() (group commit) is what keeps the
// steady-state overhead in the low single digits.
//
// Layout (all integers little-endian, same-machine restart artifact like
// runtime/checkpoint.h, not portable interchange):
//
//   header:  u32 magic 'MJNL'  u32 version  u64 user  u32 header_crc
//   record:  u32 payload_bytes  u32 type  u64 sequence
//            payload_bytes of payload
//            u32 crc   (CRC32C of the frame: prefix + payload)
//   ... records ...
//
// Recovery (recover_journal) distinguishes two failure shapes, and the
// distinction is the whole point:
//
//   * a file that is not a journal — missing, unreadable, wrong magic or
//     version, damaged header — is a TYPED REFUSAL (Expected failure):
//     restarting against it would silently fake an empty history;
//   * a valid journal whose tail is torn or bit-flipped (the crash landed
//     mid-write) is recovered up to the last intact record; the damaged
//     tail's length and reason are REPORTED in JournalRecovery, never
//     silently accepted. truncate_journal() then drops the tail on disk so
//     a writer can resume appending.
//
// Record payloads for the service runtime (SubmissionRecord etc.) live here
// too, with encode/decode helpers; runtime/durable/service_handle.h owns
// the replay state machine that interprets them.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::runtime::durable {

inline constexpr std::uint32_t kJournalMagic = 0x4C4E4A4Du;  // "MJNL"
/// Current write version. v2 extends SubmissionRecord with the 64-bit trace
/// context (trace_id, parent_span) and reuses CompletionRecord's spare word
/// as the plan-set controller mask for attribution replay.
inline constexpr std::uint32_t kJournalVersion = 2;
/// Oldest version recovery still reads. v1 journals replay unmodified: their
/// 64-byte submission payloads decode with a zero trace context and their
/// completion spare word reads as an empty plan mask.
inline constexpr std::uint32_t kJournalMinVersion = 1;
/// magic + version + user + header CRC.
inline constexpr std::size_t kJournalHeaderBytes = 4 + 4 + 8 + 4;  // 20
/// Record frame prefix (payload_bytes + type + sequence) before the payload.
inline constexpr std::size_t kRecordPrefixBytes = 4 + 4 + 8;  // 16
inline constexpr std::size_t kRecordCrcBytes = 4;
/// Upper bound on a record payload. A length prefix above this is damage
/// (a bit flip in the length field must not make recovery try to read
/// gigabytes before the CRC can refute it).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class RecordType : std::uint32_t {
  kSubmission = 1,    ///< a job crossed the door (verdict included)
  kCompletion = 2,    ///< the executor finished a forwarded job
  kShed = 3,          ///< typed loss: door rejection or executor shed
  kSnapshotMark = 4,  ///< a state snapshot covering a journal prefix exists
  kSeal = 5,          ///< clean shutdown: the journal ends here on purpose
};

[[nodiscard]] constexpr const char* to_string(RecordType t) noexcept {
  switch (t) {
    case RecordType::kSubmission: return "submission";
    case RecordType::kCompletion: return "completion";
    case RecordType::kShed: return "shed";
    case RecordType::kSnapshotMark: return "snapshot-mark";
    case RecordType::kSeal: return "seal";
  }
  return "?";
}

/// One recovered record.
struct Record {
  RecordType type = RecordType::kSeal;
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

// --- little-endian wire helpers (shared with state/service_handle) ---------

namespace wire {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// Doubles ride as their IEEE-754 bit pattern (the door's token-bucket
/// arithmetic must replay bit-identically, so no text round-trip).
void put_f64(std::vector<std::uint8_t>& out, double v);
[[nodiscard]] double get_f64(const std::uint8_t* p);

}  // namespace wire

// --- typed record payloads -------------------------------------------------

/// Every job presented at the door, with the door's verdict. 80 bytes since
/// journal v2 (the trailing trace context); v1's 64-byte payloads decode
/// with a zero trace context, so old journals replay unmodified.
struct SubmissionRecord {
  std::uint64_t submission_id = 0;  ///< caller-chosen dedup key
  std::uint64_t exec_job_id = 0;    ///< executor id in the writing process; 0 if never forwarded
  std::uint32_t tenant = 0;
  std::uint32_t verdict = 0;  ///< 0 = door accepted; else exec::ShedReason
  std::uint32_t kind = 0;     ///< exec::JobKind
  std::uint32_t priority = 0; ///< exec::Priority as submitted (pre-SLO)
  std::uint64_t n = 0;
  std::uint64_t iterations = 0;
  std::uint64_t deadline = 0;  ///< as submitted (exec::kNoDeadline = none)
  std::uint64_t arrival = 0;
  /// Causal trace context allocated at the service door. Journaling it is
  /// what lets a post-restart replay emit flow events with the SAME id the
  /// pre-kill submit span carried, stitching the job's causal chain across
  /// the SIGKILL in the exported Chrome trace.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static util::Expected<SubmissionRecord> decode(
      const std::vector<std::uint8_t>& payload);
};

/// A forwarded job the executor completed. 32 bytes.
struct CompletionRecord {
  std::uint64_t submission_id = 0;
  std::uint64_t served_bytes = 0;  ///< quote bytes credited to the tenant ledger
  std::uint64_t finish = 0;        ///< virtual-cycle finish stamp
  std::uint32_t field_crc = 0;     ///< kernel field CRC (bit-identity witness)
  /// Plan-set controller bitmask (bit i = controller i) since journal v2, so
  /// a replayed completion re-credits the attribution ledger to the same
  /// controllers the live run charged. v1 journals carry 0 here (the word
  /// was reserved and always written as zero): replay charges the
  /// unknown-controller cell instead — per-tenant totals stay exact.
  std::uint32_t plan_mask = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static util::Expected<CompletionRecord> decode(
      const std::vector<std::uint8_t>& payload);
};

/// Where a shed happened — determines replay semantics (a door rejection
/// replays deterministically; an executor outcome is final history).
enum class ShedOrigin : std::uint32_t {
  kDoor = 0,          ///< rejected at the service door (never forwarded)
  kExecutorReject = 1,///< executor admission rejection at submit time
  kExecutorShed = 2,  ///< accepted, then shed (queue expiry, shutdown, ...)
};

/// Typed loss record. 24 bytes.
struct ShedRecord {
  std::uint64_t submission_id = 0;
  std::uint32_t reason = 0;  ///< exec::ShedReason
  std::uint32_t origin = 0;  ///< ShedOrigin
  std::uint64_t at = 0;      ///< virtual cycle of the verdict

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static util::Expected<ShedRecord> decode(
      const std::vector<std::uint8_t>& payload);
};

/// Marks that a state snapshot covering sequences <= covered_sequence was
/// durably published (written, fsync'd, renamed) before this record. 16 bytes.
struct SnapshotMarkRecord {
  std::uint64_t snapshot_id = 0;
  std::uint64_t covered_sequence = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static util::Expected<SnapshotMarkRecord> decode(
      const std::vector<std::uint8_t>& payload);
};

// --- writer ----------------------------------------------------------------

/// Append-side of the journal. Not thread-safe (the service handle owns one
/// and serializes access). The destructor closes WITHOUT committing —
/// durability is explicit, and an exit without commit() is equivalent to a
/// crash at the same point, which is exactly what the recovery tests rely on.
class JournalWriter {
 public:
  /// Creates a fresh journal at `path` (truncating any existing file) and
  /// makes the header durable before returning.
  [[nodiscard]] static util::Expected<std::unique_ptr<JournalWriter>> create(
      const std::string& path, std::uint64_t user);

  /// Reopens a recovered journal for appending. `valid_bytes` and
  /// `next_sequence` come from JournalRecovery; the file is truncated to
  /// `valid_bytes` first, dropping any torn tail recovery reported.
  [[nodiscard]] static util::Expected<std::unique_ptr<JournalWriter>> reopen(
      const std::string& path, std::uint64_t valid_bytes,
      std::uint64_t next_sequence);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one record; returns its sequence number. Not durable until
  /// commit().
  std::uint64_t append(RecordType type,
                       const std::vector<std::uint8_t>& payload);

  /// Makes every appended record durable (fflush + fsync) — the ack point.
  /// One commit per submission batch is the intended cadence (group commit).
  [[nodiscard]] util::Status commit();

  /// Appends a seal record and commits: a recovered journal ending in a
  /// seal is a clean shutdown, anything else is a crash.
  [[nodiscard]] util::Status seal();

  [[nodiscard]] std::uint64_t next_sequence() const noexcept {
    return next_sequence_;
  }
  /// Records appended but not yet covered by a commit().
  [[nodiscard]] std::uint64_t uncommitted() const noexcept {
    return uncommitted_;
  }
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  JournalWriter(std::string path, std::FILE* f, std::uint64_t next_sequence);

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t uncommitted_ = 0;
  bool sealed_ = false;
};

// --- recovery --------------------------------------------------------------

/// Result of scanning a journal file.
struct JournalRecovery {
  std::uint64_t user = 0;        ///< header user word
  /// Header version of the scanned file (kJournalMinVersion..kJournalVersion).
  std::uint32_t version = kJournalVersion;
  std::vector<Record> records;   ///< intact records, in append order
  std::uint64_t valid_bytes = 0; ///< byte length of the intact prefix
  std::uint64_t dropped_bytes = 0;  ///< torn/corrupt tail length (0 = clean)
  bool sealed = false;           ///< last record is a seal (clean shutdown)
  /// Why the scan stopped before end-of-file (empty when the tail is clean).
  /// Never silent: a nonzero dropped_bytes always carries a reason here.
  std::string tail_note;
  std::uint64_t next_sequence = 1;  ///< first unused sequence number
};

/// Scans and validates `path`. Typed refusal (failure) when the file is not
/// a readable journal: missing, unreadable, short/damaged header, wrong
/// magic or version. A damaged TAIL is not a refusal — the intact prefix is
/// returned with dropped_bytes/tail_note describing the damage.
[[nodiscard]] util::Expected<JournalRecovery> recover_journal(
    const std::string& path);

/// Physically truncates `path` to `valid_bytes` (drops a torn tail so a
/// writer can resume). No-op when the file is already that short.
[[nodiscard]] util::Status truncate_journal(const std::string& path,
                                            std::uint64_t valid_bytes);

}  // namespace mcopt::runtime::durable
