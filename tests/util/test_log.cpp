#include "util/log.h"

#include <gtest/gtest.h>

namespace mcopt::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, ParsesLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
}

TEST(Log, ParsesLevelsCaseInsensitively) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("WaRn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
}

TEST(Log, ParsesNumericLevels) {
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
}

TEST(Log, RejectsGarbageLevels) {
  // MCOPT_LOG_LEVEL feeds this parser at startup; junk must map to nullopt
  // (the initializer then falls back to kInfo with a warning).
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
  EXPECT_EQ(parse_log_level("info "), std::nullopt);
  EXPECT_EQ(parse_log_level("debug,info"), std::nullopt);
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Suppressed messages must not crash or allocate surprisingly.
  log_debug("suppressed");
  log_info("suppressed");
  log_warn("suppressed");
  log_error("shown on stderr");
}

}  // namespace
}  // namespace mcopt::util
