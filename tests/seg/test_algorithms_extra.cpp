#include <gtest/gtest.h>

#include "seg/algorithms.h"
#include "seg/seg_array.h"

namespace mcopt::seg {
namespace {

seg_array<double> make_iota(std::vector<std::size_t> sizes) {
  LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  seg_array<double> a(std::move(sizes), spec);
  double v = 0.0;
  for (auto it = a.begin(); it != a.end(); ++it) *it = v++;
  return a;
}

TEST(CountIf, CountsAcrossSegments) {
  auto a = make_iota({3, 0, 7});  // 0..9
  EXPECT_EQ(seg::count_if(a.begin(), a.end(), [](double v) { return v >= 5.0; }), 5u);
  EXPECT_EQ(seg::count(a.begin(), a.end(), 3.0), 1u);
  EXPECT_EQ(seg::count(a.begin(), a.end(), 99.0), 0u);
}

TEST(MinMaxValue, FindsExtremes) {
  auto a = make_iota({4, 4});  // 0..7
  a[2] = -5.0;
  a[6] = 100.0;
  EXPECT_DOUBLE_EQ(seg::max_value(a.begin(), a.end()), 100.0);
  EXPECT_DOUBLE_EQ(seg::min_value(a.begin(), a.end()), -5.0);
}

TEST(MinMaxValue, ThrowOnEmpty) {
  seg_array<double> a({0, 0}, LayoutSpec{});
  EXPECT_THROW(seg::max_value(a.begin(), a.end()), std::invalid_argument);
  EXPECT_THROW(seg::min_value(a.begin(), a.end()), std::invalid_argument);
}

TEST(TransformReduce, SumOfSquares) {
  auto a = make_iota({5});  // 0..4
  const double ss = seg::transform_reduce(a.begin(), a.end(), 0.0,
                                          [](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(ss, 0.0 + 1 + 4 + 9 + 16);
}

TEST(AnyAllOf, ShortCircuitSemantics) {
  auto a = make_iota({4, 4});
  EXPECT_TRUE(seg::any_of(a.begin(), a.end(), [](double v) { return v == 7.0; }));
  EXPECT_FALSE(seg::any_of(a.begin(), a.end(), [](double v) { return v < 0.0; }));
  EXPECT_TRUE(seg::all_of(a.begin(), a.end(), [](double v) { return v >= 0.0; }));
  EXPECT_FALSE(seg::all_of(a.begin(), a.end(), [](double v) { return v < 7.0; }));
}

TEST(AnyAllOf, EmptyRange) {
  seg_array<double> a({0}, LayoutSpec{});
  EXPECT_FALSE(seg::any_of(a.begin(), a.end(), [](double) { return true; }));
  EXPECT_TRUE(seg::all_of(a.begin(), a.end(), [](double) { return false; }));
}

}  // namespace
}  // namespace mcopt::seg
