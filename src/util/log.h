#pragma once
// Minimal leveled logging to stderr. Benches use it for progress lines that
// must not pollute the stdout result tables.
//
// The sink is shared with the obs layer: every emitted line carries a
// monotonic_ns() timestamp (the same clock the trace recorder stamps events
// with, so log lines and trace spans align), and an optional mirror hook
// forwards each line to whoever installed it (obs::TraceRecorder turns them
// into "log.*" instants). util must not depend on obs, hence the
// function-pointer hook rather than a direct call.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses a log-level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive, or the numeric values 0-3). Returns nullopt on anything
/// else — callers decide whether that is fatal.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& text);

/// Typed-error variant for validating MCOPT_LOG_LEVEL: an unset/empty value
/// yields the default (kInfo); an unknown value is a failure naming the bad
/// value and the accepted spellings, so CLI front-ends can reject it instead
/// of silently running at the wrong verbosity.
[[nodiscard]] Expected<LogLevel> log_level_from_env(const char* value);

/// Global threshold; messages below it are dropped. Default: kInfo, or the
/// MCOPT_LOG_LEVEL environment variable when set to a parseable level at
/// startup (an unparseable value is ignored with a warning at static-init
/// time; CLI entry points additionally reject it via log_level_from_env()).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level() noexcept;

/// Nanoseconds on a process-wide monotonic clock (zero at first use). The
/// trace recorder stamps events with the same clock.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// One structured key=value field. Values are pre-rendered to text; use the
/// kv() helpers rather than formatting by hand.
struct LogField {
  std::string key;
  std::string value;
};

[[nodiscard]] LogField kv(std::string key, const std::string& value);
[[nodiscard]] LogField kv(std::string key, const char* value);
[[nodiscard]] LogField kv(std::string key, std::uint64_t value);
[[nodiscard]] LogField kv(std::string key, std::int64_t value);
[[nodiscard]] LogField kv(std::string key, int value);
[[nodiscard]] LogField kv(std::string key, double value);
[[nodiscard]] LogField kv(std::string key, bool value);

void log(LogLevel level, const std::string& message);
/// Structured variant: renders "message key=value key=value". Values
/// containing spaces/quotes are double-quoted with minimal escaping so the
/// line stays grep- and machine-splittable.
void log(LogLevel level, const std::string& message,
         const std::vector<LogField>& fields);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

inline void log_debug(const std::string& m, const std::vector<LogField>& f) {
  log(LogLevel::kDebug, m, f);
}
inline void log_info(const std::string& m, const std::vector<LogField>& f) {
  log(LogLevel::kInfo, m, f);
}
inline void log_warn(const std::string& m, const std::vector<LogField>& f) {
  log(LogLevel::kWarn, m, f);
}
inline void log_error(const std::string& m, const std::vector<LogField>& f) {
  log(LogLevel::kError, m, f);
}

/// Mirror hook: called (when installed) for every line that passes the level
/// threshold, with the already-rendered "message key=value..." text and its
/// monotonic_ns() timestamp. The hook runs on the logging thread and must be
/// cheap and non-blocking; install nullptr to remove.
using LogMirror = void (*)(LogLevel level, std::uint64_t ts_ns,
                           const char* text, std::size_t len);
void set_log_mirror(LogMirror mirror) noexcept;
[[nodiscard]] LogMirror log_mirror() noexcept;

/// Renders message + fields exactly as log() would (exposed for testing the
/// quoting rules without capturing stderr).
[[nodiscard]] std::string format_log_line(const std::string& message,
                                          const std::vector<LogField>& fields);

}  // namespace mcopt::util
