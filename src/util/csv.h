#pragma once
// Minimal RFC-4180-ish CSV writer so bench harnesses can dump machine-readable
// results next to the human-readable tables (use --csv <path>).
//
// Failure model: std::ofstream buffers, so a write that "succeeds" may still
// die at flush time (disk full, path unlinked) — and a destructor swallows
// that, silently truncating the CSV. The writer therefore carries a sticky
// util::Status: every I/O step records its outcome, later rows are refused
// once the stream has failed, and close() delivers the final verdict after
// the buffer actually reaches the file. Benches must call close() (or
// flush()) before declaring success.

#include <fstream>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::util {

/// Streaming CSV writer. Quotes cells containing separators/quotes/newlines.
///
/// Every file opens with a schema-version comment line
/// (`# mcopt-csv v2, columns: <header names>`) ahead of the header row, so
/// downstream parsers (scripts/check_obs_outputs.py and friends) can reject
/// files written under a different column convention instead of silently
/// misreading them. v2 marks the NUMA generation: socket/placement columns
/// may appear after the classic ones.
class CsvWriter {
 public:
  /// Version tag stamped into the leading comment line of every file.
  static constexpr const char* kSchemaVersion = "mcopt-csv v2";

  /// Opens `path` for writing and emits the version comment plus the header
  /// row. Throws on failure (historical API; an unopenable path is a usage
  /// error, not a mid-run I/O surprise).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; refuses (no-op) once the stream has failed. The
  /// returned status is the sticky stream status, so a mid-write failure
  /// surfaces here instead of vanishing into the stream buffer.
  [[nodiscard]] Status try_add_row(const std::vector<std::string>& cells);

  /// Pushes buffered rows to the file and reports the sticky status.
  [[nodiscard]] Status try_flush();

  /// Flushes and closes the underlying file; the returned status is the
  /// final verdict on whether every row reached disk. Further writes are
  /// refused. Safe to call twice.
  [[nodiscard]] Status close();

  /// Sticky stream status: ok until the first failed I/O step.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Throwing wrappers (historical API).
  void add_row(const std::vector<std::string>& cells) {
    try_add_row(cells).throw_if_failed();
  }
  void flush() { try_flush().throw_if_failed(); }

  /// Rows successfully accepted (header not counted).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Escape a single cell per RFC 4180 (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& cell);

  /// Test hook: forces failbit on the underlying stream, simulating an I/O
  /// failure in the middle of a write sequence.
  void poison_for_test() { out_.setstate(std::ios::failbit); }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
  bool closed_ = false;
  Status status_;
};

}  // namespace mcopt::util
