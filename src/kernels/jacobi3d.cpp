#include "kernels/jacobi3d.h"

#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/timer.h"

namespace mcopt::kernels {

void relax_line3d(double* dl, const double* sym, const double* syp,
                  const double* szm, const double* szp, const double* sl,
                  std::size_t n) noexcept {
  constexpr double kSixth = 1.0 / 6.0;
  for (std::size_t j = 1; j + 1 < n; ++j)
    dl[j] = (sym[j] + syp[j] + szm[j] + szp[j] + sl[j - 1] + sl[j + 1]) * kSixth;
}

seg::seg_array<double> make_jacobi3d_grid(std::size_t n,
                                          const seg::LayoutSpec& spec) {
  if (n < 3) throw std::invalid_argument("make_jacobi3d_grid: n < 3");
  return seg::seg_array<double>(std::vector<std::size_t>(n * n, n), spec);
}

void init_jacobi3d(seg::seg_array<double>& grid, std::size_t n) {
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y) {
      auto& row = grid.segment(z * n + y);
      const bool edge_row = z == 0 || z + 1 == n || y == 0 || y + 1 == n;
      for (std::size_t x = 0; x < n; ++x)
        row[x] = (edge_row || x == 0 || x + 1 == n) ? 1.0 : 0.0;
    }
}

double jacobi3d_sweep_seconds(const seg::seg_array<double>& src,
                              seg::seg_array<double>& dst, std::size_t n,
                              const sched::Schedule& schedule) {
  if (src.num_segments() != n * n || dst.num_segments() != n * n)
    throw std::invalid_argument("jacobi3d_sweep: grid/n mismatch");
#ifdef _OPENMP
  switch (schedule.kind) {
    case sched::ScheduleKind::kStatic:
      omp_set_schedule(omp_sched_static, 0);
      break;
    case sched::ScheduleKind::kStaticChunk:
      omp_set_schedule(omp_sched_static, static_cast<int>(schedule.chunk));
      break;
    case sched::ScheduleKind::kDynamic:
      omp_set_schedule(omp_sched_dynamic, static_cast<int>(schedule.chunk));
      break;
  }
#endif
  const auto interior = static_cast<std::ptrdiff_t>((n - 2) * (n - 2));
  util::Timer timer;
#pragma omp parallel for schedule(runtime)
  for (std::ptrdiff_t k = 0; k < interior; ++k) {
    const std::size_t z = static_cast<std::size_t>(k) / (n - 2) + 1;
    const std::size_t y = static_cast<std::size_t>(k) % (n - 2) + 1;
    relax_line3d(dst.segment(z * n + y).begin(),
                 src.segment(z * n + y - 1).begin(),
                 src.segment(z * n + y + 1).begin(),
                 src.segment((z - 1) * n + y).begin(),
                 src.segment((z + 1) * n + y).begin(),
                 src.segment(z * n + y).begin(), n);
  }
  return timer.seconds();
}

void jacobi3d_reference_sweep(const std::vector<double>& src,
                              std::vector<double>& dst, std::size_t n) {
  if (src.size() != n * n * n || dst.size() != n * n * n)
    throw std::invalid_argument("jacobi3d_reference_sweep: bad sizes");
  const auto at = [n](std::size_t x, std::size_t y, std::size_t z) {
    return (z * n + y) * n + x;
  };
  for (std::size_t z = 1; z + 1 < n; ++z)
    for (std::size_t y = 1; y + 1 < n; ++y)
      for (std::size_t x = 1; x + 1 < n; ++x)
        dst[at(x, y, z)] =
            (src[at(x, y - 1, z)] + src[at(x, y + 1, z)] + src[at(x, y, z - 1)] +
             src[at(x, y, z + 1)] + src[at(x - 1, y, z)] + src[at(x + 1, y, z)]) /
            6.0;
}

std::uint64_t jacobi3d_updates_per_sweep(std::size_t n) {
  const std::uint64_t m = n - 2;
  return m * m * m;
}

VirtualJacobi3d make_virtual_jacobi3d(trace::VirtualArena& arena, std::size_t n,
                                      const seg::LayoutSpec& spec) {
  if (n < 3) throw std::invalid_argument("make_virtual_jacobi3d: n < 3");
  const std::vector<std::size_t> rows(n * n, n);
  return VirtualJacobi3d{
      trace::VirtualSegArray(arena, rows, sizeof(double), spec),
      trace::VirtualSegArray(arena, rows, sizeof(double), spec), n};
}

Jacobi3dProgram::Jacobi3dProgram(const VirtualJacobi3d& grids,
                                 std::vector<sched::IterRange> row_chunks,
                                 unsigned sweeps)
    : source_(&grids.source),
      dest_(&grids.dest),
      n_(grids.n),
      chunks_(std::move(row_chunks)),
      sweeps_(sweeps) {
  if (n_ < 3) throw std::invalid_argument("Jacobi3dProgram: n < 3");
  reset();
}

void Jacobi3dProgram::reset() {
  sweep_ = 0;
  chunk_ = 0;
  iter_ = chunks_.empty() ? 0 : chunks_.front().begin;
  col_ = 1;
  phase_ = 0;
}

std::uint64_t Jacobi3dProgram::total_accesses() const {
  std::uint64_t rows = 0;
  for (const auto& c : chunks_) rows += c.size();
  return rows * (n_ - 2) * 7 * sweeps_;
}

std::size_t Jacobi3dProgram::next_batch(std::span<sim::Access> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (sweep_ >= sweeps_ || chunks_.empty()) break;
    const sched::IterRange& chunk = chunks_[chunk_];
    if (iter_ >= chunk.end) {
      if (++chunk_ >= chunks_.size()) {
        chunk_ = 0;
        if (++sweep_ >= sweeps_) break;
      }
      iter_ = chunks_[chunk_].begin;
      col_ = 1;
      phase_ = 0;
      continue;
    }
    const std::size_t z = iter_ / (n_ - 2) + 1;
    const std::size_t y = iter_ % (n_ - 2) + 1;

    sim::Access a;
    switch (phase_) {
      case 0:
        a = {src().address_of(row_id(z, y - 1), col_), sim::Op::kLoad, true, 0};
        break;
      case 1:
        a = {src().address_of(row_id(z, y + 1), col_), sim::Op::kLoad, false, 0};
        break;
      case 2:
        a = {src().address_of(row_id(z - 1, y), col_), sim::Op::kLoad, false, 0};
        break;
      case 3:
        a = {src().address_of(row_id(z + 1, y), col_), sim::Op::kLoad, false, 0};
        break;
      case 4:
        a = {src().address_of(row_id(z, y), col_ - 1), sim::Op::kLoad, false, 0};
        break;
      case 5:
        a = {src().address_of(row_id(z, y), col_ + 1), sim::Op::kLoad, false, 0};
        break;
      default:
        // Five adds + one multiply before the store retires.
        a = {dst().address_of(row_id(z, y), col_), sim::Op::kStore, false, 6};
        break;
    }
    out[produced++] = a;
    if (++phase_ == 7) {
      phase_ = 0;
      if (++col_ == n_ - 1) {
        col_ = 1;
        ++iter_;
      }
    }
  }
  return produced;
}

sim::Workload make_jacobi3d_workload(const VirtualJacobi3d& grids,
                                     unsigned num_threads,
                                     const sched::Schedule& schedule,
                                     unsigned sweeps) {
  const std::size_t rows = (grids.n - 2) * (grids.n - 2);
  sim::Workload workload;
  workload.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workload.push_back(std::make_unique<Jacobi3dProgram>(
        grids, sched::chunks_for_thread(rows, num_threads, t, schedule), sweeps));
  }
  return workload;
}

}  // namespace mcopt::kernels
