#include "runtime/executor/executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/jacobi.h"
#include "util/crc.h"

namespace mcopt::runtime::exec {
namespace {

using namespace std::chrono_literals;

ExecutorConfig base_config(unsigned workers = 1) {
  ExecutorConfig cfg;
  cfg.num_workers = workers;
  return cfg;
}

JobSpec triad_job(std::size_t n = 256, unsigned iterations = 2) {
  JobSpec j;
  j.kind = JobKind::kTriad;
  j.n = n;
  j.iterations = iterations;
  return j;
}

JobSpec jacobi_job(std::size_t n = 32, unsigned iterations = 1) {
  JobSpec j;
  j.kind = JobKind::kJacobi;
  j.n = n;
  j.iterations = iterations;
  return j;
}

/// Conservation invariant: one report per submission, each either completed
/// or carrying exactly one typed shed reason.
void expect_conserved(const Executor& ex) {
  const ExecutorStats stats = ex.stats();
  const auto reports = ex.reports();
  EXPECT_EQ(reports.size(), stats.submitted);
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  for (const JobReport& r : reports) {
    if (r.completed) {
      EXPECT_EQ(r.shed, ShedReason::kNone) << "job " << r.id;
      ++completed;
    } else {
      EXPECT_NE(r.shed, ShedReason::kNone) << "job " << r.id;
      ++shed;
    }
  }
  EXPECT_EQ(completed, stats.completed);
  std::uint64_t shed_total = 0;
  for (const std::uint64_t count : stats.shed) shed_total += count;
  EXPECT_EQ(shed, shed_total);
  EXPECT_EQ(completed + shed, stats.submitted);
}

/// Shed-lag bound: a completed job can miss its deadline by at most its own
/// service quote (it was dequeued with start < deadline); expired jobs are
/// shed without consuming bandwidth.
void expect_shed_lag_bound(const std::vector<JobReport>& reports) {
  for (const JobReport& r : reports) {
    if (r.missed_deadline())
      EXPECT_LE(r.finish - r.deadline, r.quote.service_cycles)
          << "job " << r.id;
    if (r.shed == ShedReason::kDeadlineExpiredInQueue)
      EXPECT_EQ(r.finish, r.start) << "job " << r.id;
  }
}

TEST(Executor, CompletesJobsAndConservesAccounting) {
  Executor ex(base_config(2));
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 8; ++i) {
    const auto r = ex.submit(triad_job());
    EXPECT_TRUE(r.accepted);
    expected_bytes += PricingModel::traffic_bytes(triad_job());
  }
  ex.shutdown(Executor::Drain::kDrain);

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 8u);
  arch::Cycles total_service = 0;
  for (const JobReport& r : reports) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.finish, r.start);
    EXPECT_EQ(r.finish - r.start, r.quote.service_cycles);
    EXPECT_EQ(r.iterations_done, 2u);
    total_service += r.quote.service_cycles;
  }
  // The bandwidth server serializes: the virtual clock advanced by exactly
  // the sum of the service quotes, regardless of worker count.
  EXPECT_EQ(ex.virtual_now(), total_service);
  EXPECT_EQ(ex.stats().goodput_bytes, expected_bytes);
  expect_conserved(ex);
}

TEST(Executor, RejectsJobsThatWouldMissTheirDeadline) {
  Executor ex(base_config(1));
  JobSpec job = triad_job();
  const auto quote = ex.pricing().price(job, {});
  ASSERT_TRUE(quote);
  job.deadline = quote.value().service_cycles / 2;  // cannot possibly make it
  const auto r = ex.submit(job);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.rejected, ShedReason::kWouldMissDeadline);
  ex.shutdown(Executor::Drain::kDrain);
  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].shed, ShedReason::kWouldMissDeadline);
  EXPECT_FALSE(reports[0].completed);
  expect_conserved(ex);
}

TEST(Executor, FullLaneRejectsWithTypedBackpressure) {
  ExecutorConfig cfg = base_config(1);
  cfg.lane_capacity = {2, 2, 2};
  Executor ex(cfg);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  JobSpec blocker = triad_job(64, 2);
  blocker.on_generation = [&](unsigned gen) {
    if (gen == 1) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  ASSERT_TRUE(ex.submit(blocker).accepted);
  while (!started.load()) std::this_thread::yield();

  // Worker is pinned inside the blocker: the normal lane (capacity 2) fills.
  EXPECT_TRUE(ex.submit(triad_job()).accepted);
  EXPECT_TRUE(ex.submit(triad_job()).accepted);
  const auto overflow = ex.submit(triad_job());
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.rejected, ShedReason::kQueueFull);
  // Other lanes are bounded independently.
  JobSpec high = triad_job();
  high.priority = Priority::kHigh;
  EXPECT_TRUE(ex.submit(high).accepted);

  release.store(true);
  ex.shutdown(Executor::Drain::kDrain);
  EXPECT_EQ(ex.stats().shed[static_cast<std::size_t>(ShedReason::kQueueFull)],
            1u);
  expect_conserved(ex);
}

TEST(Executor, ExpiredJobIsShedAtDequeueWithoutConsumingBandwidth) {
  Executor ex(base_config(1));

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  JobSpec blocker = triad_job(64, 2);
  blocker.on_generation = [&](unsigned gen) {
    if (gen == 1) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  const arch::Cycles blocker_service =
      ex.pricing().price(blocker, {}).value().service_cycles;
  ASSERT_TRUE(ex.submit(blocker).accepted);
  while (!started.load()) std::this_thread::yield();

  // Admitted with room to spare...
  JobSpec victim = triad_job(64, 2);
  victim.priority = Priority::kLow;
  const arch::Cycles victim_service =
      ex.pricing().price(victim, {}).value().service_cycles;
  JobSpec big = triad_job(64, 8);
  big.priority = Priority::kHigh;
  const arch::Cycles big_service =
      ex.pricing().price(big, {}).value().service_cycles;
  victim.deadline = blocker_service + victim_service + big_service / 2;
  const auto v = ex.submit(victim);
  EXPECT_TRUE(v.accepted);
  // ...then a high-priority job jumps the low lane and eats the budget.
  ASSERT_TRUE(ex.submit(big).accepted);

  release.store(true);
  ex.shutdown(Executor::Drain::kDrain);

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 3u);
  const JobReport& victim_rep = reports[1];  // sorted by id
  EXPECT_EQ(victim_rep.id, v.id);
  EXPECT_FALSE(victim_rep.completed);
  EXPECT_EQ(victim_rep.shed, ShedReason::kDeadlineExpiredInQueue);
  EXPECT_EQ(victim_rep.finish, victim_rep.start);  // no bandwidth burned
  EXPECT_TRUE(reports[0].completed);
  EXPECT_TRUE(reports[2].completed);
  expect_shed_lag_bound(reports);
  expect_conserved(ex);
}

TEST(Executor, ShutdownShedQueuedReportsEveryQueuedJobTyped) {
  Executor ex(base_config(1));
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  JobSpec blocker = triad_job(64, 2);
  blocker.on_generation = [&](unsigned gen) {
    if (gen == 1) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  ASSERT_TRUE(ex.submit(blocker).accepted);
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ex.submit(triad_job()).accepted);

  std::thread releaser([&] {
    std::this_thread::sleep_for(50ms);
    release.store(true);
  });
  ex.shutdown(Executor::Drain::kShedQueued);  // sheds the 3 queued jobs NOW
  releaser.join();

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_TRUE(reports[0].completed);  // the blocker ran to completion
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(reports[i].completed);
    EXPECT_EQ(reports[i].shed, ShedReason::kShutdown);
  }
  expect_conserved(ex);
}

TEST(Executor, SubmitAfterShutdownRejectsTyped) {
  Executor ex(base_config(1));
  ex.shutdown(Executor::Drain::kDrain);
  const auto r = ex.submit(triad_job());
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.rejected, ShedReason::kShutdown);
  expect_conserved(ex);
}

TEST(Executor, MidStormOutageDegradesCapacityAndBreakerOutlivesDiagnosis) {
  ExecutorConfig cfg = base_config(1);
  cfg.lane_capacity = {8, 64, 8};
  // Deterministic closed loop: no jitter anywhere, replan debounce fast.
  cfg.detector.backoff = {.initial = 1000, .multiplier = 2.0, .cap = 64000,
                          .jitter = 0.0};
  // Breaker hold far longer than the whole run: after the diagnosis clears,
  // the controller must STILL be excluded from admission pricing.
  cfg.breaker = {.initial = 1'000'000'000, .multiplier = 2.0,
                 .cap = 4'000'000'000, .jitter = 0.0};

  const PricingModel pricing(cfg.pricing);
  const JobSpec probe = jacobi_job();
  const arch::Cycles service =
      pricing.price(probe, {}).value().service_cycles;
  // mc1 dies while jobs ~3..12 are in service, then recovers.
  sim::FaultSchedule::Interval outage;
  outage.fault.offline_controllers = {1};
  outage.begin = 2 * service + 1;
  outage.end = 12 * service;
  cfg.truth.intervals.push_back(outage);

  Executor ex(cfg);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(ex.submit(jacobi_job()).accepted);
  ex.shutdown(Executor::Drain::kDrain);

  const ExecutorStats stats = ex.stats();
  EXPECT_EQ(stats.completed, 40u);          // degraded, not dropped
  EXPECT_GE(stats.replans, 2u);             // into the storm and back out
  EXPECT_GE(stats.breaker_trips, 1u);
  // The supervisor walked the diagnosis back to healthy after the storm...
  EXPECT_FALSE(ex.believed_fault().is_offline(1));
  // ...but the circuit breaker still holds mc1 out of admission pricing.
  const arch::Cycles now = ex.virtual_now();
  const auto broken = ex.broken_controllers(now);
  ASSERT_EQ(broken.size(), 1u);
  EXPECT_EQ(broken[0], 1u);
  EXPECT_TRUE(ex.effective_fault(now).is_offline(1));

  // Queued jobs were re-priced onto the surviving set during the storm.
  const auto reports = ex.reports();
  bool saw_degraded_plan = false;
  for (const JobReport& r : reports)
    if (r.quote.plan_set.size() == 3) saw_degraded_plan = true;
  EXPECT_TRUE(saw_degraded_plan);
  expect_conserved(ex);
}

// --- cancellation: bit-identity with the last completed generation --------

std::uint32_t grid_crc(const seg::seg_array<double>& g) {
  util::Crc32c crc;
  for (std::size_t i = 0; i < g.num_segments(); ++i)
    crc.update(g.segment(i).begin(), g.segment(i).size() * sizeof(double));
  return crc.value();
}

/// Independent re-implementation of the executor's Jacobi body: the field
/// CRC after `sweeps` completed generations (FIELD_CRC convention of the
/// integrity layer).
std::uint32_t reference_jacobi_crc(std::size_t n, unsigned sweeps) {
  const seg::LayoutSpec spec = kernels::jacobi_plain_spec();
  seg::seg_array<double> g1 = kernels::make_jacobi_grid(n, spec);
  seg::seg_array<double> g2 = kernels::make_jacobi_grid(n, spec);
  kernels::init_jacobi(g1);
  kernels::init_jacobi(g2);
  seg::seg_array<double>* cur = &g1;
  seg::seg_array<double>* nxt = &g2;
  for (unsigned s = 0; s < sweeps; ++s) {
    for (std::size_t i = 1; i + 1 < n; ++i)
      kernels::relax_line(nxt->segment(i).begin(), cur->segment(i - 1).begin(),
                          cur->segment(i + 1).begin(), cur->segment(i).begin(),
                          n);
    std::swap(cur, nxt);
  }
  return grid_crc(*cur);
}

TEST(Cancellation, HookCancelMidSweepLeavesFieldAtLastCompletedGeneration) {
  Executor ex(base_config(1));
  std::atomic<std::uint64_t> id{0};
  std::atomic<bool> id_set{false};
  JobSpec job = jacobi_job(24, 10);
  job.on_generation = [&](unsigned gen) {
    if (gen == 3) {
      while (!id_set.load()) std::this_thread::yield();
      EXPECT_TRUE(ex.cancel(id.load()));
    }
  };
  const auto r = ex.submit(job);
  ASSERT_TRUE(r.accepted);
  id.store(r.id);
  id_set.store(true);
  ex.shutdown(Executor::Drain::kDrain);

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 1u);
  const JobReport& rep = reports[0];
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.shed, ShedReason::kCancelled);
  // Cancellation was observed mid-sweep 4 (row granularity): the field is
  // bit-identical to generation 3, the last one that completed.
  EXPECT_EQ(rep.iterations_done, 3u);
  EXPECT_EQ(rep.field_crc, reference_jacobi_crc(24, 3));
}

TEST(Cancellation, AsyncCancelFieldMatchesReferenceAtIterationsDone) {
  Executor ex(base_config(1));
  const auto r = ex.submit(jacobi_job(96, 200));
  ASSERT_TRUE(r.accepted);
  std::this_thread::sleep_for(3ms);
  (void)ex.cancel(r.id);  // may land anywhere, even after completion
  ex.shutdown(Executor::Drain::kDrain);

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 1u);
  const JobReport& rep = reports[0];
  if (rep.completed) EXPECT_EQ(rep.iterations_done, 200u);
  // Wherever the cancel landed, the field is bit-identical to the last
  // completed generation — never a half-written grid.
  EXPECT_EQ(rep.field_crc, reference_jacobi_crc(96, rep.iterations_done));
}

TEST(Cancellation, CancelWhileQueuedShedsWithoutRunning) {
  Executor ex(base_config(1));
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  JobSpec blocker = triad_job(64, 2);
  blocker.on_generation = [&](unsigned gen) {
    if (gen == 1) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  ASSERT_TRUE(ex.submit(blocker).accepted);
  while (!started.load()) std::this_thread::yield();

  const auto victim = ex.submit(jacobi_job());
  ASSERT_TRUE(victim.accepted);
  EXPECT_TRUE(ex.cancel(victim.id));
  release.store(true);
  ex.shutdown(Executor::Drain::kDrain);

  const auto reports = ex.reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[1].shed, ShedReason::kCancelled);
  EXPECT_EQ(reports[1].iterations_done, 0u);
  EXPECT_EQ(reports[1].field_crc, 0u);  // body never started
  expect_conserved(ex);
}

TEST(Cancellation, UnknownOrFinishedIdsReturnFalse) {
  Executor ex(base_config(1));
  EXPECT_FALSE(ex.cancel(12345));
  const auto r = ex.submit(triad_job());
  ASSERT_TRUE(r.accepted);
  ex.shutdown(Executor::Drain::kDrain);
  EXPECT_FALSE(ex.cancel(r.id));  // already finalized
}

// --- supervisor ingestion: the single-consumer contract under threads -----

TEST(SupervisorIngest, ConcurrentWorkersFeedThroughTheIngestionQueue) {
  // Four workers complete jobs concurrently; every sample flows through the
  // ingestion queue and is drained by whichever worker holds the control
  // mutex. If any worker called observe() re-entrantly the supervisor would
  // throw std::logic_error (terminating the worker => this test crashes);
  // under -DMCOPT_TSAN=ON this is also the data-race proof for the path.
  ExecutorConfig cfg = base_config(4);
  cfg.lane_capacity = {16, 256, 16};  // room for the whole burst
  Executor ex(cfg);
  for (int i = 0; i < 120; ++i) ASSERT_TRUE(ex.submit(jacobi_job(8, 1)).accepted);
  ex.shutdown(Executor::Drain::kDrain);
  EXPECT_EQ(ex.stats().completed, 120u);
  expect_conserved(ex);
}

TEST(SupervisorIngest, DirectConcurrentObserveTripsTheGuard) {
  // What the contract forbids: worker threads calling observe() directly.
  // The guard must catch overlapping entries (std::logic_error) before any
  // state is touched, instead of silently corrupting the debounce window.
  Supervisor sup(DetectorConfig{}, arch::InterleaveSpec{}, 1);
  Sample sample;
  sample.begin = 0;
  sample.end = 1000;
  sample.mc_utilization = {1.0, 1.0, 1.0, 1.0};

  // The guarded window is a handful of instructions in a release build: on
  // a single core an overlap needs the OS to preempt a thread *inside*
  // observe(), so one fixed-size hammer round is probabilistic. Repeat
  // rounds under a wall-clock bound until the guard trips — each round has
  // a decent trip chance, so the bound is effectively never reached.
  std::atomic<int> tripped{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (tripped.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
      threads.emplace_back([&] {
        for (int i = 0; i < 20000; ++i) {
          try {
            (void)sup.observe(sample);
          } catch (const std::logic_error&) {
            tripped.fetch_add(1, std::memory_order_relaxed);
          }
          if (tripped.load(std::memory_order_relaxed) > 0) return;
        }
      });
    for (auto& t : threads) t.join();
  }
  EXPECT_GT(tripped.load(), 0);
}

TEST(SupervisorIngest, SerializedAlternatingCallersNeverTrip) {
  // Properly serialized callers from different threads are fine: the guard
  // flag's acquire/release pair publishes the supervisor state between them.
  Supervisor sup(DetectorConfig{}, arch::InterleaveSpec{}, 1);
  Sample sample;
  sample.begin = 0;
  sample.end = 1000;
  sample.mc_utilization = {1.0, 1.0, 1.0, 1.0};

  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;
  auto runner = [&](int me) {
    for (int round = 0; round < 50; ++round) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return turn % 2 == me; });
      EXPECT_NO_THROW((void)sup.observe(sample));
      ++turn;
      cv.notify_all();
    }
  };
  std::thread a(runner, 0);
  std::thread b(runner, 1);
  a.join();
  b.join();
}

}  // namespace
}  // namespace mcopt::runtime::exec
