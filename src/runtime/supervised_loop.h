#pragma once
// Supervised kernel loops: iterate -> sample -> (maybe) migrate -> continue.
//
// A supervised loop splits a multi-sweep kernel run into slices of one sweep
// each, runs every slice on the DES with the remaining portion of the
// transient-fault schedule (FaultSchedule::shifted by the cycles already
// consumed), and feeds the slice's per-controller utilization to a
// runtime::Supervisor. When the supervisor proposes a replan, the loop
// computes the candidate layout with the paper's analytic planner
// (seg::plan_stream_offsets / plan_row_layout over the diagnosed healthy
// set), prices the migration (copying the live arrays at the post-migration
// bandwidth), and migrates only when the projected savings over the
// remaining sweeps clear the cost by a safety margin. Migration cost is
// charged to the loop's cycle count, so supervised results are directly
// comparable to unsupervised ones.
//
// When the slice reports corrupted reads (the fault schedule carries a
// mc<i>:flip=<r> entry), the supervisor orders a scrub instead: the loop
// charges one full checksum-verify pass over the live arrays at the current
// analytic bandwidth — the simulated counterpart of SegmentGuard::verify +
// rebuild on the native kernels — and counts it in LoopResult::scrubs.
//
// With `supervise = false` the same slicing runs with the supervisor
// bypassed — the fair baseline for "does self-healing pay for itself".
//
// Note one asymmetry with the node-level loop (numa_loop.h): this chip
// supervisor recovers from transient faults *passively*. A derated or
// offline controller keeps receiving its interleave share after the replan
// (lines remap but the interleave still addresses it), so when the fault
// clears, fresh per-controller telemetry shows it and the supervisor can
// replan back without any probing machinery. A quarantined *socket* gets
// zero traffic once its jobs migrate away — no telemetry, no passive
// rediscovery — which is why active probing, staged re-admission, and the
// circuit-breaker hysteresis (DESIGN.md §4k) live only at node scope.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/supervisor.h"
#include "sched/schedule.h"
#include "seg/layout.h"
#include "sim/chip.h"
#include "trace/virtual_arena.h"
#include "util/expected.h"

namespace mcopt::runtime {

struct LoopConfig {
  /// Simulator configuration; `fault_schedule` must be resolved (no percent
  /// bounds) and is interpreted on the loop's global cycle timeline.
  sim::SimConfig sim{};
  unsigned threads = 64;
  /// Number of kernel sweeps == number of slices (one sweep per slice).
  unsigned slices = 16;
  /// false = unsupervised baseline: identical slicing, never migrates.
  bool supervise = true;
  DetectorConfig detector{};
  /// Migrate only when projected_savings * migration_safety >= migration
  /// cost. Lower is more conservative; 0 disables migration entirely.
  double migration_safety = 0.5;
  /// Seeds the supervisor's backoff jitter.
  std::uint64_t seed = 0;

  [[nodiscard]] util::Status check() const;
};

/// One committed migration.
struct ReplanRecord {
  arch::Cycles at = 0;  ///< global cycle the migration completed
  std::vector<unsigned> plan_set;
  /// Stream bases after the migration (triad: A,B,C,D; Jacobi: the first
  /// interior source-row bases, one per concurrent thread).
  std::vector<arch::Addr> bases;
  arch::Cycles migration_cycles = 0;
};

struct LoopResult {
  arch::Cycles total_cycles = 0;      ///< kernel + migration cycles
  arch::Cycles migration_cycles = 0;  ///< migration share of total_cycles
  std::uint64_t bytes = 0;            ///< kernel memory traffic (both dirs)
  double seconds = 0.0;
  double bandwidth = 0.0;  ///< bytes / seconds, migration time included
  unsigned replans = 0;    ///< committed migrations
  unsigned suppressed = 0; ///< proposals swallowed by backoff
  unsigned declined = 0;   ///< proposals failing the break-even gate
  unsigned scrubs = 0;     ///< integrity scrubs ordered by the supervisor
  arch::Cycles scrub_cycles = 0;  ///< verify-pass share of total_cycles
  /// Fault state the supervisor believes at the end of the run (healthy for
  /// unsupervised loops).
  sim::FaultSpec final_diagnosis;
  std::vector<double> final_mc_utilization;
  std::vector<ReplanRecord> replan_log;
  /// Final stream bases (triad) / first interior row bases (Jacobi).
  std::vector<arch::Addr> final_bases;
  /// Controller-utilization timeline stitched across slices onto the global
  /// loop timeline (rows only when LoopConfig::sim.mc_sample_cadence != 0).
  /// Migration and scrub charges appear as gaps between slice rows.
  obs::McTimeline mc_timeline;
  bool mc_timeline_truncated = false;
};

/// Supervised Schönauer triad A = B + C*D over `cfg.slices` sweeps starting
/// from the given array bases (order A,B,C,D). Migrations re-allocate the
/// arrays in `arena` at planner offsets over the diagnosed healthy set and
/// charge the copy (B,C,D read+write at the post-migration bandwidth; A is
/// overwritten every sweep and needs no copy).
[[nodiscard]] LoopResult run_supervised_triad(trace::VirtualArena& arena,
                                              std::vector<arch::Addr> bases,
                                              std::size_t n,
                                              const LoopConfig& cfg);

/// Supervised Jacobi relaxation on an n x n grid (fig6 path), starting from
/// `initial_spec` row layout. Migrations rebuild both toggle grids under
/// seg::plan_row_layout over the diagnosed healthy set and charge the copy
/// of both grids. The "static,1" schedule of the paper's optimal Jacobi
/// configuration is applied per slice.
[[nodiscard]] LoopResult run_supervised_jacobi(trace::VirtualArena& arena,
                                               std::size_t n,
                                               const seg::LayoutSpec& initial_spec,
                                               const LoopConfig& cfg);

}  // namespace mcopt::runtime
