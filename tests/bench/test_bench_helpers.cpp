// The bench helpers must honor the SimConfig they are handed: degraded-chip
// numbers must differ from healthy-chip numbers, so a bench that parses
// --fault but forgets to thread its cfg through can't silently report
// healthy bandwidth under a "DEGRADED" header.

#include "bench/common.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mcopt::bench {
namespace {

constexpr std::size_t kN = 4096;

// The CI smoke scenario: one channel dead, one at half rate. At offset 0 all
// page-aligned bases map to controller 0, whose traffic remaps to the
// derated controller 1 — the degraded number must drop.
sim::SimConfig degraded_config() {
  sim::SimConfig cfg;
  cfg.faults = sim::FaultSpec::parse("mc0:off,mc1:derate=0.5").value();
  cfg.faults.check(cfg.interleave).throw_if_failed();
  return cfg;
}

TEST(BenchHelpers, StreamReportedHonorsFaults) {
  const double healthy =
      stream_reported_gbs(kernels::StreamOp::kTriad, kN, 0, 16);
  const double degraded = stream_reported_gbs(kernels::StreamOp::kTriad, kN, 0,
                                              16, degraded_config());
  EXPECT_LT(degraded, healthy);
}

TEST(BenchHelpers, StreamAnalyticHonorsFaults) {
  const double healthy =
      stream_analytic_gbs(kernels::StreamOp::kTriad, kN, 0, 64);
  const double degraded = stream_analytic_gbs(kernels::StreamOp::kTriad, kN, 0,
                                              64, degraded_config());
  EXPECT_LT(degraded, healthy);
}

TEST(BenchHelpers, TriadActualHonorsFaults) {
  // Spread bases (one array per controller): the healthy chip serves them in
  // parallel, so losing mc0 and halving mc1 must cost bandwidth. (A fully
  // aliased layout is bank-conflict-bound and not monotone under faults.)
  trace::VirtualArena arena;
  std::vector<arch::Addr> bases;
  for (arch::Addr k = 0; k < 4; ++k)
    bases.push_back(arena.allocate(kN * 8 + 512, 8192) + k * 128);
  const double healthy = triad_actual_gbs(bases, kN, 16);
  const double degraded = triad_actual_gbs(bases, kN, 16, degraded_config());
  EXPECT_LT(degraded, healthy);
}

TEST(BenchHelpers, CheckedRateRejectsPoison) {
  EXPECT_THROW(checked_rate(std::numeric_limits<double>::quiet_NaN(), "x"),
               std::runtime_error);
  EXPECT_THROW(checked_rate(std::numeric_limits<double>::infinity(), "x"),
               std::runtime_error);
  EXPECT_THROW(checked_rate(-1.0, "x"), std::runtime_error);
  EXPECT_DOUBLE_EQ(checked_rate(3.7, "x"), 3.7);
}

}  // namespace
}  // namespace mcopt::bench
