#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace mcopt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_group(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? 0ULL - static_cast<unsigned long long>(v)
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

std::string fmt_bytes(unsigned long long bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu B", bytes);
  else
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  return buf;
}

std::string fmt_bandwidth(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_second / 1e9);
  return buf;
}

}  // namespace mcopt::util
