// Google-benchmark microbenchmarks of the seg_array abstractions on the
// host: the per-operation cost behind Fig. 5. Compares raw loops, segmented
// hierarchical algorithms, and the (intentionally slower, paper Sect. 2.2)
// flat bidirectional iterator.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "kernels/triad.h"
#include "seg/algorithms.h"
#include "seg/seg_array.h"

namespace {

using namespace mcopt;

seg::LayoutSpec spec512() {
  seg::LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  return spec;
}

void BM_RawAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 1.0);
  for (auto _ : state) {
    double sum = std::accumulate(v.begin(), v.end(), 0.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
}
BENCHMARK(BM_RawAccumulate)->Range(1 << 10, 1 << 20);

void BM_SegmentedAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = seg::seg_array<double>::even(n, 16, spec512());
  seg::fill(arr.begin(), arr.end(), 1.0);
  for (auto _ : state) {
    double sum = seg::accumulate(arr.begin(), arr.end(), 0.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
}
BENCHMARK(BM_SegmentedAccumulate)->Range(1 << 10, 1 << 20);

void BM_FlatIteratorAccumulate(benchmark::State& state) {
  // The paper discourages the flat iterator in hot loops ("because of the
  // required conditional branches in operator++"); this quantifies why.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = seg::seg_array<double>::even(n, 16, spec512());
  seg::fill(arr.begin(), arr.end(), 1.0);
  for (auto _ : state) {
    double sum = 0.0;
    for (auto it = arr.begin(); it != arr.end(); ++it) sum += *it;
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
}
BENCHMARK(BM_FlatIteratorAccumulate)->Range(1 << 10, 1 << 20);

void BM_RawTriad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n, 1.0), c(n, 2.0), d(n, 3.0);
  for (auto _ : state) {
    kernels::triad_local(a.data(), b.data(), c.data(), d.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 40));
}
BENCHMARK(BM_RawTriad)->Range(1 << 10, 1 << 20);

void BM_SegmentedTriad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = seg::seg_array<double>::even(n, 16, spec512());
  auto b = seg::seg_array<double>::even(n, 16, spec512());
  auto c = seg::seg_array<double>::even(n, 16, spec512());
  auto d = seg::seg_array<double>::even(n, 16, spec512());
  seg::fill(b.begin(), b.end(), 1.0);
  seg::fill(c.begin(), c.end(), 2.0);
  seg::fill(d.begin(), d.end(), 3.0);
  for (auto _ : state) {
    kernels::triad(a.begin(), a.end(), b.begin(), c.begin(), d.begin());
    benchmark::DoNotOptimize(&a);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 40));
}
BENCHMARK(BM_SegmentedTriad)->Range(1 << 10, 1 << 20);

void BM_SegmentedCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto src = seg::seg_array<double>::even(n, 16, spec512());
  std::vector<double> dst(n);
  seg::fill(src.begin(), src.end(), 4.0);
  for (auto _ : state) {
    seg::copy(src.begin(), src.end(), dst.begin());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 16));
}
BENCHMARK(BM_SegmentedCopy)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
