// Chip-level properties under non-default interleavings: the simulator and
// planner must generalize beyond the T2's exact bit positions.

#include <gtest/gtest.h>

#include "seg/planner.h"
#include "sim/chip.h"
#include "trace/stream_program.h"

namespace mcopt::sim {
namespace {

double balanced_read_bw(const arch::InterleaveSpec& spec) {
  SimConfig cfg;
  cfg.interleave = spec;
  cfg.topology.l2.line_bytes = spec.line_size();
  const arch::AddressMap map(spec);
  const seg::StreamPlan plan = seg::plan_stream_offsets(spec.num_controllers(), map);
  Workload wl;
  const std::size_t n = 1 << 14;
  for (unsigned t = 0; t < 32; ++t) {
    std::vector<trace::StreamDesc> streams;
    for (std::size_t k = 0; k < spec.num_controllers(); ++k) {
      streams.push_back({(arch::Addr{1} << 32) +
                             (t * spec.num_controllers() + k) * (arch::Addr{1} << 22) +
                             plan.offsets[k],
                         false, 0});
    }
    wl.push_back(std::make_unique<trace::LockstepStreamProgram>(
        streams, sizeof(double), std::vector<sched::IterRange>{{0, n}}, 1));
  }
  Chip chip(cfg, arch::equidistant_placement(32, cfg.topology));
  return chip.run(wl).memory_bandwidth();
}

TEST(ChipInterleave, MoreControllersMoreBandwidth) {
  const double two = balanced_read_bw(arch::InterleaveSpec{6, 1, 1});
  const double four = balanced_read_bw(arch::InterleaveSpec{6, 1, 2});
  const double eight = balanced_read_bw(arch::InterleaveSpec{6, 1, 3});
  // 2 -> 4 controllers relieves a service bottleneck; beyond that the
  // 32-thread concurrency (latency) bound binds, so 8 controllers may not
  // help — but must never hurt.
  EXPECT_GT(four, 1.4 * two);
  EXPECT_GE(eight, 0.9 * four);
}

TEST(ChipInterleave, LineSizeMismatchRejected) {
  SimConfig cfg;
  cfg.interleave = arch::InterleaveSpec{7, 1, 2};  // 128 B lines, L2 still 64 B
  arch::Placement p = arch::equidistant_placement(1, cfg.topology);
  EXPECT_THROW(Chip(cfg, p), std::invalid_argument);
}

TEST(ChipInterleave, WiderLinesWork) {
  arch::InterleaveSpec spec{7, 1, 2};  // 128 B lines
  SimConfig cfg;
  cfg.interleave = spec;
  cfg.topology.l2.line_bytes = 128;
  Workload wl;
  std::vector<trace::StreamDesc> s{{arch::Addr{1} << 32, false, 0}};
  wl.push_back(std::make_unique<trace::LockstepStreamProgram>(
      s, sizeof(double), std::vector<sched::IterRange>{{0, 4096}}, 1));
  Chip chip(cfg, arch::equidistant_placement(1, cfg.topology));
  const SimResult res = chip.run(wl);
  // One L2 miss per 128 B line: 4096 * 8 / 128.
  EXPECT_EQ(res.l2.misses, 4096u * 8 / 128);
  EXPECT_EQ(res.mem_read_bytes, res.l2.misses * 128);
}

}  // namespace
}  // namespace mcopt::sim
