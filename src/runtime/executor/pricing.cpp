#include "runtime/executor/pricing.h"

#include <cmath>
#include <stdexcept>

#include "kernels/triad.h"
#include "seg/planner.h"

namespace mcopt::runtime::exec {
namespace {

/// Logical operand streams of a kind: count and which are written.
struct StreamShape {
  std::size_t num_streams;
  std::size_t write_index;  // exactly one written stream per kernel
};

StreamShape shape_of(JobKind kind) {
  switch (kind) {
    case JobKind::kTriad:
      return {4, 0};  // A = B + C*D: A written, B/C/D read
    case JobKind::kJacobi:
      return {2, 1};  // src read, dst written
    case JobKind::kLbm:
      return {2, 1};  // f_src read, f_dst written
  }
  throw std::invalid_argument("pricing: unknown job kind");
}

}  // namespace

PricingModel::PricingModel(PricingConfig cfg) : cfg_(cfg) {
  if (!(cfg_.clock_ghz > 0.0))
    throw std::invalid_argument("PricingModel: clock_ghz must be positive");
  if (cfg_.pricing_threads == 0)
    throw std::invalid_argument("PricingModel: pricing_threads must be >= 1");
}

std::uint64_t PricingModel::traffic_bytes(const JobSpec& job) {
  const auto n = static_cast<std::uint64_t>(job.n);
  const auto iters = static_cast<std::uint64_t>(job.iterations);
  switch (job.kind) {
    case JobKind::kTriad:
      // 3 reads + RFO + write-back = 5 words per element (Fig. 4 convention).
      return kernels::triad_actual_bytes(job.n) * iters;
    case JobKind::kJacobi:
      // Per updated cell of the n x n grid: source read + destination
      // RFO + write-back = 3 doubles. (Stencil neighbours come from cache;
      // the self-consistent convention counts each grid once per sweep.)
      return 24 * n * n * iters;
    case JobKind::kLbm:
      // D3Q19 on an n^3 box: 19 distributions read, 19 written with RFO
      // = 57 doubles = 456 B per cell-step.
      return 456 * n * n * n * iters;
  }
  throw std::invalid_argument("pricing: unknown job kind");
}

util::Expected<sim::AnalyticEstimate> PricingModel::estimate(
    JobKind kind, const sim::FaultSpec& faults) const {
  using Result = util::Expected<sim::AnalyticEstimate>;
  const std::vector<unsigned> surviving =
      faults.surviving_controllers(cfg_.map.spec());
  if (surviving.empty())
    return Result::failure(
        "pricing: no surviving memory controller to plan a layout on");

  const StreamShape shape = shape_of(kind);
  try {
    const seg::StreamPlan plan =
        seg::plan_stream_offsets(shape.num_streams, cfg_.map, surviving);
    std::vector<sim::AnalyticStream> logical;
    logical.reserve(shape.num_streams);
    for (std::size_t k = 0; k < shape.num_streams; ++k)
      logical.push_back({(arch::Addr{1} << 32) + plan.offsets[k],
                         k == shape.write_index});
    return sim::estimate_bandwidth(sim::expand_rfo(logical),
                                   cfg_.pricing_threads, cfg_.calibration,
                                   cfg_.map, cfg_.clock_ghz, faults);
  } catch (const std::invalid_argument& e) {
    return Result::failure(std::string("pricing: ") + e.what());
  }
}

util::Expected<sim::NodeEstimate> PricingModel::estimate_node(
    JobKind kind, const arch::NodeTopology& node,
    const sim::FaultSpec& faults) const {
  using Result = util::Expected<sim::NodeEstimate>;
  const std::vector<unsigned> memory = faults.surviving_sockets(node.num_sockets);
  if (memory.empty())
    return Result::failure(
        "pricing: no surviving socket memory to plan a layout on");

  std::vector<unsigned> compute(node.num_sockets);
  for (unsigned s = 0; s < node.num_sockets; ++s) compute[s] = s;
  const StreamShape shape = shape_of(kind);
  try {
    const seg::NodeStreamPlan plan = seg::plan_node_stream_shards(
        shape.num_streams, cfg_.map, node, compute, memory);
    std::vector<std::vector<sim::AnalyticStream>> streams(node.num_sockets);
    std::vector<unsigned> strands(node.num_sockets, cfg_.pricing_threads);
    for (const seg::NodeStreamPlan::Shard& shard : plan.shards) {
      std::vector<sim::AnalyticStream> logical;
      logical.reserve(shard.bases.size());
      for (std::size_t k = 0; k < shard.bases.size(); ++k)
        logical.push_back({shard.bases[k], k == shape.write_index});
      streams[shard.compute_socket] = sim::expand_rfo(logical);
    }
    return Result(sim::estimate_node_bandwidth(streams, strands,
                                               cfg_.calibration, cfg_.map, node,
                                               cfg_.clock_ghz, faults));
  } catch (const std::invalid_argument& e) {
    return Result::failure(std::string("pricing: ") + e.what());
  }
}

util::Expected<Quote> PricingModel::price_node(
    const JobSpec& job, const arch::NodeTopology& node,
    const sim::FaultSpec& faults) const {
  const auto est = estimate_node(job.kind, node, faults);
  if (!est) return util::Expected<Quote>::failure(est.error().message);
  if (!(est.value().bandwidth > 0.0))
    return util::Expected<Quote>::failure(
        "pricing: node analytic model returned non-positive bandwidth");

  Quote q;
  q.bandwidth = est.value().bandwidth;
  q.bytes = traffic_bytes(job);
  q.service_cycles = static_cast<arch::Cycles>(std::ceil(
      static_cast<double>(q.bytes) / q.bandwidth * clock_hz()));
  if (q.service_cycles == 0) q.service_cycles = 1;  // nothing is free
  q.plan_set = faults.surviving_sockets(node.num_sockets);
  return q;
}

util::Expected<Quote> PricingModel::price(const JobSpec& job,
                                          const sim::FaultSpec& faults) const {
  const auto est = estimate(job.kind, faults);
  if (!est) return util::Expected<Quote>::failure(est.error().message);
  if (!(est.value().bandwidth > 0.0))
    return util::Expected<Quote>::failure(
        "pricing: analytic model returned non-positive bandwidth");

  Quote q;
  q.bandwidth = est.value().bandwidth;
  q.bytes = traffic_bytes(job);
  q.service_cycles = static_cast<arch::Cycles>(std::ceil(
      static_cast<double>(q.bytes) / q.bandwidth * clock_hz()));
  if (q.service_cycles == 0) q.service_cycles = 1;  // nothing is free
  q.plan_set = faults.surviving_controllers(cfg_.map.spec());
  return q;
}

double PricingModel::roofline_bandwidth(JobKind kind) const {
  JobSpec probe;
  probe.kind = kind;
  probe.n = 4096;
  probe.iterations = 1;
  // Healthy fault state: every controller survives, planned offsets spread
  // the kernel's streams across all of them.
  return price(probe, sim::FaultSpec{}).value().bandwidth;
}

}  // namespace mcopt::runtime::exec
