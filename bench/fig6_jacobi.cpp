// Fig. 6 reproduction: 2D Jacobi five-point relaxation performance
// (MLUPs/s) versus problem size N for 8..64 threads with the optimal layout
// (rows aligned to 512 B, cumulative 128 B shift, OpenMP "static,1"), plus
// the unoptimized 64-thread baseline.
//
// Paper shape (Sect. 2.3): the optimized curves are smooth in N and scale
// with the thread count towards ~600 MLUPs/s; the plain 64-thread curve
// shows the usual period-64/32 collapses. The optimal parameters are
// derived analytically by the planner — no trial and error.

#include "common.h"
#include "runtime/supervised_loop.h"

namespace {

// --schedule mode: the fig6 path becomes a supervised loop. Runs the
// optimal-layout Jacobi for --sweeps sweeps under the transient-fault
// schedule, with and without the self-healing supervisor, and reports both
// (migration cost is charged in cycles, so the comparison is end-to-end).
int run_supervised_mode(const mcopt::util::Cli& cli,
                        const mcopt::seg::LayoutSpec& optimal) {
  using namespace mcopt;
  const auto n = static_cast<std::size_t>(cli.get_int("max-n"));
  const auto sweeps = static_cast<unsigned>(cli.get_int("sweeps"));
  constexpr unsigned kThreads = 64;

  runtime::LoopConfig lc;
  lc.threads = kThreads;
  lc.slices = sweeps;

  // Percent-relative schedule bounds resolve against an estimated horizon:
  // one probed unsupervised sweep times the sweep count.
  runtime::LoopConfig probe = lc;
  probe.slices = 1;
  probe.supervise = false;
  trace::VirtualArena probe_arena;
  const auto one = runtime::run_supervised_jacobi(probe_arena, n, optimal, probe);
  lc.sim.fault_schedule = bench::parse_schedule_knob(
      cli.get_str("schedule"), lc.sim, one.total_cycles * sweeps);

  trace::VirtualArena sup_arena;
  lc.supervise = true;
  const auto sup = runtime::run_supervised_jacobi(sup_arena, n, optimal, lc);
  trace::VirtualArena unsup_arena;
  lc.supervise = false;
  const auto unsup = runtime::run_supervised_jacobi(unsup_arena, n, optimal, lc);

  const double updates =
      static_cast<double>(trace::jacobi_updates_per_sweep(n)) * sweeps;
  const double sup_mlups = bench::checked_rate(updates / sup.seconds / 1e6,
                                               "supervised Jacobi MLUPs");
  const double unsup_mlups = bench::checked_rate(updates / unsup.seconds / 1e6,
                                                 "unsupervised Jacobi MLUPs");
  std::printf(
      "# supervised Jacobi, N=%zu, %u threads, %u sweeps\n"
      "# schedule: %s\n\n"
      "supervised    %.1f MLUPs/s  (replans=%u suppressed=%u declined=%u, "
      "migration %.1f%% of cycles)\n"
      "unsupervised  %.1f MLUPs/s\n"
      "recovery ratio %.3fx, final diagnosis: %s\n",
      n, kThreads, sweeps, lc.sim.fault_schedule.describe().c_str(), sup_mlups,
      sup.replans, sup.suppressed, sup.declined,
      100.0 * static_cast<double>(sup.migration_cycles) /
          static_cast<double>(sup.total_cycles),
      unsup_mlups, sup_mlups / unsup_mlups,
      sup.final_diagnosis.describe().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Fig. 6: 2D Jacobi MLUPs/s vs N, optimal vs plain layout");
  cli.flag("full", "N = 64..2048 step 32 plus a fine window (paper range)")
      .option_int("max-n", 1024, "largest N (2048 with --full)")
      .option_int("step", 128, "N step (32 with --full)")
      .option_str("schedule", "",
                  "transient-fault schedule (e.g. mc1:off@25%..75%); runs the "
                  "supervised loop at N=max-n instead of the figure sweep")
      .option_int("sweeps", 8, "sweeps for the --schedule supervised loop")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const arch::AddressMap sched_map;
  if (!cli.get_str("schedule").empty())
    return run_supervised_mode(cli, kernels::jacobi_optimal_spec(sched_map));

  const bool full = cli.get_flag("full");
  const std::size_t max_n = full ? 2048 : static_cast<std::size_t>(cli.get_int("max-n"));
  const std::size_t step = full ? 32 : static_cast<std::size_t>(cli.get_int("step"));

  const arch::AddressMap map;
  const seg::LayoutSpec optimal = kernels::jacobi_optimal_spec(map);
  const seg::LayoutSpec plain = kernels::jacobi_plain_spec();
  const auto static1 = sched::Schedule::static_chunk(1);
  const auto static_block = sched::Schedule::static_block();

  std::printf(
      "# 2D Jacobi heat solver, one sweep, MLUPs/s\n"
      "# optimal: rows 512B-aligned, shift=128B, schedule static,1 "
      "(planner-derived)\n# plain: dense rows, default static schedule\n\n");

  const std::vector<std::string> header = {"N",       "8T opt",  "16T opt",
                                           "32T opt", "64T opt", "64T plain"};
  std::vector<std::vector<std::string>> rows;

  auto add_row = [&](std::size_t n) {
    std::vector<std::string> row{std::to_string(n)};
    for (unsigned threads : {8u, 16u, 32u, 64u})
      row.push_back(
          util::fmt_fixed(bench::jacobi_mlups(n, optimal, static1, threads), 1));
    row.push_back(
        util::fmt_fixed(bench::jacobi_mlups(n, plain, static_block, 64), 1));
    rows.push_back(std::move(row));
  };

  for (std::size_t n = 128; n <= max_n; n += step) add_row(n);
  // Fine window like the paper's inset (1200..1300), scaled to the sweep.
  if (full)
    for (std::size_t n = 1200; n <= 1300; n += 4) add_row(n);

  bench::emit(header, rows, cli.get_str("csv"));

  const double opt512 = bench::jacobi_mlups(512, optimal, static1, 64);
  const double plain512 = bench::jacobi_mlups(512, plain, static_block, 64);
  std::printf(
      "\nshape check at N=512 (power-of-two rows): optimal %.1f vs plain "
      "%.1f MLUPs/s — the planner layout removes the collapse (paper: "
      "~600 vs wildly swinging).\n",
      opt512, plain512);
  return 0;
}
