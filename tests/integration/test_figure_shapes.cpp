// Reduced-size shape checks for the Jacobi (Fig. 6) and LBM (Fig. 7)
// reproductions: who wins and by roughly what factor. Full sweeps live in
// bench/.

#include <gtest/gtest.h>

#include "kernels/jacobi.h"
#include "kernels/lbm/trace_program.h"
#include "sim/chip.h"
#include "trace/jacobi_program.h"
#include "trace/virtual_arena.h"

namespace mcopt {
namespace {

double jacobi_mlups(std::size_t n, const seg::LayoutSpec& spec,
                    const sched::Schedule& schedule, unsigned threads) {
  trace::VirtualArena arena;
  const auto grids = kernels::make_virtual_jacobi(arena, n, spec);
  auto wl = trace::make_jacobi_workload(grids.grids(), threads, schedule, 1);
  sim::SimConfig cfg;
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return static_cast<double>(trace::jacobi_updates_per_sweep(n)) /
         res.seconds() / 1e6;
}

// Fig. 6: optimal layout (512 B rows, shift 128, static,1) beats the plain
// layout at a power-of-two-pathological row length.
TEST(Fig6Shape, OptimalLayoutBeatsPlainAtPathologicalN) {
  const arch::AddressMap map;
  const std::size_t n = 512;  // rows are 4 KiB: power-of-two, fully aliased
  const double plain = jacobi_mlups(n, kernels::jacobi_plain_spec(),
                                    sched::Schedule::static_block(), 64);
  const double optimal = jacobi_mlups(n, kernels::jacobi_optimal_spec(map),
                                      sched::Schedule::static_chunk(1), 64);
  EXPECT_GT(optimal, 1.3 * plain);
}

// Fig. 6: with the optimal layout, performance scales with threads.
TEST(Fig6Shape, ThreadScaling) {
  const arch::AddressMap map;
  const auto spec = kernels::jacobi_optimal_spec(map);
  const double t8 = jacobi_mlups(384, spec, sched::Schedule::static_chunk(1), 8);
  const double t32 = jacobi_mlups(384, spec, sched::Schedule::static_chunk(1), 32);
  EXPECT_GT(t32, 1.5 * t8);
}

// Fig. 6: the optimized configuration is insensitive to N (no periodic
// collapse), while plain swings with N mod 64.
TEST(Fig6Shape, OptimizedLayoutIsSmoothAcrossN) {
  const arch::AddressMap map;
  const auto spec = kernels::jacobi_optimal_spec(map);
  const double at_pow2 = jacobi_mlups(256, spec, sched::Schedule::static_chunk(1), 64);
  const double off_pow2 = jacobi_mlups(250, spec, sched::Schedule::static_chunk(1), 64);
  EXPECT_NEAR(at_pow2 / off_pow2, 1.0, 0.35);
}

double lbm_mlups(std::size_t n, kernels::lbm::DataLayout layout,
                 kernels::lbm::LoopOrder order, unsigned threads,
                 std::size_t pad_x = 0) {
  using namespace kernels::lbm;
  const Geometry g{n, n, n, pad_x, layout};
  trace::VirtualArena arena;
  LbmAddresses addr;
  addr.f_base = arena.allocate(g.f_elems() * 8, 8192);
  addr.mask_base = arena.allocate(g.cells(), 8192);
  const std::size_t iters =
      order == LoopOrder::kOuterZ ? g.nz : g.nz * g.ny;
  (void)iters;
  auto wl = make_lbm_workload(g, addr, order, threads,
                              sched::Schedule::static_block(), 1);
  sim::SimConfig cfg;
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return static_cast<double>(g.interior_cells()) / res.seconds() / 1e6;
}

// Fig. 7 headline: IvJK beats IJKv (the paper measures ~2x on hardware; the
// simulator reproduces the ordering with a 1.2-1.5x gap depending on N —
// see EXPERIMENTS.md).
TEST(Fig7Shape, IvJKBeatsIJKv) {
  using namespace kernels::lbm;
  const double ijkv46 = lbm_mlups(46, DataLayout::kIJKv, LoopOrder::kOuterZ, 64);
  const double ivjk46 = lbm_mlups(46, DataLayout::kIvJK, LoopOrder::kOuterZ, 64);
  EXPECT_GT(ivjk46, 1.15 * ijkv46);
  const double ijkv62 = lbm_mlups(62, DataLayout::kIJKv, LoopOrder::kOuterZ, 64);
  const double ivjk62 = lbm_mlups(62, DataLayout::kIvJK, LoopOrder::kOuterZ, 64);
  EXPECT_GT(ivjk62, 1.3 * ijkv62);
}

// Fig. 7: the modulo effect — nz not divisible by the thread count wastes
// threads under outer-z parallelization; coalescing z,y removes it.
TEST(Fig7Shape, CoalescingRemovesModuloEffect) {
  using namespace kernels::lbm;
  const std::size_t n = 33;  // 33 planes over 32 threads: worst imbalance
  const double outer = lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 32);
  const double fused =
      lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32);
  EXPECT_GT(fused, 1.25 * outer);
}

// Fig. 7: padding the x extent fixes the (N+2) % 64 == 0 thrashing sizes.
TEST(Fig7Shape, PaddingHelpsAtThrashingSize) {
  using namespace kernels::lbm;
  const std::size_t n = 62;  // 62+2 = 64-element rows
  const double unpadded = lbm_mlups(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64);
  const double padded =
      lbm_mlups(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64, /*pad_x=*/2);
  EXPECT_GT(padded, unpadded * 0.95);  // padding never hurts...
  // ...and the IvJK layout at the same size is clearly better than
  // unpadded IJKv (the paper's combined observation).
  const double ivjk = lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 64);
  EXPECT_GT(ivjk, 1.2 * unpadded);
}

}  // namespace
}  // namespace mcopt
