// NUMA DES tests: route resolution under faults, the per-socket Chip's
// remote-service path (link port serialization, traffic accounting, mid-run
// socket loss), and the multi-socket Node composition — including the
// local > interleaved > remote STREAM ordering the paper-scale model must
// reproduce.

#include "sim/numa.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/chip.h"
#include "sim/node.h"
#include "trace/stream_program.h"

namespace mcopt::sim {
namespace {

using trace::LockstepStreamProgram;
using trace::StreamDesc;

FaultSpec spec(const std::string& text) {
  auto parsed = FaultSpec::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.value_or(FaultSpec{});
}

// Stream bases are staggered by a non-multiple of the 512 B interleave
// period so lockstep threads spread over all controllers instead of
// aliasing onto one.
Workload read_streams(unsigned threads, std::size_t n_per_thread,
                      arch::Addr base,
                      arch::Addr spacing = (arch::Addr{1} << 20) + 128,
                      bool write = false) {
  Workload wl;
  for (unsigned t = 0; t < threads; ++t) {
    std::vector<StreamDesc> s{{base + t * spacing, write, 0}};
    wl.push_back(std::make_unique<LockstepStreamProgram>(
        s, sizeof(double), std::vector<sched::IterRange>{{0, n_per_thread}},
        1));
  }
  return wl;
}

// ---------------------------------------------------------------------------
// Route resolution

TEST(NumaRoutes, HealthyTwoSocketDefaults) {
  arch::NodeTopology node;
  const NumaRoutes r = resolve_numa_routes(node, FaultSpec{}, 0);
  ASSERT_EQ(r.home_serving.size(), 2u);
  EXPECT_EQ(r.home_serving[0], 0u);
  EXPECT_EQ(r.home_serving[1], 1u);
  EXPECT_TRUE(r.reachable[0]);
  EXPECT_TRUE(r.reachable[1]);
  EXPECT_EQ(r.latency[0], 0u);
  EXPECT_EQ(r.line_cycles[0], 0u);
  EXPECT_EQ(r.latency[1], node.remote_latency);
  EXPECT_EQ(r.line_cycles[1], node.link_line_cycles);
}

TEST(NumaRoutes, OfflineSocketRemapsItsHomeDomain) {
  arch::NodeTopology node;
  node.num_sockets = 4;
  const NumaRoutes r = resolve_numa_routes(node, spec("sock0:off,sock2:off"), 1);
  // socket_remap of survivors {1,3}: dead domains fail over round-robin.
  EXPECT_EQ(r.home_serving[0], 1u);
  EXPECT_EQ(r.home_serving[1], 1u);
  EXPECT_EQ(r.home_serving[2], 3u);
  EXPECT_EQ(r.home_serving[3], 3u);
  // Observer 1 serves domains 0 and 1 from its own memory at zero link cost.
  EXPECT_EQ(r.line_cycles[1], 0u);
  EXPECT_EQ(r.line_cycles[3], node.link_line_cycles);
}

TEST(NumaRoutes, SocketDerateScalesRemoteService) {
  arch::NodeTopology node;
  const NumaRoutes r = resolve_numa_routes(node, spec("sock1:derate=0.5"), 0);
  // A half-speed serving socket doubles the per-line cost of remote fills.
  EXPECT_EQ(r.line_cycles[1], 2 * node.link_line_cycles);
  EXPECT_EQ(r.latency[1], node.remote_latency);
}

TEST(NumaRoutes, LinkDerateScalesPathCost) {
  arch::NodeTopology node;
  const NumaRoutes r = resolve_numa_routes(node, spec("link0-1:derate=0.25"), 0);
  EXPECT_EQ(r.line_cycles[1], 4 * node.link_line_cycles);
}

TEST(NumaRoutes, OfflineLinkRoutesAroundThroughSurvivors) {
  arch::NodeTopology node;
  node.num_sockets = 4;
  const NumaRoutes r = resolve_numa_routes(node, spec("link0-1:off"), 0);
  // The direct 0-1 edge is gone; the cheapest surviving path is two hops
  // through any intermediate socket.
  EXPECT_TRUE(r.reachable[1]);
  EXPECT_EQ(r.home_serving[1], 1u);
  EXPECT_EQ(r.line_cycles[1], 2 * node.link_line_cycles);
  EXPECT_EQ(r.latency[1], 2 * node.remote_latency);
}

TEST(NumaRoutes, PartitionRehomesUnreachableDomainLocally) {
  arch::NodeTopology node;  // 2 sockets
  const NumaRoutes r = resolve_numa_routes(node, spec("link0-1:off"), 0);
  // Socket 1's memory is alive but unreachable from 0: its domain re-homes
  // to the nearest reachable survivor — socket 0 itself.
  EXPECT_FALSE(r.reachable[1]);
  EXPECT_EQ(r.home_serving[1], 0u);
  EXPECT_EQ(r.line_cycles[0], 0u);
}

TEST(NumaConnectivity, HealthyAndDegradedPass) {
  arch::NodeTopology node;
  EXPECT_TRUE(check_numa_connectivity(node, FaultSpec{}).ok());
  EXPECT_TRUE(check_numa_connectivity(node, spec("sock1:off")).ok());
  EXPECT_TRUE(check_numa_connectivity(node, spec("link0-1:off")).ok());
}

TEST(NumaConnectivity, ComputeCutOffFromAllMemoryFails) {
  arch::NodeTopology node;
  // Socket 0's own memory is dead and the only link out is down: it cannot
  // make progress and the config must say so up front.
  const auto status =
      check_numa_connectivity(node, spec("sock0:off,link0-1:off"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("socket 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chip with an enabled NumaView

SimConfig numa_cfg(unsigned socket, arch::NodeTopology node = {}) {
  SimConfig cfg;
  cfg.numa.enabled = true;
  cfg.numa.socket = socket;
  cfg.numa.node = node;
  return cfg;
}

TEST(ChipNuma, LocalOnlyTrafficMatchesPlainChip) {
  constexpr unsigned kThreads = 8;
  constexpr std::size_t kN = 4096;
  SimConfig plain;
  Chip chip_plain(plain, arch::equidistant_placement(kThreads, plain.topology));
  Workload wl1 = read_streams(kThreads, kN, arch::Addr{1} << 20);
  const SimResult base = chip_plain.run(wl1);

  const SimConfig cfg = numa_cfg(0);
  Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload wl2 = read_streams(kThreads, kN, arch::Addr{1} << 20);
  const SimResult res = chip.run(wl2);

  // All addresses are homed on socket 0: the NUMA machinery must be inert.
  EXPECT_EQ(res.total_cycles, base.total_cycles);
  EXPECT_EQ(res.remote_read_bytes, 0u);
  EXPECT_EQ(res.remote_write_bytes, 0u);
  ASSERT_EQ(res.links.size(), 2u);
  EXPECT_EQ(res.links[1].line_transfers(), 0u);
}

TEST(ChipNuma, RemoteFillsSerializeOnTheLinkPort) {
  constexpr unsigned kThreads = 32;
  constexpr std::size_t kN = 4096;
  const arch::NodeTopology node;
  const SimConfig cfg = numa_cfg(0, node);

  Chip local_chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload local_wl = read_streams(kThreads, kN, node.socket_base(0));
  const SimResult local = local_chip.run(local_wl);

  Chip remote_chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload remote_wl = read_streams(kThreads, kN, node.socket_base(1));
  const SimResult remote = remote_chip.run(remote_wl);

  // Every fill crossed the link and is accounted both ways.
  EXPECT_EQ(remote.remote_read_bytes, remote.mem_read_bytes);
  ASSERT_EQ(remote.links.size(), 2u);
  EXPECT_EQ(remote.links[1].fills * 64, remote.remote_read_bytes);
  EXPECT_EQ(remote.links[1].busy_cycles,
            remote.links[1].fills * node.link_line_cycles);

  // 32 threads saturate the port: the run cannot beat one line per
  // link_line_cycles, and should get close to it.
  const arch::Cycles port_floor =
      remote.links[1].fills * node.link_line_cycles;
  EXPECT_GE(remote.total_cycles, port_floor);
  EXPECT_LE(remote.total_cycles, port_floor + port_floor / 4);

  // Forced-remote STREAM lands well under the local envelope (Bergstrom's
  // measured asymmetry; the DES local envelope is latency-shaved, so the
  // observed ratio sits near 0.5 rather than the raw 0.3 link/service ratio).
  EXPECT_LT(remote.memory_bandwidth(), 0.55 * local.memory_bandwidth());
}

TEST(ChipNuma, DirtyRemoteLinesWriteBackOverTheLink) {
  constexpr unsigned kThreads = 32;
  constexpr std::size_t kN = 32768;  // 8 MiB dirty > 4 MiB L2: forces evictions
  const arch::NodeTopology node;
  const SimConfig cfg = numa_cfg(0, node);
  Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload wl = read_streams(kThreads, kN, node.socket_base(1),
                             (arch::Addr{1} << 20) + 128, /*write=*/true);
  const SimResult res = chip.run(wl);
  ASSERT_EQ(res.links.size(), 2u);
  EXPECT_GT(res.links[1].writebacks, 0u);
  EXPECT_EQ(res.links[1].writebacks * 64, res.remote_write_bytes);
  EXPECT_GT(res.remote_read_bytes, 0u);  // RFO fills
}

TEST(ChipNuma, MidRunSocketLossShiftsTrafficToTheLink) {
  constexpr unsigned kThreads = 16;
  constexpr std::size_t kN = 16384;
  const arch::NodeTopology node;
  SimConfig cfg = numa_cfg(0, node);

  // Probe the healthy run length, then kill socket 0's memory at 40% of it:
  // the observer's own domain fails over to socket 1 and every fill from
  // then on crosses the link.
  Chip probe(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload probe_wl = read_streams(kThreads, kN, node.socket_base(0));
  const arch::Cycles healthy = probe.run(probe_wl).total_cycles;
  const arch::Cycles stamp = healthy * 2 / 5;

  cfg.fault_schedule =
      FaultSchedule::parse("sock0:off@" + std::to_string(stamp)).value();
  Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  Workload wl = read_streams(kThreads, kN, node.socket_base(0));
  const SimResult res = chip.run(wl);

  EXPECT_TRUE(res.degraded);
  EXPECT_GT(res.remote_read_bytes, 0u);
  EXPECT_LT(res.remote_read_bytes, res.mem_read_bytes);
  ASSERT_EQ(res.epochs.size(), 2u);
  // Healthy epoch: all traffic local. Outage epoch: the epoch accounting
  // must still see the traffic — it moved to the link, not to zero.
  EXPECT_EQ(res.epochs[0].remote_read_bytes, 0u);
  EXPECT_GT(res.epochs[1].remote_read_bytes, 0u);
  EXPECT_GT(res.epochs[1].mem_read_bytes, 0u);
  EXPECT_GT(res.epochs[1].bandwidth, 0.0);
  ASSERT_EQ(res.epochs[1].link_utilization.size(), 2u);
  EXPECT_GT(res.epochs[1].link_utilization[1], 0.5);
  EXPECT_EQ(res.epochs[0].link_utilization[1], 0.0);
}

TEST(ChipNuma, RejectsDisconnectedScheduleUpFront) {
  SimConfig cfg = numa_cfg(0);
  cfg.fault_schedule =
      FaultSchedule::parse("sock0:off@100,link0-1:off@150..900").value();
  EXPECT_FALSE(cfg.check().ok());
}

// ---------------------------------------------------------------------------
// Node composition

TEST(NodeSim, RejectsWorkloadCountMismatch) {
  NodeConfig cfg;
  Node node(cfg);
  std::vector<Workload> wls;
  wls.push_back(read_streams(2, 64, cfg.node.socket_base(0)));
  EXPECT_THROW(node.run(wls), std::invalid_argument);
}

TEST(NodeSim, SingleSocketNodeMatchesPlainChip) {
  NodeConfig cfg;
  cfg.node.num_sockets = 1;
  Node node(cfg);
  std::vector<Workload> wls;
  wls.push_back(read_streams(8, 2048, arch::Addr{1} << 20));
  const NodeResult res = node.run(wls);

  SimConfig plain;
  Chip chip(plain, arch::equidistant_placement(8, plain.topology));
  Workload wl = read_streams(8, 2048, arch::Addr{1} << 20);
  const SimResult base = chip.run(wl);

  EXPECT_EQ(res.total_cycles, base.total_cycles);
  EXPECT_EQ(res.mem_read_bytes, base.mem_read_bytes);
  EXPECT_EQ(res.remote_read_bytes, 0u);
  EXPECT_DOUBLE_EQ(res.memory_bandwidth(), base.memory_bandwidth());
}

TEST(NodeSim, LocalBeatsInterleavedBeatsRemote) {
  constexpr unsigned kThreads = 32;
  constexpr std::size_t kN = 16384;
  NodeConfig cfg;

  const auto run_with = [&](const NodeConfig& c, arch::Addr base0,
                            arch::Addr base1) {
    Node node(c);
    std::vector<Workload> wls;
    wls.push_back(read_streams(kThreads, kN, base0));
    wls.push_back(read_streams(kThreads, kN, base1));
    return node.run(wls);
  };

  const NodeResult local =
      run_with(cfg, cfg.node.socket_base(0), cfg.node.socket_base(1));
  const NodeResult remote =
      run_with(cfg, cfg.node.socket_base(1), cfg.node.socket_base(0));
  NodeConfig inter_cfg = cfg;
  inter_cfg.node.home_shift = 12;  // OS page-interleave placement
  const NodeResult interleaved = run_with(inter_cfg, 0, arch::Addr{1} << 28);

  // The STREAM placement ordering the model exists to reproduce.
  EXPECT_GT(local.memory_bandwidth(), 1.1 * interleaved.memory_bandwidth());
  EXPECT_GT(interleaved.memory_bandwidth(), 1.1 * remote.memory_bandwidth());

  EXPECT_DOUBLE_EQ(local.remote_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(remote.remote_fraction(), 1.0);
  EXPECT_GT(interleaved.remote_fraction(), 0.3);
  EXPECT_LT(interleaved.remote_fraction(), 0.7);

  // Forced-remote is capped by the two link ports.
  const double link_bw = 64.0 / static_cast<double>(cfg.node.link_line_cycles) *
                         cfg.sim.topology.clock_ghz * 1e9;
  EXPECT_LE(remote.memory_bandwidth(), 2.05 * link_bw);
}

TEST(NodeSim, SocketOutageFailsOverToSurvivorMemory) {
  constexpr unsigned kThreads = 16;
  constexpr std::size_t kN = 8192;
  NodeConfig cfg;
  cfg.sim.faults = spec("sock1:off");
  Node node(cfg);
  std::vector<Workload> wls;
  // Socket 0 works on data homed in the dead socket's domain; the remap
  // serves it from socket 0's own surviving memory at local cost.
  wls.push_back(read_streams(kThreads, kN, cfg.node.socket_base(1)));
  wls.emplace_back();  // dead socket runs nothing
  const NodeResult res = node.run(wls);

  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.remote_read_bytes, 0u);
  EXPECT_GT(res.memory_bandwidth(), 0.0);
  EXPECT_GT(res.socket_utilization[0], 0.0);
  EXPECT_DOUBLE_EQ(res.socket_utilization[1], 0.0);
}

TEST(NodeSim, MakespanIsTheSlowestSocket) {
  NodeConfig cfg;
  Node node(cfg);
  std::vector<Workload> wls;
  wls.push_back(read_streams(4, 1024, cfg.node.socket_base(0)));
  wls.push_back(read_streams(4, 8192, cfg.node.socket_base(1)));
  const NodeResult res = node.run(wls);
  EXPECT_EQ(res.total_cycles, std::max(res.sockets[0].total_cycles,
                                       res.sockets[1].total_cycles));
  EXPECT_EQ(res.total_cycles, res.sockets[1].total_cycles);
  EXPECT_GT(res.socket_utilization[1], res.socket_utilization[0]);
}

TEST(NodeSim, DeterministicAcrossRuns) {
  NodeConfig cfg;
  cfg.node.home_shift = 12;
  Node node(cfg);
  const auto once = [&] {
    std::vector<Workload> wls;
    wls.push_back(read_streams(8, 4096, 0));
    wls.push_back(read_streams(8, 4096, arch::Addr{1} << 28));
    return node.run(wls);
  };
  const NodeResult a = once();
  const NodeResult b = once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.remote_read_bytes, b.remote_read_bytes);
  EXPECT_EQ(a.mem_read_bytes, b.mem_read_bytes);
}

}  // namespace
}  // namespace mcopt::sim
