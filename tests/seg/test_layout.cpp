#include "seg/layout.h"

#include <gtest/gtest.h>

namespace mcopt::seg {
namespace {

TEST(AlignUp, Basics) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(123, 0), 123u);  // 0/1 = identity
  EXPECT_EQ(align_up(123, 1), 123u);
}

TEST(LayoutSpec, Validation) {
  LayoutSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.base_align = 3;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = LayoutSpec{};
  spec.segment_align = 100;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.segment_align = 0;  // allowed: dense packing
  EXPECT_NO_THROW(spec.validate());
}

TEST(SplitEven, PaperRule) {
  // floor(n/t)+1 for the first n%t parts, floor(n/t) for the rest.
  const auto sizes = split_even(10, 4);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(sizes[3], 2u);
}

TEST(SplitEven, EdgeCases) {
  EXPECT_EQ(split_even(0, 3), (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_EQ(split_even(2, 5), (std::vector<std::size_t>{1, 1, 0, 0, 0}));
  EXPECT_THROW(split_even(4, 0), std::invalid_argument);
}

class SplitSumTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SplitSumTest, PartsSumToTotal) {
  const auto [n, parts] = GetParam();
  const auto sizes = split_even(n, parts);
  std::size_t sum = 0;
  std::size_t max_size = 0;
  std::size_t min_size = n + 1;
  for (std::size_t s : sizes) {
    sum += s;
    max_size = std::max(max_size, s);
    min_size = std::min(min_size, s);
  }
  EXPECT_EQ(sum, n);
  EXPECT_EQ(sizes.size(), parts);
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SplitSumTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{100, 7},
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{65, 64},
                      std::pair<std::size_t, std::size_t>{1000000, 63}));

TEST(ComputeLayout, DensePacking) {
  LayoutSpec spec;  // no alignment, shift or offset
  const LayoutResult r = compute_layout({100, 200, 50}, spec);
  EXPECT_EQ(r.segment_pos, (std::vector<std::size_t>{0, 100, 300}));
  EXPECT_EQ(r.total_bytes, 350u);
}

TEST(ComputeLayout, SegmentAlignmentPadsAllButFirst) {
  LayoutSpec spec;
  spec.segment_align = 512;
  const LayoutResult r = compute_layout({100, 100, 100}, spec);
  EXPECT_EQ(r.segment_pos[0], 0u);
  EXPECT_EQ(r.segment_pos[1], 512u);
  EXPECT_EQ(r.segment_pos[2], 1024u);
  EXPECT_EQ(r.total_bytes, 1124u);
}

TEST(ComputeLayout, ShiftIsCumulative) {
  // The paper: "shift a segment that would be assigned to thread t by
  // t*128 bytes" -- segment s is displaced by s*shift.
  LayoutSpec spec;
  spec.segment_align = 512;
  spec.shift = 128;
  const LayoutResult r = compute_layout({64, 64, 64, 64}, spec);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_EQ(r.segment_pos[s], s * 512 + s * 128) << "segment " << s;
}

TEST(LayoutSpec, ShiftCycleValidation) {
  LayoutSpec spec;
  spec.segment_align = 512;
  spec.shift_cycle = {0, 128, 384};
  EXPECT_NO_THROW(spec.validate());
  // shift and shift_cycle are mutually exclusive.
  spec.shift = 128;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.shift = 0;
  // Cycle entries must stay below the alignment period.
  spec.shift_cycle = {0, 512};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(LayoutSpec, CheckAccumulatesAllViolations) {
  LayoutSpec spec;
  spec.base_align = 3;
  spec.segment_align = 100;
  const util::Status status = spec.check();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("base_align"), std::string::npos);
  EXPECT_NE(status.error().message.find("segment_align"), std::string::npos);
}

TEST(ComputeLayout, ShiftCycleDisplacesPerSegment) {
  LayoutSpec spec;
  spec.segment_align = 512;
  spec.shift_cycle = {0, 256, 384};
  const LayoutResult r = compute_layout({64, 64, 64, 64, 64}, spec);
  // Segment s sits on an alignment boundary plus shift_cycle[s % 3].
  EXPECT_EQ(r.segment_pos[0] % 512, 0u);
  EXPECT_EQ(r.segment_pos[1] % 512, 256u);
  EXPECT_EQ(r.segment_pos[2] % 512, 384u);
  EXPECT_EQ(r.segment_pos[3] % 512, 0u);  // cycle wraps
  EXPECT_EQ(r.segment_pos[4] % 512, 256u);
}

TEST(ComputeLayout, ShiftCycleSegmentsStayDisjoint) {
  LayoutSpec spec;
  spec.segment_align = 512;
  spec.shift_cycle = {384, 0, 256};
  const std::vector<std::size_t> sizes = {100, 700, 1, 512, 0, 64};
  const LayoutResult r = compute_layout(sizes, spec);
  for (std::size_t s = 1; s < sizes.size(); ++s)
    EXPECT_GE(r.segment_pos[s], r.segment_pos[s - 1] + sizes[s - 1])
        << "segments " << s - 1 << "/" << s << " overlap";
}

TEST(ComputeLayout, HugeSizesOverflowIsDetected) {
  LayoutSpec spec;
  spec.segment_align = 512;
  const std::size_t huge = std::size_t{1} << 62;
  EXPECT_THROW(compute_layout({huge, huge, huge}, spec), std::overflow_error);
}

TEST(ComputeLayout, OffsetDisplacesWholeBlock) {
  LayoutSpec spec;
  spec.segment_align = 256;
  spec.offset = 384;
  const LayoutResult r = compute_layout({10, 10}, spec);
  EXPECT_EQ(r.segment_pos[0], 384u);
  EXPECT_EQ(r.segment_pos[1], 256u + 384u);
}

TEST(ComputeLayout, AllParametersCompose) {
  LayoutSpec spec;
  spec.segment_align = 512;
  spec.shift = 128;
  spec.offset = 64;
  const LayoutResult r = compute_layout({100, 100, 100}, spec);
  EXPECT_EQ(r.segment_pos[0], 64u);
  EXPECT_EQ(r.segment_pos[1], 512u + 128 + 64);
  EXPECT_EQ(r.segment_pos[2], 1024u + 256 + 64);
  EXPECT_EQ(r.total_bytes, r.segment_pos[2] + 100);
}

TEST(ComputeLayout, ZeroSizeSegmentsGetPositions) {
  LayoutSpec spec;
  spec.segment_align = 64;
  const LayoutResult r = compute_layout({0, 10, 0, 10}, spec);
  ASSERT_EQ(r.segment_pos.size(), 4u);
  EXPECT_EQ(r.segment_pos[0], 0u);
  EXPECT_EQ(r.segment_pos[1], 0u);  // aligned position of empty prefix
  EXPECT_EQ(r.segment_pos[2], 64u);
  EXPECT_EQ(r.segment_pos[3], 64u);
}

TEST(ComputeLayout, EmptyInput) {
  LayoutSpec spec;
  spec.offset = 32;
  const LayoutResult r = compute_layout({}, spec);
  EXPECT_TRUE(r.segment_pos.empty());
  EXPECT_EQ(r.total_bytes, 32u);
}

// Property: positions are strictly non-decreasing and segments never overlap.
class NoOverlapTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NoOverlapTest, SegmentsDisjoint) {
  LayoutSpec spec;
  spec.segment_align = GetParam();
  spec.shift = 64;
  const std::vector<std::size_t> sizes = {33, 0, 129, 7, 512};
  const LayoutResult r = compute_layout(sizes, spec);
  for (std::size_t s = 1; s < sizes.size(); ++s)
    EXPECT_GE(r.segment_pos[s], r.segment_pos[s - 1] + sizes[s - 1])
        << "segments " << s - 1 << "/" << s << " overlap";
}

INSTANTIATE_TEST_SUITE_P(Aligns, NoOverlapTest, ::testing::Values(0, 1, 64, 512, 8192));

}  // namespace
}  // namespace mcopt::seg
