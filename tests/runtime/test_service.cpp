#include "runtime/service/service.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace mcopt::runtime::service {
namespace {

using exec::JobKind;
using exec::JobSpec;
using exec::Priority;
using exec::ShedReason;

/// Accounting-mode service config: one worker, roomy lanes, no kernels.
ServiceConfig accounting_config() {
  ServiceConfig cfg;
  cfg.executor.num_workers = 1;
  cfg.executor.run_kernels = false;
  cfg.executor.lane_capacity = {1024, 1024, 1024};
  return cfg;
}

JobSpec triad(std::size_t n, arch::Cycles arrival) {
  JobSpec spec;
  spec.kind = JobKind::kTriad;
  spec.n = n;
  spec.iterations = 1;
  spec.arrival = arrival;
  return spec;
}

TEST(Service, RegisterValidatesTenantConfigs) {
  Service svc(accounting_config());
  EXPECT_THROW(svc.register_tenant({.name = "w0", .weight = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(svc.register_tenant({.name = "q", .quota_bytes_per_s = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(svc.register_tenant({.name = "b", .burst_seconds = 0.0}),
               std::invalid_argument);
  const TenantId id = svc.register_tenant({.name = "ok"});
  EXPECT_EQ(id, 1u);
  EXPECT_THROW((void)svc.submit(0, triad(1024, 0)), std::out_of_range);
  EXPECT_THROW((void)svc.submit(2, triad(1024, 0)), std::out_of_range);
  EXPECT_THROW((void)svc.tenant(2), std::out_of_range);
}

TEST(Service, QuotaThrottleIsTypedAndInvisibleToTheExecutor) {
  Service svc(accounting_config());
  // Bucket depth 1000 B can never hold a 24 KiB triad: every submission is
  // over-quota at the door.
  const TenantId capped = svc.register_tenant({.name = "capped",
                                               .quota_bytes_per_s = 1000.0,
                                               .burst_seconds = 1.0,
                                               .breaker_trip_threshold = 100});
  const TenantId open = svc.register_tenant({.name = "open"});

  const auto res = svc.submit(capped, triad(1024, 0));
  EXPECT_FALSE(res.accepted);
  EXPECT_EQ(res.rejected, ShedReason::kTenantThrottled);

  // The rejection never reached the executor: no submission, no report, no
  // admission-projection movement for anyone else to see.
  EXPECT_EQ(svc.executor().stats().submitted, 0u);
  EXPECT_TRUE(svc.executor().reports().empty());

  const auto ok = svc.submit(open, triad(1024, 1));
  EXPECT_TRUE(ok.accepted);

  const auto snap = svc.tenant(capped);
  EXPECT_EQ(snap.counters.submitted, 1u);
  EXPECT_EQ(snap.counters.throttled, 1u);
  EXPECT_EQ(snap.counters.forwarded, 0u);
  EXPECT_EQ(snap.counters.door_shed_bytes, snap.counters.offered_bytes);
  svc.shutdown(exec::Executor::Drain::kDrain);
}

TEST(Service, SloClassesMapToLanesAndDeadlines) {
  Service svc(accounting_config());
  const TenantId interactive = svc.register_tenant(
      {.name = "i", .slo = SloClass::kInteractive});
  const TenantId standard =
      svc.register_tenant({.name = "s", .slo = SloClass::kStandard});
  const TenantId batch =
      svc.register_tenant({.name = "b", .slo = SloClass::kBatch});

  ASSERT_TRUE(svc.submit(interactive, triad(1024, 1000)).accepted);
  ASSERT_TRUE(svc.submit(standard, triad(1024, 1001)).accepted);
  ASSERT_TRUE(svc.submit(batch, triad(1024, 1002)).accepted);
  // An explicitly set deadline wins over the SLO default when allowed.
  JobSpec explicit_dl = triad(1024, 1003);
  explicit_dl.deadline = 99'000'000;
  ASSERT_TRUE(svc.submit(batch, explicit_dl).accepted);
  svc.shutdown(exec::Executor::Drain::kDrain);

  const auto reports = svc.executor().reports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].priority, Priority::kHigh);
  EXPECT_EQ(reports[1].priority, Priority::kNormal);
  EXPECT_EQ(reports[2].priority, Priority::kLow);
  // Interactive and standard get stamped SLO deadlines past their arrival;
  // standard's slack multiple is larger, so its deadline is later.
  ASSERT_NE(reports[0].deadline, exec::kNoDeadline);
  ASSERT_NE(reports[1].deadline, exec::kNoDeadline);
  EXPECT_GT(reports[0].deadline, reports[0].arrival);
  EXPECT_GT(reports[1].deadline, reports[0].deadline);
  // Batch runs deadline-free; the explicit deadline passes through intact.
  EXPECT_EQ(reports[2].deadline, exec::kNoDeadline);
  EXPECT_EQ(reports[3].deadline, 99'000'000u);
}

TEST(Service, BreakerOpensHoldsThenClosesThroughAHalfOpenProbe) {
  ServiceConfig cfg = accounting_config();
  Service svc(cfg);
  TenantConfig tc;
  tc.name = "flappy";
  tc.quota_bytes_per_s = 1000.0;  // bucket depth 1000 B
  tc.burst_seconds = 1.0;
  tc.breaker_trip_threshold = 3;
  tc.breaker = {.initial = 1000, .multiplier = 2.0, .cap = 8000,
                .jitter = 0.0};
  const TenantId id = svc.register_tenant(tc);

  // Three consecutive over-quota submissions trip the breaker...
  for (arch::Cycles a = 0; a < 3; ++a) {
    const auto res = svc.submit(id, triad(1024, a));
    EXPECT_FALSE(res.accepted);
    EXPECT_EQ(res.rejected, ShedReason::kTenantThrottled);
  }
  auto snap = svc.tenant(id);
  EXPECT_EQ(snap.breaker, util::CircuitBreaker::State::kOpen);
  EXPECT_EQ(snap.counters.breaker_opens, 1u);
  EXPECT_EQ(snap.counters.throttled, 3u);

  // ...the open hold rejects in O(1), without touching the token bucket...
  const auto held = svc.submit(id, triad(1024, 10));
  EXPECT_FALSE(held.accepted);
  EXPECT_EQ(held.rejected, ShedReason::kTenantThrottled);
  EXPECT_EQ(svc.tenant(id).counters.breaker_rejected, 1u);

  // ...and the first submission past the hold is the half-open probe. A
  // 384-byte job fits the 1000-byte bucket, so the probe succeeds and the
  // breaker closes.
  const auto probe = svc.submit(id, triad(16, 5000));
  EXPECT_TRUE(probe.accepted);
  snap = svc.tenant(id);
  EXPECT_EQ(snap.breaker, util::CircuitBreaker::State::kClosed);
  EXPECT_EQ(snap.counters.forwarded, 1u);
  svc.shutdown(exec::Executor::Drain::kDrain);
}

TEST(Service, FailedProbeReopensWithALongerHold) {
  Service svc(accounting_config());
  TenantConfig tc;
  tc.name = "sick";
  tc.quota_bytes_per_s = 1000.0;
  tc.burst_seconds = 1.0;
  tc.breaker_trip_threshold = 1;
  tc.breaker = {.initial = 1000, .multiplier = 2.0, .cap = 8000,
                .jitter = 0.0};
  const TenantId id = svc.register_tenant(tc);

  EXPECT_FALSE(svc.submit(id, triad(1024, 0)).accepted);  // trips at once
  EXPECT_EQ(svc.tenant(id).breaker, util::CircuitBreaker::State::kOpen);

  // Probe at 1000 is admitted past the gate but still over quota: the
  // breaker reopens with a doubled (2000-cycle) hold.
  EXPECT_FALSE(svc.submit(id, triad(1024, 1000)).accepted);
  EXPECT_EQ(svc.tenant(id).breaker, util::CircuitBreaker::State::kOpen);
  EXPECT_EQ(svc.tenant(id).counters.breaker_opens, 2u);
  // Still holding at +1999...
  EXPECT_FALSE(svc.submit(id, triad(16, 2999)).accepted);
  EXPECT_EQ(svc.tenant(id).counters.breaker_rejected, 1u);
  // ...but the probe at +2000 fits the bucket and closes the breaker.
  EXPECT_TRUE(svc.submit(id, triad(16, 3000)).accepted);
  EXPECT_EQ(svc.tenant(id).breaker, util::CircuitBreaker::State::kClosed);
  svc.shutdown(exec::Executor::Drain::kDrain);
}

TEST(Service, ConservationHoldsAcrossDoorAndExecutor) {
  Service svc(accounting_config());
  const TenantId id = svc.register_tenant({.name = "t"});

  // Hold dequeue while submitting so the cancellations land deterministically
  // before any job runs.
  svc.executor().hold_dequeue();
  unsigned cancelled = 0;
  for (arch::Cycles a = 0; a < 10; ++a) {
    const auto res = svc.submit(id, triad(1024, a));
    ASSERT_TRUE(res.accepted);
    if (a % 3 == 0 && svc.cancel(res.id)) ++cancelled;
  }
  svc.executor().release_dequeue();
  svc.shutdown(exec::Executor::Drain::kDrain);

  ASSERT_EQ(cancelled, 4u);
  const auto summaries = svc.summarize();
  ASSERT_EQ(summaries.size(), 1u);
  const TenantSummary& s = summaries[0];
  EXPECT_EQ(s.counters.submitted, 10u);
  EXPECT_EQ(s.counters.forwarded, 10u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.counters.offered_bytes,
            s.counters.door_shed_bytes + s.counters.forwarded_bytes);
  EXPECT_EQ(s.counters.forwarded_bytes, s.goodput_bytes + s.exec_shed_bytes);
  EXPECT_GT(s.goodput_bytes, 0u);
  EXPECT_GT(s.exec_shed_bytes, 0u);
}

TEST(Service, WfqWeightsShapeServiceOrderForBackloggedTenants) {
  Service svc(accounting_config());
  const TenantId light = svc.register_tenant({.name = "w1", .weight = 1.0});
  const TenantId heavy = svc.register_tenant({.name = "w4", .weight = 4.0});

  // Publish both tenants' backlogs atomically (hold/release), then drain:
  // WFQ must give the weight-4 tenant ~4 of every 5 service slots, which
  // shows up as an earlier mean virtual start time.
  svc.executor().hold_dequeue();
  for (arch::Cycles a = 0; a < 12; ++a) {
    ASSERT_TRUE(svc.submit(light, triad(1024, 0)).accepted);
    ASSERT_TRUE(svc.submit(heavy, triad(1024, 0)).accepted);
  }
  svc.executor().release_dequeue();
  svc.shutdown(exec::Executor::Drain::kDrain);

  double mean_start[2] = {0.0, 0.0};
  for (const auto& r : svc.executor().reports())
    mean_start[r.tenant - 1] += static_cast<double>(r.start) / 12.0;
  EXPECT_LT(mean_start[heavy - 1], mean_start[light - 1]);
}

TEST(Service, JainIndexMatchesKnownVectors) {
  EXPECT_DOUBLE_EQ(Service::jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Service::jain_index({2.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(Service::jain_index({}), 1.0);
  EXPECT_NEAR(Service::jain_index({4.0, 2.0}), 0.9, 1e-12);
}

}  // namespace
}  // namespace mcopt::runtime::service
