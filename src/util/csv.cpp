#include "util/csv.h"

#include <stdexcept>

namespace mcopt::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  out_ << "# " << kSchemaVersion << ", columns:";
  for (std::size_t i = 0; i < header.size(); ++i)
    out_ << (i ? "," : " ") << header[i];
  out_.put('\n');
  write_row(header);
  if (!out_) status_.note("CsvWriter: header write failed");
}

Status CsvWriter::try_add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width does not match header");
  if (closed_) status_.note("CsvWriter: add_row after close");
  if (!status_.ok()) return status_;  // refuse: the file is already suspect
  write_row(cells);
  if (!out_) {
    status_.note("CsvWriter: write failed after " + std::to_string(rows_) +
                 " rows (disk full?)");
    return status_;
  }
  ++rows_;
  return status_;
}

Status CsvWriter::try_flush() {
  if (closed_ || !status_.ok()) return status_;
  out_.flush();
  if (!out_)
    status_.note("CsvWriter: flush failed after " + std::to_string(rows_) +
                 " rows (disk full?)");
  return status_;
}

Status CsvWriter::close() {
  if (closed_) return status_;
  closed_ = true;
  if (status_.ok()) {
    out_.flush();
    if (!out_)
      status_.note("CsvWriter: flush failed after " + std::to_string(rows_) +
                   " rows (disk full?)");
  }
  out_.close();
  if (status_.ok() && out_.fail())
    status_.note("CsvWriter: close failed (buffered rows may be lost)");
  return status_;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_.put(',');
    out_ << escape(cells[i]);
  }
  out_.put('\n');
}

}  // namespace mcopt::util
