#include "arch/address_map.h"

#include <algorithm>
#include <stdexcept>

namespace mcopt::arch {

std::vector<std::uint64_t> AddressMap::controller_histogram(
    Addr base, std::size_t bytes) const {
  std::vector<std::uint64_t> hist(spec_.num_controllers(), 0);
  if (bytes == 0) return hist;
  const Addr first = line_base(base);
  const Addr last = line_base(base + bytes - 1);
  for (Addr a = first; a <= last; a += spec_.line_size())
    ++hist[controller_of(a)];
  return hist;
}

std::vector<std::uint64_t> AddressMap::lockstep_histogram(
    std::span<const Addr> stream_bases, std::uint64_t lines_per_stream) const {
  std::vector<std::uint64_t> hist(spec_.num_controllers(), 0);
  for (std::uint64_t k = 0; k < lines_per_stream; ++k)
    for (Addr base : stream_bases)
      ++hist[controller_of(base + k * spec_.line_size())];
  return hist;
}

double AddressMap::histogram_uniformity(std::span<const std::uint64_t> histogram) {
  if (histogram.empty())
    throw std::invalid_argument("histogram_uniformity: empty histogram");
  std::uint64_t total = 0;
  std::uint64_t max_bin = 0;
  for (std::uint64_t b : histogram) {
    total += b;
    max_bin = std::max(max_bin, b);
  }
  if (max_bin == 0)
    throw std::invalid_argument("histogram_uniformity: all-zero histogram");
  return static_cast<double>(total) /
         (static_cast<double>(histogram.size()) * static_cast<double>(max_bin));
}

double AddressMap::lockstep_balance(std::span<const Addr> stream_bases,
                                    std::uint64_t lines_per_stream) const {
  if (stream_bases.empty())
    throw std::invalid_argument("lockstep_balance: no streams");
  if (lines_per_stream == 0)
    throw std::invalid_argument("lockstep_balance: zero lines");

  std::vector<std::uint64_t> step_hist(spec_.num_controllers());
  std::uint64_t cost_sum = 0;
  for (std::uint64_t k = 0; k < lines_per_stream; ++k) {
    std::fill(step_hist.begin(), step_hist.end(), 0);
    for (Addr base : stream_bases)
      ++step_hist[controller_of(base + k * spec_.line_size())];
    cost_sum += *std::max_element(step_hist.begin(), step_hist.end());
  }
  const auto total_lines =
      static_cast<double>(stream_bases.size()) * static_cast<double>(lines_per_stream);
  return total_lines /
         (static_cast<double>(spec_.num_controllers()) * static_cast<double>(cost_sum));
}

}  // namespace mcopt::arch
