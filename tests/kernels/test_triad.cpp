#include "kernels/triad.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mcopt::kernels {
namespace {

seg::LayoutSpec spec512() {
  seg::LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  return spec;
}

TEST(TriadLocal, ComputesMulAdd) {
  std::vector<double> a(8, 0.0), b(8, 1.0), c(8, 2.0), d(8, 3.0);
  triad_local(a.data(), b.data(), c.data(), d.data(), 8);
  for (double v : a) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(TriadGeneric, PlainPointerOverload) {
  std::vector<double> a(5, 0.0), b(5, 2.0), c(5, 4.0), d(5, 0.5);
  triad(a.data(), a.data() + 5, b.data(), c.data(), d.data());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(TriadGeneric, SegmentedOverloadMatchesPlain) {
  const std::size_t n = 1000;
  auto make = [&](double fill) {
    auto arr = seg::seg_array<double>::even(n, 7, spec512());
    seg::fill(arr.begin(), arr.end(), fill);
    return arr;
  };
  auto a = make(0.0);
  const auto b = make(1.5);
  const auto c = make(2.0);
  const auto d = make(3.0);
  triad(a.begin(), a.end(), b.begin(), c.begin(), d.begin());
  for (double v : a) ASSERT_DOUBLE_EQ(v, 7.5);
}

TEST(TriadNative, PlainSweepComputes) {
  const std::size_t n = 4096;
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0), d(n, 3.0);
  const double secs = triad_plain_sweep_seconds(a.data(), b.data(), c.data(),
                                                d.data(), n);
  EXPECT_GT(secs, 0.0);
  for (double v : a) ASSERT_DOUBLE_EQ(v, 7.0);
}

TEST(TriadNative, SegmentedSweepMatchesPlain) {
  const std::size_t n = 10000;
  auto a = seg::seg_array<double>::even(n, 8, spec512());
  auto b = seg::seg_array<double>::even(n, 8, spec512());
  auto c = seg::seg_array<double>::even(n, 8, spec512());
  auto d = seg::seg_array<double>::even(n, 8, spec512());
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = double(i);
    c[i] = 2.0;
    d[i] = 0.5 * double(i);
  }
  const double secs = triad_segmented_sweep_seconds(a, b, c, d);
  EXPECT_GT(secs, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_DOUBLE_EQ(a[i], double(i) + double(i));
}

TEST(TriadNative, SegmentedRejectsMismatchedSegmentCounts) {
  auto a = seg::seg_array<double>::even(100, 4, spec512());
  auto b = seg::seg_array<double>::even(100, 5, spec512());
  auto c = seg::seg_array<double>::even(100, 4, spec512());
  auto d = seg::seg_array<double>::even(100, 4, spec512());
  EXPECT_THROW(triad_segmented_sweep_seconds(a, b, c, d), std::invalid_argument);
}

TEST(TriadBytes, FiveWordsPerIteration) {
  EXPECT_EQ(triad_actual_bytes(100), 100u * 5 * 8);
}

TEST(TriadLayouts, PlainIsMallocContiguous) {
  trace::VirtualArena arena;
  const arch::AddressMap map;
  const auto bases = triad_layout_bases(arena, TriadLayout::kPlain, 1 << 16, map);
  ASSERT_EQ(bases.size(), 4u);
  // Blocks packed back to back with 16-byte headers.
  EXPECT_EQ(bases[1] - bases[0], (1ull << 19) + 16);
}

TEST(TriadLayouts, Aligned8kIsPessimal) {
  trace::VirtualArena arena;
  const arch::AddressMap map;
  const auto bases = triad_layout_bases(arena, TriadLayout::kAligned8k, 1000, map);
  for (arch::Addr base : bases) {
    EXPECT_EQ(base % 8192, 0u);
    EXPECT_EQ(map.controller_of(base), map.controller_of(bases[0]));
  }
}

TEST(TriadLayouts, PlannedOffsetsCoverAllControllers) {
  trace::VirtualArena arena;
  const arch::AddressMap map;
  const auto bases =
      triad_layout_bases(arena, TriadLayout::kPlannedOffsets, 1000, map);
  std::set<unsigned> controllers;
  for (arch::Addr base : bases) controllers.insert(map.controller_of(base));
  EXPECT_EQ(controllers.size(), 4u);
  // The paper's offsets: B, C, D shifted by 128, 256, 384 bytes.
  EXPECT_EQ(bases[1] % 8192, 128u);
  EXPECT_EQ(bases[2] % 8192, 256u);
  EXPECT_EQ(bases[3] % 8192, 384u);
}

TEST(TriadWorkload, StreamsAndFlops) {
  const std::vector<arch::Addr> bases = {0, 1 << 20, 2 << 20, 3 << 20};
  auto wl = make_triad_workload(bases, 100, 4, sched::Schedule::static_block());
  ASSERT_EQ(wl.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& p : wl) total += p->total_accesses();
  EXPECT_EQ(total, 100u * 4);
  EXPECT_THROW(make_triad_workload({0, 1, 2}, 10, 2,
                                   sched::Schedule::static_block()),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::kernels
