#pragma once
// Small statistics toolkit for benchmark reporting: running moments
// (Welford), order statistics, and simple aggregate summaries.

#include <cstddef>
#include <span>
#include <vector>

namespace mcopt::util {

/// Numerically stable running mean/variance accumulator (Welford's method).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of the ~95% normal confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; p in [0,100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Harmonic mean (appropriate for averaging rates); requires positive values.
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Geometric mean; requires positive values.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Full five-number-style summary used by bench reports.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace mcopt::util
