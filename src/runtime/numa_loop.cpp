#include "runtime/numa_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "kernels/triad.h"
#include "obs/attribution.h"
#include "obs/trace.h"
#include "seg/planner.h"
#include "sim/analytic.h"
#include "sim/numa.h"
#include "util/crc.h"
#include "util/log.h"

namespace mcopt::runtime {

namespace {

/// Bump allocator over the contiguous home domains: hands out array storage
/// inside a chosen socket's domain at a planner-chosen period offset.
class DomainArena {
 public:
  explicit DomainArena(const arch::NodeTopology& node) : node_(node) {
    next_.reserve(node.num_sockets);
    for (unsigned d = 0; d < node.num_sockets; ++d)
      next_.push_back(node.socket_base(d));
  }

  arch::Addr allocate(unsigned domain, std::size_t bytes, std::size_t align,
                      std::size_t offset) {
    const arch::Addr aligned =
        (next_.at(domain) + align - 1) / align * align + offset;
    next_[domain] = aligned + bytes;
    if (next_[domain] > node_.socket_base(domain) + node_.domain_bytes())
      throw std::invalid_argument(
          "run_supervised_node_triad: home domain " + std::to_string(domain) +
          " overflows (shrink n or raise home_shift)");
    return aligned;
  }

 private:
  arch::NodeTopology node_;
  std::vector<arch::Addr> next_;
};

arch::Cycles seconds_to_cycles(double seconds, double clock_ghz) {
  return static_cast<arch::Cycles>(std::ceil(seconds * clock_ghz * 1e9));
}

/// Strand share of a shard covering `count` of `n` elements: proportional,
/// never zero, so a split job's total strand count stays ~ the whole job's.
unsigned shard_threads(unsigned threads, std::size_t count, std::size_t n) {
  return std::max<unsigned>(
      1, static_cast<unsigned>(std::lround(static_cast<double>(threads) *
                                           static_cast<double>(count) /
                                           static_cast<double>(n))));
}

/// Analytic node bandwidth of a shard placement under a fault belief.
double placement_bw(const std::vector<NodeJob>& jobs, unsigned threads,
                    std::size_t n, const sim::NodeConfig& nc,
                    const arch::AddressMap& map, const sim::FaultSpec& belief) {
  const unsigned sockets = nc.node.num_sockets;
  std::vector<std::vector<sim::AnalyticStream>> streams(sockets);
  std::vector<unsigned> strands(sockets, 0);
  for (const NodeJob& job : jobs) {
    const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                      {job.bases[1], false},
                                                      {job.bases[2], false},
                                                      {job.bases[3], false}};
    const auto physical = sim::expand_rfo(logical);
    auto& dst = streams[job.compute_socket];
    dst.insert(dst.end(), physical.begin(), physical.end());
    strands[job.compute_socket] += shard_threads(threads, job.count, n);
  }
  return sim::estimate_node_bandwidth(streams, strands, nc.sim.calibration, map,
                                      nc.node, nc.sim.topology.clock_ghz,
                                      belief)
      .bandwidth;
}

/// Shard placement under a healthy-socket belief. Each logical job (natural
/// socket == job_id) runs whole on its natural socket when that is healthy —
/// the fail-back pull — and otherwise splits evenly across every survivor
/// (seg::split_shard_counts), so one orphan spreads instead of piling onto
/// the least-loaded socket whole. A job whose current shards already match
/// the desired shape keeps its bases (no copy); rebuilt shards go through the
/// composable planner overload so co-homed shards from different jobs rotate
/// off each other's controllers. `materialize` allocates real storage; probe
/// placements reuse a scratch offset inside the target domain.
std::vector<NodeJob> plan_placement(const std::vector<NodeJob>& shards,
                                    unsigned num_jobs, std::size_t n,
                                    const std::vector<unsigned>& healthy,
                                    const arch::AddressMap& map,
                                    const arch::NodeTopology& node,
                                    DomainArena* materialize) {
  const auto is_healthy = [&](unsigned s) {
    return std::find(healthy.begin(), healthy.end(), s) != healthy.end();
  };
  struct Piece {
    unsigned socket = 0;
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<std::vector<Piece>> desired(num_jobs);
  for (unsigned j = 0; j < num_jobs; ++j) {
    if (is_healthy(j)) {
      desired[j].push_back({j, 0, n});
      continue;
    }
    const std::vector<std::size_t> counts =
        seg::split_shard_counts(n, healthy.size());
    std::size_t at = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      desired[j].push_back({healthy[i], at, counts[i]});
      at += counts[i];
    }
  }

  std::vector<std::vector<const NodeJob*>> current(num_jobs);
  for (const NodeJob& s : shards) current[s.job_id].push_back(&s);
  std::vector<bool> keep(num_jobs, false);
  std::vector<unsigned> domain_load(node.num_sockets, 0);
  for (unsigned j = 0; j < num_jobs; ++j) {
    const auto& cur = current[j];
    const auto& want = desired[j];
    bool same = cur.size() == want.size();
    for (std::size_t i = 0; same && i < cur.size(); ++i)
      same = cur[i]->compute_socket == want[i].socket &&
             cur[i]->home_socket == want[i].socket &&
             cur[i]->begin == want[i].begin && cur[i]->count == want[i].count;
    keep[j] = same;
    if (same)
      for (const NodeJob* s : cur) ++domain_load[s->home_socket];
  }

  std::vector<NodeJob> out;
  for (unsigned j = 0; j < num_jobs; ++j) {
    if (keep[j]) {
      for (const NodeJob* s : current[j]) out.push_back(*s);
      continue;
    }
    for (const Piece& p : desired[j]) {
      const std::vector<unsigned> compute{p.socket};
      const seg::NodeStreamPlan plan = seg::plan_node_stream_shards(
          4, map, node, compute, healthy, domain_load);
      const seg::NodeStreamPlan::Shard& sh = plan.shards.front();
      NodeJob job;
      job.job_id = j;
      job.begin = p.begin;
      job.count = p.count;
      job.compute_socket = p.socket;
      job.home_socket = sh.home_socket;
      job.bases.resize(4);
      for (std::size_t k = 0; k < 4; ++k) {
        const std::size_t off = sh.streams.offsets[k];
        job.bases[k] =
            materialize != nullptr
                ? materialize->allocate(job.home_socket,
                                        p.count * sizeof(double) + off,
                                        sh.streams.base_align, off)
                : node.socket_base(job.home_socket) + node.domain_bytes() / 2 +
                      off;
      }
      out.push_back(std::move(job));
    }
  }
  return out;
}

bool same_placement(const std::vector<NodeJob>& a,
                    const std::vector<NodeJob>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t j = 0; j < a.size(); ++j)
    if (a[j].job_id != b[j].job_id || a[j].begin != b[j].begin ||
        a[j].count != b[j].count ||
        a[j].compute_socket != b[j].compute_socket ||
        a[j].home_socket != b[j].home_socket)
      return false;
  return true;
}

/// One element range some migration must physically copy: the overlap of an
/// old shard and a new shard of the same logical job that changed placement.
struct MovedRange {
  unsigned job_id = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
  unsigned old_home = 0;
  unsigned new_compute = 0;
};

std::vector<MovedRange> moved_ranges(const std::vector<NodeJob>& before,
                                     const std::vector<NodeJob>& after) {
  std::vector<MovedRange> out;
  for (const NodeJob& c : after) {
    for (const NodeJob& o : before) {
      if (o.job_id != c.job_id) continue;
      const std::size_t lo = std::max(o.begin, c.begin);
      const std::size_t hi = std::min(o.begin + o.count, c.begin + c.count);
      if (lo >= hi) continue;
      // An identical shard keeps its bases through plan_placement — nothing
      // is copied; anything else (split, merge, relocation) moves the
      // overlapping portion.
      if (o.compute_socket == c.compute_socket &&
          o.home_socket == c.home_socket && o.begin == c.begin &&
          o.count == c.count)
        continue;
      out.push_back({c.job_id, lo, hi - lo, o.home_socket, c.compute_socket});
    }
  }
  return out;
}

}  // namespace

util::Status NodeLoopConfig::check() const {
  util::Status status;
  status.merge(node.check());
  status.merge(detector.check());
  if (node.node.single_socket())
    status.note("NodeLoopConfig: node loop needs >= 2 sockets");
  if (threads == 0) status.note("NodeLoopConfig: threads must be >= 1");
  if (slices == 0) status.note("NodeLoopConfig: slices must be >= 1");
  if (!(migration_safety >= 0.0) || !std::isfinite(migration_safety))
    status.note("NodeLoopConfig: migration_safety must be finite and >= 0");
  if (node.sim.fault_schedule.has_relative())
    status.note("NodeLoopConfig: fault schedule has unresolved percent bounds");
  // Worst-case failover packs every job onto one surviving chip.
  if (threads * node.node.num_sockets > node.sim.topology.max_threads())
    status.note("NodeLoopConfig: threads*sockets exceeds one chip's strands (" +
                std::to_string(node.sim.topology.max_threads()) +
                "); failover could not pack jobs onto one survivor");
  return status;
}

NodeLoopResult run_supervised_node_triad(std::size_t n,
                                         const NodeLoopConfig& cfg) {
  cfg.check().throw_if_failed();
  const unsigned sockets = cfg.node.node.num_sockets;
  const arch::AddressMap map(cfg.node.sim.interleave);
  const double ghz = cfg.node.sim.topology.clock_ghz;
  NodeSupervisor sup(cfg.detector, cfg.node.node, cfg.seed);
  DomainArena arena(cfg.node.node);

  // One logical job per socket, arrays local at planner offsets; one
  // whole-range shard each until a migration splits it.
  std::vector<NodeJob> jobs(sockets);
  const seg::StreamPlan plan = seg::plan_stream_offsets(4, map);
  for (unsigned s = 0; s < sockets; ++s) {
    jobs[s].job_id = s;
    jobs[s].begin = 0;
    jobs[s].count = n;
    jobs[s].compute_socket = s;
    jobs[s].home_socket = s;
    jobs[s].bases.resize(4);
    for (std::size_t k = 0; k < 4; ++k)
      jobs[s].bases[k] = arena.allocate(s, n * sizeof(double) + plan.offsets[k],
                                        plan.base_align, plan.offsets[k]);
  }

  // CRC sidecar: one deterministic payload per logical job stands in for its
  // live arrays (B, C, D share one integrity stream in this model). Every
  // committed shard move re-hashes the moved range after the copy and the
  // whole payload against the sidecar — a mismatch aborts the run.
  std::vector<std::vector<double>> payload(sockets);
  std::vector<std::uint32_t> sidecar(sockets);
  for (unsigned j = 0; j < sockets; ++j) {
    payload[j].resize(n);
    for (std::size_t i = 0; i < n; ++i)
      payload[j][i] = static_cast<double>(
          ((cfg.seed + j + 1) * 0x9e3779b97f4a7c15ULL +
           i * 0x2545f4914f6cdd1dULL) >>
          32);
    sidecar[j] = util::crc32c(payload[j].data(), n * sizeof(double));
  }

  NodeLoopResult out;
  out.socket_timelines.resize(sockets);
  arch::Cycles global = 0;
  NodeSample last_sample;

  for (unsigned slice = 0; slice < cfg.slices; ++slice) {
    const obs::TraceSpan slice_span("nodeloop.slice", "loop", slice, global);
    sim::NodeConfig nc = cfg.node;
    nc.sim.fault_schedule = cfg.node.sim.fault_schedule.shifted(global);
    std::vector<sim::Workload> wls(sockets);
    for (const NodeJob& job : jobs) {
      auto wl = kernels::make_triad_workload(
          job.bases, job.count, shard_threads(cfg.threads, job.count, n),
          sched::Schedule::static_block(), 1);
      auto& dst = wls[job.compute_socket];
      for (auto& program : wl) dst.push_back(std::move(program));
    }
    sim::Node node(nc);
    sim::NodeResult res = node.run(wls);

    const arch::Cycles slice_begin = global;
    global += res.total_cycles;
    out.total_cycles += res.total_cycles;
    out.bytes += res.mem_read_bytes + res.mem_write_bytes;
    out.remote_bytes += res.remote_read_bytes + res.remote_write_bytes;
    out.slice_log.push_back({slice_begin, global,
                             res.mem_read_bytes + res.mem_write_bytes,
                             res.remote_read_bytes + res.remote_write_bytes});
    for (unsigned s = 0; s < sockets; ++s) {
      for (const obs::McSample& row : res.sockets[s].mc_timeline) {
        obs::McSample shifted = row;
        shifted.begin += slice_begin;
        shifted.end += slice_begin;
        out.socket_timelines[s].push_back(std::move(shifted));
      }
    }

    last_sample = NodeSample{};
    last_sample.begin = slice_begin;
    last_sample.end = global;
    last_sample.socket_utilization = res.socket_utilization;
    last_sample.link_utilization.assign(sockets, {});
    last_sample.link_line_cost.assign(sockets, {});
    for (unsigned s = 0; s < sockets; ++s) {
      last_sample.link_utilization[s].assign(sockets, 0.0);
      last_sample.link_line_cost[s].assign(sockets, 0.0);
      const auto& links = res.sockets[s].links;
      for (unsigned t = 0; t < links.size(); ++t) {
        if (res.total_cycles != 0)
          last_sample.link_utilization[s][t] =
              static_cast<double>(links[t].busy_cycles) /
              static_cast<double>(res.total_cycles);
        if (links[t].line_transfers() != 0)
          last_sample.link_line_cost[s][t] =
              static_cast<double>(links[t].busy_cycles) /
              static_cast<double>(links[t].line_transfers());
      }
    }
    if (!cfg.supervise) continue;

    // Belief/DES divergence (reporting only, never fed to decisions): the
    // schedule cleared a socket the supervisor still believes dead. This is
    // the window the prober exists to close — assert it shrinks in the
    // recovery tests.
    const sim::FaultSpec actual = cfg.node.sim.fault_schedule.active_at(global);
    for (const unsigned s : sup.planned_against().offline_sockets) {
      if (actual.is_socket_offline(s)) continue;
      ++out.belief_stale_windows;
      obs::trace_instant("nodesup.belief_stale", "numa", global, s);
      util::log_info("node_triad: decision=keep belief_stale=sock" +
                     std::to_string(s) + " at=" + std::to_string(global) +
                     " (schedule cleared; belief persists until a probe)");
      break;
    }

    // Placement channel: candidate layout under the current belief vs what
    // is running now. belief() carries the re-admission ramp derates, so a
    // just-readmitted socket is priced at partial weight.
    const sim::FaultSpec belief = sup.belief();
    const auto believed_healthy = belief.surviving_sockets(sockets);
    const std::vector<NodeJob> believed_cand = plan_placement(
        jobs, sockets, n, believed_healthy, map, cfg.node.node, nullptr);
    const double cur_bw =
        placement_bw(jobs, cfg.threads, n, cfg.node, map, belief);
    const double cand_bw = same_placement(jobs, believed_cand)
                               ? cur_bw
                               : placement_bw(believed_cand, cfg.threads, n,
                                              cfg.node, map, belief);
    const double gain = cur_bw > 0.0 ? cand_bw / cur_bw : 1.0;

    const NodeDecision dec = sup.observe(last_sample, gain);

    if (dec.action == Action::kProbe) {
      // Run the supervisor's canary on the DES: a tiny triad computed on the
      // quarantined socket, homed in its own domain at a scratch offset. A
      // still-dead domain remaps every line to survivors, so the probed
      // socket's controllers stay silent; a recovered domain serves locally
      // and lights them up. Cycles are charged like a scrub — no goodput.
      const unsigned ps = dec.probe_socket;
      const RecoveryConfig& rc = cfg.detector.recovery;
      sim::NodeConfig pnc = cfg.node;
      pnc.sim.fault_schedule = cfg.node.sim.fault_schedule.shifted(global);
      const seg::StreamPlan pplan = seg::plan_stream_offsets(4, map);
      std::vector<arch::Addr> pbases(4);
      for (std::size_t k = 0; k < 4; ++k)
        pbases[k] = cfg.node.node.socket_base(ps) +
                    cfg.node.node.domain_bytes() / 2 + pplan.offsets[k];
      std::vector<sim::Workload> pwls(sockets);
      auto pwl = kernels::make_triad_workload(pbases, rc.probe_elements,
                                              rc.probe_threads,
                                              sched::Schedule::static_block(), 1);
      for (auto& program : pwl) pwls[ps].push_back(std::move(program));
      sim::Node pnode(pnc);
      const sim::NodeResult pres = pnode.run(pwls);

      NodeSample psample;
      psample.begin = global;
      global += pres.total_cycles;
      out.total_cycles += pres.total_cycles;
      out.probe_cycles += pres.total_cycles;
      psample.end = global;
      psample.socket_utilization = pres.socket_utilization;
      // System work: probe traffic is charged to tenant 0 on the probed
      // socket's controllers (global numbering: socket * chip controllers).
      const unsigned cps = map.spec().num_controllers();
      std::vector<unsigned> probe_mcs(cps);
      for (unsigned k = 0; k < cps; ++k) probe_mcs[k] = ps * cps + k;
      obs::Attribution::instance().charge_spread(
          0, probe_mcs, obs::Charge::kProbe, 0,
          pres.mem_read_bytes + pres.mem_write_bytes);
      sup.report_probe(ps, psample, global);
      continue;
    }
    if (dec.action != Action::kReplan) continue;

    const std::vector<NodeJob> candidate = plan_placement(
        jobs, sockets, n, dec.healthy_sockets, map, cfg.node.node, nullptr);
    if (same_placement(jobs, candidate)) {
      // Nothing to move (e.g. a link derate with every job already local):
      // record the new belief without paying a migration.
      sup.commit(global);
      ++out.replans;
      continue;
    }

    // Price the candidate against the diagnosis merged with the ramp
    // derates: a fault-change replan uses the fresh diagnosis, a fail-back
    // pull still sees the readmitted socket at partial weight.
    const sim::FaultSpec pricing =
        sim::FaultSpec::merged(dec.diagnosis, sup.belief());
    const double bw_now =
        placement_bw(jobs, cfg.threads, n, cfg.node, map, pricing);
    const double bw_new =
        placement_bw(candidate, cfg.threads, n, cfg.node, map, pricing);
    const std::vector<MovedRange> moved = moved_ranges(jobs, candidate);
    const unsigned remaining = cfg.slices - slice - 1;
    bool migrate = false;
    double mig_seconds = 0.0;
    std::uint64_t moved_bytes = 0;
    if (remaining > 0 && bw_now > 0.0 && bw_new > bw_now) {
      const double rem_bytes =
          static_cast<double>(remaining) * static_cast<double>(sockets) *
          static_cast<double>(kernels::triad_actual_bytes(n));
      const double saved = rem_bytes / bw_now - rem_bytes / bw_new;
      // Price each moved range: B, C, D read once from wherever the old home
      // is served under the diagnosis (link bandwidth when remote), then
      // first-touch written into the new home at the post-migration rate.
      for (const MovedRange& m : moved) {
        const double copy_bytes = 3.0 * static_cast<double>(m.count) * 8.0;
        moved_bytes += static_cast<std::uint64_t>(copy_bytes);
        const sim::NumaRoutes routes = sim::resolve_numa_routes(
            cfg.node.node, dec.diagnosis, m.new_compute);
        const unsigned serving = routes.home_serving[m.old_home];
        double read_bw = bw_new;
        if (serving != m.new_compute && routes.line_cycles[serving] > 0)
          read_bw = std::min(
              read_bw, 64.0 / static_cast<double>(routes.line_cycles[serving]) *
                           ghz * 1e9);
        mig_seconds += copy_bytes / read_bw + copy_bytes / bw_new;
      }
      migrate = saved * cfg.migration_safety >= mig_seconds;
    }
    if (!migrate) {
      ++out.declined;
      obs::trace_instant("sock.decline", "numa", global, 0);
      sup.abort(global);
      util::log_info("node_triad: migration declined at=" +
                     std::to_string(global) + " bw_now=" +
                     std::to_string(bw_now) + " bw_new=" +
                     std::to_string(bw_new) + " mig_s=" +
                     std::to_string(mig_seconds));
      continue;
    }

    jobs = plan_placement(jobs, sockets, n, dec.healthy_sockets, map,
                          cfg.node.node, &arena);
    // Integrity: re-hash every moved range after its copy and every payload
    // against its sidecar; shard moves must be bit-transparent.
    unsigned crc_verified = 0;
    for (const MovedRange& m : moved) {
      const double* src = payload[m.job_id].data() + m.begin;
      const std::uint32_t before_crc =
          util::crc32c(src, m.count * sizeof(double));
      const std::vector<double> transferred(src, src + m.count);
      const std::uint32_t after_crc =
          util::crc32c(transferred.data(), m.count * sizeof(double));
      if (before_crc != after_crc)
        throw std::runtime_error(
            "node_triad: CRC mismatch on shard move job=" +
            std::to_string(m.job_id) + " range=[" + std::to_string(m.begin) +
            "," + std::to_string(m.begin + m.count) + ")");
      ++crc_verified;
    }
    for (unsigned j = 0; j < sockets; ++j)
      if (util::crc32c(payload[j].data(), n * sizeof(double)) != sidecar[j])
        throw std::runtime_error(
            "node_triad: payload sidecar mismatch after migration, job=" +
            std::to_string(j));
    out.crc_ranges_verified += crc_verified;

    // Migration copies are system bytes, attributed to tenant 0 on the
    // destination socket's controllers (the first-touch writes land there).
    for (const MovedRange& m : moved) {
      const unsigned cps = map.spec().num_controllers();
      std::vector<unsigned> dst_mcs(cps);
      for (unsigned k = 0; k < cps; ++k)
        dst_mcs[k] = m.new_compute * cps + k;
      obs::Attribution::instance().charge_spread(
          0, dst_mcs, obs::Charge::kMigration, 0,
          3ULL * m.count * sizeof(double));
    }

    const arch::Cycles mig_cycles = seconds_to_cycles(mig_seconds, ghz);
    obs::trace_instant("sock.migrate", "numa", global, mig_cycles);
    global += mig_cycles;
    out.total_cycles += mig_cycles;
    out.migration_cycles += mig_cycles;
    sup.commit(global);
    ++out.replans;
    out.replan_log.push_back({global, dec.healthy_sockets, jobs, mig_cycles,
                              moved_bytes, crc_verified});
    util::log_info("node_triad: migrated at=" + std::to_string(global) +
                   " cost=" + std::to_string(mig_cycles) + " cycles shards=" +
                   std::to_string(jobs.size()) + " moved_bytes=" +
                   std::to_string(moved_bytes) + " crc_ok=" +
                   std::to_string(crc_verified));
  }

  out.suppressed = sup.suppressed();
  out.probes = sup.probes();
  out.probe_failures = sup.probe_failures();
  out.recoveries = sup.recoveries();
  out.readmissions = sup.readmissions();
  out.final_diagnosis =
      cfg.supervise && !last_sample.socket_utilization.empty()
          ? sup.diagnose(last_sample, sup.planned_against())
          : sim::FaultSpec{};
  out.final_socket_utilization = last_sample.socket_utilization;
  out.final_jobs = jobs;
  out.seconds = arch::cycles_to_seconds(out.total_cycles, ghz);
  out.bandwidth =
      out.seconds > 0.0 ? static_cast<double>(out.bytes) / out.seconds : 0.0;
  out.remote_fraction =
      out.bytes != 0
          ? static_cast<double>(out.remote_bytes) / static_cast<double>(out.bytes)
          : 0.0;
  return out;
}

}  // namespace mcopt::runtime
