// Cross-socket STREAM sweep — the fig-2 analogue at NUMA scale.
//
// Sweeps the four canonical placements of a per-socket vector triad over an
// N-socket node (local / interleaved / remote / first-touch, see
// numa_common.h) and reports DES vs analytic bandwidth plus remote-traffic
// share for each. The paper's ordering must reproduce:
//
//     local > interleaved > remote
//
// with first-touch (serial init: every page homed on socket 0) bottlenecked
// on domain 0's controllers. --schedule additionally runs the supervised
// node loop under a socket/link fault schedule (e.g. sock0:off@25%) and
// reports migration behavior and post-migration convergence against the
// surviving-socket analytic bandwidth; --json writes the whole snapshot
// (sweep rows + supervised run) to BENCH_numa.json.
//
// Per-socket controller timelines flow through --mc-timeline with
// "<placement>.sock<i>" labels.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "numa_common.h"
#include "runtime/numa_loop.h"

namespace {

using namespace mcopt;

struct SweepRow {
  std::string placement;
  double des_gbs = 0.0;
  double model_gbs = 0.0;
  double remote_fraction = 0.0;
};

struct SupervisedOutcome {
  bool ran = false;
  std::string schedule;
  double supervised_gbs = 0.0;
  double unsupervised_gbs = 0.0;
  double tail_gbs = 0.0;
  double survivor_model_gbs = 0.0;
  double convergence = 0.0;  ///< tail / survivor model
  unsigned replans = 0;
  unsigned declined = 0;
  unsigned suppressed = 0;
};

sim::NodeConfig node_config(const bench::NumaSweepParams& params,
                            const std::string& distance) {
  sim::NodeConfig cfg;
  cfg.node.num_sockets = params.sockets;
  bench::apply_distance_knob(distance, cfg.node);
  cfg.validate();
  return cfg;
}

std::vector<SweepRow> run_sweep(const bench::NumaSweepParams& params,
                                const sim::NodeConfig& cfg,
                                bench::ObsGuard& obs) {
  const bench::NumaPlacement placements[] = {
      bench::NumaPlacement::kLocal, bench::NumaPlacement::kInterleaved,
      bench::NumaPlacement::kRemote, bench::NumaPlacement::kFirstTouch};
  std::vector<SweepRow> rows;
  for (const bench::NumaPlacement p : placements) {
    sim::NodeConfig run_cfg = cfg;
    obs.apply(run_cfg.sim);
    bench::sim_runs_counter().inc();
    const sim::NodeResult res = bench::run_numa_placement(p, params, run_cfg);
    const sim::NodeEstimate est =
        bench::estimate_numa_placement(p, params, cfg);
    SweepRow row;
    row.placement = bench::numa_placement_name(p);
    row.des_gbs =
        bench::checked_rate(res.memory_bandwidth(), "node bandwidth") / 1e9;
    bench::gbs_histogram().observe(row.des_gbs);
    row.model_gbs =
        bench::checked_rate(est.bandwidth, "node model bandwidth") / 1e9;
    row.remote_fraction = res.remote_fraction();
    rows.push_back(row);
    for (unsigned s = 0; s < params.sockets; ++s)
      if (!res.sockets[s].mc_timeline.empty())
        obs.add_timeline(row.placement + ".sock" + std::to_string(s),
                         res.sockets[s].mc_timeline);
  }
  return rows;
}

SupervisedOutcome run_supervised(const bench::NumaSweepParams& params,
                                 const sim::NodeConfig& cfg,
                                 const std::string& schedule_text,
                                 unsigned slices, bench::ObsGuard& obs) {
  SupervisedOutcome out;
  out.ran = true;
  out.schedule = schedule_text;

  runtime::NodeLoopConfig loop;
  loop.node = cfg;
  obs.apply(loop.node.sim);
  loop.threads = params.threads;
  loop.slices = slices;

  // Probe the healthy horizon so percent stamps resolve.
  runtime::NodeLoopConfig probe = loop;
  probe.supervise = false;
  probe.node.sim.mc_sample_cadence = 0;
  const auto healthy = runtime::run_supervised_node_triad(params.n, probe);

  auto parsed = sim::FaultSchedule::parse(schedule_text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  const sim::FaultSchedule resolved =
      parsed.value().resolved(healthy.total_cycles);
  loop.node.sim.fault_schedule = resolved;

  loop.supervise = true;
  bench::sim_runs_counter().inc();
  const auto sup = runtime::run_supervised_node_triad(params.n, loop);
  loop.supervise = false;
  bench::sim_runs_counter().inc();
  const auto unsup = runtime::run_supervised_node_triad(params.n, loop);

  out.supervised_gbs = sup.bandwidth / 1e9;
  out.unsupervised_gbs = unsup.bandwidth / 1e9;
  bench::gbs_histogram().observe(out.supervised_gbs);
  bench::gbs_histogram().observe(out.unsupervised_gbs);
  out.replans = sup.replans;
  out.declined = sup.declined;
  out.suppressed = sup.suppressed;

  for (unsigned s = 0; s < sup.socket_timelines.size(); ++s)
    if (!sup.socket_timelines[s].empty())
      obs.add_timeline("supervised.sock" + std::to_string(s),
                       sup.socket_timelines[s]);

  // Convergence: the post-migration tail against the analytic bandwidth of
  // the committed placement under the believed fault state.
  if (!sup.replan_log.empty()) {
    const auto& last = sup.replan_log.back();
    out.tail_gbs = sup.tail_bandwidth(last.at, cfg.sim.topology.clock_ghz) /
                   1e9;
    std::vector<std::vector<sim::AnalyticStream>> streams(params.sockets);
    std::vector<unsigned> threads(params.sockets, 0);
    for (const runtime::NodeJob& job : last.jobs) {
      const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                        {job.bases[1], false},
                                                        {job.bases[2], false},
                                                        {job.bases[3], false}};
      const auto physical = sim::expand_rfo(logical);
      auto& dst = streams[job.compute_socket];
      dst.insert(dst.end(), physical.begin(), physical.end());
      threads[job.compute_socket] += params.threads;
    }
    const arch::AddressMap map(cfg.sim.interleave);
    out.survivor_model_gbs =
        sim::estimate_node_bandwidth(streams, threads, cfg.sim.calibration,
                                     map, cfg.node,
                                     cfg.sim.topology.clock_ghz,
                                     sup.final_diagnosis)
            .bandwidth /
        1e9;
    if (out.survivor_model_gbs > 0.0)
      out.convergence = out.tail_gbs / out.survivor_model_gbs;
  }
  return out;
}

void write_json(const std::string& path, const bench::NumaSweepParams& params,
                const std::vector<SweepRow>& rows,
                const SupervisedOutcome& sup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("numa_stream: cannot write " + path);
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"numa_stream\",\n"
               "  \"sockets\": %u,\n"
               "  \"n\": %zu,\n"
               "  \"threads_per_socket\": %u,\n"
               "  \"sweeps\": %u,\n"
               "  \"placements\": {\n",
               params.sockets, params.n, params.threads, params.sweeps);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f,
                 "    \"%s\": {\"des_gbs\": %.4f, \"model_gbs\": %.4f, "
                 "\"remote_fraction\": %.4f}%s\n",
                 rows[i].placement.c_str(), rows[i].des_gbs,
                 rows[i].model_gbs, rows[i].remote_fraction,
                 i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "  }");
  if (sup.ran) {
    std::fprintf(
        f,
        ",\n  \"supervised_outage\": {\n"
        "    \"schedule\": \"%s\",\n"
        "    \"supervised_gbs\": %.4f,\n"
        "    \"unsupervised_gbs\": %.4f,\n"
        "    \"tail_gbs\": %.4f,\n"
        "    \"survivor_model_gbs\": %.4f,\n"
        "    \"convergence\": %.4f,\n"
        "    \"replans\": %u,\n"
        "    \"declined\": %u,\n"
        "    \"suppressed\": %u\n"
        "  }",
        sup.schedule.c_str(), sup.supervised_gbs, sup.unsupervised_gbs,
        sup.tail_gbs, sup.survivor_model_gbs, sup.convergence, sup.replans,
        sup.declined, sup.suppressed);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Cross-socket STREAM sweep: per-socket triad bandwidth under the four "
      "NUMA placements, plus a supervised socket-outage run (--schedule)");
  cli.option_int("sockets", 2, "number of sockets (memory domains)")
      .option_int("n", 4096, "triad elements per socket's job")
      .option_int("threads", 16, "strands per socket")
      .option_int("sweeps", 4, "triad sweeps per placement run")
      .option_int("slices", 12, "supervision slices for --schedule mode")
      .option_str("distance", "",
                  "link cost: one integer (uniform cycles/line) or "
                  "sockets^2 row-major matrix entries")
      .option_str("schedule", "",
                  "socket/link fault schedule for the supervised run, e.g. "
                  "sock0:off@25% (percent stamps resolve against a healthy "
                  "probe)")
      .option_str("json", "", "write the snapshot here (BENCH_numa.json)")
      .option_str("csv", "", "mirror the sweep table to this CSV file");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  bench::NumaSweepParams params;
  params.sockets = static_cast<unsigned>(cli.get_int("sockets"));
  params.n = static_cast<std::size_t>(cli.get_int("n"));
  params.threads = static_cast<unsigned>(cli.get_int("threads"));
  params.sweeps = static_cast<unsigned>(cli.get_int("sweeps"));

  const sim::NodeConfig cfg = node_config(params, cli.get_str("distance"));
  // The sweep compares DES vs analytic rows: flag period-aligned thread
  // counts so a model gap reads as convoy resonance, not a regression.
  bench::warn_if_convoy_resonant("numa_stream", params.n, params.threads,
                                 arch::AddressMap(cfg.sim.interleave));
  std::printf("# cross-socket STREAM sweep: %u sockets, triad n=%zu, "
              "%u strands/socket, %u sweeps\n",
              params.sockets, params.n, params.threads, params.sweeps);

  const std::vector<SweepRow> rows = run_sweep(params, cfg, obs);
  std::vector<std::vector<std::string>> cells;
  for (const SweepRow& r : rows)
    cells.push_back({r.placement, std::to_string(r.des_gbs),
                     std::to_string(r.model_gbs),
                     std::to_string(r.remote_fraction)});
  bench::emit({"placement", "des_gbs", "model_gbs", "remote_fraction"}, cells,
              cli.get_str("csv"));

  bool ordering_ok = true;
  const auto gbs = [&](const char* name) {
    for (const SweepRow& r : rows)
      if (r.placement == name) return r.des_gbs;
    return 0.0;
  };
  if (!(gbs("local") > gbs("interleaved") && gbs("interleaved") > gbs("remote"))) {
    ordering_ok = false;
    std::printf("FAIL: local > interleaved > remote ordering violated\n");
  }

  SupervisedOutcome sup;
  const std::string schedule = cli.get_str("schedule");
  if (!schedule.empty()) {
    sup = run_supervised(params, cfg, schedule,
                         static_cast<unsigned>(cli.get_int("slices")), obs);
    std::printf(
        "\n# supervised outage (%s)\n"
        "supervised   %.3f GB/s (replans=%u declined=%u suppressed=%u)\n"
        "unsupervised %.3f GB/s\n"
        "post-migration tail %.3f GB/s vs survivor model %.3f GB/s "
        "(convergence %.3f)\n",
        sup.schedule.c_str(), sup.supervised_gbs, sup.replans, sup.declined,
        sup.suppressed, sup.unsupervised_gbs, sup.tail_gbs,
        sup.survivor_model_gbs, sup.convergence);
  }

  if (!cli.get_str("json").empty())
    write_json(cli.get_str("json"), params, rows, sup);

  // Exit contract for CI: the placement ordering must reproduce, and a
  // supervised run that committed a migration must converge to >= 90% of
  // its survivor-placement model.
  if (!ordering_ok) return 1;
  if (sup.ran && sup.replans > 0 && sup.convergence < 0.9) {
    std::printf("FAIL: post-migration convergence %.3f < 0.9\n",
                sup.convergence);
    return 1;
  }
  return 0;
}
