#pragma once
// Tiny declarative command-line parser for the bench/example executables.
//
// Supports `--name value`, `--name=value` and boolean `--flag`. Unknown
// options are an error (typos should not silently run the default sweep).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcopt::util {

/// Declarative option set; register options, then parse(argc, argv).
class Cli {
 public:
  explicit Cli(std::string program_description);

  Cli& flag(const std::string& name, const std::string& help);
  Cli& option_int(const std::string& name, std::int64_t def, const std::string& help);
  Cli& option_double(const std::string& name, double def, const std::string& help);
  Cli& option_str(const std::string& name, std::string def, const std::string& help);

  /// Parses argv. Returns false (after printing usage) iff --help was given.
  /// Throws std::invalid_argument on malformed values; unknown options are
  /// collected and reported all at once, each with a "did you mean" nearest
  /// registered name when one is within edit distance 2.
  bool parse(int argc, const char* const* argv);

  /// Closest registered option name (edit distance <= 2), or "" if none.
  /// Exposed for testing the typo-suggestion machinery.
  [[nodiscard]] std::string nearest(const std::string& name) const;

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_str(const std::string& name) const;

  void print_usage(const std::string& argv0) const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Opt {
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string str_value;
  };

  Opt& require(const std::string& name, Kind kind) const;

  std::string description_;
  mutable std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace mcopt::util
