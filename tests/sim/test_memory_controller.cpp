#include "sim/memory_controller.h"

#include <gtest/gtest.h>

namespace mcopt::sim {
namespace {

arch::Calibration cal() {
  arch::Calibration c;
  c.mc_read_service = 8;
  c.mc_write_service = 15;
  c.mc_request_overhead = 4;
  c.mc_turnaround = 16;
  c.dram_banks = 64;
  c.dram_row_bytes = 8192;
  c.dram_row_miss_extra = 20;
  return c;
}

MemoryController make_mc() { return MemoryController(cal(), arch::kT2Interleave); }

TEST(MemoryController, FirstReadCostsOverheadServiceAndActivate) {
  MemoryController mc = make_mc();
  // Cold bank: row conflict (nothing open) + overhead + read service.
  EXPECT_EQ(mc.request(0, false, 0x0), 20u + 4 + 8);
  EXPECT_EQ(mc.stats().reads, 1u);
  EXPECT_EQ(mc.stats().row_conflicts, 1u);
}

TEST(MemoryController, SameRowSecondAccessIsRowHit) {
  MemoryController mc = make_mc();
  const arch::Cycles first = mc.request(0, false, 0x0);
  // Next line owned by the same controller: +512 bytes, same local row.
  const arch::Cycles second = mc.request(first, false, 0x200);
  EXPECT_EQ(second - first, 4u + 8);
  EXPECT_EQ(mc.stats().row_hits, 1u);
}

TEST(MemoryController, FifoQueueing) {
  MemoryController mc = make_mc();
  const arch::Cycles a = mc.request(0, false, 0x0);
  // Arrives while busy: served after the first completes.
  const arch::Cycles b = mc.request(1, false, 0x200);
  EXPECT_EQ(b, a + 12);
  // Arrives after an idle gap: served immediately.
  const arch::Cycles c = mc.request(b + 100, false, 0x400);
  EXPECT_EQ(c, b + 100 + 12);
}

TEST(MemoryController, WritesAreSlowerAndTurnaroundCharged) {
  MemoryController mc = make_mc();
  const arch::Cycles r = mc.request(0, false, 0x0);
  const arch::Cycles w = mc.request(r, true, 0x200);  // read -> write flip
  EXPECT_EQ(w - r, 4u + 15 + 16);
  EXPECT_EQ(mc.stats().turnarounds, 1u);
  const arch::Cycles w2 = mc.request(w, true, 0x400);  // same direction
  EXPECT_EQ(w2 - w, 4u + 15);
  EXPECT_EQ(mc.stats().turnarounds, 1u);
}

TEST(MemoryController, NoTurnaroundOnFirstRequest) {
  MemoryController mc = make_mc();
  mc.request(0, true, 0x0);
  EXPECT_EQ(mc.stats().turnarounds, 0u);
}

TEST(MemoryController, BankPrepOverlapsBusForOtherBanks) {
  MemoryController mc = make_mc();
  // Two requests to different banks arriving together: the second bank's
  // activate overlaps the first transfer, so it only pays bus serialization.
  const arch::Cycles a = mc.request(0, false, 0x0);
  const std::size_t other_bank = 8192ull * 4 * 2;  // different local row group
  ASSERT_NE(mc.bank_of(0x0), mc.bank_of(other_bank));
  const arch::Cycles b = mc.request(0, false, other_bank);
  EXPECT_EQ(b, a + 12);  // no visible activate cost
  EXPECT_EQ(mc.stats().row_conflicts, 2u);
}

TEST(MemoryController, SameBankDifferentRowSerializesPrep) {
  MemoryController mc = make_mc();
  // Same bank, different rows: bank = local bits above the row; rows
  // alternate -> every access pays the activate on the critical path when
  // requests chain back-to-back.
  const arch::Addr row_a = 0x0;
  const arch::Addr row_b = 8192ull * 4 * 64 * 2;  // same bank, another row
  ASSERT_EQ(mc.bank_of(row_a), mc.bank_of(row_b));
  ASSERT_NE(mc.row_of(row_a), mc.row_of(row_b));
  arch::Cycles t = mc.request(0, false, row_a);
  const arch::Cycles t2 = mc.request(t, false, row_b);
  EXPECT_EQ(t2 - t, 20u + 12);  // activate visible
  const arch::Cycles t3 = mc.request(t2, false, row_a + 0x200);
  EXPECT_EQ(t3 - t2, 20u + 12);  // ping-pong keeps conflicting
}

TEST(MemoryController, LocalLineSqueezesControllerBits) {
  MemoryController mc = make_mc();
  // Lines owned by MC0 under T2 interleave: global line pairs {0,1}, {8,9}...
  // They must map to consecutive local lines, hence the same 8 KiB row.
  EXPECT_EQ(mc.row_of(0x0), mc.row_of(0x40));
  EXPECT_EQ(mc.row_of(0x0), mc.row_of(0x200));
  EXPECT_EQ(mc.bank_of(0x0), mc.bank_of(0x40));
}

TEST(MemoryController, BytesTransferred) {
  MemoryController mc = make_mc();
  mc.request(0, false, 0x0);
  mc.request(0, true, 0x200);
  EXPECT_EQ(mc.bytes_transferred(), 128u);
  EXPECT_EQ(mc.stats().line_transfers(), 2u);
}

TEST(MemoryController, ResetStats) {
  MemoryController mc = make_mc();
  mc.request(0, false, 0x0);
  mc.reset_stats();
  EXPECT_EQ(mc.stats().reads, 0u);
  EXPECT_EQ(mc.stats().busy_cycles, 0u);
}

TEST(MemoryController, RejectsBadDramGeometry) {
  arch::Calibration c = cal();
  c.dram_banks = 3;
  EXPECT_THROW(MemoryController(c, arch::kT2Interleave), std::invalid_argument);
  c = cal();
  c.dram_row_bytes = 100;
  EXPECT_THROW(MemoryController(c, arch::kT2Interleave), std::invalid_argument);
  c = cal();
  c.dram_row_bytes = 32;
  EXPECT_THROW(MemoryController(c, arch::kT2Interleave), std::invalid_argument);
}

TEST(MemoryController, LastCompletionTracksDrain) {
  MemoryController mc = make_mc();
  const arch::Cycles end = mc.request(0, false, 0x0);
  EXPECT_EQ(mc.stats().last_completion, end);
  const arch::Cycles end2 = mc.request(5, false, 0x200);
  EXPECT_EQ(mc.stats().last_completion, end2);
}

}  // namespace
}  // namespace mcopt::sim
