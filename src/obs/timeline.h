#pragma once
// Per-memory-controller utilization timelines: the time-resolved view the
// paper's aliasing argument needs (which controller each stream hits, and
// when) that end-of-run scalars cannot show. sim::Chip samples its
// controller counters on a configurable cycle cadence into a McTimeline;
// fig2/fig6/chaos turn one timeline per run into a controller x time CSV.
//
// The row type lives here (not in sim) so the obs layer stays independent
// of the simulator: sim depends on obs, never the reverse.

#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::obs {

/// One cadence interval [begin, end) with the busy fraction of each
/// controller inside it. Utilization can exceed 1.0: busy cycles are
/// attributed to the interval in which the request was enqueued, so a
/// burst that drains later inflates its issue interval (conserving total
/// busy time across the timeline).
struct McSample {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<double> utilization;  ///< one entry per controller

  [[nodiscard]] std::uint64_t length() const noexcept { return end - begin; }
};

using McTimeline = std::vector<McSample>;

/// One labelled timeline (e.g. "offset=64" for a fig2 sweep point).
struct McTimelineSeries {
  std::string label;
  McTimeline samples;
};

/// Writes `series` as CSV: label,sample,begin_cycle,end_cycle,mc0..mcK.
/// Controller count is taken from the widest row; narrower rows pad with
/// empty cells. Fails (typed Status) on an unwritable path.
[[nodiscard]] util::Status write_mc_timeline_csv(
    const std::string& path, const std::vector<McTimelineSeries>& series);

}  // namespace mcopt::obs
