#include "sim/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace mcopt::sim {

bool FaultSchedule::has_relative() const noexcept {
  return std::any_of(intervals.begin(), intervals.end(),
                     [](const Interval& iv) { return iv.relative; });
}

bool FaultSchedule::has_flap() const noexcept {
  return std::any_of(intervals.begin(), intervals.end(),
                     [](const Interval& iv) { return iv.flap_period != 0; });
}

FaultSchedule FaultSchedule::resolved(arch::Cycles horizon) const {
  FaultSchedule out;
  out.intervals.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    Interval r = iv;
    if (iv.relative) {
      r.relative = false;
      r.begin = static_cast<arch::Cycles>(
          std::llround(iv.begin_frac * static_cast<double>(horizon)));
      r.end = iv.end_frac < 0.0
                  ? kNever
                  : static_cast<arch::Cycles>(std::llround(
                        iv.end_frac * static_cast<double>(horizon)));
    }
    if (r.flap_period != 0) {
      // Expand the flap: the fault is active during the first half of each
      // period, so downstream consumers (chip, epochs, event_count, the
      // chaos replan budget) see the real transition timeline. An unbounded
      // flap end is clamped to the horizon (check() rejects it anyway).
      const arch::Cycles end = r.end == kNever ? horizon : r.end;
      const arch::Cycles half = std::max<arch::Cycles>(1, r.flap_period / 2);
      for (arch::Cycles b = r.begin; b < end; b += r.flap_period) {
        Interval off;
        off.fault = r.fault;
        off.begin = b;
        off.end = std::min<arch::Cycles>(b + half, end);
        out.intervals.push_back(std::move(off));
      }
      continue;
    }
    out.intervals.push_back(std::move(r));
  }
  return out;
}

FaultSchedule FaultSchedule::shifted(arch::Cycles offset) const {
  FaultSchedule out;
  for (const Interval& iv : intervals) {
    if (iv.end != kNever && iv.end <= offset) continue;  // already cleared
    Interval s = iv;
    s.begin = iv.begin > offset ? iv.begin - offset : 0;
    if (iv.end != kNever) s.end = iv.end - offset;
    out.intervals.push_back(std::move(s));
  }
  return out;
}

FaultSpec FaultSchedule::active_at(arch::Cycles cycle,
                                   const FaultSpec& baseline) const {
  FaultSpec active = baseline;
  for (const Interval& iv : intervals)
    if (cycle >= iv.begin && cycle < iv.end)
      active = FaultSpec::merged(active, iv.fault);
  return active;
}

std::vector<arch::Cycles> FaultSchedule::transitions() const {
  std::vector<arch::Cycles> cuts;
  for (const Interval& iv : intervals) {
    if (iv.begin > 0) cuts.push_back(iv.begin);
    if (iv.end != kNever) cuts.push_back(iv.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

std::size_t FaultSchedule::event_count() const noexcept {
  std::size_t events = 0;
  for (const Interval& iv : intervals) {
    if (iv.begin > 0) ++events;       // arrive (begin 0 is the initial state)
    if (iv.end != kNever) ++events;   // clear
  }
  return events;
}

std::vector<FaultSchedule::Epoch> FaultSchedule::epochs(
    arch::Cycles horizon, const FaultSpec& baseline) const {
  std::vector<arch::Cycles> cuts = transitions();
  if (horizon != kNever)
    cuts.erase(std::remove_if(cuts.begin(), cuts.end(),
                              [&](arch::Cycles c) { return c >= horizon; }),
               cuts.end());
  std::vector<Epoch> out;
  arch::Cycles begin = 0;
  for (arch::Cycles cut : cuts) {
    out.push_back({begin, cut, active_at(begin, baseline)});
    begin = cut;
  }
  out.push_back({begin, horizon, active_at(begin, baseline)});
  return out;
}

util::Status FaultSchedule::check(const arch::InterleaveSpec& spec,
                                  unsigned num_sockets) const {
  util::Status status;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const Interval& iv = intervals[i];
    const std::string tag = "FaultSchedule interval " + std::to_string(i);
    util::Status fault_status = iv.fault.check(spec, num_sockets);
    if (!fault_status.ok())
      status.note(tag + ": " + fault_status.error().message);
    if (iv.relative) {
      if (!(iv.begin_frac >= 0.0) || iv.begin_frac > 1.0)
        status.note(tag + ": percent begin must lie in [0, 100]");
      if (iv.end_frac >= 0.0 &&
          (iv.end_frac > 1.0 || iv.end_frac <= iv.begin_frac))
        status.note(tag + ": percent bounds must satisfy begin < end <= 100");
    } else if (iv.end != kNever && iv.end <= iv.begin) {
      status.note(tag + ": begin " + std::to_string(iv.begin) +
                  " must precede end " + std::to_string(iv.end));
    }
    if (iv.flap_period != 0) {
      const bool pure_sock_off =
          iv.fault.offline_sockets.size() == 1 &&
          iv.fault.offline_controllers.empty() && iv.fault.derates.empty() &&
          iv.fault.slow_banks.empty() && iv.fault.stragglers.empty() &&
          iv.fault.flips.empty() && iv.fault.socket_derates.empty() &&
          iv.fault.link_faults.empty();
      if (!pure_sock_off)
        status.note(tag + ": flap requires exactly one sock:off fault");
      const bool bounded = iv.relative ? iv.end_frac >= 0.0 : iv.end != kNever;
      if (!bounded)
        status.note(tag + ": flap interval needs a bounded end "
                    "(an unbounded flap never resolves to a timeline)");
      if (num_sockets <= 1)
        status.note(tag + ": flap needs a multi-socket topology");
    }
  }
  // Overlapping intervals must never conspire to offline the whole chip.
  // Percent bounds have no common timeline until resolved; the resolved
  // schedule re-runs this check (SimConfig::check sees only resolved ones).
  if (!has_relative() && status.ok()) {
    for (const Epoch& e : epochs(kNever)) {
      const std::string span =
          "[" + std::to_string(e.begin) + ", " +
          (e.end == kNever ? std::string("inf") : std::to_string(e.end)) + ")";
      if (e.faults.surviving_controllers(spec).empty()) {
        status.note(
            "FaultSchedule: overlapping intervals offline every controller "
            "during " + span);
        break;
      }
      if (num_sockets > 1 &&
          e.faults.surviving_sockets(num_sockets).empty()) {
        status.note(
            "FaultSchedule: overlapping intervals offline every socket "
            "during " + span);
        break;
      }
    }
  }
  return status;
}

namespace {

/// Percent bound printed with just enough digits that parse()'s
/// strtod-then-/100 recovers the stored fraction exactly. frac * 100.0
/// rounds, so the exact preimage of frac under /100 may sit a couple of ulps
/// away from the computed product — probe the neighborhood. Any fraction
/// that itself came out of parse() (p / 100 for some double p) has such a
/// preimage; for fractions that do not, the closest 17-digit form stands.
std::string format_percent(double frac) {
  char best[64];
  const double y = frac * 100.0;
  std::snprintf(best, sizeof best, "%.17g", y);
  const double lo = -std::numeric_limits<double>::infinity();
  const double hi = std::numeric_limits<double>::infinity();
  const double down1 = std::nextafter(y, lo);
  const double up1 = std::nextafter(y, hi);
  const double candidates[5] = {y, down1, up1, std::nextafter(down1, lo),
                                std::nextafter(up1, hi)};
  for (int precision = 1; precision <= 17; ++precision)
    for (double c : candidates) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g", precision, c);
      if (std::strtod(buf, nullptr) / 100.0 == frac)
        return std::string(buf) + "%";
    }
  return std::string(best) + "%";
}

}  // namespace

std::string FaultSchedule::describe() const {
  if (intervals.empty()) return "empty";
  std::string out;
  for (const Interval& iv : intervals) {
    std::string stamp;
    if (iv.relative) {
      stamp = '@' + format_percent(iv.begin_frac);
      if (iv.end_frac >= 0.0) stamp += ".." + format_percent(iv.end_frac);
    } else if (iv.begin != 0 || iv.end != kNever) {
      stamp = '@' + std::to_string(iv.begin);
      if (iv.end != kNever) stamp += ".." + std::to_string(iv.end);
    }
    if (iv.flap_period != 0) {
      // Unexpanded flap prints as its own grammar item so describe() output
      // re-parses to the same (unexpanded) timeline.
      if (!out.empty()) out += ',';
      out += "sock" + std::to_string(iv.fault.offline_sockets.front()) +
             ":flap=" + std::to_string(iv.flap_period) + stamp;
      continue;
    }
    // A multi-fault interval must emit one item per constituent fault, each
    // carrying the stamp: "mc0:off mc1:off@5..9" does not re-parse, but
    // "mc0:off@5..9,mc1:off@5..9" does (and is the same timeline).
    for (const Interval& single : constant(iv.fault).intervals) {
      if (!out.empty()) out += ',';
      out += single.fault.describe() + stamp;
    }
  }
  return out.empty() ? "empty" : out;
}

FaultSchedule FaultSchedule::constant(const FaultSpec& spec) {
  FaultSchedule sched;
  const auto add = [&sched](FaultSpec single) {
    Interval iv;
    iv.fault = std::move(single);
    sched.intervals.push_back(std::move(iv));
  };
  for (unsigned c : spec.offline_controllers) {
    FaultSpec s;
    s.offline_controllers = {c};
    add(std::move(s));
  }
  for (const FaultSpec::Derate& d : spec.derates) {
    FaultSpec s;
    s.derates = {d};
    add(std::move(s));
  }
  for (const FaultSpec::SlowBank& b : spec.slow_banks) {
    FaultSpec s;
    s.slow_banks = {b};
    add(std::move(s));
  }
  for (const FaultSpec::Straggler& st : spec.stragglers) {
    FaultSpec s;
    s.stragglers = {st};
    add(std::move(s));
  }
  for (const FaultSpec::BitFlip& f : spec.flips) {
    FaultSpec s;
    s.flips = {f};
    add(std::move(s));
  }
  for (unsigned sock : spec.offline_sockets) {
    FaultSpec s;
    s.offline_sockets = {sock};
    add(std::move(s));
  }
  for (const FaultSpec::SocketDerate& d : spec.socket_derates) {
    FaultSpec s;
    s.socket_derates = {d};
    add(std::move(s));
  }
  for (const FaultSpec::LinkFault& l : spec.link_faults) {
    FaultSpec s;
    s.link_faults = {l};
    add(std::move(s));
  }
  return sched;
}

namespace {

/// Splits "a,b,c" into trimmed non-empty items (mirrors FaultSpec::parse).
std::vector<std::string> split_items(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(start, comma - start);
    const auto lo = item.find_first_not_of(" \t");
    const auto hi = item.find_last_not_of(" \t");
    if (lo != std::string::npos) items.push_back(item.substr(lo, hi - lo + 1));
    start = comma + 1;
  }
  return items;
}

struct Bound {
  double value = 0.0;   // cycles, or fraction in [0,1] when percent
  bool percent = false;
};

/// Parses one time bound: a strtod-able cycle count ("1e6") or a percent of
/// the run ("25%"). Bounds ride through double; 2^53 keeps the cycle cast
/// exact (mirrors FaultSpec::parse's cycle handling).
util::Expected<Bound> parse_bound(const std::string& text,
                                  const std::string& item) {
  using Result = util::Expected<Bound>;
  if (text.empty())
    return Result::failure("FaultSchedule: empty time bound in '" + item + "'");
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  Bound bound;
  if (end != nullptr && *end == '%' && *(end + 1) == '\0') {
    if (!(parsed >= 0.0) || parsed > 100.0)
      return Result::failure("FaultSchedule: percent bound in '" + item +
                             "' must lie in [0, 100]");
    bound.value = parsed / 100.0;
    bound.percent = true;
    return bound;
  }
  if (end == nullptr || *end != '\0')
    return Result::failure("FaultSchedule: malformed time bound in '" + item +
                           "'");
  constexpr double kMaxCycles = 9007199254740992.0;  // 2^53
  if (!(parsed >= 0.0 && parsed <= kMaxCycles))
    return Result::failure("FaultSchedule: cycle bound in '" + item +
                           "' must lie in [0, 2^53]");
  bound.value = parsed;
  return bound;
}

}  // namespace

util::Expected<FaultSchedule> FaultSchedule::parse(const std::string& text) {
  return parse(text, FaultLimits{});
}

util::Expected<FaultSchedule> FaultSchedule::parse(const std::string& text,
                                                   const FaultLimits& limits) {
  using Result = util::Expected<FaultSchedule>;
  FaultSchedule sched;
  for (const std::string& item : split_items(text)) {
    const std::size_t at = item.find('@');
    const std::string fault_text = item.substr(0, at);

    Interval iv;
    // sock<i>:flap=<period> is schedule-level grammar (a FaultSpec has no
    // notion of time): intercept it before FaultSpec::parse.
    const std::size_t flap = fault_text.find(":flap=");
    if (flap != std::string::npos) {
      if (fault_text.compare(0, 4, "sock") != 0)
        return Result::failure("FaultSchedule: flap is socket-only in '" +
                               item + "'");
      char* idx_end = nullptr;
      const unsigned long sock =
          std::strtoul(fault_text.c_str() + 4, &idx_end, 10);
      if (idx_end != fault_text.c_str() + flap || flap == 4)
        return Result::failure("FaultSchedule: malformed socket index in '" +
                               item + "'");
      if (limits.num_sockets != 0 && sock >= limits.num_sockets)
        return Result::failure("FaultSchedule: socket " + std::to_string(sock) +
                               " out of range in '" + item + "'");
      const auto period = parse_bound(fault_text.substr(flap + 6), item);
      if (!period) return Result::failure(period.error().message);
      if (period.value().percent || period.value().value < 1.0)
        return Result::failure(
            "FaultSchedule: flap period in '" + item +
            "' must be a cycle count >= 1 (percent periods are not supported)");
      iv.fault.offline_sockets.push_back(static_cast<unsigned>(sock));
      iv.flap_period = static_cast<arch::Cycles>(period.value().value);
    } else {
      const auto spec = FaultSpec::parse(fault_text, limits);
      if (!spec) return Result::failure(spec.error().message);
      iv.fault = spec.value();
    }
    if (at != std::string::npos) {
      const std::string stamp = item.substr(at + 1);
      const std::size_t dots = stamp.find("..");
      const auto begin =
          parse_bound(stamp.substr(0, dots), item);
      if (!begin) return Result::failure(begin.error().message);
      util::Expected<Bound> end_bound = Bound{};
      const bool has_end = dots != std::string::npos;
      if (has_end) {
        end_bound = parse_bound(stamp.substr(dots + 2), item);
        if (!end_bound) return Result::failure(end_bound.error().message);
        if (begin.value().percent != end_bound.value().percent)
          return Result::failure(
              "FaultSchedule: mixed cycle/percent bounds in '" + item + "'");
      }
      if (begin.value().percent) {
        iv.relative = true;
        iv.begin_frac = begin.value().value;
        iv.end_frac = has_end ? end_bound.value().value : -1.0;
      } else {
        iv.begin = static_cast<arch::Cycles>(begin.value().value);
        iv.end = has_end ? static_cast<arch::Cycles>(end_bound.value().value)
                         : kNever;
      }
    }
    sched.intervals.push_back(std::move(iv));
  }
  return sched;
}

}  // namespace mcopt::sim
