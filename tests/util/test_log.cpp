#include "util/log.h"

#include <gtest/gtest.h>

namespace mcopt::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, ParsesLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
}

TEST(Log, ParsesLevelsCaseInsensitively) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("WaRn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
}

TEST(Log, ParsesNumericLevels) {
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
}

TEST(Log, RejectsGarbageLevels) {
  // MCOPT_LOG_LEVEL feeds this parser at startup; junk must map to nullopt
  // (the initializer then falls back to kInfo with a warning).
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
  EXPECT_EQ(parse_log_level("info "), std::nullopt);
  EXPECT_EQ(parse_log_level("debug,info"), std::nullopt);
}

TEST(Log, FormatsStructuredFields) {
  EXPECT_EQ(format_log_line("plain", {}), "plain");
  EXPECT_EQ(format_log_line("msg", {kv("mc", 2), kv("gbs", 3.5)}),
            "msg mc=2 gbs=3.5");
  EXPECT_EQ(format_log_line("m", {kv("ok", true), kv("bad", false)}),
            "m ok=true bad=false");
  EXPECT_EQ(format_log_line("m", {kv("neg", std::int64_t{-7})}), "m neg=-7");
}

TEST(Log, QuotesValuesThatWouldBreakSplitting) {
  // Spaces and quotes force double-quoting with minimal escaping; the line
  // must stay machine-splittable on unquoted whitespace.
  EXPECT_EQ(format_log_line("m", {kv("path", "/a b/c")}),
            "m path=\"/a b/c\"");
  EXPECT_EQ(format_log_line("m", {kv("q", "say \"hi\"")}),
            "m q=\"say \\\"hi\\\"\"");
  EXPECT_EQ(format_log_line("m", {kv("plain", "no-quotes-needed")}),
            "m plain=no-quotes-needed");
}

TEST(Log, EnvValidationIsTypedAndNamesTheBadValue) {
  // Unset or empty -> default level, not an error.
  EXPECT_TRUE(log_level_from_env(nullptr).has_value());
  EXPECT_EQ(log_level_from_env(nullptr).value(), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_env("").value(), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_env("debug").value(), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_env("2").value(), LogLevel::kWarn);

  const auto bad = log_level_from_env("verbose");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("verbose"), std::string::npos);
  EXPECT_NE(bad.error().message.find("MCOPT_LOG_LEVEL"), std::string::npos);
}

TEST(Log, MonotonicClockNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(Log, MirrorSeesRenderedLinesAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  static int calls;
  static std::string last;
  static LogLevel last_level;
  calls = 0;
  last.clear();
  set_log_mirror([](LogLevel level, std::uint64_t ts_ns, const char* text,
                    std::size_t len) {
    ++calls;
    last.assign(text, len);
    last_level = level;
    EXPECT_LE(ts_ns, monotonic_ns());
  });
  ASSERT_NE(log_mirror(), nullptr);

  log_debug("below threshold");  // dropped before the mirror
  log_warn("mirrored", {kv("mc", 3)});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last, "mirrored mc=3");
  EXPECT_EQ(last_level, LogLevel::kWarn);

  set_log_mirror(nullptr);
  EXPECT_EQ(log_mirror(), nullptr);
  log_warn("not mirrored");
  EXPECT_EQ(calls, 1);
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Suppressed messages must not crash or allocate surprisingly.
  log_debug("suppressed");
  log_info("suppressed");
  log_warn("suppressed");
  log_error("shown on stderr");
}

}  // namespace
}  // namespace mcopt::util
