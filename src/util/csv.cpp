#include "util/csv.h"

#include <stdexcept>

namespace mcopt::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width does not match header");
  write_row(cells);
  ++rows_;
}

void CsvWriter::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("CsvWriter: flush failed (disk full?)");
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_.put(',');
    out_ << escape(cells[i]);
  }
  out_.put('\n');
  if (!out_) throw std::runtime_error("CsvWriter: write failed");
}

}  // namespace mcopt::util
