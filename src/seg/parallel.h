#pragma once
// OpenMP-parallel hierarchical algorithms over segmented containers.
//
// The paper parallelizes "the loop over all segments" (Sect. 2.2); these
// helpers package that pattern: the segment loop is the OpenMP worksharing
// loop, the per-segment body is a tight serial loop over local iterators.
// Segment-to-thread assignment follows the given sched::Schedule, matching
// what the simulator replays.

#include <cstddef>
#include <stdexcept>

#include "seg/seg_array.h"
#include "sched/schedule.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mcopt::seg {

namespace detail {

inline void apply_omp_schedule(const sched::Schedule& schedule) {
#ifdef _OPENMP
  switch (schedule.kind) {
    case sched::ScheduleKind::kStatic:
      omp_set_schedule(omp_sched_static, 0);
      break;
    case sched::ScheduleKind::kStaticChunk:
      omp_set_schedule(omp_sched_static, static_cast<int>(schedule.chunk));
      break;
    case sched::ScheduleKind::kDynamic:
      omp_set_schedule(omp_sched_dynamic, static_cast<int>(schedule.chunk));
      break;
  }
#else
  (void)schedule;
#endif
}

}  // namespace detail

/// Applies f(element&) to every element, parallel over segments.
template <typename T, typename F>
void par_for_each(seg_array<T>& a, F f,
                  const sched::Schedule& schedule = sched::Schedule::static_block()) {
  detail::apply_omp_schedule(schedule);
  const auto segments = static_cast<std::ptrdiff_t>(a.num_segments());
#pragma omp parallel for schedule(runtime)
  for (std::ptrdiff_t s = 0; s < segments; ++s) {
    auto& seg = a.segment(static_cast<std::size_t>(s));
    for (T& v : seg) f(v);
  }
}

/// Parallel fill.
template <typename T>
void par_fill(seg_array<T>& a, const T& value,
              const sched::Schedule& schedule = sched::Schedule::static_block()) {
  par_for_each(a, [&](T& v) { v = value; }, schedule);
}

/// out[i] = op(in[i]); both containers must be identically segmented.
template <typename T, typename UnaryOp>
void par_transform(const seg_array<T>& in, seg_array<T>& out, UnaryOp op,
                   const sched::Schedule& schedule = sched::Schedule::static_block()) {
  if (in.num_segments() != out.num_segments())
    throw std::invalid_argument("par_transform: segmentation mismatch");
  detail::apply_omp_schedule(schedule);
  const auto segments = static_cast<std::ptrdiff_t>(in.num_segments());
#pragma omp parallel for schedule(runtime)
  for (std::ptrdiff_t s = 0; s < segments; ++s) {
    const auto us = static_cast<std::size_t>(s);
    const auto& src = in.segment(us);
    auto& dst = out.segment(us);
    if (src.size() != dst.size())
      throw std::invalid_argument("par_transform: segment size mismatch");
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = op(src[i]);
  }
}

/// Parallel sum reduction (OpenMP reduction over segment partial sums).
template <typename T>
T par_sum(const seg_array<T>& a,
          const sched::Schedule& schedule = sched::Schedule::static_block()) {
  detail::apply_omp_schedule(schedule);
  const auto segments = static_cast<std::ptrdiff_t>(a.num_segments());
  T total{};
#pragma omp parallel for schedule(runtime) reduction(+ : total)
  for (std::ptrdiff_t s = 0; s < segments; ++s) {
    const auto& seg = a.segment(static_cast<std::size_t>(s));
    T partial{};
    for (const T& v : seg) partial += v;
    total += partial;
  }
  return total;
}

}  // namespace mcopt::seg
