#include "util/cli.h"

#include <gtest/gtest.h>

namespace mcopt::util {
namespace {

Cli make_cli() {
  Cli cli("test program");
  cli.flag("full", "run full sweep")
      .option_int("n", 100, "problem size")
      .option_double("tau", 0.6, "relaxation")
      .option_str("layout", "IJKv", "data layout");
  return cli;
}

TEST(Cli, DefaultsWhenUnset) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("tau"), 0.6);
  EXPECT_EQ(cli.get_str("layout"), "IJKv");
}

TEST(Cli, ParsesSeparateValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--full", "--n", "42", "--tau", "0.9",
                        "--layout", "IvJK"};
  ASSERT_TRUE(cli.parse(8, argv));
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("tau"), 0.9);
  EXPECT_EQ(cli.get_str("layout"), "IvJK");
}

TEST(Cli, ParsesEqualsForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--n=7", "--layout=IvJK"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_EQ(cli.get_str("layout"), "IvJK");
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, ReportsAllUnknownOptionsAtOnce) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1", "--wrong", "--n", "42"};
  try {
    cli.parse(6, argv);
    FAIL() << "must throw";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("--bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--wrong"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown options"), std::string::npos) << msg;
  }
  // Known options given alongside the typos were still parsed.
  EXPECT_EQ(cli.get_int("n"), 42);
}

TEST(Cli, SuggestsNearestRegisteredName) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--layuot", "IvJK"};
  try {
    cli.parse(3, argv);
    FAIL() << "must throw";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("--layuot"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --layout"), std::string::npos) << msg;
  }
}

TEST(Cli, NearestFindsCloseNamesOnly) {
  const Cli cli = make_cli();
  EXPECT_EQ(cli.nearest("layuot"), "layout");   // transposition: distance 2
  EXPECT_EQ(cli.nearest("ful"), "full");        // missing char: distance 1
  EXPECT_EQ(cli.nearest("tau"), "tau");         // exact
  EXPECT_EQ(cli.nearest("zzzzzzzz"), "");       // nothing close
}

TEST(Cli, UnknownOptionSwallowsItsValue) {
  // The token after an unknown option is its presumed value, not a stray
  // positional; parsing must keep going and report only the typo.
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "stray-looking-token"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
  try {
    Cli cli2 = make_cli();
    cli2.parse(3, argv);
  } catch (const std::invalid_argument& ex) {
    EXPECT_EQ(std::string(ex.what()).find("positional"), std::string::npos);
  }
}

TEST(Cli, RejectsMissingValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, RejectsMalformedValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--n", "notanumber"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, RejectsValueOnFlag) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--full=yes"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, RejectsPositional) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, TypeMismatchIsLogicError) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_int("layout"), std::logic_error);
  EXPECT_THROW((void)cli.get_flag("n"), std::logic_error);
  EXPECT_THROW((void)cli.get_str("unregistered"), std::logic_error);
}

}  // namespace
}  // namespace mcopt::util
