#include "runtime/executor/pricing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/triad.h"

namespace mcopt::runtime::exec {
namespace {

JobSpec triad_job(std::size_t n = 4096, unsigned iterations = 1) {
  JobSpec j;
  j.kind = JobKind::kTriad;
  j.n = n;
  j.iterations = iterations;
  return j;
}

TEST(Pricing, TrafficBytesFollowTheDocumentedConventions) {
  EXPECT_EQ(PricingModel::traffic_bytes(triad_job(1000, 1)),
            kernels::triad_actual_bytes(1000));
  EXPECT_EQ(PricingModel::traffic_bytes(triad_job(1000, 5)),
            5 * kernels::triad_actual_bytes(1000));

  JobSpec jacobi;
  jacobi.kind = JobKind::kJacobi;
  jacobi.n = 64;
  jacobi.iterations = 3;
  EXPECT_EQ(PricingModel::traffic_bytes(jacobi), 24u * 64 * 64 * 3);

  JobSpec lbm;
  lbm.kind = JobKind::kLbm;
  lbm.n = 16;
  lbm.iterations = 2;
  EXPECT_EQ(PricingModel::traffic_bytes(lbm), 456u * 16 * 16 * 16 * 2);
}

TEST(Pricing, HealthyQuoteConvertsTrafficAtTheAnalyticBandwidth) {
  const PricingModel model;
  const JobSpec job = triad_job();
  const auto quote = model.price(job, {});
  ASSERT_TRUE(quote);
  EXPECT_GT(quote.value().bandwidth, 0.0);
  EXPECT_EQ(quote.value().bytes, PricingModel::traffic_bytes(job));
  const auto expected = static_cast<arch::Cycles>(
      std::ceil(static_cast<double>(quote.value().bytes) /
                quote.value().bandwidth * model.clock_hz()));
  EXPECT_EQ(quote.value().service_cycles, expected);
  EXPECT_EQ(quote.value().plan_set, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Pricing, ServiceCyclesScaleLinearlyWithIterations) {
  const PricingModel model;
  const auto one = model.price(triad_job(4096, 1), {});
  const auto ten = model.price(triad_job(4096, 10), {});
  ASSERT_TRUE(one);
  ASSERT_TRUE(ten);
  // Same layout, same bandwidth, 10x the traffic (ceil rounds by <1 cycle).
  EXPECT_DOUBLE_EQ(ten.value().bandwidth, one.value().bandwidth);
  EXPECT_NEAR(static_cast<double>(ten.value().service_cycles),
              10.0 * static_cast<double>(one.value().service_cycles),
              10.0);
}

TEST(Pricing, OfflineControllerRaisesTheQuote) {
  const PricingModel model;
  sim::FaultSpec faults;
  faults.offline_controllers = {0};
  const auto healthy = model.price(triad_job(), {});
  const auto degraded = model.price(triad_job(), faults);
  ASSERT_TRUE(healthy);
  ASSERT_TRUE(degraded);
  EXPECT_LT(degraded.value().bandwidth, healthy.value().bandwidth);
  EXPECT_GT(degraded.value().service_cycles, healthy.value().service_cycles);
  EXPECT_EQ(degraded.value().plan_set, (std::vector<unsigned>{1, 2, 3}));
}

TEST(Pricing, DeratedControllerRaisesTheQuote) {
  const PricingModel model;
  sim::FaultSpec faults;
  faults.derates.push_back({2, 0.5});
  const auto healthy = model.price(triad_job(), {});
  const auto degraded = model.price(triad_job(), faults);
  ASSERT_TRUE(healthy);
  ASSERT_TRUE(degraded);
  EXPECT_GT(degraded.value().service_cycles, healthy.value().service_cycles);
  // Derated controllers still serve traffic, so they stay in the plan set.
  EXPECT_EQ(degraded.value().plan_set, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Pricing, NoSurvivingControllerFailsRecoverably) {
  const PricingModel model;
  sim::FaultSpec faults;
  faults.offline_controllers = {0, 1, 2, 3};
  const auto quote = model.price(triad_job(), faults);
  ASSERT_FALSE(quote);  // Expected failure, not a throw: executor sheds typed
  EXPECT_NE(quote.error().message.find("no surviving"), std::string::npos);
  const auto est = model.estimate(JobKind::kTriad, faults);
  EXPECT_FALSE(est);
}

TEST(Pricing, RooflineIsTheHealthyPlannedBandwidth) {
  const PricingModel model;
  for (const JobKind kind :
       {JobKind::kTriad, JobKind::kJacobi, JobKind::kLbm}) {
    const double roof = model.roofline_bandwidth(kind);
    EXPECT_GT(roof, 1e9) << to_string(kind);  // >1 GB/s: sane magnitude
    JobSpec probe;
    probe.kind = kind;
    probe.n = 4096;
    const auto healthy = model.price(probe, {});
    ASSERT_TRUE(healthy);
    EXPECT_DOUBLE_EQ(roof, healthy.value().bandwidth) << to_string(kind);
    sim::FaultSpec faults;
    faults.offline_controllers = {1};
    const auto degraded = model.price(probe, faults);
    ASSERT_TRUE(degraded);
    // Never above the roofline; 2-stream kernels (jacobi/lbm) can replan
    // around a single dead controller without losing planned bandwidth
    // (streams <= survivors), so equality is allowed there.
    EXPECT_LE(degraded.value().bandwidth, roof) << to_string(kind);
    if (kind == JobKind::kTriad)
      EXPECT_LT(degraded.value().bandwidth, roof);
  }
}

TEST(Pricing, EstimateExposesTheUtilizationStandIn) {
  // The executor's workers feed the supervisor utilization vectors computed
  // under the ground-truth fault state; an offline controller must read 0.
  const PricingModel model;
  sim::FaultSpec faults;
  faults.offline_controllers = {3};
  const auto est = model.estimate(JobKind::kJacobi, faults);
  ASSERT_TRUE(est);
  ASSERT_EQ(est.value().mc_utilization.size(), 4u);
  EXPECT_EQ(est.value().mc_utilization[3], 0.0);
  const auto healthy = model.estimate(JobKind::kJacobi, {});
  ASSERT_TRUE(healthy);
  for (const double u : healthy.value().mc_utilization) EXPECT_GT(u, 0.1);
}

TEST(Pricing, RejectsDegenerateConfigs) {
  EXPECT_THROW(PricingModel({.clock_ghz = 0.0}), std::invalid_argument);
  EXPECT_THROW(PricingModel({.clock_ghz = 1.2, .pricing_threads = 0}),
               std::invalid_argument);
}

TEST(NodePricing, HealthyNodeOutPricesOneChip) {
  const PricingModel model;
  arch::NodeTopology node;  // 2 sockets
  const JobSpec job = triad_job();
  const auto chip = model.price(job, {});
  const auto whole = model.price_node(job, node, {});
  ASSERT_TRUE(chip);
  ASSERT_TRUE(whole);
  // Two sockets' worth of controllers serve the same traffic: quoted
  // bandwidth grows and the virtual service cost shrinks.
  EXPECT_GT(whole.value().bandwidth, 1.5 * chip.value().bandwidth);
  EXPECT_LT(whole.value().service_cycles, chip.value().service_cycles);
  EXPECT_EQ(whole.value().plan_set, (std::vector<unsigned>{0, 1}));
}

TEST(NodePricing, SocketLossShrinksAdmissionCapacity) {
  const PricingModel model;
  arch::NodeTopology node;  // 2 sockets
  const JobSpec job = triad_job();
  const auto healthy = model.price_node(job, node, {});
  const auto degraded =
      model.price_node(job, node, sim::FaultSpec::parse("sock1:off").value());
  ASSERT_TRUE(healthy);
  ASSERT_TRUE(degraded);
  // Socket 1's shard now lives across the link: the same job quotes at a
  // lower bandwidth, i.e. more service cycles — the admission gate sees the
  // node's capacity shrink without any executor change.
  EXPECT_LT(degraded.value().bandwidth, 0.7 * healthy.value().bandwidth);
  EXPECT_GT(degraded.value().service_cycles, healthy.value().service_cycles);
  EXPECT_EQ(degraded.value().plan_set, (std::vector<unsigned>{0}));
}

TEST(NodePricing, LinkDerateRaisesTheRemotePriceFurther) {
  const PricingModel model;
  arch::NodeTopology node;  // 2 sockets
  const JobSpec job = triad_job();
  const auto outage =
      model.price_node(job, node, sim::FaultSpec::parse("sock1:off").value());
  const auto outage_and_slow_link = model.price_node(
      job, node,
      sim::FaultSpec::parse("sock1:off,link0-1:derate=0.5").value());
  ASSERT_TRUE(outage);
  ASSERT_TRUE(outage_and_slow_link);
  EXPECT_GT(outage_and_slow_link.value().service_cycles,
            outage.value().service_cycles);
}

TEST(NodePricing, AllSocketMemoryDeadFailsRecoverably) {
  const PricingModel model;
  arch::NodeTopology node;  // 2 sockets
  const auto quote = model.price_node(
      triad_job(), node, sim::FaultSpec::parse("sock0:off,sock1:off").value());
  ASSERT_FALSE(quote);
  EXPECT_NE(quote.error().message.find("no surviving socket"),
            std::string::npos);
}

}  // namespace
}  // namespace mcopt::runtime::exec
