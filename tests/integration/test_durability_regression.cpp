// DurabilityRegression (tier-1): the crash-consistency contract under a real
// SIGKILL. A child process runs the durable service through a deterministic
// multi-tenant submission stream — group-committing every batch, recording
// its ack watermark in a side file only AFTER flush() returns — and the
// parent kills it with SIGKILL at a chosen moment. The parent then restarts
// the service on the same directory and asserts, against an uninterrupted
// reference run of the same stream:
//
//   * zero acknowledged-submission loss — every id at or below the child's
//     last durable ack watermark is known to the restarted service;
//   * no double execution — journaled completions are credited from the
//     record, and the final per-tenant completed counts match the reference
//     exactly (a re-run would overshoot);
//   * byte-exact ledger reconciliation — per-tenant served bytes and typed
//     shed counts equal the uninterrupted run's, because door verdicts
//     replay bit-identically and quotes are deterministic;
//   * restart idempotence — a second restart after the recovery drain is
//     sealed and reports the same ledger.
//
// SIGKILL (not SIGTERM) is the point: no handler runs, stdio buffers die
// unflushed, and the journal may be torn mid-record — recovery must truncate
// and report the tail, never refuse or silently mangle it.

#ifndef _WIN32

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/durable/service_handle.h"

namespace mcopt::runtime::durable {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kJobs = 60;
constexpr std::uint64_t kBatch = 10;

/// Two tenants, batch SLO (no deadlines — deterministic quotes), accounting
/// mode. Tenant 2 carries a tight byte quota so door sheds are part of the
/// history being reconciled.
DurableConfig workload_config(const std::string& dir) {
  DurableConfig cfg;
  cfg.dir = dir;
  cfg.service.executor.num_workers = 2;
  cfg.service.executor.run_kernels = false;
  cfg.service.executor.lane_capacity = {4096, 4096, 4096};
  cfg.service.executor.seed = 1234;
  cfg.tenants.push_back(
      {.name = "steady", .weight = 2.0, .slo = service::SloClass::kBatch});
  cfg.tenants.push_back({.name = "capped",
                         .weight = 1.0,
                         .quota_bytes_per_s = 250000.0,
                         .burst_seconds = 1.0,
                         .slo = service::SloClass::kBatch,
                         .breaker_trip_threshold = 6});
  return cfg;
}

exec::JobSpec job_for(std::uint64_t id) {
  exec::JobSpec spec;
  spec.kind = exec::JobKind::kTriad;
  spec.n = 2048 + 128 * (id % 5);
  spec.iterations = 1 + static_cast<unsigned>(id % 3);
  spec.arrival = id * 20000;
  return spec;
}

service::TenantId tenant_for(std::uint64_t id) {
  return 1 + static_cast<service::TenantId>(id % 2);
}

/// Durably records "every id <= max_id is acked" — written only after
/// flush() returned, fsync'd before rename, so the marker never overstates.
void write_ack_marker(const std::string& dir, std::uint64_t max_id) {
  const std::string tmp = dir + "/acked.tmp";
  const std::string final_path = dir + "/acked.txt";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%llu\n", static_cast<unsigned long long>(max_id));
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  std::rename(tmp.c_str(), final_path.c_str());
}

std::uint64_t read_ack_marker(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/acked.txt").c_str(), "rb");
  if (f == nullptr) return 0;
  unsigned long long v = 0;
  const int got = std::fscanf(f, "%llu", &v);
  std::fclose(f);
  return got == 1 ? v : 0;
}

/// The child's serving loop: submit in batches, flush (ack) each batch,
/// pump outcomes, checkpoint occasionally, briefly sleep so the parent's
/// kill lands at a mid-stream instant. Returns false on any local failure.
bool run_workload(const std::string& dir, bool drain_at_end,
                  unsigned inter_batch_us) {
  auto handle = ServiceHandle::open(workload_config(dir));
  if (!handle) return false;
  ServiceHandle& h = *handle.value();
  for (std::uint64_t first = 1; first <= kJobs; first += kBatch) {
    const std::uint64_t last = std::min(kJobs, first + kBatch - 1);
    for (std::uint64_t id = first; id <= last; ++id)
      (void)h.submit(tenant_for(id), id, job_for(id));
    if (!h.flush().ok()) return false;
    write_ack_marker(dir, last);
    (void)h.pump();
    if (((first / kBatch) % 3) == 2 && !h.checkpoint().ok()) return false;
    if (inter_batch_us > 0) ::usleep(inter_batch_us);
  }
  if (drain_at_end && !h.drain(nullptr).ok()) return false;
  return true;
}

std::vector<TenantLedger> reference_ledger(const std::string& dir) {
  EXPECT_TRUE(run_workload(dir, /*drain_at_end=*/true, 0));
  auto h = ServiceHandle::open(workload_config(dir));
  EXPECT_TRUE(h.has_value());
  return h.has_value() ? h.value()->ledger() : std::vector<TenantLedger>{};
}

class DurabilityRegression : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("mcopt_durreg_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::create_directories(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  [[nodiscard]] std::string subdir(const std::string& name) const {
    fs::create_directories(root_ / name);
    return (root_ / name).string();
  }
  fs::path root_;
};

/// Forks the workload, SIGKILLs it after `kill_after_us`, restarts on the
/// same directory, resubmits the full id stream (the client retrying
/// everything it never saw acked), drains, and reconciles.
void kill_and_reconcile(const std::string& dir,
                        const std::vector<TenantLedger>& want,
                        unsigned kill_after_us) {
  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // In the child: no gtest, no exit handlers — run and die.
    const bool ok = run_workload(dir, /*drain_at_end=*/true,
                                 /*inter_batch_us=*/1500);
    ::_exit(ok ? 0 : 42);
  }
  // Arm the kill timer only once the child's journal header is on disk:
  // the delay is meant to land the SIGKILL N microseconds into *journaled
  // traffic*, not N microseconds after fork — on a loaded machine process
  // startup alone can eat a short fuse, leaving a fresh start (or a
  // headerless file) instead of a restart.
  const std::string journal = workload_config(dir).journal_path();
  const auto header_durable = [&journal] {
    std::error_code ec;
    return fs::file_size(journal, ec) >= 20 && !ec;
  };
  for (int i = 0; i < 20000 && !header_durable(); ++i) ::usleep(100);
  ASSERT_TRUE(header_durable()) << "child never created the journal";
  ::usleep(kill_after_us);
  (void)::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  if (WIFEXITED(status))
    ASSERT_EQ(WEXITSTATUS(status), 0) << "child failed before the kill";

  const std::uint64_t acked = read_ack_marker(dir);

  // Restart. A torn tail is acceptable (and expected for mid-write kills);
  // a refusal is not.
  auto handle = ServiceHandle::open(workload_config(dir));
  ASSERT_TRUE(handle.has_value())
      << "kill@" << kill_after_us << "us: " << handle.error().message;
  ServiceHandle& h = *handle.value();
  EXPECT_TRUE(h.recovery_info().restarted);

  // Zero acknowledged-submission loss: every id the child saw flush()
  // return for is known to the restarted service.
  for (std::uint64_t id = 1; id <= acked; ++id)
    EXPECT_NE(h.poll(id).state, SubmissionState::kUnknown)
        << "acked id " << id << " lost (kill@" << kill_after_us << "us)";

  // The client retries the whole stream; duplicates dedupe, the rest runs.
  for (std::uint64_t id = 1; id <= kJobs; ++id)
    (void)h.submit(tenant_for(id), id, job_for(id));
  ASSERT_TRUE(h.flush().ok());
  ASSERT_TRUE(h.drain(nullptr).ok());

  const std::vector<TenantLedger> got = h.ledger();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].completed, want[i].completed)
        << "tenant " << i + 1 << " completed (kill@" << kill_after_us << "us)";
    EXPECT_EQ(got[i].served_bytes, want[i].served_bytes)
        << "tenant " << i + 1 << " bytes (kill@" << kill_after_us << "us)";
    EXPECT_EQ(got[i].sheds, want[i].sheds)
        << "tenant " << i + 1 << " sheds (kill@" << kill_after_us << "us)";
  }

  // Restart idempotence: reopening after the recovery drain is clean.
  auto again = ServiceHandle::open(workload_config(dir));
  ASSERT_TRUE(again.has_value()) << again.error().message;
  EXPECT_TRUE(again.value()->recovery_info().was_sealed);
  const std::vector<TenantLedger> still = again.value()->ledger();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(still[i].served_bytes, want[i].served_bytes) << "tenant " << i;
    EXPECT_EQ(still[i].completed, want[i].completed) << "tenant " << i;
  }
}

TEST_F(DurabilityRegression, LedgerReconcilesAfterEarlyKill) {
  const std::vector<TenantLedger> want = reference_ledger(subdir("ref"));
  ASSERT_EQ(want.size(), 2u);
  ASSERT_GT(want[1].sheds, 0u) << "quota tenant never shed — test is vacuous";
  kill_and_reconcile(subdir("kill"), want, 800);
}

TEST_F(DurabilityRegression, LedgerReconcilesAfterMidStreamKill) {
  const std::vector<TenantLedger> want = reference_ledger(subdir("ref"));
  kill_and_reconcile(subdir("kill"), want, 5000);
}

TEST_F(DurabilityRegression, LedgerReconcilesAfterLateOrPostDrainKill) {
  // Late enough that the child may finish and seal before the kill lands —
  // reconciliation must hold on a sealed journal too (pure dedup path).
  const std::vector<TenantLedger> want = reference_ledger(subdir("ref"));
  kill_and_reconcile(subdir("kill"), want, 20000);
}

TEST_F(DurabilityRegression, ReplayAloneNeverChangesTheJournalVerdicts) {
  // Kill, then open/close WITHOUT resubmitting three times: every recovery
  // reports the same replay shape (replay is idempotent and read-only up to
  // tail truncation, which only the first recovery performs).
  const std::string dir = subdir("kill");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const bool ok = run_workload(dir, true, 1500);
    ::_exit(ok ? 0 : 42);
  }
  ::usleep(4000);
  (void)::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  RecoveryInfo first;
  for (int round = 0; round < 3; ++round) {
    auto h = ServiceHandle::open(workload_config(dir));
    ASSERT_TRUE(h.has_value()) << "round " << round << ": "
                               << h.error().message;
    const RecoveryInfo& info = h.value()->recovery_info();
    if (round == 0) {
      first = info;
    } else {
      EXPECT_EQ(info.replayed_submissions, first.replayed_submissions);
      EXPECT_EQ(info.completed_skipped, first.completed_skipped);
      EXPECT_EQ(info.sheds_replayed, first.sheds_replayed);
      EXPECT_EQ(info.resubmitted, first.resubmitted);
      EXPECT_EQ(info.dropped_bytes, 0u) << "tail re-torn on round " << round;
    }
  }
}

}  // namespace
}  // namespace mcopt::runtime::durable

#endif  // _WIN32
