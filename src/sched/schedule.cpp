#include "sched/schedule.h"

#include <algorithm>
#include <stdexcept>

namespace mcopt::sched {

std::string Schedule::describe() const {
  switch (kind) {
    case ScheduleKind::kStatic:
      return "static";
    case ScheduleKind::kStaticChunk:
      return "static," + std::to_string(chunk);
    case ScheduleKind::kDynamic:
      return "dynamic," + std::to_string(chunk);
  }
  return "?";
}

util::Status Schedule::check() const {
  util::Status status;
  if ((kind == ScheduleKind::kStaticChunk || kind == ScheduleKind::kDynamic) &&
      chunk == 0)
    status.note("Schedule: " + describe() + " requires chunk >= 1");
  if (chunk > (std::size_t{1} << 48))
    status.note("Schedule: chunk " + std::to_string(chunk) +
                " is implausibly large (overflow guard)");
  return status;
}

void Schedule::validate() const { check().throw_if_failed(); }

std::vector<IterRange> chunks_for_thread(std::size_t n, unsigned num_threads,
                                         unsigned t, const Schedule& schedule) {
  if (num_threads == 0) throw std::invalid_argument("chunks_for_thread: zero threads");
  if (t >= num_threads) throw std::invalid_argument("chunks_for_thread: t out of range");

  std::vector<IterRange> chunks;
  if (n == 0) return chunks;

  switch (schedule.kind) {
    case ScheduleKind::kStatic: {
      // libgomp: q = n/T iterations each, first n%T threads get one more.
      const std::size_t q = n / num_threads;
      const std::size_t r = n % num_threads;
      const std::size_t begin = t * q + std::min<std::size_t>(t, r);
      const std::size_t len = q + (t < r ? 1 : 0);
      if (len != 0) chunks.push_back({begin, begin + len});
      break;
    }
    case ScheduleKind::kStaticChunk:
    case ScheduleKind::kDynamic: {
      // Dynamic is modeled deterministically as round-robin chunks; with
      // uniform iteration cost this is what a real dynamic schedule converges
      // to, and it keeps simulator runs reproducible.
      const std::size_t c = schedule.chunk == 0 ? 1 : schedule.chunk;
      for (std::size_t start = static_cast<std::size_t>(t) * c; start < n;
           start += static_cast<std::size_t>(num_threads) * c) {
        chunks.push_back({start, std::min(start + c, n)});
      }
      break;
    }
  }
  return chunks;
}

std::vector<std::vector<IterRange>> partition(std::size_t n, unsigned num_threads,
                                              const Schedule& schedule) {
  std::vector<std::vector<IterRange>> result(num_threads);
  for (unsigned t = 0; t < num_threads; ++t)
    result[t] = chunks_for_thread(n, num_threads, t, schedule);
  return result;
}

}  // namespace mcopt::sched
