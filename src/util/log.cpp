#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mcopt::util {
namespace {

/// Initial threshold: MCOPT_LOG_LEVEL when set and parseable, else kInfo.
/// Runs once at static-init time, before main. Kept warn-and-default here
/// (library consumers must not abort in a static initializer); CLI entry
/// points call log_level_from_env() and turn the same junk into a hard
/// error.
LogLevel initial_level() {
  const char* env = std::getenv("MCOPT_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  if (const auto parsed = parse_log_level(env)) return *parsed;
  std::fprintf(stderr,
               "[WARN ] MCOPT_LOG_LEVEL='%s' is not a log level "
               "(want debug|info|warn|error or 0-3); using info\n",
               env);
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<LogMirror> g_mirror{nullptr};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (char ch : v)
    if (ch == ' ' || ch == '"' || ch == '=' || ch == '\\' || ch == '\n' ||
        ch == '\t')
      return true;
  return false;
}

void append_field_value(std::string& out, const std::string& v) {
  if (!needs_quoting(v)) {
    out += v;
    return;
  }
  out += '"';
  for (char ch : v) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  out += '"';
}

void emit(LogLevel level, const std::string& line) {
  const std::uint64_t ts = monotonic_ns();
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), line.c_str());
  if (const LogMirror mirror = g_mirror.load(std::memory_order_acquire))
    mirror(level, ts, line.c_str(), line.size());
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  for (char ch : text)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

Expected<LogLevel> log_level_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return LogLevel::kInfo;
  if (const auto parsed = parse_log_level(value)) return *parsed;
  return Expected<LogLevel>::failure(
      std::string("MCOPT_LOG_LEVEL='") + value +
      "' is not a log level (want debug|info|warn|error or 0-3)");
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

std::uint64_t monotonic_ns() noexcept {
  using clock = std::chrono::steady_clock;
  // Zero-based at first use so timestamps stay small and readable; the
  // trace recorder shares this function, keeping log lines and trace
  // events on one axis.
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

LogField kv(std::string key, const std::string& value) {
  return LogField{std::move(key), value};
}
LogField kv(std::string key, const char* value) {
  return LogField{std::move(key), value == nullptr ? std::string() : value};
}
LogField kv(std::string key, std::uint64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField kv(std::string key, std::int64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField kv(std::string key, int value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField kv(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return LogField{std::move(key), buf};
}
LogField kv(std::string key, bool value) {
  return LogField{std::move(key), value ? "true" : "false"};
}

std::string format_log_line(const std::string& message,
                            const std::vector<LogField>& fields) {
  std::string line = message;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    append_field_value(line, f.value);
  }
  return line;
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  emit(level, message);
}

void log(LogLevel level, const std::string& message,
         const std::vector<LogField>& fields) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  emit(level, format_log_line(message, fields));
}

void set_log_mirror(LogMirror mirror) noexcept {
  g_mirror.store(mirror, std::memory_order_release);
}

LogMirror log_mirror() noexcept {
  return g_mirror.load(std::memory_order_acquire);
}

}  // namespace mcopt::util
