// Fig. 6 reproduction: 2D Jacobi five-point relaxation performance
// (MLUPs/s) versus problem size N for 8..64 threads with the optimal layout
// (rows aligned to 512 B, cumulative 128 B shift, OpenMP "static,1"), plus
// the unoptimized 64-thread baseline.
//
// Paper shape (Sect. 2.3): the optimized curves are smooth in N and scale
// with the thread count towards ~600 MLUPs/s; the plain 64-thread curve
// shows the usual period-64/32 collapses. The optimal parameters are
// derived analytically by the planner — no trial and error.

#include "common.h"
#include "runtime/checkpoint.h"
#include "runtime/supervised_loop.h"
#include "seg/integrity.h"
#include "util/crc.h"
#include "util/timer.h"

namespace {

// --solve mode: a *native* (OpenMP) Jacobi solve with CRC-guarded segments
// and crash-consistent checkpointing. Runs --solve sweeps at N=max-n,
// writing a checkpoint every --checkpoint-every sweeps and optionally
// verifying/scrubbing the field every --verify-every sweeps via
// seg::SegmentGuard + jacobi_rebuild_row. With --resume the run continues
// from a checkpoint and finishes bitwise-identically to an uninterrupted
// run (asserted by the chaos kill-and-resume harness on the printed
// FIELD_CRC line).
int run_solve_mode(const mcopt::util::Cli& cli) {
  using namespace mcopt;
  const auto n = static_cast<std::size_t>(cli.get_int("max-n"));
  const auto total = static_cast<std::uint64_t>(cli.get_int("solve"));
  const auto every = static_cast<std::uint64_t>(cli.get_int("checkpoint-every"));
  const auto verify_every =
      static_cast<std::uint64_t>(cli.get_int("verify-every"));
  const std::string ck_path = cli.get_str("checkpoint");
  const auto schedule = sched::Schedule::static_chunk(1);

  auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  kernels::init_jacobi(a);
  kernels::init_jacobi(b);

  std::uint64_t done = 0;
  if (!cli.get_str("resume").empty()) {
    auto state = runtime::load_jacobi_checkpoint(cli.get_str("resume"));
    if (!state) {
      std::fprintf(stderr, "fig6_jacobi: %s\n", state.error().message.c_str());
      return 2;
    }
    const auto applied = runtime::apply_jacobi_state(state.value(), a);
    if (!applied.ok()) {
      std::fprintf(stderr, "fig6_jacobi: %s\n", applied.error().message.c_str());
      return 2;
    }
    done = state.value().sweeps;
    std::printf("# resumed from %s at sweep %llu\n",
                cli.get_str("resume").c_str(),
                static_cast<unsigned long long>(done));
  }

  // `cur` holds the current field F_t, `next` the previous one F_{t-1}
  // (after the first sweep) — exactly the pair jacobi_rebuild_row needs.
  seg::SegmentGuard<double> guard_a(a);
  seg::SegmentGuard<double> guard_b(b);
  struct Half {
    seg::seg_array<double>* grid;
    seg::SegmentGuard<double>* guard;
  };
  Half cur{&a, &guard_a};
  Half next{&b, &guard_b};

  std::uint64_t scrubbed_rows = 0;
  double sweep_seconds = 0.0;
  util::Timer wall;
  for (; done < total; ) {
    if (verify_every != 0 && done % verify_every == 0) {
      const auto verdict = cur.guard->verify();
      if (!verdict.ok() && done > 0) {
        // The previous field (in `next`) regenerates any corrupted row.
        const auto report = cur.guard->scrub([&](std::size_t s) {
          kernels::jacobi_rebuild_row(*cur.grid, *next.grid, s);
          return true;
        });
        scrubbed_rows += report.rebuilt.size();
        std::printf("# integrity: scrubbed %zu rows at sweep %llu (%s)\n",
                    report.rebuilt.size(),
                    static_cast<unsigned long long>(done),
                    verdict.error().message.c_str());
      }
    }
    sweep_seconds += kernels::jacobi_sweep_seconds(*cur.grid, *next.grid, schedule);
    // Seal only the generation the next verify will inspect: intermediate
    // generations are overwritten two sweeps later without ever being
    // verified, so sealing them would buy nothing and cost a full CRC pass
    // per sweep.
    if (verify_every != 0 && (done + 1) % verify_every == 0)
      next.guard->seal();
    std::swap(cur, next);
    ++done;
    if (every != 0 && (done % every == 0 || done == total)) {
      const auto saved =
          runtime::save_jacobi_checkpoint(ck_path, *cur.grid, done);
      if (!saved.ok()) {
        std::fprintf(stderr, "fig6_jacobi: %s\n", saved.error().message.c_str());
        return 2;
      }
    }
  }

  util::Crc32c crc;
  for (std::size_t i = 0; i < n; ++i)
    crc.update(cur.grid->segment(i).begin(), n * sizeof(double));
  std::printf(
      "SWEEPS=%llu FIELD_CRC=0x%08x scrubbed_rows=%llu sweep_s=%.3f "
      "wall_s=%.3f\n",
      static_cast<unsigned long long>(done), crc.value(),
      static_cast<unsigned long long>(scrubbed_rows), sweep_seconds,
      wall.seconds());
  return 0;
}

// --schedule mode: the fig6 path becomes a supervised loop. Runs the
// optimal-layout Jacobi for --sweeps sweeps under the transient-fault
// schedule, with and without the self-healing supervisor, and reports both
// (migration cost is charged in cycles, so the comparison is end-to-end).
int run_supervised_mode(const mcopt::util::Cli& cli,
                        const mcopt::seg::LayoutSpec& optimal,
                        mcopt::bench::ObsGuard& obs) {
  using namespace mcopt;
  const auto n = static_cast<std::size_t>(cli.get_int("max-n"));
  const auto sweeps = static_cast<unsigned>(cli.get_int("sweeps"));
  constexpr unsigned kThreads = 64;

  runtime::LoopConfig lc;
  lc.threads = kThreads;
  lc.slices = sweeps;
  obs.apply(lc.sim);

  // Percent-relative schedule bounds resolve against an estimated horizon:
  // one probed unsupervised sweep times the sweep count.
  runtime::LoopConfig probe = lc;
  probe.slices = 1;
  probe.supervise = false;
  trace::VirtualArena probe_arena;
  const auto one = runtime::run_supervised_jacobi(probe_arena, n, optimal, probe);
  lc.sim.fault_schedule = bench::parse_schedule_knob(
      cli.get_str("schedule"), lc.sim, one.total_cycles * sweeps);

  trace::VirtualArena sup_arena;
  lc.supervise = true;
  const auto sup = runtime::run_supervised_jacobi(sup_arena, n, optimal, lc);
  trace::VirtualArena unsup_arena;
  lc.supervise = false;
  const auto unsup = runtime::run_supervised_jacobi(unsup_arena, n, optimal, lc);
  // Two labelled series, same global timeline: the supervised one shows the
  // post-migration rebalance, the unsupervised one the stuck imbalance.
  obs.add_timeline("supervised", sup.mc_timeline);
  obs.add_timeline("unsupervised", unsup.mc_timeline);

  const double updates =
      static_cast<double>(trace::jacobi_updates_per_sweep(n)) * sweeps;
  const double sup_mlups = bench::checked_rate(updates / sup.seconds / 1e6,
                                               "supervised Jacobi MLUPs");
  const double unsup_mlups = bench::checked_rate(updates / unsup.seconds / 1e6,
                                                 "unsupervised Jacobi MLUPs");
  std::printf(
      "# supervised Jacobi, N=%zu, %u threads, %u sweeps\n"
      "# schedule: %s\n\n"
      "supervised    %.1f MLUPs/s  (replans=%u suppressed=%u declined=%u "
      "scrubs=%u, migration %.1f%% of cycles)\n"
      "unsupervised  %.1f MLUPs/s\n"
      "recovery ratio %.3fx, final diagnosis: %s\n",
      n, kThreads, sweeps, lc.sim.fault_schedule.describe().c_str(), sup_mlups,
      sup.replans, sup.suppressed, sup.declined, sup.scrubs,
      100.0 * static_cast<double>(sup.migration_cycles) /
          static_cast<double>(sup.total_cycles),
      unsup_mlups, sup_mlups / unsup_mlups,
      sup.final_diagnosis.describe().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Fig. 6: 2D Jacobi MLUPs/s vs N, optimal vs plain layout");
  cli.flag("full", "N = 64..2048 step 32 plus a fine window (paper range)")
      .option_int("max-n", 1024, "largest N (2048 with --full)")
      .option_int("step", 128, "N step (32 with --full)")
      .option_str("schedule", "",
                  "transient-fault schedule (e.g. mc1:off@25%..75%); runs the "
                  "supervised loop at N=max-n instead of the figure sweep")
      .option_int("sweeps", 8, "sweeps for the --schedule supervised loop")
      .option_int("solve", 0,
                  "native OpenMP solve for this many sweeps at N=max-n "
                  "(checkpointable; prints FIELD_CRC)")
      .option_int("checkpoint-every", 0,
                  "write a crash-consistent checkpoint every N sweeps "
                  "(--solve mode)")
      .option_str("checkpoint", "fig6_jacobi.ckpt",
                  "checkpoint file path (--solve mode)")
      .option_str("resume", "",
                  "resume a --solve run from this checkpoint file")
      .option_int("verify-every", 0,
                  "CRC-verify the field every N sweeps and rebuild corrupted "
                  "rows from the previous field (--solve mode; 0 = off)")
      .option_str("csv", "", "mirror results to this CSV file");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  if (cli.get_int("solve") > 0) return run_solve_mode(cli);

  const arch::AddressMap sched_map;
  if (!cli.get_str("schedule").empty())
    return run_supervised_mode(cli, kernels::jacobi_optimal_spec(sched_map), obs);

  const bool full = cli.get_flag("full");
  const std::size_t max_n = full ? 2048 : static_cast<std::size_t>(cli.get_int("max-n"));
  const std::size_t step = full ? 32 : static_cast<std::size_t>(cli.get_int("step"));

  const arch::AddressMap map;
  const seg::LayoutSpec optimal = kernels::jacobi_optimal_spec(map);
  const seg::LayoutSpec plain = kernels::jacobi_plain_spec();
  const auto static1 = sched::Schedule::static_chunk(1);
  const auto static_block = sched::Schedule::static_block();

  std::printf(
      "# 2D Jacobi heat solver, one sweep, MLUPs/s\n"
      "# optimal: rows 512B-aligned, shift=128B, schedule static,1 "
      "(planner-derived)\n# plain: dense rows, default static schedule\n\n");

  const std::vector<std::string> header = {"N",       "8T opt",  "16T opt",
                                           "32T opt", "64T opt", "64T plain"};
  std::vector<std::vector<std::string>> rows;

  auto add_row = [&](std::size_t n) {
    std::vector<std::string> row{std::to_string(n)};
    for (unsigned threads : {8u, 16u, 32u, 64u})
      row.push_back(
          util::fmt_fixed(bench::jacobi_mlups(n, optimal, static1, threads), 1));
    row.push_back(
        util::fmt_fixed(bench::jacobi_mlups(n, plain, static_block, 64), 1));
    rows.push_back(std::move(row));
  };

  for (std::size_t n = 128; n <= max_n; n += step) add_row(n);
  // Fine window like the paper's inset (1200..1300), scaled to the sweep.
  if (full)
    for (std::size_t n = 1200; n <= 1300; n += 4) add_row(n);

  bench::emit(header, rows, cli.get_str("csv"));

  const double opt512 = bench::jacobi_mlups(512, optimal, static1, 64);
  const double plain512 = bench::jacobi_mlups(512, plain, static_block, 64);
  std::printf(
      "\nshape check at N=512 (power-of-two rows): optimal %.1f vs plain "
      "%.1f MLUPs/s — the planner layout removes the collapse (paper: "
      "~600 vs wildly swinging).\n",
      opt512, plain512);
  return 0;
}
