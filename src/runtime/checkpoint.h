#pragma once
// Crash-consistent checkpoint/restart for long solves.
//
// A checkpoint is a single file holding a versioned header, a table of
// CRC32C-guarded sections, the raw section payloads, and a trailing
// whole-file CRC. Writers produce it with write-to-temp + fsync + atomic
// rename, so a reader never observes a half-written file under POSIX rename
// semantics: either the previous checkpoint or the complete new one exists.
// Readers validate every length and checksum before trusting a byte and
// report problems as typed util::Status — a truncated or bit-flipped file
// yields a diagnostic, never a crash or a silently wrong restart.
//
// Layout (all integers little-endian, as written by the host — checkpoints
// are same-machine restart artifacts, not portable interchange):
//
//   u32 magic 'MCPT'   u32 version   u32 kind   u32 section_count
//   u64 iteration      u64 user[4]
//   u32 header_crc     (CRC32C of the preceding 56 bytes)
//   section_count x { u64 bytes  u32 crc  u32 reserved }
//   section payloads, concatenated
//   u32 file_crc       (CRC32C of everything before it)
//
// `kind` identifies the producing application (solver) and `user` carries
// its shape words; the typed helpers below fill them for the two paper
// kernels so a resume can refuse a checkpoint from a different problem.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/lbm/solver.h"
#include "seg/seg_array.h"
#include "util/expected.h"

namespace mcopt::runtime {

inline constexpr std::uint32_t kCheckpointMagic = 0x5443504Du;  // "MCPT"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Application ids for Checkpoint::kind.
inline constexpr std::uint32_t kJacobiCheckpoint = 1;
inline constexpr std::uint32_t kLbmCheckpoint = 2;
/// Durable service-runtime state snapshot (runtime/durable/state.h): door,
/// virtual clocks, tenant ledgers, optional NodeSupervisor beliefs.
inline constexpr std::uint32_t kDurableStateCheckpoint = 3;

/// In-memory form of a checkpoint file.
struct Checkpoint {
  std::uint32_t kind = 0;
  std::uint64_t iteration = 0;
  std::array<std::uint64_t, 4> user{};
  std::vector<std::vector<std::uint8_t>> sections;
};

/// Writes `ckpt` to `path` crash-consistently: the bytes land in
/// `path + ".tmp"`, are fsync'd, and the temp file is renamed over `path`.
[[nodiscard]] util::Status save_checkpoint(const std::string& path,
                                           const Checkpoint& ckpt);

/// Reads and fully validates a checkpoint. Any inconsistency — wrong magic,
/// unsupported version, truncation at any offset, header/section/file CRC
/// mismatch — comes back as a failure naming the first problem found.
[[nodiscard]] util::Expected<Checkpoint> load_checkpoint(
    const std::string& path);

// --- Jacobi (Fig. 6) -------------------------------------------------------
// One section: the n x n field, row-major doubles. user[0] = n,
// iteration = completed sweeps. Only the current field is stored — the next
// sweep fully rewrites the interior of the other toggle grid, and its
// boundary is the Dirichlet condition, so the resume path re-runs
// init_jacobi on both grids and then overlays the saved field.

[[nodiscard]] util::Status save_jacobi_checkpoint(
    const std::string& path, const seg::seg_array<double>& field,
    std::uint64_t sweeps);

struct JacobiState {
  std::size_t n = 0;
  std::uint64_t sweeps = 0;
  std::vector<double> field;  ///< row-major n*n values
};

[[nodiscard]] util::Expected<JacobiState> load_jacobi_checkpoint(
    const std::string& path);

/// Copies a loaded state into a grid of matching size.
[[nodiscard]] util::Status apply_jacobi_state(const JacobiState& state,
                                              seg::seg_array<double>& field);

// --- LBM (Fig. 7) ----------------------------------------------------------
// One section: the full distribution storage (both toggle grids).
// user[0..2] = nx/ny/nz, user[3] = pad_x * 4 + layout * 2 + 1 (shape word;
// the +1 keeps it nonzero so an all-zero header cannot masquerade as a
// matching geometry). iteration = completed steps. Solid geometry is not
// part of the state — the resume path reapplies the same obstacle setup
// before restoring.

[[nodiscard]] util::Status save_lbm_checkpoint(
    const std::string& path, const kernels::lbm::Solver& solver);

/// Validates the checkpoint against `solver`'s geometry and restores the
/// distributions and step count into it.
[[nodiscard]] util::Status load_lbm_checkpoint(const std::string& path,
                                               kernels::lbm::Solver& solver);

}  // namespace mcopt::runtime
