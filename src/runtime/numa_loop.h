#pragma once
// Supervised multi-socket job loop: run -> sample -> (maybe) migrate jobs
// across sockets -> continue.
//
// The node loop runs one triad job per socket, each job's four arrays homed
// in its socket's own memory domain (the planner's local placement). Every
// slice runs all jobs on the sim::Node DES with the remaining portion of the
// fault schedule, then feeds per-socket utilization and per-link occupancy/
// per-line-cost observations to a runtime::NodeSupervisor. On a kReplan
// verdict the loop builds a failover placement — jobs whose home domain died
// move, compute and data together, onto the least-loaded surviving sockets —
// and commits it only when the analytic projection clears the migration cost
// by the break-even margin (LoopConfig::migration_safety semantics).
//
// Migration pricing follows the physical story: each moved job's live
// arrays (B, C, D; A is overwritten every sweep) are read once from wherever
// their old home is served *now* — at link bandwidth when that is across the
// interconnect — and first-touch written once into the new home domain at
// the post-migration node bandwidth. A dead old home prices reads at the
// remap survivor's route, exactly what the DES would charge.
//
// Fail-back (DESIGN.md §4k): jobs are *sharded* — each NodeJob is one
// element range [begin, begin+count) of a logical job — so an orphaned job
// can split across several survivors instead of piling whole onto one, and
// rebalance back onto its natural socket once the supervisor's prober
// readmits it. On a kProbe verdict the loop runs the supervisor's canary
// (a tiny triad homed on the quarantined domain) on the DES and feeds the
// measured per-socket utilization back through report_probe(); probe cycles
// are charged to the global timeline like scrubs, with no goodput bytes.
// Every committed shard move re-verifies the moved payload range against
// its CRC32C sidecar (the PR-3 integrity discipline at shard granularity).
//
// With `supervise = false` the same slicing runs with the supervisor
// bypassed — the surviving-socket convergence baseline for the NUMA
// regression tests.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/timeline.h"
#include "runtime/supervisor.h"
#include "sim/node.h"
#include "util/expected.h"

namespace mcopt::runtime {

struct NodeLoopConfig {
  /// Node topology plus the per-socket chip template. The fault schedule
  /// must be resolved and is interpreted on the loop's global timeline.
  sim::NodeConfig node{};
  /// Strands per job (every socket that hosts j jobs runs j*threads strands;
  /// the worst failover case num_sockets*threads must fit one chip).
  unsigned threads = 16;
  /// Number of sweeps == slices (one sweep of every live job per slice).
  unsigned slices = 12;
  /// false = unsupervised baseline: identical slicing, never migrates.
  bool supervise = true;
  NodeDetectorConfig detector{};
  /// Migrate only when projected_savings * migration_safety >= cost.
  double migration_safety = 0.5;
  /// Seeds the node supervisor's backoff jitter.
  std::uint64_t seed = 0;

  [[nodiscard]] util::Status check() const;
};

/// One triad job shard: the element range of a logical job it covers, where
/// it computes and where its arrays live. A healthy placement is one
/// whole-range shard per logical job; failover may split a logical job into
/// several shards across survivors (seg::split_shard_counts).
struct NodeJob {
  /// Logical job this shard belongs to (== its natural socket).
  unsigned job_id = 0;
  /// Element range [begin, begin + count) of the logical job's arrays.
  std::size_t begin = 0;
  std::size_t count = 0;
  unsigned compute_socket = 0;
  unsigned home_socket = 0;
  /// Array bases, order A,B,C,D.
  std::vector<arch::Addr> bases;
};

/// One committed cross-socket migration.
struct NodeReplanRecord {
  arch::Cycles at = 0;  ///< global cycle the migration completed
  std::vector<unsigned> healthy_sockets;
  std::vector<NodeJob> jobs;  ///< post-migration placement (all shards)
  arch::Cycles migration_cycles = 0;
  /// Payload bytes copied by this migration (B, C, D of every moved range).
  std::uint64_t moved_bytes = 0;
  /// Moved ranges whose post-copy CRC32C matched the sidecar. A mismatch
  /// aborts the run (std::runtime_error) — silent shard corruption must not
  /// be committed — so on a completed run this equals the moved-range count.
  unsigned crc_ranges_verified = 0;
};

/// Per-slice accounting on the loop's global timeline (migration gaps fall
/// between slices). Lets callers measure phase bandwidths — e.g. the
/// converged tail after the last committed migration.
struct NodeSliceRecord {
  arch::Cycles begin = 0;
  arch::Cycles end = 0;
  std::uint64_t bytes = 0;
  std::uint64_t remote_bytes = 0;
};

struct NodeLoopResult {
  arch::Cycles total_cycles = 0;
  arch::Cycles migration_cycles = 0;
  std::uint64_t bytes = 0;         ///< kernel traffic, both directions
  std::uint64_t remote_bytes = 0;  ///< cross-socket share of `bytes`
  double seconds = 0.0;
  double bandwidth = 0.0;  ///< bytes/seconds, migration time included
  double remote_fraction = 0.0;
  unsigned replans = 0;
  unsigned suppressed = 0;
  unsigned declined = 0;
  /// Fail-back channel: canaries launched / canaries that found the domain
  /// still dead / probe-confirmed recoveries / ramps completed to full
  /// weight (NodeSupervisor counters at loop end).
  unsigned probes = 0;
  unsigned probe_failures = 0;
  unsigned recoveries = 0;
  unsigned readmissions = 0;
  /// Cycles spent running canary probes (charged to total_cycles, no bytes).
  arch::Cycles probe_cycles = 0;
  /// Slices whose end saw the DES fault schedule clear of a socket the
  /// supervisor still believed dead (the belief/ground-truth divergence the
  /// prober exists to close; reporting only, never fed to decisions).
  unsigned belief_stale_windows = 0;
  /// Moved shard ranges CRC-verified across all committed migrations.
  unsigned crc_ranges_verified = 0;
  /// Socket/link fault state the supervisor believes at the end.
  sim::FaultSpec final_diagnosis;
  std::vector<double> final_socket_utilization;
  std::vector<NodeReplanRecord> replan_log;
  std::vector<NodeSliceRecord> slice_log;
  std::vector<NodeJob> final_jobs;
  /// Per-socket controller timelines stitched onto the global loop timeline
  /// (rows only when node.sim.mc_sample_cadence != 0).
  std::vector<obs::McTimeline> socket_timelines;

  /// Bandwidth over the slices beginning at or after `from` — pass the last
  /// replan's stamp to measure the converged post-migration tail. Migration
  /// gaps are excluded (they are not slice time).
  [[nodiscard]] double tail_bandwidth(arch::Cycles from,
                                      double clock_ghz) const noexcept {
    std::uint64_t tail_bytes = 0;
    arch::Cycles tail_cycles = 0;
    for (const NodeSliceRecord& s : slice_log) {
      if (s.begin < from) continue;
      tail_bytes += s.bytes;
      tail_cycles += s.end - s.begin;
    }
    return tail_cycles == 0 ? 0.0
                            : static_cast<double>(tail_bytes) /
                                  arch::cycles_to_seconds(tail_cycles,
                                                          clock_ghz);
  }
};

/// Supervised node-wide triad: one n-element job per socket over
/// cfg.slices sweeps. Requires contiguous home domains large enough for the
/// worst failover packing (throws std::invalid_argument otherwise).
[[nodiscard]] NodeLoopResult run_supervised_node_triad(
    std::size_t n, const NodeLoopConfig& cfg);

}  // namespace mcopt::runtime
