// End-to-end graceful-degradation scenarios: the planner's surviving-
// controller overloads must recover bandwidth the naive (512 B-aliased)
// layouts lose when the chip runs with injected faults, and the watchdog
// must turn a hopeless run into a diagnostic instead of a hang.

#include <gtest/gtest.h>

#include <vector>

#include "kernels/triad.h"
#include "seg/planner.h"
#include "sim/chip.h"
#include "sim/faults.h"
#include "trace/virtual_arena.h"

namespace mcopt {
namespace {

constexpr std::size_t kN = 16384;
constexpr unsigned kThreads = 32;

double triad_bandwidth(const std::vector<arch::Addr>& bases,
                       const sim::SimConfig& cfg) {
  auto wl = kernels::make_triad_workload(bases, kN, kThreads,
                                         sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  return chip.run(wl).memory_bandwidth();
}

/// All four arrays page-aligned: bases congruent mod 512, the Fig. 4
/// pessimal layout.
std::vector<arch::Addr> naive_aliased_bases() {
  trace::VirtualArena arena;
  std::vector<arch::Addr> bases;
  for (int k = 0; k < 4; ++k) bases.push_back(arena.allocate(kN * 8, 8192));
  return bases;
}

/// Page-aligned plus the degraded planner's surviving-set offsets.
std::vector<arch::Addr> replanned_bases(const sim::SimConfig& cfg) {
  const arch::AddressMap map(cfg.interleave);
  const auto surviving = cfg.faults.surviving_controllers(cfg.interleave);
  const seg::StreamPlan plan = seg::plan_stream_offsets(4, map, surviving);
  trace::VirtualArena arena;
  std::vector<arch::Addr> bases;
  for (std::size_t k = 0; k < 4; ++k)
    bases.push_back(arena.allocate(kN * 8 + plan.offsets[k], plan.base_align) +
                    plan.offsets[k]);
  return bases;
}

TEST(FaultDegradation, ReplannedTriadBeatsNaiveUnderEachSingleControllerLoss) {
  for (unsigned dead = 0; dead < 4; ++dead) {
    sim::SimConfig cfg;
    cfg.faults.offline_controllers = {dead};
    const double naive = triad_bandwidth(naive_aliased_bases(), cfg);
    const double replanned = triad_bandwidth(replanned_bases(cfg), cfg);
    EXPECT_GT(replanned, naive) << "controller " << dead << " offline";
    // Not marginal, either: the survivors must actually share the load.
    EXPECT_GT(replanned, naive * 1.5) << "controller " << dead << " offline";
  }
}

TEST(FaultDegradation, AcceptanceScenarioOfflinePlusDerate) {
  // The ISSUE acceptance criterion: one controller offline AND another
  // derated to half rate; the replanned layout must still strictly beat the
  // 512 B-aliased naive layout.
  sim::SimConfig cfg;
  cfg.faults.offline_controllers = {0};
  cfg.faults.derates.push_back({1, 0.5});
  const double naive = triad_bandwidth(naive_aliased_bases(), cfg);
  const double replanned = triad_bandwidth(replanned_bases(cfg), cfg);
  EXPECT_GT(replanned, naive);
}

TEST(FaultDegradation, ReplannedJacobiRowsUseOnlySurvivors) {
  // The row-shift recipe's degraded overload must keep every row start on a
  // surviving controller.
  sim::SimConfig cfg;
  cfg.faults.offline_controllers = {2};
  const arch::AddressMap map(cfg.interleave);
  const auto surviving = cfg.faults.surviving_controllers(cfg.interleave);
  const seg::RowPlan plan = seg::plan_row_layout(map, surviving);
  const seg::LayoutSpec spec = plan.spec();
  const seg::LayoutResult layout =
      seg::compute_layout(std::vector<std::size_t>(16, 256), spec);
  for (std::size_t s = 0; s < layout.segment_pos.size(); ++s) {
    const unsigned mc = map.controller_of(layout.segment_pos[s]);
    EXPECT_NE(mc, 2u) << "row " << s << " starts on the dead controller";
  }
}

TEST(FaultDegradation, WatchdogReturnsErrorInsteadOfHanging) {
  // A workload whose simulated time vastly exceeds the cycle budget: try_run
  // must come back promptly with a watchdog diagnostic, not spin.
  sim::SimConfig cfg;
  cfg.cycle_budget = 1000;
  const auto bases = naive_aliased_bases();
  auto wl = kernels::make_triad_workload(bases, kN, kThreads,
                                         sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  const auto result = chip.try_run(wl);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("watchdog"), std::string::npos);
  EXPECT_NE(result.error().message.find("1000"), std::string::npos);
}

TEST(FaultDegradation, DegradedRunStillConservesAccesses) {
  sim::SimConfig cfg;
  cfg.faults.offline_controllers = {3};
  cfg.faults.derates.push_back({0, 0.8});
  const auto bases = replanned_bases(cfg);
  auto wl = kernels::make_triad_workload(bases, kN, kThreads,
                                         sched::Schedule::static_block());
  std::uint64_t expected = 0;
  for (const auto& p : wl) expected += p->total_accesses();
  sim::Chip chip(cfg, arch::equidistant_placement(kThreads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  EXPECT_EQ(res.accesses, expected);
  EXPECT_TRUE(res.degraded);
}

}  // namespace
}  // namespace mcopt
