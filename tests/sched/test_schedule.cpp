#include "sched/schedule.h"

#include <gtest/gtest.h>

#include <vector>

namespace mcopt::sched {
namespace {

TEST(Schedule, Describe) {
  EXPECT_EQ(Schedule::static_block().describe(), "static");
  EXPECT_EQ(Schedule::static_chunk(1).describe(), "static,1");
  EXPECT_EQ((Schedule{ScheduleKind::kDynamic, 4}).describe(), "dynamic,4");
}

TEST(StaticBlock, LibgompSplit) {
  // n=10, T=4: libgomp gives 3,3,2,2 contiguous.
  const Schedule s = Schedule::static_block();
  EXPECT_EQ(chunks_for_thread(10, 4, 0, s), (std::vector<IterRange>{{0, 3}}));
  EXPECT_EQ(chunks_for_thread(10, 4, 1, s), (std::vector<IterRange>{{3, 6}}));
  EXPECT_EQ(chunks_for_thread(10, 4, 2, s), (std::vector<IterRange>{{6, 8}}));
  EXPECT_EQ(chunks_for_thread(10, 4, 3, s), (std::vector<IterRange>{{8, 10}}));
}

TEST(StaticBlock, FewerIterationsThanThreads) {
  const Schedule s = Schedule::static_block();
  EXPECT_EQ(chunks_for_thread(2, 4, 0, s), (std::vector<IterRange>{{0, 1}}));
  EXPECT_EQ(chunks_for_thread(2, 4, 1, s), (std::vector<IterRange>{{1, 2}}));
  EXPECT_TRUE(chunks_for_thread(2, 4, 2, s).empty());
  EXPECT_TRUE(chunks_for_thread(2, 4, 3, s).empty());
}

TEST(StaticChunk, RoundRobin) {
  const Schedule s = Schedule::static_chunk(1);
  EXPECT_EQ(chunks_for_thread(7, 3, 0, s),
            (std::vector<IterRange>{{0, 1}, {3, 4}, {6, 7}}));
  EXPECT_EQ(chunks_for_thread(7, 3, 1, s),
            (std::vector<IterRange>{{1, 2}, {4, 5}}));
  EXPECT_EQ(chunks_for_thread(7, 3, 2, s),
            (std::vector<IterRange>{{2, 3}, {5, 6}}));
}

TEST(StaticChunk, ChunkLargerThanOne) {
  const Schedule s = Schedule::static_chunk(3);
  EXPECT_EQ(chunks_for_thread(10, 2, 0, s),
            (std::vector<IterRange>{{0, 3}, {6, 9}}));
  EXPECT_EQ(chunks_for_thread(10, 2, 1, s),
            (std::vector<IterRange>{{3, 6}, {9, 10}}));
}

TEST(StaticChunk, ZeroChunkTreatedAsOne) {
  const Schedule s{ScheduleKind::kStaticChunk, 0};
  EXPECT_EQ(chunks_for_thread(2, 2, 0, s), (std::vector<IterRange>{{0, 1}}));
}

TEST(Schedule, ZeroIterations) {
  for (const Schedule& s :
       {Schedule::static_block(), Schedule::static_chunk(2)}) {
    EXPECT_TRUE(chunks_for_thread(0, 4, 0, s).empty());
  }
}

TEST(Schedule, InvalidArguments) {
  const Schedule s = Schedule::static_block();
  EXPECT_THROW(chunks_for_thread(10, 0, 0, s), std::invalid_argument);
  EXPECT_THROW(chunks_for_thread(10, 4, 4, s), std::invalid_argument);
}

struct PartitionCase {
  std::size_t n;
  unsigned threads;
  Schedule schedule;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionProperty, DisjointAndCovering) {
  const auto& param = GetParam();
  const auto parts = partition(param.n, param.threads, param.schedule);
  ASSERT_EQ(parts.size(), param.threads);
  std::vector<int> covered(param.n, 0);
  for (const auto& chunks : parts)
    for (const IterRange& r : chunks) {
      ASSERT_LE(r.begin, r.end);
      ASSERT_LE(r.end, param.n);
      for (std::size_t i = r.begin; i < r.end; ++i) ++covered[i];
    }
  for (std::size_t i = 0; i < param.n; ++i)
    ASSERT_EQ(covered[i], 1) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionProperty,
    ::testing::Values(PartitionCase{100, 7, Schedule::static_block()},
                      PartitionCase{64, 64, Schedule::static_block()},
                      PartitionCase{63, 64, Schedule::static_block()},
                      PartitionCase{1000, 3, Schedule::static_chunk(1)},
                      PartitionCase{1000, 3, Schedule::static_chunk(17)},
                      PartitionCase{5, 8, Schedule::static_chunk(2)},
                      PartitionCase{998, 64, {ScheduleKind::kDynamic, 4}},
                      PartitionCase{1, 1, Schedule::static_block()}));

TEST(Collapse2, RoundTrips) {
  const Collapse2 c{7, 13};
  EXPECT_EQ(c.size(), 91u);
  for (std::size_t i = 0; i < c.n_outer; ++i)
    for (std::size_t j = 0; j < c.n_inner; ++j) {
      const std::size_t flat = c.flatten(i, j);
      EXPECT_EQ(c.outer(flat), i);
      EXPECT_EQ(c.inner(flat), j);
    }
}

TEST(Collapse2, FlatIndexIsRowMajor) {
  const Collapse2 c{3, 4};
  EXPECT_EQ(c.flatten(0, 0), 0u);
  EXPECT_EQ(c.flatten(0, 3), 3u);
  EXPECT_EQ(c.flatten(1, 0), 4u);
  EXPECT_EQ(c.flatten(2, 3), 11u);
}

}  // namespace
}  // namespace mcopt::sched
