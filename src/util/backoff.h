#pragma once
// Jittered exponential backoff for retry loops.
//
// The runtime supervisor uses this to keep a flapping fault source (a
// controller that oscillates between dead and alive) from triggering a
// replan storm: each successive retry waits multiplier× longer, capped,
// with a small deterministic jitter so co-scheduled supervisors do not
// synchronize. All state is integer-free-of-wall-clock: delays are in
// whatever unit the caller counts (the supervisor counts simulated cycles),
// and jitter comes from util::Xoshiro256, so sequences replay exactly.

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/prng.h"

namespace mcopt::util {

struct BackoffConfig {
  /// First delay, in caller units. Must be > 0.
  std::uint64_t initial = 1;
  /// Growth factor per retry. Must be >= 1.
  double multiplier = 2.0;
  /// Upper bound on the (pre-jitter) delay. Must be >= initial.
  std::uint64_t cap = 64;
  /// Symmetric jitter fraction in [0, 1): each delay is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1 + jitter].
  double jitter = 0.1;
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig cfg, std::uint64_t seed = 0)
      : cfg_(cfg), rng_(seed) {
    if (cfg_.initial == 0) throw std::invalid_argument("Backoff: initial == 0");
    if (cfg_.multiplier < 1.0)
      throw std::invalid_argument("Backoff: multiplier < 1");
    if (cfg_.cap < cfg_.initial)
      throw std::invalid_argument("Backoff: cap < initial");
    if (cfg_.jitter < 0.0 || cfg_.jitter >= 1.0)
      throw std::invalid_argument("Backoff: jitter outside [0, 1)");
    current_ = static_cast<double>(cfg_.initial);
  }

  /// Returns the next delay and escalates. The returned value is at least 1
  /// (jitter never rounds a delay away entirely).
  std::uint64_t next() {
    const double capped = std::min(current_, static_cast<double>(cfg_.cap));
    const double scale = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
    current_ = std::min(current_ * cfg_.multiplier,
                        static_cast<double>(cfg_.cap) * cfg_.multiplier);
    ++retries_;
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capped * scale));
  }

  /// Arms the backoff at `now` (caller units): draws the next delay and
  /// records `now + delay` as the next allowed attempt, queryable through
  /// ready_at()/ready_in(). Returns the delay. This is next() plus the
  /// bookkeeping every caller used to duplicate by hand.
  std::uint64_t arm(std::uint64_t now) {
    const std::uint64_t delay = next();
    ready_at_ = now + delay;
    return delay;
  }

  /// Time of the next allowed attempt (0 before the first arm()).
  [[nodiscard]] std::uint64_t ready_at() const noexcept { return ready_at_; }

  /// Caller units until the next allowed attempt: 0 when the attempt is
  /// allowed now (or the backoff was never armed). Lets callers sort or
  /// schedule circuit-broken resources without busy-polling next().
  [[nodiscard]] std::uint64_t ready_in(std::uint64_t now) const noexcept {
    return now >= ready_at_ ? 0 : ready_at_ - now;
  }

  /// Back to the initial delay (call after a sustained healthy stretch).
  /// Resets the escalation only — a deadline already armed via arm() stays
  /// in force until it passes (a quiet stretch forgives the growth rate, not
  /// the hold currently being served).
  void reset() noexcept {
    current_ = static_cast<double>(cfg_.initial);
    retries_ = 0;
  }

  /// Escalation count since construction or the last reset().
  [[nodiscard]] unsigned retries() const noexcept { return retries_; }

  [[nodiscard]] const BackoffConfig& config() const noexcept { return cfg_; }

 private:
  BackoffConfig cfg_;
  double current_ = 1.0;
  unsigned retries_ = 0;
  std::uint64_t ready_at_ = 0;
  Xoshiro256 rng_;
};

}  // namespace mcopt::util
